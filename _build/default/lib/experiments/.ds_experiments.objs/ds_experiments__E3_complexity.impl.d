lib/experiments/e3_complexity.ml: Common Ds_congest Ds_core Ds_graph Ds_util List Printf
