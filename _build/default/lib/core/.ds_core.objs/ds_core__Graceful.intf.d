lib/core/graceful.mli: Cdg Ds_congest Ds_graph Ds_parallel Ds_util
