examples/quickstart.mli:
