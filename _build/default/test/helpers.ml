module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Gen = Ds_graph.Gen

let rng seed = Rng.create seed

(* A tiny fixed graph used by many hand-computed tests:

       1 --2-- 2
      /         \
     1           3
    /             \
   0 ------9------ 3
    \             /
     4           1
      \         /
       4 --2-- 5          *)
let diamond () =
  Graph.of_edges ~n:6
    [
      (0, 1, 1); (1, 2, 2); (2, 3, 3); (0, 3, 9); (0, 4, 4); (4, 5, 2);
      (5, 3, 1);
    ]

let path n =
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1, 1)))

let random_graph ?(seed = 42) ?(avg_degree = 4.0) n =
  Gen.erdos_renyi ~rng:(rng seed) ~n ~avg_degree ()

let graph_suite seed =
  [
    ("er", random_graph ~seed 60);
    ( "geometric",
      Gen.random_geometric ~rng:(rng (seed + 1)) ~n:50 ~radius:0.25 () );
    ("grid", Gen.grid ~rng:(rng (seed + 2)) ~rows:7 ~cols:7 ());
    ("tree", Gen.random_tree ~rng:(rng (seed + 3)) ~n:40 ());
    ("star-ring", Gen.star_ring ~n:41 ~heavy:10);
    ( "power-law",
      Gen.preferential_attachment ~rng:(rng (seed + 4)) ~n:50 ~edges_per_node:2
        () );
  ]

let check_no_underestimate ~name ~query apsp =
  Ds_graph.Apsp.iter_pairs apsp (fun u v d ->
      let est = query u v in
      if est < d then
        Alcotest.failf "%s: underestimate %d < %d for pair (%d,%d)" name est d
          u v)
