lib/util/rng.mli:
