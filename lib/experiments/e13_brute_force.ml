(** E13 — the introduction's strawman: full distributed APSP.

    "A straightforward brute force solution would be to compute the
    shortest paths between all pairs of nodes offline and to store the
    distances locally in the nodes … the local space requirement is
    [linear] in the number of nodes" (paper Section 1). We run exactly
    that — every node a Bellman–Ford source (k-Source Shortest Paths
    with k = n) — and compare its cost and per-node storage against the
    k = 3 sketches. The widening gap in all three columns is the
    paper's motivation. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Dist = Ds_graph.Dist
module Metrics = Ds_congest.Metrics
module Stats = Ds_util.Stats
module Multi_bf = Ds_congest.Multi_bf
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_distributed = Ds_core.Tz_distributed
module Eval = Ds_core.Eval

type params = { seed : int; ns : int list; k : int }

let default = { seed = 13; ns = [ 32; 64; 128; 256 ]; k = 3 }
let quick = { seed = 13; ns = [ 32; 64 ]; k = 3 }

let id = "e13"
let title = "brute-force APSP vs sketches"
let claim_id = "Section 1 (motivation)"

let claim =
  "computing and storing all pairwise distances is infeasible at scale: \
   linear per-node storage and heavy construction, vs k n^{1/k} words \
   for sketches"

let bound_expr = "`2n` words/node for APSP vs `k n^{1/k}`-shaped sketches"

let prose =
  "Full distributed APSP (every node a Bellman–Ford source) costs an \
   order of magnitude more rounds and messages than the k = 3 sketches \
   and stores linearly many words per node; the storage gap widens as \
   n / (k n^{1/k}) with n — exactly the paper's opening argument."

let run ?pool { seed; ns; k } =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E13: brute-force distributed APSP vs k=%d sketches (erdos-renyi) \
            — Section 1 motivation"
           k)
      ~headers:
        [
          "n"; "apsp rounds"; "tz rounds"; "apsp msgs"; "tz msgs";
          "apsp words/node"; "tz words/node"; "storage ratio";
        ]
  in
  let last = ref None in
  List.iter
    (fun n ->
      let w =
        Common.make_workload ?pool ~seed
          ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
          ~n ()
      in
      let g = w.Common.graph in
      let all = List.init n Fun.id in
      let _, apsp_metrics =
        Multi_bf.run ?pool g ~sources:all ~bound:(fun _ -> Dist.none)
      in
      let levels = Levels.sample ~rng:(Rng.create (seed + n)) ~n ~k in
      let tz = Tz_distributed.build ?pool g ~levels in
      let tz_sizes =
        Eval.size_summary Label.size_words tz.Tz_distributed.labels
      in
      let apsp_words = 2 * n (* ID + distance per node *) in
      last := Some (n, apsp_metrics, tz, tz_sizes, apsp_words);
      Table.add_row t
        [
          Table.cell_int n;
          Table.cell_int (Metrics.rounds apsp_metrics);
          Table.cell_int (Metrics.rounds tz.Tz_distributed.metrics);
          Table.cell_int (Metrics.messages apsp_metrics);
          Table.cell_int (Metrics.messages tz.Tz_distributed.metrics);
          Table.cell_int apsp_words;
          Table.cell_float tz_sizes.Stats.mean;
          Table.cell_ratio (float_of_int apsp_words /. tz_sizes.Stats.mean);
        ])
    ns;
  let n_max, apsp_metrics, tz, tz_sizes, apsp_words =
    match !last with Some x -> x | None -> invalid_arg "E13: empty ns"
  in
  let storage = float_of_int apsp_words /. tz_sizes.Stats.mean in
  let rounds_ratio =
    float_of_int (Metrics.rounds apsp_metrics)
    /. float_of_int (Metrics.rounds tz.Tz_distributed.metrics)
  in
  let msg_ratio =
    float_of_int (Metrics.messages apsp_metrics)
    /. float_of_int (Metrics.messages tz.Tz_distributed.metrics)
  in
  let checks =
    [
      Report.check ~ok:(storage > 1.0)
        (Printf.sprintf "APSP/sketch storage ratio at n=%d (> 1)" n_max)
        storage;
      Report.check ~ok:(rounds_ratio > 1.0)
        (Printf.sprintf "APSP/sketch construction-round ratio at n=%d (> 1)"
           n_max)
        rounds_ratio;
      Report.check ~ok:(msg_ratio > 1.0)
        (Printf.sprintf "APSP/sketch message ratio at n=%d (> 1)" n_max)
        msg_ratio;
    ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t ];
    phases =
      [
        ( Printf.sprintf "known-S sketch build (erdos-renyi, n=%d, k=%d)"
            n_max k,
          Common.report_phases tz.Tz_distributed.metrics );
      ];
    round_profiles = [];
    verdict = Report.Informational;
  }
