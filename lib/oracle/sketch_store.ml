module Label = Ds_core.Label

type meta = { n : int; k : int; seed : int; family : string }
type t = { meta : meta; labels : Label.t array }

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let magic = "DSKETCH1"
let version = 1

let v ?(seed = 0) ?(family = "") labels =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Sketch_store.v: empty label set";
  let k = labels.(0).Label.k in
  Array.iteri
    (fun i l ->
      if l.Label.owner <> i then
        invalid_arg
          (Printf.sprintf "Sketch_store.v: labels.(%d) has owner %d" i
             l.Label.owner);
      if l.Label.k <> k then
        invalid_arg
          (Printf.sprintf "Sketch_store.v: labels.(%d) has k=%d, expected %d"
             i l.Label.k k))
    labels;
  { meta = { n; k; seed; family }; labels }

(* FNV-1a, 64-bit. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let pad8 len = (8 - (len land 7)) land 7

let to_bytes t =
  let { n; k; seed; family } = t.meta in
  let b = Buffer.create 4096 in
  let word i = Buffer.add_int64_le b (Int64.of_int i) in
  Buffer.add_string b magic;
  word version;
  word n;
  word k;
  word seed;
  word (String.length family);
  Buffer.add_string b family;
  Buffer.add_string b (String.make (pad8 (String.length family)) '\000');
  (* Bunch entries in the canonical to_words order: sorted by node id. *)
  let bunches =
    Array.map
      (fun l ->
        Label.bunch_nodes l |> List.map (fun (w, d, _) -> (w, d)))
      t.labels
  in
  let off = ref 0 in
  word 0;
  Array.iter
    (fun entries ->
      off := !off + List.length entries;
      word !off)
    bunches;
  Array.iter
    (fun l ->
      Array.iter
        (fun (d, p) ->
          word d;
          word p)
        l.Label.pivots)
    t.labels;
  Array.iter
    (List.iter (fun (w, d) ->
         word w;
         word d))
    bunches;
  let payload = Buffer.contents b in
  Buffer.add_int64_le b (fnv1a64 payload);
  Buffer.contents b

let of_bytes s =
  let len = String.length s in
  if len < 16 then error "truncated snapshot: %d bytes, no header" len;
  if String.sub s 0 8 <> magic then
    error "bad magic %S: not a distsketch snapshot" (String.sub s 0 8);
  let word off = Int64.to_int (String.get_int64_le s off) in
  let ver = word 8 in
  if ver <> version then
    error "unsupported snapshot version %d (this reader expects %d)" ver
      version;
  if len < 48 then error "truncated snapshot header: %d bytes" len;
  let n = word 16 and k = word 24 and seed = word 32 in
  let family_len = word 40 in
  if n < 1 || k < 1 then error "bad snapshot header: n=%d k=%d" n k;
  if family_len < 0 || family_len > len - 48 then
    error "bad snapshot header: family length %d" family_len;
  let family = String.sub s 48 family_len in
  let body = 48 + family_len + pad8 family_len in
  (* bunch_off needs n+1 words; check before reading the total. *)
  if len < body + (8 * (n + 1)) then
    error "truncated snapshot: offset table cut short (%d bytes)" len;
  let bunch_off = Array.init (n + 1) (fun i -> word (body + (8 * i))) in
  if bunch_off.(0) <> 0 then error "corrupt bunch offsets: first is %d" bunch_off.(0);
  for i = 0 to n - 1 do
    if bunch_off.(i + 1) < bunch_off.(i) then
      error "corrupt bunch offsets: not monotone at node %d" i
  done;
  let total = bunch_off.(n) in
  let pivots_at = body + (8 * (n + 1)) in
  let bunch_at = pivots_at + (8 * 2 * n * k) in
  let expected = bunch_at + (8 * 2 * total) + 8 in
  if len <> expected then
    error "truncated or oversized snapshot: expected %d bytes, got %d"
      expected len;
  let stored = String.get_int64_le s (len - 8) in
  let computed = fnv1a64 (String.sub s 0 (len - 8)) in
  if stored <> computed then
    error "checksum mismatch: stored %Lx, computed %Lx — corrupt snapshot"
      stored computed;
  let labels =
    Array.init n (fun u ->
        let l = Label.create ~owner:u ~k in
        for i = 0 to k - 1 do
          let at = pivots_at + (8 * 2 * ((u * k) + i)) in
          Label.set_pivot l ~level:i ~dist:(word at) ~node:(word (at + 8))
        done;
        let prev = ref (-1) in
        for j = bunch_off.(u) to bunch_off.(u + 1) - 1 do
          let at = bunch_at + (8 * 2 * j) in
          let w = word at and d = word (at + 8) in
          if w < 0 || w >= n then
            error "corrupt bunch section: node %d out of range at entry %d" w j;
          if w <= !prev then
            error "corrupt bunch section: entries of node %d not sorted" u;
          prev := w;
          Label.add_bunch l ~node:w ~dist:d ~level:(-1)
        done;
        l)
  in
  { meta = { n; k; seed; family }; labels }

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_bytes t))

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_bytes s
