(** Weighted undirected graphs in compressed sparse row form.

    Nodes are [0 .. n-1] (the paper's Algorithm 2 assumes exactly this
    ID space). Weights are positive integers. The structure is
    immutable after construction. *)

type t

val of_edges : n:int -> (int * int * int) list -> t
(** [of_edges ~n edges] builds the graph from undirected [(u, v, w)]
    triples. Raises [Invalid_argument] on self-loops, out-of-range
    endpoints, non-positive weights, or duplicate edges. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int

val max_degree : t -> int

val iter_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbors g u f] calls [f v w] for each edge [(u, v)] of
    weight [w]. *)

val fold_neighbors : t -> int -> ('a -> int -> int -> 'a) -> 'a -> 'a

val neighbors : t -> int -> (int * int) array
(** Fresh array of [(neighbor, weight)] pairs. *)

val neighbor_at : t -> int -> int -> int * int
(** [neighbor_at g u i] is the [i]-th incident [(neighbor, weight)] of
    [u], [0 <= i < degree g u]. O(1). *)

val neighbor_node : t -> int -> int -> int
(** [neighbor_node g u i] is the [i]-th neighbor of [u]. O(1) and
    allocation-free (no pair), for engine hot paths. *)

val neighbor_weight_at : t -> int -> int -> int
(** [neighbor_weight_at g u i] is the weight of [u]'s [i]-th incident
    edge. O(1) and allocation-free. *)

val neighbor_index : t -> int -> int -> int
(** [neighbor_index g u v] is the index of [v] in [u]'s adjacency list.
    Raises [Not_found] if [(u,v)] is not an edge. *)

val weight : t -> int -> int -> int
(** [weight g u v] is the weight of edge [(u, v)].
    Raises [Not_found] if absent. *)

val has_edge : t -> int -> int -> bool

val edges : t -> (int * int * int) list
(** Each undirected edge once, with [u < v]. *)

val total_weight : t -> int

(** Streaming CSR construction for large graphs. [of_edges] routes
    every edge through an OCaml list and a dedup hashtable — fine at
    n = 4096, prohibitive at n = 10^6. The builder appends endpoints
    into flat int vectors and compiles them in one counting pass;
    peak transient memory is ~5 machine words per directed link and
    never O(n^2). *)
module Builder : sig
  type graph := t
  type t

  val create : ?expect_edges:int -> n:int -> unit -> t
  (** [expect_edges] preallocates the edge vectors (they still grow
      on demand). *)

  val add_edge : t -> int -> int -> int -> unit
  (** [add_edge b u v w] appends the undirected edge [(u, v)] of
      weight [w]. Raises [Invalid_argument] on self-loops,
      out-of-range endpoints, or non-positive weights. Duplicates are
      detected at {!build}, not here. *)

  val edge_count : t -> int

  val build : ?on_duplicate:[ `Reject | `Keep_first ] -> t -> graph
  (** Compile to CSR. Duplicate undirected edges either raise
      ([`Reject], the default, matching {!of_edges}) or keep the
      first-added copy ([`Keep_first] — what random generators want:
      resampling a present edge is a no-op). *)
end
