examples/p2p_overlay.ml: Array Ds_congest Ds_core Ds_graph Ds_util Format List Printf
