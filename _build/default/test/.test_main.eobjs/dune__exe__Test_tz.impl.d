test/test_tz.ml: Alcotest Array Ds_congest Ds_core Ds_graph Ds_util Fmt Fun Helpers List Printf QCheck QCheck_alcotest
