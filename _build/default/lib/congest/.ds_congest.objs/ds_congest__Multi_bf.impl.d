lib/congest/multi_bf.ml: Array Ds_graph Engine Hashtbl List Queue
