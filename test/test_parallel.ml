module Pool = Ds_parallel.Pool

let test_sequential_pool () =
  let acc = Array.make 100 0 in
  Pool.parallel_for Pool.sequential ~lo:0 ~hi:100 (fun i -> acc.(i) <- i * i);
  Array.iteri (fun i v -> Alcotest.(check int) "value" (i * i) v) acc

let test_multi_domain_pool () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  Alcotest.(check int) "domains" 4 (Pool.domains pool);
  let acc = Array.make 1000 0 in
  Pool.parallel_for pool ~lo:0 ~hi:1000 (fun i -> acc.(i) <- i + 1);
  let sum = Array.fold_left ( + ) 0 acc in
  Alcotest.(check int) "sum" (1000 * 1001 / 2) sum

let test_empty_range () =
  let hit = ref false in
  Pool.parallel_for Pool.sequential ~lo:5 ~hi:5 (fun _ -> hit := true);
  Pool.parallel_for Pool.sequential ~lo:5 ~hi:3 (fun _ -> hit := true);
  Alcotest.(check bool) "never called" false !hit

let test_partial_range () =
  Pool.with_pool ~domains:3 @@ fun pool ->
  let acc = Array.make 20 (-1) in
  Pool.parallel_for pool ~lo:7 ~hi:13 (fun i -> acc.(i) <- i);
  Array.iteri
    (fun i v ->
      if i >= 7 && i < 13 then Alcotest.(check int) "set" i v
      else Alcotest.(check int) "untouched" (-1) v)
    acc

let test_map_array () =
  Pool.with_pool ~domains:2 @@ fun pool ->
  let out = Pool.map_array pool (fun x -> x * 2) (Array.init 50 Fun.id) in
  Array.iteri (fun i v -> Alcotest.(check int) "doubled" (2 * i) v) out;
  Alcotest.(check (array int)) "empty" [||] (Pool.map_array pool Fun.id [||])

let test_rejects_bad_domains () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pool.create ~domains:0 ());
       false
     with Invalid_argument _ -> true)

(* The pool is persistent: after [create] returns, [parallel_for] must
   reuse the same worker domains instead of spawning fresh ones. *)
let test_no_respawn_across_calls () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let seen = Hashtbl.create 16 in
  let lock = Mutex.create () in
  for _ = 1 to 10 do
    Pool.parallel_for pool ~lo:0 ~hi:64 (fun _ ->
        let id = (Domain.self () :> int) in
        Mutex.lock lock;
        Hashtbl.replace seen id ();
        Mutex.unlock lock)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "distinct domains %d <= 4" (Hashtbl.length seen))
    true
    (Hashtbl.length seen <= 4)

let test_reuse_after_many_calls () =
  Pool.with_pool ~domains:3 @@ fun pool ->
  let total = ref 0 in
  let lock = Mutex.create () in
  for _ = 1 to 100 do
    Pool.parallel_for pool ~lo:0 ~hi:10 (fun _ ->
        Mutex.lock lock;
        incr total;
        Mutex.unlock lock)
  done;
  Alcotest.(check int) "all iterations ran" 1000 !total

let test_shutdown_rejects_further_use () =
  let pool = Pool.create ~domains:2 () in
  Pool.parallel_for pool ~lo:0 ~hi:4 (fun _ -> ());
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.(check bool) "raises after shutdown" true
    (try
       Pool.parallel_for pool ~lo:0 ~hi:100 (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_propagates_exceptions () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let raised =
    try
      Pool.parallel_for pool ~lo:0 ~hi:1000 (fun i ->
          if i = 977 then failwith "boom");
      false
    with Failure _ -> true
  in
  Alcotest.(check bool) "exception surfaces" true raised;
  (* The pool survives a failed job. *)
  let acc = Array.make 100 0 in
  Pool.parallel_for pool ~lo:0 ~hi:100 (fun i -> acc.(i) <- 1);
  Alcotest.(check int) "pool still works" 100 (Array.fold_left ( + ) 0 acc)

(* The simulator must produce identical results whatever the pool
   size: node steps only touch their own state. *)
let test_engine_deterministic_across_pools () =
  let g = Helpers.random_graph ~seed:401 80 in
  let levels =
    Ds_core.Levels.sample ~rng:(Ds_util.Rng.create 403) ~n:80 ~k:3
  in
  let seq = Ds_core.Tz_distributed.build ~pool:Pool.sequential g ~levels in
  let par =
    Pool.with_pool ~domains:4 (fun pool ->
        Ds_core.Tz_distributed.build ~pool g ~levels)
  in
  Array.iteri
    (fun u l ->
      Alcotest.(check bool)
        (Printf.sprintf "label %d equal" u)
        true
        (Ds_core.Label.equal l par.Ds_core.Tz_distributed.labels.(u)))
    seq.Ds_core.Tz_distributed.labels;
  Alcotest.(check int) "same rounds"
    (Ds_congest.Metrics.rounds seq.Ds_core.Tz_distributed.metrics)
    (Ds_congest.Metrics.rounds par.Ds_core.Tz_distributed.metrics)

let suite =
  [
    Alcotest.test_case "sequential pool" `Quick test_sequential_pool;
    Alcotest.test_case "multi-domain pool" `Quick test_multi_domain_pool;
    Alcotest.test_case "empty range" `Quick test_empty_range;
    Alcotest.test_case "partial range" `Quick test_partial_range;
    Alcotest.test_case "map_array" `Quick test_map_array;
    Alcotest.test_case "rejects bad domains" `Quick test_rejects_bad_domains;
    Alcotest.test_case "no respawn across calls" `Quick
      test_no_respawn_across_calls;
    Alcotest.test_case "reuse after many calls" `Quick
      test_reuse_after_many_calls;
    Alcotest.test_case "shutdown rejects further use" `Quick
      test_shutdown_rejects_further_use;
    Alcotest.test_case "propagates exceptions" `Quick
      test_propagates_exceptions;
    Alcotest.test_case "engine deterministic across pools" `Quick
      test_engine_deterministic_across_pools;
  ]
