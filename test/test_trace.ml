(* The tracer's contract: the timing-excluded exports are a pure
   function of (graph, protocol, jitter seed) — byte-identical across
   pool sizes and under link jitter — and the deterministic fields
   reconcile exactly with the Metrics totals the engine already
   charges. *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Engine = Ds_congest.Engine
module Metrics = Ds_congest.Metrics
module Trace = Ds_congest.Trace
module Multi_bf = Ds_congest.Multi_bf
module Super_bf = Ds_congest.Super_bf
module Setup = Ds_congest.Setup
module Pool = Ds_parallel.Pool

let traced_multi_bf ?pool g =
  let tracer = Trace.create () in
  let n = Graph.n g in
  let sources = [ 0; n / 3; n / 2 ] in
  let _, m =
    Multi_bf.run ?pool ~tracer g ~sources ~bound:(fun _ -> Ds_graph.Dist.none)
  in
  (tracer, m)

(* Determinism by schema: the timing-excluded JSONL and the
   round-clock Chrome trace are byte-identical under pool 1 vs N. *)
let test_jsonl_pool_invariant () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let g = Helpers.random_graph ~seed:81 90 in
  let seq, ms = traced_multi_bf ~pool:Pool.sequential g in
  let par, mp = traced_multi_bf ~pool g in
  Alcotest.(check string) "jsonl bytes"
    (Trace.jsonl ~timing:false seq)
    (Trace.jsonl ~timing:false par);
  Alcotest.(check string) "chrome bytes"
    (Trace.chrome ~clock:`Rounds ~phases:(Metrics.phases ms) seq)
    (Trace.chrome ~clock:`Rounds ~phases:(Metrics.phases mp) par)

(* Same under bounded link asynchrony: jitter delays are a pure hash
   of the seed, so a jittered trace is still pool-independent. *)
let test_jsonl_jitter_invariant () =
  Pool.with_pool ~domains:3 @@ fun pool ->
  let g = Helpers.random_graph ~seed:82 70 in
  let run pool =
    let tracer = Trace.create () in
    let jitter = { Engine.rng = Rng.create 905; max_delay = 3 } in
    let _, _ = Super_bf.run ~pool ~jitter ~tracer g ~sources:[ 0; 9 ] in
    tracer
  in
  let seq = run Pool.sequential and par = run pool in
  Alcotest.(check string) "jittered jsonl bytes"
    (Trace.jsonl ~timing:false seq)
    (Trace.jsonl ~timing:false par);
  Alcotest.(check string) "jittered chrome bytes"
    (Trace.chrome ~clock:`Rounds seq)
    (Trace.chrome ~clock:`Rounds par)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh
    && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  nn = 0 || go 0

(* The split is enforced by schema, not by fuzzy comparison: without
   timing the wall-clock keys do not exist at all. *)
let test_jsonl_schema () =
  let g = Helpers.random_graph ~seed:83 40 in
  let tracer, _ = traced_multi_bf g in
  let det = Trace.jsonl ~timing:false tracer in
  let timed = Trace.jsonl tracer in
  Alcotest.(check bool) "no delivery_ns" false (contains det "delivery_ns");
  Alcotest.(check bool) "no compute_ns" false (contains det "compute_ns");
  Alcotest.(check bool) "no busy_domains" false (contains det "busy_domains");
  Alcotest.(check bool) "no pool_domains" false (contains det "pool_domains");
  Alcotest.(check bool) "timed has delivery_ns" true
    (contains timed "delivery_ns");
  Alcotest.(check bool) "header" true
    (contains det "\"schema\":\"distsketch.trace.rounds\"");
  (* one header + one line per logged round *)
  let lines = String.split_on_char '\n' (String.trim det) in
  Alcotest.(check int) "line count"
    (Trace.rounds_logged tracer + 1)
    (List.length lines)

(* The rows must reconcile with the engine's own accounting: as many
   rows as charged rounds (the final probe round is dropped from
   both), per-round deliveries summing to total messages, and the
   cumulative per-node counters summing to total messages on each
   side. *)
let test_totals_match_metrics () =
  let g = Helpers.random_graph ~seed:84 60 in
  let tracer, m = traced_multi_bf g in
  let p = Trace.profile tracer in
  Alcotest.(check int) "rounds" (Metrics.rounds m) p.Trace.rounds;
  Alcotest.(check int) "messages" (Metrics.messages m) p.Trace.messages;
  Alcotest.(check int) "words" (Metrics.words m) p.Trace.total_words;
  let n = Graph.n g in
  let sum f = List.fold_left (fun acc u -> acc + f tracer u) 0 (List.init n Fun.id) in
  Alcotest.(check int) "sent total" (Metrics.messages m) (sum Trace.sent);
  Alcotest.(check int) "received total" (Metrics.messages m)
    (sum Trace.received);
  Alcotest.(check int) "backlog peak"
    (Metrics.max_link_backlog m)
    p.Trace.max_link_backlog

let test_profile_peaks () =
  let g = Helpers.random_graph ~seed:85 50 in
  let tracer, _ = traced_multi_bf g in
  let rows = Trace.rows tracer in
  let p = Trace.profile tracer in
  let max_of f = List.fold_left (fun acc r -> max acc (f r)) 0 rows in
  Alcotest.(check int) "peak delivered"
    (max_of (fun r -> r.Trace.delivered))
    p.Trace.peak_delivered;
  Alcotest.(check int) "peak active links"
    (max_of (fun r -> r.Trace.active_links))
    p.Trace.peak_active_links;
  Alcotest.(check int) "peak in flight"
    (max_of (fun r -> r.Trace.in_flight))
    p.Trace.peak_in_flight;
  let nth = List.nth rows (p.Trace.peak_delivered_round - 1) in
  Alcotest.(check int) "peak round points at the peak" p.Trace.peak_delivered
    nth.Trace.delivered

let test_hotspots () =
  let g = Helpers.random_graph ~seed:86 50 in
  let tracer, _ = traced_multi_bf g in
  let hs = Trace.hotspots ~k:5 tracer in
  Alcotest.(check int) "k respected" 5 (List.length hs);
  let traffic (_, s, r) = s + r in
  let rec sorted = function
    | a :: (b :: _ as tl) -> traffic a >= traffic b && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "busiest first" true (sorted hs);
  List.iter
    (fun (u, s, r) ->
      Alcotest.(check int) (Printf.sprintf "sent at %d" u) (Trace.sent tracer u) s;
      Alcotest.(check int)
        (Printf.sprintf "received at %d" u)
        (Trace.received tracer u) r)
    hs

(* A tracer threaded through a composed run (setup then super-bf)
   appends rows; its total lines up with the combined metrics. *)
let test_composed_runs_append () =
  let g = Helpers.random_graph ~seed:87 40 in
  let tracer = Trace.create () in
  let _, m1 = Setup.run ~tracer g in
  let after_setup = Trace.rounds_logged tracer in
  Alcotest.(check int) "setup rounds" (Metrics.rounds m1) after_setup;
  let _, m2 = Super_bf.run ~tracer g ~sources:[ 0 ] in
  Alcotest.(check int) "combined rounds"
    (Metrics.rounds m1 + Metrics.rounds m2)
    (Trace.rounds_logged tracer)

let test_chrome_structure () =
  let g = Helpers.random_graph ~seed:88 40 in
  let tracer, m = traced_multi_bf g in
  let s = Trace.chrome ~clock:`Rounds ~phases:(Metrics.phases m) tracer in
  Alcotest.(check bool) "traceEvents" true (contains s "\"traceEvents\":[");
  Alcotest.(check bool) "complete spans" true (contains s "\"ph\":\"X\"");
  Alcotest.(check bool) "counters" true (contains s "\"ph\":\"C\"");
  Alcotest.(check bool) "delivery span" true
    (contains s "\"name\":\"delivery\"");
  Alcotest.(check bool) "phase span" true (contains s "\"name\":\"multi-bf\"");
  Alcotest.(check bool) "rounds clock omits busy_domains" false
    (contains s "busy_domains")

let test_empty_trace () =
  let tracer = Trace.create () in
  let p = Trace.profile tracer in
  Alcotest.(check int) "rounds" 0 p.Trace.rounds;
  Alcotest.(check int) "peak" 0 p.Trace.peak_delivered;
  Alcotest.(check (list (triple int int int))) "hotspots" []
    (Trace.hotspots tracer);
  let lines = String.split_on_char '\n' (String.trim (Trace.jsonl tracer)) in
  Alcotest.(check int) "header only" 1 (List.length lines)

let suite =
  [
    Alcotest.test_case "jsonl/chrome pool-invariant" `Quick
      test_jsonl_pool_invariant;
    Alcotest.test_case "jsonl/chrome jitter pool-invariant" `Quick
      test_jsonl_jitter_invariant;
    Alcotest.test_case "timing excluded by schema" `Quick test_jsonl_schema;
    Alcotest.test_case "totals match metrics" `Quick test_totals_match_metrics;
    Alcotest.test_case "profile peaks" `Quick test_profile_peaks;
    Alcotest.test_case "hotspots ordered and consistent" `Quick test_hotspots;
    Alcotest.test_case "composed runs append" `Quick test_composed_runs_append;
    Alcotest.test_case "chrome trace structure" `Quick test_chrome_structure;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
  ]
