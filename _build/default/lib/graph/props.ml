let is_connected g =
  let dist = Bfs.hops g ~src:0 in
  Array.for_all (fun d -> d < max_int) dist

let hop_diameter g =
  let n = Graph.n g in
  let best = ref 0 in
  for src = 0 to n - 1 do
    let e = Bfs.eccentricity g ~src in
    if e > !best then best := e
  done;
  !best

let shortest_path_diameter g =
  let n = Graph.n g in
  let best = ref 0 in
  for src = 0 to n - 1 do
    let _, hops = Dijkstra.sssp_hops g ~src in
    Array.iter (fun h -> if h < max_int && h > !best then best := h) hops
  done;
  !best

let weighted_diameter g =
  let n = Graph.n g in
  let best = ref 0 in
  for src = 0 to n - 1 do
    let dist = Dijkstra.sssp g ~src in
    Array.iter (fun d -> if Dist.is_finite d && d > !best then best := d) dist
  done;
  !best

type profile = { n : int; m : int; d : int; s : int; wdiam : int }

let profile g =
  {
    n = Graph.n g;
    m = Graph.m g;
    d = hop_diameter g;
    s = shortest_path_diameter g;
    wdiam = weighted_diameter g;
  }

let pp_profile ppf p =
  Format.fprintf ppf "n=%d m=%d D=%d S=%d wdiam=%d" p.n p.m p.d p.s p.wdiam
