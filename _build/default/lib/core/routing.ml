module Graph = Ds_graph.Graph

type outcome = {
  hops : int;
  cost : int;
  path : int list;
}

(* Revisiting a node means the estimate landscape has a local cycle;
   weighting revisits out of the argmin escapes it while keeping the
   walk greedy elsewhere. *)
let revisit_penalty = 1_000_000

let greedy g ~estimate ~src ~dst ?max_hops () =
  let n = Graph.n g in
  let max_hops = Option.value ~default:(4 * n) max_hops in
  let visits = Hashtbl.create 16 in
  let rec go u hops cost acc =
    if u = dst then Some { hops; cost; path = List.rev (dst :: acc) }
    else if hops >= max_hops then None
    else begin
      Hashtbl.replace visits u
        (1 + Option.value ~default:0 (Hashtbl.find_opt visits u));
      let best = ref None in
      Graph.iter_neighbors g u (fun w wt ->
          let seen = Option.value ~default:0 (Hashtbl.find_opt visits w) in
          let score = wt + estimate w dst + (seen * revisit_penalty) in
          match !best with
          | Some (s, _, _) when s <= score -> ()
          | _ -> best := Some (score, w, wt));
      match !best with
      | None -> None
      | Some (_, w, wt) -> go w (hops + 1) (cost + wt) (u :: acc)
    end
  in
  go src 0 0 []

let with_labels g labels ~src ~dst =
  let estimate u v = if u = v then 0 else Label.query labels.(u) labels.(v) in
  greedy g ~estimate ~src ~dst ()
