lib/graph/bellman_ford.ml: Array Dist Graph
