(** Distributed Bellman–Ford from a "super node" (a set of sources).

    Algorithm 1 of the paper, run as if all sources were one virtual
    node: every node learns its distance to the closest source and the
    identity of that source, ties broken by (distance, source ID).
    Parent pointers and child sets of the resulting shortest-path
    forest are also computed (children learn of parent changes via
    claim/unclaim messages), which the CDG construction uses as the
    per-cell broadcast trees.

    Runs to quiescence: [O(S)] rounds, [O(|E| S)] messages worst case. *)

type result = {
  dist : int array;  (** distance to nearest source *)
  nearest : int array;  (** which source; lex tie-break *)
  parent : int array;  (** forest parent node ID; -1 at sources *)
  children : int list array;  (** forest children node IDs *)
}

type msg

val codec : msg Superstep.codec

val run :
  ?backend:Plane.backend -> ?pool:Ds_parallel.Pool.t -> ?shards:int ->
  ?jitter:Engine.jitter -> ?tracer:Trace.t -> ?obs:Ds_obs.Obs.t ->
  Ds_graph.Graph.t -> sources:int list -> result * Metrics.t
(** Bellman–Ford is self-stabilising to link delays, so the result is
    exact under [jitter] too ([jitter] requires the congest
    backend). *)

val single_source :
  ?pool:Ds_parallel.Pool.t -> Ds_graph.Graph.t -> src:int ->
  int array * Metrics.t
(** Plain distributed Bellman–Ford (the on-demand baseline of
    experiment E8). *)
