(** The serving loop: sharded request queues, batched admission, a
    hot-pair cache, and open-loop load generation over {!Oracle}.

    {!Oracle.query_batch_flat} is a one-shot fan-out: split a batch,
    answer it, return. A serving tier does more — it runs long-lived
    workers against a request {e stream}, admits work in batches to
    amortize dispatch, caches the hot pairs a skewed (Zipf) workload
    repeats, and measures the latency a client would actually see
    under a given arrival rate, queueing included. This module is that
    loop, kept deterministic enough to pin in CI:

    - {b Sharded queues.} The request stream is cut into admission
      blocks of [batch] pairs; block [j] belongs to worker
      [j mod workers], where one worker runs per pool domain. The
      assignment is static, so which worker serves which request — and
      therefore every cache's contents and every per-worker counter —
      is a pure function of (stream, pool width, config), independent
      of timing. No cross-worker state is touched in the hot loop:
      workers write disjoint block-aligned slices of the result and
      latency arrays and keep their counters in domain-local state,
      published once at the end (the B12 lesson: shared result rows
      and per-index dispatch are what made the old batch path flat).
    - {b Batched admission.} A worker dequeues one block at a time and
      serves it in a tight loop: one clock read and one dispatch per
      [batch] pairs instead of per pair.
    - {b Hot-pair cache.} Per worker (never shared, never locked): a
      direct-mapped table of [2^cache_bits] slots keyed on the packed
      pair [u·n + v]. A hit returns the value a previous {!Oracle.query}
      of the same pair produced, so cached and uncached answers are
      byte-identical — pinned by test, and the reason results stay
      fingerprint-stable across every (pool, cache) configuration.
    - {b Open-loop load.} With [rate > 0], request [i] arrives at
      [i/rate] seconds and a block is admitted only once its last
      request has arrived; a request's latency is measured from its
      {e arrival} to its block's completion, so queueing delay behind
      a saturated worker shows up in p99/p999 exactly as a client
      would see it. With [rate = 0] (closed loop) workers drain the
      stream flat out — the throughput-measurement mode — and latency
      is measured from block admission instead.

    Answers never depend on timing, so [same stream + same config →
    same answers], and the answer array itself is identical across
    pool widths, cache sizes and rates. *)

type config = {
  batch : int;  (** pairs admitted per dequeue (default 64) *)
  cache_bits : int;
      (** log2 of per-worker cache slots; [0] disables the cache
          (default [0]; at most {!max_cache_bits}) *)
  rate : float;
      (** offered load in pairs/second for the open-loop generator;
          [0.] serves closed-loop at full speed (default [0.]) *)
}

val default_config : config
(** [{ batch = 64; cache_bits = 0; rate = 0. }] *)

val max_cache_bits : int
(** Upper bound on [cache_bits] (24: a 128 MiB table per worker is
    already past any plausible hot set). *)

type worker_stats = {
  worker : int;  (** worker index, [0 .. workers-1] *)
  served : int;  (** requests this worker answered *)
  hits : int;  (** answered from the worker's cache *)
  misses : int;  (** answered by {!Oracle.query}; [hits + misses = served] *)
  busy_ns : float;  (** wall-clock spent serving (admission waits excluded) *)
  worker_qps : float;  (** [served / busy] — per-worker service throughput *)
}

type latency = {
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max : float;
}
(** Latency distribution in nanoseconds, percentiles by linear
    interpolation over every request (not a sample). *)

type stats = {
  pairs : int;  (** requests served (= batch size) *)
  workers : int;  (** worker count (= pool width) *)
  elapsed_ns : float;  (** start of admission to last block completion *)
  qps : float;  (** [pairs / elapsed] — delivered throughput *)
  offered_qps : float;  (** the configured [rate]; [0.] in closed loop *)
  hit_rate : float;
      (** total cache hits / pairs; [0.] when the cache is disabled *)
  latency_ns : latency;
  per_worker : worker_stats array;  (** indexed by worker *)
}

val run :
  ?pool:Ds_parallel.Pool.t ->
  ?config:config ->
  ?obs:Ds_obs.Obs.t ->
  ?sampler:Ds_obs.Sampler.t ->
  Oracle.t ->
  int array ->
  int array * stats
(** [run ~pool ~config oracle flat] serves the flat pair stream of
    {!Workload.pairs_flat} (pair [i] at indices [2i], [2i+1]) through
    the loop above and returns the answers (slot [i] for pair [i])
    plus the run's statistics. The answer array equals
    [Oracle.query oracle u_i v_i] pointwise for {e every}
    configuration; only the statistics depend on [pool]/[config].
    Workers run one per pool domain (default {!Ds_parallel.Pool.sequential}:
    one worker, inline). Raises [Invalid_argument] on an odd-length
    stream or an out-of-range config field.

    [obs] registers the [serve.*] instruments (admitted / served /
    hits / misses counters, per-worker queue-depth gauge, block
    latency histogram) and updates them per block from each worker's
    own shard — zero-cost when absent, and allocation-free when
    present (no clock reads beyond the two the block already takes).
    [sampler] is ticked by worker 0 between blocks and force-sampled
    once after the pool joins, so its last point reconciles exactly
    with the returned {!stats}; when [obs] is omitted the sampler's
    own registry is the one instrumented. *)
