(** Backend selection for the superstep message plane.

    One entry point runs a {!Superstep.protocol} to completion on
    either backend:

    - {!Congest} ({!Engine}): per-link FIFO ring delivery. The
      faithful CONGEST simulator; supports jitter (bounded link
      asynchrony); lowest constant factors at small n.
    - {!Sharded} ({!Shard_engine}): MPC-style bulk exchange between
      contiguous node shards. Strictly synchronous; built for
      n = 10^5..10^6.

    Both produce byte-identical protocol results and {!Metrics} (the
    canonical inbox order pins the interleavings), so the choice is
    purely an execution-cost decision. *)

type backend = Congest | Sharded

val backend_name : backend -> string
(** ["congest"] / ["sharded"] — the names the CLI's [--backend] flag
    accepts and artifacts record. *)

val backend_of_string : string -> (backend, string) result
(** Accepts ["congest"], ["sharded"] (alias ["mpc"]). *)

val backends : backend list
(** Every backend, in sweep order — what experiments iterate over for
    head-to-head rows. *)

type ('state, 'msg) exec = {
  states : 'state array;  (** final per-node protocol states *)
  metrics : Metrics.t;
      (** rounds/messages/words accounting — byte-identical across
          backends *)
  stop : Superstep.stop_reason;  (** why the run ended *)
  mem_words : int;  (** plane backbone footprint at completion *)
}

val run :
  ?backend:backend ->
  ?pool:Ds_parallel.Pool.t ->
  ?shards:int ->
  ?jitter:Engine.jitter ->
  ?tracer:Trace.t ->
  ?obs:Ds_obs.Obs.t ->
  ?max_rounds:int ->
  codec:'msg Superstep.codec ->
  Ds_graph.Graph.t ->
  ('state, 'msg) Superstep.protocol ->
  ('state, 'msg) exec
(** [backend] defaults to {!Congest}. [shards] only affects
    {!Sharded} (default: pool width); [jitter] is only supported on
    {!Congest} — combining it with {!Sharded} raises. [tracer] and
    [obs] are forwarded to whichever engine runs (both report the
    same [engine.*] metric names). *)
