lib/congest/setup.ml: Array Ds_graph Engine Hashtbl List
