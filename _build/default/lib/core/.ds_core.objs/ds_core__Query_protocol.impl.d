lib/core/query_protocol.ml: Array Ds_congest Ds_graph Label List
