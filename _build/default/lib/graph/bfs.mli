(** Breadth-first search on the hop metric (weights ignored). *)

val hops : Graph.t -> src:int -> int array
(** Hop distances from [src]; [max_int] if unreachable. *)

val tree : Graph.t -> src:int -> int array
(** BFS-tree parents; [-1] for [src] and unreachable nodes. *)

val eccentricity : Graph.t -> src:int -> int
(** Maximum finite hop distance from [src]. *)
