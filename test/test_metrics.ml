module Metrics = Ds_congest.Metrics
module Graph = Ds_graph.Graph
module Engine = Ds_congest.Engine
module Rng = Ds_util.Rng

let test_counters () =
  let m = Metrics.create () in
  Metrics.tick_round m;
  Metrics.tick_round m;
  Metrics.count_message m ~words:2;
  Metrics.count_message m ~words:3;
  Alcotest.(check int) "rounds" 2 (Metrics.rounds m);
  Alcotest.(check int) "messages" 2 (Metrics.messages m);
  Alcotest.(check int) "words" 5 (Metrics.words m);
  Alcotest.(check int) "max msg words" 3 (Metrics.max_msg_words m);
  Metrics.untick_round m;
  Alcotest.(check int) "untick" 1 (Metrics.rounds m)

let test_phases () =
  let m = Metrics.create () in
  Metrics.tick_round m;
  Metrics.count_message m ~words:1;
  Metrics.mark_phase m "a";
  Metrics.tick_round m;
  Metrics.tick_round m;
  Metrics.mark_phase m "b";
  match Metrics.phases m with
  | [ a; b ] ->
    Alcotest.(check string) "name a" "a" a.Metrics.name;
    Alcotest.(check int) "rounds a" 1 a.Metrics.rounds;
    Alcotest.(check int) "messages a" 1 a.Metrics.messages;
    Alcotest.(check string) "name b" "b" b.Metrics.name;
    Alcotest.(check int) "rounds b" 2 b.Metrics.rounds;
    Alcotest.(check int) "messages b" 0 b.Metrics.messages
  | other -> Alcotest.failf "expected 2 phases, got %d" (List.length other)

let test_add () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.tick_round a;
  Metrics.count_message a ~words:2;
  Metrics.mark_phase a "first";
  Metrics.tick_round b;
  Metrics.tick_round b;
  Metrics.count_message b ~words:5;
  Metrics.mark_phase b "second";
  let c = Metrics.add a b in
  Alcotest.(check int) "rounds" 3 (Metrics.rounds c);
  Alcotest.(check int) "messages" 2 (Metrics.messages c);
  Alcotest.(check int) "words" 7 (Metrics.words c);
  Alcotest.(check int) "max words" 5 (Metrics.max_msg_words c);
  Alcotest.(check (list string)) "phase order" [ "first"; "second" ]
    (List.map (fun p -> p.Metrics.name) (Metrics.phases c))

(* Composed builds (Slack, CDG, graceful) stitch their phase
   breakdowns together with [add]; each phase must keep its own
   per-phase counters, not just the names. *)
let test_add_phase_counts () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.tick_round a;
  Metrics.tick_round a;
  Metrics.count_message a ~words:3;
  Metrics.mark_phase a "setup";
  Metrics.tick_round a;
  Metrics.count_message a ~words:1;
  Metrics.count_message a ~words:1;
  Metrics.mark_phase a "multi-bf";
  Metrics.tick_round b;
  Metrics.count_message b ~words:7;
  Metrics.mark_phase b "cell-cast";
  let c = Metrics.add a b in
  match Metrics.phases c with
  | [ setup; bf; cast ] ->
    Alcotest.(check (list string)) "names" [ "setup"; "multi-bf"; "cell-cast" ]
      [ setup.Metrics.name; bf.Metrics.name; cast.Metrics.name ];
    Alcotest.(check (list int)) "rounds per phase" [ 2; 1; 1 ]
      [ setup.Metrics.rounds; bf.Metrics.rounds; cast.Metrics.rounds ];
    Alcotest.(check (list int)) "messages per phase" [ 1; 2; 1 ]
      [ setup.Metrics.messages; bf.Metrics.messages; cast.Metrics.messages ];
    Alcotest.(check (list int)) "words per phase" [ 3; 2; 7 ]
      [ setup.Metrics.words; bf.Metrics.words; cast.Metrics.words ]
  | other -> Alcotest.failf "expected 3 phases, got %d" (List.length other)

(* Words accounting across a full distributed run is consistent with
   the per-message sizes the protocol declares. *)
let test_word_accounting_in_engine () =
  let g = Helpers.path 4 in
  let proto : (unit, int) Engine.protocol =
    {
      Engine.name = "two-word";
      max_msg_words = 2;
      msg_words = (fun _ -> 2);
      halted = (fun _ -> true);
      init =
        (fun api -> if api.Engine.id = 0 then api.Engine.broadcast 7);
      on_round = (fun _ _ _ -> ());
    }
  in
  let eng = Engine.create g proto in
  ignore (Engine.run eng);
  let m = Engine.metrics eng in
  Alcotest.(check int) "words = 2 * messages" (2 * Metrics.messages m)
    (Metrics.words m)

let test_backlog_tracking () =
  (* Sending three messages down one link in one round creates a
     backlog of >= 2 at the next delivery. *)
  let g = Helpers.path 2 in
  let proto : (unit, int) Engine.protocol =
    {
      Engine.name = "burst";
      max_msg_words = 1;
      msg_words = (fun _ -> 1);
      halted = (fun _ -> true);
      init =
        (fun api ->
          if api.Engine.id = 0 then begin
            api.Engine.send 0 1;
            api.Engine.send 0 2;
            api.Engine.send 0 3
          end);
      on_round = (fun _ _ _ -> ());
    }
  in
  let eng = Engine.create g proto in
  ignore (Engine.run eng);
  Alcotest.(check int) "max backlog" 3
    (Metrics.max_link_backlog (Engine.metrics eng))

let suite =
  [
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "phases" `Quick test_phases;
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "add preserves phase counts" `Quick
      test_add_phase_counts;
    Alcotest.test_case "word accounting in engine" `Quick
      test_word_accounting_in_engine;
    Alcotest.test_case "backlog tracking" `Quick test_backlog_tracking;
  ]
