lib/experiments/e9_ablation.ml: Array Common Ds_core Ds_graph Ds_util List Printf
