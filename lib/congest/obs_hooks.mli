(** Engine-side {!Ds_obs.Obs} instrument handles, resolved once at
    engine creation and shared by both backends ({!Engine},
    {!Shard_engine}) so a run reports through the same
    [engine.*] names whichever plane executes it. *)

type t = {
  rounds : Ds_obs.Obs.counter;
      (** charged rounds; decremented on the uncharged quiescence
          probe, mirroring [Metrics.untick_round] *)
  deliveries : Ds_obs.Obs.counter;  (** messages delivered *)
  words : Ds_obs.Obs.counter;  (** message words delivered *)
  backlog : Ds_obs.Obs.gauge;  (** peak send-queue backlog so far *)
  busy : Ds_obs.Obs.gauge;  (** pool domains the last compute phase occupied *)
}

val resolve : Ds_obs.Obs.t -> t
(** Register (or re-fetch) the [engine.*] instruments on a registry. *)

val of_opt : Ds_obs.Obs.t option -> t option
(** [resolve] lifted over the engines' [?obs] argument. *)
