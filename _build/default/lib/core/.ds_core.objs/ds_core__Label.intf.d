lib/core/label.mli: Format Hashtbl
