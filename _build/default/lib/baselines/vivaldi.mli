(** Vivaldi network coordinates (Dabek–Cox–Kaashoek–Morris, SIGCOMM'04)
    — the baseline the paper's introduction contrasts distance sketches
    against.

    Each node maintains a point in R^dim plus a "height" modelling
    access-link cost; spring-relaxation updates pull the embedding
    toward measured distances. Estimates are Euclidean distance plus
    heights. Unlike the Thorup–Zwick sketches, there is no stretch
    guarantee: coordinates can (and on pathological metrics do) both
    under- and over-estimate arbitrarily — the behaviour experiment
    E12 quantifies.

    As a baseline it is granted a privilege the CONGEST algorithms do
    not have: it samples distances to arbitrary peers through an
    oracle (real deployments ping arbitrary IPs), the same modelling
    liberty the paper attributes to the Slivkins/Meridian line. *)

type config = {
  dim : int;  (** embedding dimension *)
  rounds : int;  (** relaxation rounds *)
  samples_per_round : int;  (** distance measurements per node per round *)
  ce : float;  (** error-adaptation gain (0.25 in the paper) *)
  cc : float;  (** coordinate-adaptation gain (0.25 in the paper) *)
}

val default_config : config

type t

val coordinate : t -> int -> float array
val height : t -> int -> float
val error : t -> int -> float

val estimate : t -> int -> int -> int
(** Rounded Euclidean-plus-heights estimate (never negative). *)

val run :
  rng:Ds_util.Rng.t -> ?config:config -> Ds_graph.Graph.t ->
  distance:(int -> int -> int) -> t
(** [run ~rng g ~distance] relaxes coordinates using [distance] as the
    measurement oracle (use exact distances, e.g.
    [Ds_graph.Apsp.dist apsp]). *)
