(* Process-memory introspection for the bench harness, the scale
   experiment and the obs sampler. Linux exposes resident-set numbers
   in [/proc/self/status]; elsewhere the probes degrade to [None] (or
   0 via the [_or_zero] variants) so the callers can keep their JSON
   schema without gating on the platform. The parsing is split out as
   pure functions over strings so malformed or truncated status
   content is unit-testable without a fake /proc. *)

let parse_kb line =
  (* "VmRSS:     123456 kB" -> 123456 *)
  let is_digit c = c >= '0' && c <= '9' in
  let n = String.length line in
  let rec start i = if i < n && not (is_digit line.[i]) then start (i + 1) else i in
  let rec stop i = if i < n && is_digit line.[i] then stop (i + 1) else i in
  let lo = start 0 in
  let hi = stop lo in
  if hi > lo then int_of_string_opt (String.sub line lo (hi - lo)) else None

let find_kb ~key text =
  let prefix = key ^ ":" in
  let plen = String.length prefix in
  let lines = String.split_on_char '\n' text in
  let rec scan = function
    | [] -> None
    | line :: rest ->
      if String.length line > plen && String.sub line 0 plen = prefix then
        parse_kb line
      else scan rest
  in
  scan lines

let status_kb key =
  (* Catch-all: a vanished or unreadable /proc entry (open failure,
     mid-read IO error, permission change) must degrade to [None],
     never leak an exception into a CLI path. *)
  match open_in "/proc/self/status" with
  | exception _ -> None
  | ic ->
    let prefix = key ^ ":" in
    let plen = String.length prefix in
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | exception _ -> None
      | line ->
        if String.length line > plen && String.sub line 0 plen = prefix then
          parse_kb line
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let rss_kb () = status_kb "VmRSS"
let hwm_kb () = status_kb "VmHWM"
let rss_kb_or_zero () = match rss_kb () with Some v -> v | None -> 0
let hwm_kb_or_zero () = match hwm_kb () with Some v -> v | None -> 0

let heap_words () =
  let st = Gc.quick_stat () in
  st.Gc.heap_words
