(** Centralized shortest paths. These are evaluation oracles and
    centralized baselines; the distributed algorithms never call them. *)

val sssp : Graph.t -> src:int -> int array
(** Distances from [src]; [Dist.infinity] for unreachable nodes. *)

val sssp_with_parents : Graph.t -> src:int -> int array * int array
(** Distances and shortest-path-tree parents ([-1] for the source and
    unreachable nodes). *)

val sssp_hops : Graph.t -> src:int -> int array * int array
(** [(dist, hops)] where [hops.(v)] is the minimum hop count over all
    shortest (by weight) paths from [src] to [v] — the quantity whose
    maximum defines the shortest-path diameter [S]. *)

val multi_source : Graph.t -> sources:int array -> int array * int array
(** [(dist, nearest)]: distance to the closest source and the identity
    of that source, ties broken by [(distance, source id)] lexicographic
    order (matching the distributed super-source Bellman–Ford). *)

val restricted : Graph.t -> src:int -> bound:(int * int) array -> int array
(** Thorup–Zwick cluster growth: distances from [src] limited to nodes
    [v] with [(d, src) <lex bound.(v)]. Returns [Dist.infinity] outside
    the cluster. [bound.(v)] is [(d(v, A_{i+1}), p_{i+1}(v))]. *)

val restricted_with_parents :
  Graph.t -> src:int -> bound:(int * int) array -> int array * int array
(** Like {!restricted} but also returns the cluster's shortest-path-tree
    parents ([-1] at [src] and outside the cluster) — the trees whose
    union forms the Thorup–Zwick spanner. *)
