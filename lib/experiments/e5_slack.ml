(** E5 — Lemma 4.2 and Theorem 4.3: density nets and stretch-3 ε-slack
    sketches.

    Paper claims: |N| <= (10/ε) ln n whp and every node is covered
    within R(u, ε); sketches of O((1/ε) log n) words with stretch <= 3
    on ε-far pairs, built in O(S (1/ε) log n) rounds. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Density_net = Ds_core.Density_net
module Slack = Ds_core.Slack
module Eval = Ds_core.Eval

type params = { seed : int; n : int; epss : float list }

let default = { seed = 5; n = 400; epss = [ 0.5; 0.25; 0.1; 0.05 ] }
let quick = { seed = 5; n = 120; epss = [ 0.5; 0.25 ] }

let id = "e5"
let title = "density nets + stretch-3 slack sketches"
let claim_id = "Lemma 4.2 / Theorem 4.3"

let claim =
  "sampling p = 5 ln n/(εn) yields a valid ε-density net of <= (10/ε) ln n \
   nodes whp; distance-to-net sketches have O((1/ε) log n) words, stretch \
   <= 3 on ε-far pairs, and cost O(S (1/ε) log n) rounds"

let bound_expr =
  "`(10/ε) ln n` net nodes; `2|N|` sketch words; `S·|N|` rounds; stretch 3 \
   on ε-far pairs"

let prose =
  "Net sizes land at roughly half the whp bound (sampling gives \
   (5/ε) ln n in expectation) and every sampled net is valid — coverage \
   is checked exactly against the APSP oracle. Measured stretch on \
   ε-far pairs stays far below the worst-case factor 3 (that analysis \
   is for adversarial geometry), with zero violations, and construction \
   rounds stay well under the S·|N| budget."

let run ?pool { seed; n; epss } =
  let w =
    Common.make_workload ?pool ~seed
      ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
      ~n ()
  in
  let s = w.Common.profile.Ds_graph.Props.s in
  let t1 =
    Table.create
      ~title:
        (Printf.sprintf "E5a: density nets (erdos-renyi, n=%d) — Lemma 4.2" n)
      ~headers:[ "eps"; "|N|"; "bound 10/eps ln n"; "covers all"; "sample p" ]
  in
  let t2 =
    Table.create
      ~title:
        (Printf.sprintf
           "E5b: stretch-3 slack sketches (n=%d, S=%d) — Theorem 4.3" n s)
      ~headers:
        [
          "eps"; "words"; "bound 2|N|"; "rounds"; "bound S|N|";
          "far max"; "far avg"; "far p99"; "viol";
        ]
  in
  let checks = ref [] in
  let worst_stretch = ref 0.0 in
  let total_viol = ref 0 in
  let worst_round_ratio = ref 0.0 in
  let phases = ref [] in
  List.iter
    (fun eps ->
      let net = Density_net.sample ~rng:(Rng.create (seed + 13)) ~n ~eps in
      let nn = List.length net in
      let valid = Density_net.is_valid_net w.Common.apsp ~eps net in
      checks :=
        Report.check
          ~bound:(Density_net.size_bound ~n ~eps)
          ~ok:(valid && float_of_int nn <= Density_net.size_bound ~n ~eps)
          (Printf.sprintf "net size, valid coverage (eps=%g)" eps)
          (float_of_int nn)
        :: !checks;
      Table.add_row t1
        [
          Table.cell_float eps;
          Table.cell_int nn;
          Table.cell_float (Density_net.size_bound ~n ~eps);
          (if valid then "yes" else "NO");
          Table.cell_float ~decimals:4 (Density_net.sample_probability ~n ~eps);
        ];
      let r = Slack.build_distributed ?pool ~rng:(Rng.create (seed + 13)) w.Common.graph ~eps in
      let nn = List.length r.Slack.net in
      let far =
        Common.far_sample ~rng:(Rng.create (seed + 17)) w.Common.apsp ~eps
          ~count:3000
      in
      let report =
        Eval.on_pairs
          ~query:(fun u v -> Slack.query r.Slack.sketches.(u) r.Slack.sketches.(v))
          far
      in
      worst_stretch := max !worst_stretch report.Eval.max_stretch;
      total_viol := !total_viol + report.Eval.violations;
      worst_round_ratio :=
        max !worst_round_ratio
          (float_of_int (Metrics.rounds r.Slack.metrics)
          /. float_of_int (s * nn));
      if !phases = [] then
        phases :=
          [
            ( Printf.sprintf "slack build (erdos-renyi, n=%d, eps=%g)" n eps,
              Common.report_phases r.Slack.metrics );
          ];
      Table.add_row t2
        ([
           Table.cell_float eps;
           Table.cell_int (Slack.size_words r.Slack.sketches.(0));
           Table.cell_int (2 * nn);
           Table.cell_int (Metrics.rounds r.Slack.metrics);
           Table.cell_int (s * nn);
         ]
        @ Common.stretch_cells report))
    epss;
  let checks =
    List.rev !checks
    @ [
        Report.check ~bound:3.0
          ~ok:(!total_viol = 0 && !worst_stretch <= 3.0 +. 1e-9)
          "far-pair stretch, worst eps (must be <= 3, zero violations)"
          !worst_stretch;
        Report.check ~bound:1.0
          ~ok:(!worst_round_ratio <= 1.0)
          "construction rounds / S·|N|, worst eps" !worst_round_ratio;
      ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t1; t2 ];
    phases = !phases;
    round_profiles = [];
    verdict = Report.Reproduced;
  }
