type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.12g keeps every value the experiments produce exact enough to
   round-trip while never printing platform-dependent noise digits. *)
let float_repr f =
  (* NaN/infinity have no JSON form; emit null rather than break the
     document. Integral floats print with one decimal so they stay
     floats on any reader ("49.0", not "49"). *)
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

(* Single-line rendering, no trailing newline: the JSONL trace log
   needs one complete document per line, and the Chrome trace file is
   large enough that indentation would triple its size. *)
let to_string_compact v =
  let b = Buffer.create 256 in
  let rec go v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          go item)
        items;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape key);
          Buffer.add_string b "\":";
          go value)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let to_string v =
  let b = Buffer.create 4096 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go indent v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          Buffer.add_string b (escape key);
          Buffer.add_string b "\": ";
          go (indent + 2) value)
        fields;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b
