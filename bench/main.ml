(* The reproduction harness. Two parts:

   1. The per-theorem experiment tables (E1..E14 from DESIGN.md) — the
      "tables and figures" of this theory paper, regenerated on every
      run.
   2. Bechamel wall-clock microbenchmarks (B1..B10): construction and
      query throughput of the library primitives.

   Flags: --micro-only skips the experiment tables; --quick shortens
   the sampling quotas and the B12 batch (the CI profile — noisier
   fits, same schema); --trace also runs one traced multi-bf execution
   and writes BENCH_trace.rounds.jsonl / BENCH_trace.json (Chrome
   trace-event format); DS_DOMAINS=<d> runs the engine phases of the
   experiments on a d-domain pool. Results are identical for every d;
   only wall-clock changes. *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Gen = Ds_graph.Gen
module Engine = Ds_congest.Engine
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Registry = Ds_experiments.Registry
module Pool = Ds_parallel.Pool
module Oracle = Ds_oracle.Oracle
module Workload = Ds_oracle.Workload
module Sketch_family = Ds_sketch.Family
module Sketch_build = Ds_sketch.Build
module Store = Ds_oracle.Sketch_store

(* Bound before the opens: Bechamel's [Toolkit] shadows the stub
   library's [Monotonic_clock] with its measure witness. *)
module Mclock = Monotonic_clock

open Bechamel
open Toolkit

(* B10: per-round cost on a quiescent-but-for-one-link network. Two
   adjacent nodes bounce one message forever while the other n-2 nodes
   (and all other links) stay silent. The engine's worklist makes this
   O(1) per round regardless of graph size — under the old full-rescan
   deliver it was O(|E|). *)
let ping_pong_protocol : (unit, int) Engine.protocol =
  {
    Engine.name = "ping-pong";
    max_msg_words = 1;
    msg_words = (fun _ -> 1);
    halted = (fun _ -> false);
    init =
      (fun api -> if api.Engine.id = 0 && api.Engine.degree > 0 then api.Engine.send 0 0);
    on_round =
      (fun api _ inbox ->
        (* Indexed loop, not [Inbox.iter]: the iter callback would
           allocate a closure per round, and B10 is measuring the
           engine's round overhead, not the harness protocol's. *)
        for j = 0 to Engine.Inbox.length inbox - 1 do
          api.Engine.send (Engine.Inbox.from inbox j) (Engine.Inbox.msg inbox j)
        done);
  }

(* B13: the opposite extreme from B10 — every node broadcasts every
   round, so every directed link delivers every round. On a complete
   graph this is the worst case for the per-link queues (n(n-1)
   deliveries and as many sends per step), which is exactly where the
   boxed-record queues used to pay an allocation per message. *)
let flood_protocol : (unit, int) Engine.protocol =
  {
    Engine.name = "flood";
    max_msg_words = 1;
    msg_words = (fun _ -> 1);
    halted = (fun _ -> false);
    init = (fun api -> api.Engine.broadcast 0);
    on_round =
      (fun api _ inbox ->
        if Engine.Inbox.length inbox > 0 then api.Engine.broadcast 0);
  }

let bench_tests () =
  let n = 256 in
  let rng = Rng.create 1 in
  let g = Gen.erdos_renyi ~rng ~n ~avg_degree:6.0 () in
  let levels = Levels.sample ~rng:(Rng.create 2) ~n ~k:3 in
  let labels = Ds_core.Tz_centralized.build g ~levels in
  let slack = Ds_core.Slack.build_distributed ~rng:(Rng.create 3) g ~eps:0.25 in
  (* Query pairs are drawn up front and cycled: drawing from the RNG
     inside the measured closure made the per-run cost depend on the
     RNG state, which showed up as poor r^2 on B4/B5. *)
  let pairs =
    let pair_rng = Rng.create 4 in
    Array.init 64 (fun _ ->
        let u = Rng.int pair_rng n in
        let v = (u + 1 + Rng.int pair_rng (n - 1)) mod n in
        (u, v))
  in
  let pair_idx = ref 0 in
  let pick () =
    let p = pairs.(!pair_idx land 63) in
    incr pair_idx;
    p
  in
  let big_n = 4096 in
  let big_g = Gen.erdos_renyi ~rng:(Rng.create 6) ~n:big_n ~avg_degree:6.0 () in
  (* Two groups with different sampling configs: the sub-microsecond
     benchmarks need run counts to start high (so per-sample overhead
     and GC stabilisation do not swamp the signal), while the
     multi-millisecond builds need them to start at 1 (so the quota
     still buys enough samples for the fit). *)
  let slow =
    [
      Test.make ~name:"B1 tz-centralized build (n=256,k=3)"
        (Staged.stage (fun () -> Ds_core.Tz_centralized.build g ~levels));
      Test.make ~name:"B2 tz-distributed build (n=256,k=3)"
        (Staged.stage (fun () -> Ds_core.Tz_distributed.build g ~levels));
      Test.make ~name:"B3 tz-echo build (n=256,k=3)"
        (Staged.stage (fun () -> Ds_core.Tz_echo.build g ~levels));
      Test.make ~name:"B6 dijkstra sssp (n=256)"
        (Staged.stage (fun () -> Ds_graph.Dijkstra.sssp g ~src:0));
      Test.make ~name:"B7 spanner extraction (n=256,k=3)"
        (Staged.stage (fun () -> Ds_core.Spanner.of_levels g ~levels));
      Test.make ~name:"B8 cdg build distributed (n=256,eps=.25,k=2)"
        (Staged.stage (fun () ->
             Ds_core.Cdg.build_distributed ~rng:(Rng.create 5) g ~eps:0.25
               ~k:2));
      (* A full multi-bf execution per run (create + run to
         quiescence): every sample is the same amount of protocol
         work. The old rebuild-on-quiescence scheme mixed one-round
         steps with occasional expensive rebuilds and tanked the OLS
         fit. *)
      Test.make ~name:"B9 engine multi-bf run (n=256)"
        (Staged.stage (fun () ->
             let eng =
               Engine.create g
                 (Ds_congest.Multi_bf.protocol
                    ~is_source:(fun u -> u < 8)
                    ~bound:(fun _ -> Ds_graph.Dist.none))
             in
             Engine.run eng));
    ]
  in
  let oracle = Oracle.of_labels labels in
  let fast =
    [
      Test.make ~name:"B4 label query"
        (Staged.stage (fun () ->
             let u, v = pick () in
             Label.query labels.(u) labels.(v)));
      (* Same pairs, same labels as B4, flat-array oracle instead of
         per-node hashtables: the table in BENCH_engine.json is the
         hashtbl-vs-compact comparison. *)
      Test.make ~name:"B11 oracle compact query (vs B4 hashtbl)"
        (Staged.stage (fun () ->
             let u, v = pick () in
             Oracle.query oracle u v));
      Test.make ~name:"B5 slack query (eps=0.25)"
        (Staged.stage (fun () ->
             let u, v = pick () in
             Ds_core.Slack.query slack.Ds_core.Slack.sketches.(u)
               slack.Ds_core.Slack.sketches.(v)));
      Test.make ~name:"B10 quiet engine round (ping-pong, n=4096)"
        (Staged.stage
           (let eng = Engine.create big_g ping_pong_protocol in
            fun () -> Engine.step eng));
    ]
  in
  let flood_g = Gen.complete ~rng:(Rng.create 10) ~n:128 () in
  let slow =
    slow
    @ [
        Test.make ~name:"B13 flood round (complete n=128, 16k links)"
          (Staged.stage
             (let eng = Engine.create flood_g flood_protocol in
              (* one warm step so ring and inbox capacities reach
                 their high-water mark before sampling starts *)
              Engine.step eng;
              fun () -> Engine.step eng));
      ]
  in
  (slow, fast)

module Json = Ds_util.Json

let opt_int = function Some v -> Json.Int v | None -> Json.Null

(* [extra] carries the structured sections (the B12 scaling table, the
   B16/B17 serving sweeps) next to the flat benchmark rows. [cores]
   records the host parallelism the run had available — without it the
   domain-scaling rows are uninterpretable (a 1-core container shows
   flat QPS for every pool size, and that is correct behaviour, not a
   regression). *)
let save_json ~path ~extra rows =
  let row_json (name, ns_per_run, r2) =
    Json.Obj
      [
        ("name", Json.String name);
        ("ns_per_run", Json.Float ns_per_run);
        ("r_square", match r2 with Some v -> Json.Float v | None -> Json.Null);
      ]
  in
  let doc =
    Json.Obj
      (("benchmarks", Json.List (List.map row_json rows))
      :: extra
      @ [
          ("cores", Json.Int (Domain.recommended_domain_count ()));
          (* Process-level memory footprint of the whole bench run: a
             regression canary, not a per-benchmark figure. *)
          ( "mem",
            Json.Obj
              [
                ("rss_kb", opt_int (Ds_util.Mem.rss_kb ()));
                ("hwm_kb", opt_int (Ds_util.Mem.hwm_kb ()));
                ("heap_words", Json.Int (Ds_util.Mem.heap_words ()));
              ] );
        ])
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  close_out oc;
  Printf.printf "(json: %s)\n" path

(* B12: batched oracle queries fanned out over the worker pool, one
   row per pool size. Not a bechamel fit — the quantity of interest is
   bulk throughput (ns per query over a 200k-pair batch), measured
   directly with the monotonic clock after a warm-up pass. On a
   multi-core host the ns/query figure drops as domains grow; answers
   are bit-identical for every pool size (pinned by the test suite).
   Returns the flat rows plus the structured before/after scaling
   table (the diagnosis artifact behind the B12 fix). *)
let oracle_batch_rows ~quick () =
  let n = 1024 and pairs_count = if quick then 50_000 else 200_000 in
  let g = Gen.erdos_renyi ~rng:(Rng.create 7) ~n ~avg_degree:6.0 () in
  let levels = Levels.sample ~rng:(Rng.create 8) ~n ~k:3 in
  let oracle = Oracle.of_labels (Ds_core.Tz_centralized.build g ~levels) in
  let pairs =
    Workload.pairs ~rng:(Rng.create 9) Workload.Uniform ~n ~count:pairs_count
  in
  (* Best of [passes]: a single 50 ms batch is one scheduler quantum
     draw, and on a busy host the row-to-row spread (±15%) swamps the
     domain effect being measured. The minimum over several passes
     estimates the intrinsic cost; each pass is a fresh full batch. *)
  let passes = if quick then 3 else 5 in
  let flat =
    Workload.pairs_flat ~rng:(Rng.create 9) Workload.Uniform ~n
      ~count:pairs_count
  in
  (* Boxed first (the "before" of the regression stays on record),
     then the flat layout: same seed, same pairs, same oracle — the
     delta is purely the [(u,v)] pointer chase plus the cache-line
     sharing at chunk boundaries. *)
  let measured =
    List.map
      (fun domains ->
        Pool.with_pool ~domains (fun pool ->
            ignore (Oracle.query_batch ~pool oracle pairs);
            let best = ref infinity in
            for _ = 1 to passes do
              let _, stats =
                Oracle.run_batch ~pool ~latency_sample:0 oracle pairs
              in
              if stats.Oracle.elapsed_ns < !best then
                best := stats.Oracle.elapsed_ns
            done;
            ignore (Oracle.query_batch_flat ~pool oracle flat);
            let best_flat = ref infinity in
            for _ = 1 to passes do
              let _, stats =
                Oracle.run_batch_flat ~pool ~latency_sample:0 oracle flat
              in
              if stats.Oracle.elapsed_ns < !best_flat then
                best_flat := stats.Oracle.elapsed_ns
            done;
            ( domains,
              !best /. float_of_int pairs_count,
              !best_flat /. float_of_int pairs_count )))
      [ 1; 2; 4; 8 ]
  in
  let rows =
    List.concat_map
      (fun (domains, boxed, flat_ns) ->
        [
          ( Printf.sprintf
              "B12 oracle batch query boxed (n=1024, %dk pairs, domains=%d)"
              (pairs_count / 1000) domains,
            boxed,
            None );
          ( Printf.sprintf
              "B12 oracle batch query flat (n=1024, %dk pairs, domains=%d)"
              (pairs_count / 1000) domains,
            flat_ns,
            None );
        ])
      measured
  in
  let table =
    Json.Obj
      [
        ("bench", Json.String "B12");
        ("n", Json.Int n);
        ("pairs", Json.Int pairs_count);
        ( "root_cause",
          Json.String
            "per-pair closure dispatch through parallel_for plus a \
             dependent (u,v) tuple load per pair and false sharing of \
             result cache lines at chunk boundaries; fixed by \
             chunk-granularity dispatch over a flat endpoint array with \
             8-pair block-aligned writes" );
        ( "rows",
          Json.List
            (List.map
               (fun (domains, boxed, flat_ns) ->
                 Json.Obj
                   [
                     ("domains", Json.Int domains);
                     ("before_boxed_ns_per_pair", Json.Float boxed);
                     ("after_flat_ns_per_pair", Json.Float flat_ns);
                   ])
               measured) );
      ]
  in
  (rows, table)

(* B16/B17: the serving loop (Serve.run). B16 measures delivered QPS
   vs pool size on a large Zipf batch, closed loop, hot-pair cache on
   — the row the CI throughput floor gates. B17 sweeps the Zipf
   exponent at a fixed configuration and records the measured cache
   hit rate (deterministic: static block-cyclic assignment makes cache
   contents a pure function of stream and config). *)
let serve_rows ~quick () =
  let n = 1024 in
  let g = Gen.erdos_renyi ~rng:(Rng.create 7) ~n ~avg_degree:6.0 () in
  let levels = Levels.sample ~rng:(Rng.create 8) ~n ~k:3 in
  let oracle = Oracle.of_labels (Ds_core.Tz_centralized.build g ~levels) in
  let serve = Ds_oracle.Serve.run in
  let b16_pairs = if quick then 100_000 else 200_000 in
  let b16_alpha = 1.2 and b16_bits = 12 in
  let b16_flat =
    Workload.pairs_flat ~rng:(Rng.create 15)
      (Workload.Zipf { alpha = b16_alpha })
      ~n ~count:b16_pairs
  in
  let passes = if quick then 2 else 4 in
  let b16 =
    List.map
      (fun domains ->
        Pool.with_pool ~domains (fun pool ->
            let config =
              { Ds_oracle.Serve.default_config with cache_bits = b16_bits }
            in
            ignore (serve ~pool ~config oracle b16_flat);
            let best_qps = ref 0. and hit_rate = ref 0. in
            for _ = 1 to passes do
              let _, stats = serve ~pool ~config oracle b16_flat in
              if stats.Ds_oracle.Serve.qps > !best_qps then
                best_qps := stats.Ds_oracle.Serve.qps;
              hit_rate := stats.Ds_oracle.Serve.hit_rate
            done;
            (domains, !best_qps, !hit_rate)))
      [ 1; 2; 4; 8 ]
  in
  let b17_pairs = 100_000 and b17_bits = 14 in
  let b17 =
    List.map
      (fun kind ->
        let flat =
          Workload.pairs_flat ~rng:(Rng.create 16) kind ~n ~count:b17_pairs
        in
        let config =
          { Ds_oracle.Serve.default_config with cache_bits = b17_bits }
        in
        let _, stats = serve ~config oracle flat in
        (kind, stats.Ds_oracle.Serve.hit_rate, stats.Ds_oracle.Serve.qps))
      [
        Workload.Uniform;
        Workload.Zipf { alpha = 0.6 };
        Workload.Zipf { alpha = 0.9 };
        Workload.Zipf { alpha = 1.2 };
        Workload.Zipf { alpha = 1.5 };
      ]
  in
  (* B18: the metrics plane's cost on the serving hot path. Same
     stream and config as B16 at a fixed pool width, best-of-passes on
     both sides; obs + a live sampler is the full instrumented
     configuration the CI smoke runs. The gate (ci.yml) holds the
     delta at <= 2% — and 0% when [?obs] is absent, which is B16's
     own row measured with no registry in the process. *)
  let b18_domains = 4 in
  (* Best-of-5 on both sides (B12's discipline): the off/on delta is a
     low-single-digit percentage, smaller than run-to-run scheduler
     noise at lower pass counts — the committed number must agree with
     the <= 2% CI gate. *)
  let b18_passes = if quick then 3 else 5 in
  let b18_off, b18_on =
    Pool.with_pool ~domains:b18_domains (fun pool ->
        let config =
          { Ds_oracle.Serve.default_config with cache_bits = b16_bits }
        in
        let best run =
          ignore (run ());
          let best_qps = ref 0. in
          for _ = 1 to b18_passes do
            let _, stats = run () in
            if stats.Ds_oracle.Serve.qps > !best_qps then
              best_qps := stats.Ds_oracle.Serve.qps
          done;
          !best_qps
        in
        let off = best (fun () -> serve ~pool ~config oracle b16_flat) in
        let on =
          best (fun () ->
              let obs = Ds_obs.Obs.create () in
              let sampler = Ds_obs.Sampler.create ~interval_ms:100 obs in
              serve ~pool ~config ~obs ~sampler oracle b16_flat)
        in
        (off, on))
  in
  let b18_overhead_pct = (b18_off -. b18_on) /. b18_off *. 100. in
  let rows =
    List.map
      (fun (domains, qps, hit_rate) ->
        ( Printf.sprintf
            "B16 serve loop (n=%d, %dk zipf:%.1f pairs, cache=%db, \
             hit=%.2f, domains=%d)"
            n (b16_pairs / 1000) b16_alpha b16_bits hit_rate domains,
          1e9 /. qps,
          None ))
      b16
    @ [
        ( Printf.sprintf
            "B18 serve with obs+sampler (n=%d, %dk zipf:%.1f pairs, \
             domains=%d, overhead=%.2f%%)"
            n (b16_pairs / 1000) b16_alpha b18_domains b18_overhead_pct,
          1e9 /. b18_on,
          None );
      ]
    @ List.map
        (fun (kind, hit_rate, qps) ->
          ( Printf.sprintf
              "B17 serve cache hit %.3f (n=%d, %dk %s pairs, cache=%db)"
              hit_rate n (b17_pairs / 1000) (Workload.name kind) b17_bits,
            1e9 /. qps,
            None ))
        b17
  in
  let table =
    Json.Obj
      [
        ( "b16",
          Json.Obj
            [
              ("n", Json.Int n);
              ("pairs", Json.Int b16_pairs);
              ("workload", Json.String (Printf.sprintf "zipf(%.2f)" b16_alpha));
              ("cache_bits", Json.Int b16_bits);
              ( "rows",
                Json.List
                  (List.map
                     (fun (domains, qps, hit_rate) ->
                       Json.Obj
                         [
                           ("domains", Json.Int domains);
                           ("qps", Json.Float qps);
                           ("ns_per_pair", Json.Float (1e9 /. qps));
                           ("hit_rate", Json.Float hit_rate);
                         ])
                     b16) );
            ] );
        ( "b17",
          Json.Obj
            [
              ("n", Json.Int n);
              ("pairs", Json.Int b17_pairs);
              ("domains", Json.Int 1);
              ("cache_bits", Json.Int b17_bits);
              ( "rows",
                Json.List
                  (List.map
                     (fun (kind, hit_rate, qps) ->
                       Json.Obj
                         [
                           ("workload", Json.String (Workload.name kind));
                           ( "alpha",
                             match kind with
                             | Workload.Zipf { alpha } -> Json.Float alpha
                             | Workload.Uniform -> Json.Null );
                           ("hit_rate", Json.Float hit_rate);
                           ("qps", Json.Float qps);
                         ])
                     b17) );
            ] );
        ( "b18",
          Json.Obj
            [
              ("n", Json.Int n);
              ("pairs", Json.Int b16_pairs);
              ("domains", Json.Int b18_domains);
              ("cache_bits", Json.Int b16_bits);
              ("qps_off", Json.Float b18_off);
              ("qps_on", Json.Float b18_on);
              ("overhead_pct", Json.Float b18_overhead_pct);
            ] );
      ]
  in
  (rows, table)

let now_ns () = Int64.to_float (Mclock.now ())

(* B14: one full distributed TZ build per backend, same graph, same
   hierarchy — the head-to-head the sharded plane exists for. Directly
   timed (a build is far past bechamel's sweet spot); best of
   [passes]. *)
let backend_build_rows ~quick () =
  let n = if quick then 1024 else 4096 in
  let g =
    Gen.streaming_sparse ~rng:(Rng.create 11) ~n ~avg_degree:6.0 ()
  in
  let levels = Levels.sample ~rng:(Rng.create 12) ~n ~k:3 in
  let domains =
    match Sys.getenv_opt "DS_DOMAINS" with
    | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> min 4 (Domain.recommended_domain_count ())
  in
  let passes = if quick then 1 else 3 in
  List.map
    (fun backend ->
      Pool.with_pool ~domains (fun pool ->
          let best = ref infinity in
          for _ = 1 to passes do
            let t0 = now_ns () in
            ignore (Ds_core.Tz_distributed.build ~backend ~pool g ~levels);
            let dt = now_ns () -. t0 in
            if dt < !best then best := dt
          done;
          ( Printf.sprintf "B14 tz-distributed build %s (n=%d,k=3,domains=%d)"
              (Ds_congest.Plane.backend_name backend)
              n domains,
            !best,
            None )))
    [ Ds_congest.Plane.Congest; Ds_congest.Plane.Sharded ]

(* B15: the sharded plane at scale-experiment size, one pass, with the
   peak-RSS delta it cost. The committed SCALE.json covers the full
   n sweep; this row keeps a scale point inside the bench artifact. *)
let scale_build_row ~quick () =
  let n = if quick then 20_000 else 100_000 in
  let g =
    Gen.streaming_sparse ~rng:(Rng.create 13) ~n ~avg_degree:8.0 ()
  in
  let k = 4 in
  let levels = Levels.sample ~rng:(Rng.create 14) ~n ~k in
  let domains =
    match Sys.getenv_opt "DS_DOMAINS" with
    | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> min 4 (Domain.recommended_domain_count ())
  in
  Pool.with_pool ~domains (fun pool ->
      let t0 = now_ns () in
      ignore
        (Ds_core.Tz_distributed.build ~backend:Ds_congest.Plane.Sharded ~pool
           g ~levels);
      let dt = now_ns () -. t0 in
      [
        ( Printf.sprintf "B15 sharded tz build at scale (n=%d,k=%d,domains=%d)"
            n k domains,
          dt,
          None );
      ])

(* B19/B20/B22: the multi-family platform, one row triple per sketch
   family. B19 is a full distributed build (directly timed, best of
   passes, like B14); B20 is the serving cost of the resulting
   heap-backed oracle in ns/pair over the flat batch path (the same
   measurement style as B12, one fixed pool width); B22 repeats the
   B20 measurement against a mapped-backing oracle (save -> load
   ~mode:Mmap of the same sketch), so the heap and Bigarray query
   kernels are compared on identical inputs. A "families" table in the
   JSON carries the structured view: build ns, sketch words, serve
   ns/pair for both backings. *)
let family_rows ~quick () =
  let n = if quick then 512 else 2048 in
  let pairs_count = if quick then 20_000 else 100_000 in
  let k = 3 and seed = 19 in
  let g =
    Gen.streaming_sparse ~rng:(Rng.create 19) ~n ~avg_degree:6.0 ()
  in
  let domains =
    match Sys.getenv_opt "DS_DOMAINS" with
    | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> min 4 (Domain.recommended_domain_count ())
  in
  let passes = if quick then 1 else 3 in
  Pool.with_pool ~domains (fun pool ->
      let flat =
        Workload.pairs_flat ~rng:(Rng.create 20) Workload.Uniform ~n
          ~count:pairs_count
      in
      let per_family =
        List.map
          (fun family ->
            let fname = Sketch_family.name family in
            let best_build = ref infinity in
            let built = ref None in
            for _ = 1 to passes do
              let t0 = now_ns () in
              let r = Sketch_build.run ~pool ~family g ~k ~seed in
              let dt = now_ns () -. t0 in
              if dt < !best_build then best_build := dt;
              built := Some r
            done;
            let r = Option.get !built in
            let oracle = Oracle.of_sketch r.Sketch_build.sketch in
            let serve_best o =
              let best = ref infinity in
              for _ = 1 to passes + 1 do
                let t0 = now_ns () in
                ignore (Oracle.query_batch_flat ~pool o flat);
                let dt = now_ns () -. t0 in
                if dt < !best then best := dt
              done;
              !best /. float_of_int pairs_count
            in
            let ns_per_pair = serve_best oracle in
            let mmap_ns_per_pair =
              let path = Filename.temp_file "dss_b22" ".dsk" in
              Fun.protect
                ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
                (fun () ->
                  Store.save path (Store.v ~seed r.Sketch_build.sketch);
                  serve_best
                    (Oracle.of_store (Store.load ~mode:Store.Mmap path)))
            in
            ( fname,
              !best_build,
              Oracle.size_words oracle,
              ns_per_pair,
              mmap_ns_per_pair ))
          Sketch_family.all
      in
      let rows =
        List.concat_map
          (fun (fname, build_ns, _, ns_per_pair, mmap_ns_per_pair) ->
            [
              ( Printf.sprintf "B19 %s build (n=%d,k=%d,domains=%d)" fname n
                  k domains,
                build_ns,
                None );
              ( Printf.sprintf "B20 %s serve per pair (n=%d,%dk pairs,\
                                domains=%d)"
                  fname n (pairs_count / 1000) domains,
                ns_per_pair,
                None );
              ( Printf.sprintf "B22 %s serve per pair, mmap (n=%d,%dk pairs,\
                                domains=%d)"
                  fname n (pairs_count / 1000) domains,
                mmap_ns_per_pair,
                None );
            ])
          per_family
      in
      let table =
        Json.Obj
          [
            ("bench", Json.String "B19/B20/B22");
            ("n", Json.Int n);
            ("k", Json.Int k);
            ("pairs", Json.Int pairs_count);
            ("domains", Json.Int domains);
            ( "rows",
              Json.List
                (List.map
                   (fun (fname, build_ns, words, ns_per_pair, mmap_ns) ->
                     Json.Obj
                       [
                         ("sketch_family", Json.String fname);
                         ("build_ns", Json.Float build_ns);
                         ("size_words", Json.Int words);
                         ("serve_ns_per_pair", Json.Float ns_per_pair);
                         ("serve_ns_per_pair_mmap", Json.Float mmap_ns);
                       ])
                   per_family) );
          ]
      in
      (rows, table))

(* B21: time-to-first-query of a scale-sized snapshot, heap load vs
   zero-copy map. Both legs do the whole cold-start path — open the
   file, construct the oracle, answer one query — so the row is the
   restart-latency number an operator cares about, not just the I/O.
   The heap leg reads, checksums and copies every section; the mmap
   leg maps the file and validates the header and offset table only,
   so its cost is near-constant in the snapshot size. Built once
   (sharded backend, scale-experiment shape), saved to a temp file,
   each leg best-of [passes]. *)
let snapshot_rows ~quick () =
  let n = 100_000 in
  let g =
    Gen.streaming_sparse ~rng:(Rng.create 23) ~n ~avg_degree:8.0 ()
  in
  let k = 4 in
  let levels = Levels.sample ~rng:(Rng.create 24) ~n ~k in
  let domains =
    match Sys.getenv_opt "DS_DOMAINS" with
    | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> min 4 (Domain.recommended_domain_count ())
  in
  let passes = if quick then 3 else 5 in
  let labels =
    Pool.with_pool ~domains (fun pool ->
        let r =
          Ds_core.Tz_distributed.build ~backend:Ds_congest.Plane.Sharded ~pool
            g ~levels
        in
        r.Ds_core.Tz_distributed.labels)
  in
  let store = Store.of_labels ~seed:23 ~graph_family:"streaming_sparse" labels in
  let path = Filename.temp_file "dss_b21" ".dsk" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.save path store;
      let file_bytes =
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        close_in ic;
        len
      in
      let ttfq mode =
        let once () =
          let t0 = now_ns () in
          let o = Oracle.of_store (Store.load ~mode path) in
          ignore (Oracle.query o 0 (n / 2));
          now_ns () -. t0
        in
        let best = ref (once ()) in
        for _ = 2 to passes do
          let dt = once () in
          if dt < !best then best := dt
        done;
        !best
      in
      let heap_ns = ttfq Store.Heap in
      let mmap_ns = ttfq Store.Mmap in
      let speedup = heap_ns /. mmap_ns in
      let rows =
        [
          ( Printf.sprintf "B21 snapshot TTFQ heap load (n=%d,k=%d,%d MB)" n k
              (file_bytes / 1_000_000),
            heap_ns,
            None );
          ( Printf.sprintf "B21 snapshot TTFQ mmap load (n=%d,k=%d,%d MB)" n k
              (file_bytes / 1_000_000),
            mmap_ns,
            None );
        ]
      in
      let table =
        Json.Obj
          [
            ("bench", Json.String "B21");
            ("n", Json.Int n);
            ("k", Json.Int k);
            ("file_bytes", Json.Int file_bytes);
            ("heap_ttfq_ns", Json.Float heap_ns);
            ("mmap_ttfq_ns", Json.Float mmap_ns);
            ("mmap_speedup", Json.Float speedup);
          ]
      in
      (rows, table))

let run_microbenches ~quick () =
  print_endline "### Microbenchmarks (Bechamel, monotonic clock)\n";
  let slow_tests, fast_tests = bench_tests () in
  (* ~1.5 s of sampling per benchmark — the 0.5 s quota left too few
     long samples for a stable OLS fit. The fast group additionally
     starts run counts at 100 (warm start): per-sample measurement and
     GC-stabilisation overhead swamps nanosecond-scale bodies when
     samples begin at one run. --quick (the CI smoke profile) cuts the
     quota to 0.3 s: fits get noisier but the schema and coverage are
     identical, so the uploaded JSON is still comparable run to run. *)
  let quota = Time.second (if quick then 0.3 else 1.5) in
  let slow_cfg =
    Benchmark.cfg ~limit:2000 ~quota ~stabilize:true ~kde:None ()
  in
  let fast_cfg =
    Benchmark.cfg ~limit:2000 ~quota ~start:10 ~sampling:(`Geometric 1.05)
      ~stabilize:false ~kde:None ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let analyze cfg tests =
    let raw =
      Benchmark.all cfg
        Instance.[ monotonic_clock ]
        (Test.make_grouped ~name:"distsketch" tests)
    in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.fold (fun name r acc -> (name, r) :: acc) results []
  in
  let rows =
    analyze slow_cfg slow_tests @ analyze fast_cfg fast_tests
    |> List.sort compare
  in
  let t =
    Ds_util.Table.create ~title:"wall-clock per run"
      ~headers:[ "benchmark"; "time/run"; "r^2" ]
  in
  let pretty_ns est =
    if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
    else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
    else if est > 1e3 then Printf.sprintf "%.3f us" (est /. 1e3)
    else Printf.sprintf "%.1f ns" est
  in
  let json_rows =
    List.map
      (fun (name, r) ->
        let est =
          match Analyze.OLS.estimates r with Some (e :: _) -> e | _ -> nan
        in
        let r2 = Analyze.OLS.r_square r in
        let r2s =
          match r2 with Some v -> Printf.sprintf "%.4f" v | None -> "-"
        in
        Ds_util.Table.add_row t [ name; pretty_ns est; r2s ];
        (name, est, r2))
      rows
  in
  let b12_rows, b12_table = oracle_batch_rows ~quick () in
  let b16_rows, serve_table = serve_rows ~quick () in
  let b19_rows, families_table = family_rows ~quick () in
  let b21_rows, snapshot_table = snapshot_rows ~quick () in
  let batch_rows =
    b12_rows
    @ backend_build_rows ~quick ()
    @ scale_build_row ~quick ()
    @ b16_rows
    @ b19_rows
    @ b21_rows
  in
  List.iter
    (fun (name, est, _) ->
      Ds_util.Table.add_row t [ name; pretty_ns est; "-" ])
    batch_rows;
  Ds_util.Table.print t;
  save_json ~path:"BENCH_engine.json"
    ~extra:
      [
        ("b12_scaling", b12_table);
        ("serve", serve_table);
        ("families", families_table);
        ("snapshot", snapshot_table);
      ]
    (json_rows @ batch_rows)

(* --trace: one traced multi-bf execution, exported as the round log
   and a Chrome trace file next to BENCH_engine.json. *)
let run_traced () =
  let n = 256 in
  let g = Gen.erdos_renyi ~rng:(Rng.create 1) ~n ~avg_degree:6.0 () in
  let tracer = Ds_congest.Trace.create () in
  let _, m =
    Ds_congest.Multi_bf.run ~tracer g
      ~sources:(List.init 8 Fun.id)
      ~bound:(fun _ -> Ds_graph.Dist.none)
  in
  let write path contents =
    let oc = open_out_bin path in
    output_string oc contents;
    close_out oc;
    Printf.printf "(trace: %s)\n" path
  in
  write "BENCH_trace.rounds.jsonl" (Ds_congest.Trace.jsonl tracer);
  write "BENCH_trace.json"
    (Ds_congest.Trace.chrome ~phases:(Ds_congest.Metrics.phases m) tracer);
  let p = Ds_congest.Trace.profile tracer in
  Printf.printf
    "traced multi-bf (n=%d): %d rounds, peak %d msgs/round at round %d, \
     peak backlog %d\n"
    n p.Ds_congest.Trace.rounds p.Ds_congest.Trace.peak_delivered
    p.Ds_congest.Trace.peak_delivered_round p.Ds_congest.Trace.max_link_backlog

let () =
  let micro_only =
    Array.exists (fun a -> a = "--micro-only") Sys.argv
  in
  let report =
    Array.exists (fun a -> a = "--report") Sys.argv
  in
  let trace =
    Array.exists (fun a -> a = "--trace") Sys.argv
  in
  let quick =
    Array.exists (fun a -> a = "--quick") Sys.argv
  in
  print_endline
    "Reproduction harness: 'Efficient Computation of Distance Sketches in \
     Distributed Networks' (Das Sarma, Dinitz, Pandurangan; SPAA 2012).\n\
     The paper is theory-only; each experiment below reproduces one theorem \
     or lemma (see DESIGN.md / EXPERIMENTS.md).\n";
  if not micro_only then begin
    let domains =
      match Sys.getenv_opt "DS_DOMAINS" with
      | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
      | None -> 1
    in
    Pool.with_pool ~domains (fun pool ->
        ignore (Registry.run_all ~pool ());
        if report then
          List.iter
            (Printf.printf "wrote %s\n")
            (Registry.write_files ~pool ~dir:"." ()))
  end;
  if trace then run_traced ();
  run_microbenches ~quick ()
