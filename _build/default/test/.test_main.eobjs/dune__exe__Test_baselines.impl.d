test/test_baselines.ml: Alcotest Array Ds_baselines Ds_congest Ds_core Ds_graph Ds_util Float Helpers List Printf
