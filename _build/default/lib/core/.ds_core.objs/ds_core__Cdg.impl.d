lib/core/cdg.ml: Array Cell_cast Density_net Ds_congest Ds_graph Label Levels List Tz_centralized Tz_distributed
