module Json = Ds_util.Json

type round = {
  round : int;
  active_nodes : int;
  active_links : int;
  delivered : int;
  words : int;
  in_flight : int;
  link_backlog : int;
  delivery_ns : int;
  compute_ns : int;
  busy_domains : int;
}

let zero_round =
  {
    round = 0;
    active_nodes = 0;
    active_links = 0;
    delivered = 0;
    words = 0;
    in_flight = 0;
    link_backlog = 0;
    delivery_ns = 0;
    compute_ns = 0;
    busy_domains = 0;
  }

type t = {
  mutable rows : round array; (* only the first [len] slots are valid *)
  mutable len : int;
  mutable sent : int array; (* per node, cumulative *)
  mutable recv : int array;
  mutable pool : int;
}

let create () = { rows = [||]; len = 0; sent = [||]; recv = [||]; pool = 1 }

let grow a n = Array.init n (fun i -> if i < Array.length a then a.(i) else 0)

let attach t ~n ~domains =
  if Array.length t.sent < n then begin
    t.sent <- grow t.sent n;
    t.recv <- grow t.recv n
  end;
  t.pool <- domains

let count_send t u k = t.sent.(u) <- t.sent.(u) + k
let count_recv t u k = t.recv.(u) <- t.recv.(u) + k

let record_round t r =
  if t.len = Array.length t.rows then begin
    let cap = max 64 (2 * t.len) in
    let rows = Array.make cap zero_round in
    Array.blit t.rows 0 rows 0 t.len;
    t.rows <- rows
  end;
  t.rows.(t.len) <- r;
  t.len <- t.len + 1

let drop_last t = if t.len > 0 then t.len <- t.len - 1

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let rounds_logged t = t.len
let rows t = Array.to_list (Array.sub t.rows 0 t.len)
let sent t u = t.sent.(u)
let received t u = t.recv.(u)
let pool_domains t = t.pool

type profile = {
  rounds : int;
  messages : int;
  total_words : int;
  peak_delivered : int;
  peak_delivered_round : int;
  peak_active_links : int;
  peak_active_links_round : int;
  peak_in_flight : int;
  peak_in_flight_round : int;
  max_link_backlog : int;
}

let profile t =
  let p =
    ref
      {
        rounds = t.len;
        messages = 0;
        total_words = 0;
        peak_delivered = 0;
        peak_delivered_round = 0;
        peak_active_links = 0;
        peak_active_links_round = 0;
        peak_in_flight = 0;
        peak_in_flight_round = 0;
        max_link_backlog = 0;
      }
  in
  for i = 0 to t.len - 1 do
    let r = t.rows.(i) and acc = !p in
    let acc =
      { acc with messages = acc.messages + r.delivered;
                 total_words = acc.total_words + r.words }
    in
    let acc =
      if r.delivered > acc.peak_delivered then
        { acc with peak_delivered = r.delivered;
                   peak_delivered_round = i + 1 }
      else acc
    in
    let acc =
      if r.active_links > acc.peak_active_links then
        { acc with peak_active_links = r.active_links;
                   peak_active_links_round = i + 1 }
      else acc
    in
    let acc =
      if r.in_flight > acc.peak_in_flight then
        { acc with peak_in_flight = r.in_flight;
                   peak_in_flight_round = i + 1 }
      else acc
    in
    p := { acc with max_link_backlog = max acc.max_link_backlog r.link_backlog }
  done;
  !p

let hotspots ?(k = 5) t =
  let all = ref [] in
  for u = Array.length t.sent - 1 downto 0 do
    if t.sent.(u) + t.recv.(u) > 0 then
      all := (u, t.sent.(u), t.recv.(u)) :: !all
  done;
  let by_traffic (u, su, ru) (v, sv, rv) =
    match compare (sv + rv) (su + ru) with 0 -> compare u v | c -> c
  in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  take k (List.sort by_traffic !all)

(* ---- JSONL ---- *)

let jsonl ?(timing = true) t =
  let b = Buffer.create (128 * (t.len + 1)) in
  let line v =
    Buffer.add_string b (Json.to_string_compact v);
    Buffer.add_char b '\n'
  in
  line
    (Json.Obj
       ([
          ("schema", Json.String "distsketch.trace.rounds");
          ("version", Json.Int 1);
          ("timing", Json.Bool timing);
        ]
       @ if timing then [ ("pool_domains", Json.Int t.pool) ] else []));
  for i = 0 to t.len - 1 do
    let r = t.rows.(i) in
    line
      (Json.Obj
         ([
            ("round", Json.Int r.round);
            ("active_nodes", Json.Int r.active_nodes);
            ("active_links", Json.Int r.active_links);
            ("delivered", Json.Int r.delivered);
            ("words", Json.Int r.words);
            ("in_flight", Json.Int r.in_flight);
            ("link_backlog", Json.Int r.link_backlog);
          ]
         @
         if timing then
           [
             ("delivery_ns", Json.Int r.delivery_ns);
             ("compute_ns", Json.Int r.compute_ns);
             ("busy_domains", Json.Int r.busy_domains);
           ]
         else []))
  done;
  Buffer.contents b

(* ---- Chrome trace events ---- *)

(* Timestamps are trace-microseconds. Under [`Wall] each round's spans
   sit at the measured cumulative offsets; under [`Rounds] virtual
   time gives every round 1000 us split evenly between delivery and
   compute, which keeps the file deterministic across hosts and pool
   sizes. *)
let chrome ?(clock = `Wall) ?(phases = []) t =
  let wall = match clock with `Wall -> true | `Rounds -> false in
  let us ns = float_of_int ns /. 1000.0 in
  (* starts.(i) = trace time at which row i begins; starts.(len) = end. *)
  let starts = Array.make (t.len + 1) 0.0 in
  let split = Array.make (max 1 t.len) 0.0 in
  for i = 0 to t.len - 1 do
    let r = t.rows.(i) in
    let d, c =
      if wall then (us r.delivery_ns, us r.compute_ns) else (500.0, 500.0)
    in
    split.(i) <- d;
    starts.(i + 1) <- starts.(i) +. d +. c
  done;
  let events = ref [] in
  let emit e = events := e :: !events in
  let meta name pid tid value =
    emit
      (Json.Obj
         [
           ("name", Json.String name);
           ("ph", Json.String "M");
           ("pid", Json.Int pid);
           ("tid", Json.Int tid);
           ("args", Json.Obj [ ("name", Json.String value) ]);
         ])
  in
  let span name tid ts dur args =
    emit
      (Json.Obj
         [
           ("name", Json.String name);
           ("ph", Json.String "X");
           ("pid", Json.Int 1);
           ("tid", Json.Int tid);
           ("ts", Json.Float ts);
           ("dur", Json.Float dur);
           ("args", Json.Obj args);
         ])
  in
  let counter name ts key value =
    emit
      (Json.Obj
         [
           ("name", Json.String name);
           ("ph", Json.String "C");
           ("pid", Json.Int 1);
           ("ts", Json.Float ts);
           ("args", Json.Obj [ (key, Json.Int value) ]);
         ])
  in
  meta "process_name" 1 0 "distsketch CONGEST engine";
  meta "thread_name" 1 1 "rounds (delivery / compute)";
  if phases <> [] then meta "thread_name" 1 2 "protocol phases";
  for i = 0 to t.len - 1 do
    let r = t.rows.(i) in
    let t0 = starts.(i) in
    span "delivery" 1 t0 split.(i)
      [
        ("round", Json.Int r.round);
        ("delivered", Json.Int r.delivered);
        ("words", Json.Int r.words);
        ("active_links", Json.Int r.active_links);
        ("link_backlog", Json.Int r.link_backlog);
      ];
    span "compute" 1 (t0 +. split.(i))
      (starts.(i + 1) -. t0 -. split.(i))
      (("round", Json.Int r.round)
      :: ("active_nodes", Json.Int r.active_nodes)
      ::
      (if wall then [ ("busy_domains", Json.Int r.busy_domains) ] else []));
    counter "in-flight" t0 "messages" r.in_flight;
    counter "active links" t0 "links" r.active_links;
    counter "delivered" t0 "messages" r.delivered
  done;
  (* Phase spans, aligned by cumulative round counts; a phase list
     from a matching run sums exactly to the logged rows, but clamp
     anyway so a foreign list cannot index out of range. *)
  let r0 = ref 0 in
  List.iter
    (fun (p : Metrics.phase) ->
      let lo = min !r0 t.len in
      let hi = min (!r0 + p.Metrics.rounds) t.len in
      if hi > lo then
        span p.Metrics.name 2 starts.(lo)
          (starts.(hi) -. starts.(lo))
          [
            ("rounds", Json.Int p.Metrics.rounds);
            ("messages", Json.Int p.Metrics.messages);
            ("words", Json.Int p.Metrics.words);
          ];
      r0 := !r0 + p.Metrics.rounds)
    phases;
  Json.to_string_compact
    (Json.Obj
       [
         ("traceEvents", Json.List (List.rev !events));
         ("displayTimeUnit", Json.String "ms");
       ])

(* ---- Summary ---- *)

let summary ?(top_k = 5) ?(timing = true) t =
  let p = profile t in
  let total f = Array.fold_left (fun a r -> a + f r) 0 (Array.sub t.rows 0 t.len) in
  Json.Obj
    ([
       ("schema", Json.String "distsketch.trace.summary");
       ("version", Json.Int 1);
       ("rounds", Json.Int p.rounds);
       ("messages", Json.Int p.messages);
       ("words", Json.Int p.total_words);
       ( "peaks",
         Json.Obj
           [
             ("delivered", Json.Int p.peak_delivered);
             ("delivered_round", Json.Int p.peak_delivered_round);
             ("active_links", Json.Int p.peak_active_links);
             ("active_links_round", Json.Int p.peak_active_links_round);
             ("in_flight", Json.Int p.peak_in_flight);
             ("in_flight_round", Json.Int p.peak_in_flight_round);
             ("max_link_backlog", Json.Int p.max_link_backlog);
           ] );
       ( "hotspots",
         Json.List
           (List.map
              (fun (u, s, r) ->
                Json.Obj
                  [
                    ("node", Json.Int u);
                    ("sent", Json.Int s);
                    ("received", Json.Int r);
                  ])
              (hotspots ~k:top_k t)) );
     ]
    @
    if timing then
      [
        ( "timing",
          Json.Obj
            [
              ("delivery_ns", Json.Int (total (fun r -> r.delivery_ns)));
              ("compute_ns", Json.Int (total (fun r -> r.compute_ns)));
              ("pool_domains", Json.Int t.pool);
            ] );
      ]
    else [])
