lib/core/spanner.ml: Array Ds_congest Ds_graph Hashtbl Levels List Tz_centralized
