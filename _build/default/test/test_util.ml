module Rng = Ds_util.Rng
module Pqueue = Ds_util.Pqueue
module Stats = Ds_util.Stats
module Table = Ds_util.Table

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  let x = Rng.bits64 a and y = Rng.bits64 c in
  Alcotest.(check bool) "streams differ" true (x <> y)

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r 5 9 in
    Alcotest.(check bool) "in range" true (v >= 5 && v <= 9)
  done

let test_rng_bool_bias () =
  let r = Rng.create 11 in
  let hits = ref 0 in
  let trials = 20000 in
  for _ = 1 to trials do
    if Rng.bool r 0.25 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "freq %.3f near 0.25" freq)
    true
    (freq > 0.22 && freq < 0.28)

let test_rng_sample_without_replacement () =
  let r = Rng.create 5 in
  let s = Rng.sample_without_replacement r 10 30 in
  Alcotest.(check int) "count" 10 (Array.length s);
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "range" true (v >= 0 && v < 30);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen v);
      Hashtbl.replace seen v ())
    s

let test_rng_shuffle_permutation () =
  let r = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue pops in sorted order" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let q = Pqueue.create () in
      List.iter (fun x -> Pqueue.add q x x) l;
      let rec drain acc =
        match Pqueue.pop_min q with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare l)

let test_pqueue_interleaved () =
  let q = Pqueue.create () in
  Pqueue.add q 5 "five";
  Pqueue.add q 1 "one";
  Alcotest.(check (option (pair int string))) "min" (Some (1, "one"))
    (Pqueue.min_elt q);
  Alcotest.(check (option (pair int string))) "pop" (Some (1, "one"))
    (Pqueue.pop_min q);
  Pqueue.add q 0 "zero";
  Alcotest.(check (option (pair int string))) "pop2" (Some (0, "zero"))
    (Pqueue.pop_min q);
  Alcotest.(check (option (pair int string))) "pop3" (Some (5, "five"))
    (Pqueue.pop_min q);
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_stats_basic () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean a);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_of a);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_of a);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.median a);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile a 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile a 100.0)

let test_stats_variance () =
  let a = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "variance" 4.0 (Stats.variance a);
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Stats.stddev a)

let test_stats_histogram () =
  let a = [| 0.0; 0.1; 0.9; 1.0 |] in
  let h = Stats.histogram ~buckets:2 a in
  Alcotest.(check int) "buckets" 2 (Array.length h);
  let total = Array.fold_left (fun s (_, _, c) -> s + c) 0 h in
  Alcotest.(check int) "total" 4 total

let test_table_render () =
  let t = Table.create ~title:"t" ~headers:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "x" ];
  Table.add_row t [ "22"; "yy" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 4 = "== t");
  Alcotest.(check bool) "mentions rows" true
    (String.length s > 20)

let test_table_csv () =
  let t = Table.create ~title:"My Table (v1)" ~headers:[ "a"; "b" ] in
  Table.add_row t [ "1"; "hello, world" ];
  Table.add_row t [ "2"; "quote\"inside" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv content"
    "a,b\n1,\"hello, world\"\n2,\"quote\"\"inside\"\n" csv

let test_table_save_csv () =
  let t = Table.create ~title:"Save Me 42!" ~headers:[ "x" ] in
  Table.add_row t [ "7" ];
  let dir = Filename.temp_file "distsketch" "" in
  Sys.remove dir;
  let path = Table.save_csv t ~dir in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  Alcotest.(check bool) "slugged name" true
    (Filename.basename path = "save-me-42.csv");
  Sys.remove path;
  Sys.rmdir dir

let test_table_arity () =
  let t = Table.create ~title:"t" ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "only-one" ])

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng int_in range" `Quick test_rng_int_in;
    Alcotest.test_case "rng bool bias" `Quick test_rng_bool_bias;
    Alcotest.test_case "rng sample w/o replacement" `Quick
      test_rng_sample_without_replacement;
    Alcotest.test_case "rng shuffle permutation" `Quick
      test_rng_shuffle_permutation;
    QCheck_alcotest.to_alcotest prop_pqueue_sorts;
    Alcotest.test_case "pqueue interleaved" `Quick test_pqueue_interleaved;
    Alcotest.test_case "stats basic" `Quick test_stats_basic;
    Alcotest.test_case "stats variance" `Quick test_stats_variance;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table csv" `Quick test_table_csv;
    Alcotest.test_case "table save csv" `Quick test_table_save_csv;
    Alcotest.test_case "table arity" `Quick test_table_arity;
  ]
