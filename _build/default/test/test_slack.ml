module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Apsp = Ds_graph.Apsp
module Density_net = Ds_core.Density_net
module Slack = Ds_core.Slack
module Cdg = Ds_core.Cdg
module Graceful = Ds_core.Graceful
module Eval = Ds_core.Eval

let test_density_net_size_bound () =
  let n = 400 in
  List.iter
    (fun eps ->
      let net = Density_net.sample ~rng:(Rng.create 3) ~n ~eps in
      let bound = Density_net.size_bound ~n ~eps in
      Alcotest.(check bool)
        (Printf.sprintf "eps=%.2f: |N|=%d <= %.1f" eps (List.length net) bound)
        true
        (float_of_int (List.length net) <= bound))
    [ 0.5; 0.25; 0.1 ]

let test_density_net_covers () =
  let g = Helpers.random_graph ~seed:91 120 in
  let apsp = Apsp.compute g in
  List.iter
    (fun eps ->
      let net = Density_net.sample ~rng:(Rng.create 5) ~n:120 ~eps in
      Alcotest.(check bool)
        (Printf.sprintf "eps=%.2f net valid" eps)
        true
        (Density_net.is_valid_net apsp ~eps net))
    [ 0.5; 0.25; 0.1 ]

let test_density_net_small_eps_is_everyone () =
  (* eps <= 5 ln n / n forces probability 1. *)
  let n = 50 in
  let eps = 0.01 in
  Alcotest.(check (float 1e-9)) "prob 1" 1.0
    (Density_net.sample_probability ~n ~eps);
  let net = Density_net.sample ~rng:(Rng.create 7) ~n ~eps in
  Alcotest.(check int) "everyone" n (List.length net)

let test_covering_radius_monotone () =
  let g = Helpers.random_graph ~seed:97 60 in
  let apsp = Apsp.compute g in
  for u = 0 to 10 do
    let r1 = Density_net.covering_radius apsp ~eps:0.1 ~u in
    let r2 = Density_net.covering_radius apsp ~eps:0.5 ~u in
    Alcotest.(check bool) "monotone in eps" true (r1 <= r2)
  done

let test_slack_distributed_equals_centralized () =
  let g = Helpers.random_graph ~seed:101 70 in
  let r = Slack.build_distributed ~rng:(Rng.create 103) g ~eps:0.2 in
  let oracle = Slack.build_centralized g ~net:r.Slack.net in
  Array.iteri
    (fun u s ->
      Alcotest.(check (array (pair int int)))
        (Printf.sprintf "sketch of %d" u)
        oracle.(u).Slack.entries s.Slack.entries)
    r.Slack.sketches

let test_slack_stretch_3_on_far_pairs () =
  List.iter
    (fun (name, g) ->
      let apsp = Apsp.compute g in
      let eps = 0.25 in
      let r = Slack.build_distributed ~rng:(Rng.create 107) g ~eps in
      let query u v = Slack.query r.Slack.sketches.(u) r.Slack.sketches.(v) in
      Helpers.check_no_underestimate ~name ~query apsp;
      let far = Eval.far_pairs apsp ~eps in
      Array.iter
        (fun (u, v, d) ->
          let est = query u v in
          if est > 3 * d then
            Alcotest.failf "%s: slack stretch %d > 3*%d at (%d,%d)" name est d
              u v)
        far)
    (Helpers.graph_suite 109)

let test_slack_sketch_sizes () =
  let n = 300 in
  let g = Helpers.random_graph ~seed:113 n in
  let eps = 0.2 in
  let r = Slack.build_distributed ~rng:(Rng.create 127) g ~eps in
  let bound = 2.0 *. Density_net.size_bound ~n ~eps in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "size within 2|N| bound" true
        (float_of_int (Slack.size_words s) <= bound))
    r.Slack.sketches

let test_cdg_stretch_bound_on_far_pairs () =
  List.iter
    (fun (name, g) ->
      let apsp = Apsp.compute g in
      let eps = 0.25 and k = 2 in
      let r = Cdg.build_distributed ~rng:(Rng.create 131) g ~eps ~k in
      let query u v = Cdg.query r.Cdg.sketches.(u) r.Cdg.sketches.(v) in
      Helpers.check_no_underestimate ~name ~query apsp;
      let far = Eval.far_pairs apsp ~eps in
      Array.iter
        (fun (u, v, d) ->
          let est = query u v in
          if est > ((8 * k) - 1) * d then
            Alcotest.failf "%s: CDG stretch %d > %d*%d at (%d,%d)" name est
              ((8 * k) - 1) d u v)
        far)
    (Helpers.graph_suite 137)

let test_cdg_direct_query_also_sound () =
  let g = Helpers.random_graph ~seed:139 60 in
  let apsp = Apsp.compute g in
  let r = Cdg.build_distributed ~rng:(Rng.create 149) g ~eps:0.3 ~k:2 in
  Helpers.check_no_underestimate ~name:"cdg-direct"
    ~query:(fun u v -> Cdg.query_direct r.Cdg.sketches.(u) r.Cdg.sketches.(v))
    apsp

let test_cdg_nearest_is_nearest () =
  let g = Helpers.random_graph ~seed:151 60 in
  let r = Cdg.build_distributed ~rng:(Rng.create 157) g ~eps:0.3 ~k:2 in
  let dist, nearest =
    Ds_graph.Dijkstra.multi_source g ~sources:(Array.of_list r.Cdg.net)
  in
  Array.iteri
    (fun u s ->
      Alcotest.(check int) "nearest id" nearest.(u) s.Cdg.nearest;
      Alcotest.(check int) "nearest dist" dist.(u) s.Cdg.nearest_dist;
      Alcotest.(check int) "net label owner" s.Cdg.nearest
        s.Cdg.net_label.Ds_core.Label.owner)
    r.Cdg.sketches

let test_cdg_centralized_equivalent_properties () =
  let g = Helpers.random_graph ~seed:163 50 in
  let apsp = Apsp.compute g in
  let sketches = Cdg.build_centralized ~rng:(Rng.create 167) g ~eps:0.3 ~k:2 in
  Helpers.check_no_underestimate ~name:"cdg-central"
    ~query:(fun u v -> Cdg.query sketches.(u) sketches.(v))
    apsp

let test_graceful_sound_and_log_stretch () =
  let g = Helpers.random_graph ~seed:173 80 in
  let n = Graph.n g in
  let apsp = Apsp.compute g in
  let r = Graceful.build_distributed ~rng:(Rng.create 179) g in
  let query u v = Graceful.query r.Graceful.sketches.(u) r.Graceful.sketches.(v) in
  Helpers.check_no_underestimate ~name:"graceful" ~query apsp;
  (* Worst-case stretch O(log n): generous constant 8*ceil(log2 n). *)
  let cap = 8 * int_of_float (ceil (log (float_of_int n) /. log 2.0)) in
  Apsp.iter_pairs apsp (fun u v d ->
      if d > 0 then begin
        let est = query u v in
        if est > cap * d then
          Alcotest.failf "graceful stretch %d > %d*%d at (%d,%d)" est cap d u v
      end)

let test_graceful_parts_cover_eps_range () =
  let g = Helpers.random_graph ~seed:181 64 in
  let r = Graceful.build_distributed ~rng:(Rng.create 191) g in
  let parts = r.Graceful.sketches.(0).Graceful.parts in
  Alcotest.(check int) "log n parts" 6 (Array.length parts);
  Array.iteri
    (fun i (eps, _) ->
      Alcotest.(check (float 1e-9)) "eps_i = 2^-(i+1)"
        (1.0 /. float_of_int (1 lsl (i + 1)))
        eps)
    parts

let test_eval_far_pairs_definition () =
  let g = Helpers.path 10 in
  let apsp = Apsp.compute g in
  (* On a path, node 9 is 0.5-far from node 0 (all 9 others closer),
     while node 1 is not. *)
  Alcotest.(check bool) "9 far from 0" true (Eval.is_far apsp ~eps:0.5 0 9);
  Alcotest.(check bool) "1 not far from 0" false (Eval.is_far apsp ~eps:0.5 0 1)

let test_eval_report_exact_query () =
  let g = Helpers.random_graph ~seed:193 30 in
  let apsp = Apsp.compute g in
  let report = Eval.all_pairs ~query:(fun u v -> Apsp.dist apsp u v) apsp in
  Alcotest.(check int) "no violations" 0 report.Eval.violations;
  Alcotest.(check int) "no unreachable" 0 report.Eval.unreachable;
  Alcotest.(check (float 1e-9)) "max stretch 1" 1.0 report.Eval.max_stretch;
  Alcotest.(check (float 1e-9)) "avg stretch 1" 1.0 report.Eval.avg_stretch

let test_eval_detects_violation () =
  let g = Helpers.path 3 in
  let apsp = Apsp.compute g in
  let report = Eval.all_pairs ~query:(fun _ _ -> 0) apsp in
  Alcotest.(check int) "all violations" report.Eval.pairs
    report.Eval.violations

let suite =
  [
    Alcotest.test_case "density net size bound" `Quick
      test_density_net_size_bound;
    Alcotest.test_case "density net covers" `Quick test_density_net_covers;
    Alcotest.test_case "density net small eps = everyone" `Quick
      test_density_net_small_eps_is_everyone;
    Alcotest.test_case "covering radius monotone" `Quick
      test_covering_radius_monotone;
    Alcotest.test_case "slack distributed = centralized" `Quick
      test_slack_distributed_equals_centralized;
    Alcotest.test_case "slack stretch <= 3 on far pairs" `Slow
      test_slack_stretch_3_on_far_pairs;
    Alcotest.test_case "slack sketch sizes" `Quick test_slack_sketch_sizes;
    Alcotest.test_case "cdg stretch <= 8k-1 on far pairs" `Slow
      test_cdg_stretch_bound_on_far_pairs;
    Alcotest.test_case "cdg direct query sound" `Quick
      test_cdg_direct_query_also_sound;
    Alcotest.test_case "cdg nearest is nearest" `Quick test_cdg_nearest_is_nearest;
    Alcotest.test_case "cdg centralized sound" `Quick
      test_cdg_centralized_equivalent_properties;
    Alcotest.test_case "graceful sound + log-stretch" `Slow
      test_graceful_sound_and_log_stretch;
    Alcotest.test_case "graceful parts cover eps range" `Quick
      test_graceful_parts_cover_eps_range;
    Alcotest.test_case "eval far-pairs definition" `Quick
      test_eval_far_pairs_definition;
    Alcotest.test_case "eval exact query report" `Quick
      test_eval_report_exact_query;
    Alcotest.test_case "eval detects violations" `Quick
      test_eval_detects_violation;
  ]
