module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist

type msg =
  | Update of { src : int; dist : int }
  | Claim
  | Unclaim

type state = {
  mutable best_dist : int;
  mutable best_src : int;
  mutable parent_idx : int; (* neighbor index; -1 = none/source *)
  mutable dirty : bool;
  child : bool array; (* per neighbor index *)
}

let msg_words = function Update _ -> 2 | Claim | Unclaim -> 1

let protocol ~is_source : (state, msg) Engine.protocol =
  let open Engine in
  {
    name = "super-bf";
    max_msg_words = 2;
    msg_words;
    halted = (fun st -> not st.dirty);
    init =
      (fun api ->
        let source = is_source api.id in
        let st =
          {
            best_dist = (if source then 0 else Dist.infinity);
            best_src = (if source then api.id else max_int);
            parent_idx = -1;
            dirty = false;
            child = Array.make api.degree false;
          }
        in
        if source then api.broadcast (Update { src = api.id; dist = 0 });
        st);
    on_round =
      (fun api st inbox ->
        let process i m =
          match m with
          | Claim -> st.child.(i) <- true
          | Unclaim -> st.child.(i) <- false
          | Update { src; dist } ->
            let nd = dist + api.neighbor_weight i in
            if Dist.lex_lt (nd, src) (st.best_dist, st.best_src) then begin
              if st.parent_idx >= 0 && st.parent_idx <> i then
                api.send st.parent_idx Unclaim;
              if st.parent_idx <> i then api.send i Claim;
              st.best_dist <- nd;
              st.best_src <- src;
              st.parent_idx <- i;
              st.dirty <- true
            end
        in
        Engine.Inbox.iter process inbox;
        if st.dirty then begin
          st.dirty <- false;
          api.broadcast (Update { src = st.best_src; dist = st.best_dist })
        end);
  }

type result = {
  dist : int array;
  nearest : int array;
  parent : int array;
  children : int list array;
}

let codec =
  let open Ds_util in
  {
    Superstep.encode =
      (fun b m ->
        match m with
        | Update { src; dist } ->
          Ivec.push b 0;
          Ivec.push b src;
          Ivec.push b dist
        | Claim -> Ivec.push b 1
        | Unclaim -> Ivec.push b 2);
    decode =
      (fun w o ->
        match Ivec.get w o with
        | 0 -> Update { src = Ivec.get w (o + 1); dist = Ivec.get w (o + 2) }
        | 1 -> Claim
        | _ -> Unclaim);
  }

let run ?backend ?pool ?shards ?jitter ?tracer ?obs g ~sources =
  let n = Graph.n g in
  let src_set = Array.make n false in
  List.iter (fun s -> src_set.(s) <- true) sources;
  let r =
    Plane.run ?backend ?pool ?shards ?jitter ?tracer ?obs ~codec g
      (protocol ~is_source:(fun u -> src_set.(u)))
  in
  (match r.Plane.stop with
  | Quiescent | All_halted -> ()
  | Round_limit -> failwith "Super_bf: round limit hit");
  let states = r.Plane.states in
  let dist = Array.map (fun st -> st.best_dist) states in
  let nearest =
    Array.map (fun st -> if st.best_src = max_int then -1 else st.best_src) states
  in
  let parent =
    Array.mapi
      (fun u st ->
        if st.parent_idx < 0 then -1 else fst (Graph.neighbor_at g u st.parent_idx))
      states
  in
  let children =
    Array.mapi
      (fun u st ->
        let acc = ref [] in
        Array.iteri
          (fun i is_child ->
            if is_child then acc := fst (Graph.neighbor_at g u i) :: !acc)
          st.child;
        !acc)
      states
  in
  let m = r.Plane.metrics in
  Metrics.mark_phase m "super-bf";
  ({ dist; nearest; parent; children }, m)

let single_source ?pool g ~src =
  let r, m = run ?pool g ~sources:[ src ] in
  (r.dist, m)
