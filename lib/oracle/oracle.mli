(** Compact immutable distance oracle over a built sketch set.

    The serving tier's entry point, family-polymorphic since the
    multi-family platform: an oracle wraps a {!Ds_sketch.Sketch.t} of
    any family and dispatches {!query} to that family's estimator —
    the Thorup–Zwick level scan, or the common-entry minimum for
    landmark / bottom-k sketches. Queries are answered from flat int
    arrays with no hashing, no boxing and no per-query allocation, and
    {!query_batch} fans a pair array out across a
    {!Ds_parallel.Pool} with one result slot per index, so answers
    are bit-identical under any pool size.

    For family [tz], {!query} is query-equivalent to
    {!Ds_core.Label.query} (same level scan, same tie behaviour,
    pinned by test). *)

type t

val of_labels : Ds_core.Label.t array -> t
(** Compile a Thorup–Zwick label set (family [tz]). Requires
    [labels.(i).owner = i] and a uniform [k]; raises
    [Invalid_argument] otherwise. *)

val of_sketch : Ds_sketch.Sketch.t -> t
(** Serve any built sketch set — the family-polymorphic entry. *)

val of_store : Sketch_store.t -> t
(** Compile a loaded snapshot — the serving process's whole startup
    path: [load] then [of_store], any family. *)

val sketch : t -> Ds_sketch.Sketch.t
(** The underlying sketch set. *)

val family : t -> Ds_sketch.Family.t

val n : t -> int
(** Node count; valid query endpoints are [0 .. n-1]. *)

val k : t -> int
(** Depth (tz) / bottom-k parameter / iteration count. *)

val size_words : t -> int
(** Total size in the paper's units: the sum of per-node sketch sizes. *)

val bunch_dist : t -> int -> int -> int option
(** [bunch_dist t u w] is [d(u,w)] when [w] is an entry of [u]'s
    sketch (bunch / landmark set / ADS) — one binary search. *)

val query : t -> int -> int -> int
(** Family-dispatched estimate; see {!Ds_sketch.Sketch.estimate}.
    [Ds_graph.Dist.infinity] when the sketches share no usable
    evidence. Raises [Invalid_argument] on out-of-range endpoints. *)

val query_bidirectional : t -> int -> int -> int
(** [tz]: minimum triangle estimate over every level and both
    directions. Other families: same as {!query}. *)

val query_probes : t -> int -> int -> int * int
(** [(estimate, probes)] where [probes] counts the array lookups the
    query performed — a deterministic per-query work measure, used by
    experiment E8 to put the local oracle next to the in-network
    exchange without a wall clock. *)

val query_batch :
  ?pool:Ds_parallel.Pool.t -> ?obs:Ds_obs.Obs.t -> t -> (int * int) array ->
  int array
(** Answer every pair, fanning out across the pool (default
    sequential). Result slot [i] depends only on pair [i], so the
    output is identical for every pool size. [obs] counts answered
    queries on the [oracle.queries] counter and on the per-family
    [oracle.queries{family=…}] breakdown, one add each per chunk. *)

val query_batch_flat :
  ?pool:Ds_parallel.Pool.t -> ?obs:Ds_obs.Obs.t -> t -> int array -> int array
(** Same as {!query_batch} over the flat layout of
    {!Workload.pairs_flat} (pair [i] at indices [2i], [2i+1]); the fast
    path. Endpoints are inline ints (no tuple pointer chase) and work
    is dealt in 8-pair blocks, so each domain's result writes are
    cache-line aligned — this is what let batch throughput actually
    scale with the pool (bench B12). Raises [Invalid_argument] on an
    odd-length array. *)

type batch_stats = {
  pairs : int;
  elapsed_ns : float;  (** wall-clock of the parallel batch *)
  qps : float;  (** pairs / elapsed seconds *)
  latency_ns : Ds_util.Stats.summary;
      (** distribution of single-query latencies, measured over a
          sequential sample of the batch (timing inside the parallel
          loop would perturb it) *)
}

val run_batch :
  ?pool:Ds_parallel.Pool.t ->
  ?obs:Ds_obs.Obs.t ->
  ?latency_sample:int ->
  t ->
  (int * int) array ->
  int array * batch_stats
(** {!query_batch} plus timing: the whole batch is timed once for
    throughput, then up to [latency_sample] (default 1024) queries are
    re-run sequentially one-by-one for the latency distribution. The
    returned answers are those of the parallel run. *)

val run_batch_flat :
  ?pool:Ds_parallel.Pool.t ->
  ?obs:Ds_obs.Obs.t ->
  ?latency_sample:int ->
  t ->
  int array ->
  int array * batch_stats
(** {!run_batch} over the flat pair layout — the serving path the CLI
    uses. *)
