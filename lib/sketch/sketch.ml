module Dist = Ds_graph.Dist
module Label = Ds_core.Label

type t = {
  family : Family.t;
  n : int;
  k : int;
  pivot_dist : int array;
  pivot_node : int array;
  off : int array;
  ent_node : int array;
  ent_dist : int array;
}

let family t = t.family
let n t = t.n
let k t = t.k

let size_words t =
  (2 * Array.length t.pivot_dist) + (2 * t.off.(t.n))

let node_size_words t u =
  (2 * (if t.family = Family.Tz then t.k else 0))
  + (2 * (t.off.(u + 1) - t.off.(u)))

let check_entry_order ~who ~n ~off ~ent_node ~ent_dist =
  let total = off.(Array.length off - 1) in
  if Array.length ent_node <> total || Array.length ent_dist <> total then
    invalid_arg (Printf.sprintf "%s: entry arrays disagree with offsets" who);
  for u = 0 to Array.length off - 2 do
    if off.(u) > off.(u + 1) then
      invalid_arg (Printf.sprintf "%s: decreasing offsets" who);
    for j = off.(u) to off.(u + 1) - 1 do
      let w = ent_node.(j) in
      if w < 0 || w >= n then
        invalid_arg (Printf.sprintf "%s: entry node %d out of range" who w);
      if j > off.(u) && ent_node.(j - 1) >= w then
        invalid_arg (Printf.sprintf "%s: entries not strictly increasing" who);
      if ent_dist.(j) < 0 then
        invalid_arg (Printf.sprintf "%s: negative entry distance" who)
    done
  done

let of_tz_labels labels =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Sketch.of_tz_labels: empty label set";
  let k = labels.(0).Label.k in
  Array.iteri
    (fun i l ->
      if l.Label.owner <> i then
        invalid_arg
          (Printf.sprintf "Sketch.of_tz_labels: labels.(%d) has owner %d" i
             l.Label.owner);
      if l.Label.k <> k then
        invalid_arg
          (Printf.sprintf
             "Sketch.of_tz_labels: labels.(%d) has k=%d, expected %d" i
             l.Label.k k))
    labels;
  let pivot_dist = Array.make (n * k) Dist.infinity in
  let pivot_node = Array.make (n * k) max_int in
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + Label.bunch_size labels.(u)
  done;
  let total = off.(n) in
  let ent_node = Array.make total 0 in
  let ent_dist = Array.make total 0 in
  Array.iteri
    (fun u l ->
      Array.iteri
        (fun i (d, p) ->
          pivot_dist.((u * k) + i) <- d;
          pivot_node.((u * k) + i) <- p)
        l.Label.pivots;
      (* bunch_nodes is sorted by node id — the slice stays strictly
         increasing, which is what the binary search needs. *)
      List.iteri
        (fun j (w, d, _) ->
          ent_node.(off.(u) + j) <- w;
          ent_dist.(off.(u) + j) <- d)
        (Label.bunch_nodes l))
    labels;
  { family = Family.Tz; n; k; pivot_dist; pivot_node; off; ent_node; ent_dist }

let v ~family ~k entries =
  if family = Family.Tz then
    invalid_arg "Sketch.v: family tz needs pivots, use of_tz_labels";
  let n = Array.length entries in
  if n = 0 then invalid_arg "Sketch.v: empty node set";
  if k < 1 then invalid_arg "Sketch.v: k < 1";
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + Array.length entries.(u)
  done;
  let total = off.(n) in
  let ent_node = Array.make total 0 in
  let ent_dist = Array.make total 0 in
  Array.iteri
    (fun u es ->
      Array.iteri
        (fun j (w, d) ->
          ent_node.(off.(u) + j) <- w;
          ent_dist.(off.(u) + j) <- d)
        es)
    entries;
  check_entry_order ~who:"Sketch.v" ~n ~off ~ent_node ~ent_dist;
  { family; n; k; pivot_dist = [||]; pivot_node = [||]; off; ent_node;
    ent_dist }

let of_arrays ~family ~k ~pivot_dist ~pivot_node ~off ~ent_node ~ent_dist =
  let who = "Sketch.of_arrays" in
  let n = Array.length off - 1 in
  if n < 1 then invalid_arg (who ^ ": empty offset table");
  if k < 1 then invalid_arg (who ^ ": k < 1");
  if off.(0) <> 0 then invalid_arg (who ^ ": offsets do not start at 0");
  let want_pivots = if family = Family.Tz then n * k else 0 in
  if
    Array.length pivot_dist <> want_pivots
    || Array.length pivot_node <> want_pivots
  then invalid_arg (who ^ ": pivot table has the wrong size for the family");
  check_entry_order ~who ~n ~off ~ent_node ~ent_dist;
  { family; n; k; pivot_dist; pivot_node; off; ent_node; ent_dist }

(* Binary search for [w] in the node-[u] slice; [Dist.infinity] when
   absent. Tail recursion over plain ints, not [ref] cursors: a query
   must not touch the minor heap, because every minor collection stops
   all domains and a batch fanned over the pool would serialise on GC
   instead of scaling. *)
let rec find_in t w lo hi =
  if lo >= hi then Dist.infinity
  else begin
    let mid = (lo + hi) / 2 in
    let x = t.ent_node.(mid) in
    if x = w then t.ent_dist.(mid)
    else if x < w then find_in t w (mid + 1) hi
    else find_in t w lo mid
  end

let find t u w = find_in t w t.off.(u) t.off.(u + 1)

let node_entries t u =
  Array.init
    (t.off.(u + 1) - t.off.(u))
    (fun j -> (t.ent_node.(t.off.(u) + j), t.ent_dist.(t.off.(u) + j)))

let check_pair t u v name =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg
      (Printf.sprintf "Sketch.%s: pair (%d, %d) out of range [0, %d)" name u v
         t.n)

(* The query loops are top-level recursions for the same reason as
   [find_in]: a local [let rec go] would close over [t]/[u]/[v] and
   allocate per query. *)
let rec tz_from t u v k i =
  if i >= k then Dist.infinity
  else begin
    let du = t.pivot_dist.((u * k) + i)
    and pu = t.pivot_node.((u * k) + i)
    and dv = t.pivot_dist.((v * k) + i)
    and pv = t.pivot_node.((v * k) + i) in
    let via_pu =
      if Dist.is_finite du then Dist.add du (find t v pu) else Dist.infinity
    in
    let via_pv =
      if Dist.is_finite dv then Dist.add dv (find t u pv) else Dist.infinity
    in
    let est = min via_pu via_pv in
    if Dist.is_finite est then est else tz_from t u v k (i + 1)
  end

let rec tz_bidi_from t u v k i best =
  if i >= k then best
  else begin
    let du = t.pivot_dist.((u * k) + i)
    and pu = t.pivot_node.((u * k) + i)
    and dv = t.pivot_dist.((v * k) + i)
    and pv = t.pivot_node.((v * k) + i) in
    let best =
      if Dist.is_finite du then min best (Dist.add du (find t v pu)) else best
    in
    let best =
      if Dist.is_finite dv then min best (Dist.add dv (find t u pv)) else best
    in
    tz_bidi_from t u v k (i + 1) best
  end

(* Merge intersection of the two sorted entry slices: both families'
   estimate is [min over common w of d(u,w) + d(w,v)]. Linear in the
   slice lengths, no allocation. *)
let rec common_from t iu hu iv hv best =
  if iu >= hu || iv >= hv then best
  else begin
    let wu = t.ent_node.(iu) and wv = t.ent_node.(iv) in
    if wu = wv then
      common_from t (iu + 1) hu (iv + 1) hv
        (min best (Dist.add t.ent_dist.(iu) t.ent_dist.(iv)))
    else if wu < wv then common_from t (iu + 1) hu iv hv best
    else common_from t iu hu (iv + 1) hv best
  end

let common_min t u v =
  (* [u = v] short-circuits to 0: a landmark sketch holds landmark
     distances only, so the merge would report [2·d(u, nearest
     landmark)] for a node asked about itself. *)
  if u = v then 0
  else common_from t t.off.(u) t.off.(u + 1) t.off.(v) t.off.(v + 1)
      Dist.infinity

let estimate t u v =
  check_pair t u v "estimate";
  match t.family with
  | Family.Tz -> tz_from t u v t.k 0
  | Family.Landmark | Family.Bottomk -> common_min t u v

let estimate_bidirectional t u v =
  check_pair t u v "estimate_bidirectional";
  match t.family with
  | Family.Tz -> tz_bidi_from t u v t.k 0 Dist.infinity
  | Family.Landmark | Family.Bottomk -> common_min t u v

let find_probed t u w probes =
  let lo = ref t.off.(u) and hi = ref t.off.(u + 1) in
  let res = ref Dist.infinity in
  while !lo < !hi do
    incr probes;
    let mid = (!lo + !hi) / 2 in
    let x = t.ent_node.(mid) in
    if x = w then begin
      res := t.ent_dist.(mid);
      lo := !hi
    end
    else if x < w then lo := mid + 1
    else hi := mid
  done;
  !res

let tz_probes t u v =
  let k = t.k in
  let probes = ref 0 in
  let rec go i =
    if i >= k then Dist.infinity
    else begin
      (* Two pivot-pair loads per level. *)
      probes := !probes + 2;
      let du = t.pivot_dist.((u * k) + i)
      and pu = t.pivot_node.((u * k) + i)
      and dv = t.pivot_dist.((v * k) + i)
      and pv = t.pivot_node.((v * k) + i) in
      let via_pu =
        if Dist.is_finite du then Dist.add du (find_probed t v pu probes)
        else Dist.infinity
      in
      let via_pv =
        if Dist.is_finite dv then Dist.add dv (find_probed t u pv probes)
        else Dist.infinity
      in
      let est = min via_pu via_pv in
      if Dist.is_finite est then est else go (i + 1)
    end
  in
  let est = go 0 in
  (est, !probes)

let common_probes t u v =
  if u = v then (0, 0)
  else begin
    let iu = ref t.off.(u) and iv = ref t.off.(v) in
    let hu = t.off.(u + 1) and hv = t.off.(v + 1) in
    let best = ref Dist.infinity and probes = ref 0 in
    while !iu < hu && !iv < hv do
      incr probes;
      let wu = t.ent_node.(!iu) and wv = t.ent_node.(!iv) in
      if wu = wv then begin
        best := min !best (Dist.add t.ent_dist.(!iu) t.ent_dist.(!iv));
        incr iu;
        incr iv
      end
      else if wu < wv then incr iu
      else incr iv
    done;
    (!best, !probes)
  end

let estimate_probes t u v =
  check_pair t u v "estimate_probes";
  match t.family with
  | Family.Tz -> tz_probes t u v
  | Family.Landmark | Family.Bottomk -> common_probes t u v

let equal a b =
  a.family = b.family && a.n = b.n && a.k = b.k
  && a.pivot_dist = b.pivot_dist
  && a.pivot_node = b.pivot_node
  && a.off = b.off
  && a.ent_node = b.ent_node
  && a.ent_dist = b.ent_dist
