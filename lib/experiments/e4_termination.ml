(** E4 — Section 3.3: cost of self-contained termination detection.

    Paper claim: echoes at most double messages and rounds; leader
    election + BFS tree adds O(D) rounds and O(|E| log n) messages;
    COMPLETE/START add O(n) messages and O(D) rounds per phase. We
    report the measured echo-mode/ideal-mode ratios and verify that
    both modes produce identical labels. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_distributed = Ds_core.Tz_distributed
module Tz_echo = Ds_core.Tz_echo

type params = { seed : int; n : int; k : int }

let default = { seed = 4; n = 256; k = 3 }
let quick = { seed = 4; n = 64; k = 3 }

let id = "e4"
let title = "termination-detection overhead"
let claim_id = "Section 3.3"

let claim =
  "self-contained termination detection (leader election, BFS tree, \
   per-message echoes, COMPLETE/START) costs a constant factor over the \
   known-S run and computes the same sketches"

let bound_expr =
  "echoes at most double messages/rounds of the same execution; setup adds \
   `D` rounds and `|E| ln n` messages"

let prose =
  "Labels from the self-terminating run are identical to the known-S run \
   on every family (also a standing qcheck property). The measured \
   overhead constant exceeds the paper's 2x because it is taken against \
   the idealised run, not against the echo run's own data traffic: \
   echoes and COMPLETE/START share links with data, so the round-robin \
   queues drain slower, which itself induces more provisional \
   re-broadcasts. The overhead stays a flat constant across families \
   and sizes, which is what the theorem needs."

let caveat =
  "the overhead constant is measured against the idealised known-S run \
   (shared links slow the echo run's own data), so it lands above the \
   paper's 2x; it stays a flat constant, which is what matters."

let run ?pool { seed; n; k } =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E4: termination-detection overhead, echo vs known-S (k=%d, n=%d) \
            — Section 3.3"
           k n)
      ~headers:
        [
          "family"; "rounds ideal"; "rounds echo"; "r-ratio"; "msgs ideal";
          "msgs echo"; "m-ratio"; "setup msgs"; "labels equal";
        ]
  in
  let all_equal = ref true in
  let n_equal = ref 0 in
  let worst_r = ref 0.0 and worst_m = ref 0.0 in
  let er_phases = ref [] in
  let er_profiles = ref [] in
  let families = Common.standard_families ~n in
  List.iter
    (fun (fname, family) ->
      let w = Common.make_workload ?pool ~seed ~family ~n () in
      let gn = Ds_graph.Graph.n w.Common.graph in
      let levels = Levels.sample ~rng:(Rng.create (seed + 7)) ~n:gn ~k in
      (* Trace both modes on the reported family so the per-round
         congestion of the echo machinery can be compared directly. *)
      let traced = fname = "erdos-renyi" in
      let tr_ideal = if traced then Some (Ds_congest.Trace.create ()) else None in
      let tr_echo = if traced then Some (Ds_congest.Trace.create ()) else None in
      let ideal =
        Tz_distributed.build ?pool ?tracer:tr_ideal w.Common.graph ~levels
      in
      let echo = Tz_echo.build ?pool ?tracer:tr_echo w.Common.graph ~levels in
      let ri = Metrics.rounds ideal.Tz_distributed.metrics in
      let re = Metrics.rounds echo.Tz_echo.metrics in
      let mi = Metrics.messages ideal.Tz_distributed.metrics in
      let me = Metrics.messages echo.Tz_echo.metrics in
      let equal =
        Array.for_all2 Label.equal ideal.Tz_distributed.labels
          echo.Tz_echo.labels
      in
      if equal then incr n_equal else all_equal := false;
      worst_r := max !worst_r (float_of_int re /. float_of_int ri);
      worst_m := max !worst_m (float_of_int me /. float_of_int mi);
      if traced then begin
        er_phases :=
          [
            ( Printf.sprintf "known-S build (erdos-renyi, n=%d)" n,
              Common.report_phases ideal.Tz_distributed.metrics );
            ( Printf.sprintf "echo build (erdos-renyi, n=%d)" n,
              Common.report_phases
                (Metrics.add echo.Tz_echo.setup_metrics
                   echo.Tz_echo.metrics) );
          ];
        er_profiles :=
          List.filter_map
            (fun (label, tr) ->
              Option.map (fun tr -> (label, Common.round_profile tr)) tr)
            [
              ( Printf.sprintf "known-S build (erdos-renyi, n=%d)" n,
                tr_ideal );
              (Printf.sprintf "echo build (erdos-renyi, n=%d)" n, tr_echo);
            ]
      end;
      Table.add_row t
        [
          fname;
          Table.cell_int ri;
          Table.cell_int re;
          Table.cell_ratio (float_of_int re /. float_of_int ri);
          Table.cell_int mi;
          Table.cell_int me;
          Table.cell_ratio (float_of_int me /. float_of_int mi);
          Table.cell_int (Metrics.messages echo.Tz_echo.setup_metrics);
          (if equal then "yes" else "NO");
        ])
    families;
  let checks =
    [
      Report.check
        ~bound:(float_of_int (List.length families))
        ~ok:!all_equal "families where echo labels ≡ known-S labels"
        (float_of_int !n_equal);
      Report.check ~ok:(!worst_m <= 6.0)
        "message overhead echo/ideal, worst family (flat constant, <= 6)"
        !worst_m;
      Report.check ~ok:(!worst_r <= 6.0)
        "round overhead echo/ideal, worst family (flat constant, <= 6)"
        !worst_r;
    ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t ];
    phases = !er_phases;
    round_profiles = !er_profiles;
    verdict = Report.Reproduced_with_caveat caveat;
  }
