(** Thorup–Zwick spanners — a byproduct of the sketch construction.

    For every node [w] the construction grows a shortest-path tree of
    its cluster [C(w)]; the union of all those tree edges is a
    [(2k-1)]-spanner of the input graph with [O(k n^{1+1/k})] edges
    (Thorup–Zwick, JACM 2005). The distributed Algorithm 2 computes
    the same trees implicitly: each accepted announcement's Bellman–
    Ford relaxation parent is a cluster-tree edge, so the spanner
    needs no communication beyond the sketch construction itself —
    each node simply marks one incident edge per bunch entry. *)

val of_levels : Ds_graph.Graph.t -> levels:Levels.t -> Ds_graph.Graph.t
(** Centralized construction (restricted-Dijkstra cluster trees). *)

val of_distributed :
  ?pool:Ds_parallel.Pool.t -> Ds_graph.Graph.t -> levels:Levels.t ->
  Ds_graph.Graph.t * Ds_congest.Metrics.t
(** The spanner as the distributed construction produces it: the edges
    marked by the relaxation parents of Algorithm 2's phases. Both
    constructions yield a [(2k-1)]-spanner; the edge sets can differ
    where shortest paths tie. *)

val edge_bound : n:int -> k:int -> float
(** The [k n^{1+1/k}] edge-count expression. *)

val max_stretch : Ds_graph.Graph.t -> spanner:Ds_graph.Graph.t -> float
(** Exact maximum over connected pairs of
    [d_spanner(u,v) / d_g(u,v)] (evaluation only; O(n m log n)). *)
