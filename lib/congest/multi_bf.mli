(** Concurrent multi-source distributed Bellman–Ford with per-node
    acceptance bounds — the engine behind Algorithm 2 of the paper.

    Every source floods [(source, distance)] announcements. A node
    accepts an announcement only if the tie-broken distance beats its
    [bound] (the Thorup–Zwick bunch condition
    [(d, src) <lex (d(u, A_{i+1}), p_{i+1}(u))]); accepted improvements
    are re-broadcast, at most one announcement per node per round,
    scheduled through a FIFO of pending sources (equivalent to the
    paper's round-robin scheduler: a pending entry waits at most the
    number of simultaneously-pending sources, which is bounded by the
    bunch size).

    With [bound = Dist.none ... (infinity)] everywhere this degrades to
    the unrestricted k-Source Shortest Paths protocol used by the
    slack sketches (Theorem 4.3). This module runs phases to
    quiescence — the paper's "every node knows S" synchronisation
    (Section 3.2). The self-terminating variant lives in
    [Ds_core.Tz_echo]. *)

type state

val protocol :
  is_source:(int -> bool) -> bound:(int -> int * int) ->
  (state, int * int) Engine.protocol
(** [bound u] is the tie-broken exclusive upper limit for node [u];
    use [fun _ -> Dist.none] for unrestricted flooding. *)

val found : state -> (int * int) list
(** [(source, distance)] pairs accepted by this node — exactly
    [{(w, d(u,w)) : (d(u,w), w) <lex bound u}] at quiescence. *)

val found_with_parents : state -> (int * int * int) list
(** [(source, distance, parent neighbor index)] triples; the parent is
    the neighbor whose announcement delivered the final distance, i.e.
    this node's parent in the source's cluster shortest-path tree
    ([-1] at the source itself). The union of these tree edges over
    all sources is the Thorup–Zwick spanner — the distributed
    construction gets it with zero extra communication. *)

val max_pending : state -> int
(** High-water mark of the pending-source FIFO (the quantity Lemma 3.7
    bounds by [O(n^{1/k} log n)]). *)

val codec : (int * int) Superstep.codec
(** Wire codec for the [(source, distance)] announcements — what the
    sharded backend ships in its bulk batches. *)

val run :
  ?backend:Plane.backend -> ?pool:Ds_parallel.Pool.t -> ?shards:int ->
  ?tracer:Trace.t -> ?obs:Ds_obs.Obs.t -> Ds_graph.Graph.t ->
  sources:int list -> bound:(int -> int * int) ->
  (int * int) list array * Metrics.t
(** One-shot convenience wrapper; runs on either backend (identical
    results — see {!Plane}). *)
