type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.12g keeps every value the experiments produce exact enough to
   round-trip while never printing platform-dependent noise digits. *)
let float_repr f =
  (* NaN/infinity have no JSON form; emit null rather than break the
     document. Integral floats print with one decimal so they stay
     floats on any reader ("49.0", not "49"). *)
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

(* Single-line rendering, no trailing newline: the JSONL trace log
   needs one complete document per line, and the Chrome trace file is
   large enough that indentation would triple its size. *)
let to_string_compact v =
  let b = Buffer.create 256 in
  let rec go v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          go item)
        items;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape key);
          Buffer.add_string b "\":";
          go value)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* Reading side: a small recursive-descent parser, added for
   [obs-cat] (and any other consumer of the repo's own artifacts).
   Accepts standard JSON; numbers with '.', 'e' or 'E' become [Float],
   the rest [Int]. Errors carry a byte offset. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape"
            | Some code ->
              (* Only the escapes the emitter writes (< 0x20) plus
                 other BMP code points; encode as UTF-8. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4)
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if String.contains lit '.' || String.contains lit 'e'
       || String.contains lit 'E'
    then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (key, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at byte %d" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string v =
  let b = Buffer.create 4096 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go indent v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          Buffer.add_string b (escape key);
          Buffer.add_string b "\": ";
          go (indent + 2) value)
        fields;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b
