module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Apsp = Ds_graph.Apsp
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_centralized = Ds_core.Tz_centralized
module Tz_distributed = Ds_core.Tz_distributed
module Tz_echo = Ds_core.Tz_echo
module Metrics = Ds_congest.Metrics

let levels_for ~seed g k = Levels.sample ~rng:(Rng.create seed) ~n:(Graph.n g) ~k

let test_levels_nested_and_top_nonempty () =
  let rng = Rng.create 3 in
  let t = Levels.sample ~rng ~n:200 ~k:4 in
  let c = Levels.counts t in
  Alcotest.(check int) "A_0 = V" 200 c.(0);
  for i = 1 to 3 do
    Alcotest.(check bool) "nested" true (c.(i) <= c.(i - 1))
  done;
  Alcotest.(check bool) "top nonempty" true (c.(3) > 0)

let test_levels_exactly_partitions () =
  let rng = Rng.create 5 in
  let t = Levels.sample ~rng ~n:100 ~k:3 in
  let all = List.concat_map (Levels.exactly t) [ 0; 1; 2 ] in
  Alcotest.(check int) "partition covers V" 100 (List.length all);
  Alcotest.(check (list int)) "partition = V" (List.init 100 Fun.id)
    (List.sort compare all)

let test_levels_subset () =
  let rng = Rng.create 5 in
  let subset = [ 1; 3; 5; 7; 9 ] in
  let t = Levels.sample_subset ~rng ~n:10 ~k:2 ~subset ~prob:0.5 in
  for u = 0 to 9 do
    if List.mem u subset then
      Alcotest.(check bool) "members have level >= 0" true (Levels.level t u >= 0)
    else Alcotest.(check int) "non-members excluded" (-1) (Levels.level t u)
  done

(* Hand-checkable Thorup-Zwick run on the diamond graph with a forced
   hierarchy: k=2, A_1 = {3}. *)
let test_tz_centralized_hand_example () =
  let g = Helpers.diamond () in
  let levels = Levels.of_level_array ~k:2 [| 0; 0; 0; 1; 0; 0 |] in
  let labels = Tz_centralized.build g ~levels in
  (* Exact distances from 3: [6;5;3;0;3;1]. Every node's p_1 = 3. *)
  Array.iteri
    (fun u l ->
      let d3 = [| 6; 5; 3; 0; 3; 1 |].(u) in
      Alcotest.(check (pair int int))
        (Printf.sprintf "p_1 of %d" u)
        (d3, 3) l.Label.pivots.(1))
    labels;
  (* B_0(0) = nodes at distance < 6 among A_0 \ A_1 reachable under the
     bound: {0 (d0), 1 (d1), 2 (d3), 4 (d4)}; plus bunch level-1 entry 3. *)
  let bunch0 = List.map (fun (w, d, _) -> (w, d)) (Label.bunch_nodes labels.(0)) in
  Alcotest.(check (list (pair int int))) "bunch of node 0"
    [ (0, 0); (1, 1); (2, 3); (3, 6); (4, 4) ]
    bunch0;
  (* Query 0 -> 5: p_0(0)=0 not in B(5)? B_0(5) = {5 (0), 3? no 3 is A_1; 4 (2)}
     plus (3,1). 0 at distance 6 from 5 >= d(5,A_1)=1: not in bunch of 5.
     p_0(5)=5, d=0; 5 in B(0)? d(0,5)=6 >= 6: no. Level 1: p_1(0)=3 in
     B(5) yes: estimate = d(0,3) + d(5,3) = 6 + 1 = 7; or p_1(5)=3 in
     B(0): 6+1=7. True distance 6, stretch 7/6 <= 3. *)
  Alcotest.(check int) "query(0,5)" 7 (Label.query labels.(0) labels.(5))

let test_tz_size_lemma () =
  (* Expected bunch size per level is n^{1/k}; check the high
     probability bound O(n^{1/k} ln n) empirically with slack. *)
  let g = Helpers.random_graph ~seed:11 300 in
  let k = 3 in
  let levels = levels_for ~seed:13 g k in
  let labels = Tz_centralized.build g ~levels in
  let bound =
    float_of_int k *. (300.0 ** (1.0 /. float_of_int k)) *. log 300.0
  in
  Array.iter
    (fun l ->
      Alcotest.(check bool) "bunch within whp bound" true
        (float_of_int (Label.bunch_size l) <= bound))
    labels

let check_stretch_bound ~name g ~k ~seed =
  let apsp = Apsp.compute g in
  let levels = levels_for ~seed g k in
  let labels = Tz_centralized.build g ~levels in
  let query u v = Label.query labels.(u) labels.(v) in
  Apsp.iter_pairs apsp (fun u v d ->
      let est = query u v in
      if est < d then
        Alcotest.failf "%s: underestimate %d < %d for (%d,%d)" name est d u v;
      if est > ((2 * k) - 1) * d then
        Alcotest.failf "%s: stretch violated: %d > %d * %d for (%d,%d)" name est
          ((2 * k) - 1) d u v)

let test_tz_stretch_all_families () =
  List.iter
    (fun (name, g) ->
      List.iter (fun k -> check_stretch_bound ~name g ~k ~seed:(17 + k)) [ 1; 2; 3 ])
    (Helpers.graph_suite 37)

let test_tz_k1_is_exact () =
  let g = Helpers.random_graph ~seed:19 40 in
  let apsp = Apsp.compute g in
  let levels = levels_for ~seed:19 g 1 in
  let labels = Tz_centralized.build g ~levels in
  Apsp.iter_pairs apsp (fun u v d ->
      Alcotest.(check int) "k=1 exact" d (Label.query labels.(u) labels.(v)))

let test_bunch_cluster_duality () =
  let g = Helpers.random_graph ~seed:23 50 in
  let levels = levels_for ~seed:29 g 3 in
  let labels = Tz_centralized.build g ~levels in
  for w = 0 to 49 do
    let cluster = Tz_centralized.cluster g ~levels w in
    (* u in C(w) iff w in B(u), with matching distances. *)
    List.iter
      (fun (u, d) ->
        match Label.bunch_dist labels.(u) w with
        | Some d' -> Alcotest.(check int) "distance agrees" d d'
        | None -> Alcotest.failf "%d in C(%d) but %d not in B(%d)" u w w u)
      cluster;
    for u = 0 to 49 do
      if Label.bunch_dist labels.(u) w <> None then
        Alcotest.(check bool)
          (Printf.sprintf "%d in B(%d) implies %d in C(%d)" w u u w)
          true
          (List.mem_assoc u cluster)
    done
  done

let labels_equal_testable =
  Alcotest.testable (Fmt.of_to_string (fun _ -> "<label>")) Label.equal

let test_distributed_equals_centralized () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let levels = levels_for ~seed:(41 + k) g k in
          let central = Tz_centralized.build g ~levels in
          let dist = Tz_distributed.build g ~levels in
          Array.iteri
            (fun u l ->
              Alcotest.check labels_equal_testable
                (Printf.sprintf "%s k=%d node %d" name k u)
                l
                dist.Tz_distributed.labels.(u))
            central)
        [ 1; 2; 3 ])
    (Helpers.graph_suite 43)

let test_echo_equals_centralized () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let levels = levels_for ~seed:(47 + k) g k in
          let central = Tz_centralized.build g ~levels in
          let echo = Tz_echo.build g ~levels in
          Array.iteri
            (fun u l ->
              Alcotest.check labels_equal_testable
                (Printf.sprintf "%s k=%d node %d" name k u)
                l
                echo.Tz_echo.labels.(u))
            central)
        [ 2; 3 ])
    (Helpers.graph_suite 53)

let test_echo_overhead_bounded () =
  (* Section 3.3: echoes at most double the data traffic of the same
     execution; completion/start add O(n) per phase and setup O(E).
     Against the ideal-mode run the constant is looser because the two
     schedules diverge (different arrival orders cause different
     numbers of provisional re-broadcasts); experiment E4 reports the
     measured ratio. *)
  let g = Helpers.random_graph ~seed:59 120 in
  let k = 3 in
  let levels = levels_for ~seed:61 g k in
  let ideal = Tz_distributed.build g ~levels in
  let echo = Tz_echo.build g ~levels in
  let mi = Metrics.messages ideal.Tz_distributed.metrics in
  let me = Metrics.messages echo.Tz_echo.metrics in
  let slack =
    (4 * mi) + (8 * Graph.m g) + (4 * k * Graph.n g) + (8 * Graph.n g)
  in
  Alcotest.(check bool)
    (Printf.sprintf "echo messages %d <= %d" me slack)
    true (me <= slack)

let prop_distributed_equals_centralized_random =
  QCheck.Test.make ~name:"distributed tz = centralized tz (random)" ~count:15
    QCheck.(pair (int_range 8 40) (int_range 0 100000))
    (fun (n, seed) ->
      let g = Helpers.random_graph ~seed n in
      let k = 1 + (seed mod 4) in
      let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n ~k in
      let central = Tz_centralized.build g ~levels in
      let dist = Tz_distributed.build g ~levels in
      Array.for_all2 Label.equal central dist.Tz_distributed.labels)

let prop_echo_equals_centralized_random =
  QCheck.Test.make ~name:"echo tz = centralized tz (random)" ~count:8
    QCheck.(pair (int_range 8 30) (int_range 0 100000))
    (fun (n, seed) ->
      let g = Helpers.random_graph ~seed n in
      let k = 2 + (seed mod 3) in
      let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n ~k in
      let central = Tz_centralized.build g ~levels in
      let echo = Tz_echo.build g ~levels in
      Array.for_all2 Label.equal central echo.Tz_echo.labels)

let test_query_bidirectional_never_worse () =
  let g = Helpers.random_graph ~seed:67 60 in
  let levels = levels_for ~seed:71 g 3 in
  let labels = Tz_centralized.build g ~levels in
  for u = 0 to 59 do
    for v = u + 1 to 59 do
      let q = Label.query labels.(u) labels.(v) in
      let qb = Label.query_bidirectional labels.(u) labels.(v) in
      Alcotest.(check bool) "bidirectional <= unidirectional" true (qb <= q)
    done
  done

let test_query_symmetric () =
  let g = Helpers.random_graph ~seed:73 50 in
  let levels = levels_for ~seed:79 g 3 in
  let labels = Tz_centralized.build g ~levels in
  for u = 0 to 49 do
    for v = u + 1 to 49 do
      Alcotest.(check int) "query symmetric"
        (Label.query labels.(u) labels.(v))
        (Label.query labels.(v) labels.(u))
    done
  done

let prop_label_words_roundtrip =
  QCheck.Test.make ~name:"label to_words/of_words round-trip" ~count:60
    QCheck.(pair (int_range 5 40) (int_range 0 100000))
    (fun (n, seed) ->
      let g = Helpers.random_graph ~seed n in
      let k = 1 + (seed mod 4) in
      let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n ~k in
      let labels = Tz_centralized.build g ~levels in
      Array.for_all
        (fun l ->
          let words = Label.to_words l in
          Label.equal l (Label.of_words words)
          (* Serializing the round-tripped label reproduces the exact
             words: the canonical order is a fixpoint. *)
          && Label.to_words (Label.of_words words) = words)
        labels)

(* Synthetic labels (random bunch contents, no graph) push the
   round-trip through shapes a build never produces: empty bunches,
   all-infinite pivots, large sparse node ids. *)
let prop_label_words_roundtrip_synthetic =
  QCheck.Test.make ~name:"synthetic label round-trip + canonical order"
    ~count:100
    QCheck.(triple (int_range 1 6) (int_range 0 30) (int_range 0 100000))
    (fun (k, bunch_size, seed) ->
      let rng = Rng.create seed in
      let l = Label.create ~owner:(Rng.int rng 1000) ~k in
      for level = 0 to k - 1 do
        if Rng.bool rng 0.7 then
          Label.set_pivot l ~level ~dist:(Rng.int rng 10000)
            ~node:(Rng.int rng 1000)
      done;
      (* Distinct nodes, inserted in a random (shuffled) order. *)
      let nodes = Rng.sample_without_replacement rng bunch_size 5000 in
      Rng.shuffle rng nodes;
      Array.iter
        (fun w ->
          Label.add_bunch l ~node:w ~dist:(Rng.int rng 10000)
            ~level:(Rng.int rng k))
        nodes;
      let words = Label.to_words l in
      (* Canonical-order invariant: the bunch region is sorted by node
         id no matter the insertion order. *)
      let bunch_region =
        Array.to_list (Array.sub words (1 + k) (Array.length words - 1 - k))
      in
      let sorted =
        List.sort (fun (a, _) (b, _) -> compare a b) bunch_region
      in
      bunch_region = sorted
      && Label.equal l (Label.of_words words)
      && Label.to_words (Label.of_words words) = words)

let test_of_words_malformed () =
  let raises name words =
    match Label.of_words words with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  raises "empty" [||];
  raises "k = 0" [| (0, 0) |];
  raises "k < 0" [| (0, -2) |];
  raises "truncated pivots" [| (0, 3); (1, 2) |];
  raises "duplicate bunch node" [| (0, 1); (0, 0); (5, 2); (5, 3) |]

let test_to_words_insertion_order_independent () =
  let build order =
    let l = Label.create ~owner:7 ~k:2 in
    Label.set_pivot l ~level:0 ~dist:0 ~node:7;
    Label.set_pivot l ~level:1 ~dist:4 ~node:2;
    List.iter (fun (w, d) -> Label.add_bunch l ~node:w ~dist:d ~level:0) order;
    l
  in
  let a = build [ (9, 3); (1, 2); (5, 1) ] in
  let b = build [ (5, 1); (9, 3); (1, 2) ] in
  Alcotest.(check bool) "same words regardless of insertion order" true
    (Label.to_words a = Label.to_words b)

let test_label_size_words () =
  let l = Label.create ~owner:0 ~k:3 in
  Label.add_bunch l ~node:4 ~dist:2 ~level:0;
  Label.add_bunch l ~node:9 ~dist:7 ~level:1;
  Alcotest.(check int) "2k + 2|B|" 10 (Label.size_words l)

let test_max_pending_bounded_by_bunch () =
  (* Lemma 3.7's engine fact: the send-queue backlog never exceeds the
     number of sources a node accepts in a phase (its bunch slice). *)
  let g = Helpers.random_graph ~seed:83 150 in
  let k = 3 in
  let levels = levels_for ~seed:89 g k in
  let r = Tz_distributed.build g ~levels in
  let max_bunch =
    Array.fold_left
      (fun acc l -> max acc (Label.bunch_size l))
      0 r.Tz_distributed.labels
  in
  Alcotest.(check bool)
    (Printf.sprintf "pending %d <= max bunch %d" r.Tz_distributed.max_pending
       max_bunch)
    true
    (r.Tz_distributed.max_pending <= max_bunch)

let suite =
  [
    Alcotest.test_case "levels nested, top nonempty" `Quick
      test_levels_nested_and_top_nonempty;
    Alcotest.test_case "levels partition" `Quick test_levels_exactly_partitions;
    Alcotest.test_case "levels subset" `Quick test_levels_subset;
    Alcotest.test_case "tz centralized hand example" `Quick
      test_tz_centralized_hand_example;
    Alcotest.test_case "tz size lemma (whp bound)" `Quick test_tz_size_lemma;
    Alcotest.test_case "tz stretch <= 2k-1, all families" `Slow
      test_tz_stretch_all_families;
    Alcotest.test_case "tz k=1 is exact" `Quick test_tz_k1_is_exact;
    Alcotest.test_case "bunch/cluster duality" `Quick test_bunch_cluster_duality;
    Alcotest.test_case "distributed = centralized" `Slow
      test_distributed_equals_centralized;
    Alcotest.test_case "echo = centralized" `Slow test_echo_equals_centralized;
    Alcotest.test_case "echo overhead bounded" `Quick test_echo_overhead_bounded;
    QCheck_alcotest.to_alcotest prop_distributed_equals_centralized_random;
    QCheck_alcotest.to_alcotest prop_echo_equals_centralized_random;
    Alcotest.test_case "bidirectional query never worse" `Quick
      test_query_bidirectional_never_worse;
    Alcotest.test_case "query symmetric" `Quick test_query_symmetric;
    QCheck_alcotest.to_alcotest prop_label_words_roundtrip;
    QCheck_alcotest.to_alcotest prop_label_words_roundtrip_synthetic;
    Alcotest.test_case "of_words rejects malformed input" `Quick
      test_of_words_malformed;
    Alcotest.test_case "to_words canonical under insertion order" `Quick
      test_to_words_insertion_order_independent;
    Alcotest.test_case "label size accounting" `Quick test_label_size_words;
    Alcotest.test_case "send-queue backlog <= bunch size" `Quick
      test_max_pending_bounded_by_bunch;
  ]
