(* Fixed-interval time-series sampling of an Obs registry. The serve
   loop's worker 0 calls [tick] between request blocks with the
   block's already-read clock value, so the not-due path costs one int
   compare and nothing else; a due tick reduces the registry into a
   point and stores it in a ring. The final forced [sample] after the
   worker pool joins is a quiesced read — exact, and the value the CI
   reconciliation check compares against oracle-serve/1. *)

type point = {
  seq : int;
  elapsed_ns : int;
  counters : (string * int) list;
  gauges : (string * int) list;
  p99_block_ns : int;
  minor_words : float;
  rss_kb : int;
}

type t = {
  obs : Obs.t;
  interval_ns : int;
  capacity : int;
  ring : point option array;
  g_minor : Obs.gauge;
  g_rss : Obs.gauge;
  mutable t0 : int;
  mutable next_due : int;
  mutable seq : int;
}

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let create ?(capacity = 4096) ?(interval_ms = 100) obs =
  if capacity <= 0 then invalid_arg "Sampler.create: capacity";
  if interval_ms <= 0 then invalid_arg "Sampler.create: interval_ms";
  {
    obs;
    interval_ns = interval_ms * 1_000_000;
    capacity;
    ring = Array.make capacity None;
    g_minor = Obs.gauge obs Obs.Name.gc_minor_words;
    g_rss = Obs.gauge obs Obs.Name.mem_rss_kb;
    t0 = 0;
    next_due = max_int;  (* ticks are no-ops until [start] *)
    seq = 0;
  }

let obs t = t.obs
let interval_ms t = t.interval_ns / 1_000_000

let start t ~now_ns =
  t.t0 <- now_ns;
  t.next_due <- now_ns + t.interval_ns

let sample t now_ns =
  let st = Gc.quick_stat () in
  let minor_words = st.Gc.minor_words in
  let rss_kb = Ds_util.Mem.rss_kb_or_zero () in
  Obs.set t.g_minor ~shard:0 (int_of_float minor_words);
  Obs.set t.g_rss ~shard:0 rss_kb;
  let snap = Obs.snapshot t.obs in
  let p99_block_ns =
    match List.assoc_opt Obs.Name.serve_block_ns snap.Obs.histograms with
    | Some hs -> Obs.hist_percentile hs 99.0
    | None -> 0
  in
  let p =
    {
      seq = t.seq;
      elapsed_ns = now_ns - t.t0;
      counters = snap.Obs.counters;
      gauges = snap.Obs.gauges;
      p99_block_ns;
      minor_words;
      rss_kb;
    }
  in
  t.ring.(t.seq mod t.capacity) <- Some p;
  t.seq <- t.seq + 1;
  (* No catch-up bursts after a stall: schedule from now, not from
     the missed deadline. *)
  t.next_due <- now_ns + t.interval_ns

let tick t now_ns = if now_ns >= t.next_due then sample t now_ns

let dropped t = if t.seq > t.capacity then t.seq - t.capacity else 0

let points t =
  let kept = if t.seq < t.capacity then t.seq else t.capacity in
  let first = t.seq - kept in
  List.init kept (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some p -> p
      | None -> assert false)

(* obs/1 JSON document. Schema-stable: fixed key set and order, every
   instrument keyed by its registry name, histograms as non-empty
   [upper_bound, count] pairs. Works without a sampler (points = [])
   for build-side dumps. *)

let get assoc name = match List.assoc_opt name assoc with Some v -> v | None -> 0

let doc ?sampler ?(meta = []) registry =
  let open Ds_util.Json in
  let snap = Obs.snapshot registry in
  let hist_json hs =
    let pairs = ref [] in
    Array.iteri
      (fun b n ->
        if n > 0 then
          pairs :=
            List [ Int (Ds_util.Stats.log2_bucket_upper b); Int n ] :: !pairs)
      hs.Obs.buckets;
    Obj
      [
        ("count", Int hs.Obs.count);
        ("sum", Int hs.Obs.sum);
        ("p50", Int (Obs.hist_percentile hs 50.0));
        ("p90", Int (Obs.hist_percentile hs 90.0));
        ("p99", Int (Obs.hist_percentile hs 99.0));
        ("p999", Int (Obs.hist_percentile hs 99.9));
        ("buckets", List (List.rev !pairs));
      ]
  in
  let final =
    Obj
      [
        ("counters", Obj (List.map (fun (n, v) -> (n, Int v)) snap.Obs.counters));
        ("gauges", Obj (List.map (fun (n, v) -> (n, Int v)) snap.Obs.gauges));
        ( "histograms",
          Obj (List.map (fun (n, hs) -> (n, hist_json hs)) snap.Obs.histograms)
        );
      ]
  in
  let pts = match sampler with Some s -> points s | None -> [] in
  let point_json prev p =
    let dt_s = float_of_int (p.elapsed_ns - prev.elapsed_ns) /. 1e9 in
    let d name = get p.counters name - get prev.counters name in
    let served = d Obs.Name.serve_served in
    let hits = d Obs.Name.serve_hits in
    let qps = if dt_s > 0.0 then float_of_int served /. dt_s else 0.0 in
    let hit_rate =
      if served > 0 then float_of_int hits /. float_of_int served else 0.0
    in
    let mw_per_s =
      if dt_s > 0.0 then (p.minor_words -. prev.minor_words) /. dt_s else 0.0
    in
    Obj
      [
        ("seq", Int p.seq);
        ("elapsed_ms", Float (float_of_int p.elapsed_ns /. 1e6));
        ("counters", Obj (List.map (fun (n, v) -> (n, Int v)) p.counters));
        ("gauges", Obj (List.map (fun (n, v) -> (n, Int v)) p.gauges));
        ( "derived",
          Obj
            [
              ("qps", Float qps);
              ("hit_rate", Float hit_rate);
              ("p99_block_ns", Int p.p99_block_ns);
              ("queue_depth", Int (get p.gauges Obs.Name.serve_queue_depth));
              ("minor_words_per_s", Float mw_per_s);
              ("rss_kb", Int p.rss_kb);
            ] );
      ]
  in
  let zero =
    {
      seq = -1;
      elapsed_ns = 0;
      counters = [];
      gauges = [];
      p99_block_ns = 0;
      minor_words = 0.0;
      rss_kb = 0;
    }
  in
  let point_rows =
    let rec go prev = function
      | [] -> []
      | p :: rest -> point_json prev p :: go p rest
    in
    go zero pts
  in
  Obj
    [
      ("schema", String "obs/1");
      ("shards", Int (Obs.shards registry));
      ( "interval_ms",
        Int (match sampler with Some s -> interval_ms s | None -> 0) );
      ("meta", Obj meta);
      ("final", final);
      ("points", List point_rows);
      ( "dropped_points",
        Int (match sampler with Some s -> dropped s | None -> 0) );
    ]
