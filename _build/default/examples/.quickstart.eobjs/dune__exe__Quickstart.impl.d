examples/quickstart.ml: Array Ds_congest Ds_core Ds_graph Ds_util List Printf
