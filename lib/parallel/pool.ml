(* A persistent SPMD worker pool. Workers are spawned once in [create]
   and parked on a condition variable; each [parallel_for] publishes a
   job descriptor, bumps the epoch, and wakes them. The engine calls
   [parallel_for] once per simulated round, so spawn-per-call (the
   previous implementation) paid a domain spawn+join per round; here a
   round costs two lock round-trips per worker. *)

(* A job is dispatched at chunk granularity: [run c] executes the
   whole of chunk [c]. [parallel_for] wraps its per-index body in a
   chunk loop; [parallel_chunks] hands the chunk bounds straight to
   the caller so accumulator-style work (one scratch cell per chunk,
   one tight loop per domain) pays one closure dispatch per chunk
   instead of one per index. *)
type job = { chunks : int; run : int -> unit }

type t = {
  size : int; (* total domains, including the caller *)
  mutex : Mutex.t;
  start : Condition.t; (* new epoch published *)
  finished : Condition.t; (* all workers done with the epoch *)
  mutable workers : unit Domain.t array;
  mutable job : job option;
  mutable epoch : int;
  mutable pending : int; (* workers still running the current epoch *)
  mutable failure : exn option;
  mutable stop : bool;
}

(* Chunk [c] of the current job; chunk 0 always runs on the caller. *)
let run_chunk job c = if c < job.chunks then job.run c

let worker t c =
  let rec loop last_epoch =
    Mutex.lock t.mutex;
    while t.epoch = last_epoch && not t.stop do
      Condition.wait t.start t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      let epoch = t.epoch in
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      let failed = try run_chunk job c; None with e -> Some e in
      Mutex.lock t.mutex;
      (match failed with
      | Some e when t.failure = None -> t.failure <- Some e
      | _ -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.finished;
      Mutex.unlock t.mutex;
      loop epoch
    end
  in
  loop 0

let make size =
  {
    size;
    mutex = Mutex.create ();
    start = Condition.create ();
    finished = Condition.create ();
    workers = [||];
    job = None;
    epoch = 0;
    pending = 0;
    failure = None;
    stop = false;
  }

let sequential = make 1

let create ?domains () =
  let d =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Pool.create: domains must be >= 1"
    | None -> Domain.recommended_domain_count ()
  in
  let t = make d in
  (* Worker w owns chunk w+1 of every job; chunk 0 is the caller's. *)
  t.workers <- Array.init (d - 1) (fun w -> Domain.spawn (fun () -> worker t (w + 1)));
  t

let domains t = t.size

(* Mirrors the dispatch logic of [parallel_for]: how many domains a
   range of [n] indices actually occupies. Exposed so the engine's
   tracer can report pool occupancy without instrumenting the
   workers. *)
let chunks_for t n =
  if n <= 0 then 0
  else if Array.length t.workers = 0 then 1
  else max 1 (min t.size n)

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Publish [job], run the caller's chunk 0, wait for the workers. *)
let dispatch t job =
  Mutex.lock t.mutex;
  t.job <- Some job;
  t.failure <- None;
  t.pending <- Array.length t.workers;
  t.epoch <- t.epoch + 1;
  Condition.broadcast t.start;
  Mutex.unlock t.mutex;
  (* The caller's own chunk; even if it raises we must wait for the
     workers, or the next call would race the still-running job. *)
  let caller_failed = try run_chunk job 0; None with e -> Some e in
  Mutex.lock t.mutex;
  while t.pending > 0 do
    Condition.wait t.finished t.mutex
  done;
  t.job <- None;
  let worker_failed = t.failure in
  t.failure <- None;
  Mutex.unlock t.mutex;
  match (caller_failed, worker_failed) with
  | Some e, _ | None, Some e -> raise e
  | None, None -> ()

let parallel_for t ~lo ~hi f =
  if t.stop then invalid_arg "Pool.parallel_for: pool is shut down";
  if hi > lo then begin
    let n = hi - lo in
    let chunks = min t.size n in
    if chunks <= 1 || Array.length t.workers = 0 then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      let chunk_size = (n + chunks - 1) / chunks in
      let run c =
        let clo = lo + (c * chunk_size) in
        let chi = min hi (clo + chunk_size) in
        for i = clo to chi - 1 do
          f i
        done
      in
      dispatch t { chunks; run }
    end
  end

let parallel_chunks t ~n f =
  if t.stop then invalid_arg "Pool.parallel_chunks: pool is shut down";
  if n <= 0 then 0
  else begin
    let chunks = min t.size n in
    let chunk_size = (n + chunks - 1) / chunks in
    if chunks <= 1 || Array.length t.workers = 0 then begin
      f 0 0 n;
      1
    end
    else begin
      let run c = f c (c * chunk_size) (min n ((c + 1) * chunk_size)) in
      dispatch t { chunks; run };
      chunks
    end
  end

let map_array t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f a.(0)) in
    parallel_for t ~lo:1 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end
