lib/congest/metrics.mli: Format
