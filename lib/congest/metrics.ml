type phase = { name : string; rounds : int; messages : int; words : int }

type t = {
  mutable rounds : int;
  mutable messages : int;
  mutable words : int;
  mutable max_msg_words : int;
  mutable max_link_backlog : int;
  mutable phases : phase list; (* reversed *)
  mutable mark_rounds : int;
  mutable mark_messages : int;
  mutable mark_words : int;
}

let create () =
  {
    rounds = 0;
    messages = 0;
    words = 0;
    max_msg_words = 0;
    max_link_backlog = 0;
    phases = [];
    mark_rounds = 0;
    mark_messages = 0;
    mark_words = 0;
  }

let rounds t = t.rounds
let messages t = t.messages
let words t = t.words
let max_msg_words t = t.max_msg_words
let max_link_backlog t = t.max_link_backlog

let tick_round t = t.rounds <- t.rounds + 1
let untick_round t = t.rounds <- t.rounds - 1

let count_message t ~words =
  t.messages <- t.messages + 1;
  t.words <- t.words + words;
  if words > t.max_msg_words then t.max_msg_words <- words

let count_delivered t ~messages ~words ~max_msg_words =
  t.messages <- t.messages + messages;
  t.words <- t.words + words;
  if max_msg_words > t.max_msg_words then t.max_msg_words <- max_msg_words

let observe_backlog t b =
  if b > t.max_link_backlog then t.max_link_backlog <- b

let mark_phase t name =
  let p =
    {
      name;
      rounds = t.rounds - t.mark_rounds;
      messages = t.messages - t.mark_messages;
      words = t.words - t.mark_words;
    }
  in
  t.phases <- p :: t.phases;
  t.mark_rounds <- t.rounds;
  t.mark_messages <- t.messages;
  t.mark_words <- t.words

let phases t = List.rev t.phases

let add a b =
  {
    rounds = a.rounds + b.rounds;
    messages = a.messages + b.messages;
    words = a.words + b.words;
    max_msg_words = max a.max_msg_words b.max_msg_words;
    max_link_backlog = max a.max_link_backlog b.max_link_backlog;
    phases = b.phases @ a.phases;
    mark_rounds = 0;
    mark_messages = 0;
    mark_words = 0;
  }

let pp ppf t =
  Format.fprintf ppf
    "rounds=%d messages=%d words=%d max_msg_words=%d max_link_backlog=%d"
    t.rounds t.messages t.words t.max_msg_words t.max_link_backlog;
  List.iter
    (fun p ->
      Format.fprintf ppf "@\n  %-12s rounds=%6d messages=%9d words=%9d" p.name
        p.rounds p.messages p.words)
    (phases t)
