lib/core/cell_cast.mli: Ds_congest Ds_graph Ds_parallel
