module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist

(* Per-node state. The source table is an open-addressed hash map from
   source id to (dist, parent, queued), stored as parallel int arrays
   with linear probing — [accept] runs once per delivered message, and
   the stdlib [Hashtbl] spent most of that budget in the out-of-line
   hash primitive plus a bucket-cell allocation per insert. Capacity
   is a power of two kept at most half full; keys are never deleted.
   The pending FIFO is an int ring for the same reason ([Queue] cells
   are one allocation per push). *)
type state = {
  (* [bound] split into its components so the per-message comparison
     needs no pair construction. *)
  bound_d : int;
  bound_i : int;
  mutable keys : int array; (* source id, -1 = empty slot *)
  mutable dist : int array;
  mutable parent : int array; (* neighbor that delivered [dist]; -1 at source *)
  mutable queued : int array; (* 1 iff the source sits in the FIFO *)
  mutable mask : int; (* capacity - 1 *)
  mutable count : int;
  mutable pend : int array; (* ring of source ids, power-of-two cap *)
  mutable pend_head : int;
  mutable pend_len : int;
  mutable max_pending : int;
}

(* (nd, src) <lex (bound_d, bound_i), without building the pairs. *)
let below_bound st nd src =
  nd < st.bound_d || (nd = st.bound_d && src < st.bound_i)

(* Fibonacci-style mixing: source ids are often arithmetic sequences
   (samples of 0..n-1), which degenerate under [id land mask]. *)
let rec probe keys mask key i =
  let k = keys.(i) in
  if k = key || k < 0 then i else probe keys mask key ((i + 1) land mask)

let slot st key =
  probe st.keys st.mask key (((key * 0x9E3779B1) lsr 8) land st.mask)

let grow_tbl st =
  let old_keys = st.keys
  and old_dist = st.dist
  and old_parent = st.parent
  and old_queued = st.queued in
  let cap = 2 * Array.length old_keys in
  st.keys <- Array.make cap (-1);
  st.dist <- Array.make cap 0;
  st.parent <- Array.make cap 0;
  st.queued <- Array.make cap 0;
  st.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = slot st k in
        st.keys.(j) <- k;
        st.dist.(j) <- old_dist.(i);
        st.parent.(j) <- old_parent.(i);
        st.queued.(j) <- old_queued.(i)
      end)
    old_keys

let grow_pend st =
  let old = st.pend in
  let cap = Array.length old in
  let next = Array.make (2 * cap) 0 in
  for i = 0 to st.pend_len - 1 do
    next.(i) <- old.((st.pend_head + i) land (cap - 1))
  done;
  st.pend <- next;
  st.pend_head <- 0

let enqueue st src j =
  if st.queued.(j) = 0 then begin
    st.queued.(j) <- 1;
    if st.pend_len = Array.length st.pend then grow_pend st;
    st.pend.((st.pend_head + st.pend_len) land (Array.length st.pend - 1))
    <- src;
    st.pend_len <- st.pend_len + 1;
    if st.pend_len > st.max_pending then st.max_pending <- st.pend_len
  end

(* Cold path: first announcement from [src]. Growing rehashes, so the
   slot must be recomputed afterwards. *)
let insert st src nd from =
  if 2 * (st.count + 1) > Array.length st.keys then grow_tbl st;
  st.count <- st.count + 1;
  let j = slot st src in
  st.keys.(j) <- src;
  st.dist.(j) <- nd;
  st.parent.(j) <- from;
  st.queued.(j) <- 0;
  enqueue st src j

(* Runs once per delivered message — the protocol side of the engine's
   allocation budget. Steady state touches only int arrays. *)
let accept st src nd from =
  if below_bound st nd src then begin
    let j = slot st src in
    if st.keys.(j) >= 0 then begin
      if nd < st.dist.(j) then begin
        st.dist.(j) <- nd;
        st.parent.(j) <- from;
        enqueue st src j
      end
    end
    else insert st src nd from
  end

let pop_and_broadcast api st =
  if st.pend_len > 0 then begin
    let src = st.pend.(st.pend_head) in
    st.pend_head <- (st.pend_head + 1) land (Array.length st.pend - 1);
    st.pend_len <- st.pend_len - 1;
    let j = slot st src in
    st.queued.(j) <- 0;
    api.Engine.broadcast (src, st.dist.(j))
  end

let protocol ~is_source ~bound : (state, int * int) Engine.protocol =
  let open Engine in
  {
    name = "multi-bf";
    max_msg_words = 2;
    msg_words = (fun _ -> 2);
    halted = (fun st -> st.pend_len = 0);
    init =
      (fun api ->
        let bound_d, bound_i = bound api.id in
        let st =
          {
            bound_d;
            bound_i;
            keys = Array.make 16 (-1);
            dist = Array.make 16 0;
            parent = Array.make 16 0;
            queued = Array.make 16 0;
            mask = 15;
            count = 0;
            pend = Array.make 8 0;
            pend_head = 0;
            pend_len = 0;
            max_pending = 0;
          }
        in
        (* A source records and announces itself only if its own (0, id)
           passes its bound — the Thorup–Zwick condition for belonging
           to its own bunch, which always holds for phase-i sources. *)
        if is_source api.id && below_bound st 0 api.id then
          insert st api.id 0 (-1);
        st);
    on_round =
      (fun api st inbox ->
        (* Indexed loop: [Inbox.iter] would allocate its callback
           closure on every node-round. *)
        for i = 0 to Engine.Inbox.length inbox - 1 do
          let src, dist = Engine.Inbox.msg inbox i in
          let from = Engine.Inbox.from inbox i in
          accept st src (dist + api.neighbor_weight from) from
        done;
        pop_and_broadcast api st);
  }

let found st =
  let acc = ref [] in
  for j = Array.length st.keys - 1 downto 0 do
    if st.keys.(j) >= 0 then acc := (st.keys.(j), st.dist.(j)) :: !acc
  done;
  !acc

let found_with_parents st =
  let acc = ref [] in
  for j = Array.length st.keys - 1 downto 0 do
    if st.keys.(j) >= 0 then
      acc := (st.keys.(j), st.dist.(j), st.parent.(j)) :: !acc
  done;
  !acc

let max_pending st = st.max_pending

let codec =
  let open Ds_util in
  {
    Superstep.encode =
      (fun b (src, dist) ->
        Ivec.push b src;
        Ivec.push b dist);
    decode = (fun w o -> (Ivec.get w o, Ivec.get w (o + 1)));
  }

let run ?backend ?pool ?shards ?tracer ?obs g ~sources ~bound =
  let n = Graph.n g in
  let src_set = Array.make n false in
  List.iter (fun s -> src_set.(s) <- true) sources;
  let r =
    Plane.run ?backend ?pool ?shards ?tracer ?obs ~codec g
      (protocol ~is_source:(fun u -> src_set.(u)) ~bound)
  in
  (match r.Plane.stop with
  | Quiescent | All_halted -> ()
  | Round_limit -> failwith "Multi_bf: round limit hit");
  let m = r.Plane.metrics in
  Metrics.mark_phase m "multi-bf";
  (Array.map found r.Plane.states, m)
