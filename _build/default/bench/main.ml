(* The reproduction harness. Two parts:

   1. The per-theorem experiment tables (E1..E9 from DESIGN.md) — the
      "tables and figures" of this theory paper, regenerated on every
      run.
   2. Bechamel wall-clock microbenchmarks (B1..B6): construction and
      query throughput of the library primitives. *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Gen = Ds_graph.Gen
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Registry = Ds_experiments.Registry

open Bechamel
open Toolkit

let bench_tests () =
  let n = 256 in
  let rng = Rng.create 1 in
  let g = Gen.erdos_renyi ~rng ~n ~avg_degree:6.0 () in
  let levels = Levels.sample ~rng:(Rng.create 2) ~n ~k:3 in
  let labels = Ds_core.Tz_centralized.build g ~levels in
  let slack = Ds_core.Slack.build_distributed ~rng:(Rng.create 3) g ~eps:0.25 in
  let pair_rng = Rng.create 4 in
  let pick () =
    let u = Rng.int pair_rng n in
    let v = (u + 1 + Rng.int pair_rng (n - 1)) mod n in
    (u, v)
  in
  [
    Test.make ~name:"B1 tz-centralized build (n=256,k=3)"
      (Staged.stage (fun () -> Ds_core.Tz_centralized.build g ~levels));
    Test.make ~name:"B2 tz-distributed build (n=256,k=3)"
      (Staged.stage (fun () -> Ds_core.Tz_distributed.build g ~levels));
    Test.make ~name:"B3 tz-echo build (n=256,k=3)"
      (Staged.stage (fun () -> Ds_core.Tz_echo.build g ~levels));
    Test.make ~name:"B4 label query"
      (Staged.stage (fun () ->
           let u, v = pick () in
           Label.query labels.(u) labels.(v)));
    Test.make ~name:"B5 slack query (eps=0.25)"
      (Staged.stage (fun () ->
           let u, v = pick () in
           Ds_core.Slack.query slack.Ds_core.Slack.sketches.(u)
             slack.Ds_core.Slack.sketches.(v)));
    Test.make ~name:"B6 dijkstra sssp (n=256)"
      (Staged.stage (fun () -> Ds_graph.Dijkstra.sssp g ~src:0));
    Test.make ~name:"B7 spanner extraction (n=256,k=3)"
      (Staged.stage (fun () -> Ds_core.Spanner.of_levels g ~levels));
    Test.make ~name:"B8 cdg build distributed (n=256,eps=.25,k=2)"
      (Staged.stage (fun () ->
           Ds_core.Cdg.build_distributed ~rng:(Rng.create 5) g ~eps:0.25 ~k:2));
    Test.make ~name:"B9 engine round (multi-bf, n=256)"
      (Staged.stage
         (let eng =
            Ds_congest.Engine.create g
              (Ds_congest.Multi_bf.protocol
                 ~is_source:(fun u -> u < 8)
                 ~bound:(fun _ -> Ds_graph.Dist.none))
          in
          fun () -> Ds_congest.Engine.step eng));
  ]

let run_microbenches () =
  print_endline "### Microbenchmarks (Bechamel, monotonic clock)\n";
  let tests = Test.make_grouped ~name:"distsketch" (bench_tests ()) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name r acc -> (name, r) :: acc) results []
    |> List.sort compare
  in
  let t =
    Ds_util.Table.create ~title:"wall-clock per run"
      ~headers:[ "benchmark"; "time/run"; "r^2" ]
  in
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with Some (e :: _) -> e | _ -> nan
      in
      let pretty =
        if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%.3f us" (est /. 1e3)
        else Printf.sprintf "%.1f ns" est
      in
      let r2 =
        match Analyze.OLS.r_square r with
        | Some v -> Printf.sprintf "%.4f" v
        | None -> "-"
      in
      Ds_util.Table.add_row t [ name; pretty; r2 ])
    rows;
  Ds_util.Table.print t

let () =
  print_endline
    "Reproduction harness: 'Efficient Computation of Distance Sketches in \
     Distributed Networks' (Das Sarma, Dinitz, Pandurangan; SPAA 2012).\n\
     The paper is theory-only; each experiment below reproduces one theorem \
     or lemma (see DESIGN.md / EXPERIMENTS.md).\n";
  Registry.run_all ();
  run_microbenches ()
