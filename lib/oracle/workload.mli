(** Synthetic query-pair streams for driving the oracle.

    Deterministic in the {!Ds_util.Rng} they are given, so a batch
    benchmark or a CI smoke run can be replayed exactly from a seed.
    Two shapes:

    - {b uniform}: both endpoints uniform over the node set — the
      worst case for caching, every bunch equally hot;
    - {b zipf}: endpoints drawn from a Zipf(α) popularity law over a
      seed-shuffled node permutation — the skewed "hotspot" traffic a
      deployed oracle actually sees, where a few popular nodes
      dominate the stream. The permutation keeps the hot set
      seed-dependent instead of always being the low node ids. *)

type kind =
  | Uniform
  | Zipf of { alpha : float }
      (** [alpha > 0]; 1.0–1.5 is the classic web-traffic range. *)

val kind_of_string : string -> (kind, string) result
(** ["uniform"] / ["zipf"] / ["zipf:<alpha>"]. *)

val name : kind -> string
(** Display name, e.g. ["uniform"] / ["zipf(1.20)"] — what artifacts
    record in their [workload] field. *)

val pairs :
  rng:Ds_util.Rng.t -> kind -> n:int -> count:int -> (int * int) array
(** [pairs ~rng kind ~n ~count] draws [count] query pairs [(u, v)]
    with [0 <= u, v < n] and [u <> v]. Requires [n >= 2] and
    [count >= 0]. *)

val pairs_flat : rng:Ds_util.Rng.t -> kind -> n:int -> count:int -> int array
(** Same stream as {!pairs} (identical RNG consumption, so the same
    seed yields the same workload), laid out flat: pair [i] is
    [(flat.(2i), flat.(2i+1))]. The layout {!Oracle.query_batch_flat}
    consumes without boxing. *)

val save_pairs : string -> int array -> unit
(** [save_pairs path flat] writes a flat pair array as one ["u v"]
    line per query — the explicit-workload interchange format behind
    the CLI's [--dump-pairs]. Raises [Invalid_argument] on an
    odd-length array. *)

val load_pairs : n:int -> string -> int array
(** [load_pairs ~n path] reads a pair file back into the flat layout.
    Blank lines and [#] comments are skipped; any other line must be
    two ints in [\[0, n)]. Raises [Failure] with file/line context on
    malformed input, [Sys_error] if unreadable. The escape hatch
    ([--pairs-file]) that replays an identical pair set across
    families and CLI runs. *)
