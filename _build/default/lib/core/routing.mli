(** Greedy forwarding with a distance sketch as the oracle.

    A token at [u] bound for [t] is forwarded to the neighbor [w]
    minimising [weight(u,w) + estimate(w,t)], where the estimate comes
    from sketches alone. Because estimates never underestimate and
    have bounded stretch, greedy progress is usually monotone; the
    residual cycles that approximate estimates can cause are broken by
    a revisit penalty. This is the "token management / routing"
    application from the paper's Section 2.1. *)

type outcome = {
  hops : int;
  cost : int;  (** total weight of the traversed walk *)
  path : int list;  (** nodes visited, source first *)
}

val greedy :
  Ds_graph.Graph.t -> estimate:(int -> int -> int) -> src:int -> dst:int ->
  ?max_hops:int -> unit -> outcome option
(** [greedy g ~estimate ~src ~dst ()] walks the token; [None] if the
    hop budget (default [4 * n]) runs out. [estimate u v] must be
    symmetric and never underestimate. *)

val with_labels :
  Ds_graph.Graph.t -> Label.t array -> src:int -> dst:int -> outcome option
(** {!greedy} with the Thorup–Zwick label query as the oracle. *)
