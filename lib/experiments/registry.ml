module Table = Ds_util.Table
module Pool = Ds_parallel.Pool

type entry = {
  id : string;
  title : string;
  claim : string;
  run : Pool.t -> Table.t list;
}

(* Experiments whose measurements are all centralized take the pool
   anyway so the registry stays uniform; they just ignore it. *)
let all =
  [
    {
      id = "e1";
      title = "sketch size vs k";
      claim = "Lemma 3.1 / Theorem 1.1: O(k n^{1/k}) words";
      run = (fun _pool -> E1_size.run E1_size.default);
    };
    {
      id = "e2";
      title = "stretch vs k";
      claim = "Lemma 3.2: d <= estimate <= (2k-1) d";
      run = (fun _pool -> E2_stretch.run E2_stretch.default);
    };
    {
      id = "e3";
      title = "construction rounds/messages";
      claim = "Theorem 1.1: O(k n^{1/k} S log n) rounds";
      run = (fun pool -> E3_complexity.run ~pool E3_complexity.default);
    };
    {
      id = "e4";
      title = "termination-detection overhead";
      claim = "Section 3.3: constant-factor overhead";
      run = (fun pool -> E4_termination.run ~pool E4_termination.default);
    };
    {
      id = "e5";
      title = "density nets + stretch-3 slack sketches";
      claim = "Lemma 4.2 + Theorem 4.3";
      run = (fun pool -> E5_slack.run ~pool E5_slack.default);
    };
    {
      id = "e6";
      title = "(eps,k)-CDG sketches";
      claim = "Theorems 1.2 / 4.6: stretch 8k-1 with eps-slack";
      run = (fun pool -> E6_cdg.run ~pool E6_cdg.default);
    };
    {
      id = "e7";
      title = "gracefully degrading sketches";
      claim = "Theorem 1.3: O(log n) stretch, O(1) average stretch";
      run = (fun pool -> E7_graceful.run ~pool E7_graceful.default);
    };
    {
      id = "e8";
      title = "query cost vs on-demand computation";
      claim = "Section 2.1: O(D) vs Omega(S) per query";
      run = (fun pool -> E8_query_cost.run ~pool E8_query_cost.default);
    };
    {
      id = "e9";
      title = "query ablations";
      claim = "design choices (not a paper claim)";
      run = (fun pool -> E9_ablation.run ~pool E9_ablation.default);
    };
    {
      id = "e10";
      title = "echo TZ under bounded asynchrony";
      claim = "extension: the paper's future-work model";
      run = (fun pool -> E10_async.run ~pool E10_async.default);
    };
    {
      id = "e11";
      title = "TZ spanner for free";
      claim = "extension: (2k-1)-spanner with O(k n^{1+1/k}) edges";
      run = (fun pool -> E11_spanner.run ~pool E11_spanner.default);
    };
    {
      id = "e12";
      title = "Vivaldi coordinates vs TZ sketches";
      claim = "Section 1: coordinate systems lack worst-case guarantees";
      run = (fun _pool -> E12_vivaldi.run E12_vivaldi.default);
    };
    {
      id = "e13";
      title = "brute-force APSP vs sketches";
      claim = "Section 1: quadratic storage is the strawman";
      run = (fun pool -> E13_brute_force.run ~pool E13_brute_force.default);
    };
    {
      id = "e14";
      title = "scheduler backlog vs Lemma 3.7";
      claim = "Lemma 3.7: pending queue <= bunch slice, O(n^{1/k} log n)";
      run = (fun pool -> E14_backlog.run ~pool E14_backlog.default);
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_one ?(pool = Pool.sequential) ?csv_dir e =
  Printf.printf "### %s — %s\n    reproduces: %s\n\n" e.id e.title e.claim;
  List.iter
    (fun t ->
      Table.print t;
      (match csv_dir with
      | Some dir ->
        let path = Table.save_csv t ~dir in
        Printf.printf "(csv: %s)\n" path
      | None -> ());
      print_newline ())
    (e.run pool)

let run_all ?pool ?csv_dir () = List.iter (run_one ?pool ?csv_dir) all
