(** Minimal data-parallel helpers over OCaml 5 domains.

    The CONGEST engine steps all node automata once per round; the
    per-node work is independent, so rounds parallelise trivially. On a
    single-core host everything degrades to sequential execution with
    no domain spawns. *)

type t

val create : ?domains:int -> unit -> t
(** [create ()] sizes the pool to the number of recommended domains.
    [domains] overrides it (1 means fully sequential). *)

val domains : t -> int

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi f] runs [f i] for [lo <= i < hi], split
    into one contiguous chunk per domain. [f] must be safe to run
    concurrently for distinct [i]. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val sequential : t
(** A pool that never spawns; useful in tests. *)
