module Rng = Ds_util.Rng

type t = { k : int; level : int array }

let k t = t.k
let n t = Array.length t.level
let level t u = t.level.(u)

let in_set t i u =
  if i >= t.k then false else if i < 0 then invalid_arg "Levels.in_set" else t.level.(u) >= i

let members t i =
  let acc = ref [] in
  for u = Array.length t.level - 1 downto 0 do
    if in_set t i u then acc := u :: !acc
  done;
  !acc

let exactly t i =
  let acc = ref [] in
  for u = Array.length t.level - 1 downto 0 do
    if t.level.(u) = i then acc := u :: !acc
  done;
  !acc

let counts t =
  let c = Array.make t.k 0 in
  Array.iter
    (fun l ->
      for i = 0 to min l (t.k - 1) do
        c.(i) <- c.(i) + 1
      done)
    t.level;
  c

let of_level_array ~k level =
  if k < 1 then invalid_arg "Levels: k must be >= 1";
  Array.iter
    (fun l -> if l < -1 || l >= k then invalid_arg "Levels: level out of range")
    level;
  { k; level }

let draw_level rng ~k ~prob ~member =
  if not member then -1
  else begin
    let l = ref 0 in
    while !l < k - 1 && Rng.bool rng prob do
      incr l
    done;
    !l
  end

let sample_general ~rng ~n ~k ~member ~prob =
  if k < 1 then invalid_arg "Levels.sample: k must be >= 1";
  let rec go attempts =
    if attempts > 1000 then
      failwith "Levels.sample: could not populate the top level";
    let level =
      Array.init n (fun u -> draw_level rng ~k ~prob ~member:(member u))
    in
    let t = { k; level } in
    (* k = 1 needs no top-level check: A_0 is the universe. *)
    if k = 1 || members t (k - 1) <> [] then t else go (attempts + 1)
  in
  go 0

let sample ~rng ~n ~k =
  let prob = float_of_int n ** (-1.0 /. float_of_int k) in
  sample_general ~rng ~n ~k ~member:(fun _ -> true) ~prob

let sample_subset ~rng ~n ~k ~subset ~prob =
  let mem = Array.make n false in
  List.iter (fun u -> mem.(u) <- true) subset;
  sample_general ~rng ~n ~k ~member:(fun u -> mem.(u)) ~prob
