(** E6 — Theorem 1.2 / 4.6: (ε,k)-CDG sketches.

    Paper claims: size O(k (ε^{-1} log n)^{1/k} log n) words, stretch
    8k-1 with ε-slack, O(k S (ε^{-1} log n)^{1/k} log n) rounds. The
    label-transfer (cell broadcast) share of the cost is reported
    separately: the paper leaves that step implicit. *)

module Table = Ds_util.Table
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Stats = Ds_util.Stats
module Cdg = Ds_core.Cdg
module Eval = Ds_core.Eval

type params = { seed : int; n : int; grid : (float * int) list }

let default =
  {
    seed = 6;
    n = 400;
    grid = [ (0.25, 1); (0.25, 2); (0.25, 3); (0.1, 1); (0.1, 2); (0.1, 3) ];
  }

let run ?pool { seed; n; grid } =
  let w =
    Common.make_workload ~seed
      ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
      ~n
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "E6: (eps,k)-CDG sketches (erdos-renyi, n=%d, S=%d) — \
                         Theorem 4.6"
           n w.Common.profile.Ds_graph.Props.s)
      ~headers:
        [
          "eps"; "k"; "bound 8k-1"; "|N|"; "mean words"; "rounds";
          "transfer msgs%"; "far max"; "far avg"; "far p99"; "viol";
        ]
  in
  List.iter
    (fun (eps, k) ->
      let r =
        Cdg.build_distributed ?pool ~rng:(Rng.create (seed + k)) w.Common.graph ~eps
          ~k
      in
      let far =
        Common.far_sample ~rng:(Rng.create (seed + 19)) w.Common.apsp ~eps
          ~count:3000
      in
      let report =
        Eval.on_pairs
          ~query:(fun u v -> Cdg.query r.Cdg.sketches.(u) r.Cdg.sketches.(v))
          far
      in
      let sizes = Eval.size_summary Cdg.size_words r.Cdg.sketches in
      let share =
        100.0
        *. float_of_int (Metrics.messages r.Cdg.transfer_metrics)
        /. float_of_int (Metrics.messages r.Cdg.metrics)
      in
      Table.add_row t
        ([
           Table.cell_float eps;
           Table.cell_int k;
           Table.cell_int ((8 * k) - 1);
           Table.cell_int (List.length r.Cdg.net);
           Table.cell_float sizes.Stats.mean;
           Table.cell_int (Metrics.rounds r.Cdg.metrics);
           Table.cell_float ~decimals:1 share;
         ]
        @ Common.stretch_cells report))
    grid;
  [ t ]
