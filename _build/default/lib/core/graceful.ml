module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Metrics = Ds_congest.Metrics

type sketch = {
  owner : int;
  parts : (float * Cdg.sketch) array;
}

let size_words s =
  Array.fold_left (fun acc (_, part) -> acc + Cdg.size_words part) 0 s.parts

let query a b =
  if Array.length a.parts <> Array.length b.parts then
    invalid_arg "Graceful.query: mismatched sketches";
  let best = ref Dist.infinity in
  Array.iteri
    (fun i (_, pa) ->
      let _, pb = b.parts.(i) in
      let est = Cdg.query pa pb in
      if est < !best then best := est)
    a.parts;
  !best

type result = {
  sketches : sketch array;
  metrics : Metrics.t;
}

let levels_for n =
  let imax =
    max 1 (int_of_float (ceil (log (float_of_int n) /. log 2.0)))
  in
  List.init imax (fun j ->
      let i = j + 1 in
      (i, 1.0 /. float_of_int (1 lsl i)))

let assemble n per_level =
  Array.init n (fun u ->
      {
        owner = u;
        parts =
          Array.of_list
            (List.map (fun (eps, sk) -> (eps, sk.(u))) per_level);
      })

let build_distributed ?pool ~rng g =
  let n = Graph.n g in
  let runs =
    List.map
      (fun (k, eps) ->
        let r = Cdg.build_distributed ?pool ~rng g ~eps ~k in
        (eps, r))
      (levels_for n)
  in
  let per_level = List.map (fun (eps, r) -> (eps, r.Cdg.sketches)) runs in
  let metrics =
    List.fold_left
      (fun acc (_, r) -> Metrics.add acc r.Cdg.metrics)
      (Metrics.create ()) runs
  in
  { sketches = assemble n per_level; metrics }

let build_centralized ~rng g =
  let n = Graph.n g in
  let per_level =
    List.map
      (fun (k, eps) -> (eps, Cdg.build_centralized ~rng g ~eps ~k))
      (levels_for n)
  in
  assemble n per_level
