module Pool = Ds_parallel.Pool

type config = { batch : int; cache_bits : int; rate : float }

let default_config = { batch = 64; cache_bits = 0; rate = 0. }
let max_cache_bits = 24

type worker_stats = {
  worker : int;
  served : int;
  hits : int;
  misses : int;
  busy_ns : float;
  worker_qps : float;
}

type latency = {
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max : float;
}

type stats = {
  pairs : int;
  workers : int;
  elapsed_ns : float;
  qps : float;
  offered_qps : float;
  hit_rate : float;
  latency_ns : latency;
  per_worker : worker_stats array;
}

let now_ns () = Int64.to_float (Monotonic_clock.now ())

(* Sleep for long admission waits, spin for the last millisecond: a
   sleeping worker wakes late by a scheduler quantum, a spinning one
   burns a core another worker could use. The crossover keeps pacing
   accurate without starving co-scheduled workers on small hosts. *)
let rec wait_until target =
  let now = now_ns () in
  if now < target then begin
    if target -. now > 2e6 then Unix.sleepf ((target -. now -. 1e6) /. 1e9)
    else Domain.cpu_relax ();
    wait_until target
  end

(* Sort once, then read all five percentiles through the canonical
   [Ds_util.Stats.percentile_sorted] (the latency array covers every
   request, not a sample — one copy+sort, five O(1) reads). *)
let summarize_latency lat =
  let n = Array.length lat in
  if n = 0 then { mean = 0.; p50 = 0.; p90 = 0.; p99 = 0.; p999 = 0.; max = 0. }
  else begin
    let sorted = Array.copy lat in
    Array.sort Float.compare sorted;
    let sum = Array.fold_left ( +. ) 0. sorted in
    let pct = Ds_util.Stats.percentile_sorted sorted in
    {
      mean = sum /. float_of_int n;
      p50 = pct 50.;
      p90 = pct 90.;
      p99 = pct 99.;
      p999 = pct 99.9;
      max = sorted.(n - 1);
    }
  end

(* Resolved obs handles, one immutable record fetched at setup; every
   hot site below gates on the single [option] match. *)
module Obs = Ds_obs.Obs
module Sampler = Ds_obs.Sampler

type serve_obs = {
  so_admitted : Obs.counter;
  so_served : Obs.counter;
  so_hits : Obs.counter;
  so_misses : Obs.counter;
  so_queries : Obs.counter;
  so_queries_fam : Obs.counter;
  so_queue : Obs.gauge;
  so_block : Obs.histogram;
}

let resolve_obs registry oracle =
  let fam = Ds_sketch.Family.name (Oracle.family oracle) in
  {
    so_admitted = Obs.counter registry Obs.Name.serve_admitted;
    so_served = Obs.counter registry Obs.Name.serve_served;
    so_hits = Obs.counter registry Obs.Name.serve_hits;
    so_misses = Obs.counter registry Obs.Name.serve_misses;
    (* Cache hits never reach the oracle, so the oracle-query counters
       advance by the block's misses only. *)
    so_queries = Obs.counter registry Obs.Name.oracle_queries;
    so_queries_fam = Obs.counter registry (Obs.Name.oracle_queries_family fam);
    so_queue = Obs.gauge registry Obs.Name.serve_queue_depth;
    so_block = Obs.histogram registry Obs.Name.serve_block_ns;
  }

(* A worker's shard is fixed for its whole run, so each instrument is
   further resolved to the worker's own cells before the block loop —
   the per-block obs cost is then plain unmasked array
   read-modify-writes (the B18 overhead gate counts on this). *)
type worker_obs = {
  wo_admitted : Obs.counter_shard;
  wo_served : Obs.counter_shard;
  wo_hits : Obs.counter_shard;
  wo_misses : Obs.counter_shard;
  wo_queries : Obs.counter_shard;
  wo_queries_fam : Obs.counter_shard;
  wo_queue : Obs.gauge_shard;
  wo_block : Obs.hist_shard;
}

let resolve_worker_obs o ~shard =
  {
    wo_admitted = Obs.counter_shard o.so_admitted ~shard;
    wo_served = Obs.counter_shard o.so_served ~shard;
    wo_hits = Obs.counter_shard o.so_hits ~shard;
    wo_misses = Obs.counter_shard o.so_misses ~shard;
    wo_queries = Obs.counter_shard o.so_queries ~shard;
    wo_queries_fam = Obs.counter_shard o.so_queries_fam ~shard;
    wo_queue = Obs.gauge_shard o.so_queue ~shard;
    wo_block = Obs.hist_shard o.so_block ~shard;
  }

(* Direct-mapped slot for a packed pair key: multiplicative hash
   (SplitMix64's odd constant), top [bits] of the 62-bit product so
   nearby keys spread. *)
let cache_slot key bits = (key * 0x2545F4914F6CDD1D) lsr (63 - bits)

let run ?(pool = Pool.sequential) ?(config = default_config) ?obs ?sampler
    oracle flat =
  let len = Array.length flat in
  if len land 1 <> 0 then invalid_arg "Serve.run: odd-length pair stream";
  if config.batch < 1 then invalid_arg "Serve.run: batch must be >= 1";
  if config.cache_bits < 0 || config.cache_bits > max_cache_bits then
    invalid_arg
      (Printf.sprintf "Serve.run: cache_bits must be in [0, %d]" max_cache_bits);
  if config.rate < 0. || not (Float.is_finite config.rate) then
    invalid_arg "Serve.run: rate must be finite and >= 0";
  let m = len / 2 in
  let workers = Pool.domains pool in
  (* [?obs] names the registry explicitly; with only a sampler, its
     registry is the one instrumented. *)
  let ob =
    match obs with
    | Some registry -> Some (resolve_obs registry oracle)
    | None -> (
      match sampler with
      | Some s -> Some (resolve_obs (Sampler.obs s) oracle)
      | None -> None)
  in
  if m = 0 then begin
    (match sampler with
    | Some s ->
      let now = Sampler.now_ns () in
      Sampler.start s ~now_ns:now;
      Sampler.sample s now
    | None -> ());
    ( [||],
      {
        pairs = 0;
        workers;
        elapsed_ns = 0.;
        qps = 0.;
        offered_qps = config.rate;
        hit_rate = 0.;
        latency_ns = summarize_latency [||];
        per_worker =
          Array.init workers (fun worker ->
              {
                worker;
                served = 0;
                hits = 0;
                misses = 0;
                busy_ns = 0.;
                worker_qps = 0.;
              });
      } )
  end
  else begin
    let batch = config.batch in
    let n_oracle = Oracle.n oracle in
    let blocks = (m + batch - 1) / batch in
    let out = Array.make m 0 in
    let lat = Array.make m 0. in
    (* Per-worker results live in plain arrays written exactly once per
       worker at the end of its run — the hot loop touches only
       domain-local counters, so nothing is falsely shared. *)
    let served_a = Array.make workers 0 in
    let hits_a = Array.make workers 0 in
    let busy_a = Array.make workers 0. in
    (* ns between consecutive arrivals; 0 = closed loop, no pacing. *)
    let gap_ns = if config.rate > 0. then 1e9 /. config.rate else 0. in
    let t0 = now_ns () in
    (match sampler with
    | Some s -> Sampler.start s ~now_ns:(int_of_float t0)
    | None -> ());
    let run_worker w =
      let wob =
        match ob with
        | Some o -> Some (resolve_worker_obs o ~shard:w)
        | None -> None
      in
      let cache_size = if config.cache_bits = 0 then 0 else 1 lsl config.cache_bits in
      (* Keys are packed pairs u*n + v >= 0, so -1 marks an empty slot. *)
      let cache_key = Array.make (max 1 cache_size) (-1) in
      let cache_val = Array.make (max 1 cache_size) 0 in
      let bits = config.cache_bits in
      let served = ref 0 and hits = ref 0 and busy = ref 0. in
      (* Requests statically assigned to this worker (block-cyclic):
         its queue depth gauge counts down from here. Pure arithmetic,
         computed once. *)
      let assigned =
        if w >= blocks then 0
        else begin
          let owned = ((blocks - 1 - w) / workers) + 1 in
          (* The globally last block may be short; it belongs to
             worker [(blocks - 1) mod workers]. *)
          let last_short =
            if (blocks - 1) mod workers = w then (blocks * batch) - m else 0
          in
          (owned * batch) - last_short
        end
      in
      let j = ref w in
      while !j < blocks do
        let lo = !j * batch in
        let hi = min m (lo + batch) in
        (* Open loop: the block is admitted once its last request has
           arrived. The admission clock read doubles as the closed-loop
           latency base. *)
        if gap_ns > 0. then wait_until (t0 +. (gap_ns *. float_of_int (hi - 1)));
        let t_adm = now_ns () in
        (match wob with
        | Some o -> Obs.shard_add o.wo_admitted (hi - lo)
        | None -> ());
        let hits_before = !hits in
        if cache_size = 0 then
          for i = lo to hi - 1 do
            out.(i) <- Oracle.query oracle flat.(2 * i) flat.((2 * i) + 1)
          done
        else
          for i = lo to hi - 1 do
            let u = flat.(2 * i) and v = flat.((2 * i) + 1) in
            let key = (u * n_oracle) + v in
            let slot = cache_slot key bits in
            if cache_key.(slot) = key then begin
              out.(i) <- cache_val.(slot);
              incr hits
            end
            else begin
              let d = Oracle.query oracle u v in
              cache_key.(slot) <- key;
              cache_val.(slot) <- d;
              out.(i) <- d
            end
          done;
        let t_done = now_ns () in
        busy := !busy +. (t_done -. t_adm);
        served := !served + (hi - lo);
        (* Obs block: counter adds, a gauge store and one histogram
           observe — no clock reads beyond the ones the loop already
           took, no allocation (the GC-regression test pins the
           instrumented block's minor words equal to the plain one). *)
        (match wob with
        | None -> ()
        | Some o ->
          let dh = !hits - hits_before in
          Obs.shard_add o.wo_served (hi - lo);
          Obs.shard_add o.wo_hits dh;
          Obs.shard_add o.wo_misses (hi - lo - dh);
          Obs.shard_add o.wo_queries (hi - lo - dh);
          Obs.shard_add o.wo_queries_fam (hi - lo - dh);
          Obs.shard_set o.wo_queue (assigned - !served);
          Obs.shard_observe o.wo_block (int_of_float (t_done -. t_adm)));
        (match sampler with
        | Some s when w = 0 -> Sampler.tick s (int_of_float t_done)
        | _ -> ());
        (* One latency write per request, against its arrival (open
           loop: queueing included) or its block's admission (closed
           loop: pure service time). *)
        if gap_ns > 0. then
          for i = lo to hi - 1 do
            lat.(i) <- t_done -. (t0 +. (gap_ns *. float_of_int i))
          done
        else
          for i = lo to hi - 1 do
            lat.(i) <- t_done -. t_adm
          done;
        j := !j + workers
      done;
      served_a.(w) <- !served;
      hits_a.(w) <- !hits;
      busy_a.(w) <- !busy
    in
    ignore
      (Pool.parallel_chunks pool ~n:workers (fun _ lo hi ->
           for w = lo to hi - 1 do
             run_worker w
           done));
    let elapsed_ns = max 1. (now_ns () -. t0) in
    (* Forced final sample after the pool joins: a quiesced, exact
       read — the point CI reconciles against this run's own
       accounting. *)
    (match sampler with
    | Some s -> Sampler.sample s (int_of_float (now_ns ()))
    | None -> ());
    let per_worker =
      Array.init workers (fun w ->
          {
            worker = w;
            served = served_a.(w);
            hits = hits_a.(w);
            misses = served_a.(w) - hits_a.(w);
            busy_ns = busy_a.(w);
            worker_qps =
              (if busy_a.(w) > 0. then
                 float_of_int served_a.(w) /. (busy_a.(w) /. 1e9)
               else 0.);
          })
    in
    let total_hits = Array.fold_left ( + ) 0 hits_a in
    ( out,
      {
        pairs = m;
        workers;
        elapsed_ns;
        qps = float_of_int m /. (elapsed_ns /. 1e9);
        offered_qps = config.rate;
        hit_rate = float_of_int total_hits /. float_of_int m;
        latency_ns = summarize_latency lat;
        per_worker;
      } )
  end
