test/test_routing.ml: Alcotest Ds_core Ds_graph Ds_util Helpers Printf
