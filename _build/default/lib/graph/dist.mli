(** Integer network distances with a saturating infinity.

    Edge weights are positive integers polynomial in [n] (the paper's
    model), so every finite distance fits comfortably in an [int]. All
    "closest node" comparisons in the library break distance ties by
    node ID, which realises the paper's "assume all distances are
    distinct" convention. *)

val infinity : int
(** Sentinel strictly larger than any real distance. *)

val is_finite : int -> bool

val add : int -> int -> int
(** Saturating addition: [add infinity x = infinity]. *)

val lex_lt : int * int -> int * int -> bool
(** [lex_lt (d1, id1) (d2, id2)] is the strict lexicographic order on
    (distance, node-ID) pairs used for all tie-broken comparisons. *)

val lex_min : int * int -> int * int -> int * int

val none : int * int
(** The identity for {!lex_min}: [(infinity, max_int)]. *)
