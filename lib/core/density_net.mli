(** ε-density nets (paper Definition 4.1, Lemma 4.2).

    A set [N] such that (1) every node [u] has a net node within
    [R(u, ε)] — the radius of the smallest ball around [u] holding
    [εn] nodes — and (2) [|N| <= (10/ε) ln n]. Sampling each node with
    probability [5 ln n / (ε n)] achieves both with high probability,
    with zero communication (every coin is local). *)

val sample_probability : n:int -> eps:float -> float
(** The per-node coin bias [5 ln n / (ε n)], clamped to [0, 1]. *)

val sample : rng:Ds_util.Rng.t -> n:int -> eps:float -> int list
(** Never empty: resamples in the unlikely all-tails case (the paper
    absorbs this into the failure probability). *)

val size_bound : n:int -> eps:float -> float
(** The Lemma 4.2 bound [(10/ε) ln n]. *)

val covering_radius : Ds_graph.Apsp.t -> eps:float -> u:int -> int
(** [R(u, ε)] computed from exact distances (evaluation only). *)

val is_valid_net : Ds_graph.Apsp.t -> eps:float -> int list -> bool
(** Checks property (1) exactly (evaluation only). *)
