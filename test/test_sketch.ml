(* The multi-family sketch platform: the two new families (landmark,
   bottom-k ADS) against their sequential references, their estimator
   guarantees against exact distances, cross-backend byte-equality,
   and the shared flat container's validation. Snapshot v2 round-trip
   tests live here too (the store is family-polymorphic now). *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Apsp = Ds_graph.Apsp
module Plane = Ds_congest.Plane
module Metrics = Ds_congest.Metrics
module Label = Ds_core.Label
module Family = Ds_sketch.Family
module Sketch = Ds_sketch.Sketch
module Landmark = Ds_sketch.Landmark
module Bottomk = Ds_sketch.Bottomk
module Build = Ds_sketch.Build
module Pool = Ds_parallel.Pool

let domain_matrix = [ 1; 2; 4; 8 ]

let entries_equal name want got =
  Alcotest.(check int) (name ^ " node count") (Array.length want)
    (Array.length got);
  Array.iteri
    (fun u es ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "%s node %d" name u)
        (Array.to_list es)
        (Array.to_list got.(u)))
    want

let sketch_entries s =
  Array.init (Sketch.n s) (fun u -> Sketch.node_entries s u)

let check_metrics_equal name a b =
  Alcotest.(check int) (name ^ " rounds") (Metrics.rounds a) (Metrics.rounds b);
  Alcotest.(check int)
    (name ^ " messages")
    (Metrics.messages a) (Metrics.messages b);
  Alcotest.(check int) (name ^ " words") (Metrics.words a) (Metrics.words b)

(* --- family tags --- *)

let test_family_strings () =
  List.iter
    (fun f ->
      match Family.of_string (Family.name f) with
      | Ok f' -> Alcotest.(check bool) (Family.name f) true (f = f')
      | Error e -> Alcotest.fail e)
    Family.all;
  (match Family.of_string "bottom-k" with
  | Ok Family.Bottomk -> ()
  | _ -> Alcotest.fail "bottom-k alias");
  match Family.of_string "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted junk family"

(* --- bottom-k ADS --- *)

(* Distributed protocol == sequential rank-ordered Dijkstra, over the
   whole topology suite. This is the strongest statement: the final
   filter must demote exactly the entries the permissive admission
   let in on stale distances. *)
let test_bottomk_matches_reference () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let r = Bottomk.run g ~k ~seed:7 in
          let want = Bottomk.reference g ~k ~seed:7 in
          entries_equal
            (Printf.sprintf "bottomk %s k=%d" name k)
            want (sketch_entries r.Bottomk.sketch))
        [ 1; 2; 4 ])
    (Helpers.graph_suite 520)

(* ADS invariants on the distributed result: every member is admitted
   by its own prefix (fewer than k lex-lower ranks within its
   distance), and the k-th-lowest-rank threshold can only fall as the
   distance ball grows. *)
let test_bottomk_invariants () =
  let g = Helpers.random_graph ~seed:521 80 in
  let k = 3 in
  let seed = 9 in
  let r = Bottomk.run g ~k ~seed in
  let s = r.Bottomk.sketch in
  for u = 0 to Sketch.n s - 1 do
    let es = Sketch.node_entries s u in
    let rk v = (Bottomk.rank ~seed v, v) in
    Array.iter
      (fun (v, d) ->
        let dominating =
          Array.fold_left
            (fun c (w, d') -> if d' <= d && rk w < rk v then c + 1 else c)
            0 es
        in
        if dominating >= k then
          Alcotest.failf "node %d: entry %d at dist %d has %d dominators" u v d
            dominating)
      es;
    (* rank-threshold monotonicity: walk entries by increasing
       distance; once >= k entries are inside the ball, the k-th
       lowest rank must be non-increasing. *)
    let by_dist = Array.copy es in
    Array.sort (fun (v, d) (w, d') -> compare (d, v) (d', w)) by_dist;
    let seen = ref [] in
    let last = ref (max_int, max_int) in
    Array.iter
      (fun (v, _) ->
        seen := rk v :: !seen;
        let sorted = List.sort compare !seen in
        if List.length sorted >= k then begin
          let thresh = List.nth sorted (k - 1) in
          if thresh > !last then
            Alcotest.failf "node %d: rank threshold grew" u;
          last := thresh
        end)
      by_dist
  done

(* Estimates: never below the true distance, and finite for every
   connected pair (the component's minimum-rank node is in every
   sketch on that component). *)
let test_bottomk_estimate_bounds () =
  List.iter
    (fun (name, g) ->
      let apsp = Apsp.compute g in
      let r = Bottomk.run g ~k:4 ~seed:11 in
      let s = r.Bottomk.sketch in
      Apsp.iter_pairs apsp (fun u v d ->
          let est = Sketch.estimate s u v in
          if Dist.is_finite d then begin
            if not (Dist.is_finite est) then
              Alcotest.failf "%s: no estimate for connected (%d,%d)" name u v;
            if est < d then
              Alcotest.failf "%s: underestimate %d < %d for (%d,%d)" name est d
                u v
          end))
    (Helpers.graph_suite 522)

let test_bottomk_cross_backend () =
  let g = Helpers.random_graph ~seed:523 120 in
  let ref_r = Bottomk.run ~backend:Plane.Congest g ~k:3 ~seed:13 in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains @@ fun pool ->
      let r = Bottomk.run ~backend:Plane.Sharded ~pool g ~k:3 ~seed:13 in
      let name = Printf.sprintf "bottomk d=%d" domains in
      Alcotest.(check bool)
        (name ^ " sketch") true
        (Sketch.equal ref_r.Bottomk.sketch r.Bottomk.sketch);
      check_metrics_equal name ref_r.Bottomk.metrics r.Bottomk.metrics;
      Alcotest.(check int)
        (name ^ " max_pending")
        ref_r.Bottomk.max_pending r.Bottomk.max_pending)
    domain_matrix

(* --- landmark sketches --- *)

let test_landmark_set_shapes () =
  let n = 100 and k = 2 and seed = 3 in
  let r = Landmark.r ~n in
  Alcotest.(check int) "r = floor(log2 100)" 6 r;
  let sets = Landmark.sets ~n ~k ~seed in
  Alcotest.(check int) "k*r sets" (k * r) (Array.length sets);
  Array.iteri
    (fun i set ->
      let j = i mod r in
      Alcotest.(check int)
        (Printf.sprintf "set %d size" i)
        (min (1 lsl j) n) (Array.length set);
      Array.iteri
        (fun idx v ->
          if v < 0 || v >= n then Alcotest.failf "set %d out of range" i;
          if idx > 0 && set.(idx - 1) >= v then
            Alcotest.failf "set %d not increasing" i)
        set)
    sets

let test_landmark_matches_reference () =
  List.iter
    (fun (name, g) ->
      let r = Landmark.run g ~k:2 ~seed:17 in
      let want = Landmark.reference g ~k:2 ~seed:17 in
      entries_equal
        (Printf.sprintf "landmark %s" name)
        want (sketch_entries r.Landmark.sketch))
    (Helpers.graph_suite 524)

(* The estimator contract: always an upper bound, and exact whenever
   some vertex on a true shortest path is a common landmark of both
   endpoints (entry distances are exact super-BF distances). *)
let test_landmark_estimate_bounds () =
  List.iter
    (fun (name, g) ->
      let apsp = Apsp.compute g in
      let r = Landmark.run g ~k:2 ~seed:19 in
      let s = r.Landmark.sketch in
      Apsp.iter_pairs apsp (fun u v d ->
          if Dist.is_finite d then begin
            let est = Sketch.estimate s u v in
            if est < d then
              Alcotest.failf "%s: underestimate %d < %d for (%d,%d)" name est d
                u v;
            (* exactness witness: a common entry on a shortest path *)
            let exact_witness = ref false in
            Array.iter
              (fun (w, duw) ->
                let dwv = Sketch.find s v w in
                if Dist.is_finite dwv && duw + dwv = d then
                  exact_witness := true)
              (Sketch.node_entries s u);
            if !exact_witness && est <> d then
              Alcotest.failf
                "%s: est %d <> exact %d for (%d,%d) despite witness" name est d
                u v
          end))
    (Helpers.graph_suite 525)

let test_landmark_cross_backend () =
  let g = Helpers.random_graph ~seed:526 110 in
  let ref_r = Landmark.run ~backend:Plane.Congest g ~k:2 ~seed:23 in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains @@ fun pool ->
      let r = Landmark.run ~backend:Plane.Sharded ~pool g ~k:2 ~seed:23 in
      let name = Printf.sprintf "landmark d=%d" domains in
      Alcotest.(check bool)
        (name ^ " sketch") true
        (Sketch.equal ref_r.Landmark.sketch r.Landmark.sketch);
      check_metrics_equal name ref_r.Landmark.metrics r.Landmark.metrics)
    domain_matrix

(* --- the shared container --- *)

(* The tz compilation path moved from Oracle into Sketch; pin the
   estimator against the label-level query it reimplements. *)
let test_tz_estimate_parity () =
  let g = Helpers.random_graph ~seed:527 70 in
  let b = Build.run ~family:Family.Tz g ~k:3 ~seed:42 in
  let s = b.Build.sketch in
  Alcotest.(check bool) "family" true (Sketch.family s = Family.Tz);
  let levels =
    Ds_core.Levels.sample ~rng:(Rng.create 43) ~n:(Graph.n g) ~k:3
  in
  let r = Ds_core.Tz_distributed.build g ~levels in
  let labels = r.Ds_core.Tz_distributed.labels in
  let n = Graph.n g in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      Alcotest.(check int)
        (Printf.sprintf "query (%d,%d)" u v)
        (Label.query labels.(u) labels.(v))
        (Sketch.estimate s u v);
      Alcotest.(check int)
        (Printf.sprintf "bidi (%d,%d)" u v)
        (Label.query_bidirectional labels.(u) labels.(v))
        (Sketch.estimate_bidirectional s u v)
    done
  done

let test_container_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: accepted invalid input" name
  in
  expect_invalid "v empty" (fun () ->
      Sketch.v ~family:Family.Bottomk ~k:2 [||]);
  expect_invalid "v tz" (fun () ->
      Sketch.v ~family:Family.Tz ~k:2 [| [| (0, 0) |] |]);
  expect_invalid "v unsorted" (fun () ->
      Sketch.v ~family:Family.Bottomk ~k:2 [| [| (1, 1); (0, 0) |]; [||] |]);
  expect_invalid "v duplicate" (fun () ->
      Sketch.v ~family:Family.Bottomk ~k:2 [| [| (0, 0); (0, 1) |]; [||] |]);
  expect_invalid "v out of range" (fun () ->
      Sketch.v ~family:Family.Bottomk ~k:2 [| [| (5, 1) |]; [||] |]);
  expect_invalid "v negative dist" (fun () ->
      Sketch.v ~family:Family.Bottomk ~k:2 [| [| (0, -1) |]; [||] |]);
  expect_invalid "of_arrays pivot shape" (fun () ->
      Sketch.of_arrays ~family:Family.Landmark ~k:2 ~pivot_dist:[| 0 |]
        ~pivot_node:[| 0 |] ~off:[| 0; 0 |] ~ent_node:[||] ~ent_dist:[||]);
  let s =
    Sketch.v ~family:Family.Landmark ~k:1
      [| [| (0, 0); (2, 5) |]; [| (2, 1) |]; [| (2, 0) |] |]
  in
  Alcotest.(check int) "size_words" 8 (Sketch.size_words s);
  Alcotest.(check int) "node 0 words" 4 (Sketch.node_size_words s 0);
  Alcotest.(check int) "find hit" 5 (Sketch.find s 0 2);
  Alcotest.(check bool) "find miss" false (Dist.is_finite (Sketch.find s 1 0));
  Alcotest.(check int) "self" 0 (Sketch.estimate s 0 0);
  Alcotest.(check int) "common via 2" 6 (Sketch.estimate s 0 1);
  let est, probes = Sketch.estimate_probes s 0 1 in
  Alcotest.(check int) "probed est" 6 est;
  Alcotest.(check bool) "probes counted" true (probes > 0)

let suite =
  [
    Alcotest.test_case "family names round-trip" `Quick test_family_strings;
    Alcotest.test_case "bottom-k matches sequential reference" `Quick
      test_bottomk_matches_reference;
    Alcotest.test_case "bottom-k ADS invariants" `Quick test_bottomk_invariants;
    Alcotest.test_case "bottom-k estimates bounded below by truth" `Quick
      test_bottomk_estimate_bounds;
    Alcotest.test_case "bottom-k congest = sharded across pools" `Quick
      test_bottomk_cross_backend;
    Alcotest.test_case "landmark set shapes" `Quick test_landmark_set_shapes;
    Alcotest.test_case "landmark matches sequential reference" `Quick
      test_landmark_matches_reference;
    Alcotest.test_case "landmark upper bound + witness exactness" `Quick
      test_landmark_estimate_bounds;
    Alcotest.test_case "landmark congest = sharded across pools" `Quick
      test_landmark_cross_backend;
    Alcotest.test_case "tz estimate parity with Label.query" `Quick
      test_tz_estimate_parity;
    Alcotest.test_case "container validation and accessors" `Quick
      test_container_validation;
  ]
