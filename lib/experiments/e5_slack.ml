(** E5 — Lemma 4.2 and Theorem 4.3: density nets and stretch-3 ε-slack
    sketches.

    Paper claims: |N| <= (10/ε) ln n whp and every node is covered
    within R(u, ε); sketches of O((1/ε) log n) words with stretch <= 3
    on ε-far pairs, built in O(S (1/ε) log n) rounds. *)

module Table = Ds_util.Table
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Density_net = Ds_core.Density_net
module Slack = Ds_core.Slack
module Eval = Ds_core.Eval

type params = { seed : int; n : int; epss : float list }

let default = { seed = 5; n = 400; epss = [ 0.5; 0.25; 0.1; 0.05 ] }

let run ?pool { seed; n; epss } =
  let w =
    Common.make_workload ~seed
      ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
      ~n
  in
  let s = w.Common.profile.Ds_graph.Props.s in
  let t1 =
    Table.create
      ~title:
        (Printf.sprintf "E5a: density nets (erdos-renyi, n=%d) — Lemma 4.2" n)
      ~headers:[ "eps"; "|N|"; "bound 10/eps ln n"; "covers all"; "sample p" ]
  in
  let t2 =
    Table.create
      ~title:
        (Printf.sprintf
           "E5b: stretch-3 slack sketches (n=%d, S=%d) — Theorem 4.3" n s)
      ~headers:
        [
          "eps"; "words"; "bound 2|N|"; "rounds"; "bound S|N|";
          "far max"; "far avg"; "far p99"; "viol";
        ]
  in
  List.iter
    (fun eps ->
      let net = Density_net.sample ~rng:(Rng.create (seed + 13)) ~n ~eps in
      let nn = List.length net in
      Table.add_row t1
        [
          Table.cell_float eps;
          Table.cell_int nn;
          Table.cell_float (Density_net.size_bound ~n ~eps);
          (if Density_net.is_valid_net w.Common.apsp ~eps net then "yes"
           else "NO");
          Table.cell_float ~decimals:4 (Density_net.sample_probability ~n ~eps);
        ];
      let r = Slack.build_distributed ?pool ~rng:(Rng.create (seed + 13)) w.Common.graph ~eps in
      let nn = List.length r.Slack.net in
      let far =
        Common.far_sample ~rng:(Rng.create (seed + 17)) w.Common.apsp ~eps
          ~count:3000
      in
      let report =
        Eval.on_pairs
          ~query:(fun u v -> Slack.query r.Slack.sketches.(u) r.Slack.sketches.(v))
          far
      in
      Table.add_row t2
        ([
           Table.cell_float eps;
           Table.cell_int (Slack.size_words r.Slack.sketches.(0));
           Table.cell_int (2 * nn);
           Table.cell_int (Metrics.rounds r.Slack.metrics);
           Table.cell_int (s * nn);
         ]
        @ Common.stretch_cells report))
    epss;
  [ t1; t2 ]
