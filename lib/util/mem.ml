(* Process-memory introspection for the bench harness and the scale
   experiment. Linux exposes resident-set numbers in
   [/proc/self/status]; elsewhere the probes degrade to [None] so the
   callers can keep their JSON schema (null fields) without gating on
   the platform. *)

let parse_kb line =
  (* "VmRSS:     123456 kB" -> 123456 *)
  let is_digit c = c >= '0' && c <= '9' in
  let n = String.length line in
  let rec start i = if i < n && not (is_digit line.[i]) then start (i + 1) else i in
  let rec stop i = if i < n && is_digit line.[i] then stop (i + 1) else i in
  let lo = start 0 in
  let hi = stop lo in
  if hi > lo then int_of_string_opt (String.sub line lo (hi - lo)) else None

let status_kb key =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let prefix = key ^ ":" in
    let plen = String.length prefix in
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line > plen && String.sub line 0 plen = prefix then
          parse_kb line
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let rss_kb () = status_kb "VmRSS"
let hwm_kb () = status_kb "VmHWM"

let heap_words () =
  let st = Gc.quick_stat () in
  st.Gc.heap_words
