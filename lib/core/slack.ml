module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Dijkstra = Ds_graph.Dijkstra
module Multi_bf = Ds_congest.Multi_bf

type sketch = {
  owner : int;
  entries : (int * int) array;
}

let size_words s = 2 * Array.length s.entries

let query a b =
  (* Both entry arrays are sorted by net-node ID; merge-join them. *)
  let best = ref Dist.infinity in
  let i = ref 0 and j = ref 0 in
  let na = Array.length a.entries and nb = Array.length b.entries in
  while !i < na && !j < nb do
    let wa, da = a.entries.(!i) and wb, db = b.entries.(!j) in
    if wa = wb then begin
      let est = Dist.add da db in
      if est < !best then best := est;
      incr i;
      incr j
    end
    else if wa < wb then incr i
    else incr j
  done;
  !best

type result = {
  sketches : sketch array;
  net : int list;
  metrics : Ds_congest.Metrics.t;
}

let sketch_of_found owner found =
  let entries = Array.of_list found in
  Array.sort compare entries;
  { owner; entries }

let build_distributed ?backend ?pool ?shards ~rng g ~eps =
  let n = Graph.n g in
  let net = Density_net.sample ~rng ~n ~eps in
  let found, metrics =
    Multi_bf.run ?backend ?pool ?shards g ~sources:net
      ~bound:(fun _ -> Dist.none)
  in
  let sketches = Array.mapi sketch_of_found found in
  { sketches; net; metrics }

let build_centralized g ~net =
  let n = Graph.n g in
  let acc = Array.make n [] in
  List.iter
    (fun w ->
      let dist = Dijkstra.sssp g ~src:w in
      for u = 0 to n - 1 do
        if Dist.is_finite dist.(u) then acc.(u) <- (w, dist.(u)) :: acc.(u)
      done)
    net;
  Array.mapi sketch_of_found acc
