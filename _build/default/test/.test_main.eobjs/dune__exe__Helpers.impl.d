test/helpers.ml: Alcotest Ds_graph Ds_util List
