lib/congest/setup.mli: Ds_graph Ds_parallel Engine Metrics
