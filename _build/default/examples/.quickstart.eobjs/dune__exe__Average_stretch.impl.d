examples/average_stretch.ml: Array Ds_core Ds_graph Ds_util List Printf
