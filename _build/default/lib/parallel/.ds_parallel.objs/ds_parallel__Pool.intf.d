lib/parallel/pool.mli:
