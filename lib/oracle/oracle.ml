module Dist = Ds_graph.Dist
module Pool = Ds_parallel.Pool
module Stats = Ds_util.Stats
module Family = Ds_sketch.Family
module Sketch = Ds_sketch.Sketch

type t = Sketch.t

let of_sketch s = s
let of_labels labels = Sketch.of_tz_labels labels
let of_store (s : Sketch_store.t) = s.Sketch_store.sketch
let sketch t = t

let family = Sketch.family
let n = Sketch.n
let k = Sketch.k
let size_words = Sketch.size_words

let bunch_dist t u w =
  let d = Sketch.find t u w in
  if Dist.is_finite d then Some d else None

let query = Sketch.estimate
let query_bidirectional = Sketch.estimate_bidirectional
let query_probes = Sketch.estimate_probes

(* Obs hooks shared by both batch entry points: one add per chunk
   (not per query) on the chunk's own shard, to the total counter and
   to this oracle's family breakdown. *)
let obs_queries t = function
  | None -> None
  | Some registry ->
    let name = Ds_obs.Obs.Name.oracle_queries in
    let fam =
      Ds_obs.Obs.Name.oracle_queries_family (Family.name (family t))
    in
    Some (Ds_obs.Obs.counter registry name, Ds_obs.Obs.counter registry fam)

let count qc ~shard n =
  match qc with
  | Some (total, fam) ->
    Ds_obs.Obs.add total ~shard n;
    Ds_obs.Obs.add fam ~shard n
  | None -> ()

let query_batch ?(pool = Pool.sequential) ?obs t pairs =
  let m = Array.length pairs in
  let out = Array.make m 0 in
  let qc = obs_queries t obs in
  (* One tight loop per domain, not one closure dispatch per pair:
     [parallel_for]'s per-index call was most of the per-query cost at
     ~150ns a query, which is why batch throughput used to stay flat
     as domains were added. *)
  ignore
    (Pool.parallel_chunks pool ~n:m (fun c lo hi ->
         for i = lo to hi - 1 do
           let u, v = pairs.(i) in
           out.(i) <- query t u v
         done;
         count qc ~shard:c (hi - lo)));
  out

(* The boxed-pairs batch above still did not scale past one domain
   (B12 stayed ~flat 1 -> 8 domains): every iteration loads a [(u,v)]
   pointer and then the tuple's two fields — a dependent cache miss per
   pair into an array the domains share — and adjacent chunks share
   cache lines of [out] at their boundaries. The flat path removes
   both: endpoints live inline in one int array ([u] at [2i], [v] at
   [2i+1]), and work is handed out in blocks of 8 pairs so every
   chunk's [out] writes are 64-byte aligned — no false sharing. *)
let query_batch_flat ?(pool = Pool.sequential) ?obs t flat =
  let len = Array.length flat in
  if len land 1 <> 0 then invalid_arg "Oracle.query_batch_flat: odd length";
  let m = len / 2 in
  let out = Array.make (max 1 m) 0 in
  let blocks = (m + 7) / 8 in
  let qc = obs_queries t obs in
  ignore
    (Pool.parallel_chunks pool ~n:blocks (fun c blo bhi ->
         let lo = 8 * blo and hi = min m (8 * bhi) in
         for i = lo to hi - 1 do
           out.(i) <- query t flat.(2 * i) flat.((2 * i) + 1)
         done;
         count qc ~shard:c (hi - lo)));
  if m = 0 then [||] else out

type batch_stats = {
  pairs : int;
  elapsed_ns : float;
  qps : float;
  latency_ns : Stats.summary;
}

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let batch_stats_of ~m ~elapsed_ns ~lat ~sample =
  {
    pairs = m;
    elapsed_ns;
    qps = float_of_int m /. (elapsed_ns /. 1e9);
    latency_ns = Stats.summarize (if sample = 0 then [| 0.0 |] else lat);
  }

let run_batch ?pool ?obs ?(latency_sample = 1024) t pairs =
  let m = Array.length pairs in
  let t0 = now_ns () in
  let out = query_batch ?pool ?obs t pairs in
  let t1 = now_ns () in
  let elapsed_ns = max 1.0 (t1 -. t0) in
  let sample = min latency_sample m in
  let lat =
    Array.init sample (fun i ->
        (* Stride across the batch so the sample sees its whole mix. *)
        let u, v = pairs.(i * m / max 1 sample) in
        let s0 = now_ns () in
        ignore (query t u v);
        now_ns () -. s0)
  in
  (out, batch_stats_of ~m ~elapsed_ns ~lat ~sample)

let run_batch_flat ?pool ?obs ?(latency_sample = 1024) t flat =
  let m = Array.length flat / 2 in
  let t0 = now_ns () in
  let out = query_batch_flat ?pool ?obs t flat in
  let t1 = now_ns () in
  let elapsed_ns = max 1.0 (t1 -. t0) in
  let sample = min latency_sample m in
  let lat =
    Array.init sample (fun i ->
        let j = i * m / max 1 sample in
        let u = flat.(2 * j) and v = flat.((2 * j) + 1) in
        let s0 = now_ns () in
        ignore (query t u v);
        now_ns () -. s0)
  in
  (out, batch_stats_of ~m ~elapsed_ns ~lat ~sample)
