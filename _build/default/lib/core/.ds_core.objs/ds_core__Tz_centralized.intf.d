lib/core/tz_centralized.mli: Ds_graph Label Levels
