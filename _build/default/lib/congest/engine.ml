module Graph = Ds_graph.Graph
module Pool = Ds_parallel.Pool
module Rng = Ds_util.Rng

type 'msg api = {
  id : int;
  degree : int;
  neighbor_id : int -> int;
  neighbor_weight : int -> int;
  send : int -> 'msg -> unit;
  broadcast : 'msg -> unit;
  round : unit -> int;
}

type ('state, 'msg) protocol = {
  name : string;
  init : 'msg api -> 'state;
  on_round : 'msg api -> 'state -> (int * 'msg) list -> unit;
  halted : 'state -> bool;
  msg_words : 'msg -> int;
  max_msg_words : int;
}

type jitter = { rng : Rng.t; max_delay : int }

(* A queued message and the earliest round at which its link may
   deliver it (links are FIFO, so a delayed head blocks the rest). *)
type 'msg in_transit = { msg : 'msg; ready_at : int }

type ('state, 'msg) t = {
  graph : Graph.t;
  protocol : ('state, 'msg) protocol;
  pool : Pool.t;
  jitter : jitter option;
  apis : 'msg api array;
  node_states : 'state array;
  links : 'msg in_transit Queue.t array array;
      (* links.(u).(i): pending u -> i-th neighbor *)
  rev : int array array; (* rev.(u).(i): index of u in nbr's adjacency *)
  inboxes : (int * 'msg) list array; (* built during delivery, consumed next *)
  metrics : Metrics.t;
  mutable round : int;
  mutable in_flight : int; (* total queued messages *)
  mutable sent_this_round : int;
}

let graph t = t.graph
let metrics t = t.metrics
let states t = t.node_states
let state t u = t.node_states.(u)

let create ?(pool = Pool.sequential) ?jitter g protocol =
  let n = Graph.n g in
  let nbrs = Array.init n (fun u -> Graph.neighbors g u) in
  let rev =
    Array.init n (fun u ->
        Array.map (fun (v, _) -> Graph.neighbor_index g v u) nbrs.(u))
  in
  let links =
    Array.init n (fun u ->
        Array.init (Array.length nbrs.(u)) (fun _ -> Queue.create ()))
  in
  let t_ref = ref None in
  let make_api u =
    let deg = Array.length nbrs.(u) in
    let send i m =
      let t = Option.get !t_ref in
      if protocol.msg_words m > protocol.max_msg_words then
        invalid_arg
          (Printf.sprintf "Engine(%s): message exceeds %d words" protocol.name
             protocol.max_msg_words);
      let delay =
        match t.jitter with
        | None -> 0
        | Some { rng; max_delay } -> Rng.int rng (max_delay + 1)
      in
      Queue.push { msg = m; ready_at = t.round + 1 + delay } t.links.(u).(i)
    in
    {
      id = u;
      degree = deg;
      neighbor_id = (fun i -> fst nbrs.(u).(i));
      neighbor_weight = (fun i -> snd nbrs.(u).(i));
      send;
      broadcast =
        (fun m ->
          for i = 0 to deg - 1 do
            send i m
          done);
      round = (fun () -> match !t_ref with Some t -> t.round | None -> 0);
    }
  in
  let apis = Array.init n make_api in
  let t =
    {
      graph = g;
      protocol;
      pool;
      jitter;
      apis;
      node_states = [||];
      links;
      rev;
      inboxes = Array.make n [];
      metrics = Metrics.create ();
      round = 0;
      in_flight = 0;
      sent_this_round = 0;
    }
  in
  t_ref := Some t;
  let node_states = Array.init n (fun u -> protocol.init apis.(u)) in
  let t = { t with node_states } in
  t_ref := Some t;
  (* Count init-phase sends. *)
  let queued = ref 0 in
  Array.iter (Array.iter (fun q -> queued := !queued + Queue.length q)) links;
  t.in_flight <- !queued;
  t

(* Delivery happens at the start of round (t.round + 1): a head message
   is released once that round reaches its ready_at. *)
let deliver t =
  let n = Graph.n t.graph in
  let now = t.round + 1 in
  let delivered = ref 0 in
  for u = 0 to n - 1 do
    let qs = t.links.(u) in
    for i = 0 to Array.length qs - 1 do
      Metrics.observe_backlog t.metrics (Queue.length qs.(i));
      match Queue.peek_opt qs.(i) with
      | Some { msg; ready_at } when ready_at <= now ->
        ignore (Queue.pop qs.(i));
        incr delivered;
        let v = t.apis.(u).neighbor_id i in
        let j = t.rev.(u).(i) in
        t.inboxes.(v) <- (j, msg) :: t.inboxes.(v);
        Metrics.count_message t.metrics ~words:(t.protocol.msg_words msg)
      | Some _ | None -> ()
    done
  done;
  t.in_flight <- t.in_flight - !delivered;
  !delivered

let step t =
  let n = Graph.n t.graph in
  let before = t.in_flight in
  let delivered = deliver t in
  t.round <- t.round + 1;
  Metrics.tick_round t.metrics;
  Pool.parallel_for t.pool ~lo:0 ~hi:n (fun u ->
      let inbox = t.inboxes.(u) in
      t.inboxes.(u) <- [];
      t.protocol.on_round t.apis.(u) t.node_states.(u) inbox);
  (* Sends during this round's computation raised in_flight; compute
     how many were enqueued for the activity check. *)
  t.sent_this_round <- 0;
  let queued = ref 0 in
  Array.iter (Array.iter (fun q -> queued := !queued + Queue.length q)) t.links;
  t.sent_this_round <- !queued - (before - delivered);
  t.in_flight <- !queued

let quiescent t = t.in_flight = 0

type stop_reason = Quiescent | All_halted | Round_limit

let all_halted t = Array.for_all t.protocol.halted t.node_states

let run ?(max_rounds = 10_000_000) t =
  let rec go () =
    if all_halted t && t.in_flight = 0 then All_halted
    else if t.round >= max_rounds then Round_limit
    else begin
      let before_flight = t.in_flight in
      step t;
      if before_flight = 0 && t.in_flight = 0 then begin
        (* Nothing was in flight and the computation round produced no
           new messages: the system is quiescent. The probe round did
           no work, so it is not charged. *)
        Metrics.untick_round t.metrics;
        t.round <- t.round - 1;
        if all_halted t then All_halted else Quiescent
      end
      else go ()
    end
  in
  go ()
