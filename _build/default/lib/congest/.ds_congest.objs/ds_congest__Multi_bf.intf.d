lib/congest/multi_bf.mli: Ds_graph Ds_parallel Engine Metrics
