(** E11 — extension: the Thorup–Zwick spanner the construction yields
    for free.

    Claim (Thorup–Zwick JACM'05, implicit in the paper's machinery):
    the union of the cluster shortest-path trees is a (2k-1)-spanner
    with O(k n^{1+1/k}) edges; the distributed construction obtains it
    with zero additional communication by marking each accepted
    announcement's relaxation parent. *)

module Table = Ds_util.Table
module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Levels = Ds_core.Levels
module Spanner = Ds_core.Spanner

type params = { seed : int; n : int; ks : int list }

let default = { seed = 11; n = 300; ks = [ 1; 2; 3; 4; 6 ] }

let run ?pool { seed; n; ks } =
  let w =
    Common.make_workload ~seed
      ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 8.0 })
      ~n
  in
  let g = w.Common.graph in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E11: TZ spanner from the distributed construction (erdos-renyi, \
            n=%d, |E|=%d) — extension"
           n (Graph.m g))
      ~headers:
        [
          "k"; "bound 2k-1"; "edges (dist)"; "edges (central)"; "k n^{1+1/k}";
          "max stretch"; "ok";
        ]
  in
  List.iter
    (fun k ->
      let levels = Levels.sample ~rng:(Rng.create (seed + k)) ~n ~k in
      let sp_d, _ = Spanner.of_distributed ?pool g ~levels in
      let sp_c = Spanner.of_levels g ~levels in
      let s = Spanner.max_stretch g ~spanner:sp_d in
      let ok = s <= float_of_int ((2 * k) - 1) +. 1e-9 in
      Table.add_row t
        [
          Table.cell_int k;
          Table.cell_int ((2 * k) - 1);
          Table.cell_int (Graph.m sp_d);
          Table.cell_int (Graph.m sp_c);
          Table.cell_float (Spanner.edge_bound ~n ~k);
          Table.cell_float ~decimals:3 s;
          (if ok then "yes" else "NO");
        ])
    ks;
  [ t ]
