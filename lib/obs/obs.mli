(** Process-wide runtime metrics registry: named counters, gauges and
    fixed-bucket log2 histograms over flat int arrays.

    The design splits hot and cold paths the way {!Ds_congest.Trace}
    splits traced and untraced runs:

    - {b Hot path} ({!add}, {!incr}, {!set}, {!set_max}, {!observe}):
      a constant number of plain int-array accesses on a per-worker
      shard — no lock, no clock read, no allocation. Counter and
      gauge shards are padded to one cache line (8 words) so workers
      never false-share; the shard index is wrapped with [land mask],
      so any worker id is in-bounds. The GC-regression suite pins
      that an instrumented engine round and an instrumented serve
      block allocate exactly as much as uninstrumented ones (zero).
    - {b Cold path} (registration, {!snapshot}, {!prometheus}):
      mutex-guarded registration, read-time reduction over shards.
      A read racing the writers sees each cell either before or
      after its latest store — monotone, possibly mid-round, which
      is the semantics a live sampler wants. Quiesced reads (after
      workers join) are exact; that is the reconciliation invariant
      the serve smoke asserts against [oracle-serve/1].

    Instrumented layers take an [?obs] hook and resolve their handles
    once at setup; with no registry the per-event cost is a single
    immutable [match], the same zero-cost-when-absent contract as
    [?tracer]. *)

type t
(** A registry: a set of named instruments sharing one shard count. *)

val create : ?shards:int -> unit -> t
(** [create ()] makes an empty registry. [shards] (default [64]) is
    rounded up to a power of two; it bounds the number of concurrent
    writers that never contend (worker [w] writes shard
    [w land (shards - 1)]). Raises [Invalid_argument] when
    non-positive. *)

val shards : t -> int
(** The shard count in use (after rounding). *)

(** {2 Instruments}

    Registration is idempotent by name — asking twice returns the
    same instrument — and raises [Invalid_argument] when the name is
    already bound to a different kind. Handles stay valid for the
    registry's lifetime; resolve them once at setup, never on the hot
    path. *)

type counter
(** Monotone sum, sharded per worker. *)

type gauge
(** Last-written value per shard, summed at read time: single-writer
    gauges (backlog, RSS) write shard 0 only; per-worker gauges
    (queue depth) sum to the global value. *)

type histogram
(** {!Ds_util.Stats.log2_buckets} power-of-two buckets plus sum and
    count, sharded per worker. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(** {2 Hot ops} — one unsynchronized array store each (plus the load
    it read-modifies); provably allocation-free. *)

val add : counter -> shard:int -> int -> unit
val incr : counter -> shard:int -> unit
val set : gauge -> shard:int -> int -> unit

val set_max : gauge -> shard:int -> int -> unit
(** Store only when the new value is larger — running-max gauges
    (peak backlog) without a read-side pass. *)

val observe : histogram -> shard:int -> int -> unit
(** Record one sample: increments its {!Ds_util.Stats.log2_bucket},
    the shard's sum and its count (three stores). *)

(** {2 Shard-resolved handles}

    A worker whose shard is fixed for its whole run (serve workers,
    engine domains) can resolve each instrument to its own cells once
    at setup and drop the per-op [land mask]/[* stride] index math.
    Resolution allocates a two-field record — do it outside the hot
    loop; the shard ops themselves are as allocation-free as the
    plain ones and covered by the same GC-regression pins. *)

type counter_shard
type gauge_shard
type hist_shard

val counter_shard : counter -> shard:int -> counter_shard
val gauge_shard : gauge -> shard:int -> gauge_shard
val hist_shard : histogram -> shard:int -> hist_shard

val shard_add : counter_shard -> int -> unit
val shard_set : gauge_shard -> int -> unit

val shard_observe : hist_shard -> int -> unit
(** Same three stores as {!observe}, base precomputed. *)

(** {2 Read side} — reduces over shards; cheap relative to a sampling
    interval but not meant for per-event use. *)

val counter_value : counter -> int
val gauge_value : gauge -> int

type hist_snapshot = {
  buckets : int array;  (** length {!Ds_util.Stats.log2_buckets} *)
  sum : int;
  count : int;
}

val hist_value : histogram -> hist_snapshot

val hist_percentile : hist_snapshot -> float -> int
(** Approximate percentile via {!Ds_util.Stats.percentile_log2};
    [0] on an empty histogram. Exact to within one bucket. *)

val value : t -> string -> int
(** Look an instrument up by name and reduce it: counter/gauge value,
    or a histogram's count. [0] when the name was never registered —
    an instrument nobody created was never incremented. *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : t -> snapshot
(** Reduce every instrument, each kind sorted by name. *)

val prometheus : t -> string
(** Prometheus text exposition: names mangled [serve.block_ns ->
    dss_serve_block_ns], one [# TYPE] comment per metric, histograms
    as cumulative [_bucket{le="2^b - 1"}] rows (up to the highest
    non-empty bucket, then [+Inf]) plus [_sum]/[_count]. Sorted by
    name, so byte-stable for a given state. *)

val prom_name : string -> string
(** The name mangling [prometheus] applies, exposed for tests. A
    label suffix ([base{key=value}]) keeps its keys and gets its
    values quoted ([dss_base{key="value"}]); only the base is
    dot-mangled. *)

(** Well-known instrument names used by the instrumented layers, so
    exporters, tests and dashboards never retype strings. *)
module Name : sig
  val engine_rounds : string
  val engine_deliveries : string
  val engine_words : string
  val engine_backlog : string
  val engine_busy_domains : string
  val serve_admitted : string
  val serve_served : string
  val serve_hits : string
  val serve_misses : string
  val serve_queue_depth : string
  val serve_block_ns : string
  val oracle_queries : string

  val oracle_queries_family : string -> string
  (** [oracle_queries_family f] is [oracle.queries{family=f}] — the
      per-family served-query counter. The label suffix survives
      {!prom_name} mangling as a quoted Prometheus label. *)

  val gc_minor_words : string
  val mem_rss_kb : string

  val store_mapped_bytes : string
  (** Gauge: bytes of snapshot currently mapped into the serving
      process (0 for heap loads). *)
end
