lib/graph/dijkstra.ml: Array Dist Ds_util Graph
