module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Dijkstra = Ds_graph.Dijkstra
module Bfs = Ds_graph.Bfs
module Engine = Ds_congest.Engine
module Metrics = Ds_congest.Metrics
module Super_bf = Ds_congest.Super_bf
module Multi_bf = Ds_congest.Multi_bf
module Setup = Ds_congest.Setup

(* A one-shot flood protocol used to exercise the engine itself. *)
let flood_protocol ~root : (int ref, int) Engine.protocol =
  let open Engine in
  {
    name = "flood";
    max_msg_words = 1;
    msg_words = (fun _ -> 1);
    halted = (fun _ -> true);
    init =
      (fun api ->
        if api.id = root then begin
          api.broadcast 0;
          ref 0
        end
        else ref max_int);
    on_round =
      (fun api st inbox ->
        Engine.Inbox.iter
          (fun _ h ->
            if h + 1 < !st then begin
              st := h + 1;
              api.broadcast (h + 1)
            end)
          inbox);
  }

let test_engine_flood_is_bfs () =
  let g = Helpers.random_graph 70 in
  let eng = Engine.create g (flood_protocol ~root:0) in
  (match Engine.run eng with
  | Engine.Quiescent | Engine.All_halted -> ()
  | Engine.Round_limit -> Alcotest.fail "round limit");
  let hops = Bfs.hops g ~src:0 in
  Array.iteri
    (fun u st -> Alcotest.(check int) (Printf.sprintf "node %d" u) hops.(u) !st)
    (Engine.states eng);
  (* The flood's last (futile) re-broadcasts from the farthest nodes
     cross in round eccentricity + 1. *)
  let ecc = Bfs.eccentricity g ~src:0 in
  Alcotest.(check int) "rounds = eccentricity + 1" (ecc + 1)
    (Metrics.rounds (Engine.metrics eng))

let test_engine_counts_messages () =
  let g = Helpers.path 5 in
  let eng = Engine.create g (flood_protocol ~root:0) in
  ignore (Engine.run eng);
  let m = Engine.metrics eng in
  (* Flood on a path: node i broadcasts once; every broadcast crosses
     each incident edge once. Degrees: 1,2,2,2,1 but node 4 only
     receives; it still broadcasts back. Total sends = sum of degrees
     of broadcasting nodes = 1+2+2+2+1 = 8. *)
  Alcotest.(check int) "messages" 8 (Metrics.messages m);
  Alcotest.(check int) "words" 8 (Metrics.words m);
  Alcotest.(check int) "max msg words" 1 (Metrics.max_msg_words m)

let test_engine_rejects_oversized_messages () =
  let g = Helpers.path 2 in
  let proto : (unit, int) Engine.protocol =
    {
      Engine.name = "oversize";
      max_msg_words = 1;
      msg_words = (fun _ -> 2);
      halted = (fun _ -> true);
      init = (fun api -> api.Engine.broadcast 0);
      on_round = (fun _ _ _ -> ());
    }
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Engine.create g proto);
       false
     with Invalid_argument _ -> true)

(* One message per edge per direction per round: a protocol that sends
   two messages to the same neighbor in one round must have them
   delivered in two successive rounds. *)
let test_engine_link_discipline () =
  let g = Helpers.path 2 in
  let proto : ((int * int) list ref, int) Engine.protocol =
    {
      Engine.name = "two-sends";
      max_msg_words = 1;
      msg_words = (fun _ -> 1);
      halted = (fun _ -> true);
      init =
        (fun api ->
          if api.Engine.id = 0 then begin
            api.Engine.send 0 1;
            api.Engine.send 0 2
          end;
          ref []);
      on_round =
        (fun api st inbox ->
          Engine.Inbox.iter
            (fun _ m -> st := (m, api.Engine.round ()) :: !st)
            inbox);
    }
  in
  let eng = Engine.create g proto in
  ignore (Engine.run eng);
  let received = List.rev !(Engine.state eng 1) in
  Alcotest.(check int) "two messages" 2 (List.length received);
  match received with
  | [ (1, r1); (2, r2) ] ->
    Alcotest.(check bool) "successive rounds" true (r2 = r1 + 1)
  | _ -> Alcotest.fail "unexpected delivery order"

let test_super_bf_matches_multi_source_dijkstra () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let sources = [ 0; n / 2; n - 1 ] in
      let r, _ = Super_bf.run g ~sources in
      let dist, nearest =
        Dijkstra.multi_source g ~sources:(Array.of_list sources)
      in
      Alcotest.(check (array int)) (name ^ " dist") dist r.Super_bf.dist;
      Alcotest.(check (array int)) (name ^ " nearest") nearest
        r.Super_bf.nearest)
    (Helpers.graph_suite 23)

let test_super_bf_forest_consistent () =
  let g = Helpers.random_graph 60 in
  let sources = [ 5; 40 ] in
  let r, _ = Super_bf.run g ~sources in
  (* Parent edges are tight and stay within the same cell; children
     lists are the exact inverse of parents. *)
  Array.iteri
    (fun u p ->
      if p >= 0 then begin
        Alcotest.(check int) "tight"
          r.Super_bf.dist.(u)
          (r.Super_bf.dist.(p) + Graph.weight g u p);
        Alcotest.(check int) "same cell" r.Super_bf.nearest.(u)
          r.Super_bf.nearest.(p);
        Alcotest.(check bool) "child link" true
          (List.mem u r.Super_bf.children.(p))
      end
      else
        Alcotest.(check bool) "roots are sources" true (List.mem u sources))
    r.Super_bf.parent;
  Array.iteri
    (fun u kids ->
      List.iter
        (fun c ->
          Alcotest.(check int) (Printf.sprintf "parent of %d" c) u
            r.Super_bf.parent.(c))
        kids)
    r.Super_bf.children

let test_single_source_bf_is_dijkstra () =
  let g = Helpers.random_graph 50 in
  let d, _ = Super_bf.single_source g ~src:7 in
  Alcotest.(check (array int)) "distances" (Dijkstra.sssp g ~src:7) d

let test_multi_bf_unbounded_is_k_source () =
  let g = Helpers.random_graph 40 in
  let sources = [ 1; 2; 3; 30 ] in
  let found, _ = Multi_bf.run g ~sources ~bound:(fun _ -> Dist.none) in
  let per_source = List.map (fun s -> (s, Dijkstra.sssp g ~src:s)) sources in
  Array.iteri
    (fun u lst ->
      Alcotest.(check int) "all sources found" (List.length sources)
        (List.length lst);
      List.iter
        (fun (s, d) ->
          Alcotest.(check int)
            (Printf.sprintf "d(%d,%d)" u s)
            (List.assoc s per_source).(u)
            d)
        lst)
    found

let test_multi_bf_respects_bounds () =
  let g = Helpers.random_graph 40 in
  (* Bound each node by its distance to source 0: only announcements
     strictly closer (lex) than source 0 may be kept. *)
  let d0 = Dijkstra.sssp g ~src:0 in
  let bound u = (d0.(u), 0) in
  let sources = [ 0; 10; 20; 30 ] in
  let found, _ = Multi_bf.run g ~sources ~bound in
  let ds = List.map (fun s -> (s, Dijkstra.sssp g ~src:s)) sources in
  Array.iteri
    (fun u lst ->
      (* Exactness: found = { (s, d(u,s)) : (d(u,s), s) <lex bound u }. *)
      List.iter
        (fun (s, d) ->
          Alcotest.(check int) "exact distance" (List.assoc s ds).(u) d;
          Alcotest.(check bool) "within bound" true
            (Dist.lex_lt (d, s) (bound u)))
        lst;
      List.iter
        (fun (s, dist_s) ->
          if Dist.lex_lt (dist_s.(u), s) (bound u) then
            Alcotest.(check bool)
              (Printf.sprintf "node %d must have found %d" u s)
              true
              (List.mem_assoc s lst))
        ds)
    found

let test_setup_elects_min_and_builds_bfs_tree () =
  List.iter
    (fun (name, g) ->
      let r, m = Setup.run g in
      Alcotest.(check int) (name ^ " leader") 0 r.Setup.leader;
      let hops = Bfs.hops g ~src:0 in
      Array.iteri
        (fun u p ->
          if u = 0 then Alcotest.(check int) (name ^ " root parent") (-1) p
          else begin
            Alcotest.(check bool) (name ^ " has parent") true (p >= 0);
            Alcotest.(check int)
              (Printf.sprintf "%s: tree edge depth at %d" name u)
              hops.(u) (hops.(p) + 1);
            Alcotest.(check bool)
              (name ^ " child registered")
              true
              (List.mem u r.Setup.children.(p))
          end)
        r.Setup.parent;
      (* Tree has exactly n-1 child links. *)
      let total_children =
        Array.fold_left (fun acc l -> acc + List.length l) 0 r.Setup.children
      in
      Alcotest.(check int) (name ^ " tree size") (Graph.n g - 1) total_children;
      Alcotest.(check bool) (name ^ " rounds sane") true (Metrics.rounds m > 0))
    (Helpers.graph_suite 31)

let test_setup_single_node () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 1) ] in
  let r, _ = Setup.run g in
  Alcotest.(check int) "leader" 0 r.Setup.leader;
  Alcotest.(check (list int)) "children of 0" [ 1 ] r.Setup.children.(0)

let suite =
  [
    Alcotest.test_case "engine: flood = BFS, rounds = ecc" `Quick
      test_engine_flood_is_bfs;
    Alcotest.test_case "engine: message accounting" `Quick
      test_engine_counts_messages;
    Alcotest.test_case "engine: rejects oversized messages" `Quick
      test_engine_rejects_oversized_messages;
    Alcotest.test_case "engine: one message per link per round" `Quick
      test_engine_link_discipline;
    Alcotest.test_case "super-bf = multi-source dijkstra" `Quick
      test_super_bf_matches_multi_source_dijkstra;
    Alcotest.test_case "super-bf forest consistent" `Quick
      test_super_bf_forest_consistent;
    Alcotest.test_case "single-source bf = dijkstra" `Quick
      test_single_source_bf_is_dijkstra;
    Alcotest.test_case "multi-bf unbounded = k-source dijkstra" `Quick
      test_multi_bf_unbounded_is_k_source;
    Alcotest.test_case "multi-bf respects bounds exactly" `Quick
      test_multi_bf_respects_bounds;
    Alcotest.test_case "setup: min-ID leader + BFS tree" `Quick
      test_setup_elects_min_and_builds_bfs_tree;
    Alcotest.test_case "setup: two nodes" `Quick test_setup_single_node;
  ]
