lib/congest/super_bf.ml: Array Ds_graph Engine List
