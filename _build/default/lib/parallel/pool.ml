type t = { domains : int }

let create ?domains () =
  let d =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Pool.create: domains must be >= 1"
    | None -> Domain.recommended_domain_count ()
  in
  { domains = d }

let domains t = t.domains

let sequential = { domains = 1 }

let parallel_for t ~lo ~hi f =
  if hi <= lo then ()
  else begin
    let n = hi - lo in
    let chunks = min t.domains n in
    if chunks <= 1 then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      let chunk_size = (n + chunks - 1) / chunks in
      let run c =
        let start = lo + (c * chunk_size) in
        let stop = min hi (start + chunk_size) in
        for i = start to stop - 1 do
          f i
        done
      in
      (* Run the first chunk on the current domain, the rest spawned. *)
      let handles =
        Array.init (chunks - 1) (fun c -> Domain.spawn (fun () -> run (c + 1)))
      in
      run 0;
      Array.iter Domain.join handles
    end
  end

let map_array t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f a.(0)) in
    parallel_for t ~lo:1 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end
