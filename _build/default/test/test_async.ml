(* Bounded link asynchrony (the paper's stated future-work model):
   every message is held on its FIFO link for an extra random number of
   rounds. Delay-tolerant protocols must still produce exact results. *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Dijkstra = Ds_graph.Dijkstra
module Engine = Ds_congest.Engine
module Super_bf = Ds_congest.Super_bf
module Setup = Ds_congest.Setup
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_centralized = Ds_core.Tz_centralized
module Tz_echo = Ds_core.Tz_echo

let jitter seed max_delay = { Engine.rng = Rng.create seed; max_delay }

let test_super_bf_exact_under_jitter () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let sources = [ 0; n / 3; (2 * n) / 3 ] in
      let r, _ = Super_bf.run ~jitter:(jitter 5 4) g ~sources in
      let dist, nearest =
        Dijkstra.multi_source g ~sources:(Array.of_list sources)
      in
      Alcotest.(check (array int)) (name ^ " dist") dist r.Super_bf.dist;
      Alcotest.(check (array int)) (name ^ " nearest") nearest
        r.Super_bf.nearest)
    (Helpers.graph_suite 211)

let check_spanning_tree g r =
  (* parent pointers form a tree rooted at the leader covering all
     nodes; children lists invert them. *)
  let n = Graph.n g in
  let depth = Array.make n (-1) in
  let rec depth_of u =
    if depth.(u) >= 0 then depth.(u)
    else begin
      let p = r.Setup.parent.(u) in
      if p < 0 then begin
        depth.(u) <- 0;
        0
      end
      else begin
        let d = 1 + depth_of p in
        depth.(u) <- d;
        d
      end
    end
  in
  for u = 0 to n - 1 do
    ignore (depth_of u);
    let p = r.Setup.parent.(u) in
    if p >= 0 then begin
      Alcotest.(check bool) "tree edge exists" true (Graph.has_edge g u p);
      Alcotest.(check bool) "child registered" true
        (List.mem u r.Setup.children.(p))
    end
  done;
  let total =
    Array.fold_left (fun acc l -> acc + List.length l) 0 r.Setup.children
  in
  Alcotest.(check int) "n-1 tree edges" (n - 1) total

let test_setup_under_jitter () =
  List.iter
    (fun (name, g) ->
      let r, _ = Setup.run ~jitter:(jitter 7 5) g in
      Alcotest.(check int) (name ^ " leader") 0 r.Setup.leader;
      check_spanning_tree g r)
    (Helpers.graph_suite 223)

let test_tz_echo_exact_under_jitter () =
  List.iter
    (fun (name, g) ->
      let k = 3 in
      let levels =
        Levels.sample ~rng:(Rng.create 227) ~n:(Graph.n g) ~k
      in
      let central = Tz_centralized.build g ~levels in
      let echo = Tz_echo.build ~jitter:(jitter 229 4) g ~levels in
      Array.iteri
        (fun u l ->
          if not (Label.equal l echo.Tz_echo.labels.(u)) then
            Alcotest.failf "%s: label of node %d differs under jitter" name u)
        central)
    (Helpers.graph_suite 233)

let prop_tz_echo_jitter_random =
  QCheck.Test.make ~name:"echo tz exact under random jitter" ~count:10
    QCheck.(triple (int_range 8 30) (int_range 0 100000) (int_range 1 6))
    (fun (n, seed, max_delay) ->
      let g = Helpers.random_graph ~seed n in
      let k = 2 + (seed mod 2) in
      let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n ~k in
      let central = Tz_centralized.build g ~levels in
      let echo =
        Tz_echo.build ~jitter:(jitter (seed + 2) max_delay) g ~levels
      in
      Array.for_all2 Label.equal central echo.Tz_echo.labels)

let test_jitter_zero_is_synchronous () =
  (* max_delay = 0 must reproduce the synchronous schedule exactly,
     including metrics. *)
  let g = Helpers.random_graph ~seed:239 60 in
  let levels = Levels.sample ~rng:(Rng.create 241) ~n:60 ~k:3 in
  let sync = Tz_echo.build g ~levels in
  let zero = Tz_echo.build ~jitter:(jitter 251 0) g ~levels in
  Alcotest.(check int) "same rounds"
    (Ds_congest.Metrics.rounds sync.Tz_echo.metrics)
    (Ds_congest.Metrics.rounds zero.Tz_echo.metrics);
  Alcotest.(check int) "same messages"
    (Ds_congest.Metrics.messages sync.Tz_echo.metrics)
    (Ds_congest.Metrics.messages zero.Tz_echo.metrics)

let test_jitter_delays_rounds () =
  let g = Helpers.random_graph ~seed:257 60 in
  let levels = Levels.sample ~rng:(Rng.create 263) ~n:60 ~k:2 in
  let sync = Tz_echo.build g ~levels in
  let slow = Tz_echo.build ~jitter:(jitter 269 8) g ~levels in
  Alcotest.(check bool) "jitter costs rounds" true
    (Ds_congest.Metrics.rounds slow.Tz_echo.metrics
    > Ds_congest.Metrics.rounds sync.Tz_echo.metrics)

let suite =
  [
    Alcotest.test_case "super-bf exact under jitter" `Quick
      test_super_bf_exact_under_jitter;
    Alcotest.test_case "setup spanning tree under jitter" `Quick
      test_setup_under_jitter;
    Alcotest.test_case "tz-echo exact under jitter" `Slow
      test_tz_echo_exact_under_jitter;
    QCheck_alcotest.to_alcotest prop_tz_echo_jitter_random;
    Alcotest.test_case "jitter 0 = synchronous" `Quick
      test_jitter_zero_is_synchronous;
    Alcotest.test_case "jitter delays rounds" `Quick test_jitter_delays_rounds;
  ]
