module Apsp = Ds_graph.Apsp
module Dist = Ds_graph.Dist
module Stats = Ds_util.Stats

type report = {
  pairs : int;
  violations : int;
  unreachable : int;
  max_stretch : float;
  avg_stretch : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let pp_report ppf r =
  Format.fprintf ppf
    "pairs=%d viol=%d unreach=%d max=%.3f avg=%.3f p50=%.3f p90=%.3f p99=%.3f"
    r.pairs r.violations r.unreachable r.max_stretch r.avg_stretch r.p50 r.p90
    r.p99

let on_pairs ~query pairs =
  let stretches = ref [] in
  let violations = ref 0 and unreachable = ref 0 and counted = ref 0 in
  Array.iter
    (fun (u, v, d) ->
      if d > 0 && Dist.is_finite d then begin
        incr counted;
        let est = query u v in
        if not (Dist.is_finite est) then incr unreachable
        else begin
          if est < d then incr violations;
          stretches := (float_of_int est /. float_of_int d) :: !stretches
        end
      end)
    pairs;
  match !stretches with
  | [] ->
    {
      pairs = !counted;
      violations = !violations;
      unreachable = !unreachable;
      max_stretch = nan;
      avg_stretch = nan;
      p50 = nan;
      p90 = nan;
      p99 = nan;
    }
  | l ->
    let a = Array.of_list l in
    {
      pairs = !counted;
      violations = !violations;
      unreachable = !unreachable;
      max_stretch = Stats.max_of a;
      avg_stretch = Stats.mean a;
      p50 = Stats.percentile a 50.0;
      p90 = Stats.percentile a 90.0;
      p99 = Stats.percentile a 99.0;
    }

let all_pairs_array apsp =
  let n = Apsp.n apsp in
  let acc = ref [] in
  Apsp.iter_pairs apsp (fun u v d -> acc := (u, v, d) :: !acc);
  ignore n;
  Array.of_list !acc

let all_pairs ~query apsp = on_pairs ~query (all_pairs_array apsp)

let sampled_pairs ~rng ~query apsp ~count =
  on_pairs ~query (Apsp.sample_pairs ~rng apsp ~count)

(* rank.(u).(v) = number of nodes strictly closer to u than v is. *)
let ranks apsp u =
  let n = Apsp.n apsp in
  let row = Array.init n (fun v -> Apsp.dist apsp u v) in
  let sorted = Array.copy row in
  Array.sort compare sorted;
  (* count of w with d(u,w) < d: binary search for the first index with
     value >= d. *)
  let count_below d =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sorted.(mid) < d then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  fun v -> count_below row.(v)

let is_far apsp ~eps u v =
  let rank = ranks apsp u in
  float_of_int (rank v) >= eps *. float_of_int (Apsp.n apsp)

let far_pairs apsp ~eps =
  let n = Apsp.n apsp in
  let threshold = eps *. float_of_int n in
  let acc = ref [] in
  for u = 0 to n - 1 do
    let rank = ranks apsp u in
    for v = 0 to n - 1 do
      if v <> u && float_of_int (rank v) >= threshold then
        acc := (u, v, Apsp.dist apsp u v) :: !acc
    done
  done;
  Array.of_list !acc

let size_summary f sketches =
  Stats.summarize (Array.map (fun s -> float_of_int (f s)) sketches)
