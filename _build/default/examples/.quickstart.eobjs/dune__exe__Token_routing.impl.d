examples/token_routing.ml: Array Ds_core Ds_graph Ds_util Printf
