(** E4 — Section 3.3: cost of self-contained termination detection.

    Paper claim: echoes at most double messages and rounds; leader
    election + BFS tree adds O(D) rounds and O(|E| log n) messages;
    COMPLETE/START add O(n) messages and O(D) rounds per phase. We
    report the measured echo-mode/ideal-mode ratios and verify that
    both modes produce identical labels. *)

module Table = Ds_util.Table
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_distributed = Ds_core.Tz_distributed
module Tz_echo = Ds_core.Tz_echo

type params = { seed : int; n : int; k : int }

let default = { seed = 4; n = 256; k = 3 }

let run ?pool { seed; n; k } =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E4: termination-detection overhead, echo vs known-S (k=%d, n=%d) \
            — Section 3.3"
           k n)
      ~headers:
        [
          "family"; "rounds ideal"; "rounds echo"; "r-ratio"; "msgs ideal";
          "msgs echo"; "m-ratio"; "setup msgs"; "labels equal";
        ]
  in
  List.iter
    (fun (fname, family) ->
      let w = Common.make_workload ~seed ~family ~n in
      let gn = Ds_graph.Graph.n w.Common.graph in
      let levels = Levels.sample ~rng:(Rng.create (seed + 7)) ~n:gn ~k in
      let ideal = Tz_distributed.build ?pool w.Common.graph ~levels in
      let echo = Tz_echo.build ?pool w.Common.graph ~levels in
      let ri = Metrics.rounds ideal.Tz_distributed.metrics in
      let re = Metrics.rounds echo.Tz_echo.metrics in
      let mi = Metrics.messages ideal.Tz_distributed.metrics in
      let me = Metrics.messages echo.Tz_echo.metrics in
      let equal =
        Array.for_all2 Label.equal ideal.Tz_distributed.labels
          echo.Tz_echo.labels
      in
      Table.add_row t
        [
          fname;
          Table.cell_int ri;
          Table.cell_int re;
          Table.cell_ratio (float_of_int re /. float_of_int ri);
          Table.cell_int mi;
          Table.cell_int me;
          Table.cell_ratio (float_of_int me /. float_of_int mi);
          Table.cell_int (Metrics.messages echo.Tz_echo.setup_metrics);
          (if equal then "yes" else "NO");
        ])
    (Common.standard_families ~n);
  [ t ]
