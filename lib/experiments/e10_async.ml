(** E10 — extension (paper's conclusion): bounded link asynchrony.

    Every message is held on its FIFO link for an extra uniform
    0..max_delay rounds. The phase-tagged echo protocol must still
    produce exactly the Thorup–Zwick labels; the cost columns show how
    the schedule stretches with the delay bound. This validates the
    paper's closing conjecture that the construction can survive
    weaker timing models. *)

module Table = Ds_util.Table
module Rng = Ds_util.Rng
module Engine = Ds_congest.Engine
module Metrics = Ds_congest.Metrics
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_centralized = Ds_core.Tz_centralized
module Tz_echo = Ds_core.Tz_echo

type params = { seed : int; n : int; k : int; delays : int list }

let default = { seed = 10; n = 192; k = 3; delays = [ 0; 1; 2; 4; 8 ] }

let run ?pool { seed; n; k; delays } =
  let w =
    Common.make_workload ~seed
      ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
      ~n
  in
  let g = w.Common.graph in
  let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n ~k in
  let central = Tz_centralized.build g ~levels in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E10: echo-mode TZ under bounded link asynchrony (erdos-renyi, \
            n=%d, k=%d) — extension"
           n k)
      ~headers:
        [ "max delay"; "rounds"; "messages"; "labels exact"; "rounds vs sync" ]
  in
  let sync_rounds = ref 1 in
  List.iter
    (fun max_delay ->
      let r =
        Tz_echo.build ?pool
          ~jitter:{ Engine.rng = Rng.create (seed + max_delay); max_delay }
          g ~levels
      in
      let rounds = Metrics.rounds r.Tz_echo.metrics in
      if max_delay = 0 then sync_rounds := rounds;
      let exact = Array.for_all2 Label.equal central r.Tz_echo.labels in
      Table.add_row t
        [
          Table.cell_int max_delay;
          Table.cell_int rounds;
          Table.cell_int (Metrics.messages r.Tz_echo.metrics);
          (if exact then "yes" else "NO");
          Table.cell_ratio (float_of_int rounds /. float_of_int !sync_rounds);
        ])
    delays;
  [ t ]
