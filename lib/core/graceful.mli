(** Gracefully degrading sketches (paper Section 4.1, Theorem 4.8,
    Corollary 4.9).

    The union of [⌈log n⌉] CDG sketches, one per slack level
    [ε_i = 2^{-i}] with [k_i = i]: a single sketch of [O(log^4 n)]
    words whose estimate for any pair where [v] is ε-far from [u] has
    stretch [O(log (1/ε))] — hence worst-case stretch [O(log n)] and,
    by the Lemma 4.7 shell argument, average stretch [O(1)]. *)

type sketch = {
  owner : int;
  parts : (float * Cdg.sketch) array;  (** (ε_i, part), i = 1.. *)
}

val size_words : sketch -> int
(** Sum of the per-level CDG sketch sizes. *)

val query : sketch -> sketch -> int
(** Minimum estimate over all slack levels. *)

type result = {
  sketches : sketch array;
  metrics : Ds_congest.Metrics.t;
}

val levels_for : int -> (int * float) list
(** [(k_i, ε_i)] pairs used for an n-node network. *)

val build_distributed :
  ?pool:Ds_parallel.Pool.t -> rng:Ds_util.Rng.t -> Ds_graph.Graph.t -> result
(** One {!Cdg.build_distributed} per slack level of {!levels_for};
    [metrics] concatenates the per-level phase breakdowns. *)

val build_centralized :
  rng:Ds_util.Rng.t -> Ds_graph.Graph.t -> sketch array
(** Same construction from exact distances (oracle for tests). *)
