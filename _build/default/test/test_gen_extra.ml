module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Gen = Ds_graph.Gen
module Props = Ds_graph.Props

let test_random_regular () =
  let g = Gen.random_regular ~rng:(Rng.create 801) ~n:100 ~degree:4 () in
  Alcotest.(check bool) "connected" true (Props.is_connected g);
  for u = 0 to 99 do
    let d = Graph.degree g u in
    Alcotest.(check bool)
      (Printf.sprintf "degree of %d is %d, near 4" u d)
      true
      (d >= 2 && d <= 6)
  done;
  (* Expanders have logarithmic diameter. *)
  Alcotest.(check bool) "small diameter" true (Props.hop_diameter g <= 10)

let test_complete () =
  let g = Gen.complete ~rng:(Rng.create 809) ~n:12 () in
  Alcotest.(check int) "m" (12 * 11 / 2) (Graph.m g);
  Alcotest.(check int) "hop diameter" 1 (Props.hop_diameter g)

let test_barbell () =
  let g = Gen.barbell ~rng:(Rng.create 811) ~clique:6 ~bridge:5 () in
  Alcotest.(check int) "n" 17 (Graph.n g);
  Alcotest.(check bool) "connected" true (Props.is_connected g);
  (* Diameter path crosses the bridge: 1 + (bridge+1) + 1. *)
  Alcotest.(check int) "hop diameter" 8 (Props.hop_diameter g)

let test_caterpillar () =
  let g = Gen.caterpillar ~rng:(Rng.create 821) ~spine:5 ~legs:3 () in
  Alcotest.(check int) "n" 20 (Graph.n g);
  Alcotest.(check int) "m (tree)" 19 (Graph.m g);
  Alcotest.(check bool) "connected" true (Props.is_connected g)

let test_to_dot () =
  let g = Helpers.path 3 in
  let dot = Gen.to_dot g in
  Alcotest.(check bool) "has graph header" true
    (String.length dot > 10 && String.sub dot 0 7 = "graph G");
  (* Both edges present. *)
  let contains needle =
    let nl = String.length needle and dl = String.length dot in
    let rec go i = i + nl <= dl && (String.sub dot i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "edge 0-1" true (contains "0 -- 1");
  Alcotest.(check bool) "edge 1-2" true (contains "1 -- 2")

(* The sketches should behave on the new shapes too. *)
let test_tz_on_new_families () =
  List.iter
    (fun g ->
      let n = Graph.n g in
      let k = 2 in
      let levels = Ds_core.Levels.sample ~rng:(Rng.create 823) ~n ~k in
      let labels = Ds_core.Tz_centralized.build g ~levels in
      let dist = Ds_core.Tz_distributed.build g ~levels in
      Array.iteri
        (fun u l ->
          Alcotest.(check bool) "labels equal" true
            (Ds_core.Label.equal l dist.Ds_core.Tz_distributed.labels.(u)))
        labels;
      let apsp = Ds_graph.Apsp.compute g in
      Helpers.check_no_underestimate ~name:"new-family"
        ~query:(fun u v -> Ds_core.Label.query labels.(u) labels.(v))
        apsp)
    [
      Gen.random_regular ~rng:(Rng.create 827) ~n:60 ~degree:4 ();
      Gen.barbell ~rng:(Rng.create 829) ~clique:8 ~bridge:6 ();
      Gen.caterpillar ~rng:(Rng.create 839) ~spine:10 ~legs:4 ();
      Gen.complete ~rng:(Rng.create 853) ~n:20 ();
    ]

let suite =
  [
    Alcotest.test_case "random regular" `Quick test_random_regular;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "barbell" `Quick test_barbell;
    Alcotest.test_case "caterpillar" `Quick test_caterpillar;
    Alcotest.test_case "to_dot" `Quick test_to_dot;
    Alcotest.test_case "tz on new families" `Quick test_tz_on_new_families;
  ]
