(** Synchronous CONGEST-model simulator.

    Semantics, per the paper's Section 2.2: computation proceeds in
    rounds; in each round every node may send one small message along
    each incident edge; messages sent in round [r] are available to the
    receiver in round [r+1].

    Protocols call {!api}[.send] freely; the engine serialises the
    sends through per-link FIFO queues so that the wire discipline
    (one message per edge per direction per round) always holds, and
    charges every delivered message to {!Metrics}. *)

type 'msg api = {
  id : int;  (** this node's ID *)
  degree : int;
  neighbor_id : int -> int;  (** neighbor index -> node ID *)
  neighbor_weight : int -> int;  (** neighbor index -> edge weight *)
  send : int -> 'msg -> unit;  (** enqueue a message to a neighbor index *)
  broadcast : 'msg -> unit;  (** enqueue to every neighbor *)
  round : unit -> int;  (** current round number *)
}

type ('state, 'msg) protocol = {
  name : string;
  init : 'msg api -> 'state;
      (** Round-0 computation; may send. Called once per node. *)
  on_round : 'msg api -> 'state -> (int * 'msg) list -> unit;
      (** Per-round computation. The inbox lists
          [(neighbor index, message)] pairs delivered this round. *)
  halted : 'state -> bool;
      (** True once the node has locally terminated. *)
  msg_words : 'msg -> int;  (** size accounting, in words *)
  max_msg_words : int;
      (** CONGEST bandwidth cap; sends above it raise. *)
}

type ('state, 'msg) t

type jitter = { rng : Ds_util.Rng.t; max_delay : int }
(** Asynchronous-link model: each message is held on its link for an
    extra uniform 0..max_delay rounds (links stay FIFO — no
    reordering). This is the bounded-asynchrony extension the paper's
    conclusion calls for; delay-tolerant protocols ({!Setup},
    {!Super_bf}, the phase-tagged [Ds_core.Tz_echo]) stay correct,
    round counts become meaningless as a complexity measure. *)

val create :
  ?pool:Ds_parallel.Pool.t -> ?jitter:jitter -> Ds_graph.Graph.t ->
  ('state, 'msg) protocol -> ('state, 'msg) t

val graph : ('state, 'msg) t -> Ds_graph.Graph.t
val metrics : ('state, 'msg) t -> Metrics.t
val states : ('state, 'msg) t -> 'state array
val state : ('state, 'msg) t -> int -> 'state

val step : ('state, 'msg) t -> unit
(** Execute one synchronous round (delivery then computation). *)

type stop_reason = Quiescent | All_halted | Round_limit

val run : ?max_rounds:int -> ('state, 'msg) t -> stop_reason
(** Run rounds until no message is in flight and none was sent
    (quiescence), every node reports [halted], or the round limit is
    hit (default 10 million — a bug guard, not a tuning knob). *)

val quiescent : ('state, 'msg) t -> bool
(** No queued or in-flight messages. *)
