module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Gen = Ds_graph.Gen
module Props = Ds_graph.Props
module Apsp = Ds_graph.Apsp
module Metrics = Ds_congest.Metrics
module Eval = Ds_core.Eval

type workload = {
  name : string;
  graph : Ds_graph.Graph.t;
  profile : Props.profile;
  apsp : Apsp.t;
}

let make_workload ?pool ~seed ~family ~n () =
  let rng = Rng.create seed in
  let graph = Gen.build ~rng family ~n in
  {
    name = Gen.family_name family;
    graph;
    profile = Props.profile graph;
    apsp = Apsp.compute ?pool graph;
  }

let standard_families ~n =
  [
    ("erdos-renyi", Gen.Erdos_renyi { avg_degree = 6.0 });
    ("geometric", Gen.Geometric { radius = 2.0 /. sqrt (float_of_int n) });
    ("torus", Gen.Torus);
    ("power-law", Gen.Power_law { edges_per_node = 2 });
    ("star-ring", Gen.Star_ring { heavy_frac = 0.25 });
  ]

let log2i n = max 1 (int_of_float (ceil (log (float_of_int n) /. log 2.0)))

let ln n = log (float_of_int n)

let stretch_cells r =
  [
    Table.cell_float ~decimals:3 r.Eval.max_stretch;
    Table.cell_float ~decimals:3 r.Eval.avg_stretch;
    Table.cell_float ~decimals:3 r.Eval.p99;
    Table.cell_int r.Eval.violations;
  ]

let report_phases m =
  List.map
    (fun (p : Metrics.phase) ->
      {
        Report.name = p.Metrics.name;
        rounds = p.Metrics.rounds;
        messages = p.Metrics.messages;
        words = p.Metrics.words;
      })
    (Metrics.phases m)

let round_profile tr =
  let p = Ds_congest.Trace.profile tr in
  {
    Report.rounds = p.Ds_congest.Trace.rounds;
    peak_messages = p.Ds_congest.Trace.peak_delivered;
    peak_messages_round = p.Ds_congest.Trace.peak_delivered_round;
    peak_active_links = p.Ds_congest.Trace.peak_active_links;
    peak_active_links_round = p.Ds_congest.Trace.peak_active_links_round;
    peak_in_flight = p.Ds_congest.Trace.peak_in_flight;
    peak_in_flight_round = p.Ds_congest.Trace.peak_in_flight_round;
    max_link_backlog = p.Ds_congest.Trace.max_link_backlog;
  }

let far_sample ~rng apsp ~eps ~count =
  let n = Apsp.n apsp in
  let acc = ref [] in
  let found = ref 0 in
  let budget = ref (50 * count) in
  while !found < count && !budget > 0 do
    decr budget;
    let u = Rng.int rng n in
    let v = Rng.int rng n in
    if u <> v && Eval.is_far apsp ~eps u v then begin
      incr found;
      acc := (u, v, Apsp.dist apsp u v) :: !acc
    end
  done;
  Array.of_list !acc
