(** Minimal JSON document tree with a deterministic serializer.

    This is an emitter, not a parser: the report harness only ever
    writes JSON ([EXPERIMENTS.json], bench output) and checks drift by
    byte comparison, so no reading side is needed. Keys keep the order
    in which they are listed, floats render via a fixed format, and the
    output ends with a newline — the same value always serializes to
    the same bytes, which is what makes committed artifacts diffable
    in CI. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Render with 2-space indentation and a trailing newline. Non-finite
    floats become [null]; integral floats keep one decimal ("49.0") so
    they parse back as floats. *)

val to_string_compact : t -> string
(** Render on a single line with no whitespace and no trailing
    newline, same numeric formats as {!to_string}. One call emits one
    complete document — the building block of JSONL logs (one value
    per line) and of the Chrome trace file, where indentation would
    dominate the size. *)

val float_repr : float -> string
(** The fixed float rendering [to_string] uses: NaN/infinity -> "null",
    integral values below 1e15 -> one decimal, everything else
    [%.12g]. Exposed so tests can pin the format the drift check
    depends on. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control chars);
    no surrounding quotes. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (standard grammar; numbers containing
    [.]/[e]/[E] become [Float], others [Int]). Errors carry a byte
    offset. Round-trips everything the emitter writes — what
    [distsketch obs-cat] and schema checks read artifacts back with;
    not tuned for adversarial input. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first binding of [key]; [None]
    on missing keys and non-objects. *)
