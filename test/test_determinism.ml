(* The engine contract the refactor must preserve: a protocol run is a
   pure function of (graph, protocol, jitter seed). Pool size, worker
   scheduling and the active-link worklist are invisible — states,
   round counts, message counts and word counts all match the
   sequential run bit for bit. *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Engine = Ds_congest.Engine
module Metrics = Ds_congest.Metrics
module Trace = Ds_congest.Trace
module Super_bf = Ds_congest.Super_bf
module Multi_bf = Ds_congest.Multi_bf
module Setup = Ds_congest.Setup
module Pool = Ds_parallel.Pool

let check_metrics_equal name a b =
  Alcotest.(check int) (name ^ " rounds") (Metrics.rounds a) (Metrics.rounds b);
  Alcotest.(check int)
    (name ^ " messages")
    (Metrics.messages a) (Metrics.messages b);
  Alcotest.(check int) (name ^ " words") (Metrics.words a) (Metrics.words b);
  Alcotest.(check int)
    (name ^ " backlog")
    (Metrics.max_link_backlog a)
    (Metrics.max_link_backlog b)

let test_super_bf_pool_invariant () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let sources = [ 0; n / 2 ] in
      let seq, ms = Super_bf.run ~pool:Pool.sequential g ~sources in
      let par, mp = Super_bf.run ~pool g ~sources in
      Alcotest.(check (array int)) (name ^ " dist") seq.Super_bf.dist
        par.Super_bf.dist;
      Alcotest.(check (array int)) (name ^ " nearest") seq.Super_bf.nearest
        par.Super_bf.nearest;
      Alcotest.(check (array int)) (name ^ " parent") seq.Super_bf.parent
        par.Super_bf.parent;
      check_metrics_equal name ms mp)
    (Helpers.graph_suite 71)

let test_multi_bf_pool_invariant () =
  Pool.with_pool ~domains:3 @@ fun pool ->
  let g = Helpers.random_graph ~seed:72 80 in
  let sources = [ 1; 17; 40; 79 ] in
  let bound _ = Ds_graph.Dist.none in
  let seq, ms = Multi_bf.run ~pool:Pool.sequential g ~sources ~bound in
  let par, mp = Multi_bf.run ~pool g ~sources ~bound in
  Array.iteri
    (fun u lst ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "found at %d" u)
        lst par.(u))
    seq;
  check_metrics_equal "multi-bf" ms mp

let test_setup_pool_invariant () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let g = Helpers.random_graph ~seed:73 90 in
  let seq, ms = Setup.run ~pool:Pool.sequential g in
  let par, mp = Setup.run ~pool g in
  Alcotest.(check int) "leader" seq.Setup.leader par.Setup.leader;
  Alcotest.(check (array int)) "parents" seq.Setup.parent par.Setup.parent;
  check_metrics_equal "setup" ms mp

(* Jitter delays are a pure hash of (creation seed, link, sequence
   number), so even asynchronous runs cannot depend on pool size. *)
let test_jitter_pool_invariant () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let g = Helpers.random_graph ~seed:74 60 in
  let jitter seed = { Engine.rng = Rng.create seed; max_delay = 4 } in
  let seq, ms =
    Super_bf.run ~pool:Pool.sequential ~jitter:(jitter 905) g ~sources:[ 0; 9 ]
  in
  let par, mp = Super_bf.run ~pool ~jitter:(jitter 905) g ~sources:[ 0; 9 ] in
  Alcotest.(check (array int)) "dist" seq.Super_bf.dist par.Super_bf.dist;
  Alcotest.(check (array int)) "parent" seq.Super_bf.parent par.Super_bf.parent;
  check_metrics_equal "jittered super-bf" ms mp

(* Same seed -> same jittered schedule; different seed -> (almost
   surely) a different one. Guards against the hash degenerating. *)
let test_jitter_seed_sensitivity () =
  let g = Helpers.path 30 in
  let run seed =
    let _, m =
      Super_bf.run
        ~jitter:{ Engine.rng = Rng.create seed; max_delay = 6 }
        g ~sources:[ 0 ]
    in
    Metrics.rounds m
  in
  Alcotest.(check int) "same seed reproduces" (run 11) (run 11);
  Alcotest.(check bool) "some seed differs" true
    (List.exists (fun s -> run s <> run 11) [ 12; 13; 14; 15; 16 ])

let test_jitter_fifo_qcheck =
  QCheck.Test.make ~name:"jittered FIFO invariant under pool size" ~count:25
    QCheck.(pair (int_range 1 15) (int_range 0 100000))
    (fun (count, seed) ->
      let g = Graph.of_edges ~n:2 [ (0, 1, 1) ] in
      let proto : ((int * int) list ref, int) Engine.protocol =
        {
          Engine.name = "burst";
          max_msg_words = 1;
          msg_words = (fun _ -> 1);
          halted = (fun _ -> true);
          init =
            (fun api ->
              if api.Engine.id = 0 then
                for s = 1 to count do
                  api.Engine.send 0 s
                done;
              ref []);
          on_round =
            (fun api st inbox ->
              Engine.Inbox.iter
                (fun _ m -> st := (m, api.Engine.round ()) :: !st)
                inbox);
        }
      in
      let arrivals pool =
        let jitter =
          { Engine.rng = Rng.create seed; max_delay = seed mod 5 }
        in
        let eng = Engine.create ~pool ~jitter g proto in
        ignore (Engine.run eng);
        List.rev !(Engine.state eng 1)
      in
      let seq = arrivals Pool.sequential in
      let par =
        Pool.with_pool ~domains:2 (fun pool -> arrivals pool)
      in
      (* FIFO: payloads in send order; pool-independent: identical
         arrival rounds. *)
      List.map fst seq = List.init count (fun i -> i + 1) && seq = par)

(* The full invariance matrix for the sharded delivery path:
   {1, 2, 4, 8} pool sizes x {no jitter, jitter}, comparing the
   metrics totals and both deterministic trace exports byte for byte
   against the sequential baseline. The workload is sized so its peak
   active-link count clears [Engine.par_threshold] — the pooled runs
   provably take the parallel delivery path, not the inline
   fallback. *)
let test_delivery_matrix_invariant () =
  let g = Helpers.random_graph ~seed:75 ~avg_degree:8.0 300 in
  let run ~jitter_seed pool =
    let tracer = Trace.create () in
    let jitter =
      Option.map
        (fun s -> { Engine.rng = Rng.create s; max_delay = 3 })
        jitter_seed
    in
    let _, m =
      Super_bf.run ~pool ?jitter ~tracer g ~sources:[ 0; 101; 202 ]
    in
    (tracer, m)
  in
  List.iter
    (fun jitter_seed ->
      let jname =
        match jitter_seed with None -> "no-jitter" | Some _ -> "jitter"
      in
      let base_t, base_m = run ~jitter_seed Pool.sequential in
      Alcotest.(check bool)
        (jname ^ " exercises the parallel path")
        true
        ((Trace.profile base_t).Trace.peak_active_links
        >= Engine.par_threshold);
      let base_jsonl = Trace.jsonl ~timing:false base_t in
      let base_chrome =
        Trace.chrome ~clock:`Rounds ~phases:(Metrics.phases base_m) base_t
      in
      List.iter
        (fun domains ->
          Pool.with_pool ~domains @@ fun pool ->
          let t, m = run ~jitter_seed pool in
          let name = Printf.sprintf "%s domains=%d" jname domains in
          check_metrics_equal name base_m m;
          Alcotest.(check string) (name ^ " jsonl bytes") base_jsonl
            (Trace.jsonl ~timing:false t);
          Alcotest.(check string) (name ^ " chrome bytes") base_chrome
            (Trace.chrome ~clock:`Rounds ~phases:(Metrics.phases m) t))
        [ 2; 4; 8 ])
    [ None; Some 906 ]

let suite =
  [
    Alcotest.test_case "super-bf invariant across pools" `Quick
      test_super_bf_pool_invariant;
    Alcotest.test_case "multi-bf invariant across pools" `Quick
      test_multi_bf_pool_invariant;
    Alcotest.test_case "setup invariant across pools" `Quick
      test_setup_pool_invariant;
    Alcotest.test_case "jittered run invariant across pools" `Quick
      test_jitter_pool_invariant;
    Alcotest.test_case "jitter seed sensitivity" `Quick
      test_jitter_seed_sensitivity;
    QCheck_alcotest.to_alcotest test_jitter_fifo_qcheck;
    Alcotest.test_case "delivery matrix: pools x jitter byte-identical" `Quick
      test_delivery_matrix_invariant;
  ]
