(* Command-line driver: run paper experiments or one-off constructions
   with chosen parameters. *)

module Rng = Ds_util.Rng
module Table = Ds_util.Table
module Graph = Ds_graph.Graph
module Gen = Ds_graph.Gen
module Props = Ds_graph.Props
module Metrics = Ds_congest.Metrics
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Eval = Ds_core.Eval
module Registry = Ds_experiments.Registry
module Pool = Ds_parallel.Pool

open Cmdliner

let family_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "er" | "erdos-renyi" -> Ok (Gen.Erdos_renyi { avg_degree = 6.0 })
    | "geometric" -> Ok (Gen.Geometric { radius = 0.1 })
    | "grid" -> Ok Gen.Grid
    | "torus" -> Ok Gen.Torus
    | "ring-chords" -> Ok (Gen.Ring_chords { chords_frac = 0.2 })
    | "tree" -> Ok Gen.Tree
    | "power-law" -> Ok (Gen.Power_law { edges_per_node = 2 })
    | "star-ring" -> Ok (Gen.Star_ring { heavy_frac = 0.25 })
    | other -> Error (`Msg (Printf.sprintf "unknown family %S" other))
  in
  Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf (Gen.family_name f))

let n_arg =
  Arg.(
    value & opt int 256
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let k_arg =
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Hierarchy depth k.")

let family_arg =
  Arg.(
    value
    & opt family_conv (Gen.Erdos_renyi { avg_degree = 6.0 })
    & info [ "family" ] ~docv:"FAMILY"
        ~doc:
          "Graph family: er, geometric, grid, torus, ring-chords, tree, \
           power-law, star-ring.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Worker domains for the simulator's round loop (1 = sequential). \
           Results are identical for every value.")

(* One pool per command invocation: created before the work, joined
   after, whatever happens in between. *)
let with_domains domains f =
  if domains < 1 then begin
    Printf.eprintf "--domains must be >= 1\n";
    exit 1
  end;
  Pool.with_pool ~domains f

let make_graph family n seed =
  let rng = Rng.create seed in
  Gen.build ~rng family ~n

(* ---- experiments ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-4s %-42s %s\n" e.Registry.id e.Registry.title
          e.Registry.claim)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments.")
    Term.(const run $ const ())

let run_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also save each table as CSV in $(docv).")
  in
  let run domains csv_dir ids =
    with_domains domains @@ fun pool ->
    match ids with
    | [] -> ignore (Registry.run_all ~pool ?csv_dir ())
    | ids ->
      List.iter
        (fun id ->
          match Registry.find id with
          | Some e -> ignore (Registry.run_one ~pool ?csv_dir e)
          | None -> Printf.eprintf "unknown experiment %S (try `list')\n" id)
        ids
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run experiments by id (all when none given); see `list'.")
    Term.(const run $ domains_arg $ csv_arg $ ids)

(* ---- report ---- *)

let profile_conv =
  Arg.enum [ ("full", Registry.Full); ("quick", Registry.Quick) ]

let report_cmd =
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Do not write anything; re-run the experiments and fail (exit 1) \
             if the committed EXPERIMENTS.md / EXPERIMENTS.json differ from a \
             fresh render.")
  in
  let profile_arg =
    Arg.(
      value & opt profile_conv Registry.Full
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:
            "Parameter profile: $(b,full) (the committed artifacts) or \
             $(b,quick) (scaled-down, for smoke tests).")
  in
  let dir_arg =
    Arg.(
      value & opt string "."
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Directory holding EXPERIMENTS.md and EXPERIMENTS.json.")
  in
  let run domains check profile dir =
    with_domains domains @@ fun pool ->
    if check then
      match Registry.check_files ~profile ~pool ~dir () with
      | Ok () ->
        Printf.printf "report --check: %s and %s match a fresh run\n"
          Registry.md_file Registry.json_file
      | Error msg ->
        Printf.eprintf "report --check FAILED:\n%s\n" msg;
        exit 1
    else
      let paths = Registry.write_files ~profile ~pool ~dir () in
      List.iter (Printf.printf "wrote %s\n") paths
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run every experiment (e1-e14) and regenerate EXPERIMENTS.md and \
          EXPERIMENTS.json in place; with $(b,--check), verify the committed \
          files instead of rewriting them.")
    Term.(const run $ domains_arg $ check_arg $ profile_arg $ dir_arg)

(* ---- profile ---- *)

let profile_cmd =
  let run family n seed =
    let g = make_graph family n seed in
    let p = Props.profile g in
    Format.printf "%s: %a@." (Gen.family_name family) Props.pp_profile p
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Generate a graph and print n, |E|, D, S.")
    Term.(const run $ family_arg $ n_arg $ seed_arg)

(* ---- build ---- *)

let mode_conv =
  Arg.enum [ ("central", `Central); ("dist", `Dist); ("echo", `Echo) ]

let build_cmd =
  let mode_arg =
    Arg.(
      value & opt mode_conv `Dist
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Construction: central, dist (known-S), echo (self-terminating).")
  in
  let run family n seed k mode domains =
    with_domains domains @@ fun pool ->
    let g = make_graph family n seed in
    let gn = Graph.n g in
    let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
    let describe labels metrics =
      let sizes = Eval.size_summary Label.size_words labels in
      Format.printf "labels built: %d nodes, k=%d@." gn k;
      Format.printf "sizes (words): %a@." Ds_util.Stats.pp_summary sizes;
      match metrics with
      | None -> ()
      | Some m -> Format.printf "cost: %a@." Metrics.pp m
    in
    match mode with
    | `Central -> describe (Ds_core.Tz_centralized.build g ~levels) None
    | `Dist ->
      let r = Ds_core.Tz_distributed.build ~pool g ~levels in
      describe r.Ds_core.Tz_distributed.labels
        (Some r.Ds_core.Tz_distributed.metrics)
    | `Echo ->
      let r = Ds_core.Tz_echo.build ~pool g ~levels in
      Format.printf "leader: %d@." r.Ds_core.Tz_echo.leader;
      describe r.Ds_core.Tz_echo.labels (Some r.Ds_core.Tz_echo.metrics)
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Build Thorup-Zwick sketches on a generated graph and report \
             sizes and CONGEST cost.")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ k_arg $ mode_arg
      $ domains_arg)

(* ---- trace ---- *)

let trace_protocol_conv =
  Arg.enum
    [
      ("setup", `Setup);
      ("multi-bf", `Multi_bf);
      ("super-bf", `Super_bf);
      ("tz", `Tz);
      ("tz-echo", `Tz_echo);
    ]

let trace_cmd =
  let protocol_arg =
    Arg.(
      value & opt trace_protocol_conv `Multi_bf
      & info [ "protocol" ] ~docv:"PROTO"
          ~doc:
            "Execution to trace: setup, multi-bf, super-bf, tz (known-S \
             build), tz-echo (self-terminating build).")
  in
  let out_arg =
    Arg.(
      value & opt string "trace-out"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Output directory (created if missing).")
  in
  let top_k_arg =
    Arg.(
      value & opt int 5
      & info [ "top-k" ] ~docv:"K" ~doc:"Hotspot nodes to print.")
  in
  let max_delay_arg =
    Arg.(
      value & opt int 0
      & info [ "max-delay" ] ~docv:"R"
          ~doc:"Bounded link asynchrony: extra 0..$(docv) rounds per message.")
  in
  let sources_arg =
    Arg.(
      value & opt int 4
      & info [ "sources" ] ~docv:"S"
          ~doc:"Source count for multi-bf / super-bf.")
  in
  let deterministic_arg =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Emit only the schema-deterministic fields: the JSONL drops the \
             wall-clock and pool columns, the Chrome trace uses virtual \
             round time. Output is then byte-identical for any --domains.")
  in
  let run family n seed k domains protocol out top_k max_delay sources det =
    with_domains domains @@ fun pool ->
    let g = make_graph family n seed in
    let gn = Graph.n g in
    let jitter =
      if max_delay <= 0 then None
      else
        Some
          {
            Ds_congest.Engine.rng = Rng.create (seed + 17);
            max_delay;
          }
    in
    let tracer = Ds_congest.Trace.create () in
    let srcs =
      let s = max 1 (min sources gn) in
      List.init s (fun i -> i * gn / s)
    in
    let name, metrics =
      match protocol with
      | `Setup ->
        let _, m = Ds_congest.Setup.run ~pool ?jitter ~tracer g in
        ("setup", m)
      | `Multi_bf ->
        if jitter <> None then begin
          Printf.eprintf "multi-bf does not support --max-delay\n";
          exit 1
        end;
        let _, m =
          Ds_congest.Multi_bf.run ~pool ~tracer g ~sources:srcs
            ~bound:(fun _ -> Ds_graph.Dist.none)
        in
        ("multi-bf", m)
      | `Super_bf ->
        let _, m = Ds_congest.Super_bf.run ~pool ?jitter ~tracer g ~sources:srcs in
        ("super-bf", m)
      | `Tz ->
        if jitter <> None then begin
          Printf.eprintf "tz does not support --max-delay (use tz-echo)\n";
          exit 1
        end;
        let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
        let r = Ds_core.Tz_distributed.build ~pool ~tracer g ~levels in
        ("tz", r.Ds_core.Tz_distributed.metrics)
      | `Tz_echo ->
        let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
        let r = Ds_core.Tz_echo.build ~pool ?jitter ~tracer g ~levels in
        ( "tz-echo",
          Metrics.add r.Ds_core.Tz_echo.setup_metrics
            r.Ds_core.Tz_echo.metrics )
    in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let timing = not det in
    let write file contents =
      let path = Filename.concat out file in
      let oc = open_out_bin path in
      output_string oc contents;
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    write
      (Printf.sprintf "%s.rounds.jsonl" name)
      (Ds_congest.Trace.jsonl ~timing tracer);
    write
      (Printf.sprintf "%s.trace.json" name)
      (Ds_congest.Trace.chrome
         ~clock:(if det then `Rounds else `Wall)
         ~phases:(Metrics.phases metrics) tracer);
    Format.printf "cost: %a@." Metrics.pp metrics;
    Format.printf "%s@."
      (Ds_util.Json.to_string
         (Ds_congest.Trace.summary ~top_k ~timing tracer))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a protocol with per-round telemetry and export the round log \
          (JSONL) and a Chrome trace-event file (load in Perfetto or \
          about:tracing).")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ k_arg $ domains_arg
      $ protocol_arg $ out_arg $ top_k_arg $ max_delay_arg $ sources_arg
      $ deterministic_arg)

(* ---- spanner ---- *)

let spanner_cmd =
  let run family n seed k domains =
    with_domains domains @@ fun pool ->
    let g = make_graph family n seed in
    let gn = Graph.n g in
    let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
    let sp, metrics = Ds_core.Spanner.of_distributed ~pool g ~levels in
    Format.printf "input:   n=%d |E|=%d@." gn (Graph.m g);
    Format.printf "spanner: |E'|=%d (bound %d * 2k-1 stretch), %.1f%% of edges@."
      (Graph.m sp) ((2 * k) - 1)
      (100.0 *. float_of_int (Graph.m sp) /. float_of_int (Graph.m g));
    Format.printf "max stretch: %.3f (bound %d)@."
      (Ds_core.Spanner.max_stretch g ~spanner:sp)
      ((2 * k) - 1);
    Format.printf "construction cost: %a@." Metrics.pp metrics
  in
  Cmd.v
    (Cmd.info "spanner"
       ~doc:"Extract the (2k-1)-spanner from the distributed construction.")
    Term.(const run $ family_arg $ n_arg $ seed_arg $ k_arg $ domains_arg)

(* ---- query ---- *)

let query_cmd =
  let u_arg =
    Arg.(value & opt int 0 & info [ "u"; "from" ] ~docv:"U" ~doc:"Query endpoint u.")
  in
  let v_arg =
    Arg.(value & opt int 1 & info [ "v"; "to" ] ~docv:"V" ~doc:"Query endpoint v.")
  in
  let run family n seed k u v domains =
    with_domains domains @@ fun pool ->
    let g = make_graph family n seed in
    let gn = Graph.n g in
    if u < 0 || u >= gn || v < 0 || v >= gn then begin
      Printf.eprintf "endpoints must be in [0, %d)\n" gn;
      exit 1
    end;
    let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
    let built = Ds_core.Tz_distributed.build ~pool g ~levels in
    let tree, _ = Ds_congest.Setup.run ~pool g in
    let r =
      Ds_core.Query_protocol.query ~pool g ~tree
        ~labels:built.Ds_core.Tz_distributed.labels ~u ~v
    in
    let exact = Ds_graph.Dijkstra.sssp g ~src:u in
    Format.printf
      "estimate d(%d,%d) = %d (exact %d, stretch %.2f), exchanged in %d \
       rounds / %d messages@."
      u v r.Ds_core.Query_protocol.estimate exact.(v)
      (float_of_int r.Ds_core.Query_protocol.estimate /. float_of_int exact.(v))
      r.Ds_core.Query_protocol.rounds r.Ds_core.Query_protocol.messages
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Answer one distance query by in-network sketch exchange.")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ k_arg $ u_arg $ v_arg
      $ domains_arg)

(* ---- route ---- *)

let route_cmd =
  let u_arg =
    Arg.(value & opt int 0 & info [ "src" ] ~docv:"SRC" ~doc:"Token source.")
  in
  let v_arg =
    Arg.(value & opt int 1 & info [ "dst" ] ~docv:"DST" ~doc:"Token target.")
  in
  let run family n seed k src dst domains =
    with_domains domains @@ fun pool ->
    let g = make_graph family n seed in
    let gn = Graph.n g in
    let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
    let built = Ds_core.Tz_distributed.build ~pool g ~levels in
    match
      Ds_core.Routing.with_labels g built.Ds_core.Tz_distributed.labels ~src
        ~dst
    with
    | None -> Printf.printf "token gave up (hop budget exhausted)\n"
    | Some o ->
      let exact = Ds_graph.Dijkstra.sssp g ~src in
      Printf.printf "delivered in %d hops, cost %d (shortest %d, %.2fx)\n"
        o.Ds_core.Routing.hops o.Ds_core.Routing.cost exact.(dst)
        (float_of_int o.Ds_core.Routing.cost /. float_of_int exact.(dst));
      Printf.printf "path: %s\n"
        (String.concat " -> "
           (List.map string_of_int o.Ds_core.Routing.path))
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Greedily forward a token using sketches as the distance oracle.")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ k_arg $ u_arg $ v_arg
      $ domains_arg)

let main =
  Cmd.group
    (Cmd.info "distsketch" ~version:"1.0.0"
       ~doc:"Distributed distance sketches (Das Sarma-Dinitz-Pandurangan).")
    [ list_cmd; run_cmd; report_cmd; profile_cmd; build_cmd; trace_cmd;
      spanner_cmd; query_cmd; route_cmd ]

let () = exit (Cmd.eval main)
