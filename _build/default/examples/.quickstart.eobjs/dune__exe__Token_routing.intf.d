examples/token_routing.mli:
