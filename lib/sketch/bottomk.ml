module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Dijkstra = Ds_graph.Dijkstra
module Engine = Ds_congest.Engine
module Plane = Ds_congest.Plane
module Metrics = Ds_congest.Metrics
module Multi_bf = Ds_congest.Multi_bf
module Rng = Ds_util.Rng

let rank ~seed v = Rng.mix (Rng.mix seed lxor v)

(* Per-node state: an open-addressed map from source id to (dist,
   cached rank, queued), in parallel int arrays with linear probing,
   plus an int-ring rebroadcast FIFO — the same machinery as
   [Multi_bf.state] and for the same reason (the admission test runs
   once per delivered message; [Hashtbl] would allocate on that
   path). Entries are never deleted. *)
type state = {
  k : int;
  seed : int;
  mutable keys : int array; (* source id, -1 = empty slot *)
  mutable dist : int array;
  mutable rnk : int array; (* rank of [keys], cached *)
  mutable queued : int array; (* 1 iff the source sits in the FIFO *)
  mutable mask : int; (* capacity - 1 *)
  mutable count : int;
  mutable pend : int array; (* ring of source ids, power-of-two cap *)
  mutable pend_head : int;
  mutable pend_len : int;
  mutable max_pending : int;
}

(* Fibonacci-style mixing, as in [Multi_bf.probe]: source ids are the
   full 0..n-1 range and degenerate under [id land mask]. *)
let rec probe keys mask key i =
  let k = keys.(i) in
  if k = key || k < 0 then i else probe keys mask key ((i + 1) land mask)

let slot st key =
  probe st.keys st.mask key (((key * 0x9E3779B1) lsr 8) land st.mask)

let grow_tbl st =
  let old_keys = st.keys
  and old_dist = st.dist
  and old_rnk = st.rnk
  and old_queued = st.queued in
  let cap = 2 * Array.length old_keys in
  st.keys <- Array.make cap (-1);
  st.dist <- Array.make cap 0;
  st.rnk <- Array.make cap 0;
  st.queued <- Array.make cap 0;
  st.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = slot st k in
        st.keys.(j) <- k;
        st.dist.(j) <- old_dist.(i);
        st.rnk.(j) <- old_rnk.(i);
        st.queued.(j) <- old_queued.(i)
      end)
    old_keys

let grow_pend st =
  let old = st.pend in
  let cap = Array.length old in
  let next = Array.make (2 * cap) 0 in
  for i = 0 to st.pend_len - 1 do
    next.(i) <- old.((st.pend_head + i) land (cap - 1))
  done;
  st.pend <- next;
  st.pend_head <- 0

let enqueue st src j =
  if st.queued.(j) = 0 then begin
    st.queued.(j) <- 1;
    if st.pend_len = Array.length st.pend then grow_pend st;
    st.pend.((st.pend_head + st.pend_len) land (Array.length st.pend - 1))
    <- src;
    st.pend_len <- st.pend_len + 1;
    if st.pend_len > st.max_pending then st.max_pending <- st.pend_len
  end

(* Admission: fewer than [k] known sources dominate the candidate,
   where [j] dominates iff [dist.(j) <= nd] and [(rnk.(j), keys.(j))]
   is lex-below [(r, src)]. A linear scan over the table — it holds
   O(k log n) entries in expectation, and the scan stops at [k]. The
   count is over set contents only (order-independent), which is what
   keeps the protocol byte-deterministic across backends. *)
let admits st src r nd =
  let c = ref 0 in
  let cap = Array.length st.keys in
  let j = ref 0 in
  while !c < st.k && !j < cap do
    let key = st.keys.(!j) in
    if
      key >= 0
      && st.dist.(!j) <= nd
      && (st.rnk.(!j) < r || (st.rnk.(!j) = r && key < src))
    then incr c;
    incr j
  done;
  !c < st.k

(* Cold path: first admitted announcement from [src]. Growing
   rehashes, so the slot must be recomputed afterwards. *)
let insert st src r nd =
  if 2 * (st.count + 1) > Array.length st.keys then grow_tbl st;
  st.count <- st.count + 1;
  let j = slot st src in
  st.keys.(j) <- src;
  st.dist.(j) <- nd;
  st.rnk.(j) <- r;
  st.queued.(j) <- 0;
  enqueue st src j

(* Once per delivered message. An already-known source is always
   improved in place (never re-tested — permissive acceptance is what
   guarantees exact distances along shortest paths; see the .mli);
   an unknown one must pass [admits]. Nothing is ever evicted. *)
let accept st src nd =
  let j = slot st src in
  if st.keys.(j) >= 0 then begin
    if nd < st.dist.(j) then begin
      st.dist.(j) <- nd;
      enqueue st src j
    end
  end
  else begin
    let r = rank ~seed:st.seed src in
    if admits st src r nd then insert st src r nd
  end

let pop_and_broadcast api st =
  if st.pend_len > 0 then begin
    let src = st.pend.(st.pend_head) in
    st.pend_head <- (st.pend_head + 1) land (Array.length st.pend - 1);
    st.pend_len <- st.pend_len - 1;
    let j = slot st src in
    st.queued.(j) <- 0;
    api.Engine.broadcast (src, st.dist.(j))
  end

let protocol ~k ~seed : (state, int * int) Engine.protocol =
  let open Engine in
  {
    name = "bottomk";
    max_msg_words = 2;
    msg_words = (fun _ -> 2);
    halted = (fun st -> st.pend_len = 0);
    init =
      (fun api ->
        let st =
          {
            k;
            seed;
            keys = Array.make 16 (-1);
            dist = Array.make 16 0;
            rnk = Array.make 16 0;
            queued = Array.make 16 0;
            mask = 15;
            count = 0;
            pend = Array.make 8 0;
            pend_head = 0;
            pend_len = 0;
            max_pending = 0;
          }
        in
        (* Every node is a source: it is trivially in its own bottom-k
           set (distance 0, empty table), so announce unconditionally. *)
        insert st api.id (rank ~seed api.id) 0;
        st);
    on_round =
      (fun api st inbox ->
        for i = 0 to Engine.Inbox.length inbox - 1 do
          let src, dist = Engine.Inbox.msg inbox i in
          let from = Engine.Inbox.from inbox i in
          accept st src (dist + api.neighbor_weight from)
        done;
        pop_and_broadcast api st);
  }

(* Greedy bottom-k filter over candidates sorted ascending by
   (rank, id): admit iff fewer than [k] already-admitted entries sit
   at distance <= the candidate's. Shared by the distributed
   extraction and the sequential [reference], so "equal sketches"
   really compares the two distance computations. *)
let select ~k sorted =
  let acc = ref [] and accd = ref [] in
  Array.iter
    (fun (_, key, d) ->
      let c =
        List.fold_left (fun c d' -> if d' <= d then c + 1 else c) 0 !accd
      in
      if c < k then begin
        acc := (key, d) :: !acc;
        accd := d :: !accd
      end)
    sorted;
  let out = Array.of_list !acc in
  Array.sort compare out;
  out

(* A node's final sketch: rank-order the surviving table and filter.
   The k lex-lowest-ranked nodes of any ball around [u] are themselves
   true ADS members and end the protocol present with exact distances,
   so entries admitted early on stale (longer) distances are exactly
   the ones the filter demotes — the result matches [reference]. *)
let sketch_entries st =
  let es = ref [] in
  Array.iteri
    (fun j key -> if key >= 0 then es := (st.rnk.(j), key, st.dist.(j)) :: !es)
    st.keys;
  let arr = Array.of_list !es in
  Array.sort compare arr;
  select ~k:st.k arr

type result = {
  sketch : Sketch.t;
  metrics : Metrics.t;
  mem_words : int;
  max_pending : int;
}

let run ?backend ?pool ?shards ?tracer ?obs g ~k ~seed =
  if k < 1 then invalid_arg "Bottomk.run: k < 1";
  let r =
    Plane.run ?backend ?pool ?shards ?tracer ?obs ~codec:Multi_bf.codec g
      (protocol ~k ~seed)
  in
  (match r.Plane.stop with
  | Quiescent | All_halted -> ()
  | Round_limit -> failwith "Bottomk: round limit hit");
  let m = r.Plane.metrics in
  Metrics.mark_phase m "bottomk";
  let max_pending =
    Array.fold_left
      (fun acc (st : state) -> max acc st.max_pending)
      0 r.Plane.states
  in
  let entries = Array.map sketch_entries r.Plane.states in
  let sketch = Sketch.v ~family:Family.Bottomk ~k entries in
  { sketch; metrics = m; mem_words = r.Plane.mem_words; max_pending }

let reference g ~k ~seed =
  if k < 1 then invalid_arg "Bottomk.reference: k < 1";
  let n = Graph.n g in
  Array.init n (fun u ->
      let dist = Dijkstra.sssp g ~src:u in
      let es = ref [] in
      for v = n - 1 downto 0 do
        if Dist.is_finite dist.(v) then
          es := (rank ~seed v, v, dist.(v)) :: !es
      done;
      let arr = Array.of_list !es in
      Array.sort compare arr;
      select ~k arr)
