let infinity = max_int / 4

let is_finite d = d < infinity

let add a b = if a >= infinity || b >= infinity then infinity else a + b

let lex_lt (d1, id1) (d2, id2) = d1 < d2 || (d1 = d2 && id1 < id2)

let lex_min a b = if lex_lt a b then a else b

let none = (infinity, max_int)
