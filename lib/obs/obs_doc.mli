(** Validator for obs/1 metric dumps ([--obs-out] files).

    The schema gate behind [obs-cat --check], factored out of the CLI
    so it is unit-testable on synthetic documents. A dump passes when

    - the [schema] tag is ["obs/1"] and the [points] /
      [final.counters] shapes are present;
    - [elapsed_ms] is strictly increasing across points and every
      point carries a [derived] block;
    - every cumulative counter is monotone point-to-point and the
      final quiesced snapshot is at or past the last sampled point;
    - every counter name is exportable: a label suffix, if any, parses
      as [base{key=value,…}] (the form {!Obs.prom_name} turns into a
      quoted Prometheus label — e.g. the per-family
      [oracle.queries{family=tz}] counters);
    - labeled counters never exceed their plain base: for each base
      present in [final.counters], the sum of its labeled variants is
      at most the base value (per-family counts are a breakdown of the
      total, not an addition to it). *)

val check : Ds_util.Json.t -> (int, string) result
(** [check doc] is [Ok points] (the number of sampled points) when the
    document satisfies every invariant above, [Error msg] naming the
    first violation otherwise. *)
