(** E14 — Lemma 3.7's scheduling mechanism.

    The proof bounds each phase's slowdown by the number of
    simultaneously-pending sources in a node's send queue, which is at
    most its bunch slice: O(n^{1/k} log n) whp. We report the maximum
    queue backlog the scheduler ever saw against both that bound and
    the largest realised bunch — the backlog never exceeding the bunch
    is the exact invariant the lemma's round bound rests on. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_distributed = Ds_core.Tz_distributed

type params = { seed : int; ns : int list; k : int }

let default = { seed = 14; ns = [ 64; 128; 256; 512 ]; k = 3 }
let quick = { seed = 14; ns = [ 64; 128 ]; k = 3 }

let id = "e14"
let title = "send-queue backlog vs Lemma 3.7"
let claim_id = "Lemma 3.7"

let claim =
  "a node's send-queue backlog is bounded by its bunch slice, \
   O(n^{1/k} log n) whp — the invariant the lemma's round bound rests \
   on"

let bound_expr = "`n^{1/k} ln n` pending sources (c = 1), and always <= max bunch"

let prose =
  "The maximum backlog the scheduler ever records stays below the \
   largest realised bunch at every n — the invariant Lemma 3.7's round \
   bound rests on — and well below the n^{1/k} ln n expression at \
   c = 1."

let run ?pool { seed; ns; k } =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E14: send-queue backlog vs the Lemma 3.7 bound (erdos-renyi, \
            k=%d)"
           k)
      ~headers:
        [
          "n"; "max backlog"; "max bunch"; "n^1/k ln n"; "backlog<=bunch";
          "backlog/bound";
        ]
  in
  let checks = ref [] in
  let worst_ratio = ref 0.0 in
  (* Trace the largest n: backlog is a per-round quantity, so the
     profile shows when in the execution the Lemma 3.7 peak occurs. *)
  let n_last = List.nth ns (List.length ns - 1) in
  let tracer = Ds_congest.Trace.create () in
  List.iter
    (fun n ->
      let w =
        Common.make_workload ?pool ~seed
          ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
          ~n ()
      in
      let levels = Levels.sample ~rng:(Rng.create (seed + n)) ~n ~k in
      let tr = if n = n_last then Some tracer else None in
      let r = Tz_distributed.build ?pool ?tracer:tr w.Common.graph ~levels in
      let max_bunch =
        Array.fold_left
          (fun acc l -> max acc (Label.bunch_size l))
          0 r.Tz_distributed.labels
      in
      let bound =
        (float_of_int n ** (1.0 /. float_of_int k)) *. Common.ln n
      in
      checks :=
        Report.check
          ~bound:(float_of_int max_bunch)
          ~ok:(r.Tz_distributed.max_pending <= max_bunch)
          (Printf.sprintf "max backlog <= max bunch (n=%d)" n)
          (float_of_int r.Tz_distributed.max_pending)
        :: !checks;
      worst_ratio :=
        max !worst_ratio (float_of_int r.Tz_distributed.max_pending /. bound);
      Table.add_row t
        [
          Table.cell_int n;
          Table.cell_int r.Tz_distributed.max_pending;
          Table.cell_int max_bunch;
          Table.cell_float bound;
          (if r.Tz_distributed.max_pending <= max_bunch then "yes" else "NO");
          Table.cell_ratio (float_of_int r.Tz_distributed.max_pending /. bound);
        ])
    ns;
  let checks =
    List.rev !checks
    @ [
        Report.check ~bound:1.0 ~ok:(!worst_ratio <= 1.0)
          "backlog / n^{1/k} ln n, worst n (c = 1)" !worst_ratio;
      ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t ];
    phases = [];
    round_profiles =
      [
        ( Printf.sprintf "known-S build (erdos-renyi, n=%d, k=%d)" n_last k,
          Common.round_profile tracer );
      ];
    verdict = Report.Reproduced;
  }
