(** Centralized Thorup–Zwick construction (paper Section 3.1).

    The baseline the distributed algorithm is checked against: given
    the same hierarchy, [Tz_distributed] and [Tz_echo] must produce
    labels structurally equal to these. Runs restricted Dijkstra per
    cluster, [O(k m n^{1/k} log n)] expected time. *)

val pivot_tables : Ds_graph.Graph.t -> levels:Levels.t -> (int * int) array array
(** [pivot_tables g ~levels] is a [(k+1) × n] table: row [i], entry
    [u] is [(d(u, A_i), p_i(u))] with ties ID-broken; row [k] is all
    [Dist.none]. *)

val build : Ds_graph.Graph.t -> levels:Levels.t -> Label.t array
(** [build g ~levels] is the full Thorup–Zwick label of every node:
    bunch entries from the restricted per-cluster Dijkstras plus the
    pivot chain from {!pivot_tables}. *)

val cluster : Ds_graph.Graph.t -> levels:Levels.t -> int -> (int * int) list
(** [cluster g ~levels w] is the cluster [C(w)] (Section 3.2) as
    [(node, distance)] pairs — the inverse of the bunches. Exposed for
    the duality test [u ∈ C(w) ⟺ w ∈ B(u)]. *)
