(* The transport-neutral superstep interface: everything a protocol
   needs from a message plane (the node-facing [api], the per-round
   [Inbox], the [protocol] record) plus the wire [codec] a bulk
   backend needs to move messages as flat words. [Engine] (per-link
   CONGEST rings) and [Shard_engine] (MPC-style bulk exchange) both
   implement this contract; [Plane] picks between them. *)

module Ivec = Ds_util.Ivec

type 'msg api = {
  id : int;
  degree : int;
  neighbor_id : int -> int;
  neighbor_weight : int -> int;
  send : int -> 'msg -> unit;
  broadcast : 'msg -> unit;
  round : unit -> int;
}

(* Reusable per-node inbox: two parallel growable arrays, cleared (not
   reallocated) after each round, so steady-state delivery allocates
   nothing for the backbone. Cleared slots keep their last message
   until overwritten; messages are small words in every protocol here,
   so the retention is harmless. *)
module Inbox = struct
  type 'msg t = {
    mutable froms : int array;
    mutable msgs : 'msg array; (* only the first [len] slots are valid *)
    mutable len : int;
  }

  let create () = { froms = [||]; msgs = [||]; len = 0 }
  let length b = b.len
  let is_empty b = b.len = 0

  let from b i =
    if i < 0 || i >= b.len then invalid_arg "Inbox.from";
    b.froms.(i)

  let msg b i =
    if i < 0 || i >= b.len then invalid_arg "Inbox.msg";
    b.msgs.(i)

  let push b j m =
    if b.len = Array.length b.msgs then begin
      let cap = max 4 (2 * b.len) in
      let froms = Array.make cap 0 and msgs = Array.make cap m in
      Array.blit b.froms 0 froms 0 b.len;
      Array.blit b.msgs 0 msgs 0 b.len;
      b.froms <- froms;
      b.msgs <- msgs
    end;
    b.froms.(b.len) <- j;
    b.msgs.(b.len) <- m;
    b.len <- b.len + 1

  let clear b = b.len <- 0

  let iter f b =
    for i = 0 to b.len - 1 do
      f b.froms.(i) b.msgs.(i)
    done

  let fold f acc b =
    let acc = ref acc in
    for i = 0 to b.len - 1 do
      acc := f !acc b.froms.(i) b.msgs.(i)
    done;
    !acc

  let to_list b = List.init b.len (fun i -> (b.froms.(i), b.msgs.(i)))

  (* Canonical per-round order: ascending sender neighbor index. The
     wire discipline delivers at most one message per incoming link
     per round, so [froms] holds distinct values in [0, degree) and
     the order is unique — every backend (and every shard count)
     produces byte-identical inbox interleavings, which is what makes
     sketches and metrics backend-independent. Allocation-free: a
     recursive insertion sort for the common short inbox, and — when
     every link delivered, so [froms] is a full permutation of
     [0, degree) — an in-place cycle placement that costs O(len)
     instead of O(len^2) (the flooding-on-a-clique case). *)
  let rec insert_back b j f m =
    if j >= 0 && b.froms.(j) > f then begin
      b.froms.(j + 1) <- b.froms.(j);
      b.msgs.(j + 1) <- b.msgs.(j);
      insert_back b (j - 1) f m
    end
    else begin
      b.froms.(j + 1) <- f;
      b.msgs.(j + 1) <- m
    end

  let rec settle b i =
    let f = b.froms.(i) in
    if f <> i then begin
      let f2 = b.froms.(f) and m2 = b.msgs.(f) in
      b.froms.(f) <- f;
      b.msgs.(f) <- b.msgs.(i);
      b.froms.(i) <- f2;
      b.msgs.(i) <- m2;
      settle b i
    end

  (* Capacity in slots; [msgs] slots count one word each (a pointer or
     an immediate — boxed payloads add their own heap cost on top). *)
  let mem_words b = Array.length b.froms + Array.length b.msgs

  let sort_by_from b ~degree =
    if b.len > 1 then
      if b.len = degree then
        for i = 0 to b.len - 1 do
          settle b i
        done
      else
        for i = 1 to b.len - 1 do
          insert_back b (i - 1) b.froms.(i) b.msgs.(i)
        done
end

type ('state, 'msg) protocol = {
  name : string;
  init : 'msg api -> 'state;
  on_round : 'msg api -> 'state -> 'msg Inbox.t -> unit;
  halted : 'state -> bool;
  msg_words : 'msg -> int;
  max_msg_words : int;
}

type stop_reason = Quiescent | All_halted | Round_limit

(* Flat-word serialisation for bulk exchange. [encode] appends the
   message's words to the buffer; [decode buf off] rebuilds the
   message starting at [off]. The encoded width is whatever [encode]
   pushed (a backend frames each entry with its width) — it may differ
   from [protocol.msg_words], which stays the model-level accounting
   charge. *)
type 'msg codec = {
  encode : Ivec.t -> 'msg -> unit;
  decode : Ivec.t -> int -> 'msg;
}
