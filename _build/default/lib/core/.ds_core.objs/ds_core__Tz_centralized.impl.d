lib/core/tz_centralized.ml: Array Ds_graph Label Levels
