lib/core/query_protocol.mli: Ds_congest Ds_graph Ds_parallel Label
