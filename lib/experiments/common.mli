(** Shared plumbing for the experiment harness. *)

module Table = Ds_util.Table

type workload = {
  name : string;
  graph : Ds_graph.Graph.t;
  profile : Ds_graph.Props.profile;
  apsp : Ds_graph.Apsp.t;
}

val make_workload :
  ?pool:Ds_parallel.Pool.t ->
  seed:int -> family:Ds_graph.Gen.family -> n:int -> unit -> workload
(** Generate the graph, profile it and precompute exact APSP — the
    fixture every experiment measures against. Deterministic in
    [seed]; [pool] only spreads the APSP rows across domains and does
    not change the result. *)

val standard_families : n:int -> (string * Ds_graph.Gen.family) list
(** The families every multi-family experiment sweeps. *)

val log2i : int -> int
(** [ceil (log2 n)], at least 1. *)

val ln : int -> float
(** [log (float n)] — the natural log the paper's whp bounds use. *)

val stretch_cells : Ds_core.Eval.report -> string list
(** [max; avg; p99; violations] rendered for a table row. *)

val report_phases : Ds_congest.Metrics.t -> Ds_util.Report.phase list
(** The execution's completed phases converted to the structured-report
    representation, for the [phases] field of a {!Ds_util.Report.result}. *)

val round_profile : Ds_congest.Trace.t -> Ds_util.Report.round_profile
(** A trace's peak-congestion summary converted to the
    structured-report representation, for the [round_profiles] field
    of a {!Ds_util.Report.result}. *)

val far_sample :
  rng:Ds_util.Rng.t -> Ds_graph.Apsp.t -> eps:float -> count:int ->
  (int * int * int) array
(** Up to [count] ordered ε-far pairs, sampled without materialising
    all of them when the graph is large. *)
