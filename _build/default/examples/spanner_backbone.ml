(* Spanner backbone: the sketch construction implicitly builds a
   (2k-1)-spanner (union of cluster shortest-path trees). An overlay
   can keep only those edges as its "backbone" — fewer links to
   maintain — and pay at most a (2k-1) factor on any route.

   This example extracts the spanner from the distributed run, then
   compares (a) edge/maintenance counts and (b) the cost of a network-
   wide broadcast (one message per edge) on the backbone vs the full
   overlay.

   Run with: dune exec examples/spanner_backbone.exe *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Gen = Ds_graph.Gen
module Levels = Ds_core.Levels
module Spanner = Ds_core.Spanner

let () =
  let n = 300 in
  let g = Gen.erdos_renyi ~rng:(Rng.create 55) ~n ~avg_degree:12.0 () in
  let k = 3 in
  let levels = Levels.sample ~rng:(Rng.create 57) ~n ~k in
  let backbone, metrics = Spanner.of_distributed g ~levels in
  Printf.printf "overlay:  %d nodes, %d links\n" n (Graph.m g);
  Printf.printf "backbone: %d links (%.1f%%), built in %d rounds\n"
    (Graph.m backbone)
    (100.0 *. float_of_int (Graph.m backbone) /. float_of_int (Graph.m g))
    (Ds_congest.Metrics.rounds metrics);
  let stretch = Spanner.max_stretch g ~spanner:backbone in
  Printf.printf "worst route inflation: %.2fx (guarantee: <= %d)\n" stretch
    ((2 * k) - 1);
  (* A flood visits every edge twice (once per direction); fewer edges
     means proportionally cheaper maintenance traffic. *)
  Printf.printf "broadcast cost: %d messages on backbone vs %d on overlay\n"
    (2 * Graph.m backbone) (2 * Graph.m g);
  (* Average route inflation over a pair sample. *)
  let rng = Rng.create 59 in
  let ratios =
    Array.init 200 (fun _ ->
        let u = Rng.int rng n in
        let v = (u + 1 + Rng.int rng (n - 1)) mod n in
        let dg = Ds_graph.Dijkstra.sssp g ~src:u in
        let db = Ds_graph.Dijkstra.sssp backbone ~src:u in
        float_of_int db.(v) /. float_of_int (max 1 dg.(v)))
  in
  Printf.printf "route inflation over 200 random pairs: mean %.3fx, p99 %.3fx\n"
    (Ds_util.Stats.mean ratios)
    (Ds_util.Stats.percentile ratios 99.0)
