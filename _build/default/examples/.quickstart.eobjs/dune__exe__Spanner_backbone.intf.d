examples/spanner_backbone.mli:
