lib/baselines/vivaldi.ml: Array Ds_graph Ds_util Float
