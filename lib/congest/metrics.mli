(** Round / message / word accounting for CONGEST executions.

    A "message" is one payload crossing one edge in one direction in
    one round; a "word" is an O(log n)-bit block (one node ID or one
    distance), the unit the paper's message bounds are stated in. *)

type t

val create : unit -> t

val rounds : t -> int
val messages : t -> int
val words : t -> int
val max_msg_words : t -> int
val max_link_backlog : t -> int

val tick_round : t -> unit

(** Remove one round; used by the engine to avoid charging the final
    quiescence-probe round in which nothing happened. *)
val untick_round : t -> unit
val count_message : t -> words:int -> unit

val count_delivered : t -> messages:int -> words:int -> max_msg_words:int -> unit
(** Batch form of {!count_message}: fold in a chunk of [messages]
    deliveries totalling [words] words whose largest message was
    [max_msg_words] words. The engine's sharded delivery accumulates
    per-chunk counts and charges each chunk with one call, so the
    totals are independent of how the chunks interleaved. *)

val observe_backlog : t -> int -> unit

type phase = { name : string; rounds : int; messages : int; words : int }

val mark_phase : t -> string -> unit
(** Close the current phase under [name]; counters keep accumulating. *)

val phases : t -> phase list
(** Completed phases, in execution order. *)

val add : t -> t -> t
(** Pointwise sum (phases concatenated); for composing protocol runs. *)

val pp : Format.formatter -> t -> unit
(** Totals on one line — rounds, messages, words, [max_msg_words] and
    [max_link_backlog] (the Lemma 3.7 quantity) — followed by one
    indented line per completed phase. *)
