(** Experiment registry: id -> description + typed run, plus the
    report emitters that keep [EXPERIMENTS.md] / [EXPERIMENTS.json] in
    sync with the code.

    Every experiment module exposes [id]/[title]/[claim_id]/[claim]
    strings, [default] and [quick] parameter records, and a [run] that
    returns a {!Ds_util.Report.result} — measured values, constant-1
    bound checks, tables, CONGEST phase breakdowns and a verdict. The
    registry aggregates those into a result set and renders it. *)

type profile =
  | Full  (** the committed-artifact parameters (seconds per experiment) *)
  | Quick  (** scaled-down parameters for unit tests (sub-second) *)

val profile_name : profile -> string
(** ["full"] / ["quick"] — the [profile] field of the JSON output. *)

val profile_of_string : string -> profile option

type entry = {
  id : string;  (** stable experiment id, ["e1"].. ["e14"] *)
  title : string;
  claim_id : string;  (** paper statement label, e.g. ["Lemma 3.2"] *)
  claim : string;  (** one-sentence paraphrase of the claim *)
  run : profile:profile -> Ds_parallel.Pool.t -> Ds_util.Report.result;
      (** Runs the experiment's engine phases on the given pool.
          Experiments with no distributed phase ignore it. *)
}

val all : entry list
(** All experiments, in report order (e1..e14). *)

val find : string -> entry option

val run_one :
  ?profile:profile ->
  ?pool:Ds_parallel.Pool.t ->
  ?csv_dir:string ->
  entry ->
  Ds_util.Report.result
(** Run one experiment and print its tables, checks and verdict to
    stdout; with [csv_dir] also save each table as a CSV file there.
    [pool] (default {!Ds_parallel.Pool.sequential}) is borrowed, not
    owned: the caller shuts it down. *)

val run_all :
  ?profile:profile ->
  ?pool:Ds_parallel.Pool.t ->
  ?csv_dir:string ->
  unit ->
  Ds_util.Report.result list
(** {!run_one} over {!all}, in order. *)

val results :
  ?profile:profile -> ?pool:Ds_parallel.Pool.t -> unit -> Ds_util.Report.result list
(** Run every experiment silently and return the result set. *)

val preamble : string
(** Hand-written header of [EXPERIMENTS.md]; everything after it is
    generated. *)

val md_file : string
(** ["EXPERIMENTS.md"] *)

val json_file : string
(** ["EXPERIMENTS.json"] *)

val render :
  ?profile:profile -> ?pool:Ds_parallel.Pool.t -> unit -> string * string
(** Run every experiment and render [(markdown, json)] — the exact
    byte contents of {!md_file} and {!json_file}. Deterministic for a
    given profile: experiments fix their seeds and the emitters use
    fixed numeric formats, so two runs produce identical bytes. *)

val write_files :
  ?profile:profile ->
  ?pool:Ds_parallel.Pool.t ->
  dir:string ->
  unit ->
  string list
(** Regenerate {!md_file} and {!json_file} inside [dir]; returns the
    paths written. *)

val check_files :
  ?profile:profile ->
  ?pool:Ds_parallel.Pool.t ->
  dir:string ->
  unit ->
  (unit, string) result
(** Drift check: re-render in memory and byte-compare against the
    committed files in [dir]. [Error msg] names the first differing
    line of each stale or missing file. *)
