lib/core/levels.ml: Array Ds_util List
