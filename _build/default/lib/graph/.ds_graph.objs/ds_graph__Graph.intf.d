lib/graph/graph.mli:
