module Label = Ds_core.Label
module Family = Ds_sketch.Family
module Sketch = Ds_sketch.Sketch

type meta = {
  n : int;
  k : int;
  seed : int;
  graph_family : string;
  sketch_family : Family.t;
}

type mode = Heap | Mmap

type t = { meta : meta; sketch : Sketch.t; load_mode : mode }

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let magic = "DSKETCH1"
let version = 3

let mode_name = function Heap -> "heap" | Mmap -> "mmap"

let v ?(seed = 0) ?(graph_family = "") sketch =
  {
    meta =
      {
        n = Sketch.n sketch;
        k = Sketch.k sketch;
        seed;
        graph_family;
        sketch_family = Sketch.family sketch;
      };
    sketch;
    load_mode = Heap;
  }

let of_labels ?seed ?graph_family labels =
  if Array.length labels = 0 then
    invalid_arg "Sketch_store.of_labels: empty label set";
  v ?seed ?graph_family (Sketch.of_tz_labels labels)

let mapped_bytes t = Sketch.mapped_bytes t.sketch

(* FNV-1a, 64-bit. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let pad8 len = (8 - (len land 7)) land 7

let add_padded_string b s =
  Buffer.add_string b s;
  Buffer.add_string b (String.make (pad8 (String.length s)) '\000')

(* Canonical section order, shared by every version's writer:
   offsets, interleaved (dist, node) pivot pairs, interleaved
   (node, dist) entry pairs. Backing-independent — serialising a
   mapped store streams the very words it was mapped from. *)
let add_sections (s : Sketch.t) ~word = Sketch.iter_section_words s word

(* Common header prefix: magic through the two padded family
   strings. Returns the buffer positioned right after the graph
   family, i.e. at the pivot-words field. *)
let add_header_prefix b ~ver ~meta:{ n; k; seed; graph_family; sketch_family } =
  let word i = Buffer.add_int64_le b (Int64.of_int i) in
  Buffer.add_string b magic;
  word ver;
  word n;
  word k;
  word seed;
  let sf = Family.name sketch_family in
  word (String.length sf);
  add_padded_string b sf;
  word (String.length graph_family);
  add_padded_string b graph_family

let to_bytes t =
  let b = Buffer.create 4096 in
  let word i = Buffer.add_int64_le b (Int64.of_int i) in
  add_header_prefix b ~ver:version ~meta:t.meta;
  word (2 * Sketch.pivot_pairs t.sketch);
  word (Sketch.total_entries t.sketch);
  (* v3: a checksum over the header alone, so the mmap loader can
     validate everything it parses eagerly in O(1) without touching
     the payload pages. *)
  Buffer.add_int64_le b (fnv1a64 (Buffer.contents b));
  add_sections t.sketch ~word;
  let payload = Buffer.contents b in
  Buffer.add_int64_le b (fnv1a64 payload);
  Buffer.contents b

let to_bytes_v2 t =
  let b = Buffer.create 4096 in
  let word i = Buffer.add_int64_le b (Int64.of_int i) in
  add_header_prefix b ~ver:2 ~meta:t.meta;
  word (2 * Sketch.pivot_pairs t.sketch);
  add_sections t.sketch ~word;
  let payload = Buffer.contents b in
  Buffer.add_int64_le b (fnv1a64 payload);
  Buffer.contents b

let to_bytes_v1 t =
  let { n; k; seed; graph_family; sketch_family } = t.meta in
  if sketch_family <> Family.Tz then
    invalid_arg "Sketch_store.to_bytes_v1: only family tz has a v1 layout";
  let b = Buffer.create 4096 in
  let word i = Buffer.add_int64_le b (Int64.of_int i) in
  Buffer.add_string b magic;
  word 1;
  word n;
  word k;
  word seed;
  (* v1's lone family field was the graph family. *)
  word (String.length graph_family);
  add_padded_string b graph_family;
  add_sections t.sketch ~word;
  let payload = Buffer.contents b in
  Buffer.add_int64_le b (fnv1a64 payload);
  Buffer.contents b

(* Shared by the heap reader paths: the offset table, optional pivot
   section and entry section that follow the version-specific header,
   starting at byte [body]. [pivot_words] is [2nk] (v1, tz) or
   whatever the v2/v3 header declared; [declared_total] is the v3
   header's entry total, cross-checked against the offsets. *)
let read_sections s ~len ~body ~n ~k ~pivot_words ?declared_total
    ~sketch_family () =
  let word off = Int64.to_int (String.get_int64_le s off) in
  if len < body + (8 * (n + 1)) then
    error "truncated snapshot: offset table cut short (%d bytes)" len;
  let off = Array.init (n + 1) (fun i -> word (body + (8 * i))) in
  if off.(0) <> 0 then error "corrupt bunch offsets: first is %d" off.(0);
  for i = 0 to n - 1 do
    if off.(i + 1) < off.(i) then
      error "corrupt bunch offsets: not monotone at node %d" i
  done;
  let total = off.(n) in
  (match declared_total with
  | Some d when d <> total ->
    error "corrupt snapshot: header entry total %d disagrees with offsets %d" d
      total
  | _ -> ());
  let pivots_at = body + (8 * (n + 1)) in
  let ents_at = pivots_at + (8 * pivot_words) in
  let expected = ents_at + (8 * 2 * total) + 8 in
  if len <> expected then
    error "truncated or oversized snapshot: expected %d bytes, got %d" expected
      len;
  let stored = String.get_int64_le s (len - 8) in
  let computed = fnv1a64 (String.sub s 0 (len - 8)) in
  if stored <> computed then
    error "checksum mismatch: stored %Lx, computed %Lx — corrupt snapshot"
      stored computed;
  let half = pivot_words / 2 in
  let pivot_dist = Array.make half 0 and pivot_node = Array.make half 0 in
  for i = 0 to half - 1 do
    pivot_dist.(i) <- word (pivots_at + (8 * 2 * i));
    pivot_node.(i) <- word (pivots_at + (8 * ((2 * i) + 1)))
  done;
  let ent_node = Array.make total 0 and ent_dist = Array.make total 0 in
  for u = 0 to n - 1 do
    let prev = ref (-1) in
    for j = off.(u) to off.(u + 1) - 1 do
      let at = ents_at + (8 * 2 * j) in
      let w = word at and d = word (at + 8) in
      if w < 0 || w >= n then
        error "corrupt bunch section: node %d out of range at entry %d" w j;
      if w <= !prev then
        error "corrupt bunch section: entries of node %d not sorted" u;
      prev := w;
      ent_node.(j) <- w;
      ent_dist.(j) <- d
    done
  done;
  match
    Sketch.of_arrays ~family:sketch_family ~k ~pivot_dist ~pivot_node ~off
      ~ent_node ~ent_dist
  with
  | sketch -> sketch
  | exception Invalid_argument m -> error "corrupt snapshot: %s" m

(* Version-agnostic header parse over a prefix string [s] of the file
   ([avail] bytes of it; [file_len] is the whole file). Returns the
   parsed meta, the declared pivot/total words (v3), the byte offset
   where the sections begin, and the version. Validates the v3 header
   checksum — everything the mmap loader trusts eagerly. *)
type header = {
  h_ver : int;
  h_meta : meta;
  h_pivot_words : int;
  h_total : int;  (* -1 before v3 *)
  h_body : int;
}

let parse_header s ~avail =
  if avail < 16 then error "truncated snapshot: %d bytes, no header" avail;
  if String.sub s 0 8 <> magic then
    error "bad magic %S: not a distsketch snapshot" (String.sub s 0 8);
  let word off = Int64.to_int (String.get_int64_le s off) in
  let ver = word 8 in
  if ver <> 1 && ver <> 2 && ver <> version then
    error "unsupported snapshot version %d (this reader expects <= %d)" ver
      version;
  if avail < 48 then error "truncated snapshot header: %d bytes" avail;
  let n = word 16 and k = word 24 and seed = word 32 in
  if n < 1 || k < 1 then error "bad snapshot header: n=%d k=%d" n k;
  let read_string at =
    let slen = word at in
    if slen < 0 || slen > avail - at - 8 then
      error "bad snapshot header: family length %d" slen;
    (String.sub s (at + 8) slen, at + 8 + slen + pad8 slen)
  in
  if ver = 1 then begin
    (* v1: one family string — the graph family — then the
       unconditional tz pivot section. *)
    let graph_family, body = read_string 40 in
    {
      h_ver = 1;
      h_meta = { n; k; seed; graph_family; sketch_family = Family.Tz };
      h_pivot_words = 2 * n * k;
      h_total = -1;
      h_body = body;
    }
  end
  else begin
    let sf_name, after_sf = read_string 40 in
    let sketch_family =
      match Family.of_string sf_name with
      | Ok f -> f
      | Error _ -> error "unknown sketch family %S in snapshot header" sf_name
    in
    let graph_family, after_gf = read_string after_sf in
    let tail_words = if ver = 2 then 8 else 24 in
    if avail < after_gf + tail_words then
      error "truncated snapshot header: %d bytes" avail;
    let pivot_words = word after_gf in
    let want_pivots = if sketch_family = Family.Tz then 2 * n * k else 0 in
    if pivot_words <> want_pivots then
      error "bad snapshot header: pivot section %d words, family %s wants %d"
        pivot_words sf_name want_pivots;
    let total =
      if ver = 2 then -1
      else begin
        let total = word (after_gf + 8) in
        if total < 0 then error "bad snapshot header: entry total %d" total;
        let stored = String.get_int64_le s (after_gf + 16) in
        let computed = fnv1a64 (String.sub s 0 (after_gf + 16)) in
        if stored <> computed then
          error
            "header checksum mismatch: stored %Lx, computed %Lx — corrupt \
             snapshot header"
            stored computed;
        total
      end
    in
    {
      h_ver = ver;
      h_meta = { n; k; seed; graph_family; sketch_family };
      h_pivot_words = pivot_words;
      h_total = total;
      h_body = (after_gf + tail_words);
    }
  end

let of_bytes s =
  let len = String.length s in
  let h = parse_header s ~avail:len in
  let declared_total = if h.h_total >= 0 then Some h.h_total else None in
  let sketch =
    read_sections s ~len ~body:h.h_body ~n:h.h_meta.n ~k:h.h_meta.k
      ~pivot_words:h.h_pivot_words ?declared_total
      ~sketch_family:h.h_meta.sketch_family ()
  in
  { meta = h.h_meta; sketch; load_mode = Heap }

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_bytes t))

(* Header prefix large enough for any header this writer produces
   (the two family strings are the only variable-length fields). *)
let max_header_bytes = 65536

let load_mmap path =
  let size, prefix =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let size = in_channel_length ic in
        (size, really_input_string ic (min size max_header_bytes)))
  in
  if size < 16 then error "truncated snapshot: %d bytes, no header" size;
  if size land 7 <> 0 then
    error "misaligned snapshot: %d bytes is not a multiple of 8 — cannot map"
      size;
  let h = parse_header prefix ~avail:(String.length prefix) in
  if h.h_ver < version then
    error
      "snapshot version %d predates the mappable v3 layout — heap-load and \
       re-save to upgrade"
      h.h_ver;
  let { n; k; _ } = h.h_meta in
  if h.h_body land 7 <> 0 then
    error "misaligned snapshot: sections start at byte %d" h.h_body;
  let expected =
    h.h_body + (8 * (n + 1)) + (8 * h.h_pivot_words) + (8 * 2 * h.h_total) + 8
  in
  if size <> expected then
    error "truncated or oversized snapshot: expected %d bytes, got %d" expected
      size;
  let buf =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        match
          Unix.map_file fd Bigarray.int Bigarray.c_layout false [| size / 8 |]
        with
        | ga -> Bigarray.array1_of_genarray ga
        | exception (Unix.Unix_error _ | Sys_error _) ->
          error "cannot map snapshot %s" path)
  in
  let sketch =
    match
      Sketch.of_mapped ~family:h.h_meta.sketch_family ~k ~n ~total:h.h_total
        ~buf ~off_at:(h.h_body / 8)
    with
    | sketch -> sketch
    | exception Invalid_argument m -> error "corrupt snapshot: %s" m
  in
  { meta = h.h_meta; sketch; load_mode = Mmap }

let load ?(mode = Heap) path =
  match mode with
  | Mmap -> load_mmap path
  | Heap ->
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_bytes s
