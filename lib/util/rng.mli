(** Deterministic splittable pseudo-random generator (SplitMix64).

    Every distributed node gets its own independent stream via {!split},
    mirroring the paper's "each node flips local coins" while keeping
    whole runs reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. *)

val mix : int -> int
(** [mix x] is a stateless avalanche hash of [x], non-negative. Lets
    callers derive reproducible per-event values (e.g. per-message
    link delays) from coordinates instead of from a shared stateful
    stream, which would make draw order — and hence results — depend
    on execution interleaving. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent generators. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is a Bernoulli trial with success probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t m n] picks [m] distinct ints from
    [\[0, n)], in increasing order. Requires [m <= n]. *)
