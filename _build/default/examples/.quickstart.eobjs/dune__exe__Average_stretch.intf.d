examples/average_stretch.mli:
