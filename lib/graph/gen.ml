module Rng = Ds_util.Rng

type weight_spec = { wmin : int; wmax : int }

let unit_weights = { wmin = 1; wmax = 1 }
let default_weights = { wmin = 1; wmax = 100 }

let draw_weight rng { wmin; wmax } =
  if wmin > wmax || wmin <= 0 then invalid_arg "Gen: bad weight spec";
  Rng.int_in rng wmin wmax

(* A random spanning skeleton: node i >= 1 attaches to a uniformly
   random node < i. Guarantees connectivity for every family below. *)
let spanning_edges rng n add_edge =
  for v = 1 to n - 1 do
    add_edge v (Rng.int rng v)
  done

module Edge_set = struct
  type t = { tbl : (int * int, int) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 64 }
  let key u v = (min u v, max u v)
  let mem t u v = Hashtbl.mem t.tbl (key u v)

  let add t u v w =
    if u <> v && not (mem t u v) then Hashtbl.replace t.tbl (key u v) w

  let to_list t = Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) t.tbl []
  let size t = Hashtbl.length t.tbl
end

let erdos_renyi ~rng ?(weights = default_weights) ~n ~avg_degree () =
  if n < 2 then invalid_arg "erdos_renyi: n < 2";
  let es = Edge_set.create () in
  spanning_edges rng n (fun u v -> Edge_set.add es u v (draw_weight rng weights));
  (* Sample the remaining ER edges by expected count to stay O(m). *)
  let p = avg_degree /. float_of_int (n - 1) in
  let expected = p *. float_of_int n *. float_of_int (n - 1) /. 2.0 in
  let tries = int_of_float (ceil expected) in
  for _ = 1 to tries do
    let u = Rng.int rng n and v = Rng.int rng n in
    Edge_set.add es u v (draw_weight rng weights)
  done;
  Graph.of_edges ~n (Edge_set.to_list es)

let random_geometric ~rng ~n ~radius () =
  if n < 2 then invalid_arg "random_geometric: n < 2";
  let xs = Array.init n (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Rng.float rng 1.0) in
  let dist2 i j =
    let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
    (dx *. dx) +. (dy *. dy)
  in
  let scale = 1000.0 in
  let w_of i j = 1 + int_of_float (scale *. sqrt (dist2 i j)) in
  let es = Edge_set.create () in
  let r2 = radius *. radius in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if dist2 i j <= r2 then Edge_set.add es i j (w_of i j)
    done
  done;
  (* Stitch components: attach each node i >= 1 to its nearest
     predecessor if it has no edge yet to any predecessor. *)
  let reachable = Array.make n false in
  reachable.(0) <- true;
  for i = 1 to n - 1 do
    let nearest = ref (-1) in
    for j = 0 to i - 1 do
      if dist2 i j <= r2 then reachable.(i) <- true;
      if !nearest < 0 || dist2 i j < dist2 i !nearest then nearest := j
    done;
    if not reachable.(i) then begin
      Edge_set.add es i !nearest (w_of i !nearest);
      reachable.(i) <- true
    end
  done;
  Graph.of_edges ~n (Edge_set.to_list es)

let grid_like ~rng ~weights ~rows ~cols ~wrap =
  if rows < 1 || cols < 1 || rows * cols < 2 then invalid_arg "grid: too small";
  let id r c = (r * cols) + c in
  let es = Edge_set.create () in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        Edge_set.add es (id r c) (id r (c + 1)) (draw_weight rng weights)
      else if wrap && cols > 2 then
        Edge_set.add es (id r c) (id r 0) (draw_weight rng weights);
      if r + 1 < rows then
        Edge_set.add es (id r c) (id (r + 1) c) (draw_weight rng weights)
      else if wrap && rows > 2 then
        Edge_set.add es (id r c) (id 0 c) (draw_weight rng weights)
    done
  done;
  Graph.of_edges ~n:(rows * cols) (Edge_set.to_list es)

let grid ~rng ?(weights = default_weights) ~rows ~cols () =
  grid_like ~rng ~weights ~rows ~cols ~wrap:false

let torus ~rng ?(weights = default_weights) ~rows ~cols () =
  grid_like ~rng ~weights ~rows ~cols ~wrap:true

let ring ~rng ?(weights = default_weights) ~n () =
  if n < 3 then invalid_arg "ring: n < 3";
  let es = Edge_set.create () in
  for i = 0 to n - 1 do
    Edge_set.add es i ((i + 1) mod n) (draw_weight rng weights)
  done;
  Graph.of_edges ~n (Edge_set.to_list es)

let ring_chords ~rng ?(weights = default_weights) ~n ~chords () =
  if n < 4 then invalid_arg "ring_chords: n < 4";
  let es = Edge_set.create () in
  for i = 0 to n - 1 do
    Edge_set.add es i ((i + 1) mod n) (draw_weight rng weights)
  done;
  let budget = ref (4 * chords) in
  while Edge_set.size es < n + chords && !budget > 0 do
    decr budget;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && (u + 1) mod n <> v && (v + 1) mod n <> u then
      Edge_set.add es u v (draw_weight rng weights)
  done;
  Graph.of_edges ~n (Edge_set.to_list es)

let random_tree ~rng ?(weights = default_weights) ~n () =
  if n < 2 then invalid_arg "random_tree: n < 2";
  let es = Edge_set.create () in
  spanning_edges rng n (fun u v -> Edge_set.add es u v (draw_weight rng weights));
  Graph.of_edges ~n (Edge_set.to_list es)

let preferential_attachment ~rng ?(weights = default_weights) ~n
    ~edges_per_node () =
  if n < 2 then invalid_arg "preferential_attachment: n < 2";
  if edges_per_node < 1 then invalid_arg "preferential_attachment: k < 1";
  let es = Edge_set.create () in
  (* Repeated-endpoint list: picking a uniform entry is proportional to
     degree. *)
  let endpoints = ref [ 0 ] in
  let count = ref 1 in
  let pick () =
    let i = Rng.int rng !count in
    List.nth !endpoints i
  in
  for v = 1 to n - 1 do
    let targets = min edges_per_node v in
    let added = ref 0 and tries = ref 0 in
    while !added < targets && !tries < 20 * targets do
      incr tries;
      let u = if v = 1 then 0 else pick () in
      if u <> v && not (Edge_set.mem es u v) then begin
        Edge_set.add es u v (draw_weight rng weights);
        endpoints := u :: !endpoints;
        incr count;
        incr added
      end
    done;
    if !added = 0 then begin
      (* Degenerate fallback keeps the graph connected. *)
      Edge_set.add es v (Rng.int rng v) (draw_weight rng weights)
    end;
    endpoints := v :: !endpoints;
    incr count
  done;
  Graph.of_edges ~n (Edge_set.to_list es)

let hypercube ~rng ?(weights = default_weights) ~dims () =
  if dims < 1 || dims > 20 then invalid_arg "hypercube: dims out of range";
  let n = 1 lsl dims in
  let es = Edge_set.create () in
  for u = 0 to n - 1 do
    for b = 0 to dims - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then Edge_set.add es u v (draw_weight rng weights)
    done
  done;
  Graph.of_edges ~n (Edge_set.to_list es)

let star_ring ~n ~heavy =
  if n < 5 then invalid_arg "star_ring: n < 5";
  if heavy < 1 then invalid_arg "star_ring: heavy < 1";
  (* Node 0 is the hub; nodes 1..n-1 form the unit-weight ring. *)
  let ring_n = n - 1 in
  let es = ref [] in
  for i = 1 to ring_n do
    let next = if i = ring_n then 1 else i + 1 in
    es := (i, next, 1) :: !es;
    es := (0, i, heavy) :: !es
  done;
  Graph.of_edges ~n !es

let random_regular ~rng ?(weights = default_weights) ~n ~degree () =
  if n < degree + 1 then invalid_arg "random_regular: n too small";
  if degree < 2 then invalid_arg "random_regular: degree < 2";
  (* Stub-matching with rejection of collisions, then a spanning
     skeleton to repair any disconnection; degrees stay within +-1. *)
  let es = Edge_set.create () in
  let stubs = ref [] in
  for u = 0 to n - 1 do
    for _ = 1 to degree do
      stubs := u :: !stubs
    done
  done;
  let stubs = Array.of_list !stubs in
  Rng.shuffle rng stubs;
  let len = Array.length stubs in
  let i = ref 0 in
  while !i + 1 < len do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    Edge_set.add es u v (draw_weight rng weights);
    i := !i + 2
  done;
  (* Repair connectivity with a lightweight skeleton over any isolated
     parts: attach node v to a random earlier node when its component
     is not yet linked. This perturbs degrees by at most 1. *)
  let adj = Array.make n [] in
  List.iter
    (fun (u, v, _) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    (Edge_set.to_list es);
  let comp = Array.make n (-1) in
  let rec mark u c =
    if comp.(u) < 0 then begin
      comp.(u) <- c;
      List.iter (fun v -> mark v c) adj.(u)
    end
  in
  for u = 0 to n - 1 do
    if comp.(u) < 0 then begin
      mark u u;
      if u > 0 then Edge_set.add es u (Rng.int rng u) (draw_weight rng weights)
    end
  done;
  Graph.of_edges ~n (Edge_set.to_list es)

let complete ~rng ?(weights = default_weights) ~n () =
  if n < 2 then invalid_arg "complete: n < 2";
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v, draw_weight rng weights) :: !es
    done
  done;
  Graph.of_edges ~n !es

let barbell ~rng ?(weights = default_weights) ~clique ~bridge () =
  if clique < 2 then invalid_arg "barbell: clique < 2";
  if bridge < 1 then invalid_arg "barbell: bridge < 1";
  let n = (2 * clique) + bridge in
  let es = ref [] in
  let add u v = es := (u, v, draw_weight rng weights) :: !es in
  (* Left clique on [0, clique), right clique on the last [clique]
     nodes, bridge path in between. *)
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      add u v;
      add (u + clique + bridge) (v + clique + bridge)
    done
  done;
  for i = clique - 1 to clique + bridge - 1 do
    add i (i + 1)
  done;
  Graph.of_edges ~n !es

let caterpillar ~rng ?(weights = default_weights) ~spine ~legs () =
  if spine < 2 then invalid_arg "caterpillar: spine < 2";
  if legs < 0 then invalid_arg "caterpillar: legs < 0";
  let n = spine * (1 + legs) in
  let es = ref [] in
  let add u v = es := (u, v, draw_weight rng weights) :: !es in
  for i = 0 to spine - 2 do
    add i (i + 1)
  done;
  for i = 0 to spine - 1 do
    for l = 0 to legs - 1 do
      add i (spine + (i * legs) + l)
    done
  done;
  Graph.of_edges ~n !es

let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph G {\n  node [shape=circle];\n";
  List.iter
    (fun (u, v, w) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d [label=\"%d\"];\n" u v w))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

type family =
  | Erdos_renyi of { avg_degree : float }
  | Geometric of { radius : float }
  | Grid
  | Torus
  | Ring_chords of { chords_frac : float }
  | Tree
  | Power_law of { edges_per_node : int }
  | Star_ring of { heavy_frac : float }

let family_name = function
  | Erdos_renyi _ -> "erdos-renyi"
  | Geometric _ -> "geometric"
  | Grid -> "grid"
  | Torus -> "torus"
  | Ring_chords _ -> "ring-chords"
  | Tree -> "tree"
  | Power_law _ -> "power-law"
  | Star_ring _ -> "star-ring"

(* Streaming generators for the scale experiments: edges go straight
   into a {!Graph.Builder} (flat int vectors, one CSR pass), so peak
   memory is O(m) words with no per-edge boxing — the hashtable
   [Edge_set] above costs ~10x that and dies first at n = 10^6.
   Duplicate draws are resolved by the builder ([`Keep_first]), which
   matches [Edge_set.add]'s first-write-wins semantics. *)

let stream_tree ~rng ~weights ~n b =
  spanning_edges rng n (fun v u -> Graph.Builder.add_edge b u v (draw_weight rng weights))

let streaming_tree ~rng ?(weights = unit_weights) ~n () =
  if n < 2 then invalid_arg "streaming_tree: n < 2";
  let b = Graph.Builder.create ~expect_edges:(n - 1) ~n () in
  stream_tree ~rng ~weights ~n b;
  Graph.Builder.build ~on_duplicate:`Keep_first b

let streaming_sparse ~rng ?(weights = unit_weights) ~n ~avg_degree () =
  if n < 2 then invalid_arg "streaming_sparse: n < 2";
  if avg_degree < 2.0 then invalid_arg "streaming_sparse: avg_degree < 2";
  (* Spanning skeleton for connectivity + expected-count extra edges,
     exactly the [erdos_renyi] recipe minus the hashtable. *)
  let extra =
    int_of_float (ceil ((avg_degree -. 2.0) *. float_of_int n /. 2.0))
  in
  let b = Graph.Builder.create ~expect_edges:(n - 1 + extra) ~n () in
  stream_tree ~rng ~weights ~n b;
  for _ = 1 to extra do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then Graph.Builder.add_edge b u v (draw_weight rng weights)
  done;
  Graph.Builder.build ~on_duplicate:`Keep_first b

let streaming_torus ~rng ?(weights = unit_weights) ~n () =
  let side = max 3 (int_of_float (sqrt (float_of_int n))) in
  let id r c = (r * side) + c in
  let b = Graph.Builder.create ~expect_edges:(2 * side * side) ~n:(side * side) () in
  for r = 0 to side - 1 do
    for c = 0 to side - 1 do
      Graph.Builder.add_edge b (id r c)
        (id r ((c + 1) mod side))
        (draw_weight rng weights);
      Graph.Builder.add_edge b (id r c)
        (id ((r + 1) mod side) c)
        (draw_weight rng weights)
    done
  done;
  Graph.Builder.build ~on_duplicate:`Keep_first b

type scale_family = S_sparse of { avg_degree : float } | S_torus | S_tree

let scale_family_name = function
  | S_sparse _ -> "sparse"
  | S_torus -> "torus"
  | S_tree -> "tree"

let scale_family_of_string ?(avg_degree = 8.0) s =
  match s with
  | "sparse" -> S_sparse { avg_degree }
  | "torus" -> S_torus
  | "tree" -> S_tree
  | s -> invalid_arg ("unknown scale family: " ^ s)

let build_scale ~rng ?(weights = unit_weights) family ~n =
  match family with
  | S_sparse { avg_degree } -> streaming_sparse ~rng ~weights ~n ~avg_degree ()
  | S_torus -> streaming_torus ~rng ~weights ~n ()
  | S_tree -> streaming_tree ~rng ~weights ~n ()

let build ~rng ?(weights = default_weights) family ~n =
  match family with
  | Erdos_renyi { avg_degree } -> erdos_renyi ~rng ~weights ~n ~avg_degree ()
  | Geometric { radius } -> random_geometric ~rng ~n ~radius ()
  | Grid ->
    let side = max 2 (int_of_float (sqrt (float_of_int n))) in
    grid ~rng ~weights ~rows:side ~cols:side ()
  | Torus ->
    let side = max 3 (int_of_float (sqrt (float_of_int n))) in
    torus ~rng ~weights ~rows:side ~cols:side ()
  | Ring_chords { chords_frac } ->
    let chords = max 1 (int_of_float (chords_frac *. float_of_int n)) in
    ring_chords ~rng ~weights ~n ~chords ()
  | Tree -> random_tree ~rng ~weights ~n ()
  | Power_law { edges_per_node } ->
    preferential_attachment ~rng ~weights ~n ~edges_per_node ()
  | Star_ring { heavy_frac } ->
    let heavy = max 1 (int_of_float (heavy_frac *. float_of_int n)) in
    star_ring ~n ~heavy
