(** Compact immutable distance oracle compiled from a built label set.

    The serving-side counterpart of {!Ds_core.Label}: the per-node
    hashtables are flattened into five plain int arrays — pivots
    node-major, bunches concatenated in node-id-sorted order behind a
    per-node offset table — so a query is [O(k log |B|)] binary
    searches over contiguous memory with no hashing, no boxing and no
    per-query allocation. {!query} is query-equivalent to
    {!Ds_core.Label.query} (same level scan, same tie behaviour, pinned
    by test), and {!query_batch} fans a pair array out across a
    {!Ds_parallel.Pool} with one result slot per index, so answers are
    bit-identical under any pool size. *)

type t = private {
  n : int;
  k : int;
  pivot_dist : int array;  (** [n·k], node-major: [d(u, A_i)] at [u·k + i] *)
  pivot_node : int array;  (** [n·k], node-major: [p_i(u)] at [u·k + i] *)
  bunch_off : int array;  (** [n+1] cumulative bunch sizes *)
  bunch_node : int array;
      (** bunch members, strictly increasing within each node's slice
          [bunch_off.(u) .. bunch_off.(u+1) - 1] *)
  bunch_dist : int array;  (** distances aligned with [bunch_node] *)
}

val of_labels : Ds_core.Label.t array -> t
(** Compile a label set. Requires [labels.(i).owner = i] and a uniform
    [k]; raises [Invalid_argument] otherwise. *)

val of_store : Sketch_store.t -> t
(** Compile a loaded snapshot's labels — the serving process's whole
    startup path: [load] then [of_store]. *)

val n : t -> int
(** Node count; valid query endpoints are [0 .. n-1]. *)

val k : t -> int
(** Hierarchy depth shared by every compiled label. *)

val size_words : t -> int
(** Total size in the paper's units: the sum of
    {!Ds_core.Label.size_words} over all nodes. *)

val bunch_dist : t -> int -> int -> int option
(** [bunch_dist t u w] is [d(u,w)] when [w ∈ B(u)] — one binary
    search. *)

val query : t -> int -> int -> int
(** [query t u v] = [Label.query labels.(u) labels.(v)] on the labels
    the oracle was compiled from: scan levels upward, return the first
    finite triangle estimate (the smaller of the two directions). *)

val query_bidirectional : t -> int -> int -> int
(** [= Label.query_bidirectional labels.(u) labels.(v)]: minimum over
    every level and both directions. *)

val query_probes : t -> int -> int -> int * int
(** [(estimate, probes)] where [probes] counts the array lookups the
    query performed (pivot-pair loads plus binary-search comparisons) —
    a deterministic per-query work measure, used by experiment E8 to
    put the local oracle next to the in-network exchange without a
    wall clock. *)

val query_batch :
  ?pool:Ds_parallel.Pool.t -> ?obs:Ds_obs.Obs.t -> t -> (int * int) array ->
  int array
(** Answer every pair, fanning out across the pool (default
    sequential). Result slot [i] depends only on pair [i], so the
    output is identical for every pool size. [obs] counts answered
    queries on the [oracle.queries] counter, one add per chunk. *)

val query_batch_flat :
  ?pool:Ds_parallel.Pool.t -> ?obs:Ds_obs.Obs.t -> t -> int array -> int array
(** Same as {!query_batch} over the flat layout of
    {!Workload.pairs_flat} (pair [i] at indices [2i], [2i+1]); the fast
    path. Endpoints are inline ints (no tuple pointer chase) and work
    is dealt in 8-pair blocks, so each domain's result writes are
    cache-line aligned — this is what let batch throughput actually
    scale with the pool (bench B12). Raises [Invalid_argument] on an
    odd-length array. *)

type batch_stats = {
  pairs : int;
  elapsed_ns : float;  (** wall-clock of the parallel batch *)
  qps : float;  (** pairs / elapsed seconds *)
  latency_ns : Ds_util.Stats.summary;
      (** distribution of single-query latencies, measured over a
          sequential sample of the batch (timing inside the parallel
          loop would perturb it) *)
}

val run_batch :
  ?pool:Ds_parallel.Pool.t ->
  ?obs:Ds_obs.Obs.t ->
  ?latency_sample:int ->
  t ->
  (int * int) array ->
  int array * batch_stats
(** {!query_batch} plus timing: the whole batch is timed once for
    throughput, then up to [latency_sample] (default 1024) queries are
    re-run sequentially one-by-one for the latency distribution. The
    returned answers are those of the parallel run. *)

val run_batch_flat :
  ?pool:Ds_parallel.Pool.t ->
  ?obs:Ds_obs.Obs.t ->
  ?latency_sample:int ->
  t ->
  int array ->
  int array * batch_stats
(** {!run_batch} over the flat pair layout — the serving path the CLI
    uses. *)
