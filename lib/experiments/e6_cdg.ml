(** E6 — Theorem 1.2 / 4.6: (ε,k)-CDG sketches.

    Paper claims: size O(k (ε^{-1} log n)^{1/k} log n) words, stretch
    8k-1 with ε-slack, O(k S (ε^{-1} log n)^{1/k} log n) rounds. The
    label-transfer (cell broadcast) share of the cost is reported
    separately: the paper leaves that step implicit. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Stats = Ds_util.Stats
module Cdg = Ds_core.Cdg
module Eval = Ds_core.Eval

type params = { seed : int; n : int; grid : (float * int) list }

let default =
  {
    seed = 6;
    n = 400;
    grid = [ (0.25, 1); (0.25, 2); (0.25, 3); (0.1, 1); (0.1, 2); (0.1, 3) ];
  }

let quick = { seed = 6; n = 120; grid = [ (0.25, 1); (0.25, 2) ] }

let id = "e6"
let title = "(eps,k)-CDG sketches"
let claim_id = "Theorem 1.2 / 4.6"

let claim =
  "(ε,k)-CDG sketches have O(k (ε^{-1} log n)^{1/k} log n) words and \
   stretch 8k-1 with ε-slack, built in O(k S (ε^{-1} log n)^{1/k} log n) \
   rounds"

let bound_expr =
  "stretch `8k-1` on ε-far pairs; size falling as `(ε^{-1} ln n)^{1/k}` in k"

let prose =
  "Zero violations and measured far-pair stretch far below the 8k-1 \
   bound at every grid point. Sketch size falls steeply in k, exactly \
   as (ε^{-1} log n)^{1/k} predicts. The label-transfer step (cell \
   broadcast) the paper leaves implicit stays a small share of total \
   messages, justifying its omission from the paper's accounting; the \
   transfer carries the actual serialized label over the wire \
   (`Label.to_words`), and a unit test checks the deserialized sketch \
   equals the net node's label."

let run ?pool { seed; n; grid } =
  let w =
    Common.make_workload ?pool ~seed
      ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
      ~n ()
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "E6: (eps,k)-CDG sketches (erdos-renyi, n=%d, S=%d) — \
                         Theorem 4.6"
           n w.Common.profile.Ds_graph.Props.s)
      ~headers:
        [
          "eps"; "k"; "bound 8k-1"; "|N|"; "mean words"; "rounds";
          "transfer msgs%"; "far max"; "far avg"; "far p99"; "viol";
        ]
  in
  let checks = ref [] in
  let worst_share = ref 0.0 in
  let size_by_k = Hashtbl.create 8 in
  let phases = ref [] in
  List.iter
    (fun (eps, k) ->
      let r =
        Cdg.build_distributed ?pool ~rng:(Rng.create (seed + k)) w.Common.graph ~eps
          ~k
      in
      let far =
        Common.far_sample ~rng:(Rng.create (seed + 19)) w.Common.apsp ~eps
          ~count:3000
      in
      let report =
        Eval.on_pairs
          ~query:(fun u v -> Cdg.query r.Cdg.sketches.(u) r.Cdg.sketches.(v))
          far
      in
      let sizes = Eval.size_summary Cdg.size_words r.Cdg.sketches in
      let share =
        100.0
        *. float_of_int (Metrics.messages r.Cdg.transfer_metrics)
        /. float_of_int (Metrics.messages r.Cdg.metrics)
      in
      worst_share := max !worst_share share;
      Hashtbl.replace size_by_k (eps, k) sizes.Stats.mean;
      let bound = float_of_int ((8 * k) - 1) in
      checks :=
        Report.check ~bound
          ~ok:(report.Eval.violations = 0 && report.Eval.max_stretch <= bound)
          (Printf.sprintf "far-pair max stretch (eps=%g, k=%d)" eps k)
          report.Eval.max_stretch
        :: !checks;
      if !phases = [] then
        phases :=
          [
            ( Printf.sprintf "CDG build (erdos-renyi, n=%d, eps=%g, k=%d)" n
                eps k,
              Common.report_phases r.Cdg.metrics );
          ];
      Table.add_row t
        ([
           Table.cell_float eps;
           Table.cell_int k;
           Table.cell_int ((8 * k) - 1);
           Table.cell_int (List.length r.Cdg.net);
           Table.cell_float sizes.Stats.mean;
           Table.cell_int (Metrics.rounds r.Cdg.metrics);
           Table.cell_float ~decimals:1 share;
         ]
        @ Common.stretch_cells report))
    grid;
  let checks = List.rev !checks in
  let checks =
    checks
    @ (match
         ( Hashtbl.find_opt size_by_k (0.25, 1),
           Hashtbl.find_opt size_by_k (0.25, 2) )
       with
      | Some s1, Some s2 ->
        [
          Report.check ~bound:s1 ~ok:(s2 < s1)
            "mean words shrink with k (eps=0.25, k=2 vs k=1)" s2;
        ]
      | _ -> [])
    @ [
        Report.check ~ok:(!worst_share <= 15.0)
          "label-transfer share of messages, worst grid point (% <= 15)"
          !worst_share;
      ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t ];
    phases = !phases;
    round_profiles = [];
    verdict = Report.Reproduced;
  }
