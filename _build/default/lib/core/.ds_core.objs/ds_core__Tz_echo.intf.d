lib/core/tz_echo.mli: Ds_congest Ds_graph Ds_parallel Label Levels
