(** Compact immutable sketch container, shared by every family.

    One flat layout serves all three families: an optional node-major
    pivot table (Thorup–Zwick only) plus per-node entry slices behind a
    cumulative offset table, each entry a [(node, dist)] pair with the
    node ids strictly increasing inside a slice. For [Tz] the entries
    are the bunch; for [Landmark] they are the per-node (landmark,
    exact dist) map merged over all [k·r] sets; for [Bottomk] they are
    the bottom-k all-distance sketch. The family tag dispatches the
    estimator: level scan with triangle estimates for [Tz], a
    merge-intersection [min d(u,w) + d(w,v)] over common entries for
    the other two.

    The payload lives behind one of two backings: plain heap [int
    array]s (built sketches, v1/v2/v3 heap loads) or a [Bigarray]
    word window mapped straight over a v3 snapshot file
    ([Sketch_store.load ~mode:Mmap] — zero copies, the page cache is
    the working set). The hot estimators are compiled once per backing
    (no per-access indirect call); cold accessors dispatch per access.

    Queries are allocation-free (top-level tail recursions over plain
    ints — see the note in [lib/oracle/oracle.ml] about minor-heap
    stalls serialising batch domains), so this is the serving-path
    representation as well as the snapshot one. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Word window over a mapped snapshot: OCaml ints stored untagged,
    one 64-bit little-endian word each — exactly the v3 file words. *)

type t

val of_tz_labels : Ds_core.Label.t array -> t
(** Compile a Thorup–Zwick label set (family [Tz]). Requires
    [labels.(i).owner = i] and a uniform [k]; raises
    [Invalid_argument] otherwise. *)

val v : family:Family.t -> k:int -> (int * int) array array -> t
(** [v ~family ~k entries] builds a non-TZ sketch from per-node
    [(node, dist)] entry arrays, each sorted strictly increasing by
    node id. Raises [Invalid_argument] on family [Tz] (use
    {!of_tz_labels}), an empty node set, unsorted/duplicate entries,
    out-of-range entry nodes, or negative distances. *)

val of_arrays :
  family:Family.t ->
  k:int ->
  pivot_dist:int array ->
  pivot_node:int array ->
  off:int array ->
  ent_node:int array ->
  ent_dist:int array ->
  t
(** Validating constructor over the flat arrays themselves — the
    heap snapshot-load path. Checks array-length coherence, offset
    monotonicity, per-slice entry order and (for [Tz]) that every
    finite pivot names an in-range node; raises [Invalid_argument]
    with a ["Sketch.of_arrays: …"] message on any violation. *)

val of_mapped :
  family:Family.t -> k:int -> n:int -> total:int -> buf:buf -> off_at:int -> t
(** Zero-copy constructor over a mapped word window. [off_at] is the
    word index of the offset table; the pivot and entry sections
    follow contiguously in the v3 section order (off words, then
    interleaved [(dist, node)] pivot pairs, then interleaved
    [(node, dist)] entry pairs). Validates the structural metadata —
    section bounds against the window, [off.(0) = 0], monotone
    offsets, [off.(n) = total], finite pivot nodes in range — so no
    query can index outside the mapping; the entry payload itself is
    served as-is (the full-file checksum belongs to the heap loader).
    Raises [Invalid_argument] on any violation. *)

val family : t -> Family.t
val n : t -> int
val k : t -> int

val total_entries : t -> int
(** Number of [(node, dist)] entry pairs across all slices
    ([off.(n)]). *)

val pivot_pairs : t -> int
(** Number of [(dist, node)] pivot pairs: [n·k] for [Tz], 0
    otherwise. *)

val mapped_bytes : t -> int
(** Size in bytes of the mapped window backing this sketch; 0 for a
    heap-backed sketch. *)

val backing_name : t -> string
(** ["heap"] or ["mapped"] — for artifact metadata. *)

val iter_section_words : t -> (int -> unit) -> unit
(** Feed the canonical snapshot section word stream to [f], in the
    on-disk order: [n+1] offset words, the interleaved pivot pairs,
    the interleaved entry pairs. Backing-independent — serialising a
    mapped sketch reproduces the bytes it was mapped from. *)

val size_words : t -> int
(** Total size in the paper's units: two words per pivot plus two
    words per entry. *)

val node_size_words : t -> int -> int
(** One node's share of {!size_words}. *)

val find : t -> int -> int -> int
(** [find t u w] is the entry distance of [w] in node [u]'s slice
    (bunch/landmark/ADS membership), [Ds_graph.Dist.infinity] when
    absent. One binary search. *)

val node_entries : t -> int -> (int * int) array
(** Fresh [(node, dist)] array of node [u]'s slice, in node-id order —
    test/debug accessor, allocates. *)

val estimate : t -> int -> int -> int
(** Family-dispatched point-to-point estimate; [Dist.infinity] when
    the sketches share no usable evidence. [Tz]: the Lemma 3.2 level
    scan (identical to the pre-platform [Oracle.query]) — per level,
    the best of two membership probes into the sorted entry slices,
    stopping at the first populated level. [Landmark] / [Bottomk]:
    min over common entries [w] of [d(u,w) + d(w,v)], computed as a
    merge intersection of the two sorted slices (linear when
    balanced, galloping through the long side when skewed) — always
    an upper bound on the true distance, exact whenever some
    shortest-path vertex is a common entry. Raises
    [Invalid_argument] on out-of-range endpoints. *)

val estimate_bidirectional : t -> int -> int -> int
(** [Tz]: minimum triangle estimate over every level and both
    directions. Other families: same as {!estimate} (the
    merge-intersection is already symmetric and exhaustive). *)

val estimate_probes : t -> int -> int -> int * int
(** [(estimate, probes)] where [probes] counts array lookups (pivot
    loads plus binary-search or merge-scan comparisons) — the
    deterministic work measure experiment E8 uses. Kept on the
    original binary-search scan so the counts match the committed
    E8 tables exactly; the estimate agrees with {!estimate}. *)

val equal : t -> t -> bool
(** Structural equality of family, shape and all payload words,
    across backings (a mapped sketch equals its heap twin). *)
