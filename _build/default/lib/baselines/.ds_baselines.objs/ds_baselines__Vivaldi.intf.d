lib/baselines/vivaldi.mli: Ds_graph Ds_util
