lib/core/cdg.mli: Ds_congest Ds_graph Ds_parallel Ds_util Label Levels
