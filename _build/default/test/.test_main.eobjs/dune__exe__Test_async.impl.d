test/test_async.ml: Alcotest Array Ds_congest Ds_core Ds_graph Ds_util Helpers List QCheck QCheck_alcotest
