lib/core/routing.mli: Ds_graph Label
