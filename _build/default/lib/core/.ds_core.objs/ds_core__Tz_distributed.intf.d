lib/core/tz_distributed.mli: Ds_congest Ds_graph Ds_parallel Label Levels
