(** Experiment registry: id -> description + default run. *)

type entry = {
  id : string;
  title : string;
  claim : string;  (** which paper statement it reproduces *)
  run : unit -> Ds_util.Table.t list;
}

val all : entry list

val find : string -> entry option

val run_one : ?csv_dir:string -> entry -> unit
(** Run and print every table of the experiment; with [csv_dir] also
    save each table as a CSV file there. *)

val run_all : ?csv_dir:string -> unit -> unit
