type t = {
  n : int;
  m : int;
  idx : int array; (* length n+1; adjacency of u is [idx.(u), idx.(u+1)) *)
  adj : int array; (* neighbor ids, sorted per node *)
  wgt : int array; (* parallel to adj *)
}

let of_edges ~n edge_list =
  if n <= 0 then invalid_arg "Graph.of_edges: n must be positive";
  let seen = Hashtbl.create (2 * List.length edge_list) in
  let check (u, v, w) =
    if u = v then invalid_arg "Graph.of_edges: self-loop";
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.of_edges: endpoint out of range";
    if w <= 0 then invalid_arg "Graph.of_edges: weight must be positive";
    let key = (min u v, max u v) in
    if Hashtbl.mem seen key then invalid_arg "Graph.of_edges: duplicate edge";
    Hashtbl.replace seen key ()
  in
  List.iter check edge_list;
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v, _) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_list;
  let idx = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    idx.(u + 1) <- idx.(u) + deg.(u)
  done;
  let total = idx.(n) in
  let adj = Array.make total 0 and wgt = Array.make total 0 in
  let cursor = Array.copy idx in
  let place u v w =
    adj.(cursor.(u)) <- v;
    wgt.(cursor.(u)) <- w;
    cursor.(u) <- cursor.(u) + 1
  in
  List.iter
    (fun (u, v, w) ->
      place u v w;
      place v u w)
    edge_list;
  (* Sort each adjacency list by neighbor id for binary search. *)
  for u = 0 to n - 1 do
    let lo = idx.(u) and hi = idx.(u + 1) in
    let pairs = Array.init (hi - lo) (fun i -> (adj.(lo + i), wgt.(lo + i))) in
    Array.sort compare pairs;
    Array.iteri
      (fun i (v, w) ->
        adj.(lo + i) <- v;
        wgt.(lo + i) <- w)
      pairs
  done;
  { n; m = List.length edge_list; idx; adj; wgt }

let n t = t.n
let m t = t.m
let degree t u = t.idx.(u + 1) - t.idx.(u)

let max_degree t =
  let best = ref 0 in
  for u = 0 to t.n - 1 do
    if degree t u > !best then best := degree t u
  done;
  !best

let iter_neighbors t u f =
  for i = t.idx.(u) to t.idx.(u + 1) - 1 do
    f t.adj.(i) t.wgt.(i)
  done

let fold_neighbors t u f init =
  let acc = ref init in
  iter_neighbors t u (fun v w -> acc := f !acc v w);
  !acc

let neighbors t u =
  Array.init (degree t u) (fun i ->
      (t.adj.(t.idx.(u) + i), t.wgt.(t.idx.(u) + i)))

let neighbor_at t u i = (t.adj.(t.idx.(u) + i), t.wgt.(t.idx.(u) + i))

let neighbor_index t u v =
  (* Binary search in the sorted adjacency slice. *)
  let lo = ref t.idx.(u) and hi = ref (t.idx.(u + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if t.adj.(mid) = v then found := mid
    else if t.adj.(mid) < v then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then raise Not_found else !found - t.idx.(u)

let weight t u v =
  let i = neighbor_index t u v in
  t.wgt.(t.idx.(u) + i)

let has_edge t u v =
  match neighbor_index t u v with _ -> true | exception Not_found -> false

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    iter_neighbors t u (fun v w -> if u < v then acc := (u, v, w) :: !acc)
  done;
  !acc

let total_weight t = List.fold_left (fun s (_, _, w) -> s + w) 0 (edges t)
