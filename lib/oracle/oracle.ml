module Dist = Ds_graph.Dist
module Label = Ds_core.Label
module Pool = Ds_parallel.Pool
module Stats = Ds_util.Stats

type t = {
  n : int;
  k : int;
  pivot_dist : int array;
  pivot_node : int array;
  bunch_off : int array;
  bunch_node : int array;
  bunch_dist : int array;
}

let of_labels labels =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Oracle.of_labels: empty label set";
  let k = labels.(0).Label.k in
  Array.iteri
    (fun i l ->
      if l.Label.owner <> i then
        invalid_arg
          (Printf.sprintf "Oracle.of_labels: labels.(%d) has owner %d" i
             l.Label.owner);
      if l.Label.k <> k then
        invalid_arg
          (Printf.sprintf "Oracle.of_labels: labels.(%d) has k=%d, expected %d"
             i l.Label.k k))
    labels;
  let pivot_dist = Array.make (n * k) Dist.infinity in
  let pivot_node = Array.make (n * k) max_int in
  let bunch_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    bunch_off.(u + 1) <- bunch_off.(u) + Label.bunch_size labels.(u)
  done;
  let total = bunch_off.(n) in
  let bunch_node = Array.make (max 1 total) 0 in
  let bunch_dist = Array.make (max 1 total) 0 in
  Array.iteri
    (fun u l ->
      Array.iteri
        (fun i (d, p) ->
          pivot_dist.((u * k) + i) <- d;
          pivot_node.((u * k) + i) <- p)
        l.Label.pivots;
      (* bunch_nodes is sorted by node id — the slice stays strictly
         increasing, which is what the binary search needs. *)
      List.iteri
        (fun j (w, d, _) ->
          bunch_node.(bunch_off.(u) + j) <- w;
          bunch_dist.(bunch_off.(u) + j) <- d)
        (Label.bunch_nodes l))
    labels;
  { n; k; pivot_dist; pivot_node; bunch_off; bunch_node; bunch_dist }

let of_store (s : Sketch_store.t) = of_labels s.Sketch_store.labels

let n t = t.n
let k t = t.k

let size_words t = (2 * t.n * t.k) + (2 * t.bunch_off.(t.n))

(* Binary search for [w] in the node-[u] slice; [Dist.infinity] when
   absent. Tail recursion over plain ints, not [ref] cursors: a query
   must not touch the minor heap, because every minor collection stops
   all domains and a batch fanned over the pool would serialise on GC
   instead of scaling. *)
let rec find_in t w lo hi =
  if lo >= hi then Dist.infinity
  else begin
    let mid = (lo + hi) / 2 in
    let x = t.bunch_node.(mid) in
    if x = w then t.bunch_dist.(mid)
    else if x < w then find_in t w (mid + 1) hi
    else find_in t w lo mid
  end

let find t u w = find_in t w t.bunch_off.(u) t.bunch_off.(u + 1)

let bunch_dist t u w =
  let d = find t u w in
  if Dist.is_finite d then Some d else None

let check_pair t u v name =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg
      (Printf.sprintf "Oracle.%s: pair (%d, %d) out of range [0, %d)" name u v
         t.n)

(* Both query loops are top-level recursions for the same reason as
   [find_in]: a local [let rec go] would close over [t]/[u]/[v] and
   allocate per query. *)
let rec query_from t u v k i =
  if i >= k then Dist.infinity
  else begin
    let du = t.pivot_dist.((u * k) + i)
    and pu = t.pivot_node.((u * k) + i)
    and dv = t.pivot_dist.((v * k) + i)
    and pv = t.pivot_node.((v * k) + i) in
    let via_pu =
      if Dist.is_finite du then Dist.add du (find t v pu) else Dist.infinity
    in
    let via_pv =
      if Dist.is_finite dv then Dist.add dv (find t u pv) else Dist.infinity
    in
    let est = min via_pu via_pv in
    if Dist.is_finite est then est else query_from t u v k (i + 1)
  end

let query t u v =
  check_pair t u v "query";
  query_from t u v t.k 0

let rec query_bidi_from t u v k i best =
  if i >= k then best
  else begin
    let du = t.pivot_dist.((u * k) + i)
    and pu = t.pivot_node.((u * k) + i)
    and dv = t.pivot_dist.((v * k) + i)
    and pv = t.pivot_node.((v * k) + i) in
    let best =
      if Dist.is_finite du then min best (Dist.add du (find t v pu)) else best
    in
    let best =
      if Dist.is_finite dv then min best (Dist.add dv (find t u pv)) else best
    in
    query_bidi_from t u v k (i + 1) best
  end

let query_bidirectional t u v =
  check_pair t u v "query_bidirectional";
  query_bidi_from t u v t.k 0 Dist.infinity

let find_probed t u w probes =
  let lo = ref t.bunch_off.(u) and hi = ref t.bunch_off.(u + 1) in
  let res = ref Dist.infinity in
  while !lo < !hi do
    incr probes;
    let mid = (!lo + !hi) / 2 in
    let x = t.bunch_node.(mid) in
    if x = w then begin
      res := t.bunch_dist.(mid);
      lo := !hi
    end
    else if x < w then lo := mid + 1
    else hi := mid
  done;
  !res

let query_probes t u v =
  check_pair t u v "query_probes";
  let k = t.k in
  let probes = ref 0 in
  let rec go i =
    if i >= k then Dist.infinity
    else begin
      (* Two pivot-pair loads per level. *)
      probes := !probes + 2;
      let du = t.pivot_dist.((u * k) + i)
      and pu = t.pivot_node.((u * k) + i)
      and dv = t.pivot_dist.((v * k) + i)
      and pv = t.pivot_node.((v * k) + i) in
      let via_pu =
        if Dist.is_finite du then Dist.add du (find_probed t v pu probes)
        else Dist.infinity
      in
      let via_pv =
        if Dist.is_finite dv then Dist.add dv (find_probed t u pv probes)
        else Dist.infinity
      in
      let est = min via_pu via_pv in
      if Dist.is_finite est then est else go (i + 1)
    end
  in
  let est = go 0 in
  (est, !probes)

(* Obs hook shared by both batch entry points: one counter add per
   chunk (not per query), on the chunk's own shard. *)
let obs_queries = function
  | None -> None
  | Some registry ->
    Some (Ds_obs.Obs.counter registry Ds_obs.Obs.Name.oracle_queries)

let query_batch ?(pool = Pool.sequential) ?obs t pairs =
  let m = Array.length pairs in
  let out = Array.make m 0 in
  let qc = obs_queries obs in
  (* One tight loop per domain, not one closure dispatch per pair:
     [parallel_for]'s per-index call was most of the per-query cost at
     ~150ns a query, which is why batch throughput used to stay flat
     as domains were added. *)
  ignore
    (Pool.parallel_chunks pool ~n:m (fun c lo hi ->
         for i = lo to hi - 1 do
           let u, v = pairs.(i) in
           out.(i) <- query t u v
         done;
         match qc with
         | Some ctr -> Ds_obs.Obs.add ctr ~shard:c (hi - lo)
         | None -> ()));
  out

(* The boxed-pairs batch above still did not scale past one domain
   (B12 stayed ~flat 1 -> 8 domains): every iteration loads a [(u,v)]
   pointer and then the tuple's two fields — a dependent cache miss per
   pair into an array the domains share — and adjacent chunks share
   cache lines of [out] at their boundaries. The flat path removes
   both: endpoints live inline in one int array ([u] at [2i], [v] at
   [2i+1]), and work is handed out in blocks of 8 pairs so every
   chunk's [out] writes are 64-byte aligned — no false sharing. *)
let query_batch_flat ?(pool = Pool.sequential) ?obs t flat =
  let len = Array.length flat in
  if len land 1 <> 0 then invalid_arg "Oracle.query_batch_flat: odd length";
  let m = len / 2 in
  let out = Array.make (max 1 m) 0 in
  let blocks = (m + 7) / 8 in
  let qc = obs_queries obs in
  ignore
    (Pool.parallel_chunks pool ~n:blocks (fun c blo bhi ->
         let lo = 8 * blo and hi = min m (8 * bhi) in
         for i = lo to hi - 1 do
           out.(i) <- query t flat.(2 * i) flat.((2 * i) + 1)
         done;
         match qc with
         | Some ctr -> Ds_obs.Obs.add ctr ~shard:c (hi - lo)
         | None -> ()));
  if m = 0 then [||] else out

type batch_stats = {
  pairs : int;
  elapsed_ns : float;
  qps : float;
  latency_ns : Stats.summary;
}

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let batch_stats_of ~m ~elapsed_ns ~lat ~sample =
  {
    pairs = m;
    elapsed_ns;
    qps = float_of_int m /. (elapsed_ns /. 1e9);
    latency_ns = Stats.summarize (if sample = 0 then [| 0.0 |] else lat);
  }

let run_batch ?pool ?obs ?(latency_sample = 1024) t pairs =
  let m = Array.length pairs in
  let t0 = now_ns () in
  let out = query_batch ?pool ?obs t pairs in
  let t1 = now_ns () in
  let elapsed_ns = max 1.0 (t1 -. t0) in
  let sample = min latency_sample m in
  let lat =
    Array.init sample (fun i ->
        (* Stride across the batch so the sample sees its whole mix. *)
        let u, v = pairs.(i * m / max 1 sample) in
        let s0 = now_ns () in
        ignore (query t u v);
        now_ns () -. s0)
  in
  (out, batch_stats_of ~m ~elapsed_ns ~lat ~sample)

let run_batch_flat ?pool ?obs ?(latency_sample = 1024) t flat =
  let m = Array.length flat / 2 in
  let t0 = now_ns () in
  let out = query_batch_flat ?pool ?obs t flat in
  let t1 = now_ns () in
  let elapsed_ns = max 1.0 (t1 -. t0) in
  let sample = min latency_sample m in
  let lat =
    Array.init sample (fun i ->
        let j = i * m / max 1 sample in
        let u = flat.(2 * j) and v = flat.((2 * j) + 1) in
        let s0 = now_ns () in
        ignore (query t u v);
        now_ns () -. s0)
  in
  (out, batch_stats_of ~m ~elapsed_ns ~lat ~sample)
