lib/congest/engine.mli: Ds_graph Ds_parallel Ds_util Metrics
