(** Small statistics helpers for the experiment harness. *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float
val min_of : float array -> float
val max_of : float array -> float

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]]; linear interpolation.
    Does not mutate [a] (copies and sorts per call — prefer
    {!percentile_sorted} when extracting several percentiles). *)

val percentile_sorted : float array -> float -> float
(** Same interpolation over an array the caller has {e already
    sorted} ascending — no copy, no sort. The canonical percentile
    implementation: sort once, then read p50/p90/p99/p999 with four
    O(1) calls (what {!Ds_oracle.Serve} and {!summarize} do). *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

val histogram : buckets:int -> float array -> (float * float * int) array
(** [(lo, hi, count)] per bucket over the data range. *)

(** {2 Log2 histograms}

    Fixed-shape power-of-two bucketing for non-negative int samples
    (latencies in nanoseconds, sizes in words): bucket [0] holds
    values [<= 0]; bucket [b >= 1] holds the range
    [2^(b-1) .. 2^b - 1] — the value's bit length. {!log2_buckets}
    buckets cover the whole int range, so the bucket index is always
    in-bounds and the hot-path increment needs no branch beyond the
    clamp. Approximate percentiles read back from the counts are
    exact to within one bucket (a factor-of-2 value band), which the
    [obs] test suite pins against {!percentile_sorted}. *)

val log2_buckets : int
(** Number of buckets ([64]). *)

val log2_bucket : int -> int
(** [log2_bucket v] is the bucket index for sample [v]: [0] for
    [v <= 0], else the bit length of [v], clamped to
    [log2_buckets - 1]. Allocation-free. *)

val log2_bucket_upper : int -> int
(** Inclusive upper bound of a bucket: [0], [1], [3], [7], ...,
    [2^b - 1] ([max_int] for the last bucket). *)

val percentile_log2 : int array -> float -> int
(** [percentile_log2 counts p] reads an approximate percentile from
    per-bucket counts (as built with {!log2_bucket}): the upper bound
    of the first bucket whose cumulative count reaches
    [ceil (p/100 * total)]. Raises [Invalid_argument] on an empty
    histogram or [p] outside [\[0,100\]]. *)
