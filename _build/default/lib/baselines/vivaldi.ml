module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph

type config = {
  dim : int;
  rounds : int;
  samples_per_round : int;
  ce : float;
  cc : float;
}

let default_config =
  { dim = 3; rounds = 200; samples_per_round = 4; ce = 0.25; cc = 0.25 }

type t = {
  config : config;
  coords : float array array;
  heights : float array;
  errors : float array;
}

let coordinate t u = Array.copy t.coords.(u)
let height t u = t.heights.(u)
let error t u = t.errors.(u)

let euclidean a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) ** 2.0)) a;
  sqrt !acc

let raw_estimate t u v =
  euclidean t.coords.(u) t.coords.(v) +. t.heights.(u) +. t.heights.(v)

let estimate t u v =
  if u = v then 0 else max 0 (int_of_float (Float.round (raw_estimate t u v)))

(* One Vivaldi update at u against a measured distance to v. *)
let update t rng u v measured =
  let cfg = t.config in
  let measured = float_of_int (max 1 measured) in
  let predicted = raw_estimate t u v in
  let sample_error = Float.abs (predicted -. measured) /. measured in
  let w = t.errors.(u) /. (t.errors.(u) +. t.errors.(v) +. 1e-9) in
  t.errors.(u) <-
    (sample_error *. cfg.ce *. w) +. (t.errors.(u) *. (1.0 -. (cfg.ce *. w)));
  let delta = cfg.cc *. w in
  let xu = t.coords.(u) and xv = t.coords.(v) in
  let dist = euclidean xu xv in
  let force = delta *. (measured -. predicted) in
  if dist > 1e-9 then begin
    for i = 0 to cfg.dim - 1 do
      xu.(i) <- xu.(i) +. (force *. (xu.(i) -. xv.(i)) /. dist)
    done
  end
  else
    (* Coincident points: push in a random direction. *)
    for i = 0 to cfg.dim - 1 do
      xu.(i) <- xu.(i) +. (force *. (Rng.float rng 2.0 -. 1.0))
    done;
  (* Heights absorb the residual the plane cannot express; keep a
     small nonnegative share. *)
  t.heights.(u) <- Float.max 0.0 (t.heights.(u) +. (0.1 *. force))

let run ~rng ?(config = default_config) g ~distance =
  let n = Graph.n g in
  let t =
    {
      config;
      coords =
        Array.init n (fun _ ->
            Array.init config.dim (fun _ -> Rng.float rng 1.0));
      heights = Array.make n 0.0;
      errors = Array.make n 1.0;
    }
  in
  for _ = 1 to config.rounds do
    for u = 0 to n - 1 do
      for _ = 1 to config.samples_per_round do
        (* Mix neighbor and long-range samples, as deployments do. *)
        let v =
          if Rng.bool rng 0.5 && Graph.degree g u > 0 then
            fst (Graph.neighbor_at g u (Rng.int rng (Graph.degree g u)))
          else begin
            let v = Rng.int rng (n - 1) in
            if v >= u then v + 1 else v
          end
        in
        if v <> u then update t rng u v (distance u v)
      done
    done
  done;
  t
