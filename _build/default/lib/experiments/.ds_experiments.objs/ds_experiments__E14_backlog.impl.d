lib/experiments/e14_backlog.ml: Array Common Ds_core Ds_graph Ds_util List Printf
