examples/spanner_backbone.ml: Array Ds_congest Ds_core Ds_graph Ds_util Printf
