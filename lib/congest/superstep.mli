(** The backend-neutral superstep transport contract.

    A message plane executes a protocol in synchronous supersteps:
    in each round every node may {i send} one message per incident
    link, the plane {i delivers} last round's messages into per-node
    inboxes, and the {i active set} — last round's senders, this
    round's receivers, or everyone on a probe round — runs
    [on_round]. Two backends implement the contract:

    - {!Engine}: per-link FIFO ring delivery (the faithful CONGEST
      simulator, one message moved at a time);
    - {!Shard_engine}: MPC-style bulk exchange (nodes partitioned
      into contiguous shards, each round's messages shipped between
      shards as flat word batches).

    This module owns the types both backends share, so a protocol
    written against it runs unchanged on either; {!Plane} selects the
    backend at run time. Both backends deliver every inbox in the
    canonical order below, which is what pins sketches, metrics and
    round counts byte-identical across backends and pool sizes. *)

type 'msg api = {
  id : int;  (** this node's ID *)
  degree : int;
  neighbor_id : int -> int;  (** neighbor index -> node ID *)
  neighbor_weight : int -> int;  (** neighbor index -> edge weight *)
  send : int -> 'msg -> unit;  (** enqueue a message to a neighbor index *)
  broadcast : 'msg -> unit;  (** enqueue to every neighbor *)
  round : unit -> int;  (** current round number *)
}

(** A node's inbox for one round, as [(neighbor index, message)]
    pairs. Delivery order is canonical: ascending sender neighbor
    index (unique per round, since the wire discipline admits at most
    one message per link per round). The buffer is reused — cleared,
    not reallocated, between rounds — so it is only valid during the
    [on_round] call it was passed to; copy out anything kept. *)
module Inbox : sig
  type 'msg t

  val create : unit -> 'msg t
  (** An empty inbox; backends make one per node and reuse it. *)

  val length : 'msg t -> int
  (** Deliveries in this round's inbox. *)

  val is_empty : 'msg t -> bool

  val from : 'msg t -> int -> int
  (** Sender's neighbor index of the [i]th delivery. *)

  val msg : 'msg t -> int -> 'msg
  (** Payload of the [i]th delivery. *)

  val iter : (int -> 'msg -> unit) -> 'msg t -> unit
  (** [iter f t] calls [f from msg] per delivery, in canonical order.
      Hot protocol loops prefer indexed {!from}/{!msg} access — the
      callback closure is an allocation per round. *)

  val fold : ('a -> int -> 'msg -> 'a) -> 'a -> 'msg t -> 'a
  val to_list : 'msg t -> (int * 'msg) list

  (** The remaining operations are for backends, not protocols. *)

  val push : 'msg t -> int -> 'msg -> unit
  (** Append one delivery (backend-side; grows the buffer as needed). *)

  val clear : 'msg t -> unit
  (** Forget the deliveries, keep the capacity. *)

  val mem_words : 'msg t -> int
  (** Backing capacity in words ([msgs] slots count one word each). *)

  val sort_by_from : 'msg t -> degree:int -> unit
  (** Restore the canonical order after out-of-order delivery.
      Requires distinct [from] values in [0, degree) (the wire
      discipline guarantees this). Allocation-free. *)
end

type ('state, 'msg) protocol = {
  name : string;
  init : 'msg api -> 'state;
      (** Round-0 computation; may send. Called once per node. *)
  on_round : 'msg api -> 'state -> 'msg Inbox.t -> unit;
      (** Per-round computation; see the scheduling contract above. *)
  halted : 'state -> bool;
      (** True once the node has locally terminated. *)
  msg_words : 'msg -> int;  (** size accounting, in words *)
  max_msg_words : int;
      (** CONGEST bandwidth cap; sends above it raise. *)
}

type stop_reason = Quiescent | All_halted | Round_limit
(** Why a run ended: no message in flight and none sent ([Quiescent]),
    every node's [halted] predicate true ([All_halted]), or the
    caller's [max_rounds] cap reached ([Round_limit]). *)

type 'msg codec = {
  encode : Ds_util.Ivec.t -> 'msg -> unit;
      (** Append the message's encoded words to the buffer. *)
  decode : Ds_util.Ivec.t -> int -> 'msg;
      (** Rebuild the message starting at the given offset. *)
}
(** Flat-word serialisation for bulk backends. The encoded width is
    whatever [encode] pushes (each batch entry is framed with its
    width); it may differ from [protocol.msg_words], which remains
    the model-level accounting charge. *)
