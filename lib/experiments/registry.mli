(** Experiment registry: id -> description + default run. *)

type entry = {
  id : string;
  title : string;
  claim : string;  (** which paper statement it reproduces *)
  run : Ds_parallel.Pool.t -> Ds_util.Table.t list;
      (** Runs the experiment's engine phases on the given pool.
          Experiments with no distributed phase ignore it. *)
}

val all : entry list

val find : string -> entry option

val run_one : ?pool:Ds_parallel.Pool.t -> ?csv_dir:string -> entry -> unit
(** Run and print every table of the experiment; with [csv_dir] also
    save each table as a CSV file there. [pool] (default
    {!Ds_parallel.Pool.sequential}) is borrowed, not owned: the caller
    shuts it down. *)

val run_all : ?pool:Ds_parallel.Pool.t -> ?csv_dir:string -> unit -> unit
