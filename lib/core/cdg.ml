module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Dijkstra = Ds_graph.Dijkstra
module Metrics = Ds_congest.Metrics
module Super_bf = Ds_congest.Super_bf

type sketch = {
  owner : int;
  nearest : int;
  nearest_dist : int;
  net_label : Label.t;
  own_label : Label.t;
}

let size_words s = 2 + Label.size_words s.net_label

let query a b =
  let mid = Label.query a.net_label b.net_label in
  Dist.add a.nearest_dist (Dist.add mid b.nearest_dist)

let query_direct a b = Label.query a.own_label b.own_label

type result = {
  sketches : sketch array;
  net : int list;
  net_levels : Levels.t;
  metrics : Metrics.t;
  transfer_metrics : Metrics.t;
}

let net_sampling_probability ~n ~eps ~k =
  let expected = max 2.0 (10.0 /. eps *. log (float_of_int n)) in
  expected ** (-1.0 /. float_of_int k)

let assemble ?received ~labels ~nearest ~nearest_dist n =
  Array.init n (fun u ->
      let net_label =
        match received with
        | Some words ->
          (* Deserialize the stream that actually crossed the wire. *)
          Label.of_words words.(u)
        | None -> labels.(nearest.(u))
      in
      {
        owner = u;
        nearest = nearest.(u);
        nearest_dist = nearest_dist.(u);
        net_label;
        own_label = labels.(u);
      })

let build_distributed ?backend ?pool ?shards ~rng g ~eps ~k =
  let n = Graph.n g in
  let net = Density_net.sample ~rng ~n ~eps in
  let prob = net_sampling_probability ~n ~eps ~k in
  let net_levels = Levels.sample_subset ~rng ~n ~k ~subset:net ~prob in
  (* Step 1: every node learns its nearest net node (and the cell
     forest used later to ship labels). *)
  let forest, bf_metrics = Super_bf.run ?backend ?pool ?shards g ~sources:net in
  (* Step 2: Algorithm 2 over the net hierarchy. *)
  let tz = Tz_distributed.build ?backend ?pool ?shards g ~levels:net_levels in
  (* Step 3: ship L(u') down each cell, as actual words on the wire. *)
  let payload w = Label.to_words tz.Tz_distributed.labels.(w) in
  let received, transfer_metrics =
    Cell_cast.run ?backend ?pool ?shards g ~forest ~payload
  in
  let sketches =
    assemble ~received ~labels:tz.Tz_distributed.labels
      ~nearest:forest.Super_bf.nearest ~nearest_dist:forest.Super_bf.dist n
  in
  let metrics =
    List.fold_left Metrics.add bf_metrics
      [ tz.Tz_distributed.metrics; transfer_metrics ]
  in
  { sketches; net; net_levels; metrics; transfer_metrics }

let build_centralized ~rng g ~eps ~k =
  let n = Graph.n g in
  let net = Density_net.sample ~rng ~n ~eps in
  let prob = net_sampling_probability ~n ~eps ~k in
  let net_levels = Levels.sample_subset ~rng ~n ~k ~subset:net ~prob in
  let labels = Tz_centralized.build g ~levels:net_levels in
  let dist, nearest = Dijkstra.multi_source g ~sources:(Array.of_list net) in
  assemble ~labels ~nearest ~nearest_dist:dist n
