module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Apsp = Ds_graph.Apsp
module Vivaldi = Ds_baselines.Vivaldi
module Setup = Ds_congest.Setup
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Query_protocol = Ds_core.Query_protocol
module Tz_centralized = Ds_core.Tz_centralized

let test_vivaldi_estimates_sane () =
  let g = Helpers.random_graph ~seed:701 60 in
  let apsp = Apsp.compute g in
  let t =
    Vivaldi.run ~rng:(Rng.create 703) g ~distance:(fun u v -> Apsp.dist apsp u v)
  in
  for u = 0 to 59 do
    Alcotest.(check int) "self distance" 0 (Vivaldi.estimate t u u);
    Alcotest.(check bool) "height nonneg" true (Vivaldi.height t u >= 0.0);
    Alcotest.(check bool) "error finite" true (Float.is_finite (Vivaldi.error t u));
    for v = 0 to 59 do
      Alcotest.(check bool) "estimate nonneg" true (Vivaldi.estimate t u v >= 0);
      Alcotest.(check int) "symmetric" (Vivaldi.estimate t u v)
        (Vivaldi.estimate t v u)
    done
  done

let test_vivaldi_learns_geometric_metric () =
  (* Geometric graphs genuinely live in the plane, so the embedding
     should get average error well below a trivial embedding's. *)
  let g =
    Ds_graph.Gen.random_geometric ~rng:(Rng.create 709) ~n:80 ~radius:0.2 ()
  in
  let apsp = Apsp.compute g in
  let t =
    Vivaldi.run ~rng:(Rng.create 719)
      ~config:{ Vivaldi.default_config with dim = 2; rounds = 300 }
      g
      ~distance:(fun u v -> Apsp.dist apsp u v)
  in
  let rel_errors = ref [] in
  Apsp.iter_pairs apsp (fun u v d ->
      if d > 0 then begin
        let e = Vivaldi.estimate t u v in
        rel_errors :=
          (Float.abs (float_of_int (e - d)) /. float_of_int d) :: !rel_errors
      end);
  let mean = Ds_util.Stats.mean (Array.of_list !rel_errors) in
  Alcotest.(check bool)
    (Printf.sprintf "mean relative error %.3f < 0.5" mean)
    true (mean < 0.5)

let test_vivaldi_deterministic_given_seed () =
  let g = Helpers.random_graph ~seed:727 40 in
  let apsp = Apsp.compute g in
  let dist u v = Apsp.dist apsp u v in
  let a = Vivaldi.run ~rng:(Rng.create 733) g ~distance:dist in
  let b = Vivaldi.run ~rng:(Rng.create 733) g ~distance:dist in
  for u = 0 to 39 do
    Alcotest.(check (array (float 1e-12))) "same coords" (Vivaldi.coordinate a u)
      (Vivaldi.coordinate b u)
  done

let test_query_protocol_matches_local_query () =
  let g = Helpers.random_graph ~seed:739 70 in
  let levels = Levels.sample ~rng:(Rng.create 743) ~n:70 ~k:3 in
  let labels = Tz_centralized.build g ~levels in
  let tree, _ = Setup.run g in
  List.iter
    (fun (u, v) ->
      let r = Query_protocol.query g ~tree ~labels ~u ~v in
      Alcotest.(check int) "estimate = local query"
        (Label.query labels.(u) labels.(v))
        r.Query_protocol.estimate;
      Alcotest.(check bool) "did rounds" true (r.Query_protocol.rounds > 0))
    [ (0, 69); (3, 42); (17, 18); (69, 0) ]

let test_query_protocol_round_bound () =
  (* O(D + |L(v)|): request flood <= D, stream pipelined <= D + chunks. *)
  let g = Helpers.random_graph ~seed:751 80 in
  let d = Ds_graph.Props.hop_diameter g in
  let levels = Levels.sample ~rng:(Rng.create 757) ~n:80 ~k:3 in
  let labels = Tz_centralized.build g ~levels in
  let tree, _ = Setup.run g in
  List.iter
    (fun (u, v) ->
      let r = Query_protocol.query g ~tree ~labels ~u ~v in
      let chunks = (Label.size_words labels.(v) + 1) / 2 in
      (* Request and stream each traverse at most 2D tree hops. *)
      let bound = (4 * d) + chunks + 4 in
      Alcotest.(check bool)
        (Printf.sprintf "rounds %d <= %d" r.Query_protocol.rounds bound)
        true
        (r.Query_protocol.rounds <= bound))
    [ (5, 60); (33, 12) ]

let test_query_protocol_self_query () =
  let g = Helpers.path 4 in
  let levels = Levels.sample ~rng:(Rng.create 761) ~n:4 ~k:2 in
  let labels = Tz_centralized.build g ~levels in
  let tree, _ = Setup.run g in
  let r = Query_protocol.query g ~tree ~labels ~u:2 ~v:2 in
  Alcotest.(check int) "zero" 0 r.Query_protocol.estimate

let suite =
  [
    Alcotest.test_case "vivaldi estimates sane" `Quick
      test_vivaldi_estimates_sane;
    Alcotest.test_case "vivaldi learns geometric metric" `Quick
      test_vivaldi_learns_geometric_metric;
    Alcotest.test_case "vivaldi deterministic" `Quick
      test_vivaldi_deterministic_given_seed;
    Alcotest.test_case "query protocol = local query" `Quick
      test_query_protocol_matches_local_query;
    Alcotest.test_case "query protocol round bound" `Quick
      test_query_protocol_round_bound;
    Alcotest.test_case "query protocol self query" `Quick
      test_query_protocol_self_query;
  ]
