test/test_metrics.ml: Alcotest Ds_congest Ds_graph Ds_util Helpers List
