(* Units for the CDG building blocks: the cell broadcast and the
   net-restricted hierarchy plumbing. *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Metrics = Ds_congest.Metrics
module Super_bf = Ds_congest.Super_bf
module Levels = Ds_core.Levels
module Cell_cast = Ds_core.Cell_cast
module Cdg = Ds_core.Cdg

let test_cell_cast_accounting () =
  (* A path 0-1-2-3 with source {0}: the cell is the whole path, a
     chain. Streaming c chunks from node 0 costs messages
     c * (#tree edges) and rounds ~ depth + c (pipelined). *)
  let g = Helpers.path 4 in
  let forest, _ = Super_bf.run g ~sources:[ 0 ] in
  let chunks = 5 in
  let payload w =
    if w = 0 then Array.init chunks (fun i -> (i, 10 * i)) else [||]
  in
  let received, m = Cell_cast.run g ~forest ~payload in
  (* Every cell member got the exact stream. *)
  for u = 0 to 3 do
    Alcotest.(check (array (pair int int))) "stream content" (payload 0)
      received.(u)
  done;
  Alcotest.(check int) "messages" (chunks * 3) (Metrics.messages m);
  Alcotest.(check int) "words" (2 * chunks * 3) (Metrics.words m);
  (* Pipelined: last chunk leaves at round `chunks`, arrives at the end
     of the chain 2 rounds later. *)
  Alcotest.(check int) "rounds" (chunks + 2) (Metrics.rounds m)

let test_cell_cast_two_cells () =
  (* Sources at both ends of a path of 5: cells are {0,1} and
     {2,3,4} (3 is closer to 4? weights 1: node 2 at distance 2 from 0
     and 2 from 4 -> tie broken toward smaller source id 0). *)
  let g = Helpers.path 5 in
  let forest, _ = Super_bf.run g ~sources:[ 0; 4 ] in
  Alcotest.(check (array int)) "nearest" [| 0; 0; 0; 4; 4 |]
    forest.Super_bf.nearest;
  let payload w =
    match w with
    | 0 -> Array.init 4 (fun i -> (i, i))
    | 4 -> Array.init 2 (fun i -> (100 + i, i))
    | _ -> [||]
  in
  let received, m = Cell_cast.run g ~forest ~payload in
  Alcotest.(check (array (pair int int))) "cell of 0 content" (payload 0)
    received.(2);
  Alcotest.(check (array (pair int int))) "cell of 4 content" (payload 4)
    received.(3);
  (* Cell of 0 is the chain 0-1-2 (2 edges, 4 chunks = 8 msgs); cell of
     4 is 4-3 (1 edge, 2 chunks). *)
  Alcotest.(check int) "messages" ((4 * 2) + 2) (Metrics.messages m)

let test_net_probability_monotone () =
  let p1 = Cdg.net_sampling_probability ~n:500 ~eps:0.2 ~k:1 in
  let p2 = Cdg.net_sampling_probability ~n:500 ~eps:0.2 ~k:3 in
  Alcotest.(check bool) "prob in (0,1]" true (p1 > 0.0 && p1 <= 1.0);
  Alcotest.(check bool) "deeper hierarchy samples more" true (p2 > p1)

let test_cdg_sketch_size_accounting () =
  let g = Helpers.random_graph ~seed:363 60 in
  let r = Cdg.build_distributed ~rng:(Rng.create 367) g ~eps:0.3 ~k:2 in
  Array.iter
    (fun s ->
      Alcotest.(check int) "2 + |L(u')|"
        (2 + Ds_core.Label.size_words s.Cdg.net_label)
        (Cdg.size_words s))
    r.Cdg.sketches

let test_cdg_net_levels_restricted_to_net () =
  let g = Helpers.random_graph ~seed:373 60 in
  let r = Cdg.build_distributed ~rng:(Rng.create 379) g ~eps:0.3 ~k:2 in
  for u = 0 to 59 do
    let lvl = Levels.level r.Cdg.net_levels u in
    if List.mem u r.Cdg.net then
      Alcotest.(check bool) "net member sampled" true (lvl >= 0)
    else Alcotest.(check int) "outside net excluded" (-1) lvl
  done

let test_cdg_net_label_survives_the_wire () =
  (* The net label inside each sketch is deserialized from the words
     that actually crossed the network; it must equal the label the
     nearest net node computed. *)
  let g = Helpers.random_graph ~seed:391 80 in
  let r = Cdg.build_distributed ~rng:(Rng.create 397) g ~eps:0.3 ~k:2 in
  let oracle = Ds_core.Tz_distributed.build g ~levels:r.Cdg.net_levels in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "wire round-trip" true
        (Ds_core.Label.equal s.Cdg.net_label
           oracle.Ds_core.Tz_distributed.labels.(s.Cdg.nearest)))
    r.Cdg.sketches

let test_cdg_transfer_cost_small_share () =
  let g = Helpers.random_graph ~seed:383 120 in
  let r = Cdg.build_distributed ~rng:(Rng.create 389) g ~eps:0.25 ~k:2 in
  let share =
    float_of_int (Metrics.messages r.Cdg.transfer_metrics)
    /. float_of_int (Metrics.messages r.Cdg.metrics)
  in
  Alcotest.(check bool)
    (Printf.sprintf "transfer share %.3f < 0.5" share)
    true (share < 0.5)

let suite =
  [
    Alcotest.test_case "cell-cast accounting on a chain" `Quick
      test_cell_cast_accounting;
    Alcotest.test_case "cell-cast two cells" `Quick test_cell_cast_two_cells;
    Alcotest.test_case "net sampling probability" `Quick
      test_net_probability_monotone;
    Alcotest.test_case "cdg size accounting" `Quick
      test_cdg_sketch_size_accounting;
    Alcotest.test_case "cdg net levels restricted" `Quick
      test_cdg_net_levels_restricted_to_net;
    Alcotest.test_case "cdg net label survives the wire" `Quick
      test_cdg_net_label_survives_the_wire;
    Alcotest.test_case "cdg transfer share small" `Quick
      test_cdg_transfer_cost_small_share;
  ]
