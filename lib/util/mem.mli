(** Process-memory probes (Linux [/proc/self/status]; [None] when the
    file is absent, truncated or unreadable, so callers stay portable
    and no CLI path can die on a /proc hiccup). *)

val rss_kb : unit -> int option
(** Current resident set size, in kB. *)

val hwm_kb : unit -> int option
(** Peak resident set size ("high-water mark"), in kB. *)

val rss_kb_or_zero : unit -> int
(** {!rss_kb} degraded to a zero gauge — what the obs sampler records
    so the [obs/1] schema keeps an int field on every platform. *)

val hwm_kb_or_zero : unit -> int
(** {!hwm_kb} degraded to a zero gauge. *)

val heap_words : unit -> int
(** Major-heap size of the OCaml runtime, in words (from
    [Gc.quick_stat]; cheap, no heap walk). *)

(** {2 Pure parsing} — exposed for unit tests on synthetic status
    snippets; the probes above are [find_kb] over the live file. *)

val parse_kb : string -> int option
(** [parse_kb "VmRSS:   123456 kB"] is [Some 123456]: the first digit
    run in the line, [None] when there is none. *)

val find_kb : key:string -> string -> int option
(** [find_kb ~key text] scans the lines of a [/proc/self/status]-shaped
    string for ["key:"] and parses its kB value. Missing key,
    malformed value or empty input all yield [None]. *)
