module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Dijkstra = Ds_graph.Dijkstra

let pivot_tables g ~levels =
  let n = Graph.n g in
  let k = Levels.k levels in
  let table = Array.make_matrix (k + 1) n Dist.none in
  for i = 0 to k - 1 do
    match Levels.members levels i with
    | [] -> () (* only possible below the (non-empty) top level *)
    | sources ->
      let dist, nearest =
        Dijkstra.multi_source g ~sources:(Array.of_list sources)
      in
      for u = 0 to n - 1 do
        table.(i).(u) <-
          (if nearest.(u) < 0 then Dist.none else (dist.(u), nearest.(u)))
      done
  done;
  table

(* The bound for growing the cluster of a level-i node at candidate
   member v is (d(v, A_{i+1}), p_{i+1}(v)). *)
let bounds_of_table table i = table.(i + 1)

let cluster_of g ~bound w = Dijkstra.restricted g ~src:w ~bound

let build g ~levels =
  let n = Graph.n g in
  let k = Levels.k levels in
  let table = pivot_tables g ~levels in
  let labels =
    Array.init n (fun u ->
        let l = Label.create ~owner:u ~k in
        for i = 0 to k - 1 do
          let d, p = table.(i).(u) in
          if Dist.is_finite d then Label.set_pivot l ~level:i ~dist:d ~node:p
        done;
        l)
  in
  for w = 0 to n - 1 do
    let lw = Levels.level levels w in
    if lw >= 0 then begin
      let bound = bounds_of_table table lw in
      let dist = cluster_of g ~bound w in
      for v = 0 to n - 1 do
        if Dist.is_finite dist.(v) then
          Label.add_bunch labels.(v) ~node:w ~dist:dist.(v) ~level:lw
      done
    end
  done;
  labels

let cluster g ~levels w =
  let lw = Levels.level levels w in
  if lw < 0 then []
  else begin
    let table = pivot_tables g ~levels in
    let dist = cluster_of g ~bound:(bounds_of_table table lw) w in
    let acc = ref [] in
    for v = Graph.n g - 1 downto 0 do
      if Dist.is_finite dist.(v) then acc := (v, dist.(v)) :: !acc
    done;
    !acc
  end
