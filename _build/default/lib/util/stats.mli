(** Small statistics helpers for the experiment harness. *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float
val min_of : float array -> float
val max_of : float array -> float

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]]; linear interpolation.
    Does not mutate [a]. *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

val histogram : buckets:int -> float array -> (float * float * int) array
(** [(lo, hi, count)] per bucket over the data range. *)
