lib/graph/apsp.ml: Array Dijkstra Ds_util Graph
