lib/core/density_net.mli: Ds_graph Ds_util
