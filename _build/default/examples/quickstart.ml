(* Quickstart: build Thorup-Zwick distance sketches on a small random
   network with the self-terminating distributed algorithm, then answer
   distance queries from sketches alone.

   Run with: dune exec examples/quickstart.exe *)

module Rng = Ds_util.Rng
module Gen = Ds_graph.Gen
module Dijkstra = Ds_graph.Dijkstra
module Metrics = Ds_congest.Metrics
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_echo = Ds_core.Tz_echo

let () =
  (* 1. A weighted network: 100 nodes, Erdos-Renyi with average degree
     5, weights in [1, 100]. *)
  let n = 100 in
  let g = Gen.erdos_renyi ~rng:(Rng.create 42) ~n ~avg_degree:5.0 () in

  (* 2. Sample the level hierarchy (every node flips its own coins)
     and run the distributed construction. k = 3 gives stretch <= 5
     with sketches of ~ k * n^{1/k} words. *)
  let k = 3 in
  let levels = Levels.sample ~rng:(Rng.create 7) ~n ~k in
  let { Tz_echo.labels; metrics; leader; _ } = Tz_echo.build g ~levels in
  Printf.printf "Built sketches for %d nodes (k = %d, leader = node %d).\n" n k
    leader;
  Printf.printf "Distributed cost: %d rounds, %d messages, %d words.\n"
    (Metrics.rounds metrics) (Metrics.messages metrics) (Metrics.words metrics);
  let words = Array.fold_left (fun a l -> a + Label.size_words l) 0 labels in
  Printf.printf "Average sketch size: %.1f words.\n\n"
    (float_of_int words /. float_of_int n);

  (* 3. Query distances from two sketches only, and compare with the
     exact distance. *)
  let exact_from_0 = Dijkstra.sssp g ~src:0 in
  Printf.printf "%4s %10s %10s %8s\n" "pair" "estimate" "exact" "stretch";
  List.iter
    (fun v ->
      let est = Label.query labels.(0) labels.(v) in
      Printf.printf "0-%-3d %9d %10d %7.2fx\n" v est exact_from_0.(v)
        (float_of_int est /. float_of_int exact_from_0.(v)))
    [ 10; 25; 50; 75; 99 ];
  Printf.printf "\nGuarantee: every estimate is >= exact and <= %d * exact.\n"
    ((2 * k) - 1)
