(** Binary min-heap keyed by integer priorities.

    Used by Dijkstra with lazy deletion: stale entries are skipped by
    the caller when popped. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val add : 'a t -> int -> 'a -> unit

val min_elt : 'a t -> (int * 'a) option
(** Smallest key and its payload, without removing it. *)

val pop_min : 'a t -> (int * 'a) option
(** Remove and return the smallest key and its payload. *)

val clear : 'a t -> unit
