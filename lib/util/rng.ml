type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let mix x = Int64.to_int (mix64 (Int64.of_int x)) land max_int

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let split_n t n = Array.init n (fun _ -> split t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Reject to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec go () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t m n =
  if m > n then invalid_arg "Rng.sample_without_replacement: m > n";
  (* Floyd's algorithm. *)
  let chosen = Hashtbl.create (2 * m) in
  for j = n - m to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  let out = Array.make m 0 in
  let i = ref 0 in
  Hashtbl.iter (fun v () -> out.(!i) <- v; incr i) chosen;
  Array.sort compare out;
  out
