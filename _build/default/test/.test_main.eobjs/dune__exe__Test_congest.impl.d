test/test_congest.ml: Alcotest Array Ds_congest Ds_graph Ds_util Helpers List Printf
