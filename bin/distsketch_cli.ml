(* Command-line driver: run paper experiments or one-off constructions
   with chosen parameters. *)

module Rng = Ds_util.Rng
module Table = Ds_util.Table
module Graph = Ds_graph.Graph
module Gen = Ds_graph.Gen
module Props = Ds_graph.Props
module Metrics = Ds_congest.Metrics
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Eval = Ds_core.Eval
module Registry = Ds_experiments.Registry
module Pool = Ds_parallel.Pool
module Sketch = Ds_sketch.Sketch
module Sketch_family = Ds_sketch.Family
module Sketch_build = Ds_sketch.Build
module Store = Ds_oracle.Sketch_store
module Oracle = Ds_oracle.Oracle
module Workload = Ds_oracle.Workload
module Serve = Ds_oracle.Serve
module Json = Ds_util.Json
module Obs = Ds_obs.Obs
module Sampler = Ds_obs.Sampler

open Cmdliner

let family_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "er" | "erdos-renyi" -> Ok (Gen.Erdos_renyi { avg_degree = 6.0 })
    | "geometric" -> Ok (Gen.Geometric { radius = 0.1 })
    | "grid" -> Ok Gen.Grid
    | "torus" -> Ok Gen.Torus
    | "ring-chords" -> Ok (Gen.Ring_chords { chords_frac = 0.2 })
    | "tree" -> Ok Gen.Tree
    | "power-law" -> Ok (Gen.Power_law { edges_per_node = 2 })
    | "star-ring" -> Ok (Gen.Star_ring { heavy_frac = 0.25 })
    | other -> Error (`Msg (Printf.sprintf "unknown family %S" other))
  in
  Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf (Gen.family_name f))

let n_arg =
  Arg.(
    value & opt int 256
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let k_arg =
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Hierarchy depth k.")

let family_arg =
  Arg.(
    value
    & opt family_conv (Gen.Erdos_renyi { avg_degree = 6.0 })
    & info [ "family" ] ~docv:"FAMILY"
        ~doc:
          "Graph family: er, geometric, grid, torus, ring-chords, tree, \
           power-law, star-ring.")

let sketch_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Sketch_family.of_string s) in
  Arg.conv
    (parse, fun ppf f -> Format.pp_print_string ppf (Sketch_family.name f))

let sketch_arg =
  Arg.(
    value & opt sketch_conv Sketch_family.Tz
    & info [ "sketch" ] ~docv:"SKETCH"
        ~doc:
          "Sketch family: $(b,tz) (Thorup-Zwick pivots/bunches), \
           $(b,landmark) (Das Sarma random landmarks), $(b,bottomk) \
           (rank-ordered bottom-k all-distance sketches). All three build \
           on either backend and serve through the same oracle.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Worker domains for the simulator's round loop (1 = sequential). \
           Results are identical for every value.")

let backend_conv =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Ds_congest.Plane.backend_of_string s)
  in
  Arg.conv
    ( parse,
      fun ppf b ->
        Format.pp_print_string ppf (Ds_congest.Plane.backend_name b) )

let backend_arg =
  Arg.(
    value & opt backend_conv Ds_congest.Plane.Congest
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Message plane: $(b,congest) (per-link rings, supports jitter) or \
           $(b,sharded) (MPC-style bulk exchange, built for n >= 10^5). \
           Results are byte-identical.")

let shards_arg =
  Arg.(
    value & opt (some int) None
    & info [ "shards" ] ~docv:"S"
        ~doc:
          "Shard count for the sharded backend (default: the pool width). \
           Results are identical for every value.")

(* One pool per command invocation: created before the work, joined
   after, whatever happens in between. *)
let with_domains domains f =
  if domains < 1 then begin
    Printf.eprintf "--domains must be >= 1\n";
    exit 1
  end;
  Pool.with_pool ~domains f

let make_graph family n seed =
  let rng = Rng.create seed in
  Gen.build ~rng family ~n

(* Exact distances for a pair stream, one memoized Dijkstra per
   distinct source. *)
let exact_triples g pairs =
  let cache = Hashtbl.create 64 in
  Array.map
    (fun (u, v) ->
      let dist =
        match Hashtbl.find_opt cache u with
        | Some d -> d
        | None ->
          let d = Ds_graph.Dijkstra.sssp g ~src:u in
          Hashtbl.add cache u d;
          d
      in
      (u, v, dist.(v)))
    pairs

(* Deterministic fingerprint of a batch's answers, for replay checks. *)
let answers_fnv answers =
  let b = Buffer.create (8 * Array.length answers) in
  Array.iter (fun d -> Buffer.add_int64_le b (Int64.of_int d)) answers;
  Printf.sprintf "%016Lx" (Store.fnv1a64 (Buffer.contents b))

(* ---- experiments ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-4s %-42s %s\n" e.Registry.id e.Registry.title
          e.Registry.claim)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments.")
    Term.(const run $ const ())

let run_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also save each table as CSV in $(docv).")
  in
  let run domains csv_dir ids =
    with_domains domains @@ fun pool ->
    match ids with
    | [] -> ignore (Registry.run_all ~pool ?csv_dir ())
    | ids ->
      List.iter
        (fun id ->
          match Registry.find id with
          | Some e -> ignore (Registry.run_one ~pool ?csv_dir e)
          | None -> Printf.eprintf "unknown experiment %S (try `list')\n" id)
        ids
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run experiments by id (all when none given); see `list'.")
    Term.(const run $ domains_arg $ csv_arg $ ids)

(* ---- report ---- *)

let profile_conv =
  Arg.enum [ ("full", Registry.Full); ("quick", Registry.Quick) ]

let report_cmd =
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Do not write anything; re-run the experiments and fail (exit 1) \
             if the committed EXPERIMENTS.md / EXPERIMENTS.json differ from a \
             fresh render.")
  in
  let profile_arg =
    Arg.(
      value & opt profile_conv Registry.Full
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:
            "Parameter profile: $(b,full) (the committed artifacts) or \
             $(b,quick) (scaled-down, for smoke tests).")
  in
  let dir_arg =
    Arg.(
      value & opt string "."
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Directory holding EXPERIMENTS.md and EXPERIMENTS.json.")
  in
  let run domains check profile dir =
    with_domains domains @@ fun pool ->
    if check then
      match Registry.check_files ~profile ~pool ~dir () with
      | Ok () ->
        Printf.printf "report --check: %s and %s match a fresh run\n"
          Registry.md_file Registry.json_file
      | Error msg ->
        Printf.eprintf "report --check FAILED:\n%s\n" msg;
        exit 1
    else
      let paths = Registry.write_files ~profile ~pool ~dir () in
      List.iter (Printf.printf "wrote %s\n") paths
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run every experiment (e1-e15) and regenerate EXPERIMENTS.md and \
          EXPERIMENTS.json in place; with $(b,--check), verify the committed \
          files instead of rewriting them.")
    Term.(const run $ domains_arg $ check_arg $ profile_arg $ dir_arg)

(* ---- profile ---- *)

let profile_cmd =
  let run family n seed =
    let g = make_graph family n seed in
    let p = Props.profile g in
    Format.printf "%s: %a@." (Gen.family_name family) Props.pp_profile p
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Generate a graph and print n, |E|, D, S.")
    Term.(const run $ family_arg $ n_arg $ seed_arg)

(* ---- build ---- *)

let mode_conv =
  Arg.enum [ ("central", `Central); ("dist", `Dist); ("echo", `Echo) ]

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let build_cmd =
  let mode_arg =
    Arg.(
      value & opt mode_conv `Dist
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Construction: central, dist (known-S), echo (self-terminating).")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:
            "Persist the built labels as a snapshot (versioned, \
             checksummed); `oracle --load $(docv)' then serves them \
             without rebuilding.")
  in
  let obs_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-out" ] ~docv:"FILE"
          ~doc:
            "Write an obs/1 JSON dump of the build's engine metrics \
             (rounds, deliveries, words, peak backlog) to $(docv).")
  in
  let run family n seed k mode sketch_family domains backend shards save
      obs_out =
    with_domains domains @@ fun pool ->
    let g = make_graph family n seed in
    let gn = Graph.n g in
    let obs = match obs_out with Some _ -> Some (Obs.create ()) | None -> None in
    let describe sketch metrics =
      let sizes =
        Eval.size_summary (Sketch.node_size_words sketch) (Array.init gn Fun.id)
      in
      Format.printf "%s sketches built: %d nodes, k=%d@."
        (Sketch_family.name (Sketch.family sketch))
        gn k;
      Format.printf "sizes (words): %a@." Ds_util.Stats.pp_summary sizes;
      (match metrics with
      | None -> ()
      | Some m -> Format.printf "cost: %a@." Metrics.pp m);
      match save with
      | None -> ()
      | Some path ->
        let store =
          Store.v ~seed ~graph_family:(Gen.family_name family) sketch
        in
        Store.save path store;
        Format.printf "snapshot: wrote %s (%d bytes)@." path
          (String.length (Store.to_bytes store))
    in
    (match (sketch_family, mode) with
    | Sketch_family.Tz, `Central ->
      let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
      describe (Sketch.of_tz_labels (Ds_core.Tz_centralized.build g ~levels))
        None
    | Sketch_family.Tz, `Echo ->
      let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
      let r = Ds_core.Tz_echo.build ~backend ~pool ?shards ?obs g ~levels in
      Format.printf "leader: %d@." r.Ds_core.Tz_echo.leader;
      describe
        (Sketch.of_tz_labels r.Ds_core.Tz_echo.labels)
        (Some r.Ds_core.Tz_echo.metrics)
    | _, `Dist ->
      let r =
        Sketch_build.run ~backend ~pool ?shards ?obs ~family:sketch_family g
          ~k ~seed
      in
      describe r.Sketch_build.sketch (Some r.Sketch_build.metrics)
    | _, (`Central | `Echo) ->
      Printf.eprintf
        "--sketch %s is a distributed-only construction; use --mode dist\n"
        (Sketch_family.name sketch_family);
      exit 1);
    match (obs, obs_out) with
    | Some registry, Some path ->
      let meta =
        [
          ("cmd", Json.String "build");
          ("graph_family", Json.String (Gen.family_name family));
          ("sketch_family", Json.String (Sketch_family.name sketch_family));
          ("n", Json.Int gn);
          ("k", Json.Int k);
          ("backend", Json.String (Ds_congest.Plane.backend_name backend));
          ("domains", Json.Int (Pool.domains pool));
        ]
      in
      write_file path (Json.to_string (Sampler.doc ~meta registry));
      Format.printf "obs: wrote %s@." path
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Build distance sketches (any --sketch family) on a generated \
             graph and report sizes and CONGEST cost.")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ k_arg $ mode_arg
      $ sketch_arg $ domains_arg $ backend_arg $ shards_arg $ save_arg
      $ obs_out_arg)

(* ---- scale ---- *)

(* The n = 10^4..10^6 sweep behind SCALE.json: streaming graph
   construction, full distributed TZ build on the chosen backend(s),
   honest cost accounting plus process RSS per row. *)
let scale_cmd =
  let ns_arg =
    Arg.(
      value
      & opt_all int [ 10_000; 100_000 ]
      & info [ "n"; "nodes" ] ~docv:"N"
          ~doc:"Node count; repeatable, one sweep row per value.")
  in
  let backends_arg =
    Arg.(
      value
      & opt_all backend_conv [ Ds_congest.Plane.Sharded ]
      & info [ "backend" ] ~docv:"B"
          ~doc:"Backend to sweep; repeatable (congest, sharded).")
  in
  let scale_family_arg =
    Arg.(
      value & opt string "sparse"
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Streaming graph family: $(b,sparse) (spanning skeleton + \
             uniform extras), $(b,torus), $(b,tree). Unit weights.")
  in
  let avg_degree_arg =
    Arg.(
      value & opt float 8.0
      & info [ "avg-degree" ] ~docv:"DEG"
          ~doc:"Average degree for the sparse family.")
  in
  let k_arg =
    Arg.(
      value & opt int 0
      & info [ "k" ] ~docv:"K"
          ~doc:
            "Hierarchy depth; 0 (default) picks round(log10 n) per row, \
             keeping the bunch size ~ k n^(1/k) flat across the sweep.")
  in
  let out_arg =
    Arg.(
      value & opt string "SCALE.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output JSON path.")
  in
  let max_words_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-words-per-node" ] ~docv:"W"
          ~doc:
            "Budget assertion: fail (exit 1) if the message-plane backbone \
             exceeds $(docv) words per node on any row.")
  in
  let max_rss_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-rss-mb" ] ~docv:"MB"
          ~doc:
            "Budget assertion: fail (exit 1) if peak process RSS exceeds \
             $(docv) MB after any row.")
  in
  let now_ms () = Unix.gettimeofday () *. 1000.0 in
  let run ns backends family avg_degree k0 seed domains shards out max_words
      max_rss =
    with_domains domains @@ fun pool ->
    let fam = Gen.scale_family_of_string ~avg_degree family in
    let budget_failures = ref [] in
    let rows =
      List.concat_map
        (fun n ->
          let g =
            Gen.build_scale ~rng:(Rng.create seed) fam ~n
          in
          let gn = Graph.n g in
          let k =
            if k0 > 0 then k0
            else
              max 3
                (int_of_float (Float.round (log10 (float_of_int gn))))
          in
          let levels =
            Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k
          in
          List.map
            (fun backend ->
              let t0 = now_ms () in
              let r =
                Ds_core.Tz_distributed.build ~backend ~pool ?shards g
                  ~levels
              in
              let wall_ms = now_ms () -. t0 in
              let m = r.Ds_core.Tz_distributed.metrics in
              let mem_words = r.Ds_core.Tz_distributed.mem_words in
              let words_per_node =
                float_of_int mem_words /. float_of_int gn
              in
              let sketch_words =
                Array.fold_left
                  (fun acc l -> acc + Label.size_words l)
                  0 r.Ds_core.Tz_distributed.labels
              in
              let rss = Ds_util.Mem.rss_kb ()
              and hwm = Ds_util.Mem.hwm_kb () in
              let bname = Ds_congest.Plane.backend_name backend in
              Printf.printf
                "n=%-8d %-7s k=%d  %6d rounds  %12d words  %8.0f ms  \
                 %5.1f plane words/node  rss %s kB\n%!"
                gn bname k (Metrics.rounds m) (Metrics.words m) wall_ms
                words_per_node
                (match rss with Some v -> string_of_int v | None -> "?");
              (match max_words with
              | Some limit when words_per_node > float_of_int limit ->
                budget_failures :=
                  Printf.sprintf
                    "n=%d %s: %.1f plane words/node exceeds budget %d" gn
                    bname words_per_node limit
                  :: !budget_failures
              | _ -> ());
              (match (max_rss, hwm) with
              | Some limit, Some kb when kb > limit * 1024 ->
                budget_failures :=
                  Printf.sprintf "n=%d %s: peak RSS %d kB exceeds %d MB" gn
                    bname kb limit
                  :: !budget_failures
              | _ -> ());
              Json.Obj
                [
                  ("n", Json.Int gn);
                  ("m", Json.Int (Graph.m g));
                  ("k", Json.Int k);
                  ("family", Json.String (Gen.scale_family_name fam));
                  ("backend", Json.String bname);
                  ("domains", Json.Int domains);
                  ( "shards",
                    match shards with
                    | Some s -> Json.Int s
                    | None -> Json.Int domains );
                  ("rounds", Json.Int (Metrics.rounds m));
                  ("messages", Json.Int (Metrics.messages m));
                  ("words", Json.Int (Metrics.words m));
                  ("max_link_backlog", Json.Int (Metrics.max_link_backlog m));
                  ("max_pending", Json.Int r.Ds_core.Tz_distributed.max_pending);
                  ("wall_ms", Json.Float wall_ms);
                  ("plane_mem_words", Json.Int mem_words);
                  ("plane_words_per_node", Json.Float words_per_node);
                  ("sketch_words", Json.Int sketch_words);
                  ( "rss_kb",
                    match rss with Some v -> Json.Int v | None -> Json.Null );
                  ( "hwm_kb",
                    match hwm with Some v -> Json.Int v | None -> Json.Null );
                  ("heap_words", Json.Int (Ds_util.Mem.heap_words ()));
                  ("seed", Json.Int seed);
                ])
            backends)
        ns
    in
    let doc =
      Json.Obj
        [ ("schema", Json.String "scale/1"); ("rows", Json.List rows) ]
    in
    let oc = open_out out in
    output_string oc (Json.to_string doc);
    output_string oc "\n";
    close_out oc;
    Printf.printf "wrote %s (%d rows)\n" out (List.length rows);
    match !budget_failures with
    | [] -> ()
    | fs ->
      List.iter (Printf.eprintf "scale budget FAILED: %s\n") (List.rev fs);
      exit 1
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Sweep full sketch builds over n (streaming generators, unit \
          weights) on one or both message planes and write a JSON table of \
          rounds, words, wall-clock and RSS per row; optional memory-budget \
          assertions for CI.")
    Term.(
      const run $ ns_arg $ backends_arg $ scale_family_arg $ avg_degree_arg
      $ k_arg $ seed_arg $ domains_arg $ shards_arg $ out_arg $ max_words_arg
      $ max_rss_arg)

(* ---- trace ---- *)

let trace_protocol_conv =
  Arg.enum
    [
      ("setup", `Setup);
      ("multi-bf", `Multi_bf);
      ("super-bf", `Super_bf);
      ("tz", `Tz);
      ("tz-echo", `Tz_echo);
    ]

let trace_cmd =
  let protocol_arg =
    Arg.(
      value & opt trace_protocol_conv `Multi_bf
      & info [ "protocol" ] ~docv:"PROTO"
          ~doc:
            "Execution to trace: setup, multi-bf, super-bf, tz (known-S \
             build), tz-echo (self-terminating build).")
  in
  let out_arg =
    Arg.(
      value & opt string "trace-out"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Output directory (created if missing).")
  in
  let top_k_arg =
    Arg.(
      value & opt int 5
      & info [ "top-k" ] ~docv:"K" ~doc:"Hotspot nodes to print.")
  in
  let max_delay_arg =
    Arg.(
      value & opt int 0
      & info [ "max-delay" ] ~docv:"R"
          ~doc:"Bounded link asynchrony: extra 0..$(docv) rounds per message.")
  in
  let sources_arg =
    Arg.(
      value & opt int 4
      & info [ "sources" ] ~docv:"S"
          ~doc:"Source count for multi-bf / super-bf.")
  in
  let deterministic_arg =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Emit only the schema-deterministic fields: the JSONL drops the \
             wall-clock and pool columns, the Chrome trace uses virtual \
             round time. Output is then byte-identical for any --domains.")
  in
  let run family n seed k domains protocol out top_k max_delay sources det =
    with_domains domains @@ fun pool ->
    let g = make_graph family n seed in
    let gn = Graph.n g in
    let jitter =
      if max_delay <= 0 then None
      else
        Some
          {
            Ds_congest.Engine.rng = Rng.create (seed + 17);
            max_delay;
          }
    in
    let tracer = Ds_congest.Trace.create () in
    let srcs =
      let s = max 1 (min sources gn) in
      List.init s (fun i -> i * gn / s)
    in
    let name, metrics =
      match protocol with
      | `Setup ->
        let _, m = Ds_congest.Setup.run ~pool ?jitter ~tracer g in
        ("setup", m)
      | `Multi_bf ->
        if jitter <> None then begin
          Printf.eprintf "multi-bf does not support --max-delay\n";
          exit 1
        end;
        let _, m =
          Ds_congest.Multi_bf.run ~pool ~tracer g ~sources:srcs
            ~bound:(fun _ -> Ds_graph.Dist.none)
        in
        ("multi-bf", m)
      | `Super_bf ->
        let _, m = Ds_congest.Super_bf.run ~pool ?jitter ~tracer g ~sources:srcs in
        ("super-bf", m)
      | `Tz ->
        if jitter <> None then begin
          Printf.eprintf "tz does not support --max-delay (use tz-echo)\n";
          exit 1
        end;
        let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
        let r = Ds_core.Tz_distributed.build ~pool ~tracer g ~levels in
        ("tz", r.Ds_core.Tz_distributed.metrics)
      | `Tz_echo ->
        let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
        let r = Ds_core.Tz_echo.build ~pool ?jitter ~tracer g ~levels in
        ( "tz-echo",
          Metrics.add r.Ds_core.Tz_echo.setup_metrics
            r.Ds_core.Tz_echo.metrics )
    in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let timing = not det in
    let write file contents =
      let path = Filename.concat out file in
      let oc = open_out_bin path in
      output_string oc contents;
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    write
      (Printf.sprintf "%s.rounds.jsonl" name)
      (Ds_congest.Trace.jsonl ~timing tracer);
    write
      (Printf.sprintf "%s.trace.json" name)
      (Ds_congest.Trace.chrome
         ~clock:(if det then `Rounds else `Wall)
         ~phases:(Metrics.phases metrics) tracer);
    Format.printf "cost: %a@." Metrics.pp metrics;
    Format.printf "%s@."
      (Ds_util.Json.to_string
         (Ds_congest.Trace.summary ~top_k ~timing tracer))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a protocol with per-round telemetry and export the round log \
          (JSONL) and a Chrome trace-event file (load in Perfetto or \
          about:tracing).")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ k_arg $ domains_arg
      $ protocol_arg $ out_arg $ top_k_arg $ max_delay_arg $ sources_arg
      $ deterministic_arg)

(* ---- spanner ---- *)

let spanner_cmd =
  let run family n seed k domains =
    with_domains domains @@ fun pool ->
    let g = make_graph family n seed in
    let gn = Graph.n g in
    let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
    let sp, metrics = Ds_core.Spanner.of_distributed ~pool g ~levels in
    Format.printf "input:   n=%d |E|=%d@." gn (Graph.m g);
    Format.printf "spanner: |E'|=%d (bound %d * 2k-1 stretch), %.1f%% of edges@."
      (Graph.m sp) ((2 * k) - 1)
      (100.0 *. float_of_int (Graph.m sp) /. float_of_int (Graph.m g));
    Format.printf "max stretch: %.3f (bound %d)@."
      (Ds_core.Spanner.max_stretch g ~spanner:sp)
      ((2 * k) - 1);
    Format.printf "construction cost: %a@." Metrics.pp metrics
  in
  Cmd.v
    (Cmd.info "spanner"
       ~doc:"Extract the (2k-1)-spanner from the distributed construction.")
    Term.(const run $ family_arg $ n_arg $ seed_arg $ k_arg $ domains_arg)

(* ---- oracle ---- *)

let workload_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Workload.kind_of_string s) in
  Arg.conv (parse, fun ppf w -> Format.pp_print_string ppf (Workload.name w))

let oracle_cmd =
  let load_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:
            "Serve from a saved snapshot instead of building; the graph \
             arguments are ignored (the snapshot's own family/seed are \
             used to regenerate the graph for the exact-stretch check).")
  in
  let mmap_arg =
    Arg.(
      value & flag
      & info [ "mmap" ]
          ~doc:
            "With $(b,--load): map the snapshot file and serve queries \
             straight out of the mapping instead of copying it onto the \
             heap. O(header + n) start-up, zero payload copies, pages \
             shared across processes serving the same snapshot. Requires \
             a version-3 snapshot (re-save an older one to upgrade). \
             Answers are byte-identical to a heap load.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Also persist the labels served.")
  in
  let workload_arg =
    Arg.(
      value & opt workload_conv Workload.Uniform
      & info [ "workload" ] ~docv:"W"
          ~doc:
            "Query-pair stream: $(b,uniform) or $(b,zipf)[:alpha] (skewed \
             hotspot traffic, default alpha 1.2).")
  in
  let pairs_arg =
    Arg.(
      value & opt int 10_000
      & info [ "pairs" ] ~docv:"P" ~doc:"Number of query pairs in the batch.")
  in
  let qseed_arg =
    Arg.(
      value & opt int 1
      & info [ "qseed" ] ~docv:"Q" ~doc:"Workload (pair-stream) seed.")
  in
  let pairs_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pairs-file" ] ~docv:"FILE"
          ~doc:
            "Replay an explicit pair set (one \"u v\" line per query, \
             $(b,#) comments allowed) instead of drawing from \
             $(b,--workload)/$(b,--qseed) — the escape hatch for \
             byte-identical head-to-head runs across sketch families \
             or processes.")
  in
  let dump_pairs_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-pairs" ] ~docv:"FILE"
          ~doc:
            "Write the pair set this run served (drawn or replayed) in \
             the $(b,--pairs-file) format, for later replay.")
  in
  let skip_exact_arg =
    Arg.(
      value & flag
      & info [ "skip-exact" ]
          ~doc:
            "Skip the exact-distance comparison (one Dijkstra per distinct \
             source); the summary then reports null stretch.")
  in
  let serve_arg =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:
            "Run the batch through the serving loop (sharded per-domain \
             request queues, batched admission, optional hot-pair cache, \
             open-loop pacing) instead of the one-shot parallel batch; the \
             summary gains per-domain QPS, cache hit rate and p999 latency.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"QPS"
          ~doc:
            "Offered load for $(b,--serve) in queries/second; requests \
             arrive open-loop at this rate, so queueing delay shows up in \
             the latency percentiles. 0 (default) serves closed-loop at \
             full speed.")
  in
  let cache_bits_arg =
    Arg.(
      value & opt int 0
      & info [ "cache-bits" ] ~docv:"B"
          ~doc:
            "log2 of the per-domain hot-pair cache slots for $(b,--serve) \
             (0 = no cache). Cached answers are byte-identical to uncached \
             ones.")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Admission batch for $(b,--serve): pairs admitted per queue \
             dequeue (amortizes dispatch and clock reads).")
  in
  let obs_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-out" ] ~docv:"FILE"
          ~doc:
            "Write an obs/1 JSON dump to $(docv): the final metrics \
             registry plus (with $(b,--serve)) the sampler's time-series \
             points, whose cumulative counters reconcile exactly with the \
             printed summary.")
  in
  let obs_interval_arg =
    Arg.(
      value & opt int 100
      & info [ "obs-interval-ms" ] ~docv:"MS"
          ~doc:"Sampling interval for the $(b,--serve) time series.")
  in
  let obs_prom_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-prom" ] ~docv:"FILE"
          ~doc:"Write the final registry as Prometheus text exposition.")
  in
  let run family n seed k sketch_family domains load mmap save workload pairs
      qseed pairs_file dump_pairs skip_exact serve rate cache_bits batch
      obs_out obs_interval obs_prom =
    with_domains domains @@ fun pool ->
    let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
    if mmap && load = None then fail "--mmap requires --load";
    let store, source =
      match load with
      | Some path -> (
        (try Store.load ~mode:(if mmap then Store.Mmap else Store.Heap) path
         with
        | Store.Error msg -> fail "cannot load %s: %s" path msg
        | Sys_error msg -> fail "cannot load %s: %s" path msg),
        "snapshot:" ^ path )
      | None ->
        let g = make_graph family n seed in
        let built =
          Sketch_build.run ~pool ~family:sketch_family g ~k ~seed
        in
        ( Store.v ~seed ~graph_family:(Gen.family_name family)
            built.Sketch_build.sketch,
          "built" )
    in
    (match save with
    | None -> ()
    | Some path ->
      Store.save path store;
      Printf.eprintf "wrote %s (%d bytes)\n" path
        (String.length (Store.to_bytes store)));
    let meta = store.Store.meta in
    let oracle = Oracle.of_store store in
    if pairs < 1 then fail "--pairs must be >= 1";
    if meta.Store.n < 2 then fail "need at least 2 nodes to query";
    (* Serve through the flat layout (the fast path); [stream] keeps
       the boxed pairs for the exact-stretch comparison below. Same
       pairs either way, so the answers fingerprint is unchanged. *)
    let flat, stream, pairs =
      match pairs_file with
      | None ->
        let stream =
          Workload.pairs ~rng:(Rng.create qseed) workload ~n:meta.Store.n
            ~count:pairs
        in
        let flat =
          Array.init (2 * pairs) (fun i ->
              let u, v = stream.(i / 2) in
              if i land 1 = 0 then u else v)
        in
        (flat, stream, pairs)
      | Some path ->
        let flat =
          try Workload.load_pairs ~n:meta.Store.n path with
          | Failure msg -> fail "%s" msg
          | Sys_error msg -> fail "cannot read %s: %s" path msg
        in
        let count = Array.length flat / 2 in
        if count = 0 then fail "%s: empty pair file" path;
        let stream =
          Array.init count (fun i -> (flat.(2 * i), flat.((2 * i) + 1)))
        in
        (flat, stream, count)
    in
    (match dump_pairs with
    | None -> ()
    | Some path ->
      Workload.save_pairs path flat;
      Printf.eprintf "wrote %s (%d pairs)\n" path pairs);
    if obs_interval < 1 then fail "--obs-interval-ms must be >= 1";
    let obs_registry =
      match (obs_out, obs_prom) with
      | None, None -> None
      | _ -> Some (Obs.create ())
    in
    (* The mapped-bytes gauge is set once at startup (0 for heap
       loads/builds): dashboards read the zero-copy footprint next to
       RSS. *)
    (match obs_registry with
    | Some registry ->
      Obs.set
        (Obs.gauge registry Obs.Name.store_mapped_bytes)
        ~shard:0 (Store.mapped_bytes store)
    | None -> ());
    let sampler =
      match obs_registry with
      | Some registry when serve ->
        Some (Sampler.create ~interval_ms:obs_interval registry)
      | _ -> None
    in
    let serve_result =
      if not serve then None
      else begin
        if batch < 1 then fail "--batch must be >= 1";
        if cache_bits < 0 || cache_bits > Serve.max_cache_bits then
          fail "--cache-bits must be in [0, %d]" Serve.max_cache_bits;
        if rate < 0.0 then fail "--rate must be >= 0";
        Some
          (Serve.run ~pool
             ~config:{ Serve.batch; cache_bits; rate }
             ?obs:obs_registry ?sampler oracle flat)
      end
    in
    let answers, stats =
      match serve_result with
      | Some (answers, _) ->
        (* Timing fields below come from the serve stats; this keeps
           the answers identical between the two paths (pinned by the
           serve test suite). *)
        (answers, None)
      | None ->
        let answers, stats =
          Oracle.run_batch_flat ~pool ?obs:obs_registry oracle flat
        in
        (answers, Some stats)
    in
    (* Exact stretch needs the graph. A snapshot records its generation
       recipe (family name + seed), so regenerate when possible; give
       up gracefully when the family is unknown or the node count
       disagrees (approximate families like grids). *)
    let graph_for_stretch =
      if skip_exact then None
      else
        match load with
        | None -> Some (make_graph family n seed)
        | Some _ -> (
          match
            Arg.conv_parser family_conv
              (if meta.Store.graph_family = "" then "?"
               else meta.Store.graph_family)
          with
          | Error _ -> None
          | Ok fam ->
            let g = make_graph fam meta.Store.n meta.Store.seed in
            if Graph.n g = meta.Store.n then Some g else None)
    in
    let stretch_json =
      match graph_for_stretch with
      | None -> Json.Null
      | Some g ->
        let report =
          Eval.on_pairs ~query:(Oracle.query oracle) (exact_triples g stream)
        in
        (* Only tz carries a worst-case multiplicative guarantee
           (2k-1); landmark and bottom-k estimates are upper bounds
           with no fixed stretch bound, so the field goes null. *)
        let bound =
          match meta.Store.sketch_family with
          | Sketch_family.Tz -> Json.Int ((2 * meta.Store.k) - 1)
          | Sketch_family.Landmark | Sketch_family.Bottomk -> Json.Null
        in
        Json.Obj
          [
            ("max", Json.Float report.Eval.max_stretch);
            ("avg", Json.Float report.Eval.avg_stretch);
            ("p99", Json.Float report.Eval.p99);
            ("violations", Json.Int report.Eval.violations);
            ("unreachable", Json.Int report.Eval.unreachable);
            ("bound", bound);
          ]
    in
    let workload_name =
      match pairs_file with
      | None -> Workload.name workload
      | Some path -> "file:" ^ path
    in
    let id_fields =
      [
        ("source", Json.String source);
        ("n", Json.Int meta.Store.n);
        ("k", Json.Int meta.Store.k);
        ("graph_family", Json.String meta.Store.graph_family);
        ( "sketch_family",
          Json.String (Sketch_family.name meta.Store.sketch_family) );
        ("seed", Json.Int meta.Store.seed);
        ("size_words", Json.Int (Oracle.size_words oracle));
        ("load_mode", Json.String (Store.mode_name store.Store.load_mode));
        ("workload", Json.String workload_name);
      ]
    in
    let summary =
      match (serve_result, stats) with
      | Some (_, s), _ ->
        let lat = s.Serve.latency_ns in
        Json.Obj
          (("schema", Json.String "oracle-serve/1")
          :: id_fields
          @ [
              ("pairs", Json.Int s.Serve.pairs);
              ("domains", Json.Int domains);
              ("batch", Json.Int batch);
              ("rate", Json.Float s.Serve.offered_qps);
              ("qps", Json.Float s.Serve.qps);
              ("elapsed_ns", Json.Float s.Serve.elapsed_ns);
              ( "latency_ns",
                Json.Obj
                  [
                    ("mean", Json.Float lat.Serve.mean);
                    ("p50", Json.Float lat.Serve.p50);
                    ("p90", Json.Float lat.Serve.p90);
                    ("p99", Json.Float lat.Serve.p99);
                    ("p999", Json.Float lat.Serve.p999);
                    ("max", Json.Float lat.Serve.max);
                  ] );
              ( "cache",
                Json.Obj
                  [
                    ("bits", Json.Int cache_bits);
                    ( "hits",
                      Json.Int
                        (Array.fold_left
                           (fun acc (w : Serve.worker_stats) ->
                             acc + w.Serve.hits)
                           0 s.Serve.per_worker) );
                    ( "misses",
                      Json.Int
                        (Array.fold_left
                           (fun acc (w : Serve.worker_stats) ->
                             acc + w.Serve.misses)
                           0 s.Serve.per_worker) );
                    ("hit_rate", Json.Float s.Serve.hit_rate);
                  ] );
              ( "per_domain",
                Json.List
                  (Array.to_list
                     (Array.map
                        (fun (w : Serve.worker_stats) ->
                          Json.Obj
                            [
                              ("domain", Json.Int w.Serve.worker);
                              ("served", Json.Int w.Serve.served);
                              ("hits", Json.Int w.Serve.hits);
                              ("misses", Json.Int w.Serve.misses);
                              ("busy_ns", Json.Float w.Serve.busy_ns);
                              ("qps", Json.Float w.Serve.worker_qps);
                            ])
                        s.Serve.per_worker)) );
              ("stretch", stretch_json);
              ("results_fnv", Json.String (answers_fnv answers));
            ])
      | None, Some stats ->
        let lat = stats.Oracle.latency_ns in
        Json.Obj
          (("schema", Json.String "oracle-summary/1")
          :: id_fields
          @ [
              ("pairs", Json.Int stats.Oracle.pairs);
              ("domains", Json.Int domains);
              ("qps", Json.Float stats.Oracle.qps);
              ("elapsed_ns", Json.Float stats.Oracle.elapsed_ns);
              ( "latency_ns",
                Json.Obj
                  [
                    ("mean", Json.Float lat.Ds_util.Stats.mean);
                    ("p50", Json.Float lat.Ds_util.Stats.p50);
                    ("p90", Json.Float lat.Ds_util.Stats.p90);
                    ("p99", Json.Float lat.Ds_util.Stats.p99);
                    ("max", Json.Float lat.Ds_util.Stats.max);
                  ] );
              ("stretch", stretch_json);
              ("results_fnv", Json.String (answers_fnv answers));
            ])
      | None, None -> assert false
    in
    print_string (Json.to_string summary);
    match obs_registry with
    | None -> ()
    | Some registry ->
      let obs_meta =
        [
          ("cmd", Json.String "oracle");
          ("source", Json.String source);
          ("n", Json.Int meta.Store.n);
          ("k", Json.Int meta.Store.k);
          ( "sketch_family",
            Json.String (Sketch_family.name meta.Store.sketch_family) );
          ("pairs", Json.Int pairs);
          ("domains", Json.Int domains);
          ("workload", Json.String workload_name);
          ("serve", Json.Bool serve);
          ("load_mode", Json.String (Store.mode_name store.Store.load_mode));
        ]
      in
      (match obs_out with
      | Some path ->
        write_file path
          (Json.to_string (Sampler.doc ?sampler ~meta:obs_meta registry));
        Printf.eprintf "obs: wrote %s\n" path
      | None -> ());
      (match obs_prom with
      | Some path ->
        write_file path (Obs.prometheus registry);
        Printf.eprintf "obs: wrote %s\n" path
      | None -> ())
  in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:
         "Serve a batch of distance queries from the compact local oracle \
          (built fresh or loaded from a $(b,build --save) snapshot) and \
          print a JSON summary: throughput, latency percentiles, stretch \
          vs exact distances. With $(b,--serve), run the full serving loop \
          (sharded queues, batched admission, hot-pair cache, open-loop \
          rate) and report per-domain QPS, cache hit rate and p999 \
          latency.")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ k_arg $ sketch_arg
      $ domains_arg $ load_arg $ mmap_arg $ save_arg $ workload_arg
      $ pairs_arg $ qseed_arg $ pairs_file_arg $ dump_pairs_arg
      $ skip_exact_arg $ serve_arg $ rate_arg $ cache_bits_arg $ batch_arg
      $ obs_out_arg $ obs_interval_arg $ obs_prom_arg)

(* ---- obs-cat ---- *)

(* Pretty-printer / validator for obs/1 dumps: the human end of the
   metrics plane, and the schema gate CI runs (`obs-cat --check`). *)
let obs_cat_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"An obs/1 JSON dump (oracle --obs-out / build --obs-out).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate instead of printing: schema tag, per-point derived \
             block, monotone cumulative counters, strictly increasing \
             elapsed times, final >= last point. Non-zero exit on any \
             violation.")
  in
  let run file check =
    let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
    let contents =
      try In_channel.with_open_bin file In_channel.input_all
      with Sys_error msg -> fail "cannot read %s: %s" file msg
    in
    let doc =
      match Json.of_string contents with
      | Ok d -> d
      | Error msg -> fail "%s: invalid JSON (%s)" file msg
    in
    let num = function
      | Json.Int i -> float_of_int i
      | Json.Float f -> f
      | _ -> fail "%s: expected a number" file
    in
    let obj_field ctx name j =
      match Json.member name j with
      | Some v -> v
      | None -> fail "%s: %s: missing field %S" file ctx name
    in
    if check then begin
      (* The whole invariant battery lives in {!Ds_obs.Obs_doc} (so the
         test suite can drive it on synthetic dumps): schema tag,
         per-point derived block, strictly increasing elapsed times,
         monotone cumulative counters, final >= last point, well-formed
         counter label suffixes, and labeled-variant sums bounded by
         their plain base counter. *)
      match Ds_obs.Obs_doc.check doc with
      | Ok points -> Printf.printf "%s: ok (obs/1, %d points)\n" file points
      | Error msg -> fail "%s: %s" file msg
    end
    else begin
      let points =
        match obj_field "document" "points" doc with
        | Json.List l -> l
        | _ -> fail "%s: points is not a list" file
      in
      let final = obj_field "document" "final" doc in
      let final_counters =
        match obj_field "final" "counters" final with
        | Json.Obj fields -> fields
        | _ -> fail "%s: final.counters is not an object" file
      in
      let dnum point name =
        match Json.member "derived" point with
        | Some d -> (
          match Json.member name d with Some v -> num v | None -> 0.0)
        | None -> 0.0
      in
      Printf.printf "%-6s %10s %12s %9s %14s %12s %10s\n" "seq" "ms" "qps"
        "hit_rate" "p99_block_ns" "queue_depth" "rss_kb";
      List.iter
        (fun point ->
          let seq =
            match Json.member "seq" point with
            | Some (Json.Int i) -> i
            | _ -> -1
          in
          Printf.printf "%-6d %10.2f %12.0f %9.3f %14.0f %12.0f %10.0f\n" seq
            (num (obj_field "point" "elapsed_ms" point))
            (dnum point "qps") (dnum point "hit_rate")
            (dnum point "p99_block_ns")
            (dnum point "queue_depth") (dnum point "rss_kb"))
        points;
      Printf.printf "final:\n";
      List.iter
        (fun (name, v) -> Printf.printf "  %-24s %.0f\n" name (num v))
        final_counters
    end
  in
  Cmd.v
    (Cmd.info "obs-cat"
       ~doc:
         "Pretty-print an obs/1 metrics dump as a time-series table \
          (derived QPS, hit rate, p99 block latency, queue depth, RSS), \
          or validate its schema and monotonicity invariants with \
          $(b,--check).")
    Term.(const run $ file_arg $ check_arg)

(* ---- query ---- *)

let query_cmd =
  let u_arg =
    Arg.(value & opt int 0 & info [ "u"; "from" ] ~docv:"U" ~doc:"Query endpoint u.")
  in
  let v_arg =
    Arg.(value & opt int 1 & info [ "v"; "to" ] ~docv:"V" ~doc:"Query endpoint v.")
  in
  let pairs_arg =
    Arg.(
      value & opt int 0
      & info [ "pairs" ] ~docv:"P"
          ~doc:
            "Batch mode: answer $(docv) random uniform pairs from the \
             compact local oracle instead of one in-network exchange \
             (pair stream seeded by --seed).")
  in
  let run family n seed k u v domains pairs =
    with_domains domains @@ fun pool ->
    let g = make_graph family n seed in
    let gn = Graph.n g in
    let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
    let built = Ds_core.Tz_distributed.build ~pool g ~levels in
    if pairs > 0 then begin
      (* Batch mode: sketches answer locally through the oracle; no
         further network exchange. *)
      let oracle =
        Oracle.of_labels built.Ds_core.Tz_distributed.labels
      in
      let stream =
        Workload.pairs ~rng:(Rng.create (seed + 9001)) Workload.Uniform ~n:gn
          ~count:pairs
      in
      let answers, stats = Oracle.run_batch ~pool oracle stream in
      let report =
        Eval.on_pairs ~query:(Oracle.query oracle) (exact_triples g stream)
      in
      Format.printf
        "batch: %d uniform pairs answered by the local oracle (n=%d, k=%d)@."
        pairs gn k;
      Format.printf "throughput: %.0f queries/s (%.1f ms total)@."
        stats.Oracle.qps
        (stats.Oracle.elapsed_ns /. 1e6);
      Format.printf "latency ns: p50 %.0f  p99 %.0f@."
        stats.Oracle.latency_ns.Ds_util.Stats.p50
        stats.Oracle.latency_ns.Ds_util.Stats.p99;
      Format.printf
        "stretch: max %.3f avg %.3f (bound %d), %d violations@."
        report.Eval.max_stretch report.Eval.avg_stretch
        ((2 * k) - 1)
        report.Eval.violations;
      Format.printf "answers fingerprint: %s@." (answers_fnv answers)
    end
    else begin
      if u < 0 || u >= gn || v < 0 || v >= gn then begin
        Printf.eprintf "endpoints must be in [0, %d)\n" gn;
        exit 1
      end;
      let tree, _ = Ds_congest.Setup.run ~pool g in
      let r =
        Ds_core.Query_protocol.query ~pool g ~tree
          ~labels:built.Ds_core.Tz_distributed.labels ~u ~v
      in
      let exact = Ds_graph.Dijkstra.sssp g ~src:u in
      Format.printf
        "estimate d(%d,%d) = %d (exact %d, stretch %.2f), exchanged in %d \
         rounds / %d messages@."
        u v r.Ds_core.Query_protocol.estimate exact.(v)
        (float_of_int r.Ds_core.Query_protocol.estimate
        /. float_of_int exact.(v))
        r.Ds_core.Query_protocol.rounds r.Ds_core.Query_protocol.messages
    end
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Answer one distance query by in-network sketch exchange, or — \
          with $(b,--pairs) — a batch from the compact local oracle.")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ k_arg $ u_arg $ v_arg
      $ domains_arg $ pairs_arg)

(* ---- route ---- *)

let route_cmd =
  let u_arg =
    Arg.(value & opt int 0 & info [ "src" ] ~docv:"SRC" ~doc:"Token source.")
  in
  let v_arg =
    Arg.(value & opt int 1 & info [ "dst" ] ~docv:"DST" ~doc:"Token target.")
  in
  let run family n seed k src dst domains =
    with_domains domains @@ fun pool ->
    let g = make_graph family n seed in
    let gn = Graph.n g in
    let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:gn ~k in
    let built = Ds_core.Tz_distributed.build ~pool g ~levels in
    match
      Ds_core.Routing.with_labels g built.Ds_core.Tz_distributed.labels ~src
        ~dst
    with
    | None -> Printf.printf "token gave up (hop budget exhausted)\n"
    | Some o ->
      let exact = Ds_graph.Dijkstra.sssp g ~src in
      Printf.printf "delivered in %d hops, cost %d (shortest %d, %.2fx)\n"
        o.Ds_core.Routing.hops o.Ds_core.Routing.cost exact.(dst)
        (float_of_int o.Ds_core.Routing.cost /. float_of_int exact.(dst));
      Printf.printf "path: %s\n"
        (String.concat " -> "
           (List.map string_of_int o.Ds_core.Routing.path))
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Greedily forward a token using sketches as the distance oracle.")
    Term.(
      const run $ family_arg $ n_arg $ seed_arg $ k_arg $ u_arg $ v_arg
      $ domains_arg)

let main =
  Cmd.group
    (Cmd.info "distsketch" ~version:"1.0.0"
       ~doc:"Distributed distance sketches (Das Sarma-Dinitz-Pandurangan).")
    [ list_cmd; run_cmd; report_cmd; profile_cmd; build_cmd; scale_cmd;
      trace_cmd; spanner_cmd; oracle_cmd; obs_cat_cmd; query_cmd; route_cmd ]

let () = exit (Cmd.eval main)
