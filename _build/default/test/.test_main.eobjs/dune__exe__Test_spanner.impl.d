test/test_spanner.ml: Alcotest Ds_core Ds_graph Ds_util Helpers List Printf QCheck QCheck_alcotest
