lib/core/routing.ml: Array Ds_graph Hashtbl Label List Option
