lib/graph/gen.ml: Array Buffer Ds_util Graph Hashtbl List Printf
