(* Resolved obs instrument handles for the message plane, shared by
   both backends so they report through identical names. Resolution
   happens once at engine creation; the engines then gate every hot
   site on one immutable [t option] match, exactly the [?tracer]
   discipline. *)

module Obs = Ds_obs.Obs

type t = {
  rounds : Obs.counter;
  deliveries : Obs.counter;
  words : Obs.counter;
  backlog : Obs.gauge;
  busy : Obs.gauge;
}

let resolve registry =
  {
    rounds = Obs.counter registry Obs.Name.engine_rounds;
    deliveries = Obs.counter registry Obs.Name.engine_deliveries;
    words = Obs.counter registry Obs.Name.engine_words;
    backlog = Obs.gauge registry Obs.Name.engine_backlog;
    busy = Obs.gauge registry Obs.Name.engine_busy_domains;
  }

let of_opt = function None -> None | Some registry -> Some (resolve registry)
