lib/core/tz_echo.ml: Array Ds_congest Ds_graph Hashtbl Label Levels List Queue
