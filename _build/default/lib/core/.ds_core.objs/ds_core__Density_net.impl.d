lib/core/density_net.ml: Array Ds_graph Ds_util List
