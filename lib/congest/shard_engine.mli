(** MPC-style sharded superstep backend.

    Executes a {!Superstep.protocol} with the same synchronous-round
    semantics as {!Engine} — identical scheduling contract, identical
    quiescence detection, byte-identical sketches and {!Metrics} —
    but moves messages in bulk: nodes are partitioned into
    contiguous shards, each round's messages accumulate in
    sender-owned flat word rings, and supersteps exchange them as
    per-(source shard, destination shard) word batches. One pool
    worker owns each shard through the parallel phases, so every
    array cell has a single writer and the run is deterministic for
    any pool size and any shard count.

    This is the execution model of {i Massively Parallel Approximate
    Distance Sketches} (Dinitz & Nazari) applied to the source
    paper's protocols: per-round cost is dominated by a bounded
    number of bulk batch scans instead of per-link queue hops, which
    is what makes n = 10^5..10^6 builds tractable. Pick this backend
    for scale; pick {!Engine} for per-link faithfulness, jitter
    (bounded asynchrony) support, and small-n work where its lower
    constant factors win. *)

type ('state, 'msg) t

val create :
  ?pool:Ds_parallel.Pool.t ->
  ?shards:int ->
  ?tracer:Trace.t ->
  ?obs:Ds_obs.Obs.t ->
  codec:'msg Superstep.codec ->
  Ds_graph.Graph.t ->
  ('state, 'msg) Superstep.protocol ->
  ('state, 'msg) t
(** [shards] defaults to the pool width (capped at [n]); results are
    independent of it. The engine borrows [pool]; the caller owns its
    lifecycle. [tracer] enables per-round telemetry and [obs] the
    [engine.*] metrics, both exactly as in {!Engine.create} — the two
    backends report through the same {!Obs_hooks} names. *)

val graph : ('state, 'msg) t -> Ds_graph.Graph.t
(** The graph the engine was created on. *)

val metrics : ('state, 'msg) t -> Metrics.t
(** Cost accounting so far — byte-identical to an {!Engine} run of the
    same protocol. *)

val states : ('state, 'msg) t -> 'state array
(** Per-node protocol states, indexed by node id. *)

val state : ('state, 'msg) t -> int -> 'state
(** [state t u] = [(states t).(u)]. *)

val shards : ('state, 'msg) t -> int
(** The shard count actually in use (after capping at [n]). *)

val step : ('state, 'msg) t -> unit
(** One synchronous superstep: exchange, deliver, compute, absorb. *)

val run : ?max_rounds:int -> ('state, 'msg) t -> Superstep.stop_reason
(** Step until quiescent, all halted, or [max_rounds] supersteps
    (default: unbounded). *)

val quiescent : ('state, 'msg) t -> bool
(** No message in flight and none queued for the next exchange. *)

val mem_words : ('state, 'msg) t -> int
(** Backbone footprint in machine words: link tables, ring and batch
    capacities, inboxes, worklists and flags at their current
    high-water capacity. Protocol state is not counted. *)
