let check_nonempty a =
  if Array.length a = 0 then invalid_arg "Stats: empty array"

let mean a =
  check_nonempty a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  check_nonempty a;
  let m = mean a in
  let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
  acc /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let min_of a =
  check_nonempty a;
  Array.fold_left min a.(0) a

let max_of a =
  check_nonempty a;
  Array.fold_left max a.(0) a

let percentile_sorted sorted p =
  check_nonempty sorted;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile";
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let percentile a p =
  check_nonempty a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  percentile_sorted sorted p

let median a = percentile a 50.0

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let summarize a =
  check_nonempty a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  {
    n = Array.length sorted;
    mean = mean a;
    stddev = stddev a;
    min = sorted.(0);
    p50 = percentile_sorted sorted 50.0;
    p90 = percentile_sorted sorted 90.0;
    p99 = percentile_sorted sorted 99.0;
    max = sorted.(Array.length sorted - 1);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f" s.n
    s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

(* Log2 histograms: bucket 0 holds values <= 0, bucket b >= 1 holds
   [2^(b-1), 2^b - 1] — i.e. the bit length of the value. 63 buckets
   cover the whole non-negative int range. *)

let log2_buckets = 64

let log2_bucket v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    let b = bits 0 v in
    if b >= log2_buckets then log2_buckets - 1 else b
  end

let log2_bucket_upper b =
  if b <= 0 then 0
  else if b >= 63 then max_int
  else (1 lsl b) - 1

let percentile_log2 counts p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile_log2";
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then invalid_arg "Stats.percentile_log2: empty histogram";
  let rank =
    let r = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
    if r < 1 then 1 else r
  in
  let rec find b acc =
    if b >= Array.length counts then log2_bucket_upper (Array.length counts - 1)
    else begin
      let acc = acc + counts.(b) in
      if acc >= rank then log2_bucket_upper b else find (b + 1) acc
    end
  in
  find 0 0

let histogram ~buckets a =
  check_nonempty a;
  if buckets <= 0 then invalid_arg "Stats.histogram";
  let lo = min_of a and hi = max_of a in
  let width =
    if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0
  in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= buckets then buckets - 1 else b in
      counts.(b) <- counts.(b) + 1)
    a;
  Array.mapi
    (fun i c ->
      let l = lo +. (float_of_int i *. width) in
      (l, l +. width, c))
    counts
