module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Apsp = Ds_graph.Apsp
module Levels = Ds_core.Levels
module Routing = Ds_core.Routing
module Tz_centralized = Ds_core.Tz_centralized

let test_exact_oracle_routes_shortest () =
  let g = Helpers.random_graph ~seed:501 60 in
  let apsp = Apsp.compute g in
  let estimate u v = Apsp.dist apsp u v in
  for dst = 0 to 9 do
    match Routing.greedy g ~estimate ~src:42 ~dst () with
    | None -> Alcotest.failf "no route 42 -> %d" dst
    | Some o ->
      Alcotest.(check int) "cost = exact distance" (Apsp.dist apsp 42 dst)
        o.Routing.cost
  done

let test_path_endpoints () =
  let g = Helpers.path 8 in
  let apsp = Apsp.compute g in
  match Routing.greedy g ~estimate:(Apsp.dist apsp) ~src:0 ~dst:7 () with
  | None -> Alcotest.fail "no route"
  | Some o ->
    Alcotest.(check (list int)) "full path" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
      o.Routing.path;
    Alcotest.(check int) "hops" 7 o.Routing.hops

let test_sketch_routing_all_pairs_delivered () =
  let g = Helpers.random_graph ~seed:503 50 in
  let levels = Levels.sample ~rng:(Rng.create 509) ~n:50 ~k:2 in
  let labels = Tz_centralized.build g ~levels in
  let apsp = Apsp.compute g in
  let worst = ref 1.0 in
  for src = 0 to 49 do
    for dst = 0 to 49 do
      if src <> dst then begin
        match Routing.with_labels g labels ~src ~dst with
        | None -> Alcotest.failf "token lost %d -> %d" src dst
        | Some o ->
          let d = Apsp.dist apsp src dst in
          let ratio = float_of_int o.Routing.cost /. float_of_int d in
          if ratio > !worst then worst := ratio
      end
    done
  done;
  (* No formal guarantee on walk cost, but on these instances greedy
     routing stays within a small constant of optimal. *)
  Alcotest.(check bool)
    (Printf.sprintf "worst walk ratio %.2f bounded" !worst)
    true (!worst < 10.0)

let test_trivial_route () =
  let g = Helpers.path 3 in
  match Routing.greedy g ~estimate:(fun _ _ -> 0) ~src:1 ~dst:1 () with
  | Some o ->
    Alcotest.(check int) "zero hops" 0 o.Routing.hops;
    Alcotest.(check (list int)) "self path" [ 1 ] o.Routing.path
  | None -> Alcotest.fail "self route failed"

let test_hop_budget_respected () =
  let g = Helpers.path 10 in
  (* A constant estimate gives no gradient; with a tiny budget the
     token must give up rather than loop forever. *)
  match Routing.greedy g ~estimate:(fun _ _ -> 1) ~src:0 ~dst:9 ~max_hops:3 () with
  | None -> ()
  | Some o -> Alcotest.(check bool) "within budget" true (o.Routing.hops <= 3)

let suite =
  [
    Alcotest.test_case "exact oracle routes shortest" `Quick
      test_exact_oracle_routes_shortest;
    Alcotest.test_case "path endpoints" `Quick test_path_endpoints;
    Alcotest.test_case "sketch routing delivers all pairs" `Slow
      test_sketch_routing_all_pairs_delivered;
    Alcotest.test_case "trivial route" `Quick test_trivial_route;
    Alcotest.test_case "hop budget respected" `Quick test_hop_budget_respected;
  ]
