(** E1 — Lemma 3.1 / Theorem 1.1 (size): sketch size vs k.

    Paper claim: expected size O(k n^{1/k}) words, whp O(k n^{1/k} log n);
    minimised (as a function of the stretch target) around k = log n. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Stats = Ds_util.Stats
module Rng = Ds_util.Rng
module Gen = Ds_graph.Gen
module Levels = Ds_core.Levels
module Tz = Ds_core.Tz_centralized
module Label = Ds_core.Label

type params = { n : int; seed : int; ks : int list }

let default = { n = 400; seed = 1; ks = [ 1; 2; 3; 4; 5; 6; 8 ] }
let quick = { n = 120; seed = 1; ks = [ 1; 2; 3; 4 ] }

let id = "e1"
let title = "sketch size vs k"
let claim_id = "Lemma 3.1 / Theorem 1.1"

let claim =
  "expected label size O(k n^{1/k}) words, O(k n^{1/k} log n) whp, minimised \
   around k = log n"

let bound_expr = "`2k(1 + n^{1/k})` words expected; `2k n^{1/k} ln n` whp"

let prose =
  "Mean label size tracks the expected-size expression within a small \
   constant at every k, while max sizes stay a small factor above the mean \
   and far below the whp bound. k = 1 degenerates to the full distance \
   vector (exactly 2(n+1) words), and the size curve flattens past \
   k ≈ log n, which is the shape the lemma predicts."

let run ?pool { n; seed; ks } =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E1: Thorup-Zwick sketch size vs k (erdos-renyi, n=%d) — Lemma 3.1"
           n)
      ~headers:
        [
          "k"; "stretch bound"; "mean words"; "max words"; "expected 2k(1+n^1/k)";
          "whp bound"; "mean/expected";
        ]
  in
  let w =
    Common.make_workload ?pool ~seed ~family:(Gen.Erdos_renyi { avg_degree = 6.0 }) ~n ()
  in
  let checks = ref [] in
  List.iter
    (fun k ->
      let levels = Levels.sample ~rng:(Rng.create (seed + k)) ~n ~k in
      let labels = Tz.build w.Common.graph ~levels in
      let sizes =
        Array.map (fun l -> float_of_int (Label.size_words l)) labels
      in
      let s = Stats.summarize sizes in
      let fk = float_of_int k in
      let expected =
        2.0 *. fk *. (1.0 +. (float_of_int n ** (1.0 /. fk)))
      in
      let whp = 2.0 *. fk *. (float_of_int n ** (1.0 /. fk)) *. Common.ln n in
      let ok =
        s.Stats.mean <= whp
        && s.Stats.mean >= 0.5 *. expected
        && s.Stats.mean <= 1.5 *. expected
      in
      checks :=
        Report.check ~bound:expected ~ok
          (Printf.sprintf
             "mean words vs expected, within [0.5, 1.5]x and <= whp (k=%d)" k)
          s.Stats.mean
        :: !checks;
      if k = 1 then
        checks :=
          Report.check
            ~bound:(float_of_int (2 * (n + 1)))
            ~ok:(Float.abs (s.Stats.mean -. float_of_int (2 * (n + 1))) < 0.5)
            "k=1 degenerates to the full distance vector, 2(n+1) words"
            s.Stats.mean
          :: !checks;
      Table.add_row t
        [
          Table.cell_int k;
          Table.cell_int ((2 * k) - 1);
          Table.cell_float s.Stats.mean;
          Table.cell_float s.Stats.max;
          Table.cell_float expected;
          Table.cell_float whp;
          Table.cell_ratio (s.Stats.mean /. expected);
        ])
    ks;
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks = List.rev !checks;
    tables = [ t ];
    phases = [];
    round_profiles = [];
    verdict = Report.Reproduced;
  }
