lib/core/eval.ml: Array Ds_graph Ds_util Format
