lib/core/tz_distributed.ml: Array Ds_congest Ds_graph Label Levels List Printf
