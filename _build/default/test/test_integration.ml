(* End-to-end pipelines across module boundaries, mirroring the
   shipped examples at test scale. *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Gen = Ds_graph.Gen
module Apsp = Ds_graph.Apsp
module Dist = Ds_graph.Dist
module Metrics = Ds_congest.Metrics
module Multi_bf = Ds_congest.Multi_bf
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_echo = Ds_core.Tz_echo
module Slack = Ds_core.Slack
module Graceful = Ds_core.Graceful
module Cdg = Ds_core.Cdg
module Routing = Ds_core.Routing
module Eval = Ds_core.Eval

let test_quickstart_pipeline () =
  let n = 80 in
  let g = Gen.erdos_renyi ~rng:(Rng.create 601) ~n ~avg_degree:5.0 () in
  let k = 3 in
  let levels = Levels.sample ~rng:(Rng.create 607) ~n ~k in
  let r = Tz_echo.build g ~levels in
  let apsp = Apsp.compute g in
  let report =
    Eval.all_pairs
      ~query:(fun u v -> Label.query r.Tz_echo.labels.(u) r.Tz_echo.labels.(v))
      apsp
  in
  Alcotest.(check int) "no violations" 0 report.Eval.violations;
  Alcotest.(check int) "no unreachable" 0 report.Eval.unreachable;
  Alcotest.(check bool) "stretch bound" true
    (report.Eval.max_stretch <= float_of_int ((2 * k) - 1));
  Alcotest.(check bool) "did real communication" true
    (Metrics.messages r.Tz_echo.metrics > 0)

let test_monitoring_pipeline () =
  let n = 120 in
  let g = Gen.random_geometric ~rng:(Rng.create 613) ~n ~radius:0.18 () in
  let monitors = [ 5; 44; 90 ] in
  let found, _ = Multi_bf.run g ~sources:monitors ~bound:(fun _ -> Dist.none) in
  let exact = List.map (fun m -> (m, Ds_graph.Dijkstra.sssp g ~src:m)) monitors in
  Array.iteri
    (fun u entries ->
      Alcotest.(check int) "all monitors heard" 3 (List.length entries);
      List.iter
        (fun (m, d) ->
          Alcotest.(check int)
            (Printf.sprintf "d(%d, monitor %d)" u m)
            (List.assoc m exact).(u)
            d)
        entries)
    found

let test_slack_queries_match_oracle () =
  let n = 90 in
  let g = Gen.erdos_renyi ~rng:(Rng.create 617) ~n ~avg_degree:5.0 () in
  let r = Slack.build_distributed ~rng:(Rng.create 619) g ~eps:0.25 in
  let oracle = Slack.build_centralized g ~net:r.Slack.net in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Alcotest.(check int) "same estimate"
        (Slack.query oracle.(u) oracle.(v))
        (Slack.query r.Slack.sketches.(u) r.Slack.sketches.(v))
    done
  done

let test_graceful_query_is_min_of_parts () =
  let n = 64 in
  let g = Gen.erdos_renyi ~rng:(Rng.create 631) ~n ~avg_degree:5.0 () in
  let r = Graceful.build_distributed ~rng:(Rng.create 641) g in
  let s = r.Graceful.sketches in
  for u = 0 to n - 1 do
    let v = (u + 7) mod n in
    if u <> v then begin
      let by_hand =
        Array.to_list s.(u).Graceful.parts
        |> List.mapi (fun i (_, pu) ->
               let _, pv = s.(v).Graceful.parts.(i) in
               Cdg.query pu pv)
        |> List.fold_left min Dist.infinity
      in
      Alcotest.(check int) "min of parts" by_hand (Graceful.query s.(u) s.(v))
    end
  done

let test_cdg_on_star_ring () =
  (* The S >> D topology stresses phase lengths and the cell cast. *)
  let g = Gen.star_ring ~n:65 ~heavy:16 in
  let apsp = Apsp.compute g in
  let r = Cdg.build_distributed ~rng:(Rng.create 643) g ~eps:0.25 ~k:2 in
  let far = Eval.far_pairs apsp ~eps:0.25 in
  Array.iter
    (fun (u, v, d) ->
      let est = Cdg.query r.Cdg.sketches.(u) r.Cdg.sketches.(v) in
      Alcotest.(check bool) "sound" true (est >= d);
      Alcotest.(check bool) "8k-1" true (est <= 15 * d))
    far

let test_routing_pipeline_under_jitter () =
  (* Sketches built under asynchrony route tokens exactly like the
     synchronous ones (labels are equal, so walks are identical). *)
  let n = 60 in
  let g = Gen.random_geometric ~rng:(Rng.create 647) ~n ~radius:0.22 () in
  let levels = Levels.sample ~rng:(Rng.create 653) ~n ~k:2 in
  let sync = Tz_echo.build g ~levels in
  let jit =
    Tz_echo.build
      ~jitter:{ Ds_congest.Engine.rng = Rng.create 659; max_delay = 3 }
      g ~levels
  in
  for src = 0 to 9 do
    let dst = n - 1 - src in
    let a = Routing.with_labels g sync.Tz_echo.labels ~src ~dst in
    let b = Routing.with_labels g jit.Tz_echo.labels ~src ~dst in
    Alcotest.(check bool) "same outcome" true (a = b)
  done

let suite =
  [
    Alcotest.test_case "quickstart pipeline (echo mode)" `Quick
      test_quickstart_pipeline;
    Alcotest.test_case "monitoring pipeline" `Quick test_monitoring_pipeline;
    Alcotest.test_case "slack distributed matches oracle queries" `Quick
      test_slack_queries_match_oracle;
    Alcotest.test_case "graceful query = min of parts" `Quick
      test_graceful_query_is_min_of_parts;
    Alcotest.test_case "cdg on star-ring" `Quick test_cdg_on_star_ring;
    Alcotest.test_case "routing pipeline under jitter" `Quick
      test_routing_pipeline_under_jitter;
  ]
