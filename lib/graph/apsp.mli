(** All-pairs exact distances (ground truth for stretch evaluation). *)

type t

val compute : ?pool:Ds_parallel.Pool.t -> Graph.t -> t
(** Dijkstra from every source; O(n m log n) time, O(n^2) space. The
    rows are independent, so they are fanned over [pool] (default
    sequential) one source per task; the result is identical for every
    pool size. *)

val dist : t -> int -> int -> int

val n : t -> int

val iter_pairs : t -> (int -> int -> int -> unit) -> unit
(** [iter_pairs t f] calls [f u v d] for every unordered pair [u < v]. *)

val sample_pairs :
  rng:Ds_util.Rng.t -> t -> count:int -> (int * int * int) array
(** Random distinct-pair sample [(u, v, d)] for large graphs. *)
