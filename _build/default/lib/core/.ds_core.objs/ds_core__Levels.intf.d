lib/core/levels.mli: Ds_util
