(** E7 — Theorem 1.3 / 4.8 / Corollary 4.9: gracefully degrading
    sketches.

    Paper claims: one sketch of O(log^4 n) words that simultaneously
    has stretch O(log (1/ε)) with ε-slack for every ε — hence
    worst-case stretch O(log n) and average stretch O(1). The flat
    avg-stretch column as n grows is the headline reproduction. *)

module Table = Ds_util.Table
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Stats = Ds_util.Stats
module Graceful = Ds_core.Graceful
module Eval = Ds_core.Eval

type params = { seed : int; ns : int list }

let default = { seed = 7; ns = [ 64; 128; 256; 512 ] }

let run ?pool { seed; ns } =
  let t =
    Table.create
      ~title:
        "E7: gracefully degrading sketches vs n (erdos-renyi) — Theorem 1.3"
      ~headers:
        [
          "n"; "log2 n"; "parts"; "mean words"; "log^4 n"; "max stretch";
          "avg stretch"; "p99"; "viol"; "rounds";
        ]
  in
  List.iter
    (fun n ->
      let w =
        Common.make_workload ~seed
          ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
          ~n
      in
      let r = Graceful.build_distributed ?pool ~rng:(Rng.create (seed + n)) w.Common.graph in
      let report =
        Eval.all_pairs
          ~query:(fun u v ->
            Graceful.query r.Graceful.sketches.(u) r.Graceful.sketches.(v))
          w.Common.apsp
      in
      let sizes = Eval.size_summary Graceful.size_words r.Graceful.sketches in
      let lg = float_of_int (Common.log2i n) in
      Table.add_row t
        [
          Table.cell_int n;
          Table.cell_int (Common.log2i n);
          Table.cell_int (Array.length r.Graceful.sketches.(0).Graceful.parts);
          Table.cell_float sizes.Stats.mean;
          Table.cell_float (lg ** 4.0);
          Table.cell_float ~decimals:3 report.Eval.max_stretch;
          Table.cell_float ~decimals:3 report.Eval.avg_stretch;
          Table.cell_float ~decimals:3 report.Eval.p99;
          Table.cell_int report.Eval.violations;
          Table.cell_int (Metrics.rounds r.Graceful.metrics);
        ])
    ns;
  [ t ]
