(** Growable int vector with reusable storage.

    Unlike a list, clearing keeps the backing array, so a vector that
    is filled and drained every simulation round settles at its
    high-water capacity and stops allocating. Used by the CONGEST
    engine for its active-link worklist and per-round run lists. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int

val capacity : t -> int
(** Backing-array size in words (>= {!length}); memory accounting. *)

val is_empty : t -> bool
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit

val clear : t -> unit
(** Drops all elements; keeps the backing storage. *)

val truncate : t -> int -> unit
(** [truncate t len] keeps the first [len] elements (used for in-place
    compaction). *)

val append : t -> t -> unit
(** [append dst src] pushes every element of [src] onto [dst] in
    order; [src] is unchanged. Amortised allocation-free once [dst]
    has reached its high-water capacity. *)

val sort : t -> unit
(** In-place ascending sort. Allocation-free (no comparator closure,
    no scratch), so it is safe in the engine's zero-alloc round path;
    not stable, which is irrelevant for ints. *)

val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
