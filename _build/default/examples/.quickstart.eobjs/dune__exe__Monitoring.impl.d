examples/monitoring.ml: Array Ds_congest Ds_core Ds_graph Ds_util Hashtbl List Option Printf String
