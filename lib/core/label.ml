module Dist = Ds_graph.Dist

type t = {
  owner : int;
  k : int;
  pivots : (int * int) array;
  bunch : (int, int * int) Hashtbl.t;
}

let create ~owner ~k =
  {
    owner;
    k;
    pivots = Array.make k Dist.none;
    bunch = Hashtbl.create 16;
  }

let add_bunch t ~node ~dist ~level = Hashtbl.replace t.bunch node (dist, level)

let set_pivot t ~level ~dist ~node = t.pivots.(level) <- (dist, node)

let bunch_dist t w =
  match Hashtbl.find_opt t.bunch w with Some (d, _) -> Some d | None -> None

let bunch_size t = Hashtbl.length t.bunch

let bunch_nodes t =
  Hashtbl.fold (fun w (d, l) acc -> (w, d, l) :: acc) t.bunch []
  |> List.sort compare

let size_words t = (2 * t.k) + (2 * bunch_size t)

let query lu lv =
  if lu.k <> lv.k then invalid_arg "Label.query: mismatched k";
  let rec go i =
    if i >= lu.k then Dist.infinity
    else begin
      let du, pu = lu.pivots.(i) and dv, pv = lv.pivots.(i) in
      let via_pu =
        if Dist.is_finite du then
          match bunch_dist lv pu with
          | Some d -> Dist.add du d
          | None -> Dist.infinity
        else Dist.infinity
      in
      let via_pv =
        if Dist.is_finite dv then
          match bunch_dist lu pv with
          | Some d -> Dist.add dv d
          | None -> Dist.infinity
        else Dist.infinity
      in
      let est = min via_pu via_pv in
      if Dist.is_finite est then est else go (i + 1)
    end
  in
  go 0

let query_bidirectional lu lv =
  if lu.k <> lv.k then invalid_arg "Label.query_bidirectional: mismatched k";
  let best = ref Dist.infinity in
  for i = 0 to lu.k - 1 do
    let du, pu = lu.pivots.(i) and dv, pv = lv.pivots.(i) in
    (if Dist.is_finite du then
       match bunch_dist lv pu with
       | Some d -> best := min !best (Dist.add du d)
       | None -> ());
    if Dist.is_finite dv then
      match bunch_dist lu pv with
      | Some d -> best := min !best (Dist.add dv d)
      | None -> ()
  done;
  !best

let equal a b =
  a.owner = b.owner && a.k = b.k
  && Array.for_all2 ( = ) a.pivots b.pivots
  && Hashtbl.length a.bunch = Hashtbl.length b.bunch
  && Hashtbl.fold
       (fun w (d, _) ok ->
         ok
         &&
         match Hashtbl.find_opt b.bunch w with
         | Some (d', _) -> d = d'
         | None -> false)
       a.bunch true

let to_words t =
  (* Canonical wire order: bunch entries sorted by node id. Hashtbl
     iteration order is unspecified, so sorting here is what makes
     equal labels serialize to identical arrays — the invariant the
     snapshot format's byte-determinism rests on. [bunch_nodes] sorts
     by node id (keys are unique, so the triple sort is a node-id
     sort). *)
  let bunch = bunch_nodes t in
  let out = Array.make (1 + t.k + List.length bunch) (0, 0) in
  out.(0) <- (t.owner, t.k);
  Array.iteri (fun i (d, p) -> out.(1 + i) <- (d, p)) t.pivots;
  List.iteri (fun i (w, d, _) -> out.(1 + t.k + i) <- (w, d)) bunch;
  out

let of_words words =
  if Array.length words < 1 then invalid_arg "Label.of_words: empty";
  let owner, k = words.(0) in
  if k < 1 then invalid_arg "Label.of_words: bad k";
  if Array.length words < 1 + k then invalid_arg "Label.of_words: truncated";
  let t = create ~owner ~k in
  for i = 0 to k - 1 do
    t.pivots.(i) <- words.(1 + i)
  done;
  for i = 1 + k to Array.length words - 1 do
    let w, d = words.(i) in
    if Hashtbl.mem t.bunch w then
      invalid_arg "Label.of_words: duplicate bunch node";
    add_bunch t ~node:w ~dist:d ~level:(-1)
  done;
  t

let pp ppf t =
  Format.fprintf ppf "@[<v>label(owner=%d k=%d words=%d)@," t.owner t.k
    (size_words t);
  Array.iteri
    (fun i (d, p) -> Format.fprintf ppf "  p_%d = %d (d=%d)@," i p d)
    t.pivots;
  List.iter
    (fun (w, d, l) -> Format.fprintf ppf "  bunch %d d=%d lvl=%d@," w d l)
    (bunch_nodes t);
  Format.fprintf ppf "@]"
