(* Properties and edge cases cutting across graph/eval/slack/levels. *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Apsp = Ds_graph.Apsp
module Metrics = Ds_congest.Metrics
module Multi_bf = Ds_congest.Multi_bf
module Levels = Ds_core.Levels
module Slack = Ds_core.Slack
module Eval = Ds_core.Eval

let test_far_pairs_against_brute_force () =
  let g = Helpers.random_graph ~seed:1001 40 in
  let apsp = Apsp.compute g in
  let eps = 0.3 in
  let expected = ref [] in
  let n = 40 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if v <> u then begin
        let closer = ref 0 in
        for w = 0 to n - 1 do
          if Apsp.dist apsp u w < Apsp.dist apsp u v then incr closer
        done;
        if float_of_int !closer >= eps *. float_of_int n then
          expected := (u, v, Apsp.dist apsp u v) :: !expected
      end
    done
  done;
  let got = Eval.far_pairs apsp ~eps in
  Alcotest.(check int) "same count" (List.length !expected) (Array.length got);
  let sort a = List.sort compare a in
  Alcotest.(check bool) "same pairs" true
    (sort !expected = sort (Array.to_list got))

let test_multi_bf_rounds_near_s_on_star_ring () =
  (* Single source on the far side of the ring: Bellman-Ford needs at
     least ~S rounds and, modulo small constants, not much more. *)
  let g = Ds_graph.Gen.star_ring ~n:129 ~heavy:32 in
  let s = Ds_graph.Props.shortest_path_diameter g in
  let _, m =
    Multi_bf.run g ~sources:[ 64 ] ~bound:(fun _ -> Dist.none)
  in
  let rounds = Metrics.rounds m in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d within [S/2, 2S+4] for S=%d" rounds s)
    true
    (rounds >= s / 2 && rounds <= (2 * s) + 4)

let test_query_protocol_under_jitter () =
  let g = Helpers.random_graph ~seed:1013 50 in
  let levels = Levels.sample ~rng:(Rng.create 1019) ~n:50 ~k:2 in
  let labels = Ds_core.Tz_centralized.build g ~levels in
  let jitter = { Ds_congest.Engine.rng = Rng.create 1021; max_delay = 3 } in
  let tree, _ = Ds_congest.Setup.run ~jitter g in
  (* The tree is a valid spanning tree under jitter, so the exchange
     still delivers the right label. *)
  let r = Ds_core.Query_protocol.query g ~tree ~labels ~u:0 ~v:49 in
  Alcotest.(check int) "estimate intact"
    (Ds_core.Label.query labels.(0) labels.(49))
    r.Ds_core.Query_protocol.estimate

let prop_neighbor_accessors_consistent =
  QCheck.Test.make ~name:"neighbor_at/neighbor_index/weight agree" ~count:30
    QCheck.(pair (int_range 5 40) (int_range 0 100000))
    (fun (n, seed) ->
      let g = Helpers.random_graph ~seed n in
      let ok = ref true in
      for u = 0 to n - 1 do
        for i = 0 to Graph.degree g u - 1 do
          let v, w = Graph.neighbor_at g u i in
          if Graph.neighbor_index g u v <> i then ok := false;
          if Graph.weight g u v <> w then ok := false;
          if Graph.weight g v u <> w then ok := false
        done
      done;
      !ok)

let prop_slack_query_symmetric =
  QCheck.Test.make ~name:"slack query symmetric" ~count:20
    QCheck.(pair (int_range 8 40) (int_range 0 100000))
    (fun (n, seed) ->
      let g = Helpers.random_graph ~seed n in
      let r = Slack.build_distributed ~rng:(Rng.create (seed + 1)) g ~eps:0.3 in
      let s = r.Slack.sketches in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Slack.query s.(u) s.(v) <> Slack.query s.(v) s.(u) then ok := false
        done
      done;
      !ok)

let test_levels_geometric_decay () =
  (* |A_i| should shrink by roughly n^{1/k} per level on average. *)
  let n = 4096 and k = 4 in
  let t = Levels.sample ~rng:(Rng.create 1031) ~n ~k in
  let c = Levels.counts t in
  let expected_ratio = float_of_int n ** (1.0 /. float_of_int k) in
  for i = 1 to k - 1 do
    let ratio = float_of_int c.(i - 1) /. float_of_int (max 1 c.(i)) in
    Alcotest.(check bool)
      (Printf.sprintf "level %d ratio %.1f near %.1f" i ratio expected_ratio)
      true
      (ratio > expected_ratio /. 2.5 && ratio < expected_ratio *. 2.5)
  done

let test_eval_size_summary () =
  let sizes = Eval.size_summary String.length [| "ab"; "abcd"; "abcdef" |] in
  Alcotest.(check (float 1e-9)) "mean" 4.0 sizes.Ds_util.Stats.mean;
  Alcotest.(check (float 1e-9)) "max" 6.0 sizes.Ds_util.Stats.max

let suite =
  [
    Alcotest.test_case "far-pairs = brute force" `Quick
      test_far_pairs_against_brute_force;
    Alcotest.test_case "multi-bf rounds ~ S on star-ring" `Quick
      test_multi_bf_rounds_near_s_on_star_ring;
    Alcotest.test_case "query protocol under jitter" `Quick
      test_query_protocol_under_jitter;
    QCheck_alcotest.to_alcotest prop_neighbor_accessors_consistent;
    QCheck_alcotest.to_alcotest prop_slack_query_symmetric;
    Alcotest.test_case "levels geometric decay" `Quick
      test_levels_geometric_decay;
    Alcotest.test_case "eval size summary" `Quick test_eval_size_summary;
  ]
