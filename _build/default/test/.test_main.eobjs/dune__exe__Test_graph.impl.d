test/test_graph.ml: Alcotest Array Ds_graph Ds_util Helpers List Printf QCheck QCheck_alcotest
