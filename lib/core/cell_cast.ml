module Graph = Ds_graph.Graph
module Engine = Ds_congest.Engine
module Plane = Ds_congest.Plane
module Superstep = Ds_congest.Superstep
module Super_bf = Ds_congest.Super_bf

type msg = Chunk of int * int

type state = {
  children : int array; (* neighbor indices *)
  stream : (int * int) array; (* own payload (roots) or [||] *)
  mutable cursor : int; (* next chunk to originate (roots only) *)
  mutable received : (int * int) list; (* reversed chunks from parent *)
}

let protocol ~forest ~payload : (state, msg) Engine.protocol =
  let open Engine in
  let send_chunk api st (a, b) =
    Array.iter (fun c -> api.send c (Chunk (a, b))) st.children
  in
  let emit api st =
    if st.cursor < Array.length st.stream then begin
      send_chunk api st st.stream.(st.cursor);
      st.cursor <- st.cursor + 1
    end
  in
  {
    name = "cell-cast";
    max_msg_words = 2;
    msg_words = (fun (Chunk _) -> 2);
    halted = (fun st -> st.cursor >= Array.length st.stream);
    init =
      (fun api ->
        let u = api.id in
        let to_idx v =
          let rec find i = if api.neighbor_id i = v then i else find (i + 1) in
          find 0
        in
        let is_root = forest.Super_bf.parent.(u) < 0 in
        let st =
          {
            children =
              Array.of_list (List.map to_idx forest.Super_bf.children.(u));
            stream = (if is_root then payload u else [||]);
            cursor = 0;
            received = [];
          }
        in
        emit api st;
        st);
    on_round =
      (fun api st inbox ->
        (* Forward every chunk received from the cell parent. The
           parent sends at most one chunk per round, so each child link
           carries at most one forwarded chunk per round. *)
        Engine.Inbox.iter
          (fun _ (Chunk (a, b)) ->
            st.received <- (a, b) :: st.received;
            send_chunk api st (a, b))
          inbox;
        emit api st);
  }

let codec =
  let open Ds_util in
  {
    Superstep.encode =
      (fun b (Chunk (a, c)) ->
        Ivec.push b a;
        Ivec.push b c);
    decode = (fun w o -> Chunk (Ivec.get w o, Ivec.get w (o + 1)));
  }

let run ?backend ?pool ?shards g ~forest ~payload =
  let r =
    Plane.run ?backend ?pool ?shards ~codec g (protocol ~forest ~payload)
  in
  (match r.Plane.stop with
  | Quiescent | All_halted -> ()
  | Round_limit -> failwith "Cell_cast: round limit hit");
  let received =
    Array.mapi
      (fun u st ->
        if forest.Super_bf.parent.(u) < 0 then payload u
        else Array.of_list (List.rev st.received))
      r.Plane.states
  in
  let m = r.Plane.metrics in
  Ds_congest.Metrics.mark_phase m "cell-cast";
  (received, m)
