(** Global graph properties used to parameterise the paper's bounds. *)

val is_connected : Graph.t -> bool

val hop_diameter : Graph.t -> int
(** Exact hop diameter [D] (all-sources BFS; O(n m)). *)

val shortest_path_diameter : Graph.t -> int
(** Exact shortest-path diameter [S]: the maximum over all pairs of the
    minimum hop count among shortest weighted paths (all-sources
    hop-aware Dijkstra; O(n m log n)). *)

val weighted_diameter : Graph.t -> int
(** Maximum finite weighted distance. *)

type profile = { n : int; m : int; d : int; s : int; wdiam : int }

val profile : Graph.t -> profile
val pp_profile : Format.formatter -> profile -> unit
