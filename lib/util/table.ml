type t = {
  title : string;
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~headers = { title; headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 256 in
  let pad i cell =
    let w = widths.(i) in
    let s = String.make (w - String.length cell) ' ' in
    (* Right-align numeric-looking cells, left-align text. *)
    let numeric =
      String.length cell > 0
      && (match cell.[0] with '0' .. '9' | '-' | '+' | '.' -> true | _ -> false)
    in
    if numeric then s ^ cell else cell ^ s
  in
  let emit_row row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_string buf " |\n"
  in
  let sep =
    let total =
      Array.fold_left ( + ) 0 widths + (3 * (ncols - 1)) + 4
    in
    String.make total '-' ^ "\n"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf sep;
  emit_row t.headers;
  Buffer.add_string buf sep;
  List.iter emit_row rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print t = print_string (render t)

let title t = t.title

let headers t = t.headers

let rows t = List.rev t.rows

let to_markdown t =
  let buf = Buffer.create 256 in
  let cell c =
    (* Pipes would break the GFM grid; nothing else needs escaping in
       the cell vocabulary the experiments use. *)
    String.concat "\\|" (String.split_on_char '|' c)
  in
  let row cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " (List.map cell cells));
    Buffer.add_string buf " |\n"
  in
  row t.headers;
  row (List.map (fun _ -> "---") t.headers);
  List.iter row (List.rev t.rows);
  Buffer.contents buf

let csv_cell c =
  let needs_quote =
    String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c
  in
  if needs_quote then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let buf = Buffer.create 256 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  row t.headers;
  List.iter row (List.rev t.rows);
  Buffer.contents buf

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    s
  |> fun s ->
  (* squeeze runs of dashes and trim *)
  let buf = Buffer.create (String.length s) in
  let prev_dash = ref true in
  String.iter
    (fun c ->
      if c = '-' then begin
        if not !prev_dash then Buffer.add_char buf c;
        prev_dash := true
      end
      else begin
        Buffer.add_char buf c;
        prev_dash := false
      end)
    s;
  let out = Buffer.contents buf in
  if String.length out > 0 && out.[String.length out - 1] = '-' then
    String.sub out 0 (String.length out - 1)
  else out

let save_csv t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (slug t.title ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc;
  path

let cell_int = string_of_int

let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let cell_ratio f = Printf.sprintf "%.2fx" f
