(** Distributed Thorup–Zwick with full termination detection — the
    paper's Section 3.3. No node knows [S] or any global quantity
    beyond [n]; instead:

    - a leader is elected and a BFS tree [T] built ({!Ds_congest.Setup});
    - within a phase, every flooded announcement is ECHO-acknowledged:
      a node that rejects (or supersedes) a received announcement
      echoes it immediately, while a node that re-broadcasts it echoes
      its parent only after collecting echoes for its own broadcast
      from all neighbors — so a phase-[i] source learns when its
      cluster flood has fully quiesced;
    - COMPLETE messages converge-cast up [T] once subtrees are
      complete, and the leader broadcasts START down [T] to open the
      next phase (FINISH after phase 0).

    Produces labels structurally equal to {!Tz_distributed.build} and
    {!Tz_centralized.build} on the same hierarchy, at the cost of at
    most a constant factor more messages and rounds (experiment E4
    measures the actual overhead). *)

type result = {
  labels : Label.t array;
  metrics : Ds_congest.Metrics.t;
      (** total cost: setup (election + tree) plus all phases *)
  setup_metrics : Ds_congest.Metrics.t;  (** the setup share of it *)
  leader : int;
}

val build :
  ?backend:Ds_congest.Plane.backend -> ?pool:Ds_parallel.Pool.t ->
  ?shards:int -> ?jitter:Ds_congest.Engine.jitter ->
  ?tracer:Ds_congest.Trace.t -> ?obs:Ds_obs.Obs.t ->
  Ds_graph.Graph.t -> levels:Levels.t -> result
(** With [jitter] the protocol runs under bounded link asynchrony (the
    paper's stated future-work model). Announcements, echoes and
    COMPLETEs are phase-tagged, and a node that sees a phase-[i]
    announcement while still in phase [i+1] advances by causal
    inference (the announcement proves phase [i+1] completed
    globally), so the produced labels are still exactly the
    Thorup–Zwick labels. Round counts under jitter measure the delay
    schedule, not the algorithm. *)
