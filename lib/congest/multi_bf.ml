module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist

type entry = {
  mutable dist : int;
  mutable queued : bool;
  mutable parent_idx : int; (* neighbor that delivered [dist]; -1 at source *)
}

type state = {
  bound : int * int;
  tbl : (int, entry) Hashtbl.t;
  pending : int Queue.t;
  mutable max_pending : int;
}

let accept st src nd from =
  if Dist.lex_lt (nd, src) st.bound then begin
    match Hashtbl.find_opt st.tbl src with
    | Some e when e.dist <= nd -> None
    | Some e ->
      e.dist <- nd;
      e.parent_idx <- from;
      Some e
    | None ->
      let e = { dist = nd; queued = false; parent_idx = from } in
      Hashtbl.replace st.tbl src e;
      Some e
  end
  else None

let enqueue st src e =
  if not e.queued then begin
    e.queued <- true;
    Queue.push src st.pending;
    if Queue.length st.pending > st.max_pending then
      st.max_pending <- Queue.length st.pending
  end

let pop_and_broadcast api st =
  match Queue.take_opt st.pending with
  | None -> ()
  | Some src ->
    let e = Hashtbl.find st.tbl src in
    e.queued <- false;
    api.Engine.broadcast (src, e.dist)

let protocol ~is_source ~bound : (state, int * int) Engine.protocol =
  let open Engine in
  {
    name = "multi-bf";
    max_msg_words = 2;
    msg_words = (fun _ -> 2);
    halted = (fun st -> Queue.is_empty st.pending);
    init =
      (fun api ->
        let st =
          {
            bound = bound api.id;
            tbl = Hashtbl.create 16;
            pending = Queue.create ();
            max_pending = 0;
          }
        in
        (* A source records and announces itself only if its own (0, id)
           passes its bound — the Thorup–Zwick condition for belonging
           to its own bunch, which always holds for phase-i sources. *)
        if is_source api.id && Dist.lex_lt (0, api.id) st.bound then begin
          let e = { dist = 0; queued = false; parent_idx = -1 } in
          Hashtbl.replace st.tbl api.id e;
          enqueue st api.id e
        end;
        st);
    on_round =
      (fun api st inbox ->
        let process i (src, dist) =
          let nd = dist + api.neighbor_weight i in
          match accept st src nd i with
          | None -> ()
          | Some e -> enqueue st src e
        in
        Engine.Inbox.iter process inbox;
        pop_and_broadcast api st);
  }

let found st = Hashtbl.fold (fun src e acc -> (src, e.dist) :: acc) st.tbl []

let found_with_parents st =
  Hashtbl.fold (fun src e acc -> (src, e.dist, e.parent_idx) :: acc) st.tbl []

let max_pending st = st.max_pending

let run ?pool ?tracer g ~sources ~bound =
  let n = Graph.n g in
  let src_set = Array.make n false in
  List.iter (fun s -> src_set.(s) <- true) sources;
  let eng =
    Engine.create ?pool ?tracer g
      (protocol ~is_source:(fun u -> src_set.(u)) ~bound)
  in
  (match Engine.run eng with
  | Engine.Quiescent | Engine.All_halted -> ()
  | Engine.Round_limit -> failwith "Multi_bf: round limit hit");
  let m = Engine.metrics eng in
  Metrics.mark_phase m "multi-bf";
  (Array.map found (Engine.states eng), m)
