lib/util/table.mli:
