(* P2P overlay scenario (paper Section 2.1): a peer-to-peer overlay
   with heterogeneous link latencies wants to answer many pairwise
   latency queries. Computing each on demand costs Omega(S) rounds of
   distributed Bellman-Ford; preprocessing once with distance sketches
   reduces every query to a sketch exchange.

   The overlay here is the S >> D regime the paper's Section 2.1
   highlights: a hub gives every pair a 2-hop (but expensive) route,
   while the cheap shortest paths wind around a large ring — so any
   on-demand shortest-path computation needs Omega(S) ~ n rounds, yet
   the hop diameter D is 2.

   Run with: dune exec examples/p2p_overlay.exe *)

module Rng = Ds_util.Rng
module Gen = Ds_graph.Gen
module Props = Ds_graph.Props
module Metrics = Ds_congest.Metrics
module Super_bf = Ds_congest.Super_bf
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_distributed = Ds_core.Tz_distributed

let () =
  let n = 257 in
  let g = Gen.star_ring ~n ~heavy:64 in
  let p = Props.profile g in
  Format.printf "Overlay: %a@." Props.pp_profile p;

  (* Preprocess once. *)
  let k = 3 in
  let levels = Levels.sample ~rng:(Rng.create 13) ~n ~k in
  let built = Tz_distributed.build g ~levels in
  let build_rounds = Metrics.rounds built.Tz_distributed.metrics in
  let labels = built.Tz_distributed.labels in
  let mean_words =
    float_of_int
      (Array.fold_left (fun a l -> a + Label.size_words l) 0 labels)
    /. float_of_int n
  in
  Printf.printf "One-time preprocessing: %d rounds; mean sketch %.1f words.\n"
    build_rounds mean_words;

  (* Cost model per query:
     - on demand: one distributed Bellman-Ford = Omega(S) rounds;
     - with sketches: fetch the peer's sketch over the overlay,
       O(D + |L|) rounds pipelined (a peer that knows the target's IP
       contacts it directly: O(|L|) in the underlying network). *)
  let _, bf = Super_bf.single_source g ~src:(n / 2) in
  let on_demand = Metrics.rounds bf in
  let with_sketch = p.Props.d + int_of_float mean_words in
  Printf.printf "Per query: on-demand %d rounds vs sketch exchange ~%d rounds.\n"
    on_demand with_sketch;
  let queries = 1000 in
  let total_on_demand = queries * on_demand in
  let total_sketch = build_rounds + (queries * with_sketch) in
  Printf.printf
    "For %d queries: %d rounds on demand vs %d rounds with sketches (%.1fx).\n"
    queries total_on_demand total_sketch
    (float_of_int total_on_demand /. float_of_int total_sketch);

  (* Show a few queries. *)
  let exact = Ds_graph.Apsp.compute g in
  Printf.printf "\nSample queries (estimate/exact):";
  List.iter
    (fun (u, v) ->
      let est = Label.query labels.(u) labels.(v) in
      Printf.printf " %d-%d:%d/%d" u v est (Ds_graph.Apsp.dist exact u v))
    [ (3, 117); (40, 160); (77, 191); (1, 129) ];
  print_newline ()
