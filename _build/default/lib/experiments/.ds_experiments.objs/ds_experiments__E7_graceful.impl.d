lib/experiments/e7_graceful.ml: Array Common Ds_congest Ds_core Ds_graph Ds_util List
