(** (ε,k)-CDG sketches (paper Section 4, Lemma 4.4/4.5, Theorem 4.6).

    Thorup–Zwick run on an ε-density net [N] ([A_0 = N], promotion
    probability [((10/ε) ln n)^{-1/k}]); the sketch of [u] is its
    nearest net node [u'], the distance [d(u,u')], and the TZ label of
    [u'] over the net metric. For pairs where [v] is ε-far from [u]
    the estimate [d(u,u') + tz(u',v') + d(v',v)] has stretch at most
    [8k - 1]. Construction: density-net sampling (free), super-source
    Bellman–Ford, Algorithm 2 over the net hierarchy, and a cell
    broadcast delivering [L(u')] to every [u]. *)

type sketch = {
  owner : int;
  nearest : int;  (** u' *)
  nearest_dist : int;  (** d(u, u') *)
  net_label : Label.t;  (** L(u') — what the paper's sketch stores *)
  own_label : Label.t;
      (** u's own label over the net hierarchy — a by-product of
          Algorithm 2 used by the {!query_direct} ablation; not charged
          to {!size_words}. *)
}

val size_words : sketch -> int
(** 2 words (nearest ID and distance) + the net label. *)

val query : sketch -> sketch -> int
(** The paper's estimate [d(u,u') + tz(L(u'), L(v')) + d(v',v)]. *)

val query_direct : sketch -> sketch -> int
(** Ablation: TZ query directly on the endpoints' own net-hierarchy
    labels (no net detour). *)

type result = {
  sketches : sketch array;
  net : int list;
  net_levels : Levels.t;
  metrics : Ds_congest.Metrics.t;  (** everything, transfer included *)
  transfer_metrics : Ds_congest.Metrics.t;  (** the cell-broadcast share *)
}

val net_sampling_probability : n:int -> eps:float -> k:int -> float
(** The level-promotion probability over the net,
    [((10/ε) ln n)^{-1/k}]. *)

val build_distributed :
  ?backend:Ds_congest.Plane.backend -> ?pool:Ds_parallel.Pool.t ->
  ?shards:int -> rng:Ds_util.Rng.t -> Ds_graph.Graph.t ->
  eps:float -> k:int -> result
(** The full pipeline with honest CONGEST accounting: net sampling,
    super-source Bellman–Ford, Algorithm 2 on the net hierarchy, and
    the {!Cell_cast} label transfer ([transfer_metrics] is that last
    share). *)

val build_centralized :
  rng:Ds_util.Rng.t -> Ds_graph.Graph.t -> eps:float -> k:int ->
  sketch array
(** Same construction from exact distances (oracle for tests). *)
