lib/congest/engine.ml: Array Ds_graph Ds_parallel Ds_util Metrics Option Printf Queue
