module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Gen = Ds_graph.Gen
module Dist = Ds_graph.Dist
module Dijkstra = Ds_graph.Dijkstra
module Bfs = Ds_graph.Bfs
module Bellman_ford = Ds_graph.Bellman_ford
module Props = Ds_graph.Props
module Apsp = Ds_graph.Apsp

let test_graph_basics () =
  let g = Helpers.diamond () in
  Alcotest.(check int) "n" 6 (Graph.n g);
  Alcotest.(check int) "m" 7 (Graph.m g);
  Alcotest.(check int) "deg 0" 3 (Graph.degree g 0);
  Alcotest.(check int) "weight 0-3" 9 (Graph.weight g 0 3);
  Alcotest.(check int) "weight symmetric" 9 (Graph.weight g 3 0);
  Alcotest.(check bool) "has edge" true (Graph.has_edge g 4 5);
  Alcotest.(check bool) "no edge" false (Graph.has_edge g 1 5)

let test_graph_rejects_bad_edges () =
  let bad name edges =
    Alcotest.(check bool) name true
      (try
         ignore (Graph.of_edges ~n:3 edges);
         false
       with Invalid_argument _ -> true)
  in
  bad "self loop" [ (1, 1, 1) ];
  bad "range" [ (0, 3, 1) ];
  bad "weight" [ (0, 1, 0) ];
  bad "duplicate" [ (0, 1, 1); (1, 0, 2) ]

let test_graph_edges_roundtrip () =
  let g = Helpers.diamond () in
  let g' = Graph.of_edges ~n:6 (Graph.edges g) in
  Alcotest.(check int) "same m" (Graph.m g) (Graph.m g');
  List.iter
    (fun (u, v, w) ->
      Alcotest.(check int) "same weight" w (Graph.weight g' u v))
    (Graph.edges g)

let test_dijkstra_diamond () =
  let g = Helpers.diamond () in
  let d = Dijkstra.sssp g ~src:0 in
  Alcotest.(check (array int)) "dists" [| 0; 1; 3; 6; 4; 6 |] d

let test_dijkstra_parents_form_tree () =
  let g = Helpers.random_graph 80 in
  let dist, parent = Dijkstra.sssp_with_parents g ~src:0 in
  Array.iteri
    (fun v p ->
      if v <> 0 then begin
        Alcotest.(check bool) "has parent" true (p >= 0);
        Alcotest.(check int) "tree edge tight" dist.(v)
          (dist.(p) + Graph.weight g p v)
      end)
    parent

let test_multi_source_matches_min () =
  let g = Helpers.random_graph 60 in
  let sources = [| 3; 17; 44 |] in
  let dist, nearest = Dijkstra.multi_source g ~sources in
  let per_source = Array.map (fun s -> Dijkstra.sssp g ~src:s) sources in
  for u = 0 to Graph.n g - 1 do
    let best = ref Dist.none in
    Array.iteri
      (fun i s ->
        let d = per_source.(i).(u) in
        if Dist.lex_lt (d, s) !best then best := (d, s))
      sources;
    Alcotest.(check (pair int int))
      (Printf.sprintf "node %d" u)
      !best
      (dist.(u), nearest.(u))
  done

let test_sssp_hops_on_parallel_paths () =
  (* Two shortest paths of equal weight, different hop counts: hops
     must pick the smaller. 0-1-2-3 (1+1+1) vs 0-3 (3). *)
  let g = Graph.of_edges ~n:4 [ (0, 1, 1); (1, 2, 1); (2, 3, 1); (0, 3, 3) ] in
  let dist, hops = Dijkstra.sssp_hops g ~src:0 in
  Alcotest.(check int) "dist" 3 dist.(3);
  Alcotest.(check int) "hops prefers direct edge" 1 hops.(3)

let prop_dijkstra_equals_bellman_ford =
  QCheck.Test.make ~name:"dijkstra = bellman-ford on random graphs" ~count:30
    QCheck.(pair (int_range 5 40) (int_range 0 10000))
    (fun (n, seed) ->
      let g = Helpers.random_graph ~seed n in
      let src = seed mod n in
      let d1 = Dijkstra.sssp g ~src in
      let d2, _ = Bellman_ford.sssp g ~src in
      d1 = d2)

let prop_bfs_is_unit_weight_dijkstra =
  QCheck.Test.make ~name:"bfs = dijkstra on unit weights" ~count:30
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let g =
        Gen.erdos_renyi ~rng ~weights:Gen.unit_weights ~n:40 ~avg_degree:3.0 ()
      in
      let h = Bfs.hops g ~src:0 in
      let d = Dijkstra.sssp g ~src:0 in
      Array.for_all2 (fun a b -> a = b) h d)

let test_generators_connected_and_positive () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " connected") true (Props.is_connected g);
      List.iter
        (fun (_, _, w) ->
          Alcotest.(check bool) (name ^ " weight > 0") true (w > 0))
        (Graph.edges g))
    (Helpers.graph_suite 7)

let test_grid_shape () =
  let g = Gen.grid ~rng:(Rng.create 1) ~rows:3 ~cols:4 () in
  Alcotest.(check int) "n" 12 (Graph.n g);
  (* 3*(4-1) horizontal + (3-1)*4 vertical *)
  Alcotest.(check int) "m" 17 (Graph.m g)

let test_hypercube_shape () =
  let g = Gen.hypercube ~rng:(Rng.create 1) ~dims:4 () in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check int) "m" 32 (Graph.m g);
  for u = 0 to 15 do
    Alcotest.(check int) "regular degree" 4 (Graph.degree g u)
  done

let test_ring_shape () =
  let g = Gen.ring ~rng:(Rng.create 1) ~n:10 () in
  Alcotest.(check int) "m" 10 (Graph.m g);
  Alcotest.(check int) "hop diameter" 5 (Props.hop_diameter g)

let test_star_ring_s_much_larger_than_d () =
  let g = Gen.star_ring ~n:101 ~heavy:25 in
  let p = Props.profile g in
  Alcotest.(check int) "D = 2" 2 p.Props.d;
  Alcotest.(check bool)
    (Printf.sprintf "S = %d >> D" p.Props.s)
    true
    (p.Props.s >= 20)

let test_hop_diameter_path () =
  let g = Helpers.path 9 in
  Alcotest.(check int) "D" 8 (Props.hop_diameter g);
  Alcotest.(check int) "S" 8 (Props.shortest_path_diameter g)

let test_spd_at_least_hop_diameter () =
  List.iter
    (fun (name, g) ->
      let p = Props.profile g in
      Alcotest.(check bool) (name ^ ": S >= D") true (p.Props.s >= p.Props.d))
    (Helpers.graph_suite 19)

let test_apsp_symmetric () =
  let g = Helpers.random_graph 50 in
  let apsp = Apsp.compute g in
  for u = 0 to 49 do
    for v = 0 to 49 do
      Alcotest.(check int) "symmetric" (Apsp.dist apsp u v) (Apsp.dist apsp v u)
    done
  done

let prop_apsp_triangle_inequality =
  QCheck.Test.make ~name:"apsp satisfies triangle inequality" ~count:20
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = Helpers.random_graph ~seed 30 in
      let apsp = Apsp.compute g in
      let ok = ref true in
      for u = 0 to 29 do
        for v = 0 to 29 do
          for w = 0 to 29 do
            if Apsp.dist apsp u v > Apsp.dist apsp u w + Apsp.dist apsp w v
            then ok := false
          done
        done
      done;
      !ok)

(* Pins [Apsp.compute ?pool]: fanning the Dijkstra rows over a pool
   must not change a single entry relative to the sequential run. *)
let test_apsp_parallel_matches_sequential () =
  List.iter
    (fun (name, g) ->
      let seq = Apsp.compute g in
      List.iter
        (fun domains ->
          Ds_parallel.Pool.with_pool ~domains (fun pool ->
              let par = Apsp.compute ~pool g in
              let n = Apsp.n seq in
              for u = 0 to n - 1 do
                for v = 0 to n - 1 do
                  Alcotest.(check int)
                    (Printf.sprintf "%s d=%d (%d,%d)" name domains u v)
                    (Apsp.dist seq u v) (Apsp.dist par u v)
                done
              done))
        [ 2; 4 ])
    (Helpers.graph_suite 23)

let test_dist_lex_order () =
  Alcotest.(check bool) "lt dist" true (Dist.lex_lt (1, 9) (2, 0));
  Alcotest.(check bool) "tie id" true (Dist.lex_lt (2, 0) (2, 1));
  Alcotest.(check bool) "not lt" false (Dist.lex_lt (2, 1) (2, 1));
  Alcotest.(check bool) "add saturates" true
    (Dist.add Dist.infinity 5 = Dist.infinity);
  Alcotest.(check bool) "none is top" true (Dist.lex_lt (Dist.infinity, 0) Dist.none)

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "graph rejects bad edges" `Quick
      test_graph_rejects_bad_edges;
    Alcotest.test_case "graph edges roundtrip" `Quick test_graph_edges_roundtrip;
    Alcotest.test_case "dijkstra diamond" `Quick test_dijkstra_diamond;
    Alcotest.test_case "dijkstra parents form tree" `Quick
      test_dijkstra_parents_form_tree;
    Alcotest.test_case "multi-source matches min" `Quick
      test_multi_source_matches_min;
    Alcotest.test_case "sssp hops on parallel paths" `Quick
      test_sssp_hops_on_parallel_paths;
    QCheck_alcotest.to_alcotest prop_dijkstra_equals_bellman_ford;
    QCheck_alcotest.to_alcotest prop_bfs_is_unit_weight_dijkstra;
    Alcotest.test_case "generators connected, positive" `Quick
      test_generators_connected_and_positive;
    Alcotest.test_case "grid shape" `Quick test_grid_shape;
    Alcotest.test_case "hypercube shape" `Quick test_hypercube_shape;
    Alcotest.test_case "ring shape" `Quick test_ring_shape;
    Alcotest.test_case "star-ring: S >> D" `Quick
      test_star_ring_s_much_larger_than_d;
    Alcotest.test_case "hop diameter of path" `Quick test_hop_diameter_path;
    Alcotest.test_case "S >= D on all families" `Quick
      test_spd_at_least_hop_diameter;
    Alcotest.test_case "apsp symmetric" `Quick test_apsp_symmetric;
    Alcotest.test_case "apsp parallel = sequential" `Quick
      test_apsp_parallel_matches_sequential;
    QCheck_alcotest.to_alcotest prop_apsp_triangle_inequality;
    Alcotest.test_case "dist lex order" `Quick test_dist_lex_order;
  ]
