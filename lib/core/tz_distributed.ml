module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Engine = Ds_congest.Engine
module Plane = Ds_congest.Plane
module Metrics = Ds_congest.Metrics
module Multi_bf = Ds_congest.Multi_bf

type result = {
  labels : Label.t array;
  metrics : Metrics.t;
  max_pending : int;
  mem_words : int;
}

let build ?backend ?pool ?shards ?tracer ?obs g ~levels =
  let n = Graph.n g in
  let k = Levels.k levels in
  let labels = Array.init n (fun u -> Label.create ~owner:u ~k) in
  (* pivot.(u) starts as p_k = (infinity, -) and is lowered as phases
     complete; during phase i it holds p_{i+1}(u), i.e. the bound. *)
  let pivot = Array.make n Dist.none in
  let phase_metrics = ref [] in
  let max_pending = ref 0 in
  let mem_words = ref 0 in
  for i = k - 1 downto 0 do
    let proto =
      Multi_bf.protocol
        ~is_source:(fun u -> Levels.level levels u = i)
        ~bound:(fun u -> pivot.(u))
    in
    let r =
      Plane.run ?backend ?pool ?shards ?tracer ?obs ~codec:Multi_bf.codec g
        proto
    in
    (match r.Plane.stop with
    | Quiescent | All_halted -> ()
    | Round_limit -> failwith "Tz_distributed: round limit hit");
    let m = r.Plane.metrics in
    mem_words := max !mem_words r.Plane.mem_words;
    Metrics.mark_phase m (Printf.sprintf "phase-%d" i);
    phase_metrics := m :: !phase_metrics;
    (* Fold this phase into the labels and lower the pivots. *)
    Array.iteri
      (fun u st ->
        max_pending := max !max_pending (Multi_bf.max_pending st);
        let best = ref pivot.(u) in
        List.iter
          (fun (src, dist) ->
            Label.add_bunch labels.(u) ~node:src ~dist ~level:i;
            if Dist.lex_lt (dist, src) !best then best := (dist, src))
          (Multi_bf.found st);
        pivot.(u) <- !best;
        let d, p = !best in
        if Dist.is_finite d then
          Label.set_pivot labels.(u) ~level:i ~dist:d ~node:p)
      r.Plane.states
  done;
  let metrics =
    List.fold_left Metrics.add (Metrics.create ()) (List.rev !phase_metrics)
  in
  { labels; metrics; max_pending = !max_pending; mem_words = !mem_words }
