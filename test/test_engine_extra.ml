(* Engine-level semantics that the protocol correctness proofs lean
   on: FIFO links (with and without jitter), round numbering, and
   quiescence behaviour. *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Engine = Ds_congest.Engine
module Metrics = Ds_congest.Metrics

(* Node 0 sends a numbered burst to node 1; node 1 records arrivals. *)
let burst_protocol ~count : ((int * int) list ref, int) Engine.protocol =
  {
    Engine.name = "burst";
    max_msg_words = 1;
    msg_words = (fun _ -> 1);
    halted = (fun _ -> true);
    init =
      (fun api ->
        if api.Engine.id = 0 then
          for s = 1 to count do
            api.Engine.send 0 s
          done;
        ref []);
    on_round =
      (fun api st inbox ->
        Engine.Inbox.iter
          (fun _ m -> st := (m, api.Engine.round ()) :: !st)
          inbox);
  }

let arrivals ?jitter count =
  let g = Graph.of_edges ~n:2 [ (0, 1, 1) ] in
  let eng = Engine.create ?jitter g (burst_protocol ~count) in
  ignore (Engine.run eng);
  List.rev !(Engine.state eng 1)

let test_fifo_synchronous () =
  let a = arrivals 5 in
  Alcotest.(check (list int)) "order" [ 1; 2; 3; 4; 5 ] (List.map fst a);
  Alcotest.(check (list int)) "one per round" [ 1; 2; 3; 4; 5 ]
    (List.map snd a)

let test_fifo_under_jitter () =
  let jitter = { Engine.rng = Rng.create 901; max_delay = 5 } in
  let a = arrivals ~jitter 8 in
  Alcotest.(check (list int)) "order preserved" [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    (List.map fst a);
  let rounds = List.map snd a in
  let rec strictly_increasing = function
    | x :: (y :: _ as rest) -> x < y && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "arrival rounds strictly increase" true
    (strictly_increasing rounds)

let test_jitter_never_reorders_qcheck =
  QCheck.Test.make ~name:"jitter preserves per-link FIFO order" ~count:50
    QCheck.(pair (int_range 1 20) (int_range 0 100000))
    (fun (count, seed) ->
      let jitter = { Engine.rng = Rng.create seed; max_delay = seed mod 7 } in
      let a = arrivals ~jitter count in
      List.map fst a = List.init count (fun i -> i + 1))

let test_round_numbers_visible_to_nodes () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 1) ] in
  let seen = ref [] in
  let proto : (unit, int) Engine.protocol =
    {
      Engine.name = "rounds";
      max_msg_words = 1;
      msg_words = (fun _ -> 1);
      halted = (fun _ -> true);
      init = (fun api -> if api.Engine.id = 0 then api.Engine.send 0 0);
      on_round =
        (fun api _ inbox ->
          if api.Engine.id = 0 then seen := api.Engine.round () :: !seen;
          (* keep one message circulating for three rounds *)
          Engine.Inbox.iter
            (fun _ m -> if m < 2 then api.Engine.send 0 (m + 1))
            inbox);
    }
  in
  let eng = Engine.create g proto in
  ignore (Engine.run eng);
  Alcotest.(check bool) "rounds increase from 1" true
    (List.rev !seen |> List.mapi (fun i r -> r = i + 1) |> List.for_all Fun.id)

let test_quiescent_empty_protocol () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1); (1, 2, 1) ] in
  let proto : (unit, int) Engine.protocol =
    {
      Engine.name = "silent";
      max_msg_words = 1;
      msg_words = (fun _ -> 1);
      halted = (fun _ -> true);
      init = (fun _ -> ());
      on_round = (fun _ _ _ -> ());
    }
  in
  let eng = Engine.create g proto in
  let reason = Engine.run eng in
  Alcotest.(check bool) "halts immediately" true (reason = Engine.All_halted);
  Alcotest.(check int) "zero rounds" 0 (Metrics.rounds (Engine.metrics eng));
  Alcotest.(check int) "zero messages" 0 (Metrics.messages (Engine.metrics eng))

let test_round_limit () =
  (* Two nodes ping-pong forever; the limit must fire. *)
  let g = Graph.of_edges ~n:2 [ (0, 1, 1) ] in
  let proto : (unit, int) Engine.protocol =
    {
      Engine.name = "ping-pong";
      max_msg_words = 1;
      msg_words = (fun _ -> 1);
      halted = (fun _ -> false);
      init = (fun api -> if api.Engine.id = 0 then api.Engine.send 0 0);
      on_round =
        (fun api _ inbox ->
          Engine.Inbox.iter (fun i m -> api.Engine.send i m) inbox);
    }
  in
  let eng = Engine.create g proto in
  let reason = Engine.run ~max_rounds:50 eng in
  Alcotest.(check bool) "limit reached" true (reason = Engine.Round_limit)

(* The message plane's headline claim: once ring/inbox capacities hit
   their high-water mark, a round allocates zero minor words. The
   protocol body uses indexed inbox access (no closure, no iterator)
   and int messages, so any allocation the test sees comes from the
   engine itself. [Gc.minor_words] returns a boxed float and the box
   for call [k] is charged to the counter read by call [k+1], so the
   per-call overhead is measured first and subtracted. *)
let test_zero_alloc_steady_state () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 1) ] in
  let proto : (unit, int) Engine.protocol =
    {
      Engine.name = "ping-pong";
      max_msg_words = 1;
      msg_words = (fun _ -> 1);
      halted = (fun _ -> false);
      init = (fun api -> if api.Engine.id = 0 then api.Engine.send 0 0);
      on_round =
        (fun api _ inbox ->
          for i = 0 to Engine.Inbox.length inbox - 1 do
            api.Engine.send (Engine.Inbox.from inbox i)
              (Engine.Inbox.msg inbox i)
          done);
    }
  in
  let eng = Engine.create g proto in
  for _ = 1 to 100 do
    Engine.step eng
  done;
  let w0 = Gc.minor_words () in
  let w1 = Gc.minor_words () in
  let call_overhead = w1 -. w0 in
  let rounds = 1000 in
  let a = Gc.minor_words () in
  for _ = 1 to rounds do
    Engine.step eng
  done;
  let b = Gc.minor_words () in
  let per_round = (b -. a -. call_overhead) /. float_of_int rounds in
  Alcotest.(check (float 0.0)) "minor words per steady round" 0.0 per_round

(* The same pin with the metrics plane attached: an instrumented round
   is a handful of extra int-array stores, so steady-state rounds must
   still allocate exactly zero minor words. *)
let test_zero_alloc_instrumented_round () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 1) ] in
  let proto : (unit, int) Engine.protocol =
    {
      Engine.name = "ping-pong";
      max_msg_words = 1;
      msg_words = (fun _ -> 1);
      halted = (fun _ -> false);
      init = (fun api -> if api.Engine.id = 0 then api.Engine.send 0 0);
      on_round =
        (fun api _ inbox ->
          for i = 0 to Engine.Inbox.length inbox - 1 do
            api.Engine.send (Engine.Inbox.from inbox i)
              (Engine.Inbox.msg inbox i)
          done);
    }
  in
  let obs = Ds_obs.Obs.create () in
  let eng = Engine.create ~obs g proto in
  for _ = 1 to 100 do
    Engine.step eng
  done;
  let w0 = Gc.minor_words () in
  let w1 = Gc.minor_words () in
  let call_overhead = w1 -. w0 in
  let rounds = 1000 in
  let a = Gc.minor_words () in
  for _ = 1 to rounds do
    Engine.step eng
  done;
  let b = Gc.minor_words () in
  let per_round = (b -. a -. call_overhead) /. float_of_int rounds in
  Alcotest.(check (float 0.0)) "minor words per instrumented round" 0.0
    per_round;
  Alcotest.(check bool) "counters advanced" true
    (Ds_obs.Obs.value obs Ds_obs.Obs.Name.engine_deliveries >= rounds)

(* And for the serving tier: the per-block instrumentation Serve.run
   executes — three counter adds, a gauge store, a histogram observe,
   plus the int_of_float narrowing of the clock delta the block
   already holds — must allocate zero minor words. (The whole of
   Serve.run cannot be pinned this way: its post-join latency sort
   boxes a data-dependent number of floats. The sampler's own
   minor-words series covers the full loop end to end; this test
   pins the instrumentation itself, with warm handles, exactly as the
   engine-round pin above does.) *)
let test_zero_alloc_instrumented_serve_block () =
  let obs = Ds_obs.Obs.create () in
  let module Obs = Ds_obs.Obs in
  let admitted = Obs.counter obs Obs.Name.serve_admitted in
  let served = Obs.counter obs Obs.Name.serve_served in
  let hits = Obs.counter obs Obs.Name.serve_hits in
  let misses = Obs.counter obs Obs.Name.serve_misses in
  let queue = Obs.gauge obs Obs.Name.serve_queue_depth in
  let block = Obs.histogram obs Obs.Name.serve_block_ns in
  let t_adm = 1234.5 and t_done = 987654.25 in
  let instrumented_block w i =
    Obs.add admitted ~shard:w 64;
    Obs.add served ~shard:w 64;
    Obs.add hits ~shard:w (i land 63);
    Obs.add misses ~shard:w (64 - (i land 63));
    Obs.set queue ~shard:w (100_000 - i);
    Obs.observe block ~shard:w (int_of_float (t_done -. t_adm))
  in
  for i = 1 to 100 do
    instrumented_block (i land 3) i
  done;
  let w0 = Gc.minor_words () in
  let w1 = Gc.minor_words () in
  let call_overhead = w1 -. w0 in
  let blocks = 10_000 in
  let a = Gc.minor_words () in
  for i = 1 to blocks do
    instrumented_block (i land 3) i
  done;
  let b = Gc.minor_words () in
  let per_block = (b -. a -. call_overhead) /. float_of_int blocks in
  Alcotest.(check (float 0.0)) "minor words per instrumented serve block" 0.0
    per_block;
  Alcotest.(check int) "served counted" ((100 + blocks) * 64)
    (Obs.counter_value served)

let suite =
  [
    Alcotest.test_case "fifo synchronous" `Quick test_fifo_synchronous;
    Alcotest.test_case "fifo under jitter" `Quick test_fifo_under_jitter;
    QCheck_alcotest.to_alcotest test_jitter_never_reorders_qcheck;
    Alcotest.test_case "round numbers visible" `Quick
      test_round_numbers_visible_to_nodes;
    Alcotest.test_case "quiescent empty protocol" `Quick
      test_quiescent_empty_protocol;
    Alcotest.test_case "round limit fires" `Quick test_round_limit;
    Alcotest.test_case "steady-state rounds allocate zero minor words" `Quick
      test_zero_alloc_steady_state;
    Alcotest.test_case "instrumented rounds allocate zero minor words" `Quick
      test_zero_alloc_instrumented_round;
    Alcotest.test_case "instrumented serve block allocates zero minor words"
      `Quick test_zero_alloc_instrumented_serve_block;
  ]
