(* The metrics plane's contract: sharded instruments reduce to exact
   totals once writers quiesce, the approximate (histogram) percentiles
   agree with the exact ones to within one log2 bucket, the sampler's
   cumulative points reconcile with the run's own accounting, the
   engine's [engine.*] counters equal its Metrics on both backends,
   and attaching [?obs] never perturbs a [?tracer]'s exports. *)

module Rng = Ds_util.Rng
module Stats = Ds_util.Stats
module Mem = Ds_util.Mem
module Json = Ds_util.Json
module Graph = Ds_graph.Graph
module Metrics = Ds_congest.Metrics
module Trace = Ds_congest.Trace
module Multi_bf = Ds_congest.Multi_bf
module Plane = Ds_congest.Plane
module Obs = Ds_obs.Obs
module Obs_doc = Ds_obs.Obs_doc
module Sampler = Ds_obs.Sampler
module Oracle = Ds_oracle.Oracle
module Serve = Ds_oracle.Serve
module Workload = Ds_oracle.Workload
module Pool = Ds_parallel.Pool

(* --- registry ------------------------------------------------------ *)

let test_registration () =
  let t = Obs.create ~shards:4 () in
  Alcotest.(check int) "shards rounded" 4 (Obs.shards t);
  let c1 = Obs.counter t "a.count" in
  let c2 = Obs.counter t "a.count" in
  Obs.incr c1 ~shard:0;
  Obs.add c2 ~shard:1 2;
  Alcotest.(check int) "idempotent: same instrument" 3 (Obs.counter_value c1);
  Alcotest.check_raises "kind mismatch raises"
    (Invalid_argument "Obs.gauge: \"a.count\" already registered with another kind")
    (fun () -> ignore (Obs.gauge t "a.count"));
  let t8 = Obs.create ~shards:5 () in
  Alcotest.(check int) "shards rounded up to pow2" 8 (Obs.shards t8)

let test_counter_reduce_across_shards () =
  let t = Obs.create ~shards:8 () in
  let c = Obs.counter t "c" in
  for w = 0 to 7 do
    Obs.add c ~shard:w (w + 1)
  done;
  Alcotest.(check int) "sum over shards" 36 (Obs.counter_value c);
  (* out-of-range shard ids wrap with [land mask], never raise *)
  Obs.add c ~shard:1000 100;
  Alcotest.(check int) "wrapped shard lands in-bounds" 136 (Obs.counter_value c)

let test_gauge_semantics () =
  let t = Obs.create ~shards:4 () in
  let g = Obs.gauge t "g" in
  Obs.set g ~shard:0 7;
  Obs.set g ~shard:0 3;
  Alcotest.(check int) "single-writer gauge: last value" 3 (Obs.gauge_value g);
  Obs.set g ~shard:1 5;
  Obs.set g ~shard:2 2;
  Alcotest.(check int) "per-worker gauges sum" 10 (Obs.gauge_value g);
  let m = Obs.gauge t "m" in
  Obs.set_max m ~shard:0 4;
  Obs.set_max m ~shard:0 9;
  Obs.set_max m ~shard:0 6;
  Alcotest.(check int) "set_max keeps the peak" 9 (Obs.gauge_value m)

let test_histogram_reduce () =
  let t = Obs.create ~shards:4 () in
  let h = Obs.histogram t "h" in
  Obs.observe h ~shard:0 1;
  Obs.observe h ~shard:1 3;
  Obs.observe h ~shard:2 1000;
  let s = Obs.hist_value h in
  Alcotest.(check int) "count" 3 s.Obs.count;
  Alcotest.(check int) "sum" 1004 s.Obs.sum;
  Alcotest.(check int) "bucket of 1" 1 s.Obs.buckets.(Stats.log2_bucket 1);
  Alcotest.(check int) "bucket of 3" 1 s.Obs.buckets.(Stats.log2_bucket 3);
  Alcotest.(check int) "bucket of 1000" 1
    s.Obs.buckets.(Stats.log2_bucket 1000);
  Alcotest.(check int) "p100 = upper bound of top bucket"
    (Stats.log2_bucket_upper (Stats.log2_bucket 1000))
    (Obs.hist_percentile s 100.);
  let empty = Obs.hist_value (Obs.histogram t "h2") in
  Alcotest.(check int) "empty histogram percentile" 0
    (Obs.hist_percentile empty 99.)

let test_value_by_name () =
  let t = Obs.create () in
  let c = Obs.counter t "x" in
  Obs.add c ~shard:0 5;
  Alcotest.(check int) "counter by name" 5 (Obs.value t "x");
  Alcotest.(check int) "unregistered name reads 0" 0 (Obs.value t "nope")

(* --- log2 buckets and the +/-1-bucket percentile pin (S1) ---------- *)

let test_log2_edges () =
  Alcotest.(check int) "v<=0 -> bucket 0" 0 (Stats.log2_bucket 0);
  Alcotest.(check int) "negative -> bucket 0" 0 (Stats.log2_bucket (-5));
  Alcotest.(check int) "1 -> bucket 1" 1 (Stats.log2_bucket 1);
  Alcotest.(check int) "2 -> bucket 2" 2 (Stats.log2_bucket 2);
  Alcotest.(check int) "3 -> bucket 2" 2 (Stats.log2_bucket 3);
  Alcotest.(check int) "4 -> bucket 3" 3 (Stats.log2_bucket 4);
  (* OCaml's max_int is 2^62 - 1: bit-length 62, one below the clamp *)
  Alcotest.(check int) "max_int in bucket 62" 62 (Stats.log2_bucket max_int);
  Alcotest.(check int) "upper 0" 0 (Stats.log2_bucket_upper 0);
  Alcotest.(check int) "upper 1" 1 (Stats.log2_bucket_upper 1);
  Alcotest.(check int) "upper 10" 1023 (Stats.log2_bucket_upper 10);
  Alcotest.(check int) "upper 63 saturates" max_int
    (Stats.log2_bucket_upper 63);
  (* every positive v lies in (upper (b-1), upper b] *)
  List.iter
    (fun v ->
      let b = Stats.log2_bucket v in
      Alcotest.(check bool)
        (Printf.sprintf "%d within its bucket bounds" v)
        true
        (v > Stats.log2_bucket_upper (b - 1) && v <= Stats.log2_bucket_upper b))
    [ 1; 2; 3; 7; 8; 9; 255; 256; 1_000_000; max_int ]

(* Exact percentile vs histogram percentile on the same samples: the
   histogram answer is a bucket upper bound, so the pin is bucket
   agreement to within one (the exact value's bucket and the reported
   bound's bucket differ by at most 1). *)
let test_exact_vs_histogram_percentiles =
  QCheck.Test.make ~name:"histogram percentile within one log2 bucket"
    ~count:60
    QCheck.(pair (int_range 1 100000) small_nat)
    (fun (seed, extra) ->
      let rng = Rng.create seed in
      let n = 50 + (extra mod 500) in
      let samples =
        Array.init n (fun _ -> 1 + Rng.int rng 1_000_000)
      in
      let counts = Array.make Stats.log2_buckets 0 in
      Array.iter
        (fun v ->
          let b = Stats.log2_bucket v in
          counts.(b) <- counts.(b) + 1)
        samples;
      let floats = Array.map float_of_int samples in
      List.for_all
        (fun p ->
          let exact = int_of_float (Stats.percentile floats p) in
          let approx = Stats.percentile_log2 counts p in
          abs (Stats.log2_bucket exact - Stats.log2_bucket approx) <= 1)
        [ 50.; 90.; 99.; 99.9 ])

(* --- prometheus exposition ---------------------------------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh
    && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  nn = 0 || go 0

let test_prometheus_format () =
  Alcotest.(check string) "name mangling" "dss_serve_block_ns"
    (Obs.prom_name "serve.block_ns");
  let t = Obs.create ~shards:2 () in
  let c = Obs.counter t "serve.served" in
  let g = Obs.gauge t "serve.queue_depth" in
  let h = Obs.histogram t "serve.block_ns" in
  Obs.add c ~shard:0 41;
  Obs.incr c ~shard:1;
  Obs.set g ~shard:0 7;
  Obs.observe h ~shard:0 3;
  Obs.observe h ~shard:1 900;
  let s = Obs.prometheus t in
  Alcotest.(check bool) "counter TYPE" true
    (contains s "# TYPE dss_serve_served counter");
  Alcotest.(check bool) "counter value" true (contains s "dss_serve_served 42");
  Alcotest.(check bool) "gauge TYPE" true
    (contains s "# TYPE dss_serve_queue_depth gauge");
  Alcotest.(check bool) "gauge value" true
    (contains s "dss_serve_queue_depth 7");
  Alcotest.(check bool) "histogram TYPE" true
    (contains s "# TYPE dss_serve_block_ns histogram");
  (* buckets are cumulative: the one holding 900 counts both samples *)
  Alcotest.(check bool) "cumulative bucket" true
    (contains s
       (Printf.sprintf "dss_serve_block_ns_bucket{le=\"%d\"} 2"
          (Stats.log2_bucket_upper (Stats.log2_bucket 900))));
  Alcotest.(check bool) "+Inf bucket" true
    (contains s "dss_serve_block_ns_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "sum row" true (contains s "dss_serve_block_ns_sum 903");
  Alcotest.(check bool) "count row" true
    (contains s "dss_serve_block_ns_count 2");
  Alcotest.(check string) "byte-stable for a given state" s (Obs.prometheus t)

(* --- labeled counters (per-family breakdowns) ---------------------- *)

let count_occurrences haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i acc =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then scan (i + 1) (acc + 1)
    else scan (i + 1) acc
  in
  scan 0 0

let test_prom_labels () =
  Alcotest.(check string) "family label comes out quoted"
    "dss_oracle_queries{family=\"tz\"}"
    (Obs.prom_name (Obs.Name.oracle_queries_family "tz"));
  Alcotest.(check string) "multiple labels" "dss_a_b{x=\"1\",y=\"2\"}"
    (Obs.prom_name "a.b{x=1,y=2}");
  (* A suffix that does not parse as labels is mangled whole, never
     dropped. *)
  Alcotest.(check string) "malformed suffix mangled whole" "dss_a_b{x}"
    (Obs.prom_name "a.b{x}");
  Alcotest.(check string) "unterminated suffix mangled whole" "dss_a_b{x=1"
    (Obs.prom_name "a.b{x=1");
  (* Exposition: a labeled variant rides under its base's TYPE comment
     — one comment per metric family, not one per label value. *)
  let t = Obs.create () in
  let total = Obs.counter t Obs.Name.oracle_queries in
  let fam = Obs.counter t (Obs.Name.oracle_queries_family "bottomk") in
  Obs.add total ~shard:0 10;
  Obs.add fam ~shard:0 4;
  let s = Obs.prometheus t in
  Alcotest.(check bool) "plain row" true (contains s "dss_oracle_queries 10");
  Alcotest.(check bool) "labeled row" true
    (contains s "dss_oracle_queries{family=\"bottomk\"} 4");
  Alcotest.(check int) "one TYPE line for the family" 1
    (count_occurrences s "# TYPE dss_oracle_queries counter")

(* --- obs/1 invariant checker (the obs-cat --check engine) ---------- *)

let doc_of ~points ~final =
  Json.Obj
    [
      ("schema", Json.String "obs/1");
      ("points", Json.List points);
      ("final", Json.Obj [ ("counters", Json.Obj final) ]);
    ]

let point ~elapsed counters =
  Json.Obj
    [
      ("elapsed_ms", Json.Float elapsed);
      ("derived", Json.Obj []);
      ("counters", Json.Obj counters);
    ]

let test_obs_doc_check () =
  let fam = Obs.Name.oracle_queries_family in
  let ok_doc =
    doc_of
      ~points:
        [
          point ~elapsed:5.0
            [ ("oracle.queries", Json.Int 10); (fam "tz", Json.Int 10) ];
          point ~elapsed:10.0
            [ ("oracle.queries", Json.Int 20); (fam "tz", Json.Int 20) ];
        ]
      ~final:[ ("oracle.queries", Json.Int 20); (fam "tz", Json.Int 20) ]
  in
  (match Obs_doc.check ok_doc with
  | Ok n -> Alcotest.(check int) "point count reported" 2 n
  | Error msg -> Alcotest.failf "valid doc rejected: %s" msg);
  let expect name doc substring =
    match Obs_doc.check doc with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error msg ->
      if not (contains msg substring) then
        Alcotest.failf "%s: error %S does not mention %S" name msg substring
  in
  expect "decreasing counter"
    (doc_of
       ~points:
         [
           point ~elapsed:1.0 [ ("oracle.queries", Json.Int 5) ];
           point ~elapsed:2.0 [ ("oracle.queries", Json.Int 3) ];
         ]
       ~final:[ ("oracle.queries", Json.Int 5) ])
    "decreased";
  expect "elapsed not increasing"
    (doc_of
       ~points:[ point ~elapsed:2.0 []; point ~elapsed:2.0 [] ]
       ~final:[])
    "elapsed_ms";
  expect "final below last"
    (doc_of
       ~points:[ point ~elapsed:1.0 [ ("oracle.queries", Json.Int 5) ] ]
       ~final:[ ("oracle.queries", Json.Int 3) ])
    "below last point";
  expect "malformed label suffix"
    (doc_of ~points:[] ~final:[ ("oracle.queries{family}", Json.Int 1) ])
    "malformed label suffix";
  expect "labeled variants overshoot their base"
    (doc_of ~points:[]
       ~final:
         [
           ("oracle.queries", Json.Int 5);
           (fam "tz", Json.Int 3);
           (fam "bottomk", Json.Int 4);
         ])
    "labeled variants";
  expect "wrong schema"
    (Json.Obj [ ("schema", Json.String "nope/9") ])
    "schema";
  expect "missing final"
    (Json.Obj [ ("schema", Json.String "obs/1"); ("points", Json.List []) ])
    "final"

(* --- Json parser (the obs-cat reading side) ------------------------ *)

let test_json_of_string () =
  let roundtrip v =
    match Json.of_string (Json.to_string v) with
    | Ok v' -> Alcotest.(check string) "roundtrip" (Json.to_string v)
                 (Json.to_string v')
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  roundtrip
    (Json.Obj
       [
         ("schema", Json.String "obs/1");
         ("n", Json.Int 42);
         ("neg", Json.Int (-7));
         ("rate", Json.Float 1.5);
         ("flag", Json.Bool true);
         ("none", Json.Null);
         ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
         ("nested", Json.Obj [ ("s", Json.String "a\"b\\c\n") ]);
       ]);
  (match Json.of_string "  [1, 2.5, \"x\"]  " with
  | Ok (Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x" ]) -> ()
  | Ok v -> Alcotest.failf "unexpected parse: %s" (Json.to_string v)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Json.of_string "{\"a\":1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage must be an error");
  (match Json.of_string "{\"a\":" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input must be an error");
  let doc =
    match Json.of_string "{\"a\": {\"b\": 3}, \"c\": null}" with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  (match Json.member "a" doc with
  | Some inner ->
    Alcotest.(check bool) "nested member" true
      (Json.member "b" inner = Some (Json.Int 3))
  | None -> Alcotest.fail "member a missing");
  Alcotest.(check bool) "missing member is None" true
    (Json.member "zzz" doc = None)

(* --- /proc parser robustness (S2) ---------------------------------- *)

let test_mem_parser () =
  let status =
    "Name:\tdistsketch\nVmHWM:\t  123456 kB\nVmRSS:\t   98304 kB\nThreads:\t8\n"
  in
  Alcotest.(check (option int)) "VmRSS" (Some 98304)
    (Mem.find_kb ~key:"VmRSS" status);
  Alcotest.(check (option int)) "VmHWM" (Some 123456)
    (Mem.find_kb ~key:"VmHWM" status);
  Alcotest.(check (option int)) "missing key" None
    (Mem.find_kb ~key:"VmSwap" status);
  Alcotest.(check (option int)) "key is a prefix, not a substring" None
    (Mem.find_kb ~key:"RSS" status);
  Alcotest.(check (option int)) "empty text" None (Mem.find_kb ~key:"VmRSS" "");
  Alcotest.(check (option int)) "line without digits" None
    (Mem.find_kb ~key:"VmRSS" "VmRSS: none\n");
  Alcotest.(check (option int)) "parse_kb first digit run" (Some 42)
    (Mem.parse_kb "  42 kB");
  Alcotest.(check (option int)) "parse_kb no digits" None (Mem.parse_kb "kB");
  (* the _or_zero views must never raise, whatever /proc looks like *)
  Alcotest.(check bool) "rss_kb_or_zero total" true (Mem.rss_kb_or_zero () >= 0);
  Alcotest.(check bool) "hwm_kb_or_zero total" true (Mem.hwm_kb_or_zero () >= 0)

(* --- sampler -------------------------------------------------------- *)

let test_sampler_ring () =
  let t = Obs.create ~shards:2 () in
  let c = Obs.counter t Obs.Name.serve_served in
  let s = Sampler.create ~capacity:4 ~interval_ms:10 t in
  Alcotest.(check int) "interval" 10 (Sampler.interval_ms s);
  (* not started: ticks are no-ops *)
  Sampler.tick s 1_000_000_000;
  Alcotest.(check int) "no points before start" 0
    (List.length (Sampler.points s));
  Sampler.start s ~now_ns:0;
  Sampler.tick s 1_000_000;
  Alcotest.(check int) "not due yet" 0 (List.length (Sampler.points s));
  Obs.add c ~shard:0 5;
  Sampler.tick s 10_000_000;
  (match Sampler.points s with
  | [ p ] ->
    Alcotest.(check int) "seq" 0 p.Sampler.seq;
    Alcotest.(check int) "elapsed" 10_000_000 p.Sampler.elapsed_ns;
    Alcotest.(check (option int)) "cumulative counter in point" (Some 5)
      (List.assoc_opt Obs.Name.serve_served p.Sampler.counters)
  | ps -> Alcotest.failf "expected 1 point, got %d" (List.length ps));
  (* deadlines reschedule from the sample time: a long stall yields
     one point, not a catch-up burst *)
  Sampler.tick s 95_000_000;
  Sampler.tick s 96_000_000;
  Alcotest.(check int) "no catch-up burst" 2 (List.length (Sampler.points s));
  for i = 1 to 6 do
    Sampler.sample s (100_000_000 + i)
  done;
  Alcotest.(check int) "ring capped at capacity" 4
    (List.length (Sampler.points s));
  Alcotest.(check int) "dropped counted" 4 (Sampler.dropped s);
  let seqs = List.map (fun p -> p.Sampler.seq) (Sampler.points s) in
  Alcotest.(check bool) "oldest dropped first" true
    (seqs = [ 4; 5; 6; 7 ])

let test_obs_doc_schema () =
  let t = Obs.create ~shards:2 () in
  let c = Obs.counter t Obs.Name.serve_served in
  let h = Obs.histogram t Obs.Name.serve_block_ns in
  let s = Sampler.create ~capacity:16 ~interval_ms:5 t in
  Sampler.start s ~now_ns:0;
  Obs.add c ~shard:0 100;
  Obs.observe h ~shard:0 500;
  Sampler.sample s 5_000_000;
  Obs.add c ~shard:1 100;
  Obs.observe h ~shard:1 700;
  Sampler.sample s 10_000_000;
  let doc = Sampler.doc ~sampler:s ~meta:[ ("cmd", Json.String "test") ] t in
  let get k = Json.member k doc in
  Alcotest.(check bool) "schema" true
    (get "schema" = Some (Json.String "obs/1"));
  Alcotest.(check bool) "shards" true (get "shards" = Some (Json.Int 2));
  Alcotest.(check bool) "interval_ms" true
    (get "interval_ms" = Some (Json.Int 5));
  Alcotest.(check bool) "meta passthrough" true
    (match get "meta" with
    | Some m -> Json.member "cmd" m = Some (Json.String "test")
    | None -> false);
  Alcotest.(check bool) "dropped_points" true
    (get "dropped_points" = Some (Json.Int 0));
  (match get "final" with
  | Some f ->
    Alcotest.(check bool) "final counters" true
      (match Json.member "counters" f with
      | Some c -> Json.member Obs.Name.serve_served c = Some (Json.Int 200)
      | None -> false)
  | None -> Alcotest.fail "no final snapshot");
  (match get "points" with
  | Some (Json.List pts) ->
    Alcotest.(check int) "two points" 2 (List.length pts);
    List.iter
      (fun p ->
        match Json.member "derived" p with
        | Some d ->
          List.iter
            (fun k ->
              Alcotest.(check bool) (k ^ " present") true
                (Json.member k d <> None))
            [
              "qps"; "hit_rate"; "p99_block_ns"; "queue_depth";
              "minor_words_per_s"; "rss_kb";
            ]
        | None -> Alcotest.fail "point without derived series")
      pts;
    (* second point's qps derives from the delta: 100 served in 5ms *)
    (match Json.member "derived" (List.nth pts 1) with
    | Some d ->
      (match Json.member "qps" d with
      | Some (Json.Float q) ->
        Alcotest.(check (float 1.0)) "delta qps" 20000.0 q
      | _ -> Alcotest.fail "qps not a float")
    | None -> assert false)
  | _ -> Alcotest.fail "no points array");
  (* the whole document round-trips through the parser *)
  match Json.of_string (Json.to_string doc) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "doc does not parse: %s" e

(* --- serve reconciliation ------------------------------------------ *)

let oracle_for ~n ~seed =
  let g =
    Ds_graph.Gen.erdos_renyi ~rng:(Rng.create seed) ~n ~avg_degree:6.0 ()
  in
  let levels = Ds_core.Levels.sample ~rng:(Rng.create (seed + 1)) ~n ~k:3 in
  Oracle.of_labels (Ds_core.Tz_centralized.build g ~levels)

(* The tentpole invariant CI also asserts end-to-end: the registry's
   quiesced counters and the sampler's final point must equal the
   stats Serve.run itself returns — same events, two ledgers. *)
let test_serve_reconciliation () =
  let n = 128 in
  let oracle = oracle_for ~n ~seed:41 in
  let flat =
    Workload.pairs_flat ~rng:(Rng.create 7) (Workload.Zipf { alpha = 1.2 }) ~n
      ~count:6_000
  in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let t = Obs.create () in
          let s = Sampler.create ~interval_ms:1 t in
          let config =
            { Serve.default_config with cache_bits = 8; batch = 32 }
          in
          let _, stats = Serve.run ~pool ~config ~obs:t ~sampler:s oracle flat in
          let total f =
            Array.fold_left (fun acc w -> acc + f w) 0 stats.Serve.per_worker
          in
          Alcotest.(check int) "admitted = pairs" stats.Serve.pairs
            (Obs.value t Obs.Name.serve_admitted);
          Alcotest.(check int) "served = pairs" stats.Serve.pairs
            (Obs.value t Obs.Name.serve_served);
          Alcotest.(check int) "hits match"
            (total (fun w -> w.Serve.hits))
            (Obs.value t Obs.Name.serve_hits);
          Alcotest.(check int) "misses match"
            (total (fun w -> w.Serve.misses))
            (Obs.value t Obs.Name.serve_misses);
          Alcotest.(check int) "histogram counted every block"
            (Obs.value t Obs.Name.serve_block_ns)
            ((6_000 + 31) / 32);
          Alcotest.(check int) "queue drained" 0
            (Obs.value t Obs.Name.serve_queue_depth);
          (* the forced final sample is a quiesced read: its cumulative
             counters equal the registry's final reduction *)
          match List.rev (Sampler.points s) with
          | last :: _ ->
            List.iter
              (fun name ->
                Alcotest.(check (option int))
                  ("final point " ^ name)
                  (Some (Obs.value t name))
                  (List.assoc_opt name last.Sampler.counters))
              [
                Obs.Name.serve_admitted; Obs.Name.serve_served;
                Obs.Name.serve_hits; Obs.Name.serve_misses;
              ]
          | [] -> Alcotest.fail "no sampler points"))
    [ 1; 3 ]

(* With only a sampler, its own registry is the one instrumented. *)
let test_serve_sampler_only () =
  let n = 64 in
  let oracle = oracle_for ~n ~seed:43 in
  let flat =
    Workload.pairs_flat ~rng:(Rng.create 9) Workload.Uniform ~n ~count:500
  in
  let t = Obs.create () in
  let s = Sampler.create ~interval_ms:1000 t in
  let _, stats = Serve.run ~sampler:s oracle flat in
  Alcotest.(check int) "served on sampler registry" stats.Serve.pairs
    (Obs.value t Obs.Name.serve_served);
  (* m = 0: still one forced point, zero counters *)
  let t0 = Obs.create () in
  let s0 = Sampler.create ~interval_ms:1000 t0 in
  let out, _ = Serve.run ~sampler:s0 oracle [||] in
  Alcotest.(check int) "empty stream answers" 0 (Array.length out);
  Alcotest.(check int) "empty stream: one point" 1
    (List.length (Sampler.points s0))

(* --- engine counters vs Metrics, both backends --------------------- *)

let test_engine_obs_matches_metrics () =
  let g = Helpers.random_graph ~seed:91 80 in
  let sources = [ 0; 11; 40 ] in
  List.iter
    (fun backend ->
      let t = Obs.create () in
      let _, m =
        Multi_bf.run ~backend ~obs:t g ~sources
          ~bound:(fun _ -> Ds_graph.Dist.none)
      in
      Alcotest.(check int) "rounds" (Metrics.rounds m)
        (Obs.value t Obs.Name.engine_rounds);
      Alcotest.(check int) "deliveries" (Metrics.messages m)
        (Obs.value t Obs.Name.engine_deliveries);
      Alcotest.(check int) "words" (Metrics.words m)
        (Obs.value t Obs.Name.engine_words))
    [ Plane.Congest; Plane.Sharded ];
  (* and identically when fanned over a real pool *)
  Pool.with_pool ~domains:4 (fun pool ->
      let t = Obs.create () in
      let _, m =
        Multi_bf.run ~backend:Plane.Sharded ~pool ~obs:t g ~sources
          ~bound:(fun _ -> Ds_graph.Dist.none)
      in
      Alcotest.(check int) "pooled deliveries" (Metrics.messages m)
        (Obs.value t Obs.Name.engine_deliveries);
      Alcotest.(check int) "pooled words" (Metrics.words m)
        (Obs.value t Obs.Name.engine_words))

(* --- tracer/obs coexistence (S3) ----------------------------------- *)

(* Attaching [?obs] must not perturb the tracer: the timing-excluded
   exports are byte-identical with and without a registry attached,
   across pool widths. *)
let test_tracer_obs_coexistence () =
  let g = Helpers.random_graph ~seed:92 70 in
  let sources = [ 0; 23 ] in
  let run ?pool ?obs () =
    let tracer = Trace.create () in
    let _, m =
      Multi_bf.run ?pool ~tracer ?obs g ~sources
        ~bound:(fun _ -> Ds_graph.Dist.none)
    in
    (tracer, m)
  in
  let base_tracer, base_m = run () in
  let base_jsonl = Trace.jsonl ~timing:false base_tracer in
  let base_chrome =
    Trace.chrome ~clock:`Rounds ~phases:(Metrics.phases base_m) base_tracer
  in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let obs = Obs.create () in
          let tracer, m = run ~pool ~obs () in
          let label = Printf.sprintf "domains=%d" domains in
          Alcotest.(check string)
            (label ^ ": jsonl bytes with obs attached")
            base_jsonl
            (Trace.jsonl ~timing:false tracer);
          Alcotest.(check string)
            (label ^ ": chrome bytes with obs attached")
            base_chrome
            (Trace.chrome ~clock:`Rounds ~phases:(Metrics.phases m) tracer);
          (* and the registry still reconciles on the same run *)
          Alcotest.(check int)
            (label ^ ": obs deliveries")
            (Metrics.messages m)
            (Obs.value obs Obs.Name.engine_deliveries)))
    [ 1; 2; 4; 8 ]

let suite =
  [
    Alcotest.test_case "registration idempotent, kinds checked" `Quick
      test_registration;
    Alcotest.test_case "counter reduces across shards" `Quick
      test_counter_reduce_across_shards;
    Alcotest.test_case "gauge sum and set_max" `Quick test_gauge_semantics;
    Alcotest.test_case "histogram reduce and percentile" `Quick
      test_histogram_reduce;
    Alcotest.test_case "value by name" `Quick test_value_by_name;
    Alcotest.test_case "log2 bucket edges" `Quick test_log2_edges;
    QCheck_alcotest.to_alcotest test_exact_vs_histogram_percentiles;
    Alcotest.test_case "prometheus exposition format" `Quick
      test_prometheus_format;
    Alcotest.test_case "labeled counter names stay Prometheus-legal" `Quick
      test_prom_labels;
    Alcotest.test_case "obs/1 invariant checker" `Quick test_obs_doc_check;
    Alcotest.test_case "json parser round-trips" `Quick test_json_of_string;
    Alcotest.test_case "proc status parser robustness" `Quick test_mem_parser;
    Alcotest.test_case "sampler ring, deadlines, drops" `Quick
      test_sampler_ring;
    Alcotest.test_case "obs/1 document schema" `Quick test_obs_doc_schema;
    Alcotest.test_case "serve counters reconcile with stats" `Quick
      test_serve_reconciliation;
    Alcotest.test_case "sampler-only serve instruments its registry" `Quick
      test_serve_sampler_only;
    Alcotest.test_case "engine counters equal metrics on both backends" `Quick
      test_engine_obs_matches_metrics;
    Alcotest.test_case "tracer exports unchanged with obs attached" `Quick
      test_tracer_obs_coexistence;
  ]
