lib/experiments/e8_query_cost.ml: Common Ds_congest Ds_core Ds_graph Ds_util List Printf
