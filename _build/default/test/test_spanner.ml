module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Props = Ds_graph.Props
module Levels = Ds_core.Levels
module Spanner = Ds_core.Spanner

let levels_for ~seed g k = Levels.sample ~rng:(Rng.create seed) ~n:(Graph.n g) ~k

let test_spanner_is_subgraph () =
  let g = Helpers.random_graph ~seed:301 60 in
  let levels = levels_for ~seed:303 g 3 in
  let sp = Spanner.of_levels g ~levels in
  List.iter
    (fun (u, v, w) ->
      Alcotest.(check bool) "edge in g" true (Graph.has_edge g u v);
      Alcotest.(check int) "same weight" w (Graph.weight g u v))
    (Graph.edges sp)

let test_spanner_stretch_bound () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let levels = levels_for ~seed:(307 + k) g k in
          let sp = Spanner.of_levels g ~levels in
          let s = Spanner.max_stretch g ~spanner:sp in
          Alcotest.(check bool)
            (Printf.sprintf "%s k=%d: stretch %.2f <= %d" name k s ((2 * k) - 1))
            true
            (s <= float_of_int ((2 * k) - 1) +. 1e-9))
        [ 2; 3 ])
    (Helpers.graph_suite 311)

let test_spanner_k1_preserves_distances () =
  let g = Helpers.random_graph ~seed:313 40 in
  let levels = levels_for ~seed:317 g 1 in
  let sp = Spanner.of_levels g ~levels in
  Alcotest.(check (float 1e-9)) "stretch 1" 1.0 (Spanner.max_stretch g ~spanner:sp)

let test_spanner_connected () =
  let g = Helpers.random_graph ~seed:331 80 in
  let levels = levels_for ~seed:337 g 3 in
  let sp = Spanner.of_levels g ~levels in
  Alcotest.(check bool) "connected" true (Props.is_connected sp)

let test_distributed_spanner_stretch () =
  List.iter
    (fun (name, g) ->
      let k = 3 in
      let levels = levels_for ~seed:347 g k in
      let sp, _ = Spanner.of_distributed g ~levels in
      let s = Spanner.max_stretch g ~spanner:sp in
      Alcotest.(check bool)
        (Printf.sprintf "%s: distributed spanner stretch %.2f" name s)
        true
        (s <= float_of_int ((2 * k) - 1) +. 1e-9))
    (Helpers.graph_suite 349)

let test_spanner_edge_counts_similar () =
  (* Centralized and distributed spanners may differ edge-by-edge
     (shortest-path ties) but have comparable size, both within the
     k n^{1+1/k} whp regime. *)
  let g = Helpers.random_graph ~seed:353 150 in
  let k = 3 in
  let levels = levels_for ~seed:359 g k in
  let sp_c = Spanner.of_levels g ~levels in
  let sp_d, _ = Spanner.of_distributed g ~levels in
  let bound = 2.0 *. log 150.0 *. Spanner.edge_bound ~n:150 ~k in
  Alcotest.(check bool) "centralized within bound" true
    (float_of_int (Graph.m sp_c) <= bound);
  Alcotest.(check bool) "distributed within bound" true
    (float_of_int (Graph.m sp_d) <= bound);
  let ratio = float_of_int (Graph.m sp_d) /. float_of_int (Graph.m sp_c) in
  Alcotest.(check bool)
    (Printf.sprintf "sizes comparable (ratio %.2f)" ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

let prop_spanner_stretch_random =
  QCheck.Test.make ~name:"spanner stretch <= 2k-1 (random)" ~count:15
    QCheck.(pair (int_range 8 40) (int_range 0 100000))
    (fun (n, seed) ->
      let g = Helpers.random_graph ~seed n in
      let k = 1 + (seed mod 3) in
      let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n ~k in
      let sp = Spanner.of_levels g ~levels in
      Spanner.max_stretch g ~spanner:sp
      <= float_of_int ((2 * k) - 1) +. 1e-9)

let suite =
  [
    Alcotest.test_case "spanner is subgraph" `Quick test_spanner_is_subgraph;
    Alcotest.test_case "spanner stretch <= 2k-1" `Slow
      test_spanner_stretch_bound;
    Alcotest.test_case "k=1 spanner preserves distances" `Quick
      test_spanner_k1_preserves_distances;
    Alcotest.test_case "spanner connected" `Quick test_spanner_connected;
    Alcotest.test_case "distributed spanner stretch" `Slow
      test_distributed_spanner_stretch;
    Alcotest.test_case "spanner edge counts comparable" `Quick
      test_spanner_edge_counts_similar;
    QCheck_alcotest.to_alcotest prop_spanner_stretch_random;
  ]
