(** E3 — Theorem 1.1 (time/messages): rounds and messages of the
    distributed construction vs the proven bounds.

    Paper claim: O(k n^{1/k} S log n) rounds and O(k n^{1/k} S |E| log n)
    messages. We report measured counts, the bound evaluated without
    hidden constants, and their ratio — the ratio staying well below 1
    and roughly stable across the sweep is the reproduced "shape". *)

module Table = Ds_util.Table
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Levels = Ds_core.Levels
module Tz_distributed = Ds_core.Tz_distributed

type params = {
  seed : int;
  ns : int list;
  k_of_n : int -> int;
  k_sweep : int list;
  k_sweep_n : int;
}

let default =
  {
    seed = 3;
    ns = [ 64; 128; 256; 512 ];
    k_of_n = (fun _ -> 3);
    k_sweep = [ 1; 2; 3; 4; 6 ];
    k_sweep_n = 256;
  }

let bound_rounds ~n ~k ~s =
  float_of_int k
  *. (float_of_int n ** (1.0 /. float_of_int k))
  *. float_of_int s *. Common.ln n

let bound_messages ~n ~k ~s ~m = bound_rounds ~n ~k ~s *. float_of_int m

let row ?pool w ~seed ~k =
  let p = w.Common.profile in
  let n = p.Ds_graph.Props.n and s = p.Ds_graph.Props.s in
  let m = p.Ds_graph.Props.m in
  let levels = Levels.sample ~rng:(Rng.create (seed + k)) ~n ~k in
  let r = Tz_distributed.build ?pool w.Common.graph ~levels in
  let rounds = Metrics.rounds r.Tz_distributed.metrics in
  let msgs = Metrics.messages r.Tz_distributed.metrics in
  let br = bound_rounds ~n ~k ~s and bm = bound_messages ~n ~k ~s ~m in
  [
    Table.cell_int n;
    Table.cell_int m;
    Table.cell_int s;
    Table.cell_int k;
    Table.cell_int rounds;
    Table.cell_float br;
    Table.cell_ratio (float_of_int rounds /. br);
    Table.cell_int msgs;
    Table.cell_float bm;
    Table.cell_ratio (float_of_int msgs /. bm);
  ]

let headers =
  [
    "n"; "|E|"; "S"; "k"; "rounds"; "k n^1/k S ln n"; "r-ratio"; "messages";
    "bound msgs"; "m-ratio";
  ]

let run ?pool { seed; ns; k_of_n; k_sweep; k_sweep_n } =
  let t1 =
    Table.create
      ~title:
        "E3a: distributed TZ rounds/messages vs n (erdos-renyi, fixed k) — \
         Theorem 1.1"
      ~headers
  in
  List.iter
    (fun n ->
      let w =
        Common.make_workload ~seed
          ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
          ~n
      in
      Table.add_row t1 (row ?pool w ~seed ~k:(k_of_n n)))
    ns;
  let t2 =
    Table.create
      ~title:
        (Printf.sprintf
           "E3b: distributed TZ rounds/messages vs k (erdos-renyi, n=%d)"
           k_sweep_n)
      ~headers
  in
  let w =
    Common.make_workload ~seed
      ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
      ~n:k_sweep_n
  in
  List.iter (fun k -> Table.add_row t2 (row ?pool w ~seed ~k)) k_sweep;
  let t3 =
    Table.create
      ~title:"E3c: distributed TZ across topologies (k=3) — S-dependence"
      ~headers
  in
  List.iter
    (fun (_, family) ->
      let w = Common.make_workload ~seed ~family ~n:256 in
      Table.add_row t3 (row ?pool w ~seed ~k:3))
    (Common.standard_families ~n:256);
  [ t1; t2; t3 ]
