(** E10 — extension (paper's conclusion): bounded link asynchrony.

    Every message is held on its FIFO link for an extra uniform
    0..max_delay rounds. The phase-tagged echo protocol must still
    produce exactly the Thorup–Zwick labels; the cost columns show how
    the schedule stretches with the delay bound. This validates the
    paper's closing conjecture that the construction can survive
    weaker timing models. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Engine = Ds_congest.Engine
module Metrics = Ds_congest.Metrics
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_centralized = Ds_core.Tz_centralized
module Tz_echo = Ds_core.Tz_echo

type params = { seed : int; n : int; k : int; delays : int list }

let default = { seed = 10; n = 192; k = 3; delays = [ 0; 1; 2; 4; 8 ] }
let quick = { seed = 10; n = 64; k = 3; delays = [ 0; 2 ] }

let id = "e10"
let title = "echo TZ under bounded asynchrony"
let claim_id = "extension (paper's conclusion)"

let claim =
  "the construction survives bounded-delay asynchronous FIFO links: the \
   phase-tagged echo protocol produces exactly the synchronous labels \
   under every delay bound (the paper conjectures asynchronous \
   extensions are possible; crash failures remain open)"

let bound_expr = ""

let prose =
  "The phase-tagged echo protocol produces labels exactly equal to the \
   centralized construction at every delay bound (also a qcheck \
   property over random graphs and delays). Rounds inflate with the \
   delay bound — the schedule, not the algorithm — while message \
   counts stay essentially flat."

let run ?pool { seed; n; k; delays } =
  let w =
    Common.make_workload ?pool ~seed
      ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
      ~n ()
  in
  let g = w.Common.graph in
  let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n ~k in
  let central = Tz_centralized.build g ~levels in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E10: echo-mode TZ under bounded link asynchrony (erdos-renyi, \
            n=%d, k=%d) — extension"
           n k)
      ~headers:
        [ "max delay"; "rounds"; "messages"; "labels exact"; "rounds vs sync" ]
  in
  let sync_rounds = ref 1 in
  let n_exact = ref 0 in
  let msgs = ref [] in
  let last_inflation = ref 1.0 in
  List.iter
    (fun max_delay ->
      let r =
        Tz_echo.build ?pool
          ~jitter:{ Engine.rng = Rng.create (seed + max_delay); max_delay }
          g ~levels
      in
      let rounds = Metrics.rounds r.Tz_echo.metrics in
      if max_delay = 0 then sync_rounds := rounds;
      let exact = Array.for_all2 Label.equal central r.Tz_echo.labels in
      if exact then incr n_exact;
      msgs := float_of_int (Metrics.messages r.Tz_echo.metrics) :: !msgs;
      last_inflation := float_of_int rounds /. float_of_int !sync_rounds;
      Table.add_row t
        [
          Table.cell_int max_delay;
          Table.cell_int rounds;
          Table.cell_int (Metrics.messages r.Tz_echo.metrics);
          (if exact then "yes" else "NO");
          Table.cell_ratio (float_of_int rounds /. float_of_int !sync_rounds);
        ])
    delays;
  let msg_spread =
    List.fold_left max 0.0 !msgs /. List.fold_left min infinity !msgs
  in
  let checks =
    [
      Report.check
        ~bound:(float_of_int (List.length delays))
        ~ok:(!n_exact = List.length delays)
        "delay bounds where labels ≡ centralized"
        (float_of_int !n_exact);
      Report.check ~ok:(msg_spread <= 1.2)
        "message count flat across delays (max/min <= 1.2)" msg_spread;
      Report.check ~ok:(!last_inflation <= 10.0)
        "round inflation at the largest delay (schedule cost, <= 10)"
        !last_inflation;
    ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t ];
    phases = [];
    round_profiles = [];
    verdict = Report.Validated;
  }
