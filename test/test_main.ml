let () =
  Alcotest.run "distsketch"
    [
      ("util", Test_util.suite);
      ("report", Test_report.suite);
      ("parallel", Test_parallel.suite);
      ("graph", Test_graph.suite);
      ("gen-extra", Test_gen_extra.suite);
      ("congest", Test_congest.suite);
      ("metrics", Test_metrics.suite);
      ("engine-extra", Test_engine_extra.suite);
      ("determinism", Test_determinism.suite);
      ("backend", Test_backend.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("tz", Test_tz.suite);
      ("sketch", Test_sketch.suite);
      ("oracle", Test_oracle.suite);
      ("serve", Test_serve.suite);
      ("slack", Test_slack.suite);
      ("async", Test_async.suite);
      ("spanner", Test_spanner.suite);
      ("cdg-parts", Test_cdg_parts.suite);
      ("routing", Test_routing.suite);
      ("integration", Test_integration.suite);
      ("props-extra", Test_props_extra.suite);
      ("baselines", Test_baselines.suite);
    ]
