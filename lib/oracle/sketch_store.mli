(** Persistent snapshots of a built sketch set, any family.

    The build/serve split: construction (the CONGEST protocols) runs
    once and saves its sketches here; every later serving process
    loads the snapshot and skips reconstruction entirely. The format
    is

    - {b versioned}: an 8-byte magic plus a version word, so a stale
      reader fails loudly instead of misparsing. This build writes
      version 3 (mappable) and still reads version 2 (the
      family-polymorphic layout) and version 1 (the pre-platform
      Thorup–Zwick-only layout, loaded as sketch family [tz]);
    - {b checksummed}: the last 8 bytes are an FNV-1a64 digest of
      everything before them, so truncation and bit rot are detected
      on (heap) load; v3 additionally carries a header-only digest so
      the mmap fast path can validate everything it parses eagerly
      without touching the payload pages;
    - {b byte-deterministic}: equal stores serialize to equal bytes —
      entries are written in the {!Ds_sketch.Sketch} canonical order
      (sorted by node id within each owner) and every integer is a
      fixed-width little-endian 64-bit word, so [save] ∘ [load] ∘
      [save] is the identity on bytes (in either load mode) and
      snapshots diff cleanly in CI;
    - {b mappable} (v3): every section starts on an 8-byte boundary
      and the header declares the section extents up front, so
      {!load}[ ~mode:Mmap] serves queries straight out of a
      [Unix.map_file] word window — no copy, O(header + n) start-up,
      the page cache is the working set and is shared across
      processes serving the same snapshot.

    Version-3 byte layout (all integers u64 LE):
    {v
    0      magic "DSKETCH1"                  (8 bytes)
    8      version                           (currently 3)
    16     n  — number of nodes
    24     k  — depth / bottom-k parameter / iterations
    32     seed — generation seed (0 if unknown)
    40     sketch_family_len, then that many bytes ("tz",
           "landmark", "bottomk"), zero-padded to an 8-byte boundary
    .      graph_family_len, then that many topology-name bytes,
           zero-padded to an 8-byte boundary
    .      pivot_words — 2·n·k for family tz, 0 otherwise
    .      total — number of (node, dist) entry pairs (= off.(n))
    .      header_fnv — FNV-1a64 of every preceding byte
    .      off: n+1 cumulative entry counts
    .      pivots: per node, k (dist, node) pairs  (pivot_words words)
    .      entries: per node, (node, dist) pairs sorted
           by node id within each owner            (2·total words)
    end-8  FNV-1a64 checksum of all preceding bytes
    v}

    Version 2 is the same minus the [total] and [header_fnv] fields;
    version 1 is v2 minus the sketch-family and pivot-words fields —
    its single [family] string was the {e graph} family (the field
    rename is why v2+ carry both), and its pivot section is
    unconditional. TZ bunch levels are analysis metadata and are not
    persisted in any version.

    Trust model per mode: [Heap] reads the whole file, verifies the
    trailing checksum and every structural invariant, and copies into
    fresh arrays — bit rot anywhere is detected. [Mmap] (v3 only)
    verifies the header digest, the declared extents against the file
    size (including 8-byte alignment) and the full offset table — so
    a malformed file raises {!Error} and no query can index outside
    the mapping — but serves the pivot/entry payload words as-is
    without checksumming them. *)

type meta = {
  n : int;  (** number of nodes *)
  k : int;  (** depth / bottom-k parameter shared by every sketch *)
  seed : int;  (** generation seed, [0] when unknown *)
  graph_family : string;  (** topology family name, [""] when unknown *)
  sketch_family : Ds_sketch.Family.t;
}

type mode = Heap | Mmap  (** how {!load} materialises the payload *)

type t = private {
  meta : meta;
  sketch : Ds_sketch.Sketch.t;
  load_mode : mode;  (** [Heap] for built/deserialised stores *)
}

exception Error of string
(** Raised by {!of_bytes} / {!load} on malformed input, with a message
    naming what is wrong (bad magic, unsupported version, truncation,
    misalignment, checksum mismatch, corrupt section). Never raised by
    well-formed snapshots produced by {!to_bytes} / {!save}. *)

val v : ?seed:int -> ?graph_family:string -> Ds_sketch.Sketch.t -> t
(** Wrap a built sketch set of any family; [meta] is derived from the
    sketch plus the provenance arguments. *)

val of_labels :
  ?seed:int -> ?graph_family:string -> Ds_core.Label.t array -> t
(** Convenience for the Thorup–Zwick path: compile the labels with
    {!Ds_sketch.Sketch.of_tz_labels} and wrap. Raises
    [Invalid_argument] on an empty label set, a non-uniform [k], or
    [labels.(i).owner <> i]. *)

val magic : string
(** The 8-byte file magic (["DSKETCH1"]). *)

val version : int
(** The format version this build writes (3). *)

val mode_name : mode -> string
(** ["heap"] / ["mmap"] — for artifact metadata. *)

val mapped_bytes : t -> int
(** Bytes of snapshot mapped into this process for [t]'s sketch; 0
    for a heap-backed store. *)

val to_bytes : t -> string
(** Serialize to the version-3 layout above. Deterministic: stores
    with {!Ds_sketch.Sketch.equal} sketches and equal meta produce
    identical bytes, whichever backing the sketch has. *)

val to_bytes_v2 : t -> string
(** Serialize to the legacy version-2 layout, so the v2 reader path
    stays testable without fixture files. *)

val to_bytes_v1 : t -> string
(** Serialize to the legacy version-1 layout ([sketch_family] must be
    [Tz]; raises [Invalid_argument] otherwise). Exists so the
    backward-compat path stays testable without fixture files: v1
    bytes written today are read back like any historical snapshot. *)

val of_bytes : string -> t
(** Inverse of {!to_bytes}; also accepts version-1 and version-2
    bytes (v1 loads with [sketch_family = Tz] and the v1 family
    string as [graph_family]). Raises {!Error} on malformed input.
    Always heap-backed. *)

val save : string -> t -> unit
(** [save path t] writes [to_bytes t] atomically-ish (binary mode,
    single write). *)

val load : ?mode:mode -> string -> t
(** [load path] reads a snapshot. [~mode:Heap] (default) reads and
    {!of_bytes}. [~mode:Mmap] maps the file and serves the payload
    zero-copy; requires a v3 snapshot (older versions raise {!Error}
    telling the caller to heap-load and re-save). Raises {!Error} on
    malformed contents and [Sys_error] if the file cannot be read. *)

val fnv1a64 : string -> int64
(** The checksum function (FNV-1a, 64-bit), exposed so tests can pin
    the trailer and CI scripts can fingerprint payloads. *)
