module Dist = Ds_graph.Dist
module Label = Ds_core.Label
module A1 = Bigarray.Array1

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t

(* Heap backing: the five flat arrays, exactly the pre-v3 layout. *)
type heap = {
  h_pivot_dist : int array;  (* n·k node-major for Tz, empty otherwise *)
  h_pivot_node : int array;  (* aligned with h_pivot_dist *)
  h_off : int array;  (* n+1 cumulative entry counts *)
  h_ent_node : int array;
  h_ent_dist : int array;
}

(* Mapped backing: one word window over the snapshot file, plus the
   word index of each section. Sections use the on-disk v3 order and
   interleaving: off words at [m_off_at], (dist, node) pivot pairs at
   [m_piv_at], (node, dist) entry pairs at [m_ent_at]. *)
type mapped = { m_buf : buf; m_off_at : int; m_piv_at : int; m_ent_at : int }

type backing = Heap of heap | Mapped of mapped

type t = {
  family : Family.t;
  n : int;
  k : int;
  total : int;  (* off.(n), cached so bounds never re-read the table *)
  backing : backing;
}

let family t = t.family
let n t = t.n
let k t = t.k
let total_entries t = t.total
let pivot_pairs t = if t.family = Family.Tz then t.n * t.k else 0

let mapped_bytes t =
  match t.backing with Heap _ -> 0 | Mapped m -> 8 * A1.dim m.m_buf

let backing_name t = match t.backing with Heap _ -> "heap" | Mapped _ -> "mapped"
let size_words t = (2 * pivot_pairs t) + (2 * t.total)

(* ------------------------------------------------------------------ *)
(* Cold accessors: one backing dispatch per access. Fine for
   serialisation, tests and the probe-counting paths; the estimators
   below never touch these. *)

let off_at t u =
  match t.backing with
  | Heap h -> h.h_off.(u)
  | Mapped m -> A1.get m.m_buf (m.m_off_at + u)

let ent_node_at t j =
  match t.backing with
  | Heap h -> h.h_ent_node.(j)
  | Mapped m -> A1.get m.m_buf (m.m_ent_at + (2 * j))

let ent_dist_at t j =
  match t.backing with
  | Heap h -> h.h_ent_dist.(j)
  | Mapped m -> A1.get m.m_buf (m.m_ent_at + (2 * j) + 1)

let pivot_dist_at t j =
  match t.backing with
  | Heap h -> h.h_pivot_dist.(j)
  | Mapped m -> A1.get m.m_buf (m.m_piv_at + (2 * j))

let pivot_node_at t j =
  match t.backing with
  | Heap h -> h.h_pivot_node.(j)
  | Mapped m -> A1.get m.m_buf (m.m_piv_at + (2 * j) + 1)

let node_size_words t u =
  (2 * (if t.family = Family.Tz then t.k else 0))
  + (2 * (off_at t (u + 1) - off_at t u))

let iter_section_words t f =
  for u = 0 to t.n do
    f (off_at t u)
  done;
  for j = 0 to pivot_pairs t - 1 do
    f (pivot_dist_at t j);
    f (pivot_node_at t j)
  done;
  for j = 0 to t.total - 1 do
    f (ent_node_at t j);
    f (ent_dist_at t j)
  done

(* ------------------------------------------------------------------ *)
(* Construction *)

let check_entry_order ~who ~n ~off ~ent_node ~ent_dist =
  let total = off.(Array.length off - 1) in
  if Array.length ent_node <> total || Array.length ent_dist <> total then
    invalid_arg (Printf.sprintf "%s: entry arrays disagree with offsets" who);
  for u = 0 to Array.length off - 2 do
    if off.(u) > off.(u + 1) then
      invalid_arg (Printf.sprintf "%s: decreasing offsets" who);
    for j = off.(u) to off.(u + 1) - 1 do
      let w = ent_node.(j) in
      if w < 0 || w >= n then
        invalid_arg (Printf.sprintf "%s: entry node %d out of range" who w);
      if j > off.(u) && ent_node.(j - 1) >= w then
        invalid_arg (Printf.sprintf "%s: entries not strictly increasing" who);
      if ent_dist.(j) < 0 then
        invalid_arg (Printf.sprintf "%s: negative entry distance" who)
    done
  done

(* Every finite pivot's node must be a valid index: the query kernels
   binary-search for it with unchecked accesses, and [of_mapped]
   relies on this pass so no mapped query can escape the window. *)
let validate_pivots ~who ~family ~n ~k ~pdist ~pnode =
  if family = Family.Tz then
    for j = 0 to (n * k) - 1 do
      if Dist.is_finite (pdist j) then begin
        let p = pnode j in
        if p < 0 || p >= n then
          invalid_arg (Printf.sprintf "%s: pivot node %d out of range" who p)
      end
    done

let of_heap ~who ~family ~k ~pivot_dist ~pivot_node ~off ~ent_node ~ent_dist =
  let n = Array.length off - 1 in
  validate_pivots ~who ~family ~n ~k
    ~pdist:(Array.get pivot_dist)
    ~pnode:(Array.get pivot_node);
  {
    family;
    n;
    k;
    total = off.(n);
    backing =
      Heap
        {
          h_pivot_dist = pivot_dist;
          h_pivot_node = pivot_node;
          h_off = off;
          h_ent_node = ent_node;
          h_ent_dist = ent_dist;
        };
  }

let of_tz_labels labels =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Sketch.of_tz_labels: empty label set";
  let k = labels.(0).Label.k in
  Array.iteri
    (fun i l ->
      if l.Label.owner <> i then
        invalid_arg
          (Printf.sprintf "Sketch.of_tz_labels: labels.(%d) has owner %d" i
             l.Label.owner);
      if l.Label.k <> k then
        invalid_arg
          (Printf.sprintf
             "Sketch.of_tz_labels: labels.(%d) has k=%d, expected %d" i
             l.Label.k k))
    labels;
  let pivot_dist = Array.make (n * k) Dist.infinity in
  let pivot_node = Array.make (n * k) max_int in
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + Label.bunch_size labels.(u)
  done;
  let total = off.(n) in
  let ent_node = Array.make total 0 in
  let ent_dist = Array.make total 0 in
  Array.iteri
    (fun u l ->
      Array.iteri
        (fun i (d, p) ->
          pivot_dist.((u * k) + i) <- d;
          pivot_node.((u * k) + i) <- p)
        l.Label.pivots;
      (* bunch_nodes is sorted by node id — the slice stays strictly
         increasing, which is what the merges need. *)
      List.iteri
        (fun j (w, d, _) ->
          ent_node.(off.(u) + j) <- w;
          ent_dist.(off.(u) + j) <- d)
        (Label.bunch_nodes l))
    labels;
  of_heap ~who:"Sketch.of_tz_labels" ~family:Family.Tz ~k ~pivot_dist
    ~pivot_node ~off ~ent_node ~ent_dist

let v ~family ~k entries =
  if family = Family.Tz then
    invalid_arg "Sketch.v: family tz needs pivots, use of_tz_labels";
  let n = Array.length entries in
  if n = 0 then invalid_arg "Sketch.v: empty node set";
  if k < 1 then invalid_arg "Sketch.v: k < 1";
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + Array.length entries.(u)
  done;
  let total = off.(n) in
  let ent_node = Array.make total 0 in
  let ent_dist = Array.make total 0 in
  Array.iteri
    (fun u es ->
      Array.iteri
        (fun j (w, d) ->
          ent_node.(off.(u) + j) <- w;
          ent_dist.(off.(u) + j) <- d)
        es)
    entries;
  check_entry_order ~who:"Sketch.v" ~n ~off ~ent_node ~ent_dist;
  of_heap ~who:"Sketch.v" ~family ~k ~pivot_dist:[||] ~pivot_node:[||] ~off
    ~ent_node ~ent_dist

let of_arrays ~family ~k ~pivot_dist ~pivot_node ~off ~ent_node ~ent_dist =
  let who = "Sketch.of_arrays" in
  let n = Array.length off - 1 in
  if n < 1 then invalid_arg (who ^ ": empty offset table");
  if k < 1 then invalid_arg (who ^ ": k < 1");
  if off.(0) <> 0 then invalid_arg (who ^ ": offsets do not start at 0");
  let want_pivots = if family = Family.Tz then n * k else 0 in
  if
    Array.length pivot_dist <> want_pivots
    || Array.length pivot_node <> want_pivots
  then invalid_arg (who ^ ": pivot table has the wrong size for the family");
  check_entry_order ~who ~n ~off ~ent_node ~ent_dist;
  of_heap ~who ~family ~k ~pivot_dist ~pivot_node ~off ~ent_node ~ent_dist

let of_mapped ~family ~k ~n ~total ~buf ~off_at =
  let who = "Sketch.of_mapped" in
  if n < 1 then invalid_arg (who ^ ": empty node set");
  if k < 1 then invalid_arg (who ^ ": k < 1");
  if total < 0 then invalid_arg (who ^ ": negative entry total");
  if off_at < 0 then invalid_arg (who ^ ": negative section offset");
  let pairs = if family = Family.Tz then n * k else 0 in
  let piv_at = off_at + n + 1 in
  let ent_at = piv_at + (2 * pairs) in
  let dim = A1.dim buf in
  if ent_at + (2 * total) > dim then
    invalid_arg (who ^ ": sections overrun the mapped window");
  (* Structural validation of the metadata every query indexes
     through: a hostile offset table is the only way a mapped query
     could escape the window, so it is checked in full. The entry
     payload is served as-is — payload integrity is the heap loader's
     full-file checksum, not the mmap fast path's. *)
  if A1.get buf off_at <> 0 then
    invalid_arg (who ^ ": offsets do not start at 0");
  for u = 0 to n - 1 do
    if A1.get buf (off_at + u) > A1.get buf (off_at + u + 1) then
      invalid_arg (who ^ ": decreasing offsets")
  done;
  if A1.get buf (off_at + n) <> total then
    invalid_arg (who ^ ": offset table disagrees with entry total");
  validate_pivots ~who ~family ~n ~k
    ~pdist:(fun j -> A1.get buf (piv_at + (2 * j)))
    ~pnode:(fun j -> A1.get buf (piv_at + (2 * j) + 1));
  {
    family;
    n;
    k;
    total;
    backing =
      Mapped
        { m_buf = buf; m_off_at = off_at; m_piv_at = piv_at; m_ent_at = ent_at };
  }

(* ------------------------------------------------------------------ *)
(* Cold query paths (generic over the backing). *)

(* Binary search for [w] in the node-[u] slice; [Dist.infinity] when
   absent. Tail recursion over plain ints, not [ref] cursors: a query
   must not touch the minor heap, because every minor collection stops
   all domains and a batch fanned over the pool would serialise on GC
   instead of scaling. *)
let rec find_in t w lo hi =
  if lo >= hi then Dist.infinity
  else begin
    let mid = (lo + hi) / 2 in
    let x = ent_node_at t mid in
    if x = w then ent_dist_at t mid
    else if x < w then find_in t w (mid + 1) hi
    else find_in t w lo mid
  end

let find t u w = find_in t w (off_at t u) (off_at t (u + 1))

let node_entries t u =
  let lo = off_at t u in
  Array.init (off_at t (u + 1) - lo) (fun j ->
      (ent_node_at t (lo + j), ent_dist_at t (lo + j)))

let check_pair t u v name =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg
      (Printf.sprintf "Sketch.%s: pair (%d, %d) out of range [0, %d)" name u v
         t.n)

(* Bidirectional scan visits every level anyway, so the binary-search
   form costs the same asymptotics as a merge and stays one copy for
   both backings. Not a serving path. *)
let rec tz_bidi_from t u v k i best =
  if i >= k then best
  else begin
    let du = pivot_dist_at t ((u * k) + i)
    and pu = pivot_node_at t ((u * k) + i)
    and dv = pivot_dist_at t ((v * k) + i)
    and pv = pivot_node_at t ((v * k) + i) in
    let best =
      if Dist.is_finite du then min best (Dist.add du (find t v pu)) else best
    in
    let best =
      if Dist.is_finite dv then min best (Dist.add dv (find t u pv)) else best
    in
    tz_bidi_from t u v k (i + 1) best
  end

(* Cold merge intersection over the generic accessors — the
   bidirectional (non-serving) entry point for the merge families. *)
let rec common_from_cold t iu hu iv hv best =
  if iu >= hu || iv >= hv then best
  else begin
    let wu = ent_node_at t iu and wv = ent_node_at t iv in
    if wu = wv then
      common_from_cold t (iu + 1) hu (iv + 1) hv
        (min best (Dist.add (ent_dist_at t iu) (ent_dist_at t iv)))
    else if wu < wv then common_from_cold t (iu + 1) hu iv hv best
    else common_from_cold t iu hu (iv + 1) hv best
  end

(* ------------------------------------------------------------------ *)
(* Hot estimators.

   Two textually mirrored copies of each loop, one per backing
   ([*_h] over heap arrays, [*_m] over the mapped word window): a
   functorised or closure-based accessor would compile to an indirect
   call per element load, which is the cost this layout exists to
   avoid. The dispatch happens once per query, in [estimate].

   TZ keeps the level scan with its first-hit exit and gets tuned
   membership probes (unchecked loads, shift midpoints, hoisted
   arrays). A full merge of each node's sorted pivots against the
   other's entry slice was tried and measured ~30% slower end to end:
   it touches all k pivots in both directions on every query, while
   the scan stops at the first populated level — usually after two
   probes at the k this sketch runs at. The common-entry families
   have no early exit to lose, so their estimator IS the merge:
   linear for balanced slices, galloping through the long side when
   the slices are skewed. All loops carry state in the argument
   list — no tuple return, no ref cell, zero minor words per
   query. *)

(* Every helper pins its array parameters to [int array] (and the
   mapped mirrors to [buf]): without the annotation the element type
   generalizes to ['a], and each [=]/[<] in the loop compiles to a
   [caml_compare] C call plus a float-array tag check per element —
   a ~2x slowdown measured end to end. The record-field accesses the
   old kernels used got [int] for free; parameter passing does not. *)

(* First index in [lo, hi) with [en.(i) >= w]; [hi] if none. *)
let rec lower_h (en : int array) (w : int) lo hi =
  if lo >= hi then lo
  else begin
    let mid = (lo + hi) lsr 1 in
    if Array.unsafe_get en mid < w then lower_h en w (mid + 1) hi
    else lower_h en w lo mid
  end

(* Galloping variant; precondition [en.(lo) < w]. Exponential probe,
   then binary inside the bracketed run — O(log gap) per advance. *)
let rec gallop_h (en : int array) (w : int) lo hi step =
  let p = lo + step in
  if p < hi && Array.unsafe_get en p < w then gallop_h en w p hi (step lsl 1)
  else lower_h en w (lo + 1) (min p hi)

(* Exact-membership probe: distance of [w] in the sorted slice
   [lo, hi), [Dist.infinity] when absent. *)
let rec probe_h (en : int array) (ed : int array) (w : int) lo hi =
  if lo >= hi then Dist.infinity
  else begin
    let mid = (lo + hi) lsr 1 in
    let x = Array.unsafe_get en mid in
    if x = w then Array.unsafe_get ed mid
    else if x < w then probe_h en ed w (mid + 1) hi
    else probe_h en ed w lo mid
  end

(* Level scan: at each level take the best of the two directions
   (u's pivot against B(v), v's against B(u)) and stop at the first
   level where either is finite — the classic TZ walk. *)
let rec tz_scan_h (pd : int array) (pn : int array) (off : int array)
    (en : int array) (ed : int array) k u v i =
  if i >= k then Dist.infinity
  else begin
    let du = Array.unsafe_get pd ((u * k) + i)
    and pu = Array.unsafe_get pn ((u * k) + i)
    and dv = Array.unsafe_get pd ((v * k) + i)
    and pv = Array.unsafe_get pn ((v * k) + i) in
    let via_pu =
      if du < Dist.infinity then
        Dist.add du
          (probe_h en ed pu
             (Array.unsafe_get off v)
             (Array.unsafe_get off (v + 1)))
      else Dist.infinity
    in
    let via_pv =
      if dv < Dist.infinity then
        Dist.add dv
          (probe_h en ed pv
             (Array.unsafe_get off u)
             (Array.unsafe_get off (u + 1)))
      else Dist.infinity
    in
    let est = if via_pu < via_pv then via_pu else via_pv in
    if est < Dist.infinity then est else tz_scan_h pd pn off en ed k u v (i + 1)
  end

(* Balanced slices: plain linear merge, branch-predictable advances,
   conditional-move min on a match. *)
let rec common_lin_h (en : int array) (ed : int array) iu hu iv hv best =
  if iu >= hu || iv >= hv then best
  else begin
    let wu = Array.unsafe_get en iu and wv = Array.unsafe_get en iv in
    if wu = wv then begin
      let s = Dist.add (Array.unsafe_get ed iu) (Array.unsafe_get ed iv) in
      common_lin_h en ed (iu + 1) hu (iv + 1) hv (if s < best then s else best)
    end
    else if wu < wv then common_lin_h en ed (iu + 1) hu iv hv best
    else common_lin_h en ed iu hu (iv + 1) hv best
  end

(* Skewed slices: iterate the short side, gallop through the long
   one — O(short · log(long/short)) instead of O(long). *)
let rec common_gal_h (en : int array) (ed : int array) is hs il hl best =
  if is >= hs || il >= hl then best
  else begin
    let ws = Array.unsafe_get en is in
    let e = Array.unsafe_get en il in
    if e < ws then common_gal_h en ed is hs (gallop_h en ws il hl 1) hl best
    else if e > ws then common_gal_h en ed (is + 1) hs il hl best
    else begin
      let s = Dist.add (Array.unsafe_get ed is) (Array.unsafe_get ed il) in
      common_gal_h en ed (is + 1) hs (il + 1) hl (if s < best then s else best)
    end
  end

let common_h (en : int array) (ed : int array) iu hu iv hv =
  let lu = hu - iu and lv = hv - iv in
  if lu > lv lsl 3 then common_gal_h en ed iv hv iu hu Dist.infinity
  else if lv > lu lsl 3 then common_gal_h en ed iu hu iv hv Dist.infinity
  else common_lin_h en ed iu hu iv hv Dist.infinity

(* --- Mapped mirrors: entry cursor stays in pair-index space, each
   load resolves to [base + 2·i (+ 1)] inside the window; bounds were
   proven once at [of_mapped]. --- *)

let rec lower_m (bf : buf) eat (w : int) lo hi =
  if lo >= hi then lo
  else begin
    let mid = (lo + hi) lsr 1 in
    if A1.unsafe_get bf (eat + (mid lsl 1)) < w then lower_m bf eat w (mid + 1) hi
    else lower_m bf eat w lo mid
  end

let rec gallop_m (bf : buf) eat (w : int) lo hi step =
  let p = lo + step in
  if p < hi && A1.unsafe_get bf (eat + (p lsl 1)) < w then
    gallop_m bf eat w p hi (step lsl 1)
  else lower_m bf eat w (lo + 1) (min p hi)

let rec probe_m (bf : buf) eat (w : int) lo hi =
  if lo >= hi then Dist.infinity
  else begin
    let mid = (lo + hi) lsr 1 in
    let x = A1.unsafe_get bf (eat + (mid lsl 1)) in
    if x = w then A1.unsafe_get bf (eat + (mid lsl 1) + 1)
    else if x < w then probe_m bf eat w (mid + 1) hi
    else probe_m bf eat w lo mid
  end

let rec tz_scan_m (bf : buf) oat pat eat k u v i =
  if i >= k then Dist.infinity
  else begin
    let bu = pat + (((u * k) + i) lsl 1)
    and bv = pat + (((v * k) + i) lsl 1) in
    let du = A1.unsafe_get bf bu
    and pu = A1.unsafe_get bf (bu + 1)
    and dv = A1.unsafe_get bf bv
    and pv = A1.unsafe_get bf (bv + 1) in
    let via_pu =
      if du < Dist.infinity then
        Dist.add du
          (probe_m bf eat pu
             (A1.unsafe_get bf (oat + v))
             (A1.unsafe_get bf (oat + v + 1)))
      else Dist.infinity
    in
    let via_pv =
      if dv < Dist.infinity then
        Dist.add dv
          (probe_m bf eat pv
             (A1.unsafe_get bf (oat + u))
             (A1.unsafe_get bf (oat + u + 1)))
      else Dist.infinity
    in
    let est = if via_pu < via_pv then via_pu else via_pv in
    if est < Dist.infinity then est else tz_scan_m bf oat pat eat k u v (i + 1)
  end

let rec common_lin_m (bf : buf) eat iu hu iv hv best =
  if iu >= hu || iv >= hv then best
  else begin
    let wu = A1.unsafe_get bf (eat + (iu lsl 1))
    and wv = A1.unsafe_get bf (eat + (iv lsl 1)) in
    if wu = wv then begin
      let s =
        Dist.add
          (A1.unsafe_get bf (eat + (iu lsl 1) + 1))
          (A1.unsafe_get bf (eat + (iv lsl 1) + 1))
      in
      common_lin_m bf eat (iu + 1) hu (iv + 1) hv (if s < best then s else best)
    end
    else if wu < wv then common_lin_m bf eat (iu + 1) hu iv hv best
    else common_lin_m bf eat iu hu (iv + 1) hv best
  end

let rec common_gal_m (bf : buf) eat is hs il hl best =
  if is >= hs || il >= hl then best
  else begin
    let ws = A1.unsafe_get bf (eat + (is lsl 1)) in
    let e = A1.unsafe_get bf (eat + (il lsl 1)) in
    if e < ws then common_gal_m bf eat is hs (gallop_m bf eat ws il hl 1) hl best
    else if e > ws then common_gal_m bf eat (is + 1) hs il hl best
    else begin
      let s =
        Dist.add
          (A1.unsafe_get bf (eat + (is lsl 1) + 1))
          (A1.unsafe_get bf (eat + (il lsl 1) + 1))
      in
      common_gal_m bf eat (is + 1) hs (il + 1) hl (if s < best then s else best)
    end
  end

let common_m (bf : buf) eat iu hu iv hv =
  let lu = hu - iu and lv = hv - iv in
  if lu > lv lsl 3 then common_gal_m bf eat iv hv iu hu Dist.infinity
  else if lv > lu lsl 3 then common_gal_m bf eat iu hu iv hv Dist.infinity
  else common_lin_m bf eat iu hu iv hv Dist.infinity

let estimate t u v =
  check_pair t u v "estimate";
  match (t.family, t.backing) with
  | Family.Tz, Heap h ->
    tz_scan_h h.h_pivot_dist h.h_pivot_node h.h_off h.h_ent_node h.h_ent_dist
      t.k u v 0
  | Family.Tz, Mapped m ->
    tz_scan_m m.m_buf m.m_off_at m.m_piv_at m.m_ent_at t.k u v 0
  | (Family.Landmark | Family.Bottomk), Heap h ->
    (* [u = v] short-circuits to 0: a landmark sketch holds landmark
       distances only, so the merge would report [2·d(u, nearest
       landmark)] for a node asked about itself. *)
    if u = v then 0
    else
      common_h h.h_ent_node h.h_ent_dist
        (Array.unsafe_get h.h_off u)
        (Array.unsafe_get h.h_off (u + 1))
        (Array.unsafe_get h.h_off v)
        (Array.unsafe_get h.h_off (v + 1))
  | (Family.Landmark | Family.Bottomk), Mapped m ->
    if u = v then 0
    else
      common_m m.m_buf m.m_ent_at
        (A1.unsafe_get m.m_buf (m.m_off_at + u))
        (A1.unsafe_get m.m_buf (m.m_off_at + u + 1))
        (A1.unsafe_get m.m_buf (m.m_off_at + v))
        (A1.unsafe_get m.m_buf (m.m_off_at + v + 1))

let estimate_bidirectional t u v =
  check_pair t u v "estimate_bidirectional";
  match t.family with
  | Family.Tz -> tz_bidi_from t u v t.k 0 Dist.infinity
  | Family.Landmark | Family.Bottomk ->
    if u = v then 0
    else
      common_from_cold t (off_at t u)
        (off_at t (u + 1))
        (off_at t v)
        (off_at t (v + 1))
        Dist.infinity

(* ------------------------------------------------------------------ *)
(* Probe-counting twins: kept on the original binary-search /
   linear-merge scans so E8's deterministic work measure is
   byte-stable across the kernel overhaul. The estimates agree with
   [estimate] (the merge kernels are answer-identical by
   construction; the randomized suites pin it). Cold path — generic
   accessors and refs are fine here. *)

let find_probed t u w probes =
  let lo = ref (off_at t u) and hi = ref (off_at t (u + 1)) in
  let res = ref Dist.infinity in
  while !lo < !hi do
    incr probes;
    let mid = (!lo + !hi) / 2 in
    let x = ent_node_at t mid in
    if x = w then begin
      res := ent_dist_at t mid;
      lo := !hi
    end
    else if x < w then lo := mid + 1
    else hi := mid
  done;
  !res

let tz_probes t u v =
  let k = t.k in
  let probes = ref 0 in
  let rec go i =
    if i >= k then Dist.infinity
    else begin
      (* Two pivot-pair loads per level. *)
      probes := !probes + 2;
      let du = pivot_dist_at t ((u * k) + i)
      and pu = pivot_node_at t ((u * k) + i)
      and dv = pivot_dist_at t ((v * k) + i)
      and pv = pivot_node_at t ((v * k) + i) in
      let via_pu =
        if Dist.is_finite du then Dist.add du (find_probed t v pu probes)
        else Dist.infinity
      in
      let via_pv =
        if Dist.is_finite dv then Dist.add dv (find_probed t u pv probes)
        else Dist.infinity
      in
      let est = min via_pu via_pv in
      if Dist.is_finite est then est else go (i + 1)
    end
  in
  let est = go 0 in
  (est, !probes)

let common_probes t u v =
  if u = v then (0, 0)
  else begin
    let iu = ref (off_at t u) and iv = ref (off_at t v) in
    let hu = off_at t (u + 1) and hv = off_at t (v + 1) in
    let best = ref Dist.infinity and probes = ref 0 in
    while !iu < hu && !iv < hv do
      incr probes;
      let wu = ent_node_at t !iu and wv = ent_node_at t !iv in
      if wu = wv then begin
        best := min !best (Dist.add (ent_dist_at t !iu) (ent_dist_at t !iv));
        incr iu;
        incr iv
      end
      else if wu < wv then incr iu
      else incr iv
    done;
    (!best, !probes)
  end

let estimate_probes t u v =
  check_pair t u v "estimate_probes";
  match t.family with
  | Family.Tz -> tz_probes t u v
  | Family.Landmark | Family.Bottomk -> common_probes t u v

let equal a b =
  a.family = b.family && a.n = b.n && a.k = b.k && a.total = b.total
  &&
  let ok = ref true in
  for j = 0 to pivot_pairs a - 1 do
    if pivot_dist_at a j <> pivot_dist_at b j then ok := false;
    if pivot_node_at a j <> pivot_node_at b j then ok := false
  done;
  for u = 0 to a.n do
    if off_at a u <> off_at b u then ok := false
  done;
  for j = 0 to a.total - 1 do
    if ent_node_at a j <> ent_node_at b j then ok := false;
    if ent_dist_at a j <> ent_dist_at b j then ok := false
  done;
  !ok
