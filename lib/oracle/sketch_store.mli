(** Persistent snapshots of a built sketch set.

    The build/serve split: construction (the CONGEST protocols) runs
    once and saves its labels here; every later serving process loads
    the snapshot and skips reconstruction entirely. The format is

    - {b versioned}: an 8-byte magic plus a version word, so a stale
      reader fails loudly instead of misparsing;
    - {b checksummed}: the last 8 bytes are an FNV-1a64 digest of
      everything before them, so truncation and bit rot are detected
      on load;
    - {b byte-deterministic}: equal stores serialize to equal bytes —
      bunch entries are written in {!Ds_core.Label.to_words} canonical
      order (sorted by node id) and every integer is a fixed-width
      little-endian 64-bit word, so [save] ∘ [load] ∘ [save] is the
      identity on bytes and snapshots diff cleanly in CI.

    Byte layout (all integers u64 LE):
    {v
    0      magic "DSKETCH1"                  (8 bytes)
    8      version                           (currently 1)
    16     n  — number of labels
    24     k  — hierarchy depth
    32     seed — generation seed (0 if unknown)
    40     family_len, then that many family-name bytes,
           zero-padded to an 8-byte boundary
    .      bunch_off: n+1 cumulative bunch-entry counts
    .      pivots: per node, k (dist, node) pairs     (2·n·k words)
    .      bunch:  per node, (node, dist) pairs sorted
           by node id within each owner               (2·total words)
    end-8  FNV-1a64 checksum of all preceding bytes
    v}

    Bunch levels are analysis metadata and are not persisted; they
    come back as [-1], exactly like {!Ds_core.Label.of_words}. *)

type meta = {
  n : int;  (** number of nodes / labels *)
  k : int;  (** hierarchy depth shared by every label *)
  seed : int;  (** generation seed, [0] when unknown *)
  family : string;  (** graph family name, [""] when unknown *)
}

type t = private { meta : meta; labels : Ds_core.Label.t array }

exception Error of string
(** Raised by {!of_bytes} / {!load} on malformed input, with a message
    naming what is wrong (bad magic, unsupported version, truncation,
    checksum mismatch, corrupt section). Never raised by well-formed
    snapshots produced by {!to_bytes} / {!save}. *)

val v : ?seed:int -> ?family:string -> Ds_core.Label.t array -> t
(** Wrap a built label set. Validates that [labels.(i).owner = i] and
    that every label shares the same [k]; raises [Invalid_argument]
    otherwise. *)

val magic : string
(** The 8-byte file magic (["DSKETCH1"]). *)

val version : int
(** The format version this build reads and writes. *)

val to_bytes : t -> string
(** Serialize to the layout above. Deterministic: equal stores (in the
    sense of {!Ds_core.Label.equal} per node) produce identical
    bytes. *)

val of_bytes : string -> t
(** Inverse of {!to_bytes}; raises {!Error} on malformed input. *)

val save : string -> t -> unit
(** [save path t] writes [to_bytes t] atomically-ish (binary mode,
    single write). *)

val load : string -> t
(** [load path] reads and {!of_bytes}. Raises {!Error} on malformed
    contents and [Sys_error] if the file cannot be read. *)

val fnv1a64 : string -> int64
(** The checksum function (FNV-1a, 64-bit), exposed so tests can pin
    the trailer and CI scripts can fingerprint payloads. *)
