(** E3 — Theorem 1.1 (time/messages): rounds and messages of the
    distributed construction vs the proven bounds.

    Paper claim: O(k n^{1/k} S log n) rounds and O(k n^{1/k} S |E| log n)
    messages. We report measured counts, the bound evaluated without
    hidden constants, and their ratio — the ratio staying well below 1
    and roughly stable across the sweep is the reproduced "shape". *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Levels = Ds_core.Levels
module Tz_distributed = Ds_core.Tz_distributed

type params = {
  seed : int;
  ns : int list;
  k_of_n : int -> int;
  k_sweep : int list;
  k_sweep_n : int;
}

let default =
  {
    seed = 3;
    ns = [ 64; 128; 256; 512 ];
    k_of_n = (fun _ -> 3);
    k_sweep = [ 1; 2; 3; 4; 6 ];
    k_sweep_n = 256;
  }

let quick =
  {
    seed = 3;
    ns = [ 32; 64 ];
    k_of_n = (fun _ -> 3);
    k_sweep = [ 1; 2; 3 ];
    k_sweep_n = 64;
  }

let id = "e3"
let title = "construction rounds/messages"
let claim_id = "Theorem 1.1"

let claim =
  "the known-S construction takes O(k n^{1/k} S log n) rounds and \
   O(k n^{1/k} S |E| log n) messages"

let bound_expr = "`k n^{1/k} S ln n` rounds; `k n^{1/k} S |E| ln n` messages"

let prose =
  "Measured rounds and messages track the constant-1 bounds at a small, \
   stable fraction across the n sweep. The k sweep shows the predicted \
   k n^{1/k} shape: k = 1 is full APSP flooding, cost drops steeply to \
   k = 3 and flattens after. Across topologies the S-dependence is \
   visible directly — the star-ring family (large shortest-path \
   diameter) costs several times a random tree of the same size."

let bound_rounds ~n ~k ~s =
  float_of_int k
  *. (float_of_int n ** (1.0 /. float_of_int k))
  *. float_of_int s *. Common.ln n

let bound_messages ~n ~k ~s ~m = bound_rounds ~n ~k ~s *. float_of_int m

type point = { r_ratio : float; m_ratio : float; metrics : Metrics.t }

let row ?pool ?tracer w ~seed ~k =
  let p = w.Common.profile in
  let n = p.Ds_graph.Props.n and s = p.Ds_graph.Props.s in
  let m = p.Ds_graph.Props.m in
  let levels = Levels.sample ~rng:(Rng.create (seed + k)) ~n ~k in
  let r = Tz_distributed.build ?pool ?tracer w.Common.graph ~levels in
  let rounds = Metrics.rounds r.Tz_distributed.metrics in
  let msgs = Metrics.messages r.Tz_distributed.metrics in
  let br = bound_rounds ~n ~k ~s and bm = bound_messages ~n ~k ~s ~m in
  let cells =
    [
      Table.cell_int n;
      Table.cell_int m;
      Table.cell_int s;
      Table.cell_int k;
      Table.cell_int rounds;
      Table.cell_float br;
      Table.cell_ratio (float_of_int rounds /. br);
      Table.cell_int msgs;
      Table.cell_float bm;
      Table.cell_ratio (float_of_int msgs /. bm);
    ]
  in
  ( cells,
    {
      r_ratio = float_of_int rounds /. br;
      m_ratio = float_of_int msgs /. bm;
      metrics = r.Tz_distributed.metrics;
    } )

let headers =
  [
    "n"; "|E|"; "S"; "k"; "rounds"; "k n^1/k S ln n"; "r-ratio"; "messages";
    "bound msgs"; "m-ratio";
  ]

let run ?pool { seed; ns; k_of_n; k_sweep; k_sweep_n } =
  let t1 =
    Table.create
      ~title:
        "E3a: distributed TZ rounds/messages vs n (erdos-renyi, fixed k) — \
         Theorem 1.1"
      ~headers
  in
  (* Trace the largest run of the sweep: its per-round congestion
     profile is attached to the report alongside the phase totals. *)
  let n_last = List.nth ns (List.length ns - 1) in
  let tracer = Ds_congest.Trace.create () in
  let sweep =
    List.map
      (fun n ->
        let w =
          Common.make_workload ?pool ~seed
            ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
            ~n ()
        in
        let tr = if n = n_last then Some tracer else None in
        let cells, pt = row ?pool ?tracer:tr w ~seed ~k:(k_of_n n) in
        Table.add_row t1 cells;
        (n, pt))
      ns
  in
  let t2 =
    Table.create
      ~title:
        (Printf.sprintf
           "E3b: distributed TZ rounds/messages vs k (erdos-renyi, n=%d)"
           k_sweep_n)
      ~headers
  in
  let w =
    Common.make_workload ?pool ~seed
      ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
      ~n:k_sweep_n ()
  in
  List.iter
    (fun k -> Table.add_row t2 (fst (row ?pool w ~seed ~k)))
    k_sweep;
  let t3 =
    Table.create
      ~title:"E3c: distributed TZ across topologies (k=3) — S-dependence"
      ~headers
  in
  List.iter
    (fun (_, family) ->
      let w = Common.make_workload ?pool ~seed ~family ~n:k_sweep_n () in
      Table.add_row t3 (fst (row ?pool w ~seed ~k:3)))
    (Common.standard_families ~n:k_sweep_n);
  let n_max, last = List.nth sweep (List.length sweep - 1) in
  let ratios = List.map (fun (_, pt) -> pt.r_ratio) sweep in
  let spread =
    List.fold_left max 0.0 ratios
    /. List.fold_left min infinity ratios
  in
  let checks =
    [
      Report.check ~bound:1.0
        ~ok:(last.r_ratio <= 1.0)
        (Printf.sprintf "rounds / constant-1 round bound (n=%d)" n_max)
        last.r_ratio;
      Report.check ~bound:1.0
        ~ok:(last.m_ratio <= 1.0)
        (Printf.sprintf "messages / constant-1 message bound (n=%d)" n_max)
        last.m_ratio;
      Report.check ~ok:(spread <= 4.0)
        "round-ratio stability across the n sweep (max/min <= 4)" spread;
    ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t1; t2; t3 ];
    phases =
      [
        ( Printf.sprintf "known-S build (erdos-renyi, n=%d, k=%d)" n_max
            (k_of_n n_max),
          Common.report_phases last.metrics );
      ];
    round_profiles =
      [
        ( Printf.sprintf "known-S build (erdos-renyi, n=%d, k=%d)" n_max
            (k_of_n n_max),
          Common.round_profile tracer );
      ];
    verdict = Report.Reproduced;
  }
