(* The headline of Theorem 1.3: one gracefully-degrading sketch whose
   estimates are, on average over all pairs, within a constant of the
   true distances — while the worst case stays O(log n).

   This example builds the sketch and shows how accuracy degrades
   gracefully with pair "farness": for close pairs (small eps the pair
   is NOT eps-far for) nothing is guaranteed, yet measured stretch
   stays small; for far pairs the per-eps slack guarantees kick in.

   Run with: dune exec examples/average_stretch.exe *)

module Rng = Ds_util.Rng
module Gen = Ds_graph.Gen
module Apsp = Ds_graph.Apsp
module Graceful = Ds_core.Graceful
module Eval = Ds_core.Eval

let () =
  let n = 200 in
  let g = Gen.erdos_renyi ~rng:(Rng.create 77) ~n ~avg_degree:6.0 () in
  let r = Graceful.build_distributed ~rng:(Rng.create 79) g in
  let apsp = Apsp.compute g in
  let query u v = Graceful.query r.Graceful.sketches.(u) r.Graceful.sketches.(v) in

  let report = Eval.all_pairs ~query apsp in
  let sketch_words = Graceful.size_words r.Graceful.sketches.(0) in
  Printf.printf "Gracefully degrading sketch on %d nodes:\n" n;
  Printf.printf "  sketch size:      %d words (%d slack levels)\n" sketch_words
    (Array.length r.Graceful.sketches.(0).Graceful.parts);
  Printf.printf "  average stretch:  %.3f   <- Theorem 1.3's O(1)\n"
    report.Eval.avg_stretch;
  Printf.printf "  worst stretch:    %.3f   (O(log n) bound)\n"
    report.Eval.max_stretch;
  Printf.printf "  underestimates:   %d\n\n" report.Eval.violations;

  (* Stretch by farness band: pairs that are eps-far for larger eps
     are "farther"; the guarantee tightens as eps grows. *)
  Printf.printf "%10s %12s %12s\n" "eps-far" "avg stretch" "max stretch";
  List.iter
    (fun eps ->
      let pairs = Eval.far_pairs apsp ~eps in
      if Array.length pairs > 0 then begin
        let rep = Eval.on_pairs ~query pairs in
        Printf.printf "%10.3f %12.3f %12.3f\n" eps rep.Eval.avg_stretch
          rep.Eval.max_stretch
      end)
    [ 0.02; 0.05; 0.1; 0.25; 0.5; 0.75 ]
