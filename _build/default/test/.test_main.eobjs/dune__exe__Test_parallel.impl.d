test/test_parallel.ml: Alcotest Array Ds_congest Ds_core Ds_parallel Ds_util Fun Helpers Printf
