(** Thorup–Zwick distance labels (the per-node sketches).

    A label holds the pivots [p_0(u), …, p_{k-1}(u)] with their
    distances and the bunch [B(u) = ∪_i B_i(u)] as a map from node to
    distance. Two labels alone suffice to answer a distance query with
    stretch [2k-1] (Lemma 3.2 of the paper). *)

type t = {
  owner : int;
  k : int;
  pivots : (int * int) array;
      (** [pivots.(i) = (d(u, A_i), p_i(u))], length [k]. *)
  bunch : (int, int * int) Hashtbl.t;
      (** node [w] -> [(d(u,w), level of w)]; the level is analysis
          metadata and is not charged to the sketch size. *)
}

val create : owner:int -> k:int -> t

val add_bunch : t -> node:int -> dist:int -> level:int -> unit
val set_pivot : t -> level:int -> dist:int -> node:int -> unit

val bunch_dist : t -> int -> int option
val bunch_size : t -> int
val bunch_nodes : t -> (int * int * int) list
(** [(node, dist, level)] triples, sorted by node id (ascending). *)

val size_words : t -> int
(** Sketch size in the paper's units: two words per pivot (ID and
    distance) plus two words per bunch entry. *)

val query : t -> t -> int
(** Lemma 3.2: scan levels upward; at the first level [i] where
    [p_i(u) ∈ B(v)] or [p_i(v) ∈ B(u)], return the triangle estimate
    (the smaller one if both hit). Guarantees
    [d(u,v) <= query l_u l_v <= (2k-1) d(u,v)] when both labels come
    from the same hierarchy with [A_0] containing all nodes. *)

val query_bidirectional : t -> t -> int
(** Ablation: minimum triangle estimate over {e every} level and both
    directions — never worse than {!query}, same worst-case bound. *)

val equal : t -> t -> bool
(** Structural equality (pivots and bunch distances); used to check
    distributed-vs-centralized agreement. *)

val to_words : t -> (int * int) array
(** Wire format, one pair = two words per array cell:
    [(owner, k); pivot_0; …; pivot_{k-1}; (node, dist); …]. Length is
    [size_words t / 2 + 1]. Bunch levels are analysis metadata and are
    not shipped.

    {b Canonical order invariant}: bunch entries appear sorted by node
    id, independent of insertion order — labels that are {!equal}
    produce identical arrays, so the wire format (and everything
    layered on it, e.g. [Ds_oracle.Sketch_store] snapshots) is
    byte-deterministic. *)

val of_words : (int * int) array -> t
(** Inverse of {!to_words} (bunch levels come back as [-1]). Raises
    [Invalid_argument] on malformed input: an empty array, [k < 1], a
    pivot section shorter than [k], or a duplicate bunch node. Accepts
    bunch entries in any order; {!to_words} re-canonicalizes. *)

val pp : Format.formatter -> t -> unit
