(** Column-aligned ASCII tables for the experiment harness. *)

type t

val create : title:string -> headers:string list -> t
val add_row : t -> string list -> unit
val add_rows : t -> string list list -> unit
val render : t -> string
val print : t -> unit

val title : t -> string

val headers : t -> string list
(** Column headers, in display order. *)

val rows : t -> string list list
(** Data rows in insertion order (headers excluded). *)

val to_markdown : t -> string
(** GitHub-flavoured pipe table (header, separator, data rows); the
    title is {e not} included — callers place it as a heading. *)

val to_csv : t -> string
(** RFC-4180-ish CSV: header row then data rows; cells containing
    commas or quotes are quoted. *)

val save_csv : t -> dir:string -> string
(** Write the CSV under [dir] (created if missing) using a slug of the
    title as filename; returns the path. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_ratio : float -> string
