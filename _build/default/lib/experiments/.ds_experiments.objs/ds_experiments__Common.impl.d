lib/experiments/common.ml: Array Ds_core Ds_graph Ds_util
