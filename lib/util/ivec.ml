type t = { mutable a : int array; mutable len : int }

let create ?(capacity = 16) () = { a = Array.make (max 1 capacity) 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ivec.get";
  t.a.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Ivec.set";
  t.a.(i) <- x

let push t x =
  let cap = Array.length t.a in
  if t.len = cap then begin
    let b = Array.make (2 * cap) 0 in
    Array.blit t.a 0 b 0 t.len;
    t.a <- b
  end;
  t.a.(t.len) <- x;
  t.len <- t.len + 1

let clear t = t.len <- 0

let truncate t len =
  if len < 0 || len > t.len then invalid_arg "Ivec.truncate";
  t.len <- len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.a.(i)
  done

let to_list t = List.init t.len (fun i -> t.a.(i))
