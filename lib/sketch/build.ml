module Graph = Ds_graph.Graph
module Rng = Ds_util.Rng
module Levels = Ds_core.Levels
module Tz_distributed = Ds_core.Tz_distributed

type result = {
  sketch : Sketch.t;
  metrics : Ds_congest.Metrics.t;
  mem_words : int;
}

let run ?backend ?pool ?shards ?tracer ?obs ~family g ~k ~seed =
  match family with
  | Family.Tz ->
    (* [seed + 1] matches the CLI's hierarchy-sampling convention, so
       a platform-built tz sketch is bit-identical to the historical
       single-family path. *)
    let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n:(Graph.n g) ~k in
    let r = Tz_distributed.build ?backend ?pool ?shards ?tracer ?obs g ~levels in
    {
      sketch = Sketch.of_tz_labels r.Tz_distributed.labels;
      metrics = r.Tz_distributed.metrics;
      mem_words = r.Tz_distributed.mem_words;
    }
  | Family.Landmark ->
    let r = Landmark.run ?backend ?pool ?shards ?tracer ?obs g ~k ~seed in
    { sketch = r.Landmark.sketch; metrics = r.Landmark.metrics; mem_words = 0 }
  | Family.Bottomk ->
    let r = Bottomk.run ?backend ?pool ?shards ?tracer ?obs g ~k ~seed in
    {
      sketch = r.Bottomk.sketch;
      metrics = r.Bottomk.metrics;
      mem_words = r.Bottomk.mem_words;
    }
