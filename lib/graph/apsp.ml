module Rng = Ds_util.Rng
module Pool = Ds_parallel.Pool

type t = { n : int; rows : int array array }

let compute ?(pool = Pool.sequential) g =
  let n = Graph.n g in
  if n = 0 then { n; rows = [||] }
  else begin
    (* One Dijkstra row per index: each task writes only its own slot,
       and [Dijkstra.sssp g ~src] depends on nothing but [src], so the
       rows are identical under any pool (pinned by a test). *)
    let rows = Array.make n [||] in
    Pool.parallel_for pool ~lo:0 ~hi:n (fun src ->
        rows.(src) <- Dijkstra.sssp g ~src);
    { n; rows }
  end

let dist t u v = t.rows.(u).(v)

let n t = t.n

let iter_pairs t f =
  for u = 0 to t.n - 1 do
    for v = u + 1 to t.n - 1 do
      f u v t.rows.(u).(v)
    done
  done

let sample_pairs ~rng t ~count =
  Array.init count (fun _ ->
      let u = Rng.int rng t.n in
      let v =
        let v = Rng.int rng (t.n - 1) in
        if v >= u then v + 1 else v
      in
      (u, v, t.rows.(u).(v)))
