(** Pipelined broadcast of each net node's label down its Voronoi cell.

    After the super-source Bellman–Ford, every node's forest parent has
    the same nearest net node, so each net node roots a tree spanning
    exactly its cell. The net node streams its serialized label
    ({!Label.to_words}) two words per round per child edge; relays
    forward chunks as they arrive and record them. This realises the
    "[u] stores [L(u')]" step of the CDG sketch with honest CONGEST
    accounting — [O(max_cell_depth + max_label_words/2)] rounds and
    [O(n · label_words)] total words — and the content genuinely
    travels over the wire (the received stream is what the caller
    deserializes). *)

val run :
  ?backend:Ds_congest.Plane.backend -> ?pool:Ds_parallel.Pool.t ->
  ?shards:int -> Ds_graph.Graph.t ->
  forest:Ds_congest.Super_bf.result -> payload:(int -> (int * int) array) ->
  (int * int) array array * Ds_congest.Metrics.t
(** [run g ~forest ~payload] streams [payload w] from every forest
    root [w]. Returns per node the words it received from its cell
    root (roots get their own payload verbatim, with zero cost). *)
