(* The serving loop: cache correctness (cached answers byte-identical
   to uncached, across pool sizes and cache sizes), static-assignment
   determinism (same stream + config -> same answers and counters),
   per-worker accounting, open-loop pacing, and admission edge cases. *)

module Rng = Ds_util.Rng
module Gen = Ds_graph.Gen
module Levels = Ds_core.Levels
module Oracle = Ds_oracle.Oracle
module Serve = Ds_oracle.Serve
module Workload = Ds_oracle.Workload
module Pool = Ds_parallel.Pool

let oracle_for ~n ~seed =
  let g = Gen.erdos_renyi ~rng:(Rng.create seed) ~n ~avg_degree:6.0 () in
  let levels = Levels.sample ~rng:(Rng.create (seed + 1)) ~n ~k:3 in
  Oracle.of_labels (Ds_core.Tz_centralized.build g ~levels)

let baseline oracle flat =
  Array.init (Array.length flat / 2) (fun i ->
      Oracle.query oracle flat.(2 * i) flat.((2 * i) + 1))

let check_answers name expected got =
  Alcotest.(check (array int)) name expected got

(* Cached == uncached, for every pool size and cache size, on skewed
   workloads that actually exercise the cache. The answer array must
   equal a plain per-pair Oracle.query sweep bit-for-bit. *)
let test_cache_correctness () =
  let n = 256 in
  let oracle = oracle_for ~n ~seed:31 in
  List.iter
    (fun (qseed, alpha) ->
      let flat =
        Workload.pairs_flat ~rng:(Rng.create qseed)
          (Workload.Zipf { alpha }) ~n ~count:4_000
      in
      let expected = baseline oracle flat in
      List.iter
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              List.iter
                (fun cache_bits ->
                  let config =
                    { Serve.default_config with cache_bits; batch = 48 }
                  in
                  let out, stats = Serve.run ~pool ~config oracle flat in
                  check_answers
                    (Printf.sprintf
                       "qseed=%d alpha=%.1f domains=%d cache_bits=%d: cached \
                        == uncached"
                       qseed alpha domains cache_bits)
                    expected out;
                  if cache_bits = 0 then
                    Alcotest.(check (float 0.0))
                      "no cache -> no hits" 0.0 stats.Serve.hit_rate)
                [ 0; 4; 10 ]))
        [ 1; 2; 3; 8 ])
    [ (5, 0.8); (6, 1.3) ]

(* Same stream + same config -> identical answers and identical
   per-worker assignment counters, run to run, including under an
   open-loop rate (timing must never leak into results). *)
let test_determinism_with_rate () =
  let n = 128 in
  let oracle = oracle_for ~n ~seed:33 in
  let flat =
    Workload.pairs_flat ~rng:(Rng.create 11) (Workload.Zipf { alpha = 1.2 })
      ~n ~count:2_000
  in
  let config =
    { Serve.batch = 32; cache_bits = 8; rate = 5_000_000. }
  in
  Pool.with_pool ~domains:4 (fun pool ->
      let out1, s1 = Serve.run ~pool ~config oracle flat in
      let out2, s2 = Serve.run ~pool ~config oracle flat in
      check_answers "same seed + rate: identical answers" out1 out2;
      Array.iteri
        (fun w (ws1 : Serve.worker_stats) ->
          let ws2 = s2.Serve.per_worker.(w) in
          Alcotest.(check int)
            (Printf.sprintf "worker %d served is deterministic" w)
            ws1.Serve.served ws2.Serve.served;
          Alcotest.(check int)
            (Printf.sprintf "worker %d hits are deterministic" w)
            ws1.Serve.hits ws2.Serve.hits)
        s1.Serve.per_worker;
      (* And the closed-loop answers match the rated ones. *)
      let out3, _ =
        Serve.run ~pool ~config:{ config with rate = 0. } oracle flat
      in
      check_answers "rate does not change answers" out1 out3)

let test_accounting () =
  let n = 128 in
  let oracle = oracle_for ~n ~seed:35 in
  let count = 3_000 in
  let flat =
    Workload.pairs_flat ~rng:(Rng.create 21) (Workload.Zipf { alpha = 1.1 })
      ~n ~count
  in
  Pool.with_pool ~domains:3 (fun pool ->
      let config = { Serve.default_config with cache_bits = 9; batch = 17 } in
      let _, stats = Serve.run ~pool ~config oracle flat in
      Alcotest.(check int) "pairs" count stats.Serve.pairs;
      Alcotest.(check int) "workers = pool width" 3 stats.Serve.workers;
      let served =
        Array.fold_left
          (fun acc (w : Serve.worker_stats) -> acc + w.Serve.served)
          0 stats.Serve.per_worker
      in
      Alcotest.(check int) "per-worker served sums to pairs" count served;
      Array.iter
        (fun (w : Serve.worker_stats) ->
          Alcotest.(check int)
            (Printf.sprintf "worker %d: hits + misses = served" w.Serve.worker)
            w.Serve.served
            (w.Serve.hits + w.Serve.misses))
        stats.Serve.per_worker;
      Alcotest.(check bool)
        "hit rate in [0, 1]" true
        (stats.Serve.hit_rate >= 0.0 && stats.Serve.hit_rate <= 1.0);
      Alcotest.(check bool) "positive qps" true (stats.Serve.qps > 0.0);
      Alcotest.(check bool)
        "latency percentiles are ordered" true
        (stats.Serve.latency_ns.Serve.p50 <= stats.Serve.latency_ns.Serve.p99
        && stats.Serve.latency_ns.Serve.p99
           <= stats.Serve.latency_ns.Serve.p999
        && stats.Serve.latency_ns.Serve.p999
           <= stats.Serve.latency_ns.Serve.max))

(* A skewed stream must cache strictly better than a uniform one of
   the same size (that is the point of the hot-pair cache), and a
   hotter skew at least as well as a milder one. *)
let test_zipf_caches_better_than_uniform () =
  let n = 512 in
  let oracle = oracle_for ~n ~seed:37 in
  let count = 20_000 in
  let config = { Serve.default_config with cache_bits = 12 } in
  let hit_rate kind =
    let flat = Workload.pairs_flat ~rng:(Rng.create 41) kind ~n ~count in
    let _, stats = Serve.run ~config oracle flat in
    stats.Serve.hit_rate
  in
  let uniform = hit_rate Workload.Uniform in
  let mild = hit_rate (Workload.Zipf { alpha = 0.9 }) in
  let hot = hit_rate (Workload.Zipf { alpha = 1.5 }) in
  Alcotest.(check bool)
    (Printf.sprintf "zipf(0.9) %.3f > uniform %.3f" mild uniform)
    true (mild > uniform);
  Alcotest.(check bool)
    (Printf.sprintf "zipf(1.5) %.3f > zipf(0.9) %.3f" hot mild)
    true (hot > mild)

(* Open-loop pacing: at a finite offered rate the run cannot finish
   before the last request has arrived. *)
let test_open_loop_pacing () =
  let n = 128 in
  let oracle = oracle_for ~n ~seed:39 in
  let count = 4_000 in
  let flat =
    Workload.pairs_flat ~rng:(Rng.create 51) Workload.Uniform ~n ~count
  in
  let rate = 1_000_000. in
  let config = { Serve.default_config with rate; batch = 64 } in
  let _, stats = Serve.run ~config oracle flat in
  let stream_ns = float_of_int (count - 1) /. rate *. 1e9 in
  Alcotest.(check bool)
    (Printf.sprintf "elapsed %.0f ns >= stream duration %.0f ns"
       stats.Serve.elapsed_ns stream_ns)
    true
    (stats.Serve.elapsed_ns >= stream_ns);
  Alcotest.(check (float 0.0)) "offered rate recorded" rate stats.Serve.offered_qps

let test_edge_cases () =
  let n = 64 in
  let oracle = oracle_for ~n ~seed:43 in
  let flat =
    Workload.pairs_flat ~rng:(Rng.create 61) Workload.Uniform ~n ~count:100
  in
  let expected = baseline oracle flat in
  (* batch = 1 (pure per-pair dispatch) and batch > stream. *)
  List.iter
    (fun batch ->
      let out, _ =
        Serve.run ~config:{ Serve.default_config with batch } oracle flat
      in
      check_answers (Printf.sprintf "batch=%d" batch) expected out)
    [ 1; 7; 1_000 ];
  (* Empty stream: empty answers, zeroed stats. *)
  let out, stats = Serve.run oracle [||] in
  Alcotest.(check int) "empty stream -> no answers" 0 (Array.length out);
  Alcotest.(check int) "empty stream -> zero pairs" 0 stats.Serve.pairs;
  (* Invalid inputs raise. *)
  let raises name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  raises "odd-length stream" (fun () -> Serve.run oracle [| 1; 2; 3 |]);
  raises "batch = 0" (fun () ->
      Serve.run ~config:{ Serve.default_config with batch = 0 } oracle flat);
  raises "negative cache_bits" (fun () ->
      Serve.run
        ~config:{ Serve.default_config with cache_bits = -1 }
        oracle flat);
  raises "oversized cache_bits" (fun () ->
      Serve.run
        ~config:{ Serve.default_config with cache_bits = Serve.max_cache_bits + 1 }
        oracle flat);
  raises "negative rate" (fun () ->
      Serve.run ~config:{ Serve.default_config with rate = -1.0 } oracle flat)

let suite =
  [
    Alcotest.test_case "cached answers equal uncached across pools/caches"
      `Quick test_cache_correctness;
    Alcotest.test_case "same stream + rate -> identical answers and counters"
      `Quick test_determinism_with_rate;
    Alcotest.test_case "per-worker accounting reconciles" `Quick
      test_accounting;
    Alcotest.test_case "zipf traffic caches better than uniform" `Quick
      test_zipf_caches_better_than_uniform;
    Alcotest.test_case "open-loop pacing respects the offered rate" `Quick
      test_open_loop_pacing;
    Alcotest.test_case "admission edge cases and invalid configs" `Quick
      test_edge_cases;
  ]
