lib/core/slack.mli: Ds_congest Ds_graph Ds_parallel Ds_util
