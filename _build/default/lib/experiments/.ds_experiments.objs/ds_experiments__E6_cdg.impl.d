lib/experiments/e6_cdg.ml: Array Common Ds_congest Ds_core Ds_graph Ds_util List Printf
