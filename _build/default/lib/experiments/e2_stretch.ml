(** E2 — Lemma 3.2: query stretch vs k, all pairs.

    Paper claim: d(u,v) <= estimate <= (2k-1) d(u,v). The measured
    maximum must respect the bound; typical stretch is far below it. *)

module Table = Ds_util.Table
module Rng = Ds_util.Rng
module Levels = Ds_core.Levels
module Tz = Ds_core.Tz_centralized
module Label = Ds_core.Label
module Eval = Ds_core.Eval

type params = { n : int; seed : int; ks : int list; families : bool }

let default = { n = 300; seed = 2; ks = [ 1; 2; 3; 4; 6 ]; families = true }

let run { n; seed; ks; families } =
  let fams =
    if families then Common.standard_families ~n
    else [ List.hd (Common.standard_families ~n) ]
  in
  List.map
    (fun (fname, family) ->
      let w = Common.make_workload ~seed ~family ~n in
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "E2: stretch vs k on %s (n=%d, all pairs) — Lemma 3.2" fname
               (Ds_graph.Graph.n w.Common.graph))
          ~headers:
            [ "k"; "bound 2k-1"; "max"; "avg"; "p99"; "violations"; "ok" ]
      in
      List.iter
        (fun k ->
          let levels =
            Levels.sample
              ~rng:(Rng.create (seed + (31 * k)))
              ~n:(Ds_graph.Graph.n w.Common.graph)
              ~k
          in
          let labels = Tz.build w.Common.graph ~levels in
          let report =
            Eval.all_pairs
              ~query:(fun u v -> Label.query labels.(u) labels.(v))
              w.Common.apsp
          in
          let ok =
            report.Eval.violations = 0
            && report.Eval.max_stretch <= float_of_int ((2 * k) - 1) +. 1e-9
          in
          Table.add_row t
            ([ Table.cell_int k; Table.cell_int ((2 * k) - 1) ]
            @ [
                Table.cell_float ~decimals:3 report.Eval.max_stretch;
                Table.cell_float ~decimals:3 report.Eval.avg_stretch;
                Table.cell_float ~decimals:3 report.Eval.p99;
                Table.cell_int report.Eval.violations;
                (if ok then "yes" else "NO");
              ]))
        ks;
      t)
    fams
