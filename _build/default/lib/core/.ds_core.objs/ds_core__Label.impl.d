lib/core/label.ml: Array Ds_graph Format Hashtbl List
