lib/experiments/e1_size.ml: Array Common Ds_core Ds_graph Ds_util List Printf
