(* Greedy token forwarding with a sketch as the distance oracle: a
   token at node u headed for target t is forwarded to the neighbor w
   minimising (edge weight + estimated distance to t), computed from
   sketches alone (u holds its neighbors' sketches; in a real
   deployment neighbors exchange sketches once after preprocessing).

   Because estimates have bounded stretch, greedy forwarding reaches
   the target with a small detour; this is the kind of "token
   management / routing" use the paper's Section 2.1 lists.

   Run with: dune exec examples/token_routing.exe *)

module Rng = Ds_util.Rng
module Gen = Ds_graph.Gen
module Levels = Ds_core.Levels
module Routing = Ds_core.Routing
module Tz_distributed = Ds_core.Tz_distributed

let () =
  let n = 150 in
  let g = Gen.random_geometric ~rng:(Rng.create 33) ~n ~radius:0.14 () in
  let k = 2 in
  let levels = Levels.sample ~rng:(Rng.create 35) ~n ~k in
  let built = Tz_distributed.build g ~levels in
  let labels = built.Tz_distributed.labels in
  let apsp = Ds_graph.Apsp.compute g in

  let rng = Rng.create 37 in
  let delivered = ref 0 and total = 60 in
  let detours = ref [] in
  for _ = 1 to total do
    let src = Rng.int rng n in
    let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
    match Routing.with_labels g labels ~src ~dst with
    | Some o ->
      incr delivered;
      let d = Ds_graph.Apsp.dist apsp src dst in
      detours :=
        (float_of_int o.Routing.cost /. float_of_int (max 1 d)) :: !detours
    | None -> ()
  done;
  Printf.printf "Greedy sketch routing (k=%d, stretch bound %d):\n" k
    ((2 * k) - 1);
  Printf.printf "  delivered %d / %d tokens\n" !delivered total;
  if !detours <> [] then begin
    let a = Array.of_list !detours in
    Printf.printf "  route cost vs shortest path: mean %.2fx, worst %.2fx\n"
      (Ds_util.Stats.mean a) (Ds_util.Stats.max_of a)
  end
