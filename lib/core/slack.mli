(** Stretch-3 sketches with ε-slack (paper Theorem 4.3).

    The sketch of [u] is its distance to every node of an ε-density
    net; the estimate for [(u,v)] is [min_w (d(u,w) + d(w,v))] over net
    nodes [w]. For every pair where [v] is ε-far from [u] the estimate
    is within a factor 3 of [d(u,v)]; sketches have [O((1/ε) log n)]
    words and are built by one run of multi-source distributed
    Bellman–Ford from the net in [O(S·(1/ε) log n)] rounds. *)

type sketch = {
  owner : int;
  entries : (int * int) array;  (** (net node, distance), sorted by ID *)
}

val size_words : sketch -> int
(** Two words (net node ID, distance) per entry. *)

val query : sketch -> sketch -> int
(** [min_w (d(u,w) + d(w,v))]; infinity only if the nets differ. *)

type result = {
  sketches : sketch array;
  net : int list;
  metrics : Ds_congest.Metrics.t;
}

val build_distributed :
  ?backend:Ds_congest.Plane.backend -> ?pool:Ds_parallel.Pool.t ->
  ?shards:int -> rng:Ds_util.Rng.t -> Ds_graph.Graph.t ->
  eps:float -> result
(** Samples the ε-density net locally, then one multi-source
    Bellman–Ford from the whole net; [metrics] is the full CONGEST
    cost of that run. *)

val build_centralized :
  Ds_graph.Graph.t -> net:int list -> sketch array
(** Dijkstra-based oracle for correctness tests. *)
