(** Persistent data-parallel worker pool over OCaml 5 domains.

    The CONGEST engine steps all active node automata once per round;
    the per-node work is independent, so rounds parallelise trivially.
    Worker domains are spawned once in {!create} and parked on a
    condition variable; {!parallel_for} never spawns — it publishes a
    work descriptor, wakes the workers, runs its own share, and waits
    for them. That makes a round cost two lock handoffs per worker
    instead of a domain spawn+join, which matters when [parallel_for]
    runs once per simulated round.

    Determinism: the index range is split into the same contiguous
    chunks regardless of how many workers exist (one chunk per domain,
    ceiling-divided), and chunks never migrate. As long as [f i] only
    writes state owned by index [i], a run is bit-for-bit identical
    under any pool size, including {!sequential}. *)

type t

val create : ?domains:int -> unit -> t
(** [create ()] sizes the pool to the number of recommended domains
    and spawns [domains - 1] persistent workers. [domains] overrides
    the size (1 means fully sequential: no workers are spawned). *)

val domains : t -> int

val chunks_for : t -> int -> int
(** [chunks_for t n] is the number of domains a {!parallel_for} over
    [n] indices occupies: [0] when [n = 0], [1] when the pool has no
    workers (sequential, or shut down), otherwise [min (domains t) n]
    — the caller plus every worker that receives a chunk. Per-round
    pool-occupancy telemetry uses this instead of instrumenting the
    workers, which would put a timestamp in the job hot path. *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi f] runs [f i] for [lo <= i < hi], split
    into one contiguous chunk per domain. [f] must be safe to run
    concurrently for distinct [i]. Not reentrant: do not call
    [parallel_for] on the same pool from within [f], or from two
    threads at once. If some [f] raises, one of the exceptions is
    re-raised after every chunk has finished. *)

val parallel_chunks : t -> n:int -> (int -> int -> int -> unit) -> int
(** [parallel_chunks t ~n f] splits [0 <= i < n] into the same
    contiguous ceiling-divided chunks as {!parallel_for} but calls
    [f c lo hi] once per chunk instead of once per index, returning
    the number of chunks used ([0] when [n <= 0]). Accumulator-style
    work — one scratch cell per chunk, one tight loop per domain —
    pays a single closure dispatch per chunk this way. [f] must be
    safe to run concurrently for distinct chunks; chunk indices are
    dense in [0, chunks), so [f] can index per-chunk scratch arrays
    directly. Same non-reentrancy and exception rules as
    {!parallel_for}. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val shutdown : t -> unit
(** Joins the worker domains. Idempotent. The pool must be idle. After
    shutdown, [parallel_for] over more than one chunk raises
    [Invalid_argument]. Pools that are never shut down simply park
    their workers until process exit, but long-lived processes that
    create many pools should release them (domains are a bounded
    resource). *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it
    down. *)

val sequential : t
(** A pool that never spawns; useful in tests and as the default. *)
