lib/graph/dist.mli:
