examples/monitoring.mli:
