lib/graph/dist.ml:
