(** E8 — Section 2.1 motivation: answering a distance query from
    sketches vs computing it on demand.

    After preprocessing, exchanging two sketches costs O(D · |L|)
    rounds naively (O(D + |L|) pipelined); an on-demand computation
    (distributed Bellman-Ford) costs Omega(S) rounds per query. On the
    star-ring family S >> D, so sketches win per query and their
    construction amortises across a few queries. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Stats = Ds_util.Stats
module Super_bf = Ds_congest.Super_bf
module Setup = Ds_congest.Setup
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_distributed = Ds_core.Tz_distributed
module Query_protocol = Ds_core.Query_protocol
module Eval = Ds_core.Eval
module Oracle = Ds_oracle.Oracle

type params = { seed : int; ns : int list; k : int }

let default = { seed = 8; ns = [ 65; 129; 257; 513 ]; k = 3 }
let quick = { seed = 8; ns = [ 33; 65 ]; k = 3 }

let id = "e8"
let title = "query cost vs on-demand computation"
let claim_id = "Section 2.1"

let claim =
  "after preprocessing, a query costs O(D·|L|) rounds (O(D+|L|) \
   pipelined) vs Omega(S) for any on-demand computation; overlays with \
   S >> D make sketches win per query"

let bound_expr =
  "`D·|L|` rounds naive exchange, `D+|L|` pipelined, vs `S` on-demand"

let prose =
  "On the star-ring family (constant D, linear S) on-demand Bellman-Ford \
   cost grows linearly in n while the measured in-network pipelined \
   sketch exchange stays near D+|L| — the per-query speedup grows with \
   n and the crossover lands where the arithmetic says it must, with \
   construction amortised after a handful of queries. The measured \
   exchange can even beat the D+|L| formula: the tree path is shorter \
   than 2D and the particular label smaller than the mean. The third \
   serving mode — both sketches co-resident in a compact local oracle \
   (the build-once/serve-many split) — answers the same query in a \
   handful of array probes, zero network rounds, and returns the \
   identical estimate: once labels are gathered, per-query cost stops \
   depending on the network at all."

let run ?pool { seed; ns; k } =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E8: per-query cost, sketch exchange vs on-demand Bellman-Ford \
            (star-ring, k=%d) — Section 2.1"
           k)
      ~headers:
        [
          "n"; "D"; "S"; "BF rounds/query"; "mean |L|"; "D*|L| naive";
          "D+|L| pipelined"; "measured exchange"; "oracle probes";
          "speedup"; "build rounds"; "amortise after";
        ]
  in
  let speedups = ref [] in
  let oracle_agrees = ref true in
  let last = ref None in
  List.iter
    (fun n ->
      let w =
        Common.make_workload ?pool ~seed
          ~family:(Ds_graph.Gen.Star_ring { heavy_frac = 0.25 })
          ~n ()
      in
      let g = w.Common.graph in
      let gn = Ds_graph.Graph.n g in
      let d = w.Common.profile.Ds_graph.Props.d in
      let levels = Levels.sample ~rng:(Rng.create (seed + n)) ~n:gn ~k in
      let built = Tz_distributed.build ?pool g ~levels in
      let sizes =
        Eval.size_summary Label.size_words built.Tz_distributed.labels
      in
      let mean_l = sizes.Stats.mean in
      (* One on-demand query: a single-source BF from one endpoint. *)
      let _, bf_metrics = Super_bf.single_source g ~src:(gn / 2) in
      let bf_rounds = Metrics.rounds bf_metrics in
      let naive = float_of_int d *. mean_l in
      let pipelined = float_of_int d +. mean_l in
      (* Actually run the in-network sketch exchange for one pair. *)
      let tree, _ = Setup.run ?pool g in
      let exchange =
        Query_protocol.query ?pool g ~tree ~labels:built.Tz_distributed.labels
          ~u:(gn / 4) ~v:(gn / 2)
      in
      (* The local serving mode: both labels already co-resident in the
         compact oracle. Probes (array lookups) is its whole per-query
         cost — deterministic, so it can sit in a regenerated table. *)
      let oracle = Oracle.of_labels built.Tz_distributed.labels in
      let oracle_est, oracle_probes =
        Oracle.query_probes oracle (gn / 4) (gn / 2)
      in
      if oracle_est <> exchange.Query_protocol.estimate then
        oracle_agrees := false;
      let build_rounds = Metrics.rounds built.Tz_distributed.metrics in
      let speedup =
        float_of_int bf_rounds /. float_of_int exchange.Query_protocol.rounds
      in
      let amortise =
        ceil (float_of_int build_rounds /. float_of_int (max 1 bf_rounds))
      in
      speedups := speedup :: !speedups;
      last := Some (gn, speedup, float_of_int exchange.Query_protocol.rounds, naive);
      Table.add_row t
        [
          Table.cell_int gn;
          Table.cell_int d;
          Table.cell_int w.Common.profile.Ds_graph.Props.s;
          Table.cell_int bf_rounds;
          Table.cell_float mean_l;
          Table.cell_float naive;
          Table.cell_float pipelined;
          Table.cell_int exchange.Query_protocol.rounds;
          Table.cell_int oracle_probes;
          Table.cell_ratio speedup;
          Table.cell_int build_rounds;
          Table.cell_float ~decimals:0 amortise;
        ])
    ns;
  let n_max, last_speedup, last_exchange, last_naive =
    match !last with Some x -> x | None -> invalid_arg "E8: empty ns"
  in
  let first_speedup = List.nth (List.rev !speedups) 0 in
  let checks =
    [
      Report.check ~bound:1.0 ~ok:(last_speedup >= 1.0)
        (Printf.sprintf
           "per-query speedup over on-demand BF at n=%d (must exceed 1)"
           n_max)
        last_speedup;
      Report.check ~bound:last_naive ~ok:(last_exchange <= last_naive)
        (Printf.sprintf "measured exchange rounds <= naive D·|L| (n=%d)"
           n_max)
        last_exchange;
      Report.check
        ~ok:(last_speedup >= first_speedup)
        "speedup grows with n (last/first >= 1)"
        (last_speedup /. first_speedup);
      Report.check ~ok:!oracle_agrees
        "local compact oracle returns the identical estimate at every n \
         (1 = all agree)"
        (if !oracle_agrees then 1.0 else 0.0);
    ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t ];
    phases = [];
    round_profiles = [];
    verdict = Report.Reproduced;
  }
