module Graph = Ds_graph.Graph
module Engine = Ds_congest.Engine
module Metrics = Ds_congest.Metrics
module Setup = Ds_congest.Setup

type msg =
  | Req
  | Chunk of bool  (* true on the final chunk of the label stream *)

let msg_words = function Req -> 2 (* requester, target ids *) | Chunk _ -> 2

type state = {
  tree_neighbors : int array; (* neighbor indices of tree edges *)
  mutable req_parent : int; (* neighbor index toward the requester *)
  mutable to_stream : int; (* chunks left to emit (target only) *)
  mutable received_last : bool; (* requester: stream finished *)
}

let protocol ~tree ~label_chunks ~u ~v : (state, msg) Engine.protocol =
  let open Engine in
  let forward_req api st from =
    Array.iter (fun i -> if i <> from then api.send i Req) st.tree_neighbors
  in
  let stream_one api st last =
    api.send st.req_parent (Chunk last)
  in
  {
    name = "sketch-exchange";
    max_msg_words = 2;
    msg_words;
    halted = (fun st -> st.to_stream = 0);
    init =
      (fun api ->
        let me = api.id in
        let tn =
          let parent = tree.Setup.parent.(me) in
          let ids =
            (if parent < 0 then [] else [ parent ]) @ tree.Setup.children.(me)
          in
          let to_idx w =
            let rec find i = if api.neighbor_id i = w then i else find (i + 1) in
            find 0
          in
          Array.of_list (List.map to_idx ids)
        in
        let st =
          {
            tree_neighbors = tn;
            req_parent = -1;
            to_stream = 0;
            received_last = false;
          }
        in
        if me = u then begin
          if u = v then st.received_last <- true
          else forward_req api st (-1)
        end;
        st);
    on_round =
      (fun api st inbox ->
        let me = api.id in
        let process i m =
          match m with
          | Req ->
            if st.req_parent < 0 && me <> u then begin
              st.req_parent <- i;
              if me = v then st.to_stream <- max 1 label_chunks
              else forward_req api st i
            end
          | Chunk last ->
            if me = u then begin
              if last then st.received_last <- true
            end
            else if st.req_parent >= 0 then
              (* Relay the stream toward the requester. *)
              api.send st.req_parent (Chunk last)
        in
        Engine.Inbox.iter process inbox;
        if me = v && st.to_stream > 0 then begin
          st.to_stream <- st.to_stream - 1;
          stream_one api st (st.to_stream = 0)
        end);
  }

type result = {
  estimate : int;
  rounds : int;
  messages : int;
  metrics : Metrics.t;
}

let query ?pool g ~tree ~labels ~u ~v =
  let chunks = (Label.size_words labels.(v) + 1) / 2 in
  let eng =
    Engine.create ?pool g (protocol ~tree ~label_chunks:chunks ~u ~v)
  in
  (match Engine.run eng with
  | Engine.Quiescent | Engine.All_halted -> ()
  | Engine.Round_limit -> failwith "Query_protocol: round limit hit");
  let st = Engine.state eng u in
  if not st.received_last then failwith "Query_protocol: stream never arrived";
  let m = Engine.metrics eng in
  {
    estimate = (if u = v then 0 else Label.query labels.(u) labels.(v));
    rounds = Metrics.rounds m;
    messages = Metrics.messages m;
    metrics = m;
  }
