module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Dijkstra = Ds_graph.Dijkstra
module Metrics = Ds_congest.Metrics
module Super_bf = Ds_congest.Super_bf
module Rng = Ds_util.Rng

let r ~n =
  let rec log2 acc x = if x >= 2 then log2 (acc + 1) (x / 2) else acc in
  max 1 (log2 0 n)

let sets ~n ~k ~seed =
  if k < 1 then invalid_arg "Landmark.sets: k < 1";
  if n < 1 then invalid_arg "Landmark.sets: n < 1";
  let rng = Rng.create seed in
  let r = r ~n in
  Array.init (k * r) (fun i ->
      let j = i mod r in
      let size = min (1 lsl j) n in
      Rng.sample_without_replacement rng size n)

(* Merge one super-BF result into the per-node landmark maps: keep the
   min distance per (node, landmark). Duplicate landmarks across sets
   always carry the same exact distance, so "min" is just dedup. *)
let merge_run maps (res : Super_bf.result) =
  Array.iteri
    (fun u d ->
      if Dist.is_finite d then begin
        let l = res.Super_bf.nearest.(u) in
        match Hashtbl.find_opt maps.(u) l with
        | Some d' when d' <= d -> ()
        | _ -> Hashtbl.replace maps.(u) l d
      end)
    res.Super_bf.dist

let entries_of_maps maps =
  Array.map
    (fun map ->
      let es = Hashtbl.fold (fun l d acc -> (l, d) :: acc) map [] in
      let arr = Array.of_list es in
      Array.sort compare arr;
      arr)
    maps

type result = { sketch : Sketch.t; metrics : Metrics.t }

let run ?backend ?pool ?shards ?tracer ?obs g ~k ~seed =
  if k < 1 then invalid_arg "Landmark.run: k < 1";
  let n = Graph.n g in
  let maps = Array.init n (fun _ -> Hashtbl.create 8) in
  let acc = ref (Metrics.create ()) in
  Array.iter
    (fun set ->
      let sources = Array.to_list set in
      let res, m = Super_bf.run ?backend ?pool ?shards ?tracer ?obs g ~sources in
      acc := Metrics.add !acc m;
      merge_run maps res)
    (sets ~n ~k ~seed);
  let sketch = Sketch.v ~family:Family.Landmark ~k (entries_of_maps maps) in
  { sketch; metrics = !acc }

let reference g ~k ~seed =
  if k < 1 then invalid_arg "Landmark.reference: k < 1";
  let n = Graph.n g in
  let maps = Array.init n (fun _ -> Hashtbl.create 8) in
  Array.iter
    (fun set ->
      let dist, nearest = Dijkstra.multi_source g ~sources:set in
      merge_run maps { Super_bf.dist; nearest; parent = [||]; children = [||] })
    (sets ~n ~k ~seed);
  entries_of_maps maps
