(** Structured experiment results and the emitters that turn them into
    the repository's committed artifacts.

    Every experiment produces a {!result}: the paper claim it
    reproduces, the constant-1 bound expression it evaluates, a list
    of machine-checked {!check}s (measured value vs bound, pass/fail),
    the data tables, optional per-phase CONGEST cost breakdowns, and a
    {!verdict}. [EXPERIMENTS.md] and [EXPERIMENTS.json] are rendered
    from these values by {!markdown} and {!to_json} — no number in
    either file is hand-transcribed, which is what lets
    [report --check] detect drift by byte comparison. *)

type phase = { name : string; rounds : int; messages : int; words : int }
(** One completed protocol phase of a CONGEST execution; mirrors
    [Ds_congest.Metrics.phase] (duplicated here so the emitters do not
    depend on the simulator). *)

type round_profile = {
  rounds : int;
  peak_messages : int;  (** largest per-round delivery count *)
  peak_messages_round : int;  (** 1-based round of that peak *)
  peak_active_links : int;
  peak_active_links_round : int;
  peak_in_flight : int;
  peak_in_flight_round : int;
  max_link_backlog : int;
}
(** Where in an execution each congestion measure peaks — the
    deterministic summary of a [Ds_congest.Trace] (mirrored here like
    {!phase}, so the emitters stay simulator-free). *)

type check = {
  label : string;  (** what was measured, with enough context to read alone *)
  measured : float;  (** the measured value *)
  bound : float option;
      (** the paper bound evaluated with every hidden constant set to 1,
          when the check has one; [None] for plain invariants *)
  ok : bool;  (** the pass criterion, evaluated by the experiment *)
}
(** One machine-checked measurement. The reproduced "shape" of a
    theorem is the measured/bound ratio staying below 1 and stable
    across a sweep; [ok] encodes each experiment's precise criterion. *)

(** How strongly the run supports the claim. [Validated] is for
    extensions/conjectures beyond the paper's theorems;
    [Informational] for motivation and ablation experiments with no
    pass/fail claim. *)
type verdict =
  | Reproduced
  | Reproduced_with_caveat of string  (** reproduced, honest footnote attached *)
  | Validated
  | Informational

type result = {
  id : string;  (** experiment id, e.g. ["e3"] *)
  title : string;  (** short human title *)
  claim_id : string;  (** paper statement, e.g. ["Theorem 1.1"] *)
  claim : string;  (** the claim, stated in one sentence *)
  bound_expr : string;  (** the constant-1 expression the checks evaluate *)
  prose : string;
      (** hand-written commentary; must not carry numbers — those
          belong in checks/tables so they regenerate *)
  checks : check list;
  tables : Table.t list;  (** the experiment's data tables *)
  phases : (string * phase list) list;
      (** labelled per-run phase breakdowns, e.g.
          [("echo build (n=512)", [...])] *)
  round_profiles : (string * round_profile) list;
      (** labelled per-run peak-congestion profiles, from traced runs *)
  verdict : verdict;
}

val check : ?bound:float -> ok:bool -> string -> float -> check
(** [check ?bound ~ok label measured] — plain constructor. *)

val ratio : check -> float option
(** measured/bound, when a non-zero bound is present. *)

val all_ok : result -> bool

val verdict_name : verdict -> string
(** Stable slug used in JSON: ["reproduced"],
    ["reproduced-with-caveat"], ["validated"], ["informational"]. *)

val caveat : verdict -> string option

val schema_version : int
(** Bumped whenever the JSON layout changes shape; CI diffs rely on
    it. *)

val to_json : profile:string -> result list -> Json.t
(** The [EXPERIMENTS.json] document: schema version, generator,
    profile name, then one object per experiment (checks with
    measured/bound/ratio, tables as string grids, phase breakdowns).
    Prose is deliberately excluded — it is documentation, not data. *)

val markdown : preamble:string -> result list -> string
(** The [EXPERIMENTS.md] document: the hand-written [preamble]
    followed by one section per experiment (claim, constant-1 bound,
    prose, checks table, data tables, phase breakdowns, verdict
    line). A failed check turns the verdict line into
    ["NOT <verdict> — n check(s) failed"]. *)
