module Json = Ds_util.Json

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let num ctx = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> fail "%s: expected a number" ctx

let obj_field ctx name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "%s: missing field %S" ctx name

(* A counter name is exportable when it is label-free or its suffix
   parses as [base{key=value,…}] — exactly the shape [Obs.prom_name]
   rewrites into quoted Prometheus labels. *)
let check_name ctx name =
  match String.index_opt name '{' with
  | None -> ()
  | Some i ->
    let len = String.length name in
    let ok =
      i > 0 && len > i + 2
      && name.[len - 1] = '}'
      && List.for_all
           (fun l ->
             match String.index_opt l '=' with
             | Some j -> j > 0 && j < String.length l - 1
             | None -> false)
           (String.split_on_char ',' (String.sub name (i + 1) (len - i - 2)))
    in
    if not ok then
      fail "%s: counter %S has a malformed label suffix" ctx name

let base_of name =
  match String.index_opt name '{' with
  | None -> name
  | Some i -> String.sub name 0 i

let counters_of ctx j =
  match obj_field ctx "counters" j with
  | Json.Obj fields ->
    List.iter (fun (name, _) -> check_name ctx name) fields;
    fields
  | _ -> fail "%s: counters is not an object" ctx

let check doc =
  try
    (match obj_field "document" "schema" doc with
    | Json.String "obs/1" -> ()
    | Json.String other -> fail "schema %S, want \"obs/1\"" other
    | _ -> fail "schema is not a string");
    let points =
      match obj_field "document" "points" doc with
      | Json.List l -> l
      | _ -> fail "points is not a list"
    in
    let final = obj_field "document" "final" doc in
    let final_counters = counters_of "final" final in
    let prev_elapsed = ref neg_infinity in
    let prev_counters = ref [] in
    List.iteri
      (fun i point ->
        let ctx = Printf.sprintf "points[%d]" i in
        let elapsed = num ctx (obj_field ctx "elapsed_ms" point) in
        if elapsed <= !prev_elapsed then
          fail "%s: elapsed_ms not increasing" ctx;
        prev_elapsed := elapsed;
        ignore (obj_field ctx "derived" point);
        let counters = counters_of ctx point in
        List.iter
          (fun (name, v) ->
            let prev =
              match List.assoc_opt name !prev_counters with
              | Some p -> num ctx p
              | None -> 0.0
            in
            if num ctx v < prev then fail "%s: counter %S decreased" ctx name)
          counters;
        prev_counters := counters)
      points;
    (* The final quiesced snapshot can only be at or past the last
       sampled point. *)
    List.iter
      (fun (name, v) ->
        match List.assoc_opt name !prev_counters with
        | Some last when num "final" v < num "final" last ->
          fail "final.counters.%s below last point" name
        | _ -> ())
      final_counters;
    (* Labeled counters are a breakdown of their base: per base name,
       the labeled variants cannot sum past the plain total. *)
    List.iter
      (fun (name, v) ->
        match String.index_opt name '{' with
        | Some _ -> ()
        | None ->
          let total = num "final" v in
          let labeled =
            List.fold_left
              (fun acc (name', v') ->
                if name' <> name && base_of name' = name then
                  acc +. num "final" v'
                else acc)
              0.0 final_counters
          in
          if labeled > total then
            fail "final.counters: labeled variants of %S sum to %.0f > %.0f"
              name labeled total)
      final_counters;
    Ok (List.length points)
  with Bad msg -> Error msg
