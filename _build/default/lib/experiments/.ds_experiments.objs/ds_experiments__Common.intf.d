lib/experiments/common.mli: Ds_core Ds_graph Ds_util
