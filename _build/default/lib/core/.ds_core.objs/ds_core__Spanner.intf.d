lib/core/spanner.mli: Ds_congest Ds_graph Ds_parallel Levels
