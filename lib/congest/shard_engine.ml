(* MPC-style sharded superstep backend.

   Nodes are partitioned into [nshards] contiguous shards; shard [s]
   owns nodes [s * shard_div, (s+1) * shard_div). A round is four
   phases with barriers between the parallel ones:

     exchange  (parallel, by source shard): pop this round's head
               message off every active outgoing link ring and append
               it — as [link; width; words...] — to the wire batch
               for the destination's shard;
     deliver   (parallel, by destination shard): decode each incoming
               batch straight into the per-node inboxes, canonicalise
               inbox order, schedule receivers;
     compute   (parallel, by shard): run [on_round] for the shard's
               active nodes; sends encode into the shard's scratch
               and append to the sender-owned link rings;
     absorb    (sequential): reduce the per-shard counters into
               {!Metrics} in shard order.

   The per-link FIFO rings enforce the CONGEST wire discipline (one
   message per link per round, FIFO order), and every inbox is
   canonicalised to ascending sender index, so the per-round inbox
   contents — and therefore sketches, metrics, round counts and
   backlog maxima — are byte-identical to {!Engine}'s, for any shard
   count. What changes is the data movement: messages travel in
   [nshards^2] bulk word batches per round instead of per-link ring
   hops, which is the Dinitz–Nazari massively-parallel execution
   model for these protocols. *)

module Graph = Ds_graph.Graph
module Pool = Ds_parallel.Pool
module Ivec = Ds_util.Ivec

type ('state, 'msg) t = {
  graph : Graph.t;
  protocol : ('state, 'msg) Superstep.protocol;
  codec : 'msg Superstep.codec;
  pool : Pool.t;
  nshards : int;
  shard_div : int;
  mutable apis : 'msg Superstep.api array;
  mutable node_states : 'state array;
  offsets : int array; (* length n+1; prefix sums of degrees *)
  link_dst : int array; (* destination node of each directed link *)
  link_rev : int array; (* index of the sender in dst's adjacency *)
  link_dshard : int array; (* destination shard of each link *)
  (* Sender-owned flat word rings, one per directed link. Each entry
     is [width; payload words...]; power-of-two capacity with
     head/words cursors in flat arrays, so a steady-state send writes
     array slots and bumps ints — no allocation. *)
  ring : int array array;
  r_head : int array; (* word read position *)
  r_words : int array; (* live words *)
  r_msgs : int array; (* queued message count (backlog accounting) *)
  out_active : Ivec.t array; (* per source shard: links with queued msgs *)
  enc : Ivec.t array; (* per source shard: encode scratch *)
  (* The wire. [wire.(s * nshards + d)] is the batch moving from
     shard [s] to shard [d] this round; written only by [s] during
     exchange, read and cleared only by [d] during deliver. *)
  wire : Ivec.t array;
  inboxes : 'msg Superstep.Inbox.t array;
  recv_new : Ivec.t array; (* per dst shard: this round's receivers *)
  (* Scheduling, per shard: same contract as [Engine] — last round's
     senders plus this round's receivers run, or every node on a
     probe round. Flags are global byte arrays; each shard only ever
     touches its own nodes' bytes. *)
  mutable run_now : Ivec.t array;
  mutable run_next : Ivec.t array;
  mutable in_now : Bytes.t;
  mutable in_next : Bytes.t;
  (* Per-shard counters, reduced sequentially in shard order. *)
  d_delivered : int array;
  d_words : int array;
  d_maxw : int array;
  s_sent : int array;
  s_backlog : int array;
  (* Tracer-only per-node send counts (empty when untraced). *)
  enqueued : int array;
  senders : Ivec.t array; (* per shard: nodes with enqueued > 0 *)
  mutable exchange_body : int -> int -> int -> unit;
  mutable deliver_body : int -> int -> int -> unit;
  mutable compute_body : int -> int -> int -> unit;
  metrics : Metrics.t;
  tracer : Trace.t option;
  obs : Obs_hooks.t option;
  mutable round : int;
  mutable in_flight : int;
  mutable sent_last_round : int;
}

let graph t = t.graph
let metrics t = t.metrics
let states t = t.node_states
let state t u = t.node_states.(u)
let shards t = t.nshards

(* Append [enc]'s words as one framed entry to link [l]'s ring. *)
let push_ring t l buf =
  let blen = Ivec.length buf in
  let need = t.r_words.(l) + 1 + blen in
  let ring = t.ring.(l) in
  let cap = Array.length ring in
  let ring =
    if need > cap then begin
      let ncap = ref (max 8 (2 * cap)) in
      while !ncap < need do
        ncap := 2 * !ncap
      done;
      let nring = Array.make !ncap 0 in
      let head = t.r_head.(l) in
      for i = 0 to t.r_words.(l) - 1 do
        nring.(i) <- ring.((head + i) land (cap - 1))
      done;
      t.ring.(l) <- nring;
      t.r_head.(l) <- 0;
      nring
    end
    else ring
  in
  let mask = Array.length ring - 1 in
  let base = t.r_head.(l) + t.r_words.(l) in
  ring.(base land mask) <- blen;
  for j = 0 to blen - 1 do
    ring.((base + 1 + j) land mask) <- Ivec.get buf j
  done;
  t.r_words.(l) <- need

(* Pop the head entry of every active link owned by shard [s] onto
   the destination shard's wire batch; compact still-backlogged links
   in place (stable, like the engine's bucket scan). Tail recursion
   over plain ints — a [ref] would allocate every round. *)
let rec exchange_scan t s act idx nact kept =
  if idx >= nact then kept
  else begin
    let l = Ivec.get act idx in
    let ring = t.ring.(l) in
    let mask = Array.length ring - 1 in
    let head = t.r_head.(l) in
    let width = ring.(head) in
    let w = t.wire.((s * t.nshards) + t.link_dshard.(l)) in
    Ivec.push w l;
    Ivec.push w width;
    for j = 0 to width - 1 do
      Ivec.push w ring.((head + 1 + j) land mask)
    done;
    t.r_head.(l) <- (head + 1 + width) land mask;
    t.r_words.(l) <- t.r_words.(l) - 1 - width;
    let msgs = t.r_msgs.(l) - 1 in
    t.r_msgs.(l) <- msgs;
    let kept =
      if msgs > 0 then begin
        Ivec.set act kept l;
        kept + 1
      end
      else kept
    in
    exchange_scan t s act (idx + 1) nact kept
  end

let exchange_shard t s =
  let act = t.out_active.(s) in
  let nact = Ivec.length act in
  if nact > 0 then begin
    let kept = exchange_scan t s act 0 nact 0 in
    Ivec.truncate act kept
  end

(* Decode one wire batch into shard [d]'s inboxes. *)
let rec deliver_wire t d w off len =
  if off < len then begin
    let l = Ivec.get w off in
    let width = Ivec.get w (off + 1) in
    let m = t.codec.decode w (off + 2) in
    let v = t.link_dst.(l) in
    let inbox = t.inboxes.(v) in
    if Superstep.Inbox.length inbox = 0 then Ivec.push t.recv_new.(d) v;
    Superstep.Inbox.push inbox t.link_rev.(l) m;
    if Bytes.get t.in_now v = '\000' then begin
      Bytes.set t.in_now v '\001';
      Ivec.push t.run_now.(d) v
    end;
    t.d_delivered.(d) <- t.d_delivered.(d) + 1;
    let mw = t.protocol.msg_words m in
    t.d_words.(d) <- t.d_words.(d) + mw;
    if mw > t.d_maxw.(d) then t.d_maxw.(d) <- mw;
    deliver_wire t d w (off + 2 + width) len
  end

let deliver_shard t d =
  t.d_delivered.(d) <- 0;
  t.d_words.(d) <- 0;
  t.d_maxw.(d) <- 0;
  for s = 0 to t.nshards - 1 do
    let w = t.wire.((s * t.nshards) + d) in
    deliver_wire t d w 0 (Ivec.length w);
    Ivec.clear w
  done;
  (* Canonical inbox order: ascending sender neighbor index. *)
  let rn = t.recv_new.(d) in
  for i = 0 to Ivec.length rn - 1 do
    let v = Ivec.get rn i in
    Superstep.Inbox.sort_by_from t.inboxes.(v)
      ~degree:(t.offsets.(v + 1) - t.offsets.(v))
  done

let compute_shard t s =
  let rl = t.run_now.(s) in
  for idx = 0 to Ivec.length rl - 1 do
    let u = Ivec.get rl idx in
    let inbox = t.inboxes.(u) in
    t.protocol.on_round t.apis.(u) t.node_states.(u) inbox;
    Superstep.Inbox.clear inbox;
    Bytes.set t.in_now u '\000'
  done;
  Ivec.clear rl

(* Dispatch a phase across the shards — inline when the pool (or the
   partition) is trivial, so single-domain runs pay no handshake. *)
let par_phase t body =
  if t.nshards > 1 && Pool.domains t.pool > 1 then
    ignore (Pool.parallel_chunks t.pool ~n:t.nshards body)
  else body 0 0 t.nshards

let rec count_out_active_from t s acc =
  if s >= t.nshards then acc
  else count_out_active_from t (s + 1) (acc + Ivec.length t.out_active.(s))

let count_out_active t = count_out_active_from t 0 0

let rec count_run_now_from t s acc =
  if s >= t.nshards then acc
  else count_run_now_from t (s + 1) (acc + Ivec.length t.run_now.(s))

let count_run_now t = count_run_now_from t 0 0

(* Sequentially fold the round's sends into the metrics and tracer;
   mirrors the engine's absorb loop, at shard granularity. *)
let absorb_sends t =
  t.sent_last_round <- 0;
  let trc = t.tracer in
  for s = 0 to t.nshards - 1 do
    t.sent_last_round <- t.sent_last_round + t.s_sent.(s);
    t.s_sent.(s) <- 0;
    Metrics.observe_backlog t.metrics t.s_backlog.(s);
    t.s_backlog.(s) <- 0;
    match trc with
    | Some tr ->
      let sv = t.senders.(s) in
      for i = 0 to Ivec.length sv - 1 do
        let u = Ivec.get sv i in
        Trace.count_send tr u t.enqueued.(u);
        t.enqueued.(u) <- 0
      done;
      Ivec.clear sv
    | None -> ()
  done;
  t.in_flight <- t.in_flight + t.sent_last_round

let create ?(pool = Pool.sequential) ?shards ?tracer ?obs ~codec g protocol =
  let n = Graph.n g in
  let nshards =
    match shards with
    | None -> Pool.domains pool
    | Some s when s >= 1 -> s
    | Some _ -> invalid_arg "Shard_engine.create: shards must be >= 1"
  in
  let nshards = min nshards n in
  let shard_div = max 1 ((n + nshards - 1) / nshards) in
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + Graph.degree g u
  done;
  let m2 = offsets.(n) in
  let link_dst = Array.make (max 1 m2) 0
  and link_rev = Array.make (max 1 m2) 0
  and link_dshard = Array.make (max 1 m2) 0 in
  for u = 0 to n - 1 do
    for i = 0 to Graph.degree g u - 1 do
      let v = Graph.neighbor_node g u i in
      link_dst.(offsets.(u) + i) <- v;
      link_rev.(offsets.(u) + i) <- Graph.neighbor_index g v u;
      link_dshard.(offsets.(u) + i) <- v / shard_div
    done
  done;
  let traced = tracer <> None in
  let t =
    {
      graph = g;
      protocol;
      codec;
      pool;
      nshards;
      shard_div;
      apis = [||];
      node_states = [||];
      offsets;
      link_dst;
      link_rev;
      link_dshard;
      ring = Array.make (max 1 m2) [||];
      r_head = Array.make (max 1 m2) 0;
      r_words = Array.make (max 1 m2) 0;
      r_msgs = Array.make (max 1 m2) 0;
      out_active = Array.init nshards (fun _ -> Ivec.create ());
      enc = Array.init nshards (fun _ -> Ivec.create ~capacity:8 ());
      wire = Array.init (nshards * nshards) (fun _ -> Ivec.create ());
      inboxes = Array.init n (fun _ -> Superstep.Inbox.create ());
      recv_new = Array.init nshards (fun _ -> Ivec.create ());
      run_now = Array.init nshards (fun _ -> Ivec.create ());
      run_next = Array.init nshards (fun _ -> Ivec.create ());
      in_now = Bytes.make n '\000';
      in_next = Bytes.make n '\000';
      d_delivered = Array.make nshards 0;
      d_words = Array.make nshards 0;
      d_maxw = Array.make nshards 0;
      s_sent = Array.make nshards 0;
      s_backlog = Array.make nshards 0;
      enqueued = (if traced then Array.make n 0 else [||]);
      senders =
        (if traced then Array.init nshards (fun _ -> Ivec.create ())
         else [||]);
      exchange_body = (fun _ _ _ -> ());
      deliver_body = (fun _ _ _ -> ());
      compute_body = (fun _ _ _ -> ());
      metrics = Metrics.create ();
      tracer;
      obs = Obs_hooks.of_opt obs;
      round = 0;
      in_flight = 0;
      sent_last_round = 0;
    }
  in
  t.exchange_body <-
    (fun _ lo hi ->
      for s = lo to hi - 1 do
        exchange_shard t s
      done);
  t.deliver_body <-
    (fun _ lo hi ->
      for d = lo to hi - 1 do
        deliver_shard t d
      done);
  t.compute_body <-
    (fun _ lo hi ->
      for s = lo to hi - 1 do
        compute_shard t s
      done);
  let make_api u =
    let deg = offsets.(u + 1) - offsets.(u) in
    let s = u / shard_div in
    let send i m =
      if protocol.msg_words m > protocol.max_msg_words then
        invalid_arg
          (Printf.sprintf "Shard_engine(%s): message exceeds %d words"
             protocol.name protocol.max_msg_words);
      let l = t.offsets.(u) + i in
      let buf = t.enc.(s) in
      Ivec.clear buf;
      t.codec.encode buf m;
      push_ring t l buf;
      let msgs = t.r_msgs.(l) + 1 in
      t.r_msgs.(l) <- msgs;
      if msgs = 1 then Ivec.push t.out_active.(s) l;
      t.s_sent.(s) <- t.s_sent.(s) + 1;
      if msgs > t.s_backlog.(s) then t.s_backlog.(s) <- msgs;
      (match t.tracer with
      | Some _ ->
        if t.enqueued.(u) = 0 then Ivec.push t.senders.(s) u;
        t.enqueued.(u) <- t.enqueued.(u) + 1
      | None -> ());
      if Bytes.get t.in_next u = '\000' then begin
        Bytes.set t.in_next u '\001';
        Ivec.push t.run_next.(s) u
      end
    in
    {
      Superstep.id = u;
      degree = deg;
      neighbor_id = (fun i -> Graph.neighbor_node g u i);
      neighbor_weight = (fun i -> Graph.neighbor_weight_at g u i);
      send;
      broadcast =
        (fun m ->
          for i = 0 to deg - 1 do
            send i m
          done);
      round = (fun () -> t.round);
    }
  in
  (match tracer with
  | Some tr -> Trace.attach tr ~n ~domains:(Pool.domains pool)
  | None -> ());
  t.apis <- Array.init n make_api;
  let states = Array.init n (fun u -> protocol.init t.apis.(u)) in
  t.node_states <- states;
  (* Absorb init-phase sends and promote the senders to round 1's run
     list (they were scheduled into [run_next] by [send]). *)
  absorb_sends t;
  let tmp = t.run_now in
  t.run_now <- t.run_next;
  t.run_next <- tmp;
  let tmpf = t.in_now in
  t.in_now <- t.in_next;
  t.in_next <- tmpf;
  t

let schedule_all t =
  for u = 0 to Graph.n t.graph - 1 do
    if Bytes.get t.in_now u = '\000' then begin
      Bytes.set t.in_now u '\001';
      Ivec.push t.run_now.(u / t.shard_div) u
    end
  done

let step t =
  (* Probe round: with nothing in flight nobody can be woken by a
     message, so run every node once (see Engine.step). *)
  if t.in_flight = 0 then schedule_all t;
  let trc = t.tracer in
  let active_links =
    match trc with Some _ -> count_out_active t | None -> 0
  in
  let pre_msgs =
    match trc with Some _ -> Metrics.messages t.metrics | None -> 0
  in
  let pre_words =
    match trc with Some _ -> Metrics.words t.metrics | None -> 0
  in
  let t0 = match trc with Some _ -> Trace.now_ns () | None -> 0 in
  if t.in_flight > 0 then begin
    par_phase t t.exchange_body;
    par_phase t t.deliver_body;
    for d = 0 to t.nshards - 1 do
      Metrics.count_delivered t.metrics ~messages:t.d_delivered.(d)
        ~words:t.d_words.(d) ~max_msg_words:t.d_maxw.(d);
      (match t.obs with
      | Some o ->
        Ds_obs.Obs.add o.Obs_hooks.deliveries ~shard:d t.d_delivered.(d);
        Ds_obs.Obs.add o.Obs_hooks.words ~shard:d t.d_words.(d)
      | None -> ());
      t.in_flight <- t.in_flight - t.d_delivered.(d);
      (match trc with
      | Some tr ->
        let rn = t.recv_new.(d) in
        for i = 0 to Ivec.length rn - 1 do
          let v = Ivec.get rn i in
          Trace.count_recv tr v (Superstep.Inbox.length t.inboxes.(v))
        done
      | None -> ());
      Ivec.clear t.recv_new.(d)
    done
  end;
  let t1 = match trc with Some _ -> Trace.now_ns () | None -> 0 in
  t.round <- t.round + 1;
  Metrics.tick_round t.metrics;
  let ran =
    if trc <> None || t.obs <> None then count_run_now t else 0
  in
  par_phase t t.compute_body;
  let round_backlog =
    match trc with
    | Some _ -> Array.fold_left max 0 t.s_backlog
    | None -> 0
  in
  absorb_sends t;
  let tmp = t.run_now in
  t.run_now <- t.run_next;
  t.run_next <- tmp;
  let tmpf = t.in_now in
  t.in_now <- t.in_next;
  t.in_next <- tmpf;
  (* Obs end-of-round block: mirrors Engine.step — no clock reads,
     no allocation. *)
  (match t.obs with
  | None -> ()
  | Some o ->
    Ds_obs.Obs.incr o.Obs_hooks.rounds ~shard:0;
    Ds_obs.Obs.set o.Obs_hooks.backlog ~shard:0
      (Metrics.max_link_backlog t.metrics);
    Ds_obs.Obs.set o.Obs_hooks.busy ~shard:0 (Pool.chunks_for t.pool ran));
  match trc with
  | None -> ()
  | Some tr ->
    let t2 = Trace.now_ns () in
    Trace.record_round tr
      {
        Trace.round = t.round;
        active_nodes = ran;
        active_links;
        delivered = Metrics.messages t.metrics - pre_msgs;
        words = Metrics.words t.metrics - pre_words;
        in_flight = t.in_flight;
        link_backlog = round_backlog;
        delivery_ns = t1 - t0;
        compute_ns = t2 - t1;
        busy_domains = Pool.chunks_for t.pool ran;
      }

let quiescent t = t.in_flight = 0
let all_halted t = Array.for_all t.protocol.halted t.node_states

let run ?(max_rounds = 10_000_000) t =
  let rec go () =
    if all_halted t && t.in_flight = 0 then Superstep.All_halted
    else if t.round >= max_rounds then Superstep.Round_limit
    else begin
      let before_flight = t.in_flight in
      step t;
      if before_flight = 0 && t.in_flight = 0 then begin
        (* Quiescent probe round: no work was done, so don't charge
           it (same bookkeeping as Engine.run). *)
        Metrics.untick_round t.metrics;
        (match t.tracer with
        | Some tr -> Trace.drop_last tr
        | None -> ());
        (match t.obs with
        | Some o -> Ds_obs.Obs.add o.Obs_hooks.rounds ~shard:0 (-1)
        | None -> ());
        t.round <- t.round - 1;
        if all_halted t then Superstep.All_halted else Superstep.Quiescent
      end
      else go ()
    end
  in
  go ()

(* Backbone footprint in machine words; see Engine.mem_words. *)
let mem_words t =
  let words = ref 0 in
  let add n = words := !words + n in
  add (Array.length t.offsets);
  add (Array.length t.link_dst);
  add (Array.length t.link_rev);
  add (Array.length t.link_dshard);
  add (Array.length t.r_head);
  add (Array.length t.r_words);
  add (Array.length t.r_msgs);
  Array.iter (fun ring -> add (Array.length ring)) t.ring;
  Array.iter (fun v -> add (Ivec.capacity v)) t.out_active;
  Array.iter (fun v -> add (Ivec.capacity v)) t.enc;
  Array.iter (fun v -> add (Ivec.capacity v)) t.wire;
  Array.iter (fun b -> add (Superstep.Inbox.mem_words b)) t.inboxes;
  Array.iter (fun v -> add (Ivec.capacity v)) t.recv_new;
  Array.iter (fun v -> add (Ivec.capacity v)) t.run_now;
  Array.iter (fun v -> add (Ivec.capacity v)) t.run_next;
  add (Array.length t.d_delivered);
  add (Array.length t.d_words);
  add (Array.length t.d_maxw);
  add (Array.length t.s_sent);
  add (Array.length t.s_backlog);
  add (Array.length t.enqueued);
  Array.iter (fun v -> add (Ivec.capacity v)) t.senders;
  add (2 * ((Bytes.length t.in_now + 7) / 8));
  !words
