(** Rank-ordered bottom-k all-distance sketches (ADS), distributed.

    Every node draws a rank — a stateless SplitMix64 avalanche of
    [(seed, id)], ties broken by id — and the sketch of [u] is the set
    of nodes [v] such that fewer than [k] nodes with lex-lower rank
    lie at distance [<= d(u,v)] from [u] (Cohen's bottom-k ADS). Two
    sketches answer a query via the common-entry minimum
    [min d(u,w) + d(w,v)]; the globally minimum-rank node of a
    component is in every member's sketch, so connected pairs always
    get a finite upper bound.

    The protocol is a k-pruned Bellman–Ford: every node starts by
    announcing itself, and a received [(source, dist)] candidate is
    stored and forwarded only if fewer than [k] already-known sources
    dominate it (known at distance [<= dist] with lex-lower rank).
    Entries are never evicted — later, shorter arrivals may
    retroactively demote an entry, so membership is decided by a final
    rank-ordered filter at quiescence. That permissiveness is what
    makes the result exact: along any shortest path every prefix
    candidate passes the admission test, so true ADS members end with
    exact distances, and the final filter then reproduces the
    sequential rank-ordered-Dijkstra sketch verbatim ({!reference},
    pinned by test). *)

val rank : seed:int -> int -> int
(** [rank ~seed v] — the node's non-negative rank word. *)

type result = {
  sketch : Sketch.t;  (** family {!Family.Bottomk} *)
  metrics : Ds_congest.Metrics.t;  (** one phase, ["bottomk"] *)
  mem_words : int;  (** plane backbone footprint *)
  max_pending : int;  (** deepest per-node rebroadcast queue *)
}

val run :
  ?backend:Ds_congest.Plane.backend ->
  ?pool:Ds_parallel.Pool.t ->
  ?shards:int ->
  ?tracer:Ds_congest.Trace.t ->
  ?obs:Ds_obs.Obs.t ->
  Ds_graph.Graph.t ->
  k:int ->
  seed:int ->
  result
(** Build the sketches. Deterministic in [(g, k, seed)]: byte-identical
    sketches and metrics on either backend at any domain/shard count
    (the canonical inbox order pins the interleavings). *)

val reference : Ds_graph.Graph.t -> k:int -> seed:int -> (int * int) array array
(** Sequential specification: per node, Dijkstra distances, then admit
    nodes in ascending [(rank, id)] order iff fewer than [k] already
    admitted sit at distance [<=] the candidate's. Returns per-node
    [(node, dist)] arrays sorted by node id — exactly the entry arrays
    of [run]'s sketch. *)
