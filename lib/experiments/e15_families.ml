(** E15 — the sketch-family head-to-head: TZ / slack / CDG vs the
    platform's landmark and bottom-k families.

    Not a single-theorem reproduction but the platform experiment
    ROADMAP item 4 asks for: every family built by the same engine on
    the same topology sweep, evaluated on one shared query-pair
    stream, with build rounds, message words, per-node sketch size and
    the stretch distribution side by side. The hard guarantees that do
    carry over are checked: landmark and bottom-k estimates are upper
    bounds (zero underestimates anywhere), and TZ stays within its
    2k-1 worst case. Slack / CDG rows are context — their guarantees
    only cover ε-far pairs, and this table deliberately queries the
    unrestricted uniform stream. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Stats = Ds_util.Stats
module Graph = Ds_graph.Graph
module Apsp = Ds_graph.Apsp
module Dist = Ds_graph.Dist
module Metrics = Ds_congest.Metrics
module Slack = Ds_core.Slack
module Cdg = Ds_core.Cdg
module Eval = Ds_core.Eval
module Sketch = Ds_sketch.Sketch
module Family = Ds_sketch.Family
module Build = Ds_sketch.Build
module Workload = Ds_oracle.Workload

type params = { seed : int; n : int; k : int; eps : float; qpairs : int }

let default = { seed = 15; n = 300; k = 3; eps = 0.25; qpairs = 4000 }
let quick = { seed = 15; n = 100; k = 2; eps = 0.25; qpairs = 1000 }

let id = "e15"
let title = "sketch-family head-to-head: tz / slack / cdg / landmark / bottom-k"
let claim_id = "platform (ROADMAP item 4)"

let claim =
  "one engine builds five sketch families on the same topology sweep; \
   landmark and bottom-k estimates never underestimate (they are minima \
   over exact two-leg paths), and TZ keeps its 2k-1 worst case, while \
   build cost and sketch size trade off per family"

let bound_expr =
  "0 underestimates for landmark / bottom-k on every family; `2k-1` max \
   stretch for tz"

let prose =
  "The five families split exactly as their constructions predict. TZ \
   is the only one with a universal stretch bound and it holds on every \
   topology. Landmark and bottom-k are upper-bound estimators: zero \
   violations everywhere, with accuracy bought by sketch words — \
   bottom-k's k-pruned ADS stays near TZ's size, while the landmark \
   family's k·⌊log2 n⌋ Bellman–Ford waves cost the most rounds and \
   words but give the tightest non-TZ estimates on most sweeps. The \
   unreach column counts pairs where a sketch holds no common witness \
   (impossible for full TZ sketches on a connected graph, expected \
   occasionally for the sampled families). Slack and CDG rows are \
   evaluated outside their contract on purpose — uniform pairs, not \
   ε-far ones — so their worst-case stretch here is not a bound \
   violation."

(* One built scheme, normalized for the table. *)
type scheme_run = {
  rounds : int;
  words : int;
  mean_words : float;
  report : Eval.report;
}

let run ?pool { seed; n; k; eps; qpairs } =
  let cdg_k = 2 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E15: family head-to-head (n=%d, k=%d, eps=%g, %d uniform pairs)" n
           k eps qpairs)
      ~headers:
        [
          "family"; "scheme"; "rounds"; "kwords"; "w/node";
          "max"; "avg"; "p99"; "viol"; "unreach";
        ]
  in
  let worst_tz = ref 0.0 in
  let tz_viol = ref 0 in
  let landmark_viol = ref 0 in
  let bottomk_viol = ref 0 in
  let phases = ref [] in
  List.iter
    (fun (fname, family) ->
      let w = Common.make_workload ?pool ~seed ~family ~n () in
      let gn = Graph.n w.Common.graph in
      (* One pair stream per topology, shared verbatim by all five
         schemes — the in-process analogue of the CLI's --pairs-file. *)
      let triples =
        Workload.pairs ~rng:(Rng.create (seed + 101)) Workload.Uniform ~n:gn
          ~count:qpairs
        |> Array.to_list
        |> List.filter_map (fun (u, v) ->
               let d = Apsp.dist w.Common.apsp u v in
               if Dist.is_finite d then Some (u, v, d) else None)
        |> Array.of_list
      in
      let sketch_scheme sf =
        let r = Build.run ?pool ~family:sf w.Common.graph ~k ~seed in
        let sizes =
          Eval.size_summary
            (Sketch.node_size_words r.Build.sketch)
            (Array.init gn Fun.id)
        in
        if sf = Family.Tz && !phases = [] then
          phases :=
            [
              ( Printf.sprintf "tz build (%s, n=%d, k=%d)" fname gn k,
                Common.report_phases r.Build.metrics );
            ];
        {
          rounds = Metrics.rounds r.Build.metrics;
          words = Metrics.words r.Build.metrics;
          mean_words = sizes.Stats.mean;
          report = Eval.on_pairs ~query:(Sketch.estimate r.Build.sketch) triples;
        }
      in
      let slack_scheme () =
        let r =
          Slack.build_distributed ?pool ~rng:(Rng.create (seed + 13))
            w.Common.graph ~eps
        in
        let sizes = Eval.size_summary Slack.size_words r.Slack.sketches in
        {
          rounds = Metrics.rounds r.Slack.metrics;
          words = Metrics.words r.Slack.metrics;
          mean_words = sizes.Stats.mean;
          report =
            Eval.on_pairs
              ~query:(fun u v ->
                Slack.query r.Slack.sketches.(u) r.Slack.sketches.(v))
              triples;
        }
      in
      let cdg_scheme () =
        let r =
          Cdg.build_distributed ?pool ~rng:(Rng.create (seed + 17))
            w.Common.graph ~eps ~k:cdg_k
        in
        let sizes = Eval.size_summary Cdg.size_words r.Cdg.sketches in
        {
          rounds = Metrics.rounds r.Cdg.metrics;
          words = Metrics.words r.Cdg.metrics;
          mean_words = sizes.Stats.mean;
          report =
            Eval.on_pairs
              ~query:(fun u v ->
                Cdg.query r.Cdg.sketches.(u) r.Cdg.sketches.(v))
              triples;
        }
      in
      let schemes =
        [
          ("tz", sketch_scheme Family.Tz);
          (Printf.sprintf "slack(%g)" eps, slack_scheme ());
          (Printf.sprintf "cdg(%g,%d)" eps cdg_k, cdg_scheme ());
          ("landmark", sketch_scheme Family.Landmark);
          ("bottomk", sketch_scheme Family.Bottomk);
        ]
      in
      List.iter
        (fun (sname, s) ->
          (match sname with
          | "tz" ->
            worst_tz := max !worst_tz s.report.Eval.max_stretch;
            tz_viol := !tz_viol + s.report.Eval.violations
          | "landmark" ->
            landmark_viol := !landmark_viol + s.report.Eval.violations
          | "bottomk" ->
            bottomk_viol := !bottomk_viol + s.report.Eval.violations
          | _ -> ());
          Table.add_row t
            ([
               fname;
               sname;
               Table.cell_int s.rounds;
               Table.cell_int (s.words / 1000);
               Table.cell_float s.mean_words;
             ]
            @ Common.stretch_cells s.report
            @ [ Table.cell_int s.report.Eval.unreachable ]))
        schemes)
    (Common.standard_families ~n);
  let bound = float_of_int ((2 * k) - 1) in
  let checks =
    [
      Report.check ~bound
        ~ok:(!tz_viol = 0 && !worst_tz <= bound)
        "tz max stretch, all families (bound 2k-1, zero violations)"
        !worst_tz;
      Report.check ~bound:0.0 ~ok:(!landmark_viol = 0)
        "landmark underestimates, all families (upper-bound estimator)"
        (float_of_int !landmark_viol);
      Report.check ~bound:0.0 ~ok:(!bottomk_viol = 0)
        "bottom-k underestimates, all families (upper-bound estimator)"
        (float_of_int !bottomk_viol);
    ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t ];
    phases = !phases;
    round_profiles = [];
    verdict = Report.Reproduced;
  }
