(** Synchronous CONGEST-model simulator.

    Semantics, per the paper's Section 2.2: computation proceeds in
    rounds; in each round every node may send one small message along
    each incident edge; messages sent in round [r] are available to the
    receiver in round [r+1].

    Protocols call {!api}[.send] freely; the engine serialises the
    sends through per-link FIFO queues so that the wire discipline
    (one message per edge per direction per round) always holds, and
    charges every delivered message to {!Metrics}.

    The engine is activity-driven: per-round cost is proportional to
    the number of links carrying messages and nodes doing work, not to
    the size of the graph (see DESIGN.md, "Engine internals"). A
    node's [on_round] is invoked in round [r] iff at least one of:
    - a message is delivered to it in round [r];
    - it sent at least one message in round [r - 1] (so protocols that
      drain an internal work queue, sending as they go, keep running);
    - nothing at all is in flight (a probe round: every node runs, so
      protocols whose nodes start silently still bootstrap, and
      quiescence detection matches the original run-everyone engine).
    Protocols driven purely by an internal clock — doing work in
    rounds where they neither received nor just sent — are not
    supported; none of the paper's protocols are. *)

type 'msg api = 'msg Superstep.api = {
  id : int;  (** this node's ID *)
  degree : int;
  neighbor_id : int -> int;  (** neighbor index -> node ID *)
  neighbor_weight : int -> int;  (** neighbor index -> edge weight *)
  send : int -> 'msg -> unit;  (** enqueue a message to a neighbor index *)
  broadcast : 'msg -> unit;  (** enqueue to every neighbor *)
  round : unit -> int;  (** current round number *)
}

module Inbox = Superstep.Inbox
(** Per-round inbox, delivered in the canonical order (ascending
    sender neighbor index) — see {!Superstep.Inbox}. *)

type ('state, 'msg) protocol = ('state, 'msg) Superstep.protocol = {
  name : string;
  init : 'msg api -> 'state;
      (** Round-0 computation; may send. Called once per node. *)
  on_round : 'msg api -> 'state -> 'msg Inbox.t -> unit;
      (** Per-round computation; see the scheduling contract above. *)
  halted : 'state -> bool;
      (** True once the node has locally terminated. *)
  msg_words : 'msg -> int;  (** size accounting, in words *)
  max_msg_words : int;
      (** CONGEST bandwidth cap; sends above it raise. *)
}

type ('state, 'msg) t

type jitter = { rng : Ds_util.Rng.t; max_delay : int }
(** Asynchronous-link model: each message is held on its link for an
    extra uniform 0..max_delay rounds (links stay FIFO — no
    reordering). This is the bounded-asynchrony extension the paper's
    conclusion calls for; delay-tolerant protocols ({!Setup},
    {!Super_bf}, the phase-tagged [Ds_core.Tz_echo]) stay correct,
    round counts become meaningless as a complexity measure. The [rng]
    only seeds a per-message coordinate hash, so a jittered run is
    reproducible under any pool size. *)

val create :
  ?pool:Ds_parallel.Pool.t -> ?jitter:jitter -> ?tracer:Trace.t ->
  ?obs:Ds_obs.Obs.t ->
  Ds_graph.Graph.t -> ('state, 'msg) protocol -> ('state, 'msg) t
(** The engine borrows [pool] (default {!Ds_parallel.Pool.sequential});
    the caller owns its lifecycle and may share it across engines.
    [tracer] turns on per-round telemetry (see {!Trace}); one tracer
    may be shared by consecutive engines to trace a composed run.
    Without it the engine takes no timestamps and records nothing.
    [obs] registers the [engine.*] metrics (rounds, deliveries,
    words, peak backlog, busy domains — see {!Obs_hooks}) and updates
    them as the run progresses; like the tracer it is zero-cost when
    absent and adds no clock reads or allocation when present, so
    instrumented rounds stay zero-alloc. *)

val graph : ('state, 'msg) t -> Ds_graph.Graph.t
val metrics : ('state, 'msg) t -> Metrics.t
val states : ('state, 'msg) t -> 'state array
val state : ('state, 'msg) t -> int -> 'state

val step : ('state, 'msg) t -> unit
(** Execute one synchronous round (delivery then computation). *)

type stop_reason = Superstep.stop_reason =
  | Quiescent
  | All_halted
  | Round_limit

val run : ?max_rounds:int -> ('state, 'msg) t -> stop_reason
(** Run rounds until no message is in flight and none was sent
    (quiescence), every node reports [halted], or the round limit is
    hit (default 10 million — a bug guard, not a tuning knob). *)

val quiescent : ('state, 'msg) t -> bool
(** No queued or in-flight messages. *)

val par_threshold : int
(** Active-link count above which delivery is fanned over the pool
    (below it the bucket loop runs inline on the caller — quiet rounds
    skip the pool handshake). Exposed so tests can build workloads
    that provably exercise the parallel delivery path; results are
    identical on either side of the gate. *)

val mem_words : ('state, 'msg) t -> int
(** Backbone footprint in machine words: link tables, ring
    capacities, inboxes, worklists and membership flags — everything
    the plane owns, at its current high-water capacity. Protocol
    state is not counted. *)
