let run g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors g u (fun v _ ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.push v q
        end)
  done;
  (dist, parent)

let hops g ~src = fst (run g ~src)
let tree g ~src = snd (run g ~src)

let eccentricity g ~src =
  let dist = hops g ~src in
  Array.fold_left
    (fun acc d -> if d < max_int && d > acc then d else acc)
    0 dist
