module Graph = Ds_graph.Graph
module Pool = Ds_parallel.Pool
module Rng = Ds_util.Rng
module Ivec = Ds_util.Ivec

type 'msg api = {
  id : int;
  degree : int;
  neighbor_id : int -> int;
  neighbor_weight : int -> int;
  send : int -> 'msg -> unit;
  broadcast : 'msg -> unit;
  round : unit -> int;
}

(* Reusable per-node inbox: two parallel growable arrays, cleared (not
   reallocated) after each round, so steady-state delivery allocates
   nothing for the backbone. Cleared slots keep their last message
   until overwritten; messages are small words in every protocol here,
   so the retention is harmless. *)
module Inbox = struct
  type 'msg t = {
    mutable froms : int array;
    mutable msgs : 'msg array; (* only the first [len] slots are valid *)
    mutable len : int;
  }

  let create () = { froms = [||]; msgs = [||]; len = 0 }
  let length b = b.len
  let is_empty b = b.len = 0

  let from b i =
    if i < 0 || i >= b.len then invalid_arg "Inbox.from";
    b.froms.(i)

  let msg b i =
    if i < 0 || i >= b.len then invalid_arg "Inbox.msg";
    b.msgs.(i)

  let push b j m =
    if b.len = Array.length b.msgs then begin
      let cap = max 4 (2 * b.len) in
      let froms = Array.make cap 0 and msgs = Array.make cap m in
      Array.blit b.froms 0 froms 0 b.len;
      Array.blit b.msgs 0 msgs 0 b.len;
      b.froms <- froms;
      b.msgs <- msgs
    end;
    b.froms.(b.len) <- j;
    b.msgs.(b.len) <- m;
    b.len <- b.len + 1

  let clear b = b.len <- 0

  let iter f b =
    for i = 0 to b.len - 1 do
      f b.froms.(i) b.msgs.(i)
    done

  let fold f acc b =
    let acc = ref acc in
    for i = 0 to b.len - 1 do
      acc := f !acc b.froms.(i) b.msgs.(i)
    done;
    !acc

  let to_list b = List.init b.len (fun i -> (b.froms.(i), b.msgs.(i)))
end

type ('state, 'msg) protocol = {
  name : string;
  init : 'msg api -> 'state;
  on_round : 'msg api -> 'state -> 'msg Inbox.t -> unit;
  halted : 'state -> bool;
  msg_words : 'msg -> int;
  max_msg_words : int;
}

type jitter = { rng : Rng.t; max_delay : int }

(* A queued message and the earliest round at which its link may
   deliver it (links are FIFO, so a delayed head blocks the rest). *)
type 'msg in_transit = { msg : 'msg; ready_at : int }

(* Links are flattened: directed link [offsets.(u) + i] is u's i-th
   outgoing edge. All per-link state lives in flat arrays indexed by
   that id, so the delivery loop touches only the worklist. *)
type ('state, 'msg) t = {
  graph : Graph.t;
  protocol : ('state, 'msg) protocol;
  pool : Pool.t;
  jitter : jitter option;
  jitter_base : int;
  mutable apis : 'msg api array;
  mutable node_states : 'state array;
  offsets : int array; (* length n+1; prefix sums of out-degrees *)
  link_q : 'msg in_transit Queue.t array;
  link_dst : int array; (* destination node of each link *)
  link_rev : int array; (* index of the sender in dst's adjacency *)
  link_pushes : int array; (* messages ever pushed; jitter hash input *)
  inboxes : 'msg Inbox.t array;
  (* Activity tracking. [active] holds exactly the links with nonempty
     queues; delivery iterates it and compacts drained links away, so a
     round never scans the full edge set. Per-node scratch below is
     written only by its owner node, which keeps the computation phase
     race-free under any pool. *)
  active : Ivec.t;
  activated : Ivec.t array; (* per node: own links that went 0 -> 1 *)
  enqueued : int array; (* per node: messages pushed this round *)
  push_backlog : int array; (* per node: max own-queue length at push *)
  (* Scheduling. [run_now] is the set of nodes stepped this round:
     last round's senders plus this round's receivers (or every node
     on a probe round, when nothing is in flight). [run_next]
     accumulates this round's senders. The [in_*] bytes are
     membership flags; lists and flags swap wholesale each round. *)
  mutable run_now : Ivec.t;
  mutable run_next : Ivec.t;
  mutable in_now : Bytes.t;
  mutable in_next : Bytes.t;
  metrics : Metrics.t;
  tracer : Trace.t option;
  mutable round : int;
  mutable in_flight : int; (* total queued messages *)
  mutable sent_last_round : int;
}

let graph t = t.graph
let metrics t = t.metrics
let states t = t.node_states
let state t u = t.node_states.(u)

(* Bounded-asynchrony delay for the [seq]-th message on link [l]:
   a pure hash of the run's base seed and the message's coordinates.
   Unlike drawing from a shared RNG stream inside [send] (the previous
   scheme), the delay does not depend on the order nodes happen to
   execute in, so jittered runs are reproducible under any pool. *)
let link_delay t l seq =
  match t.jitter with
  | None -> 0
  | Some { max_delay; _ } ->
    if max_delay = 0 then 0
    else Rng.mix (t.jitter_base lxor Rng.mix ((l * 2654435761) + seq))
         mod (max_delay + 1)

let schedule_now t u =
  if Bytes.get t.in_now u = '\000' then begin
    Bytes.set t.in_now u '\001';
    Ivec.push t.run_now u
  end

let create ?(pool = Pool.sequential) ?jitter ?tracer g protocol =
  let n = Graph.n g in
  let nbrs = Array.init n (fun u -> Graph.neighbors g u) in
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + Array.length nbrs.(u)
  done;
  let m2 = offsets.(n) in
  let link_dst = Array.make (max 1 m2) 0 and link_rev = Array.make (max 1 m2) 0 in
  for u = 0 to n - 1 do
    Array.iteri
      (fun i (v, _) ->
        link_dst.(offsets.(u) + i) <- v;
        link_rev.(offsets.(u) + i) <- Graph.neighbor_index g v u)
      nbrs.(u)
  done;
  let t =
    {
      graph = g;
      protocol;
      pool;
      jitter;
      jitter_base =
        (match jitter with None -> 0 | Some { rng; _ } -> Rng.int rng max_int);
      apis = [||];
      node_states = [||];
      offsets;
      link_q = Array.init (max 1 m2) (fun _ -> Queue.create ());
      link_dst;
      link_rev;
      link_pushes = Array.make (max 1 m2) 0;
      inboxes = Array.init n (fun _ -> Inbox.create ());
      active = Ivec.create ();
      activated = Array.init n (fun _ -> Ivec.create ~capacity:4 ());
      enqueued = Array.make n 0;
      push_backlog = Array.make n 0;
      run_now = Ivec.create ();
      run_next = Ivec.create ();
      in_now = Bytes.make n '\000';
      in_next = Bytes.make n '\000';
      metrics = Metrics.create ();
      tracer;
      round = 0;
      in_flight = 0;
      sent_last_round = 0;
    }
  in
  let make_api u =
    let deg = Array.length nbrs.(u) in
    let send i m =
      if protocol.msg_words m > protocol.max_msg_words then
        invalid_arg
          (Printf.sprintf "Engine(%s): message exceeds %d words" protocol.name
             protocol.max_msg_words);
      let l = t.offsets.(u) + i in
      let seq = t.link_pushes.(l) in
      t.link_pushes.(l) <- seq + 1;
      let q = t.link_q.(l) in
      Queue.push { msg = m; ready_at = t.round + 1 + link_delay t l seq } q;
      let len = Queue.length q in
      if len = 1 then Ivec.push t.activated.(u) l;
      if len > t.push_backlog.(u) then t.push_backlog.(u) <- len;
      t.enqueued.(u) <- t.enqueued.(u) + 1
    in
    {
      id = u;
      degree = deg;
      neighbor_id = (fun i -> fst nbrs.(u).(i));
      neighbor_weight = (fun i -> snd nbrs.(u).(i));
      send;
      broadcast =
        (fun m ->
          for i = 0 to deg - 1 do
            send i m
          done);
      round = (fun () -> t.round);
    }
  in
  (match tracer with
  | Some tr -> Trace.attach tr ~n ~domains:(Pool.domains pool)
  | None -> ());
  t.apis <- Array.init n make_api;
  t.node_states <- Array.init n (fun u -> protocol.init t.apis.(u));
  (* Absorb init-phase sends: count them, activate their links, and
     schedule the senders for round 1. *)
  for u = 0 to n - 1 do
    if t.enqueued.(u) > 0 then begin
      (match tracer with
      | Some tr -> Trace.count_send tr u t.enqueued.(u)
      | None -> ());
      t.in_flight <- t.in_flight + t.enqueued.(u);
      t.enqueued.(u) <- 0;
      Metrics.observe_backlog t.metrics t.push_backlog.(u);
      t.push_backlog.(u) <- 0;
      Ivec.iter (fun l -> Ivec.push t.active l) t.activated.(u);
      Ivec.clear t.activated.(u);
      schedule_now t u
    end
  done;
  t

(* Delivery happens at the start of round (t.round + 1): a head message
   is released once that round reaches its ready_at. Only the active
   worklist is visited; drained links are compacted away in place. *)
let deliver t =
  let now = t.round + 1 in
  let delivered = ref 0 in
  let kept = ref 0 in
  for idx = 0 to Ivec.length t.active - 1 do
    let l = Ivec.get t.active idx in
    let q = t.link_q.(l) in
    (match Queue.peek_opt q with
    | Some { msg; ready_at } when ready_at <= now ->
      ignore (Queue.pop q);
      incr delivered;
      let v = t.link_dst.(l) in
      schedule_now t v;
      Inbox.push t.inboxes.(v) t.link_rev.(l) msg;
      Metrics.count_message t.metrics ~words:(t.protocol.msg_words msg)
    | Some _ | None -> ());
    if not (Queue.is_empty q) then begin
      Ivec.set t.active !kept l;
      incr kept
    end
  done;
  Ivec.truncate t.active !kept;
  t.in_flight <- t.in_flight - !delivered

let step t =
  (* With nothing in flight nobody can be woken by a message, so run
     every node once: this is the probe round [run] uses to detect
     quiescence, and it also lets protocols whose nodes start without
     sending (e.g. Multi_bf sources) bootstrap themselves. [run_now]
     is necessarily empty here — last round's senders imply in-flight
     messages. *)
  if t.in_flight = 0 then
    for u = 0 to Graph.n t.graph - 1 do
      schedule_now t u
    done;
  (* Telemetry pre-reads. All of it is gated on [t.tracer], an
     immutable field set at creation: an untraced engine pays only
     these branches — no clock reads, no allocation. *)
  let trc = t.tracer in
  let active_links =
    match trc with Some _ -> Ivec.length t.active | None -> 0
  in
  let pre_msgs =
    match trc with Some _ -> Metrics.messages t.metrics | None -> 0
  in
  let pre_words =
    match trc with Some _ -> Metrics.words t.metrics | None -> 0
  in
  let t0 = match trc with Some _ -> Trace.now_ns () | None -> 0 in
  deliver t;
  let t1 = match trc with Some _ -> Trace.now_ns () | None -> 0 in
  t.round <- t.round + 1;
  Metrics.tick_round t.metrics;
  let rl = t.run_now in
  (match trc with
  | Some tr ->
    (* Per-node receive counts, read off the inboxes before the
       computation phase clears them. *)
    Ivec.iter
      (fun u ->
        let len = Inbox.length t.inboxes.(u) in
        if len > 0 then Trace.count_recv tr u len)
      rl
  | None -> ());
  Pool.parallel_for t.pool ~lo:0 ~hi:(Ivec.length rl) (fun idx ->
      let u = Ivec.get rl idx in
      let inbox = t.inboxes.(u) in
      t.protocol.on_round t.apis.(u) t.node_states.(u) inbox;
      Inbox.clear inbox);
  let ran = Ivec.length rl in
  (* Sequentially absorb the round's sends from the per-node scratch:
     O(nodes that ran + links activated), independent of pool size and
     of node execution order, so parallel runs stay deterministic. *)
  let total = ref 0 in
  let round_backlog = ref 0 in
  Ivec.iter
    (fun u ->
      Bytes.set t.in_now u '\000';
      if t.enqueued.(u) > 0 then begin
        total := !total + t.enqueued.(u);
        (match trc with
        | Some tr ->
          Trace.count_send tr u t.enqueued.(u);
          if t.push_backlog.(u) > !round_backlog then
            round_backlog := t.push_backlog.(u)
        | None -> ());
        t.enqueued.(u) <- 0;
        Metrics.observe_backlog t.metrics t.push_backlog.(u);
        t.push_backlog.(u) <- 0;
        Ivec.iter (fun l -> Ivec.push t.active l) t.activated.(u);
        Ivec.clear t.activated.(u);
        if Bytes.get t.in_next u = '\000' then begin
          Bytes.set t.in_next u '\001';
          Ivec.push t.run_next u
        end
      end)
    rl;
  Ivec.clear rl;
  t.in_flight <- t.in_flight + !total;
  t.sent_last_round <- !total;
  (* This round's senders become (part of) next round's run list. *)
  let tmp = t.run_now in
  t.run_now <- t.run_next;
  t.run_next <- tmp;
  let tmpf = t.in_now in
  t.in_now <- t.in_next;
  t.in_next <- tmpf;
  match trc with
  | None -> ()
  | Some tr ->
    let t2 = Trace.now_ns () in
    Trace.record_round tr
      {
        Trace.round = t.round;
        active_nodes = ran;
        active_links;
        delivered = Metrics.messages t.metrics - pre_msgs;
        words = Metrics.words t.metrics - pre_words;
        in_flight = t.in_flight;
        link_backlog = !round_backlog;
        delivery_ns = t1 - t0;
        compute_ns = t2 - t1;
        busy_domains = Pool.chunks_for t.pool ran;
      }

let quiescent t = t.in_flight = 0

type stop_reason = Quiescent | All_halted | Round_limit

let all_halted t = Array.for_all t.protocol.halted t.node_states

let run ?(max_rounds = 10_000_000) t =
  let rec go () =
    if all_halted t && t.in_flight = 0 then All_halted
    else if t.round >= max_rounds then Round_limit
    else begin
      let before_flight = t.in_flight in
      step t;
      if before_flight = 0 && t.in_flight = 0 then begin
        (* Nothing was in flight and the computation round produced no
           new messages: the system is quiescent. The probe round did
           no work, so it is not charged. *)
        Metrics.untick_round t.metrics;
        (match t.tracer with
        | Some tr -> Trace.drop_last tr
        | None -> ());
        t.round <- t.round - 1;
        if all_halted t then All_halted else Quiescent
      end
      else go ()
    end
  in
  go ()
