lib/experiments/e2_stretch.ml: Array Common Ds_core Ds_graph Ds_util List Printf
