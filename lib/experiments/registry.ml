module Table = Ds_util.Table
module Report = Ds_util.Report
module Json = Ds_util.Json
module Pool = Ds_parallel.Pool

type profile = Full | Quick

let profile_name = function Full -> "full" | Quick -> "quick"

let profile_of_string = function
  | "full" -> Some Full
  | "quick" -> Some Quick
  | _ -> None

type entry = {
  id : string;
  title : string;
  claim_id : string;
  claim : string;
  run : profile:profile -> Pool.t -> Report.result;
}

(* Experiments whose measurements are all centralized take the pool
   anyway so the registry stays uniform; they just ignore it. *)
let all =
  [
    {
      id = E1_size.id;
      title = E1_size.title;
      claim_id = E1_size.claim_id;
      claim = E1_size.claim;
      run =
        (fun ~profile pool ->
          E1_size.run ~pool
            (match profile with Full -> E1_size.default | Quick -> E1_size.quick));
    };
    {
      id = E2_stretch.id;
      title = E2_stretch.title;
      claim_id = E2_stretch.claim_id;
      claim = E2_stretch.claim;
      run =
        (fun ~profile pool ->
          E2_stretch.run ~pool
            (match profile with
            | Full -> E2_stretch.default
            | Quick -> E2_stretch.quick));
    };
    {
      id = E3_complexity.id;
      title = E3_complexity.title;
      claim_id = E3_complexity.claim_id;
      claim = E3_complexity.claim;
      run =
        (fun ~profile pool ->
          E3_complexity.run ~pool
            (match profile with
            | Full -> E3_complexity.default
            | Quick -> E3_complexity.quick));
    };
    {
      id = E4_termination.id;
      title = E4_termination.title;
      claim_id = E4_termination.claim_id;
      claim = E4_termination.claim;
      run =
        (fun ~profile pool ->
          E4_termination.run ~pool
            (match profile with
            | Full -> E4_termination.default
            | Quick -> E4_termination.quick));
    };
    {
      id = E5_slack.id;
      title = E5_slack.title;
      claim_id = E5_slack.claim_id;
      claim = E5_slack.claim;
      run =
        (fun ~profile pool ->
          E5_slack.run ~pool
            (match profile with
            | Full -> E5_slack.default
            | Quick -> E5_slack.quick));
    };
    {
      id = E6_cdg.id;
      title = E6_cdg.title;
      claim_id = E6_cdg.claim_id;
      claim = E6_cdg.claim;
      run =
        (fun ~profile pool ->
          E6_cdg.run ~pool
            (match profile with Full -> E6_cdg.default | Quick -> E6_cdg.quick));
    };
    {
      id = E7_graceful.id;
      title = E7_graceful.title;
      claim_id = E7_graceful.claim_id;
      claim = E7_graceful.claim;
      run =
        (fun ~profile pool ->
          E7_graceful.run ~pool
            (match profile with
            | Full -> E7_graceful.default
            | Quick -> E7_graceful.quick));
    };
    {
      id = E8_query_cost.id;
      title = E8_query_cost.title;
      claim_id = E8_query_cost.claim_id;
      claim = E8_query_cost.claim;
      run =
        (fun ~profile pool ->
          E8_query_cost.run ~pool
            (match profile with
            | Full -> E8_query_cost.default
            | Quick -> E8_query_cost.quick));
    };
    {
      id = E9_ablation.id;
      title = E9_ablation.title;
      claim_id = E9_ablation.claim_id;
      claim = E9_ablation.claim;
      run =
        (fun ~profile pool ->
          E9_ablation.run ~pool
            (match profile with
            | Full -> E9_ablation.default
            | Quick -> E9_ablation.quick));
    };
    {
      id = E10_async.id;
      title = E10_async.title;
      claim_id = E10_async.claim_id;
      claim = E10_async.claim;
      run =
        (fun ~profile pool ->
          E10_async.run ~pool
            (match profile with
            | Full -> E10_async.default
            | Quick -> E10_async.quick));
    };
    {
      id = E11_spanner.id;
      title = E11_spanner.title;
      claim_id = E11_spanner.claim_id;
      claim = E11_spanner.claim;
      run =
        (fun ~profile pool ->
          E11_spanner.run ~pool
            (match profile with
            | Full -> E11_spanner.default
            | Quick -> E11_spanner.quick));
    };
    {
      id = E12_vivaldi.id;
      title = E12_vivaldi.title;
      claim_id = E12_vivaldi.claim_id;
      claim = E12_vivaldi.claim;
      run =
        (fun ~profile _pool ->
          E12_vivaldi.run
            (match profile with
            | Full -> E12_vivaldi.default
            | Quick -> E12_vivaldi.quick));
    };
    {
      id = E13_brute_force.id;
      title = E13_brute_force.title;
      claim_id = E13_brute_force.claim_id;
      claim = E13_brute_force.claim;
      run =
        (fun ~profile pool ->
          E13_brute_force.run ~pool
            (match profile with
            | Full -> E13_brute_force.default
            | Quick -> E13_brute_force.quick));
    };
    {
      id = E14_backlog.id;
      title = E14_backlog.title;
      claim_id = E14_backlog.claim_id;
      claim = E14_backlog.claim;
      run =
        (fun ~profile pool ->
          E14_backlog.run ~pool
            (match profile with
            | Full -> E14_backlog.default
            | Quick -> E14_backlog.quick));
    };
    {
      id = E15_families.id;
      title = E15_families.title;
      claim_id = E15_families.claim_id;
      claim = E15_families.claim;
      run =
        (fun ~profile pool ->
          E15_families.run ~pool
            (match profile with
            | Full -> E15_families.default
            | Quick -> E15_families.quick));
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_one ?(profile = Full) ?(pool = Pool.sequential) ?csv_dir e =
  Printf.printf "### %s — %s\n    reproduces: %s (%s)\n\n" e.id e.title e.claim
    e.claim_id;
  let r = e.run ~profile pool in
  List.iter
    (fun t ->
      Table.print t;
      (match csv_dir with
      | Some dir ->
        let path = Table.save_csv t ~dir in
        Printf.printf "(csv: %s)\n" path
      | None -> ());
      print_newline ())
    r.Report.tables;
  List.iter
    (fun (c : Report.check) ->
      Printf.printf "  [%s] %s = %s%s\n"
        (if c.Report.ok then "ok" else "FAIL")
        c.Report.label
        (Printf.sprintf "%.4g" c.Report.measured)
        (match c.Report.bound with
        | Some b -> Printf.sprintf " (bound %.4g)" b
        | None -> ""))
    r.Report.checks;
  Printf.printf "  verdict: %s\n\n" (Report.verdict_name r.Report.verdict);
  r

let run_all ?profile ?pool ?csv_dir () =
  List.map (run_one ?profile ?pool ?csv_dir) all

let results ?(profile = Full) ?(pool = Pool.sequential) () =
  List.map (fun e -> e.run ~profile pool) all

(* Hand-written header of EXPERIMENTS.md. Everything after it is
   emitted from a run by {!Ds_util.Report.markdown}. *)
let preamble =
  "# EXPERIMENTS — paper claims vs. measurements\n\n\
   The paper (\"Efficient Computation of Distance Sketches in Distributed\n\
   Networks\", Das Sarma–Dinitz–Pandurangan, SPAA 2012) is a theory paper\n\
   with **no tables or figures**; its artifacts are theorem statements.\n\
   Each experiment below reproduces one claim on the CONGEST simulator.\n\n\
   This file is generated: the prose is hand-written in\n\
   `lib/experiments/e*.ml`, and every number, table and verdict is\n\
   emitted from a run. `EXPERIMENTS.json` is the same result set in a\n\
   schema-stable JSON form for machine diffing. Regenerate both with:\n\n\
   ```\n\
   dune exec bin/distsketch_cli.exe -- report           # rewrite in place\n\
   dune exec bin/distsketch_cli.exe -- report --check   # drift check (CI)\n\
   ```\n\n\
   Numbers are from a representative run (seeds fixed in\n\
   `lib/experiments/e*.ml`, single machine); they are deterministic given\n\
   the seeds. \"Bound\" columns evaluate the paper's asymptotic expression\n\
   with constant 1 — measured/bound ratios being below 1 and stable across\n\
   a sweep is the reproduced *shape*; absolute constants are not claims.\n"

let md_file = "EXPERIMENTS.md"
let json_file = "EXPERIMENTS.json"

let render ?(profile = Full) ?(pool = Pool.sequential) () =
  let rs = List.map (fun e -> e.run ~profile pool) all in
  let md = Report.markdown ~preamble rs in
  let json =
    Json.to_string (Report.to_json ~profile:(profile_name profile) rs)
  in
  (md, json)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_files ?profile ?pool ~dir () =
  let md, json = render ?profile ?pool () in
  let md_path = Filename.concat dir md_file in
  let json_path = Filename.concat dir json_file in
  write_file md_path md;
  write_file json_path json;
  [ md_path; json_path ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let first_diff ~expected ~actual =
  let el = String.split_on_char '\n' expected in
  let al = String.split_on_char '\n' actual in
  let rec go i el al =
    match (el, al) with
    | [], [] -> None
    | e :: _, [] -> Some (i, e, "<end of file>")
    | [], a :: _ -> Some (i, "<end of file>", a)
    | e :: es, a :: as_ ->
      if String.equal e a then go (i + 1) es as_ else Some (i, e, a)
  in
  go 1 el al

let check_one ~path ~fresh =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: missing (run `report` to generate it)" path)
  else
    let committed = read_file path in
    if String.equal committed fresh then Ok ()
    else
      match first_diff ~expected:fresh ~actual:committed with
      | None -> Ok ()
      | Some (line, want, got) ->
        Error
          (Printf.sprintf
             "%s: line %d differs from a fresh run\n  fresh:     %s\n\
             \  committed: %s"
             path line want got)

let check_files ?profile ?pool ~dir () =
  let md, json = render ?profile ?pool () in
  let results =
    [
      check_one ~path:(Filename.concat dir md_file) ~fresh:md;
      check_one ~path:(Filename.concat dir json_file) ~fresh:json;
    ]
  in
  match
    List.filter_map (function Error e -> Some e | Ok () -> None) results
  with
  | [] -> Ok ()
  | errs -> Error (String.concat "\n" errs)
