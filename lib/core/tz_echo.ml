module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Engine = Ds_congest.Engine
module Plane = Ds_congest.Plane
module Superstep = Ds_congest.Superstep
module Metrics = Ds_congest.Metrics
module Setup = Ds_congest.Setup

(* Data, Echo and Complete carry their phase. Under synchronous
   execution the tag is redundant (control-first processing suffices),
   but under bounded link asynchrony a phase-i announcement can
   overtake the START(i) wave along a fast non-tree path; the tag lets
   the receiver advance its phase by causal inference (see
   [handle_data]) instead of by timing. *)
type msg =
  | Data of int * int * int  (* phase, source, distance *)
  | Echo of int * int * int  (* copy of the announcement acknowledged *)
  | Complete of int  (* phase *)
  | Start of int
  | Finish

let msg_words = function
  | Data _ | Echo _ -> 3
  | Complete _ -> 2
  | Finish | Start _ -> 1

(* Per-source progress within the current phase. [recv_dist] is the
   advertised distance in the announcement that produced [dist]; a
   supersession echo must return that exact copy to [parent_idx]. *)
type entry = {
  mutable dist : int;
  mutable recv_dist : int;
  mutable parent_idx : int; (* -1 when we are the source *)
  mutable queued : bool;
}

(* An outstanding broadcast: once [pending] echoes (one per neighbor)
   arrive, the original announcement is echoed back to [parent_idx]
   ([-1] = we are the source, so resolution completes our flood). *)
type obligation = { ob_parent : int; ob_recv : int; mutable ob_pending : int }

type state = {
  id : int;
  k : int;
  my_level : int;
  tree_parent : int; (* neighbor index; -1 at the root *)
  tree_children : int array; (* neighbor indices *)
  mutable phase : int; (* k-1 .. 0; -1 once finished *)
  mutable bound : int * int;
  cur : (int, entry) Hashtbl.t;
  pending : int Queue.t;
  obligations : (int * int, obligation) Hashtbl.t; (* (src, dist sent) *)
  mutable flood_open : bool; (* we are a source and our flood is live *)
  mutable children_complete : int;
  mutable complete_sent : bool;
  mutable halted : bool;
  (* accumulated output *)
  pivot : (int * int) array; (* pivot.(i) valid once phase i closed *)
  bunch : (int, int * int) Hashtbl.t; (* node -> (dist, level) *)
}

let is_complete st = not st.flood_open

(* Close the books on the phase that just ended: fold the accepted
   announcements into the bunch, lower the pivot, reset phase state. *)
let close_phase st =
  let i = st.phase in
  let best = ref st.bound in
  Hashtbl.iter
    (fun src e ->
      Hashtbl.replace st.bunch src (e.dist, i);
      if Dist.lex_lt (e.dist, src) !best then best := (e.dist, src))
    st.cur;
  st.pivot.(i) <- !best;
  assert (Queue.is_empty st.pending);
  assert (Hashtbl.length st.obligations = 0);
  Hashtbl.reset st.cur;
  st.bound <- !best

let open_phase api st i =
  st.phase <- i;
  st.children_complete <- 0;
  st.complete_sent <- false;
  st.flood_open <- st.my_level = i;
  if st.flood_open then begin
    let e = { dist = 0; recv_dist = 0; parent_idx = -1; queued = true } in
    Hashtbl.replace st.cur st.id e;
    Queue.push st.id st.pending;
    (* Degenerate single-node graphs have no one to flood to. *)
    if api.Engine.degree = 0 then st.flood_open <- false
  end

let send_complete_if_ready api st =
  if
    st.phase >= 0 && (not st.complete_sent) && is_complete st
    && st.children_complete = Array.length st.tree_children
  then begin
    st.complete_sent <- true;
    if st.tree_parent >= 0 then
      api.Engine.send st.tree_parent (Complete st.phase)
  end

(* The root detects phase completion locally instead of sending itself
   a COMPLETE message. *)
let root_phase_done st =
  st.tree_parent < 0 && st.complete_sent

let start_next_phase api st =
  close_phase st;
  let next = st.phase - 1 in
  if next >= 0 then begin
    Array.iter (fun c -> api.Engine.send c (Start next)) st.tree_children;
    open_phase api st next
  end
  else begin
    Array.iter (fun c -> api.Engine.send c Finish) st.tree_children;
    st.phase <- -1;
    st.halted <- true
  end

let resolve_obligation api st key ob =
  Hashtbl.remove st.obligations key;
  let src, _sent = key in
  if ob.ob_parent >= 0 then
    api.Engine.send ob.ob_parent (Echo (st.phase, src, ob.ob_recv))
  else begin
    (* Our own flood has fully quiesced. *)
    st.flood_open <- false;
    send_complete_if_ready api st
  end

(* A phase-p announcement while we are still in phase p+1 proves that
   phase p+1 has globally completed (sources of phase p flood only
   after the leader collected every COMPLETE of phase p+1, and by then
   all our phase-p+1 bookkeeping has been delivered and processed), so
   we may close it and enter phase p before our START(p) arrives. *)
let advance_to api st p =
  assert (p = st.phase - 1);
  close_phase st;
  open_phase api st p

let handle_data api st j (p, src, adv) =
  if p = st.phase - 1 then advance_to api st p;
  assert (p = st.phase);
  let nd = adv + api.Engine.neighbor_weight j in
  let reject () = api.Engine.send j (Echo (p, src, adv)) in
  if not (Dist.lex_lt (nd, src) st.bound) then reject ()
  else begin
    match Hashtbl.find_opt st.cur src with
    | Some e when nd >= e.dist -> reject ()
    | Some e ->
      (* Improvement. If the previous value was still waiting to be
         sent it is superseded: acknowledge its announcement now. *)
      if e.queued then
        api.Engine.send e.parent_idx (Echo (p, src, e.recv_dist))
      else begin
        Queue.push src st.pending;
        e.queued <- true
      end;
      e.dist <- nd;
      e.recv_dist <- adv;
      e.parent_idx <- j
    | None ->
      let e = { dist = nd; recv_dist = adv; parent_idx = j; queued = true } in
      Hashtbl.replace st.cur src e;
      Queue.push src st.pending
  end

let handle_echo api st (p, src, sent) =
  assert (p = st.phase);
  match Hashtbl.find_opt st.obligations (src, sent) with
  | None -> ()
  | Some ob ->
    ob.ob_pending <- ob.ob_pending - 1;
    if ob.ob_pending = 0 then resolve_obligation api st (src, sent) ob

let pop_and_broadcast api st =
  match Queue.take_opt st.pending with
  | None -> ()
  | Some src ->
    let e = Hashtbl.find st.cur src in
    e.queued <- false;
    api.Engine.broadcast (Data (st.phase, src, e.dist));
    let ob =
      { ob_parent = e.parent_idx; ob_recv = e.recv_dist;
        ob_pending = api.Engine.degree }
    in
    Hashtbl.replace st.obligations (src, e.dist) ob

let protocol ~levels ~tree : (state, msg) Engine.protocol =
  let open Engine in
  let k = Levels.k levels in
  {
    name = "tz-echo";
    max_msg_words = 3;
    msg_words;
    halted = (fun st -> st.halted);
    init =
      (fun api ->
        let u = api.id in
        let parent_id = tree.Setup.parent.(u) in
        let to_idx v =
          let rec find i = if api.neighbor_id i = v then i else find (i + 1) in
          find 0
        in
        let st =
          {
            id = u;
            k;
            my_level = Levels.level levels u;
            tree_parent = (if parent_id < 0 then -1 else to_idx parent_id);
            tree_children =
              Array.of_list (List.map to_idx tree.Setup.children.(u));
            phase = k; (* no phase open yet *)
            bound = Dist.none;
            cur = Hashtbl.create 16;
            pending = Queue.create ();
            obligations = Hashtbl.create 16;
            flood_open = false;
            children_complete = 0;
            complete_sent = false;
            halted = false;
            pivot = Array.make (k + 1) Dist.none;
            bunch = Hashtbl.create 16;
          }
        in
        (* The leader opens phase k-1 for everyone. *)
        if st.tree_parent < 0 then begin
          Array.iter (fun c -> api.send c (Start (k - 1))) st.tree_children;
          open_phase api st (k - 1);
          send_complete_if_ready api st;
          if root_phase_done st then start_next_phase api st
        end;
        st);
    on_round =
      (fun api st inbox ->
        (* A phase-i announcement can share a round with START(i) (the
           BFS tree gives depth(v) <= depth(src) + hops exactly), so
           phase control is processed first: the new bound must be in
           place before any new-phase data is judged. *)
        let control _ m =
          match m with
          | Start i ->
            Array.iter (fun c -> api.send c (Start i)) st.tree_children;
            (* Phases count down, so i < st.phase means news; a START
               arriving at or behind our phase was preempted by causal
               inference and is only forwarded. *)
            if i < st.phase then begin
              if st.phase >= 0 && st.phase < st.k then close_phase st;
              open_phase api st i
            end
          | Finish ->
            Array.iter (fun c -> api.send c Finish) st.tree_children;
            close_phase st;
            st.phase <- -1;
            st.halted <- true
          | Data _ | Echo _ | Complete _ -> ()
        in
        let process j m =
          match m with
          | Start _ | Finish -> ()
          | Data (p, src, adv) -> handle_data api st j (p, src, adv)
          | Echo (p, src, sent) -> handle_echo api st (p, src, sent)
          | Complete p ->
            (* A child that advanced by causal inference can complete
               phase p before our START(p) arrives; its COMPLETE is
               then itself the causal proof that lets us advance. *)
            if p = st.phase - 1 then advance_to api st p;
            assert (p = st.phase);
            st.children_complete <- st.children_complete + 1
        in
        Engine.Inbox.iter control inbox;
        Engine.Inbox.iter process inbox;
        if st.phase >= 0 && st.phase < st.k then begin
          pop_and_broadcast api st;
          send_complete_if_ready api st;
          if root_phase_done st then start_next_phase api st
        end);
  }

type result = {
  labels : Label.t array;
  metrics : Metrics.t;
  setup_metrics : Metrics.t;
  leader : int;
}

let codec =
  let open Ds_util in
  {
    Superstep.encode =
      (fun b m ->
        match m with
        | Data (p, s, d) ->
          Ivec.push b 0;
          Ivec.push b p;
          Ivec.push b s;
          Ivec.push b d
        | Echo (p, s, d) ->
          Ivec.push b 1;
          Ivec.push b p;
          Ivec.push b s;
          Ivec.push b d
        | Complete p ->
          Ivec.push b 2;
          Ivec.push b p
        | Start p ->
          Ivec.push b 3;
          Ivec.push b p
        | Finish -> Ivec.push b 4);
    decode =
      (fun w o ->
        match Ivec.get w o with
        | 0 -> Data (Ivec.get w (o + 1), Ivec.get w (o + 2), Ivec.get w (o + 3))
        | 1 -> Echo (Ivec.get w (o + 1), Ivec.get w (o + 2), Ivec.get w (o + 3))
        | 2 -> Complete (Ivec.get w (o + 1))
        | 3 -> Start (Ivec.get w (o + 1))
        | _ -> Finish);
  }

let build ?backend ?pool ?shards ?jitter ?tracer ?obs g ~levels =
  let n = Graph.n g in
  let k = Levels.k levels in
  let tree, setup_metrics =
    Setup.run ?backend ?pool ?shards ?jitter ?tracer ?obs g
  in
  let r =
    Plane.run ?backend ?pool ?shards ?jitter ?tracer ?obs ~codec g
      (protocol ~levels ~tree)
  in
  (match r.Plane.stop with
  | All_halted | Quiescent -> ()
  | Round_limit -> failwith "Tz_echo: round limit hit");
  let m = r.Plane.metrics in
  Metrics.mark_phase m "tz-echo";
  let labels =
    Array.init n (fun u ->
        let st = r.Plane.states.(u) in
        let l = Label.create ~owner:u ~k in
        for i = 0 to k - 1 do
          let d, p = st.pivot.(i) in
          if Dist.is_finite d then Label.set_pivot l ~level:i ~dist:d ~node:p
        done;
        Hashtbl.iter
          (fun src (dist, lvl) -> Label.add_bunch l ~node:src ~dist ~level:lvl)
          st.bunch;
        l)
  in
  let setup_m = setup_metrics in
  {
    labels;
    metrics = Metrics.add setup_m m;
    setup_metrics = setup_m;
    leader = tree.Setup.leader;
  }
