(** E9 — design-choice ablations.

    (a) Lemma 3.2 query (stop at the first hit level) vs the
        bidirectional-min refinement (scan all levels, both directions).
    (b) CDG query through the nearest net node (the paper's sketch)
        vs querying the endpoints' own net-hierarchy labels directly. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz = Ds_core.Tz_centralized
module Cdg = Ds_core.Cdg
module Eval = Ds_core.Eval

type params = { seed : int; n : int; ks : int list; eps : float }

let default = { seed = 9; n = 300; ks = [ 2; 3; 4; 6 ]; eps = 0.2 }
let quick = { seed = 9; n = 100; ks = [ 2; 3 ]; eps = 0.2 }

let id = "e9"
let title = "query ablations"
let claim_id = "design choices"

let claim =
  "ablations of query variants, not a paper claim: first-hit vs \
   bidirectional-min TZ query; CDG net-detour (paper) vs direct \
   own-label query"

let bound_expr = ""

let prose =
  "The bidirectional-min refinement improves average stretch only \
   marginally over Lemma 3.2's simple first-hit scan — the simple scan \
   loses essentially nothing. The direct CDG variant is uniformly a \
   bit better than the paper's net-detour and needs no label transfer, \
   but its guarantee is not proven in the paper; it ships as an opt-in \
   (`Cdg.query_direct`)."

let run ?pool { seed; n; ks; eps } =
  let w =
    Common.make_workload ?pool ~seed
      ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
      ~n ()
  in
  let checks = ref [] in
  let t1 =
    Table.create
      ~title:
        (Printf.sprintf
           "E9a: TZ query variants (erdos-renyi, n=%d, all pairs)" n)
      ~headers:
        [ "k"; "first-hit max"; "first-hit avg"; "bidir max"; "bidir avg" ]
  in
  List.iter
    (fun k ->
      let levels = Levels.sample ~rng:(Rng.create (seed + k)) ~n ~k in
      let labels = Tz.build w.Common.graph ~levels in
      let r1 =
        Eval.all_pairs
          ~query:(fun u v -> Label.query labels.(u) labels.(v))
          w.Common.apsp
      in
      let r2 =
        Eval.all_pairs
          ~query:(fun u v -> Label.query_bidirectional labels.(u) labels.(v))
          w.Common.apsp
      in
      checks :=
        Report.check ~bound:r1.Eval.avg_stretch
          ~ok:(r2.Eval.avg_stretch <= r1.Eval.avg_stretch +. 1e-9)
          (Printf.sprintf "bidir avg stretch <= first-hit avg (k=%d)" k)
          r2.Eval.avg_stretch
        :: !checks;
      Table.add_row t1
        [
          Table.cell_int k;
          Table.cell_float ~decimals:3 r1.Eval.max_stretch;
          Table.cell_float ~decimals:3 r1.Eval.avg_stretch;
          Table.cell_float ~decimals:3 r2.Eval.max_stretch;
          Table.cell_float ~decimals:3 r2.Eval.avg_stretch;
        ])
    ks;
  let t2 =
    Table.create
      ~title:
        (Printf.sprintf
           "E9b: CDG query via net detour (paper) vs direct labels (eps=%.2f, \
            far pairs)"
           eps)
      ~headers:[ "k"; "detour max"; "detour avg"; "direct max"; "direct avg" ]
  in
  List.iter
    (fun k ->
      let r =
        Cdg.build_distributed ?pool ~rng:(Rng.create (seed + (7 * k))) w.Common.graph
          ~eps ~k
      in
      let far =
        Common.far_sample ~rng:(Rng.create (seed + 23)) w.Common.apsp ~eps
          ~count:3000
      in
      let detour =
        Eval.on_pairs
          ~query:(fun u v -> Cdg.query r.Cdg.sketches.(u) r.Cdg.sketches.(v))
          far
      in
      let direct =
        Eval.on_pairs
          ~query:(fun u v ->
            Cdg.query_direct r.Cdg.sketches.(u) r.Cdg.sketches.(v))
          far
      in
      checks :=
        Report.check ~bound:detour.Eval.avg_stretch
          ~ok:(direct.Eval.avg_stretch <= detour.Eval.avg_stretch +. 0.1)
          (Printf.sprintf
             "direct CDG avg stretch vs paper's net detour (k=%d)" k)
          direct.Eval.avg_stretch
        :: !checks;
      Table.add_row t2
        [
          Table.cell_int k;
          Table.cell_float ~decimals:3 detour.Eval.max_stretch;
          Table.cell_float ~decimals:3 detour.Eval.avg_stretch;
          Table.cell_float ~decimals:3 direct.Eval.max_stretch;
          Table.cell_float ~decimals:3 direct.Eval.avg_stretch;
        ])
    (List.filter (fun k -> k <= 3) ks);
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks = List.rev !checks;
    tables = [ t1; t2 ];
    phases = [];
    round_profiles = [];
    verdict = Report.Informational;
  }
