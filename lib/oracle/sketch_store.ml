module Label = Ds_core.Label
module Family = Ds_sketch.Family
module Sketch = Ds_sketch.Sketch

type meta = {
  n : int;
  k : int;
  seed : int;
  graph_family : string;
  sketch_family : Family.t;
}

type t = { meta : meta; sketch : Sketch.t }

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let magic = "DSKETCH1"
let version = 2

let v ?(seed = 0) ?(graph_family = "") sketch =
  {
    meta =
      {
        n = Sketch.n sketch;
        k = Sketch.k sketch;
        seed;
        graph_family;
        sketch_family = Sketch.family sketch;
      };
    sketch;
  }

let of_labels ?seed ?graph_family labels =
  if Array.length labels = 0 then
    invalid_arg "Sketch_store.of_labels: empty label set";
  v ?seed ?graph_family (Sketch.of_tz_labels labels)

(* FNV-1a, 64-bit. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let pad8 len = (8 - (len land 7)) land 7

let add_padded_string b s =
  Buffer.add_string b s;
  Buffer.add_string b (String.make (pad8 (String.length s)) '\000')

let add_sections (s : Sketch.t) ~word =
  let n = s.Sketch.n in
  for u = 0 to n do
    word s.Sketch.off.(u)
  done;
  for i = 0 to Array.length s.Sketch.pivot_dist - 1 do
    word s.Sketch.pivot_dist.(i);
    word s.Sketch.pivot_node.(i)
  done;
  for j = 0 to s.Sketch.off.(n) - 1 do
    word s.Sketch.ent_node.(j);
    word s.Sketch.ent_dist.(j)
  done

let to_bytes t =
  let { n; k; seed; graph_family; sketch_family } = t.meta in
  let b = Buffer.create 4096 in
  let word i = Buffer.add_int64_le b (Int64.of_int i) in
  Buffer.add_string b magic;
  word version;
  word n;
  word k;
  word seed;
  let sf = Family.name sketch_family in
  word (String.length sf);
  add_padded_string b sf;
  word (String.length graph_family);
  add_padded_string b graph_family;
  word (Array.length t.sketch.Sketch.pivot_dist * 2);
  add_sections t.sketch ~word;
  let payload = Buffer.contents b in
  Buffer.add_int64_le b (fnv1a64 payload);
  Buffer.contents b

let to_bytes_v1 t =
  let { n; k; seed; graph_family; sketch_family } = t.meta in
  if sketch_family <> Family.Tz then
    invalid_arg "Sketch_store.to_bytes_v1: only family tz has a v1 layout";
  let b = Buffer.create 4096 in
  let word i = Buffer.add_int64_le b (Int64.of_int i) in
  Buffer.add_string b magic;
  word 1;
  word n;
  word k;
  word seed;
  (* v1's lone family field was the graph family. *)
  word (String.length graph_family);
  add_padded_string b graph_family;
  add_sections t.sketch ~word;
  let payload = Buffer.contents b in
  Buffer.add_int64_le b (fnv1a64 payload);
  Buffer.contents b

(* Shared by both reader paths: the offset table, optional pivot
   section and entry section that follow the version-specific header,
   starting at byte [body]. [pivot_words] is [2nk] (v1, tz) or
   whatever the v2 header declared. *)
let read_sections s ~len ~body ~n ~k ~pivot_words ~sketch_family =
  let word off = Int64.to_int (String.get_int64_le s off) in
  if len < body + (8 * (n + 1)) then
    error "truncated snapshot: offset table cut short (%d bytes)" len;
  let off = Array.init (n + 1) (fun i -> word (body + (8 * i))) in
  if off.(0) <> 0 then error "corrupt bunch offsets: first is %d" off.(0);
  for i = 0 to n - 1 do
    if off.(i + 1) < off.(i) then
      error "corrupt bunch offsets: not monotone at node %d" i
  done;
  let total = off.(n) in
  let pivots_at = body + (8 * (n + 1)) in
  let ents_at = pivots_at + (8 * pivot_words) in
  let expected = ents_at + (8 * 2 * total) + 8 in
  if len <> expected then
    error "truncated or oversized snapshot: expected %d bytes, got %d" expected
      len;
  let stored = String.get_int64_le s (len - 8) in
  let computed = fnv1a64 (String.sub s 0 (len - 8)) in
  if stored <> computed then
    error "checksum mismatch: stored %Lx, computed %Lx — corrupt snapshot"
      stored computed;
  let half = pivot_words / 2 in
  let pivot_dist = Array.make half 0 and pivot_node = Array.make half 0 in
  for i = 0 to half - 1 do
    pivot_dist.(i) <- word (pivots_at + (8 * 2 * i));
    pivot_node.(i) <- word (pivots_at + (8 * ((2 * i) + 1)))
  done;
  let ent_node = Array.make total 0 and ent_dist = Array.make total 0 in
  for u = 0 to n - 1 do
    let prev = ref (-1) in
    for j = off.(u) to off.(u + 1) - 1 do
      let at = ents_at + (8 * 2 * j) in
      let w = word at and d = word (at + 8) in
      if w < 0 || w >= n then
        error "corrupt bunch section: node %d out of range at entry %d" w j;
      if w <= !prev then
        error "corrupt bunch section: entries of node %d not sorted" u;
      prev := w;
      ent_node.(j) <- w;
      ent_dist.(j) <- d
    done
  done;
  match
    Sketch.of_arrays ~family:sketch_family ~k ~pivot_dist ~pivot_node ~off
      ~ent_node ~ent_dist
  with
  | sketch -> sketch
  | exception Invalid_argument m -> error "corrupt snapshot: %s" m

let of_bytes s =
  let len = String.length s in
  if len < 16 then error "truncated snapshot: %d bytes, no header" len;
  if String.sub s 0 8 <> magic then
    error "bad magic %S: not a distsketch snapshot" (String.sub s 0 8);
  let word off = Int64.to_int (String.get_int64_le s off) in
  let ver = word 8 in
  if ver <> 1 && ver <> version then
    error "unsupported snapshot version %d (this reader expects <= %d)" ver
      version;
  if len < 48 then error "truncated snapshot header: %d bytes" len;
  let n = word 16 and k = word 24 and seed = word 32 in
  if n < 1 || k < 1 then error "bad snapshot header: n=%d k=%d" n k;
  let read_string at =
    let slen = word at in
    if slen < 0 || slen > len - at - 8 then
      error "bad snapshot header: family length %d" slen;
    (String.sub s (at + 8) slen, at + 8 + slen + pad8 slen)
  in
  if ver = 1 then begin
    (* v1: one family string — the graph family — then the
       unconditional tz pivot section. *)
    let graph_family, body = read_string 40 in
    let sketch =
      read_sections s ~len ~body ~n ~k ~pivot_words:(2 * n * k)
        ~sketch_family:Family.Tz
    in
    { meta = { n; k; seed; graph_family; sketch_family = Family.Tz }; sketch }
  end
  else begin
    let sf_name, after_sf = read_string 40 in
    let sketch_family =
      match Family.of_string sf_name with
      | Ok f -> f
      | Error _ -> error "unknown sketch family %S in snapshot header" sf_name
    in
    let graph_family, after_gf = read_string after_sf in
    if len < after_gf + 8 then error "truncated snapshot header: %d bytes" len;
    let pivot_words = word after_gf in
    let want_pivots = if sketch_family = Family.Tz then 2 * n * k else 0 in
    if pivot_words <> want_pivots then
      error "bad snapshot header: pivot section %d words, family %s wants %d"
        pivot_words sf_name want_pivots;
    let sketch =
      read_sections s ~len ~body:(after_gf + 8) ~n ~k ~pivot_words
        ~sketch_family
    in
    { meta = { n; k; seed; graph_family; sketch_family }; sketch }
  end

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_bytes t))

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_bytes s
