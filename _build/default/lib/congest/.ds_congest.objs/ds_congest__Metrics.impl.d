lib/congest/metrics.ml: Format List
