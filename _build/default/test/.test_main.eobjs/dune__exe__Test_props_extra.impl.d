test/test_props_extra.ml: Alcotest Array Ds_congest Ds_core Ds_graph Ds_util Helpers List Printf QCheck QCheck_alcotest String
