(** The sampled Thorup–Zwick hierarchy [A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}]
    ([A_k = ∅] by definition).

    [level t u] is the largest [i] with [u ∈ A_i], or [-1] when [u] is
    outside [A_0] (which happens only for hierarchies restricted to a
    subset, as in the CDG construction where [A_0] is the density net).

    Sampling is per-node and independent — exactly the local coin flips
    of the paper — but driven by one splittable PRNG so that the
    centralized and distributed constructions can share a hierarchy. *)

type t

val k : t -> int
val n : t -> int

val level : t -> int -> int

val in_set : t -> int -> int -> bool
(** [in_set t i u] is [u ∈ A_i]. [A_k] is empty, [A_0] is the sampling
    universe. *)

val members : t -> int -> int list
(** [members t i] lists [A_i] in increasing ID order. *)

val exactly : t -> int -> int list
(** [exactly t i] lists [A_i \ A_{i+1}] — the sources of phase [i]. *)

val counts : t -> int array
(** [|A_0|; …; |A_{k-1}|]. *)

val sample : rng:Ds_util.Rng.t -> n:int -> k:int -> t
(** Promotion probability [n^{-1/k}] per level, the paper's Section 3.1.
    Resamples (with fresh randomness) in the vanishingly-unlikely case
    [A_{k-1} = ∅], as Thorup–Zwick do. *)

val sample_subset :
  rng:Ds_util.Rng.t -> n:int -> k:int -> subset:int list -> prob:float -> t
(** Hierarchy over [subset] (= [A_0]) with promotion probability
    [prob]; used by the CDG construction with [A_0] the density net and
    [prob = (10/ε · ln n)^{-1/k}]. *)

val of_level_array : k:int -> int array -> t
(** Adopt an explicit assignment (tests). *)
