lib/core/graceful.ml: Array Cdg Ds_congest Ds_graph List
