(** Weighted undirected graphs in compressed sparse row form.

    Nodes are [0 .. n-1] (the paper's Algorithm 2 assumes exactly this
    ID space). Weights are positive integers. The structure is
    immutable after construction. *)

type t

val of_edges : n:int -> (int * int * int) list -> t
(** [of_edges ~n edges] builds the graph from undirected [(u, v, w)]
    triples. Raises [Invalid_argument] on self-loops, out-of-range
    endpoints, non-positive weights, or duplicate edges. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int

val max_degree : t -> int

val iter_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbors g u f] calls [f v w] for each edge [(u, v)] of
    weight [w]. *)

val fold_neighbors : t -> int -> ('a -> int -> int -> 'a) -> 'a -> 'a

val neighbors : t -> int -> (int * int) array
(** Fresh array of [(neighbor, weight)] pairs. *)

val neighbor_at : t -> int -> int -> int * int
(** [neighbor_at g u i] is the [i]-th incident [(neighbor, weight)] of
    [u], [0 <= i < degree g u]. O(1). *)

val neighbor_index : t -> int -> int -> int
(** [neighbor_index g u v] is the index of [v] in [u]'s adjacency list.
    Raises [Not_found] if [(u,v)] is not an edge. *)

val weight : t -> int -> int -> int
(** [weight g u v] is the weight of edge [(u, v)].
    Raises [Not_found] if absent. *)

val has_edge : t -> int -> int -> bool

val edges : t -> (int * int * int) list
(** Each undirected edge once, with [u < v]. *)

val total_weight : t -> int
