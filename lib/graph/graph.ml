module Ivec = Ds_util.Ivec

type t = {
  n : int;
  m : int;
  idx : int array; (* length n+1; adjacency of u is [idx.(u), idx.(u+1)) *)
  adj : int array; (* neighbor ids, sorted per node *)
  wgt : int array; (* parallel to adj *)
}

let of_edges ~n edge_list =
  if n <= 0 then invalid_arg "Graph.of_edges: n must be positive";
  let seen = Hashtbl.create (2 * List.length edge_list) in
  let check (u, v, w) =
    if u = v then invalid_arg "Graph.of_edges: self-loop";
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.of_edges: endpoint out of range";
    if w <= 0 then invalid_arg "Graph.of_edges: weight must be positive";
    let key = (min u v, max u v) in
    if Hashtbl.mem seen key then invalid_arg "Graph.of_edges: duplicate edge";
    Hashtbl.replace seen key ()
  in
  List.iter check edge_list;
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v, _) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_list;
  let idx = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    idx.(u + 1) <- idx.(u) + deg.(u)
  done;
  let total = idx.(n) in
  let adj = Array.make total 0 and wgt = Array.make total 0 in
  let cursor = Array.copy idx in
  let place u v w =
    adj.(cursor.(u)) <- v;
    wgt.(cursor.(u)) <- w;
    cursor.(u) <- cursor.(u) + 1
  in
  List.iter
    (fun (u, v, w) ->
      place u v w;
      place v u w)
    edge_list;
  (* Sort each adjacency list by neighbor id for binary search. *)
  for u = 0 to n - 1 do
    let lo = idx.(u) and hi = idx.(u + 1) in
    let pairs = Array.init (hi - lo) (fun i -> (adj.(lo + i), wgt.(lo + i))) in
    Array.sort compare pairs;
    Array.iteri
      (fun i (v, w) ->
        adj.(lo + i) <- v;
        wgt.(lo + i) <- w)
      pairs
  done;
  { n; m = List.length edge_list; idx; adj; wgt }

let n t = t.n
let m t = t.m
let degree t u = t.idx.(u + 1) - t.idx.(u)

let max_degree t =
  let best = ref 0 in
  for u = 0 to t.n - 1 do
    if degree t u > !best then best := degree t u
  done;
  !best

let iter_neighbors t u f =
  for i = t.idx.(u) to t.idx.(u + 1) - 1 do
    f t.adj.(i) t.wgt.(i)
  done

let fold_neighbors t u f init =
  let acc = ref init in
  iter_neighbors t u (fun v w -> acc := f !acc v w);
  !acc

let neighbors t u =
  Array.init (degree t u) (fun i ->
      (t.adj.(t.idx.(u) + i), t.wgt.(t.idx.(u) + i)))

let neighbor_at t u i = (t.adj.(t.idx.(u) + i), t.wgt.(t.idx.(u) + i))
let neighbor_node t u i = t.adj.(t.idx.(u) + i)
let neighbor_weight_at t u i = t.wgt.(t.idx.(u) + i)

let neighbor_index t u v =
  (* Binary search in the sorted adjacency slice. *)
  let lo = ref t.idx.(u) and hi = ref (t.idx.(u + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if t.adj.(mid) = v then found := mid
    else if t.adj.(mid) < v then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then raise Not_found else !found - t.idx.(u)

let weight t u v =
  let i = neighbor_index t u v in
  t.wgt.(t.idx.(u) + i)

let has_edge t u v =
  match neighbor_index t u v with _ -> true | exception Not_found -> false

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    iter_neighbors t u (fun v w -> if u < v then acc := (u, v, w) :: !acc)
  done;
  !acc

let total_weight t = List.fold_left (fun s (_, _, w) -> s + w) 0 (edges t)

(* Streaming construction for million-node graphs. [of_edges] goes
   through an edge list and a dedup hashtable — boxed triples, list
   cells and hash cells per edge add up to hundreds of bytes per edge
   at n = 10^6. The builder appends endpoints into three flat int
   vectors and compiles them into CSR in one counting pass; peak
   transient memory is ~5 ints per directed link, and nothing is ever
   O(n^2). Duplicate detection happens for free during the per-node
   adjacency sort (duplicates are adjacent in the sorted slice), so
   no hash set is needed. *)
module Builder = struct
  type t = {
    n : int;
    eu : Ivec.t;
    ev : Ivec.t;
    ew : Ivec.t;
  }

  let create ?(expect_edges = 16) ~n () =
    if n <= 0 then invalid_arg "Graph.Builder.create: n must be positive";
    let capacity = max 16 expect_edges in
    {
      n;
      eu = Ivec.create ~capacity ();
      ev = Ivec.create ~capacity ();
      ew = Ivec.create ~capacity ();
    }

  let edge_count b = Ivec.length b.eu

  let add_edge b u v w =
    if u = v then invalid_arg "Graph.Builder.add_edge: self-loop";
    if u < 0 || u >= b.n || v < 0 || v >= b.n then
      invalid_arg "Graph.Builder.add_edge: endpoint out of range";
    if w <= 0 then invalid_arg "Graph.Builder.add_edge: weight must be positive";
    Ivec.push b.eu u;
    Ivec.push b.ev v;
    Ivec.push b.ew w

  let build ?(on_duplicate = `Reject) b =
    let n = b.n in
    let ne = Ivec.length b.eu in
    let deg = Array.make n 0 in
    for e = 0 to ne - 1 do
      let u = Ivec.get b.eu e and v = Ivec.get b.ev e in
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1
    done;
    let idx = Array.make (n + 1) 0 in
    for u = 0 to n - 1 do
      idx.(u + 1) <- idx.(u) + deg.(u)
    done;
    let total = idx.(n) in
    let adj = Array.make (max 1 total) 0 and wgt = Array.make (max 1 total) 0 in
    let cursor = Array.copy idx in
    for e = 0 to ne - 1 do
      let u = Ivec.get b.eu e
      and v = Ivec.get b.ev e
      and w = Ivec.get b.ew e in
      adj.(cursor.(u)) <- v;
      wgt.(cursor.(u)) <- w;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      wgt.(cursor.(v)) <- w;
      cursor.(v) <- cursor.(v) + 1
    done;
    (* Sort each adjacency slice by (neighbor, placement order): the
       position in the low bits keeps the sort stable, so of two
       duplicate copies the earlier-added one sorts first — on both
       endpoints' slices, which is what lets [`Keep_first] drop the
       same copy on both sides even when the weights differ. *)
    let maxd = Array.fold_left max 0 deg in
    let keys = Array.make (max 1 maxd) 0 in
    let tmpw = Array.make (max 1 maxd) 0 in
    for u = 0 to n - 1 do
      let lo = idx.(u) in
      let len = idx.(u + 1) - lo in
      if len > 1 then begin
        for i = 0 to len - 1 do
          keys.(i) <- (adj.(lo + i) * len) + i;
          tmpw.(i) <- wgt.(lo + i)
        done;
        let sorted = Array.sub keys 0 len in
        Array.sort compare sorted;
        for j = 0 to len - 1 do
          let k = sorted.(j) in
          adj.(lo + j) <- k / len;
          wgt.(lo + j) <- tmpw.(k mod len)
        done
      end
    done;
    (* Duplicates are now adjacent within each slice. *)
    let has_dup = ref false in
    for u = 0 to n - 1 do
      for i = idx.(u) + 1 to idx.(u + 1) - 1 do
        if adj.(i) = adj.(i - 1) then begin
          if on_duplicate = `Reject then
            invalid_arg
              (Printf.sprintf "Graph.Builder.build: duplicate edge (%d, %d)" u
                 adj.(i));
          has_dup := true
        end
      done
    done;
    if not !has_dup then { n; m = ne; idx; adj; wgt }
    else begin
      (* Compact the kept entries and rebuild the index. *)
      let nidx = Array.make (n + 1) 0 in
      let wp = ref 0 in
      for u = 0 to n - 1 do
        nidx.(u) <- !wp;
        for i = idx.(u) to idx.(u + 1) - 1 do
          if i = idx.(u) || adj.(i) <> adj.(i - 1) then begin
            adj.(!wp) <- adj.(i);
            wgt.(!wp) <- wgt.(i);
            incr wp
          end
        done
      done;
      nidx.(n) <- !wp;
      let total = !wp in
      {
        n;
        m = total / 2;
        idx = nidx;
        adj = Array.sub adj 0 (max 1 total);
        wgt = Array.sub wgt 0 (max 1 total);
      }
    end
end
