(** E8 — Section 2.1 motivation: answering a distance query from
    sketches vs computing it on demand.

    After preprocessing, exchanging two sketches costs O(D · |L|)
    rounds naively (O(D + |L|) pipelined); an on-demand computation
    (distributed Bellman-Ford) costs Omega(S) rounds per query. On the
    star-ring family S >> D, so sketches win per query and their
    construction amortises across a few queries. *)

module Table = Ds_util.Table
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Stats = Ds_util.Stats
module Super_bf = Ds_congest.Super_bf
module Setup = Ds_congest.Setup
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_distributed = Ds_core.Tz_distributed
module Query_protocol = Ds_core.Query_protocol
module Eval = Ds_core.Eval

type params = { seed : int; ns : int list; k : int }

let default = { seed = 8; ns = [ 65; 129; 257; 513 ]; k = 3 }

let run ?pool { seed; ns; k } =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E8: per-query cost, sketch exchange vs on-demand Bellman-Ford \
            (star-ring, k=%d) — Section 2.1"
           k)
      ~headers:
        [
          "n"; "D"; "S"; "BF rounds/query"; "mean |L|"; "D*|L| naive";
          "D+|L| pipelined"; "measured exchange"; "speedup"; "build rounds";
          "amortise after";
        ]
  in
  List.iter
    (fun n ->
      let w =
        Common.make_workload ~seed
          ~family:(Ds_graph.Gen.Star_ring { heavy_frac = 0.25 })
          ~n
      in
      let g = w.Common.graph in
      let gn = Ds_graph.Graph.n g in
      let d = w.Common.profile.Ds_graph.Props.d in
      let levels = Levels.sample ~rng:(Rng.create (seed + n)) ~n:gn ~k in
      let built = Tz_distributed.build ?pool g ~levels in
      let sizes =
        Eval.size_summary Label.size_words built.Tz_distributed.labels
      in
      let mean_l = sizes.Stats.mean in
      (* One on-demand query: a single-source BF from one endpoint. *)
      let _, bf_metrics = Super_bf.single_source g ~src:(gn / 2) in
      let bf_rounds = Metrics.rounds bf_metrics in
      let naive = float_of_int d *. mean_l in
      let pipelined = float_of_int d +. mean_l in
      (* Actually run the in-network sketch exchange for one pair. *)
      let tree, _ = Setup.run ?pool g in
      let exchange =
        Query_protocol.query ?pool g ~tree ~labels:built.Tz_distributed.labels
          ~u:(gn / 4) ~v:(gn / 2)
      in
      let build_rounds = Metrics.rounds built.Tz_distributed.metrics in
      let speedup =
        float_of_int bf_rounds /. float_of_int exchange.Query_protocol.rounds
      in
      let amortise =
        ceil (float_of_int build_rounds /. float_of_int (max 1 bf_rounds))
      in
      Table.add_row t
        [
          Table.cell_int gn;
          Table.cell_int d;
          Table.cell_int w.Common.profile.Ds_graph.Props.s;
          Table.cell_int bf_rounds;
          Table.cell_float mean_l;
          Table.cell_float naive;
          Table.cell_float pipelined;
          Table.cell_int exchange.Query_protocol.rounds;
          Table.cell_ratio speedup;
          Table.cell_int build_rounds;
          Table.cell_float ~decimals:0 amortise;
        ])
    ns;
  [ t ]
