(** Leader election and BFS-tree construction with self-contained
    termination — the preamble of the paper's Section 3.3.

    Every node floods its ID, forwarding only the smallest seen; each
    flood is echo-acknowledged, so the minimum-ID node detects that its
    own flood has quiesced and thereby elects itself. The leader then
    runs a second echo-acknowledged wave that fixes BFS-tree parents
    and tells every parent its children, and finally announces
    completion down the tree. [O(D)]-depth waves, [O(|E|)] messages
    per wave up to the echo factor. *)

type result = {
  leader : int;
  parent : int array;  (** tree parent node ID; -1 at the root *)
  children : int list array;
}

val run :
  ?backend:Plane.backend -> ?pool:Ds_parallel.Pool.t -> ?shards:int ->
  ?jitter:Engine.jitter -> ?tracer:Trace.t -> ?obs:Ds_obs.Obs.t ->
  Ds_graph.Graph.t -> result * Metrics.t
(** Under link asynchrony ([jitter]) the elected leader and the
    spanning tree remain correct, but the tree is no longer a BFS tree
    (parents are first-arrival, not fewest-hops). *)
