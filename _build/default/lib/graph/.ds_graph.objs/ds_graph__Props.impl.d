lib/graph/props.ml: Array Bfs Dijkstra Dist Format Graph
