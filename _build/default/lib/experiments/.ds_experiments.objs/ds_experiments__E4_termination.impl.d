lib/experiments/e4_termination.ml: Array Common Ds_congest Ds_core Ds_graph Ds_util List Printf
