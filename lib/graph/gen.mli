(** Synthetic network generators.

    All generators return connected graphs (a random spanning skeleton
    is always included) with integer weights drawn uniformly from
    [\[wmin, wmax\]] unless the topology dictates otherwise. They stand
    in for the P2P / overlay networks that motivate the paper. *)

type weight_spec = { wmin : int; wmax : int }

val unit_weights : weight_spec
val default_weights : weight_spec
(** Weights in [\[1, 100\]]. *)

val erdos_renyi :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> n:int -> avg_degree:float ->
  unit -> Graph.t
(** G(n, p) with [p = avg_degree / (n-1)], plus a random spanning tree
    to guarantee connectivity. *)

val random_geometric :
  rng:Ds_util.Rng.t -> n:int -> radius:float -> unit -> Graph.t
(** Points in the unit square; nodes within [radius] are adjacent with
    weight proportional to Euclidean distance (scaled to integers).
    Disconnected parts are stitched by nearest-point edges. *)

val grid :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> rows:int -> cols:int ->
  unit -> Graph.t

val torus :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> rows:int -> cols:int ->
  unit -> Graph.t

val ring : rng:Ds_util.Rng.t -> ?weights:weight_spec -> n:int -> unit -> Graph.t

val ring_chords :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> n:int -> chords:int ->
  unit -> Graph.t
(** Ring plus random long-range chords (small-world overlay shape). *)

val random_tree :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> n:int -> unit -> Graph.t
(** Uniform random recursive tree. *)

val preferential_attachment :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> n:int -> edges_per_node:int ->
  unit -> Graph.t
(** Barabási–Albert style power-law graph (P2P degree shape). *)

val hypercube :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> dims:int -> unit -> Graph.t

val star_ring : n:int -> heavy:int -> Graph.t
(** A hub connected to every ring node with weight [heavy]; unit-weight
    ring edges. With [heavy ~ n/4] the hop diameter stays 2 while the
    shortest-path diameter grows like [min (n/2) (2*heavy)] — the
    [S >> D] regime of the paper's Section 2.1 discussion. *)

val random_regular :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> n:int -> degree:int ->
  unit -> Graph.t
(** Random (near-)regular graph by pairing-with-repair — an expander
    whp, the low-diameter overlay shape. Every node ends with degree
    in [\[degree-1, degree+1\]]; connectivity enforced. *)

val complete : rng:Ds_util.Rng.t -> ?weights:weight_spec -> n:int -> unit -> Graph.t

val barbell :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> clique:int -> bridge:int ->
  unit -> Graph.t
(** Two [clique]-cliques joined by a [bridge]-edge path: dense regions
    with a long thin cut (bad case for flooding). *)

val caterpillar :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> spine:int -> legs:int ->
  unit -> Graph.t
(** A path of [spine] nodes, each with [legs] pendant leaves. *)

val to_dot : Graph.t -> string
(** Graphviz rendering (debugging / documentation aid). *)

type family =
  | Erdos_renyi of { avg_degree : float }
  | Geometric of { radius : float }
  | Grid
  | Torus
  | Ring_chords of { chords_frac : float }
  | Tree
  | Power_law of { edges_per_node : int }
  | Star_ring of { heavy_frac : float }

val family_name : family -> string

val build :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> family -> n:int -> Graph.t
(** Uniform entry point used by the experiment harness; [n] is the
    (approximate, for grids) node count. *)

(** {1 Streaming generators}

    Edges are pushed straight into a {!Graph.Builder} (flat int
    vectors, one CSR pass) instead of a hashtable edge set, so peak
    memory stays O(m) words with no per-edge boxing. These are the
    generators behind the [--scale] experiment at n = 10^5..10^6;
    weights default to unit. *)

val streaming_sparse :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> n:int -> avg_degree:float ->
  unit -> Graph.t
(** Random spanning skeleton plus expected-count uniform extra edges —
    the [erdos_renyi] recipe, streamed. Duplicate draws are dropped
    (first write wins), so the realised average degree is slightly
    below [avg_degree]. *)

val streaming_torus :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> n:int -> unit -> Graph.t
(** [side x side] torus with [side = floor (sqrt n)]. *)

val streaming_tree :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> n:int -> unit -> Graph.t
(** Uniform random recursive tree, streamed. *)

type scale_family = S_sparse of { avg_degree : float } | S_torus | S_tree

val scale_family_name : scale_family -> string

val scale_family_of_string : ?avg_degree:float -> string -> scale_family
(** ["sparse" | "torus" | "tree"]; raises [Invalid_argument] otherwise. *)

val build_scale :
  rng:Ds_util.Rng.t -> ?weights:weight_spec -> scale_family -> n:int -> Graph.t
