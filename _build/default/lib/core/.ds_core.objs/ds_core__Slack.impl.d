lib/core/slack.ml: Array Density_net Ds_congest Ds_graph List
