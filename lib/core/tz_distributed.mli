(** Distributed Thorup–Zwick construction, Algorithm 2 of the paper,
    in the idealised synchronisation mode of Section 3.2: every node is
    assumed to know (an upper bound on) the shortest-path diameter [S],
    so all nodes start each phase together. The simulator realises the
    assumption by detecting global quiescence between phases, which
    charges exactly the work rounds a real execution would need (a real
    deployment would round phase lengths up to the proven bound).

    The self-terminating variant (Section 3.3) is {!Tz_echo}; both
    produce labels structurally equal to {!Tz_centralized.build} on the
    same hierarchy. *)

type result = {
  labels : Label.t array;
  metrics : Ds_congest.Metrics.t;  (** one phase mark per level *)
  max_pending : int;
      (** largest per-node send-queue backlog observed across all
          phases — the quantity Lemma 3.7 bounds by [O(n^{1/k} log n)] *)
  mem_words : int;
      (** largest {!Ds_congest.Plane.exec.mem_words} over the phases —
          the peak message-plane backbone footprint, what the scale
          experiment's per-node word budget audits *)
}

val build :
  ?backend:Ds_congest.Plane.backend -> ?pool:Ds_parallel.Pool.t ->
  ?shards:int -> ?tracer:Ds_congest.Trace.t -> ?obs:Ds_obs.Obs.t ->
  Ds_graph.Graph.t -> levels:Levels.t -> result
(** [tracer] (and likewise [obs]) is threaded through every phase
    engine, so its rows line up with the combined per-phase
    metrics. *)
