(** Process-memory probes (Linux [/proc/self/status]; [None] when the
    file is absent, so callers stay portable). *)

val rss_kb : unit -> int option
(** Current resident set size, in kB. *)

val hwm_kb : unit -> int option
(** Peak resident set size ("high-water mark"), in kB. *)

val heap_words : unit -> int
(** Major-heap size of the OCaml runtime, in words (from
    [Gc.quick_stat]; cheap, no heap walk). *)
