type backend = Congest | Sharded

let backend_name = function Congest -> "congest" | Sharded -> "sharded"

let backend_of_string = function
  | "congest" -> Ok Congest
  | "sharded" | "mpc" -> Ok Sharded
  | s -> Error (Printf.sprintf "unknown backend %S (congest|sharded)" s)

let backends = [ Congest; Sharded ]

type ('state, 'msg) exec = {
  states : 'state array;
  metrics : Metrics.t;
  stop : Superstep.stop_reason;
  mem_words : int;
}

let run ?(backend = Congest) ?pool ?shards ?jitter ?tracer ?obs ?max_rounds
    ~codec g protocol =
  match backend with
  | Congest ->
    (* The codec is unused here — per-link rings carry the messages
       themselves — but requiring it keeps every protocol runnable on
       both backends by construction. *)
    ignore codec;
    ignore shards;
    let eng = Engine.create ?pool ?jitter ?tracer ?obs g protocol in
    let stop = Engine.run ?max_rounds eng in
    {
      states = Engine.states eng;
      metrics = Engine.metrics eng;
      stop;
      mem_words = Engine.mem_words eng;
    }
  | Sharded ->
    (match jitter with
    | Some _ ->
      invalid_arg
        "Plane.run: the sharded backend is strictly synchronous (no jitter)"
    | None -> ());
    let eng = Shard_engine.create ?pool ?shards ?tracer ?obs ~codec g protocol in
    let stop = Shard_engine.run ?max_rounds eng in
    {
      states = Shard_engine.states eng;
      metrics = Shard_engine.metrics eng;
      stop;
      mem_words = Shard_engine.mem_words eng;
    }
