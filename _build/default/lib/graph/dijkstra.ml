module Pqueue = Ds_util.Pqueue

let sssp_with_parents g ~src =
  let n = Graph.n g in
  let dist = Array.make n Dist.infinity in
  let parent = Array.make n (-1) in
  let pq = Pqueue.create () in
  dist.(src) <- 0;
  Pqueue.add pq 0 src;
  let rec drain () =
    match Pqueue.pop_min pq with
    | None -> ()
    | Some (d, u) ->
      if d = dist.(u) then
        Graph.iter_neighbors g u (fun v w ->
            let nd = d + w in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              parent.(v) <- u;
              Pqueue.add pq nd v
            end);
      drain ()
  in
  drain ();
  (dist, parent)

let sssp g ~src = fst (sssp_with_parents g ~src)

let sssp_hops g ~src =
  let n = Graph.n g in
  let dist = Array.make n Dist.infinity in
  let hops = Array.make n max_int in
  let pq = Pqueue.create () in
  dist.(src) <- 0;
  hops.(src) <- 0;
  Pqueue.add pq 0 src;
  let rec drain () =
    match Pqueue.pop_min pq with
    | None -> ()
    | Some (d, u) ->
      if d = dist.(u) then
        Graph.iter_neighbors g u (fun v w ->
            let nd = d + w and nh = hops.(u) + 1 in
            if nd < dist.(v) || (nd = dist.(v) && nh < hops.(v)) then begin
              dist.(v) <- nd;
              hops.(v) <- nh;
              Pqueue.add pq nd v
            end);
      drain ()
  in
  drain ();
  (dist, hops)

let multi_source g ~sources =
  let n = Graph.n g in
  let dist = Array.make n Dist.infinity in
  let nearest = Array.make n (-1) in
  let pq = Pqueue.create () in
  let better v d s =
    Dist.lex_lt (d, s)
      (dist.(v), if nearest.(v) < 0 then max_int else nearest.(v))
  in
  Array.iter
    (fun s ->
      if better s 0 s then begin
        dist.(s) <- 0;
        nearest.(s) <- s;
        Pqueue.add pq 0 s
      end)
    sources;
  let rec drain () =
    match Pqueue.pop_min pq with
    | None -> ()
    | Some (d, u) ->
      if d = dist.(u) then begin
        let s = nearest.(u) in
        Graph.iter_neighbors g u (fun v w ->
            let nd = d + w in
            if better v nd s then begin
              dist.(v) <- nd;
              nearest.(v) <- s;
              Pqueue.add pq nd v
            end)
      end;
      drain ()
  in
  drain ();
  (dist, nearest)

let restricted_with_parents g ~src ~bound =
  let n = Graph.n g in
  let dist = Array.make n Dist.infinity in
  let parent = Array.make n (-1) in
  let inside v d = Dist.lex_lt (d, src) bound.(v) in
  let pq = Pqueue.create () in
  if inside src 0 then begin
    dist.(src) <- 0;
    Pqueue.add pq 0 src
  end;
  let rec drain () =
    match Pqueue.pop_min pq with
    | None -> ()
    | Some (d, u) ->
      if d = dist.(u) then
        Graph.iter_neighbors g u (fun v w ->
            let nd = d + w in
            if nd < dist.(v) && inside v nd then begin
              dist.(v) <- nd;
              parent.(v) <- u;
              Pqueue.add pq nd v
            end);
      drain ()
  in
  drain ();
  (dist, parent)

let restricted g ~src ~bound = fst (restricted_with_parents g ~src ~bound)
