(** E7 — Theorem 1.3 / 4.8 / Corollary 4.9: gracefully degrading
    sketches.

    Paper claims: one sketch of O(log^4 n) words that simultaneously
    has stretch O(log (1/ε)) with ε-slack for every ε — hence
    worst-case stretch O(log n) and average stretch O(1). The flat
    avg-stretch column as n grows is the headline reproduction. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Metrics = Ds_congest.Metrics
module Stats = Ds_util.Stats
module Graceful = Ds_core.Graceful
module Eval = Ds_core.Eval

type params = { seed : int; ns : int list }

let default = { seed = 7; ns = [ 64; 128; 256; 512 ] }
let quick = { seed = 7; ns = [ 32; 64 ] }

let id = "e7"
let title = "gracefully degrading sketches"
let claim_id = "Theorem 1.3"

let claim =
  "one sketch of O(log^4 n) words with O(log n) worst-case stretch and \
   O(1) average stretch"

let bound_expr = "`log2(n)^4` words; `log2 n` worst stretch; O(1) average"

let prose =
  "Average stretch stays flat (a hair above 1) while n grows across the \
   sweep — the headline reproduction of the constant-average-stretch \
   corollary. Max stretch stays far below even log2 n, mean size grows \
   much slower than log^4 n, and there are zero violations."

let run ?pool { seed; ns } =
  let t =
    Table.create
      ~title:
        "E7: gracefully degrading sketches vs n (erdos-renyi) — Theorem 1.3"
      ~headers:
        [
          "n"; "log2 n"; "parts"; "mean words"; "log^4 n"; "max stretch";
          "avg stretch"; "p99"; "viol"; "rounds";
        ]
  in
  let avgs = ref [] in
  let total_viol = ref 0 in
  let last = ref None in
  List.iter
    (fun n ->
      let w =
        Common.make_workload ?pool ~seed
          ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 6.0 })
          ~n ()
      in
      let r = Graceful.build_distributed ?pool ~rng:(Rng.create (seed + n)) w.Common.graph in
      let report =
        Eval.all_pairs
          ~query:(fun u v ->
            Graceful.query r.Graceful.sketches.(u) r.Graceful.sketches.(v))
          w.Common.apsp
      in
      let sizes = Eval.size_summary Graceful.size_words r.Graceful.sketches in
      let lg = float_of_int (Common.log2i n) in
      avgs := report.Eval.avg_stretch :: !avgs;
      total_viol := !total_viol + report.Eval.violations;
      last := Some (n, report, sizes, r.Graceful.metrics);
      Table.add_row t
        [
          Table.cell_int n;
          Table.cell_int (Common.log2i n);
          Table.cell_int (Array.length r.Graceful.sketches.(0).Graceful.parts);
          Table.cell_float sizes.Stats.mean;
          Table.cell_float (lg ** 4.0);
          Table.cell_float ~decimals:3 report.Eval.max_stretch;
          Table.cell_float ~decimals:3 report.Eval.avg_stretch;
          Table.cell_float ~decimals:3 report.Eval.p99;
          Table.cell_int report.Eval.violations;
          Table.cell_int (Metrics.rounds r.Graceful.metrics);
        ])
    ns;
  let n_max, last_report, last_sizes, last_metrics =
    match !last with Some x -> x | None -> invalid_arg "E7: empty ns"
  in
  let avg_first = List.nth (List.rev !avgs) 0 in
  let avg_last = List.hd !avgs in
  let lg = float_of_int (Common.log2i n_max) in
  let checks =
    [
      Report.check
        ~ok:(avg_last /. avg_first <= 1.25)
        (Printf.sprintf
           "average stretch flat in n: avg(n=%d)/avg(n=%d) <= 1.25" n_max
           (List.hd ns))
        (avg_last /. avg_first);
      Report.check ~bound:2.0
        ~ok:(last_report.Eval.avg_stretch <= 2.0)
        (Printf.sprintf "average stretch O(1): value at n=%d" n_max)
        last_report.Eval.avg_stretch;
      Report.check ~bound:lg
        ~ok:(last_report.Eval.max_stretch <= lg)
        (Printf.sprintf "max stretch <= log2 n at n=%d" n_max)
        last_report.Eval.max_stretch;
      Report.check ~bound:(lg ** 4.0)
        ~ok:(last_sizes.Stats.mean <= lg ** 4.0)
        (Printf.sprintf "mean words <= log2(n)^4 at n=%d" n_max)
        last_sizes.Stats.mean;
      Report.check ~ok:(!total_viol = 0) "distance underestimates, all n"
        (float_of_int !total_viol);
    ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t ];
    phases =
      [
        ( Printf.sprintf "graceful build (erdos-renyi, n=%d)" n_max,
          Common.report_phases last_metrics );
      ];
    round_profiles = [];
    verdict = Report.Reproduced;
  }
