lib/graph/apsp.mli: Ds_util Graph
