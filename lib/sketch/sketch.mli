(** Compact immutable sketch container, shared by every family.

    One flat layout serves all three families: an optional node-major
    pivot table (Thorup–Zwick only) plus per-node entry slices behind a
    cumulative offset table, each entry a [(node, dist)] pair with the
    node ids strictly increasing inside a slice. For [Tz] the entries
    are the bunch; for [Landmark] they are the per-node (landmark,
    exact dist) map merged over all [k·r] sets; for [Bottomk] they are
    the bottom-k all-distance sketch. The family tag dispatches the
    estimator: level scan with triangle estimates for [Tz], a
    merge-intersection [min d(u,w) + d(w,v)] over common entries for
    the other two.

    Queries are allocation-free (top-level tail recursions over plain
    ints — see the note in [lib/oracle/oracle.ml] about minor-heap
    stalls serialising batch domains), so this is the serving-path
    representation as well as the snapshot one. *)

type t = private {
  family : Family.t;
  n : int;
  k : int;  (** hierarchy depth (tz) / bottom-k parameter / iterations *)
  pivot_dist : int array;  (** [n·k] node-major for [Tz], empty otherwise *)
  pivot_node : int array;  (** aligned with [pivot_dist] *)
  off : int array;  (** [n+1] cumulative entry counts *)
  ent_node : int array;
      (** entry nodes, strictly increasing within each slice
          [off.(u) .. off.(u+1) - 1] *)
  ent_dist : int array;  (** distances aligned with [ent_node] *)
}

val of_tz_labels : Ds_core.Label.t array -> t
(** Compile a Thorup–Zwick label set (family [Tz]). Requires
    [labels.(i).owner = i] and a uniform [k]; raises
    [Invalid_argument] otherwise. *)

val v : family:Family.t -> k:int -> (int * int) array array -> t
(** [v ~family ~k entries] builds a non-TZ sketch from per-node
    [(node, dist)] entry arrays, each sorted strictly increasing by
    node id. Raises [Invalid_argument] on family [Tz] (use
    {!of_tz_labels}), an empty node set, unsorted/duplicate entries,
    out-of-range entry nodes, or negative distances. *)

val of_arrays :
  family:Family.t ->
  k:int ->
  pivot_dist:int array ->
  pivot_node:int array ->
  off:int array ->
  ent_node:int array ->
  ent_dist:int array ->
  t
(** Validating constructor over the flat arrays themselves — the
    snapshot-load path. Checks array-length coherence, offset
    monotonicity and per-slice entry order; raises [Invalid_argument]
    with a ["Sketch.of_arrays: …"] message on any violation. *)

val family : t -> Family.t
val n : t -> int
val k : t -> int

val size_words : t -> int
(** Total size in the paper's units: two words per pivot plus two
    words per entry. *)

val node_size_words : t -> int -> int
(** One node's share of {!size_words}. *)

val find : t -> int -> int -> int
(** [find t u w] is the entry distance of [w] in node [u]'s slice
    (bunch/landmark/ADS membership), [Ds_graph.Dist.infinity] when
    absent. One binary search. *)

val node_entries : t -> int -> (int * int) array
(** Fresh [(node, dist)] array of node [u]'s slice, in node-id order —
    test/debug accessor, allocates. *)

val estimate : t -> int -> int -> int
(** Family-dispatched point-to-point estimate; [Dist.infinity] when
    the sketches share no usable evidence. [Tz]: the Lemma 3.2 level
    scan (identical to the pre-platform [Oracle.query]). [Landmark] /
    [Bottomk]: min over common entries [w] of [d(u,w) + d(w,v)] —
    always an upper bound on the true distance, exact whenever some
    shortest-path vertex is a common entry. Raises [Invalid_argument]
    on out-of-range endpoints. *)

val estimate_bidirectional : t -> int -> int -> int
(** [Tz]: minimum triangle estimate over every level and both
    directions. Other families: same as {!estimate} (the
    merge-intersection is already symmetric and exhaustive). *)

val estimate_probes : t -> int -> int -> int * int
(** [(estimate, probes)] where [probes] counts array lookups (pivot
    loads plus binary-search or merge-scan comparisons) — the
    deterministic work measure experiment E8 uses. *)

val equal : t -> t -> bool
(** Structural equality of family, shape and all payload words. *)
