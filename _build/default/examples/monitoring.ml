(* Monitoring-overlay scenario: m monitor nodes are scattered over the
   network and every client must attach to its closest monitor (server
   selection). The stretch-3 slack sketches of Theorem 4.3 solve
   exactly this: the sketch of a node *is* its distance vector to the
   density net; here we use the monitors themselves as the "net", a
   single multi-source Bellman-Ford.

   Run with: dune exec examples/monitoring.exe *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Gen = Ds_graph.Gen
module Dijkstra = Ds_graph.Dijkstra
module Metrics = Ds_congest.Metrics
module Slack = Ds_core.Slack
module Multi_bf = Ds_congest.Multi_bf
module Dist = Ds_graph.Dist

let () =
  let n = 300 in
  let g =
    Gen.random_geometric ~rng:(Rng.create 21) ~n ~radius:0.12 ()
  in
  let monitors = [ 17; 59; 120; 188; 244; 299 ] in
  Printf.printf "Network of %d nodes, monitors at: %s\n" n
    (String.concat ", " (List.map string_of_int monitors));

  (* Every node learns its distance to every monitor in one
     multi-source Bellman-Ford (the slack-sketch construction with the
     monitor set as net). *)
  let found, metrics =
    Multi_bf.run g ~sources:monitors ~bound:(fun _ -> Dist.none)
  in
  Printf.printf "Construction: %d rounds, %d messages.\n"
    (Metrics.rounds metrics) (Metrics.messages metrics);

  (* Attach each client to its closest monitor; verify against exact
     distances. *)
  let exact =
    List.map (fun m -> (m, Dijkstra.sssp g ~src:m)) monitors
  in
  let wrong = ref 0 in
  let loads = Hashtbl.create 8 in
  Array.iteri
    (fun u entries ->
      let best =
        List.fold_left
          (fun acc (m, d) -> if Dist.lex_lt (d, m) acc then (d, m) else acc)
          Dist.none entries
      in
      let _, chosen = best in
      Hashtbl.replace loads chosen
        (1 + Option.value ~default:0 (Hashtbl.find_opt loads chosen));
      (* exact best *)
      let exact_best =
        List.fold_left
          (fun acc (m, dist) ->
            if Dist.lex_lt (dist.(u), m) acc then (dist.(u), m) else acc)
          Dist.none exact
      in
      if exact_best <> best then incr wrong)
    found;
  Printf.printf "Attachment errors vs exact: %d of %d.\n" !wrong n;
  Printf.printf "Monitor loads:\n";
  List.iter
    (fun m ->
      Printf.printf "  monitor %3d serves %3d clients\n" m
        (Option.value ~default:0 (Hashtbl.find_opt loads m)))
    monitors;

  (* The same machinery also answers client-to-client latency estimates
     through the closest monitor, stretch 3 for far pairs (Theorem
     4.3 with the monitor set as a coarse net). *)
  let sketches = Slack.build_centralized g ~net:monitors in
  let apsp = Ds_graph.Apsp.compute g in
  (* With only 6 monitors the net is coarse, so the Theorem 4.3
     guarantee applies to pairs that are far apart (the slack); close
     pairs get no bound. Report both. *)
  let eps = 0.3 in
  let worst_far = ref 0.0 and worst_all = ref 0.0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let d = Ds_graph.Apsp.dist apsp u v in
      if v <> u && d > 0 then begin
        let est = Slack.query sketches.(u) sketches.(v) in
        let s = float_of_int est /. float_of_int d in
        if s > !worst_all then worst_all := s;
        if Ds_core.Eval.is_far apsp ~eps u v && s > !worst_far then
          worst_far := s
      end
    done
  done;
  Printf.printf
    "Client-to-client estimates via monitors: worst stretch %.2f on \
     %.0f%%-far pairs (the slack guarantee), %.2f over all pairs (close \
     pairs are unbounded).\n"
    !worst_far (100.0 *. eps) !worst_all
