module Rng = Ds_util.Rng
module Apsp = Ds_graph.Apsp

let sample_probability ~n ~eps =
  if eps <= 0.0 || eps > 1.0 then invalid_arg "Density_net: eps out of (0,1]";
  min 1.0 (5.0 *. log (float_of_int n) /. (eps *. float_of_int n))

let sample ~rng ~n ~eps =
  let p = sample_probability ~n ~eps in
  let rec go attempts =
    if attempts > 1000 then failwith "Density_net.sample: empty net";
    let net = ref [] in
    for u = n - 1 downto 0 do
      if Rng.bool rng p then net := u :: !net
    done;
    if !net = [] then go (attempts + 1) else !net
  in
  go 0

let size_bound ~n ~eps = 10.0 /. eps *. log (float_of_int n)

let covering_radius apsp ~eps ~u =
  let n = Apsp.n apsp in
  let row = Array.init n (fun v -> Apsp.dist apsp u v) in
  Array.sort compare row;
  let need = int_of_float (ceil (eps *. float_of_int n)) in
  let need = max 1 (min n need) in
  (* row.(0) = d(u,u) = 0; the ball of radius row.(need-1) holds >= need
     nodes. *)
  row.(need - 1)

let is_valid_net apsp ~eps net =
  let n = Apsp.n apsp in
  let ok = ref true in
  for u = 0 to n - 1 do
    let r = covering_radius apsp ~eps ~u in
    let covered = List.exists (fun w -> Apsp.dist apsp u w <= r) net in
    if not covered then ok := false
  done;
  !ok
