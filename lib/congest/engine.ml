module Graph = Ds_graph.Graph
module Pool = Ds_parallel.Pool
module Rng = Ds_util.Rng
module Ivec = Ds_util.Ivec

(* The node-facing types are owned by [Superstep] — the contract both
   this backend and [Shard_engine] implement — and re-exported here
   with equations so existing [Engine.foo] references keep working. *)
type 'msg api = 'msg Superstep.api = {
  id : int;
  degree : int;
  neighbor_id : int -> int;
  neighbor_weight : int -> int;
  send : int -> 'msg -> unit;
  broadcast : 'msg -> unit;
  round : unit -> int;
}

module Inbox = Superstep.Inbox

type ('state, 'msg) protocol = ('state, 'msg) Superstep.protocol = {
  name : string;
  init : 'msg api -> 'state;
  on_round : 'msg api -> 'state -> 'msg Inbox.t -> unit;
  halted : 'state -> bool;
  msg_words : 'msg -> int;
  max_msg_words : int;
}

type stop_reason = Superstep.stop_reason =
  | Quiescent
  | All_halted
  | Round_limit

type jitter = { rng : Rng.t; max_delay : int }

(* Links are flattened: directed link [offsets.(u) + i] is u's i-th
   outgoing edge. Each link's FIFO is a growable ring: a power-of-two
   [q_msg.(l)] array with head/len cursors in flat int arrays. Without
   jitter every message is deliverable exactly one round after the
   push, and FIFO order means the head of a nonempty ring is always
   the oldest message, so no per-message ready round is stored at all;
   with jitter a parallel [q_ready.(l)] ring carries it. Either way a
   steady-state send writes an array slot and bumps two ints — zero
   minor words, where the previous plane allocated a queue cell and a
   boxed record per message.

   Delivery is sharded by destination node: node [u] belongs to chunk
   [u / chunk_div], and [active.(c)] holds exactly the nonempty links
   whose destination lies in chunk [c]. All of a node's incoming links
   live in one bucket, so each inbox has a single writer and the phase
   is race-free under any pool. Per-chunk scratch ([d_*], [recv_new])
   is reduced sequentially in chunk order, and each chunk's receivers
   are sorted before scheduling, so metrics and traces are
   bit-identical for every pool size. *)
type ('state, 'msg) t = {
  graph : Graph.t;
  protocol : ('state, 'msg) protocol;
  pool : Pool.t;
  jitter : jitter option;
  jitter_base : int;
  mutable apis : 'msg api array;
  mutable node_states : 'state array;
  offsets : int array; (* length n+1; prefix sums of out-degrees *)
  q_msg : 'msg array array; (* per link: ring of queued payloads *)
  q_ready : int array array; (* per link: ready rounds; jitter only *)
  q_head : int array; (* per link: ring read position *)
  q_len : int array; (* per link: queued message count *)
  link_dst : int array; (* destination node of each link *)
  link_rev : int array; (* index of the sender in dst's adjacency *)
  link_chunk : int array; (* delivery chunk of each link's destination *)
  link_pushes : int array; (* messages ever pushed; jitter hash input *)
  inboxes : 'msg Inbox.t array;
  (* Delivery sharding. [nchunks] equals the pool width; chunk [c]
     owns nodes [c * chunk_div, (c+1) * chunk_div). The [d_*] arrays
     are per-chunk counters written only by the chunk's owner during
     delivery; [recv_new.(c)] collects the chunk's nodes that received
     their first message this round. *)
  nchunks : int;
  chunk_div : int;
  active : Ivec.t array; (* per chunk: links with nonempty rings *)
  recv_new : Ivec.t array; (* per chunk: this round's receivers *)
  d_delivered : int array;
  d_words : int array;
  d_maxw : int array;
  activated : Ivec.t array; (* per node: own links that went 0 -> 1 *)
  enqueued : int array; (* per node: messages pushed this round *)
  push_backlog : int array; (* per node: max own-queue length at push *)
  (* Scheduling. [run_now] is the set of nodes stepped this round:
     last round's senders plus this round's receivers (or every node
     on a probe round, when nothing is in flight). [run_next]
     accumulates this round's senders. The [in_*] bytes are
     membership flags; lists and flags swap wholesale each round. *)
  mutable run_now : Ivec.t;
  mutable run_next : Ivec.t;
  mutable in_now : Bytes.t;
  mutable in_next : Bytes.t;
  (* Round bodies, preallocated once so the per-round loops close over
     nothing: a steady-state round must not allocate even one closure. *)
  mutable deliver_body : int -> int -> int -> unit;
  mutable compute_body : int -> unit;
  metrics : Metrics.t;
  tracer : Trace.t option;
  obs : Obs_hooks.t option;
  mutable round : int;
  mutable in_flight : int; (* total queued messages *)
  mutable sent_last_round : int;
  mutable round_backlog : int; (* traced: max link backlog this round *)
}

let graph t = t.graph
let metrics t = t.metrics
let states t = t.node_states
let state t u = t.node_states.(u)

(* Delivery goes parallel only past this many active links; below it
   the bucket loop runs inline on the caller, so quiet rounds skip the
   pool handshake entirely. Results are identical either way — the
   same per-bucket code runs in the same reduction order. *)
let par_threshold = 512

(* Bounded-asynchrony delay for the [seq]-th message on link [l]:
   a pure hash of the run's base seed and the message's coordinates.
   Unlike drawing from a shared RNG stream inside [send] (the previous
   scheme), the delay does not depend on the order nodes happen to
   execute in, so jittered runs are reproducible under any pool. *)
let link_delay t l seq =
  match t.jitter with
  | None -> 0
  | Some { max_delay; _ } ->
    if max_delay = 0 then 0
    else Rng.mix (t.jitter_base lxor Rng.mix ((l * 2654435761) + seq))
         mod (max_delay + 1)

let schedule_now t u =
  if Bytes.get t.in_now u = '\000' then begin
    Bytes.set t.in_now u '\001';
    Ivec.push t.run_now u
  end

(* Append [m] (ready at [ready]) to link [l]'s ring, growing by
   doubling when full — the copy-out restarts the ring at slot 0.
   Returns the new queue length. Growth is amortised away: once a ring
   reaches its high-water capacity, pushes write in place. *)
let push_msg t l m ready =
  let len = t.q_len.(l) in
  let cap = Array.length t.q_msg.(l) in
  if len = cap then begin
    let ncap = if cap = 0 then 4 else 2 * cap in
    let head = t.q_head.(l) in
    let ring = t.q_msg.(l) in
    let nring = Array.make ncap m in
    for i = 0 to len - 1 do
      nring.(i) <- ring.((head + i) land (cap - 1))
    done;
    t.q_msg.(l) <- nring;
    (match t.jitter with
    | Some _ ->
      let rdy = t.q_ready.(l) in
      let nrdy = Array.make ncap 0 in
      for i = 0 to len - 1 do
        nrdy.(i) <- rdy.((head + i) land (cap - 1))
      done;
      t.q_ready.(l) <- nrdy
    | None -> ());
    t.q_head.(l) <- 0
  end;
  let ring = t.q_msg.(l) in
  let pos = (t.q_head.(l) + len) land (Array.length ring - 1) in
  ring.(pos) <- m;
  (match t.jitter with
  | Some _ -> t.q_ready.(l).(pos) <- ready
  | None -> ());
  t.q_len.(l) <- len + 1;
  len + 1

(* Top-level recursion (not a local closure capturing [t]) so counting
   the worklist in the per-round gate allocates nothing. *)
let rec count_active_from t c acc =
  if c >= t.nchunks then acc
  else count_active_from t (c + 1) (acc + Ivec.length t.active.(c))

let count_active t = count_active_from t 0 0

(* Scan chunk [c]'s active links once: release each deliverable head
   into its destination inbox and compact drained links away in place
   (stable, so the relative order of any node's incoming links — and
   hence its inbox interleaving — is preserved). [jit] hoists the
   jitter test out of the loop; without jitter the head of a nonempty
   FIFO ring is always deliverable, so no ready round is ever read.
   Written as a tail-recursive loop over plain ints — a [ref]
   accumulator would heap-allocate in every round. *)
let rec scan_bucket t c act jit now idx nact kept =
  if idx >= nact then kept
  else begin
    let l = Ivec.get act idx in
    let head = t.q_head.(l) in
    let len =
      if jit && t.q_ready.(l).(head) > now then t.q_len.(l)
      else begin
        let ring = t.q_msg.(l) in
        let m = ring.(head) in
        t.q_head.(l) <- (head + 1) land (Array.length ring - 1);
        let len = t.q_len.(l) - 1 in
        t.q_len.(l) <- len;
        let v = t.link_dst.(l) in
        let inbox = t.inboxes.(v) in
        if Inbox.length inbox = 0 then Ivec.push t.recv_new.(c) v;
        Inbox.push inbox t.link_rev.(l) m;
        t.d_delivered.(c) <- t.d_delivered.(c) + 1;
        let w = t.protocol.msg_words m in
        t.d_words.(c) <- t.d_words.(c) + w;
        if w > t.d_maxw.(c) then t.d_maxw.(c) <- w;
        len
      end
    in
    let kept =
      if len > 0 then begin
        Ivec.set act kept l;
        kept + 1
      end
      else kept
    in
    scan_bucket t c act jit now (idx + 1) nact kept
  end

let deliver_bucket t c =
  t.d_delivered.(c) <- 0;
  t.d_words.(c) <- 0;
  t.d_maxw.(c) <- 0;
  let act = t.active.(c) in
  let nact = Ivec.length act in
  if nact > 0 then begin
    let jit = t.jitter <> None in
    let kept = scan_bucket t c act jit (t.round + 1) 0 nact 0 in
    Ivec.truncate act kept;
    (* Canonicalise each receiver's inbox (ascending sender neighbor
       index). Link-activation order — which the scan above preserves
       — depends on execution history; the canonical order does not,
       so inbox interleavings match [Shard_engine]'s byte for byte. *)
    let rn = t.recv_new.(c) in
    for i = 0 to Ivec.length rn - 1 do
      let v = Ivec.get rn i in
      Inbox.sort_by_from t.inboxes.(v)
        ~degree:(t.offsets.(v + 1) - t.offsets.(v))
    done
  end

let create ?(pool = Pool.sequential) ?jitter ?tracer ?obs g protocol =
  let n = Graph.n g in
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + Graph.degree g u
  done;
  let m2 = offsets.(n) in
  let nchunks = Pool.domains pool in
  let chunk_div = max 1 ((n + nchunks - 1) / nchunks) in
  let link_dst = Array.make (max 1 m2) 0 and link_rev = Array.make (max 1 m2) 0 in
  let link_chunk = Array.make (max 1 m2) 0 in
  for u = 0 to n - 1 do
    for i = 0 to Graph.degree g u - 1 do
      let v = Graph.neighbor_node g u i in
      link_dst.(offsets.(u) + i) <- v;
      link_rev.(offsets.(u) + i) <- Graph.neighbor_index g v u;
      link_chunk.(offsets.(u) + i) <- v / chunk_div
    done
  done;
  let t =
    {
      graph = g;
      protocol;
      pool;
      jitter;
      jitter_base =
        (match jitter with None -> 0 | Some { rng; _ } -> Rng.int rng max_int);
      apis = [||];
      node_states = [||];
      offsets;
      q_msg = Array.make (max 1 m2) [||];
      q_ready = Array.make (max 1 m2) [||];
      q_head = Array.make (max 1 m2) 0;
      q_len = Array.make (max 1 m2) 0;
      link_dst;
      link_rev;
      link_chunk;
      link_pushes = Array.make (max 1 m2) 0;
      inboxes = Array.init n (fun _ -> Inbox.create ());
      nchunks;
      chunk_div;
      active = Array.init nchunks (fun _ -> Ivec.create ());
      recv_new = Array.init nchunks (fun _ -> Ivec.create ());
      d_delivered = Array.make nchunks 0;
      d_words = Array.make nchunks 0;
      d_maxw = Array.make nchunks 0;
      activated = Array.init n (fun _ -> Ivec.create ~capacity:4 ());
      enqueued = Array.make n 0;
      push_backlog = Array.make n 0;
      run_now = Ivec.create ();
      run_next = Ivec.create ();
      in_now = Bytes.make n '\000';
      in_next = Bytes.make n '\000';
      deliver_body = (fun _ _ _ -> ());
      compute_body = ignore;
      metrics = Metrics.create ();
      tracer;
      obs = Obs_hooks.of_opt obs;
      round = 0;
      in_flight = 0;
      sent_last_round = 0;
      round_backlog = 0;
    }
  in
  t.deliver_body <-
    (fun _ lo hi ->
      for c = lo to hi - 1 do
        deliver_bucket t c
      done);
  t.compute_body <-
    (fun idx ->
      let u = Ivec.get t.run_now idx in
      let inbox = t.inboxes.(u) in
      t.protocol.on_round t.apis.(u) t.node_states.(u) inbox;
      Inbox.clear inbox);
  let make_api u =
    let deg = offsets.(u + 1) - offsets.(u) in
    let send i m =
      if protocol.msg_words m > protocol.max_msg_words then
        invalid_arg
          (Printf.sprintf "Engine(%s): message exceeds %d words" protocol.name
             protocol.max_msg_words);
      let l = t.offsets.(u) + i in
      let seq = t.link_pushes.(l) in
      t.link_pushes.(l) <- seq + 1;
      let len = push_msg t l m (t.round + 1 + link_delay t l seq) in
      if len = 1 then Ivec.push t.activated.(u) l;
      if len > t.push_backlog.(u) then t.push_backlog.(u) <- len;
      t.enqueued.(u) <- t.enqueued.(u) + 1
    in
    {
      id = u;
      degree = deg;
      neighbor_id = (fun i -> Graph.neighbor_node g u i);
      neighbor_weight = (fun i -> Graph.neighbor_weight_at g u i);
      send;
      broadcast =
        (fun m ->
          for i = 0 to deg - 1 do
            send i m
          done);
      round = (fun () -> t.round);
    }
  in
  (match tracer with
  | Some tr -> Trace.attach tr ~n ~domains:(Pool.domains pool)
  | None -> ());
  t.apis <- Array.init n make_api;
  t.node_states <- Array.init n (fun u -> protocol.init t.apis.(u));
  (* Absorb init-phase sends: count them, activate their links, and
     schedule the senders for round 1. *)
  for u = 0 to n - 1 do
    if t.enqueued.(u) > 0 then begin
      (match tracer with
      | Some tr -> Trace.count_send tr u t.enqueued.(u)
      | None -> ());
      t.in_flight <- t.in_flight + t.enqueued.(u);
      t.enqueued.(u) <- 0;
      Metrics.observe_backlog t.metrics t.push_backlog.(u);
      t.push_backlog.(u) <- 0;
      let av = t.activated.(u) in
      for k = 0 to Ivec.length av - 1 do
        let l = Ivec.get av k in
        Ivec.push t.active.(t.link_chunk.(l)) l
      done;
      Ivec.clear av;
      schedule_now t u
    end
  done;
  t

(* Delivery happens at the start of round (t.round + 1): each chunk's
   bucket is scanned — on the pool when enough links are active,
   inline otherwise — then the per-chunk scratch is reduced here,
   sequentially and in chunk order. Sorting each chunk's receivers
   makes the concatenation globally sorted (chunk [c] owns a node
   range below chunk [c+1]'s), so the run list, and with it every
   downstream order, is independent of how many chunks exist. *)
let deliver t =
  if t.nchunks > 1 && count_active t >= par_threshold then
    ignore (Pool.parallel_chunks t.pool ~n:t.nchunks t.deliver_body)
  else
    for c = 0 to t.nchunks - 1 do
      deliver_bucket t c
    done;
  let trc = t.tracer in
  let obs = t.obs in
  for c = 0 to t.nchunks - 1 do
    let rn = t.recv_new.(c) in
    if Ivec.length rn > 1 then Ivec.sort rn;
    for i = 0 to Ivec.length rn - 1 do
      let v = Ivec.get rn i in
      schedule_now t v;
      match trc with
      | Some tr -> Trace.count_recv tr v (Inbox.length t.inboxes.(v))
      | None -> ()
    done;
    Ivec.clear rn;
    Metrics.count_delivered t.metrics ~messages:t.d_delivered.(c)
      ~words:t.d_words.(c) ~max_msg_words:t.d_maxw.(c);
    (match obs with
    | Some o ->
      Ds_obs.Obs.add o.Obs_hooks.deliveries ~shard:c t.d_delivered.(c);
      Ds_obs.Obs.add o.Obs_hooks.words ~shard:c t.d_words.(c)
    | None -> ());
    t.in_flight <- t.in_flight - t.d_delivered.(c)
  done

let step t =
  (* With nothing in flight nobody can be woken by a message, so run
     every node once: this is the probe round [run] uses to detect
     quiescence, and it also lets protocols whose nodes start without
     sending (e.g. Multi_bf sources) bootstrap themselves. [run_now]
     is necessarily empty here — last round's senders imply in-flight
     messages. *)
  if t.in_flight = 0 then
    for u = 0 to Graph.n t.graph - 1 do
      schedule_now t u
    done;
  (* Telemetry pre-reads. All of it is gated on [t.tracer], an
     immutable field set at creation: an untraced engine pays only
     these branches — no clock reads, no allocation. *)
  let trc = t.tracer in
  let active_links = match trc with Some _ -> count_active t | None -> 0 in
  let pre_msgs =
    match trc with Some _ -> Metrics.messages t.metrics | None -> 0
  in
  let pre_words =
    match trc with Some _ -> Metrics.words t.metrics | None -> 0
  in
  let t0 = match trc with Some _ -> Trace.now_ns () | None -> 0 in
  deliver t;
  let t1 = match trc with Some _ -> Trace.now_ns () | None -> 0 in
  t.round <- t.round + 1;
  Metrics.tick_round t.metrics;
  let rl = t.run_now in
  (* Single-domain engines take the direct loop: same body, minus the
     dispatch checks and the indirect call per node. *)
  if t.nchunks = 1 then
    for idx = 0 to Ivec.length rl - 1 do
      let u = Ivec.get rl idx in
      let inbox = t.inboxes.(u) in
      t.protocol.on_round t.apis.(u) t.node_states.(u) inbox;
      Inbox.clear inbox
    done
  else Pool.parallel_for t.pool ~lo:0 ~hi:(Ivec.length rl) t.compute_body;
  let ran = Ivec.length rl in
  (* Sequentially absorb the round's sends from the per-node scratch:
     O(nodes that ran + links activated), independent of pool size and
     of node execution order, so parallel runs stay deterministic. *)
  t.sent_last_round <- 0;
  t.round_backlog <- 0;
  for i = 0 to Ivec.length rl - 1 do
    let u = Ivec.get rl i in
    Bytes.set t.in_now u '\000';
    if t.enqueued.(u) > 0 then begin
      t.sent_last_round <- t.sent_last_round + t.enqueued.(u);
      (match trc with
      | Some tr ->
        Trace.count_send tr u t.enqueued.(u);
        if t.push_backlog.(u) > t.round_backlog then
          t.round_backlog <- t.push_backlog.(u)
      | None -> ());
      t.enqueued.(u) <- 0;
      Metrics.observe_backlog t.metrics t.push_backlog.(u);
      t.push_backlog.(u) <- 0;
      let av = t.activated.(u) in
      for k = 0 to Ivec.length av - 1 do
        let l = Ivec.get av k in
        Ivec.push t.active.(t.link_chunk.(l)) l
      done;
      Ivec.clear av;
      if Bytes.get t.in_next u = '\000' then begin
        Bytes.set t.in_next u '\001';
        Ivec.push t.run_next u
      end
    end
  done;
  Ivec.clear rl;
  t.in_flight <- t.in_flight + t.sent_last_round;
  (* This round's senders become (part of) next round's run list. *)
  let tmp = t.run_now in
  t.run_now <- t.run_next;
  t.run_next <- tmp;
  let tmpf = t.in_now in
  t.in_now <- t.in_next;
  t.in_next <- tmpf;
  (* Obs end-of-round block: counter bump + two gauge stores, no
     clock reads — the instrumented round stays zero-alloc (pinned by
     the GC-regression test). *)
  (match t.obs with
  | None -> ()
  | Some o ->
    Ds_obs.Obs.incr o.Obs_hooks.rounds ~shard:0;
    Ds_obs.Obs.set o.Obs_hooks.backlog ~shard:0
      (Metrics.max_link_backlog t.metrics);
    Ds_obs.Obs.set o.Obs_hooks.busy ~shard:0 (Pool.chunks_for t.pool ran));
  match trc with
  | None -> ()
  | Some tr ->
    let t2 = Trace.now_ns () in
    Trace.record_round tr
      {
        Trace.round = t.round;
        active_nodes = ran;
        active_links;
        delivered = Metrics.messages t.metrics - pre_msgs;
        words = Metrics.words t.metrics - pre_words;
        in_flight = t.in_flight;
        link_backlog = t.round_backlog;
        delivery_ns = t1 - t0;
        compute_ns = t2 - t1;
        busy_domains = Pool.chunks_for t.pool ran;
      }

let quiescent t = t.in_flight = 0
let all_halted t = Array.for_all t.protocol.halted t.node_states

(* Backbone footprint in machine words: every flat int array, ring
   capacity and membership byte the plane owns. Message ring slots
   count one word each (the payload is an int pair or an immediate in
   every protocol here; boxed payloads add their own heap cost on
   top). Protocol state is the protocol's business and not counted. *)
let mem_words t =
  let words = ref 0 in
  let add n = words := !words + n in
  add (Array.length t.offsets);
  add (Array.length t.q_head);
  add (Array.length t.q_len);
  add (Array.length t.link_dst);
  add (Array.length t.link_rev);
  add (Array.length t.link_chunk);
  add (Array.length t.link_pushes);
  Array.iter (fun ring -> add (Array.length ring)) t.q_msg;
  Array.iter (fun rdy -> add (Array.length rdy)) t.q_ready;
  Array.iter (fun b -> add (Inbox.mem_words b)) t.inboxes;
  Array.iter (fun v -> add (Ivec.capacity v)) t.active;
  Array.iter (fun v -> add (Ivec.capacity v)) t.recv_new;
  Array.iter (fun v -> add (Ivec.capacity v)) t.activated;
  add (Array.length t.enqueued);
  add (Array.length t.push_backlog);
  add (Ivec.capacity t.run_now);
  add (Ivec.capacity t.run_next);
  add (2 * ((Bytes.length t.in_now + 7) / 8));
  !words

let run ?(max_rounds = 10_000_000) t =
  let rec go () =
    if all_halted t && t.in_flight = 0 then All_halted
    else if t.round >= max_rounds then Round_limit
    else begin
      let before_flight = t.in_flight in
      step t;
      if before_flight = 0 && t.in_flight = 0 then begin
        (* Nothing was in flight and the computation round produced no
           new messages: the system is quiescent. The probe round did
           no work, so it is not charged. *)
        Metrics.untick_round t.metrics;
        (match t.tracer with
        | Some tr -> Trace.drop_last tr
        | None -> ());
        (match t.obs with
        | Some o -> Ds_obs.Obs.add o.Obs_hooks.rounds ~shard:0 (-1)
        | None -> ());
        t.round <- t.round - 1;
        if all_halted t then All_halted else Quiescent
      end
      else go ()
    end
  in
  go ()
