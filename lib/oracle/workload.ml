module Rng = Ds_util.Rng

type kind = Uniform | Zipf of { alpha : float }

let name = function
  | Uniform -> "uniform"
  | Zipf { alpha } -> Printf.sprintf "zipf(%.2f)" alpha

let kind_of_string s =
  match String.lowercase_ascii s with
  | "uniform" -> Ok Uniform
  | "zipf" -> Ok (Zipf { alpha = 1.2 })
  | s when String.length s > 5 && String.sub s 0 5 = "zipf:" -> (
    match float_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some alpha when alpha > 0.0 -> Ok (Zipf { alpha })
    | _ -> Error (Printf.sprintf "bad zipf alpha in %S" s))
  | other -> Error (Printf.sprintf "unknown workload %S (uniform, zipf[:a])" other)

(* Inverse-CDF sampler over ranks 0..n-1 with weight (r+1)^-alpha, the
   ranks mapped through a seed-dependent permutation so the hot set is
   not always the low node ids. *)
let zipf_sampler ~rng ~n ~alpha =
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (float_of_int (r + 1) ** -.alpha);
    cum.(r) <- !acc
  done;
  let total = !acc in
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm;
  fun rng ->
    let x = Rng.float rng total in
    (* First rank whose cumulative weight exceeds x. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) > x then hi := mid else lo := mid + 1
    done;
    perm.(!lo)

let draw_of ~rng kind ~n =
  match kind with
  | Uniform -> fun rng -> Rng.int rng n
  | Zipf { alpha } -> zipf_sampler ~rng ~n ~alpha

let pairs ~rng kind ~n ~count =
  if n < 2 then invalid_arg "Workload.pairs: need n >= 2";
  if count < 0 then invalid_arg "Workload.pairs: negative count";
  let draw = draw_of ~rng kind ~n in
  Array.init count (fun _ ->
      let u = draw rng in
      let v0 = draw rng in
      (* Skewed draws collide often; resolve collisions with a uniform
         shift instead of a rejection loop, so one pair costs exactly
         two or three draws. *)
      let v = if v0 = u then (u + 1 + Rng.int rng (n - 1)) mod n else v0 in
      (u, v))

(* Same stream, flat layout: pair [i] is [(flat.(2i), flat.(2i+1))].
   This is what {!Oracle.query_batch_flat} wants — no tuple boxing on
   the serving path. Identical RNG consumption to {!pairs}, so the two
   layouts generate the same workload for a given seed. *)
let pairs_flat ~rng kind ~n ~count =
  if n < 2 then invalid_arg "Workload.pairs_flat: need n >= 2";
  if count < 0 then invalid_arg "Workload.pairs_flat: negative count";
  let draw = draw_of ~rng kind ~n in
  let flat = Array.make (max 1 (2 * count)) 0 in
  for i = 0 to count - 1 do
    let u = draw rng in
    let v0 = draw rng in
    let v = if v0 = u then (u + 1 + Rng.int rng (n - 1)) mod n else v0 in
    flat.(2 * i) <- u;
    flat.((2 * i) + 1) <- v
  done;
  if count = 0 then [||] else flat

(* Explicit pair files: one "u v" line per query, '#' comments and
   blank lines skipped. The escape hatch that lets head-to-head
   stretch comparisons (and CLI reruns) replay the exact same pair
   set instead of trusting seed discipline across processes. *)

let save_pairs path flat =
  if Array.length flat land 1 <> 0 then
    invalid_arg "Workload.save_pairs: odd-length flat array";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      for i = 0 to (Array.length flat / 2) - 1 do
        Printf.fprintf oc "%d %d\n" flat.(2 * i) flat.((2 * i) + 1)
      done)

let load_pairs ~n path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let acc = ref [] in
      let count = ref 0 in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let line = String.trim line in
           if line <> "" && line.[0] <> '#' then begin
             match String.split_on_char ' ' line |> List.filter (( <> ) "") with
             | [ us; vs ] -> (
               match (int_of_string_opt us, int_of_string_opt vs) with
               | Some u, Some v when u >= 0 && u < n && v >= 0 && v < n ->
                 acc := v :: u :: !acc;
                 incr count
               | _ ->
                 failwith
                   (Printf.sprintf
                      "%s:%d: bad pair %S (endpoints must be in [0, %d))" path
                      !lineno line n))
             | _ ->
               failwith
                 (Printf.sprintf "%s:%d: expected \"u v\", got %S" path !lineno
                    line)
           end
         done
       with End_of_file -> ());
      let flat = Array.make (max 1 (2 * !count)) 0 in
      List.iteri
        (fun i x -> flat.((2 * !count) - 1 - i) <- x)
        !acc;
      if !count = 0 then [||] else flat)
