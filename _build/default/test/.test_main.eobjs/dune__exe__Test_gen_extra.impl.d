test/test_gen_extra.ml: Alcotest Array Ds_core Ds_graph Ds_util Helpers List Printf String
