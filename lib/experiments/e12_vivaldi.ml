(** E12 — the paper's motivating comparison (Section 1): network
    coordinate systems "can easily be shown to exhibit poor behavior in
    pathological instances", while the sketches carry worst-case
    guarantees on every weighted graph.

    We embed each topology with Vivaldi (the canonical coordinate
    system) and query the same pairs with Thorup–Zwick sketches.
    Coordinates have no soundness: they underestimate (violations
    column) and their max stretch blows up on metrics that do not
    embed in low dimension (hypercube, star-ring); the sketches stay
    within 2k-1 everywhere by construction. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Apsp = Ds_graph.Apsp
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz = Ds_core.Tz_centralized
module Eval = Ds_core.Eval
module Vivaldi = Ds_baselines.Vivaldi

type params = { seed : int; n : int; k : int; dim : int }

let default = { seed = 12; n = 256; k = 3; dim = 3 }
let quick = { seed = 12; n = 64; k = 3; dim = 3 }

let id = "e12"
let title = "Vivaldi coordinates vs TZ sketches"
let claim_id = "Section 1 (motivation)"

let claim =
  "coordinate systems exhibit poor behaviour on pathological instances \
   and can underestimate; sketches carry worst-case guarantees on every \
   weighted graph"

let bound_expr = "TZ: `2k-1` max stretch, zero underestimates, every family"

let prose =
  "Vivaldi underestimates a large share of pairs (sketches: zero by \
   construction) and its max stretch explodes on metrics that do not \
   embed in low dimension, while TZ stays within its bound everywhere. \
   On the one genuinely low-dimensional family (geometric) Vivaldi is \
   competitive — which is exactly the paper's point: coordinates work \
   only when the metric is nearly Euclidean."

let run { seed; n; k; dim } =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E12: Vivaldi coordinates (dim=%d) vs TZ sketches (k=%d, bound \
            %d) — Section 1 motivation"
           dim k ((2 * k) - 1))
      ~headers:
        [
          "family"; "viv max"; "viv avg"; "viv underest%"; "tz max"; "tz avg";
          "tz underest%";
        ]
  in
  let tz_worst = ref 0.0 in
  let tz_viol = ref 0 in
  let viv_worst = ref 0.0 in
  let viv_underest_fams = ref 0 in
  let eval_family fname g =
    let apsp = Apsp.compute g in
    let gn = Ds_graph.Graph.n g in
    let vivaldi =
      Vivaldi.run ~rng:(Rng.create (seed + 1))
        ~config:{ Vivaldi.default_config with dim }
        g
        ~distance:(fun u v -> Apsp.dist apsp u v)
    in
    let levels = Levels.sample ~rng:(Rng.create (seed + 2)) ~n:gn ~k in
    let labels = Tz.build g ~levels in
    let viv = Eval.all_pairs ~query:(Vivaldi.estimate vivaldi) apsp in
    let tz =
      Eval.all_pairs ~query:(fun u v -> Label.query labels.(u) labels.(v)) apsp
    in
    tz_worst := max !tz_worst tz.Eval.max_stretch;
    tz_viol := !tz_viol + tz.Eval.violations;
    viv_worst := max !viv_worst viv.Eval.max_stretch;
    if viv.Eval.violations > 0 then incr viv_underest_fams;
    let pct r =
      100.0 *. float_of_int r.Eval.violations /. float_of_int (max 1 r.Eval.pairs)
    in
    Table.add_row t
      [
        fname;
        Table.cell_float ~decimals:2 viv.Eval.max_stretch;
        Table.cell_float ~decimals:2 viv.Eval.avg_stretch;
        Table.cell_float ~decimals:1 (pct viv);
        Table.cell_float ~decimals:2 tz.Eval.max_stretch;
        Table.cell_float ~decimals:2 tz.Eval.avg_stretch;
        Table.cell_float ~decimals:1 (pct tz);
      ]
  in
  List.iter
    (fun (fname, family) ->
      let rng = Rng.create seed in
      eval_family fname (Ds_graph.Gen.build ~rng family ~n))
    (Common.standard_families ~n);
  eval_family "hypercube"
    (Ds_graph.Gen.hypercube ~rng:(Rng.create seed)
       ~weights:Ds_graph.Gen.unit_weights ~dims:8 ());
  let checks =
    [
      Report.check
        ~bound:(float_of_int ((2 * k) - 1))
        ~ok:(!tz_worst <= float_of_int ((2 * k) - 1) +. 1e-9)
        "TZ max stretch across all families (within 2k-1)" !tz_worst;
      Report.check ~ok:(!tz_viol = 0) "TZ underestimates, all families"
        (float_of_int !tz_viol);
      Report.check ~ok:(!viv_underest_fams >= 1)
        "families where Vivaldi underestimates some pairs (>= 1)"
        (float_of_int !viv_underest_fams);
      Report.check
        ~bound:!tz_worst
        ~ok:(!viv_worst > !tz_worst)
        "Vivaldi worst max stretch exceeds TZ's worst" !viv_worst;
    ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t ];
    phases = [];
    round_profiles = [];
    verdict = Report.Informational;
  }
