(** Stretch and size evaluation against exact distances.

    Stretch of an estimate [d'] for true distance [d > 0] is [d'/d];
    a correct sketch never underestimates ([d' >= d]). For slack
    sketches the guarantee is restricted to ordered pairs [(u,v)]
    where [v] is ε-far from [u] (at least [εn] nodes are closer to
    [u] than [v] is). *)

type report = {
  pairs : int;
  violations : int;  (** estimates below the true distance (must be 0) *)
  unreachable : int;  (** infinite estimates (must be 0 for full sketches) *)
  max_stretch : float;
  avg_stretch : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val pp_report : Format.formatter -> report -> unit

val on_pairs : query:(int -> int -> int) -> (int * int * int) array -> report
(** [(u, v, true-distance)] triples; pairs at distance 0 are skipped. *)

val all_pairs : query:(int -> int -> int) -> Ds_graph.Apsp.t -> report

val sampled_pairs :
  rng:Ds_util.Rng.t -> query:(int -> int -> int) -> Ds_graph.Apsp.t ->
  count:int -> report

val far_pairs :
  Ds_graph.Apsp.t -> eps:float -> (int * int * int) array
(** All ordered pairs [(u, v, d(u,v))] with [v] ε-far from [u]. *)

val is_far : Ds_graph.Apsp.t -> eps:float -> int -> int -> bool

val size_summary : ('a -> int) -> 'a array -> Ds_util.Stats.summary
(** Summary of sketch sizes in words. *)
