(* The report layer is what [report --check] byte-compares in CI, so
   these tests pin the exact rendered bytes of a fixed result set
   (golden tests) and the write -> check round trip on the quick
   profile. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Json = Ds_util.Json
module Registry = Ds_experiments.Registry

let fixed_result () =
  let t = Table.create ~title:"toy table" ~headers:[ "n"; "value" ] in
  Table.add_row t [ "4"; "2.50" ];
  Table.add_row t [ "8"; "3.00" ];
  {
    Report.id = "e99";
    title = "toy experiment";
    claim_id = "Lemma 0.0";
    claim = "a toy claim";
    bound_expr = "`n` words";
    prose = "Hand-written prose.";
    checks =
      [
        Report.check ~bound:4.0 ~ok:true "mean words" 2.5;
        Report.check ~ok:true "violations" 0.0;
      ];
    tables = [ t ];
    phases =
      [
        ( "toy run",
          [ { Report.name = "setup"; rounds = 3; messages = 12; words = 24 } ]
        );
      ];
    round_profiles =
      [
        ( "toy run",
          {
            Report.rounds = 3;
            peak_messages = 7;
            peak_messages_round = 2;
            peak_active_links = 5;
            peak_active_links_round = 1;
            peak_in_flight = 6;
            peak_in_flight_round = 2;
            max_link_backlog = 2;
          } );
      ];
    verdict = Report.Reproduced;
  }

let golden_markdown =
  "# Header\n\n\
   ## E99 — toy experiment\n\n\
   **Claim (Lemma 0.0).** a toy claim\n\n\
   **Constant-1 bound.** `n` words\n\n\
   Hand-written prose.\n\n\
   | measurement | measured | bound (c=1) | measured/bound | ok |\n\
   | --- | --- | --- | --- | --- |\n\
   | mean words | 2.5 | 4 | 0.625 | yes |\n\
   | violations | 0 | — | — | yes |\n\n\
   ### toy table\n\n\
   | n | value |\n\
   | --- | --- |\n\
   | 4 | 2.50 |\n\
   | 8 | 3.00 |\n\n\
   ### CONGEST phase breakdown — toy run\n\n\
   | phase | rounds | messages | words |\n\
   | --- | --- | --- | --- |\n\
   | setup | 3 | 12 | 24 |\n\n\
   ### Per-round congestion profile — toy run\n\n\
   | congestion measure | peak | at round (of total) |\n\
   | --- | --- | --- |\n\
   | messages delivered / round | 7 | 2 / 3 |\n\
   | active links | 5 | 1 / 3 |\n\
   | messages in flight | 6 | 2 / 3 |\n\
   | max link backlog | 2 | — |\n\n\
   **Verdict: reproduced.**\n"

let test_markdown_golden () =
  let got = Report.markdown ~preamble:"# Header" [ fixed_result () ] in
  Alcotest.(check string) "markdown bytes" golden_markdown got

let golden_json =
  "{\n\
  \  \"schema_version\": 2,\n\
  \  \"generator\": \"distsketch report\",\n\
  \  \"profile\": \"test\",\n\
  \  \"experiments\": [\n\
  \    {\n\
  \      \"id\": \"e99\",\n\
  \      \"title\": \"toy experiment\",\n\
  \      \"claim_id\": \"Lemma 0.0\",\n\
  \      \"claim\": \"a toy claim\",\n\
  \      \"bound_expr\": \"`n` words\",\n\
  \      \"verdict\": \"reproduced\",\n\
  \      \"caveat\": null,\n\
  \      \"all_ok\": true,\n\
  \      \"checks\": [\n\
  \        {\n\
  \          \"label\": \"mean words\",\n\
  \          \"measured\": 2.5,\n\
  \          \"bound\": 4.0,\n\
  \          \"ratio\": 0.625,\n\
  \          \"ok\": true\n\
  \        },\n\
  \        {\n\
  \          \"label\": \"violations\",\n\
  \          \"measured\": 0.0,\n\
  \          \"bound\": null,\n\
  \          \"ratio\": null,\n\
  \          \"ok\": true\n\
  \        }\n\
  \      ],\n\
  \      \"tables\": [\n\
  \        {\n\
  \          \"title\": \"toy table\",\n\
  \          \"headers\": [\n\
  \            \"n\",\n\
  \            \"value\"\n\
  \          ],\n\
  \          \"rows\": [\n\
  \            [\n\
  \              \"4\",\n\
  \              \"2.50\"\n\
  \            ],\n\
  \            [\n\
  \              \"8\",\n\
  \              \"3.00\"\n\
  \            ]\n\
  \          ]\n\
  \        }\n\
  \      ],\n\
  \      \"phases\": [\n\
  \        {\n\
  \          \"run\": \"toy run\",\n\
  \          \"phases\": [\n\
  \            {\n\
  \              \"name\": \"setup\",\n\
  \              \"rounds\": 3,\n\
  \              \"messages\": 12,\n\
  \              \"words\": 24\n\
  \            }\n\
  \          ]\n\
  \        }\n\
  \      ],\n\
  \      \"round_profiles\": [\n\
  \        {\n\
  \          \"run\": \"toy run\",\n\
  \          \"profile\": {\n\
  \            \"rounds\": 3,\n\
  \            \"peak_messages\": 7,\n\
  \            \"peak_messages_round\": 2,\n\
  \            \"peak_active_links\": 5,\n\
  \            \"peak_active_links_round\": 1,\n\
  \            \"peak_in_flight\": 6,\n\
  \            \"peak_in_flight_round\": 2,\n\
  \            \"max_link_backlog\": 2\n\
  \          }\n\
  \        }\n\
  \      ]\n\
  \    }\n\
  \  ]\n\
   }\n"

let test_json_golden () =
  let got =
    Json.to_string (Report.to_json ~profile:"test" [ fixed_result () ])
  in
  Alcotest.(check string) "json bytes" golden_json got

let test_json_float_repr () =
  Alcotest.(check string) "integral" "3.0" (Json.float_repr 3.0);
  Alcotest.(check string) "fraction" "0.625" (Json.float_repr 0.625);
  Alcotest.(check string) "nan" "null" (Json.float_repr Float.nan);
  Alcotest.(check string) "inf" "null" (Json.float_repr Float.infinity);
  Alcotest.(check string) "escape" "a\\\"b\\nc" (Json.escape "a\"b\nc")

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh
    && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  nn = 0 || go 0

let test_failed_check_verdict () =
  let r =
    {
      (fixed_result ()) with
      Report.checks = [ Report.check ~ok:false "broken" 1.0 ];
    }
  in
  let md = Report.markdown ~preamble:"x" [ r ] in
  Alcotest.(check bool) "NOT verdict present" true
    (contains md "**Verdict: NOT reproduced — 1 check(s) failed.**")

(* Write the quick-profile artifacts to a temp dir, then check them:
   the round trip must succeed byte-for-byte, and corrupting one
   number must be reported with its line. *)
let test_round_trip () =
  let dir = Filename.temp_file "ds_report" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let paths = Registry.write_files ~profile:Registry.Quick ~dir () in
      Alcotest.(check int) "two files" 2 (List.length paths);
      (match Registry.check_files ~profile:Registry.Quick ~dir () with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "fresh round trip failed: %s" msg);
      (* corrupt one digit of the markdown *)
      let md_path = Filename.concat dir Registry.md_file in
      let ic = open_in_bin md_path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let i =
        let rec find i =
          if i >= String.length s then
            Alcotest.fail "no digit found to corrupt"
          else
            match s.[i] with '0' .. '8' -> i | _ -> find (i + 1)
        in
        find 0
      in
      let corrupted =
        String.mapi
          (fun j c -> if j = i then Char.chr (Char.code c + 1) else c)
          s
      in
      let oc = open_out_bin md_path in
      output_string oc corrupted;
      close_out oc;
      match Registry.check_files ~profile:Registry.Quick ~dir () with
      | Ok () -> Alcotest.fail "corruption not detected"
      | Error msg ->
        Alcotest.(check bool) "names the file" true
          (contains msg Registry.md_file))

let test_registry_metadata () =
  Alcotest.(check int) "fifteen experiments" 15 (List.length Registry.all);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s id well-formed" e.Registry.id)
        true
        (String.length e.Registry.id >= 2 && e.Registry.id.[0] = 'e');
      Alcotest.(check bool)
        (Printf.sprintf "%s has claim_id" e.Registry.id)
        true
        (String.length e.Registry.claim_id > 0))
    Registry.all;
  Alcotest.(check bool) "find e1" true (Registry.find "e1" <> None);
  Alcotest.(check bool) "find bogus" true (Registry.find "e99" = None)

let suite =
  [
    Alcotest.test_case "markdown golden" `Quick test_markdown_golden;
    Alcotest.test_case "json golden" `Quick test_json_golden;
    Alcotest.test_case "json float repr" `Quick test_json_float_repr;
    Alcotest.test_case "failed check flips verdict" `Quick
      test_failed_check_verdict;
    Alcotest.test_case "registry metadata" `Quick test_registry_metadata;
    Alcotest.test_case "write/check round trip (quick)" `Slow test_round_trip;
  ]
