(** The sketch families the platform can build and serve.

    Every family shares one contract: a distributed build via
    {!Ds_congest.Plane.run} on either backend, the flat-word label
    layout of {!Sketch.t}, a point-to-point estimator, and
    [size_words] in the paper's units. The family tag travels in the
    snapshot header (format v2) and dispatches the estimator at query
    time. *)

type t =
  | Tz  (** Thorup–Zwick pivot/bunch labels — the source paper. *)
  | Landmark
      (** Das Sarma et al. 2010 random landmarks: [r = ⌊log2 n⌋]
          exponentially-sized sets per iteration, [k] iterations. *)
  | Bottomk
      (** Cohen-style rank-ordered bottom-k all-distance sketches. *)

val name : t -> string
(** ["tz"] / ["landmark"] / ["bottomk"] — the CLI's [--sketch] values
    and the snapshot header tag. *)

val of_string : string -> (t, string) result
(** Inverse of {!name} (case-insensitive; accepts alias
    ["bottom-k"]). *)

val all : t list
(** Every family, in sweep order. *)
