test/test_cdg_parts.ml: Alcotest Array Ds_congest Ds_core Ds_graph Ds_util Helpers List Printf
