module Table = Ds_util.Table

type entry = {
  id : string;
  title : string;
  claim : string;
  run : unit -> Table.t list;
}

let all =
  [
    {
      id = "e1";
      title = "sketch size vs k";
      claim = "Lemma 3.1 / Theorem 1.1: O(k n^{1/k}) words";
      run = (fun () -> E1_size.run E1_size.default);
    };
    {
      id = "e2";
      title = "stretch vs k";
      claim = "Lemma 3.2: d <= estimate <= (2k-1) d";
      run = (fun () -> E2_stretch.run E2_stretch.default);
    };
    {
      id = "e3";
      title = "construction rounds/messages";
      claim = "Theorem 1.1: O(k n^{1/k} S log n) rounds";
      run = (fun () -> E3_complexity.run E3_complexity.default);
    };
    {
      id = "e4";
      title = "termination-detection overhead";
      claim = "Section 3.3: constant-factor overhead";
      run = (fun () -> E4_termination.run E4_termination.default);
    };
    {
      id = "e5";
      title = "density nets + stretch-3 slack sketches";
      claim = "Lemma 4.2 + Theorem 4.3";
      run = (fun () -> E5_slack.run E5_slack.default);
    };
    {
      id = "e6";
      title = "(eps,k)-CDG sketches";
      claim = "Theorems 1.2 / 4.6: stretch 8k-1 with eps-slack";
      run = (fun () -> E6_cdg.run E6_cdg.default);
    };
    {
      id = "e7";
      title = "gracefully degrading sketches";
      claim = "Theorem 1.3: O(log n) stretch, O(1) average stretch";
      run = (fun () -> E7_graceful.run E7_graceful.default);
    };
    {
      id = "e8";
      title = "query cost vs on-demand computation";
      claim = "Section 2.1: O(D) vs Omega(S) per query";
      run = (fun () -> E8_query_cost.run E8_query_cost.default);
    };
    {
      id = "e9";
      title = "query ablations";
      claim = "design choices (not a paper claim)";
      run = (fun () -> E9_ablation.run E9_ablation.default);
    };
    {
      id = "e10";
      title = "echo TZ under bounded asynchrony";
      claim = "extension: the paper's future-work model";
      run = (fun () -> E10_async.run E10_async.default);
    };
    {
      id = "e11";
      title = "TZ spanner for free";
      claim = "extension: (2k-1)-spanner with O(k n^{1+1/k}) edges";
      run = (fun () -> E11_spanner.run E11_spanner.default);
    };
    {
      id = "e12";
      title = "Vivaldi coordinates vs TZ sketches";
      claim = "Section 1: coordinate systems lack worst-case guarantees";
      run = (fun () -> E12_vivaldi.run E12_vivaldi.default);
    };
    {
      id = "e13";
      title = "brute-force APSP vs sketches";
      claim = "Section 1: quadratic storage is the strawman";
      run = (fun () -> E13_brute_force.run E13_brute_force.default);
    };
    {
      id = "e14";
      title = "scheduler backlog vs Lemma 3.7";
      claim = "Lemma 3.7: pending queue <= bunch slice, O(n^{1/k} log n)";
      run = (fun () -> E14_backlog.run E14_backlog.default);
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_one ?csv_dir e =
  Printf.printf "### %s — %s\n    reproduces: %s\n\n" e.id e.title e.claim;
  List.iter
    (fun t ->
      Table.print t;
      (match csv_dir with
      | Some dir ->
        let path = Table.save_csv t ~dir in
        Printf.printf "(csv: %s)\n" path
      | None -> ());
      print_newline ())
    (e.run ())

let run_all ?csv_dir () = List.iter (run_one ?csv_dir) all
