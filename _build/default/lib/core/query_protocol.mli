(** In-network distance queries by sketch exchange (paper Section 2.1).

    After preprocessing, node [u] answers "how far is [v]?" by fetching
    [v]'s sketch: a REQUEST floods the BFS tree (O(D) rounds, O(n)
    messages — in deployments where [u] can contact [v] directly, e.g.
    knows its IP, this discovery step disappears); [v] then streams its
    label back along the request path, two words per round, pipelined.
    Total: O(D + |L(v)|) rounds, which experiment E8 compares against
    the Omega(S) cost of an on-demand computation. *)

type result = {
  estimate : int;  (** [Label.query labels.(u) labels.(v)] *)
  rounds : int;  (** rounds of the in-network exchange *)
  messages : int;
  metrics : Ds_congest.Metrics.t;
}

val query :
  ?pool:Ds_parallel.Pool.t -> Ds_graph.Graph.t ->
  tree:Ds_congest.Setup.result -> labels:Label.t array -> u:int -> v:int ->
  result
(** One end-to-end query from [u] for the distance to [v]. *)
