lib/experiments/registry.mli: Ds_util
