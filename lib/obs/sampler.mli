(** Fixed-interval time-series snapshots of an {!Obs} registry.

    Built for the serve loop: worker 0 calls {!tick} between request
    blocks with the clock value the block already read, so the
    not-yet-due path is one int compare — no clock read, no
    allocation, nothing the GC-regression test can see. A due tick
    reduces the registry into a {!point} (cumulative counters and
    gauges, the p99 read from the block-latency histogram, GC minor
    words and RSS) stored in a fixed-capacity ring; when the ring
    wraps, the oldest points are dropped and counted.

    Because points hold {e cumulative} counters, any two consecutive
    points yield rates by subtraction, and the final forced
    {!sample} — taken after the worker pool joins, so quiesced and
    exact — must agree with the run's own accounting. That is the
    reconciliation invariant CI asserts against [oracle-serve/1]. *)

type t

type point = {
  seq : int;  (** sample index since {!start}, 0-based *)
  elapsed_ns : int;  (** monotonic time since {!start} *)
  counters : (string * int) list;  (** cumulative, sorted by name *)
  gauges : (string * int) list;  (** sorted by name *)
  p99_block_ns : int;
      (** histogram p99 of [serve.block_ns] at sample time; [0] when
          that histogram is not registered *)
  minor_words : float;  (** [Gc.quick_stat] minor words, cumulative *)
  rss_kb : int;  (** {!Ds_util.Mem.rss_kb_or_zero} *)
}

val create : ?capacity:int -> ?interval_ms:int -> Obs.t -> t
(** [capacity] (default 4096) bounds the ring; [interval_ms] (default
    100) the sampling period. Registers the [gc.minor_words] and
    [mem.rss_kb] gauges on the registry. Raises [Invalid_argument]
    when either is non-positive. *)

val obs : t -> Obs.t
val interval_ms : t -> int

val now_ns : unit -> int
(** Monotonic clock in integer nanoseconds — the currency {!start},
    {!tick} and {!sample} speak, chosen over [float]/[Int64] so
    passing timestamps through the hot path never boxes. *)

val start : t -> now_ns:int -> unit
(** Set the epoch and arm the first deadline. Until [start] is
    called every {!tick} is a no-op. *)

val tick : t -> int -> unit
(** [tick t now_ns] samples iff the interval has elapsed; otherwise
    a single int compare. The next deadline is scheduled from the
    actual sample time, so a stall never causes a catch-up burst. *)

val sample : t -> int -> unit
(** Force a sample now, regardless of the deadline — the final
    quiesced snapshot after workers join. *)

val points : t -> point list
(** Points still in the ring, oldest first. *)

val dropped : t -> int
(** Points lost to ring wrap-around. *)

val doc :
  ?sampler:t -> ?meta:(string * Ds_util.Json.t) list -> Obs.t -> Ds_util.Json.t
(** The [obs/1] JSON document (see docs/ARTIFACTS.md): [schema],
    [shards], [interval_ms] (0 without a sampler), caller [meta], the
    registry's [final] snapshot (counters/gauges/histograms with
    approximate percentiles and non-empty [\[upper, count\]] bucket
    pairs), the sampler's [points] with per-point [derived] series
    (QPS, hit rate, p99 block latency, queue depth, minor words/s,
    RSS) computed from consecutive cumulative points, and
    [dropped_points]. Without [?sampler], [points] is empty — the
    build-side dump. *)
