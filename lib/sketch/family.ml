type t = Tz | Landmark | Bottomk

let name = function Tz -> "tz" | Landmark -> "landmark" | Bottomk -> "bottomk"

let of_string s =
  match String.lowercase_ascii s with
  | "tz" -> Ok Tz
  | "landmark" -> Ok Landmark
  | "bottomk" | "bottom-k" -> Ok Bottomk
  | other ->
    Error
      (Printf.sprintf "unknown sketch family %S (tz, landmark, bottomk)" other)

let all = [ Tz; Landmark; Bottomk ]
