(** Das Sarma et al. (2010) random-landmark distance sketches.

    [r = max(1, ⌊log₂ n⌋)] landmark sets per iteration, sizes
    [min(2^j, n)] for [j = 0..r-1], repeated for [k] independent
    iterations — [k·r] sets total, all sampled up-front from a single
    [Rng.create seed] stream so the choice is identical on every
    backend. For each set one {!Ds_congest.Super_bf} run (the virtual
    super-node Bellman–Ford, Algorithm 1) teaches every node its
    closest landmark in the set and the exact distance; a node's
    sketch is the min-merged (landmark, distance) map over all sets.

    Two sketches estimate [d(u,v)] as the minimum of
    [d(u,ℓ) + d(ℓ,v)] over common landmarks [ℓ] — an upper bound
    (entry distances are exact), exact whenever some vertex on a true
    shortest [u–v] path is a common landmark of both. The size-[2^j]
    sweep is what makes a near-midpoint landmark likely at every
    distance scale. *)

val r : n:int -> int
(** [max 1 ⌊log₂ n⌋] — sets per iteration. *)

val sets : n:int -> k:int -> seed:int -> int array array
(** The [k·r] sampled landmark sets, in build order (iteration-major),
    each sorted increasing — exposed so tests and docs can name the
    exact sets a seed produces. *)

type result = {
  sketch : Sketch.t;  (** family {!Family.Landmark} *)
  metrics : Ds_congest.Metrics.t;
      (** sum over the [k·r] super-BF runs; one ["super-bf"] phase
          each *)
}

val run :
  ?backend:Ds_congest.Plane.backend ->
  ?pool:Ds_parallel.Pool.t ->
  ?shards:int ->
  ?tracer:Ds_congest.Trace.t ->
  ?obs:Ds_obs.Obs.t ->
  Ds_graph.Graph.t ->
  k:int ->
  seed:int ->
  result
(** Build the sketches. Deterministic in [(g, k, seed)]:
    byte-identical on either backend at any domain/shard count. *)

val reference : Ds_graph.Graph.t -> k:int -> seed:int -> (int * int) array array
(** Sequential specification over the same {!sets}: per set a
    centralized multi-source Dijkstra (same lex tie-break as
    [Super_bf]), min-merged per node. Returns per-node
    [(landmark, dist)] arrays sorted by node id — exactly the entry
    arrays of [run]'s sketch. *)
