let sssp g ~src =
  let n = Graph.n g in
  let dist = Array.make n Dist.infinity in
  dist.(src) <- 0;
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed do
    changed := false;
    incr sweeps;
    for u = 0 to n - 1 do
      if Dist.is_finite dist.(u) then
        Graph.iter_neighbors g u (fun v w ->
            if dist.(u) + w < dist.(v) then begin
              dist.(v) <- dist.(u) + w;
              changed := true
            end)
    done
  done;
  (dist, !sweeps - 1)
