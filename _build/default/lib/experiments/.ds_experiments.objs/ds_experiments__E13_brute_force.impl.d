lib/experiments/e13_brute_force.ml: Common Ds_congest Ds_core Ds_graph Ds_util Fun List Printf
