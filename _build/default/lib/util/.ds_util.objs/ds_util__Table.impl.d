lib/util/table.ml: Array Buffer Char Filename List Printf String Sys
