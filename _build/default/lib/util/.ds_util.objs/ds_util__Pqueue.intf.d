lib/util/pqueue.mli:
