(** One build entry point for every sketch family.

    [run] dispatches on {!Family.t} and normalises the three builders
    to a single result shape, so the CLI, experiments and bench drive
    any family through the same call: [Tz] samples a hierarchy with
    [Rng.create (seed + 1)] (the established CLI convention, kept so
    [--sketch tz] reproduces historical snapshots bit-for-bit) and
    runs {!Ds_core.Tz_distributed}; [Landmark] and [Bottomk] run the
    protocols of this library with the seed as given. All three are
    deterministic in [(g, k, seed)] and byte-identical across
    backends and domain/shard counts. *)

type result = {
  sketch : Sketch.t;
  metrics : Ds_congest.Metrics.t;
  mem_words : int;
      (** plane backbone footprint; 0 for [Landmark], whose
          [Super_bf] primitive does not report it *)
}

val run :
  ?backend:Ds_congest.Plane.backend ->
  ?pool:Ds_parallel.Pool.t ->
  ?shards:int ->
  ?tracer:Ds_congest.Trace.t ->
  ?obs:Ds_obs.Obs.t ->
  family:Family.t ->
  Ds_graph.Graph.t ->
  k:int ->
  seed:int ->
  result
