test/test_engine_extra.ml: Alcotest Ds_congest Ds_graph Ds_util Fun List QCheck QCheck_alcotest
