(** E12 — the paper's motivating comparison (Section 1): network
    coordinate systems "can easily be shown to exhibit poor behavior in
    pathological instances", while the sketches carry worst-case
    guarantees on every weighted graph.

    We embed each topology with Vivaldi (the canonical coordinate
    system) and query the same pairs with Thorup–Zwick sketches.
    Coordinates have no soundness: they underestimate (violations
    column) and their max stretch blows up on metrics that do not
    embed in low dimension (hypercube, star-ring); the sketches stay
    within 2k-1 everywhere by construction. *)

module Table = Ds_util.Table
module Rng = Ds_util.Rng
module Apsp = Ds_graph.Apsp
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz = Ds_core.Tz_centralized
module Eval = Ds_core.Eval
module Vivaldi = Ds_baselines.Vivaldi

type params = { seed : int; n : int; k : int; dim : int }

let default = { seed = 12; n = 256; k = 3; dim = 3 }

let run { seed; n; k; dim } =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E12: Vivaldi coordinates (dim=%d) vs TZ sketches (k=%d, bound \
            %d) — Section 1 motivation"
           dim k ((2 * k) - 1))
      ~headers:
        [
          "family"; "viv max"; "viv avg"; "viv underest%"; "tz max"; "tz avg";
          "tz underest%";
        ]
  in
  let eval_family fname g =
    let apsp = Apsp.compute g in
    let gn = Ds_graph.Graph.n g in
    let vivaldi =
      Vivaldi.run ~rng:(Rng.create (seed + 1))
        ~config:{ Vivaldi.default_config with dim }
        g
        ~distance:(fun u v -> Apsp.dist apsp u v)
    in
    let levels = Levels.sample ~rng:(Rng.create (seed + 2)) ~n:gn ~k in
    let labels = Tz.build g ~levels in
    let viv = Eval.all_pairs ~query:(Vivaldi.estimate vivaldi) apsp in
    let tz =
      Eval.all_pairs ~query:(fun u v -> Label.query labels.(u) labels.(v)) apsp
    in
    let pct r =
      100.0 *. float_of_int r.Eval.violations /. float_of_int (max 1 r.Eval.pairs)
    in
    Table.add_row t
      [
        fname;
        Table.cell_float ~decimals:2 viv.Eval.max_stretch;
        Table.cell_float ~decimals:2 viv.Eval.avg_stretch;
        Table.cell_float ~decimals:1 (pct viv);
        Table.cell_float ~decimals:2 tz.Eval.max_stretch;
        Table.cell_float ~decimals:2 tz.Eval.avg_stretch;
        Table.cell_float ~decimals:1 (pct tz);
      ]
  in
  List.iter
    (fun (fname, family) ->
      let rng = Rng.create seed in
      eval_family fname (Ds_graph.Gen.build ~rng family ~n))
    (Common.standard_families ~n);
  eval_family "hypercube"
    (Ds_graph.Gen.hypercube ~rng:(Rng.create seed)
       ~weights:Ds_graph.Gen.unit_weights ~dims:8 ());
  [ t ]
