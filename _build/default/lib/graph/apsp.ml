module Rng = Ds_util.Rng

type t = { n : int; rows : int array array }

let compute g =
  let n = Graph.n g in
  { n; rows = Array.init n (fun src -> Dijkstra.sssp g ~src) }

let dist t u v = t.rows.(u).(v)

let n t = t.n

let iter_pairs t f =
  for u = 0 to t.n - 1 do
    for v = u + 1 to t.n - 1 do
      f u v t.rows.(u).(v)
    done
  done

let sample_pairs ~rng t ~count =
  Array.init count (fun _ ->
      let u = Rng.int rng t.n in
      let v =
        let v = Rng.int rng (t.n - 1) in
        if v >= u then v + 1 else v
      in
      (u, v, t.rows.(u).(v)))
