lib/experiments/e11_spanner.ml: Common Ds_core Ds_graph Ds_util List Printf
