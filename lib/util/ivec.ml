type t = { mutable a : int array; mutable len : int }

let create ?(capacity = 16) () = { a = Array.make (max 1 capacity) 0; len = 0 }

let length t = t.len
let capacity t = Array.length t.a
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ivec.get";
  t.a.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Ivec.set";
  t.a.(i) <- x

let push t x =
  let cap = Array.length t.a in
  if t.len = cap then begin
    let b = Array.make (2 * cap) 0 in
    Array.blit t.a 0 b 0 t.len;
    t.a <- b
  end;
  t.a.(t.len) <- x;
  t.len <- t.len + 1

let clear t = t.len <- 0

let truncate t len =
  if len < 0 || len > t.len then invalid_arg "Ivec.truncate";
  t.len <- len

let append dst src =
  let n = src.len in
  if n > 0 then begin
    let need = dst.len + n in
    let cap = Array.length dst.a in
    if need > cap then begin
      let ncap = ref (max 1 cap) in
      while !ncap < need do
        ncap := 2 * !ncap
      done;
      let b = Array.make !ncap 0 in
      Array.blit dst.a 0 b 0 dst.len;
      dst.a <- b
    end;
    Array.blit src.a 0 dst.a dst.len n;
    dst.len <- need
  end

(* In-place ascending sort of the live prefix: insertion sort for short
   runs, heapsort above that. Both are allocation-free (int arguments,
   no refs, no comparator closure) — the engine's per-round receiver
   canonicalisation uses this and must keep steady-state rounds at
   zero minor words, which Array.sort's boxed comparator would break. *)
let rec insert_back a j x =
  if j >= 0 && a.(j) > x then begin
    a.(j + 1) <- a.(j);
    insert_back a (j - 1) x
  end
  else a.(j + 1) <- x

let rec sift_down a root last =
  let child = (2 * root) + 1 in
  if child <= last then begin
    let c =
      if child + 1 <= last && a.(child + 1) > a.(child) then child + 1
      else child
    in
    if a.(c) > a.(root) then begin
      let tmp = a.(c) in
      a.(c) <- a.(root);
      a.(root) <- tmp;
      sift_down a c last
    end
  end

let sort t =
  let a = t.a and n = t.len in
  if n > 1 then
    if n <= 32 then
      for i = 1 to n - 1 do
        insert_back a (i - 1) a.(i)
      done
    else begin
      for root = (n - 2) / 2 downto 0 do
        sift_down a root (n - 1)
      done;
      for last = n - 1 downto 1 do
        let tmp = a.(0) in
        a.(0) <- a.(last);
        a.(last) <- tmp;
        sift_down a 0 (last - 1)
      done
    end

let iter f t =
  for i = 0 to t.len - 1 do
    f t.a.(i)
  done

let to_list t = List.init t.len (fun i -> t.a.(i))
