lib/experiments/e12_vivaldi.ml: Array Common Ds_baselines Ds_core Ds_graph Ds_util List Printf
