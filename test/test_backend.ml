(* The two-backend contract: a protocol run is a pure function of
   (graph, protocol) — the congest engine and the MPC-style sharded
   engine produce byte-identical states and metrics, for every pool
   size and every shard count. The canonical inbox order (ascending
   sender index, unique per round) is what pins the interleavings. *)

module Rng = Ds_util.Rng
module Ivec = Ds_util.Ivec
module Graph = Ds_graph.Graph
module Gen = Ds_graph.Gen
module Plane = Ds_congest.Plane
module Superstep = Ds_congest.Superstep
module Metrics = Ds_congest.Metrics
module Multi_bf = Ds_congest.Multi_bf
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz = Ds_core.Tz_distributed
module Slack = Ds_core.Slack
module Cdg = Ds_core.Cdg
module Pool = Ds_parallel.Pool

let check_metrics_equal name a b =
  Alcotest.(check int) (name ^ " rounds") (Metrics.rounds a) (Metrics.rounds b);
  Alcotest.(check int)
    (name ^ " messages")
    (Metrics.messages a) (Metrics.messages b);
  Alcotest.(check int) (name ^ " words") (Metrics.words a) (Metrics.words b);
  Alcotest.(check int)
    (name ^ " backlog")
    (Metrics.max_link_backlog a)
    (Metrics.max_link_backlog b)

let labels_equal name a b =
  Alcotest.(check int) (name ^ " label count") (Array.length a) (Array.length b);
  Array.iteri
    (fun u la ->
      Alcotest.(check bool)
        (Printf.sprintf "%s label %d" name u)
        true (Label.equal la b.(u)))
    a

let graph seed n = Gen.erdos_renyi ~rng:(Rng.create seed) ~n ~avg_degree:5.0 ()

(* One congest reference run per construction, then the sharded
   backend across pool sizes: results must match the reference bit for
   bit. Domain counts beyond the host's core count still run (chunks
   just queue), so the matrix is stable on any machine. *)
let domain_matrix = [ 1; 2; 4; 8 ]

let test_tz_cross_backend () =
  let g = graph 301 120 in
  let levels = Levels.sample ~rng:(Rng.create 302) ~n:(Graph.n g) ~k:3 in
  let ref_r = Tz.build ~backend:Plane.Congest g ~levels in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains @@ fun pool ->
      let r = Tz.build ~backend:Plane.Sharded ~pool g ~levels in
      let name = Printf.sprintf "tz d=%d" domains in
      labels_equal name ref_r.Tz.labels r.Tz.labels;
      check_metrics_equal name ref_r.Tz.metrics r.Tz.metrics;
      Alcotest.(check int)
        (name ^ " max_pending")
        ref_r.Tz.max_pending r.Tz.max_pending)
    domain_matrix

let test_slack_cross_backend () =
  let g = graph 303 140 in
  let ref_r =
    Slack.build_distributed ~backend:Plane.Congest ~rng:(Rng.create 304) g
      ~eps:0.25
  in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains @@ fun pool ->
      let r =
        Slack.build_distributed ~backend:Plane.Sharded ~pool
          ~rng:(Rng.create 304) g ~eps:0.25
      in
      let name = Printf.sprintf "slack d=%d" domains in
      Alcotest.(check bool)
        (name ^ " sketches")
        true
        (ref_r.Slack.sketches = r.Slack.sketches);
      Alcotest.(check bool) (name ^ " net") true (ref_r.Slack.net = r.Slack.net);
      check_metrics_equal name ref_r.Slack.metrics r.Slack.metrics)
    domain_matrix

let test_cdg_cross_backend () =
  let g = graph 305 130 in
  let ref_r =
    Cdg.build_distributed ~backend:Plane.Congest ~rng:(Rng.create 306) g
      ~eps:0.3 ~k:2
  in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains @@ fun pool ->
      let r =
        Cdg.build_distributed ~backend:Plane.Sharded ~pool
          ~rng:(Rng.create 306) g ~eps:0.3 ~k:2
      in
      let name = Printf.sprintf "cdg d=%d" domains in
      Array.iteri
        (fun u (s : Cdg.sketch) ->
          let s' = r.Cdg.sketches.(u) in
          Alcotest.(check int) (name ^ " nearest") s.Cdg.nearest s'.Cdg.nearest;
          Alcotest.(check int)
            (name ^ " nearest_dist")
            s.Cdg.nearest_dist s'.Cdg.nearest_dist;
          Alcotest.(check bool)
            (name ^ " net_label")
            true
            (Label.equal s.Cdg.net_label s'.Cdg.net_label);
          Alcotest.(check bool)
            (name ^ " own_label")
            true
            (Label.equal s.Cdg.own_label s'.Cdg.own_label))
        ref_r.Cdg.sketches;
      check_metrics_equal name ref_r.Cdg.metrics r.Cdg.metrics)
    domain_matrix

(* Shard count is an execution knob, not a semantic one: any shard
   count on any pool produces the reference run. *)
let test_shard_count_invariant () =
  let g = graph 307 90 in
  let levels = Levels.sample ~rng:(Rng.create 308) ~n:(Graph.n g) ~k:2 in
  let ref_r = Tz.build ~backend:Plane.Congest g ~levels in
  Pool.with_pool ~domains:3 @@ fun pool ->
  List.iter
    (fun shards ->
      let r = Tz.build ~backend:Plane.Sharded ~pool ~shards g ~levels in
      let name = Printf.sprintf "shards=%d" shards in
      labels_equal name ref_r.Tz.labels r.Tz.labels;
      check_metrics_equal name ref_r.Tz.metrics r.Tz.metrics)
    [ 1; 2; 3; 7; 90; 500 ]

let test_codec_roundtrip () =
  let w = Ivec.create ~capacity:8 () in
  List.iter
    (fun (src, dist) ->
      Ivec.clear w;
      Multi_bf.codec.Superstep.encode w (src, dist);
      Alcotest.(check (pair int int))
        "multi-bf codec" (src, dist)
        (Multi_bf.codec.Superstep.decode w 0))
    [ (0, 0); (17, 42); (99_999, max_int / 2); (1, 1) ]

(* Messages whose physical width differs per constructor share one
   batch; decode must consume exactly what encode pushed. Run a
   protocol that mixes 1-, 2- and 3-word messages (super-bf) through
   the sharded plane and pin it to congest. *)
let test_variable_width_messages () =
  let g = graph 309 80 in
  let sources = [ 0; 40 ] in
  let ref_r, ref_m =
    Ds_congest.Super_bf.run ~backend:Plane.Congest g ~sources
  in
  Pool.with_pool ~domains:4 @@ fun pool ->
  let r, m = Ds_congest.Super_bf.run ~backend:Plane.Sharded ~pool g ~sources in
  Alcotest.(check (array int)) "dist" ref_r.Ds_congest.Super_bf.dist
    r.Ds_congest.Super_bf.dist;
  Alcotest.(check (array int)) "parent" ref_r.Ds_congest.Super_bf.parent
    r.Ds_congest.Super_bf.parent;
  check_metrics_equal "super-bf" ref_m m

(* The audited word budget of the message-plane backbone (DESIGN.md
   "Sharded build plane"): at most 48 words per directed link plus 32
   words per node, on either backend. Checked at n = 10^5 — the scale
   the sharded plane exists for — with a streaming sparse graph and an
   unrestricted 4-source flood (rings at their high-water mark). *)
let test_memory_budget_at_scale () =
  let n = 100_000 in
  let g = Gen.streaming_sparse ~rng:(Rng.create 310) ~n ~avg_degree:8.0 () in
  let directed_links = 2 * Graph.m g in
  let budget = (48 * directed_links) + (32 * n) in
  let sources = [ 0; n / 3; n / 2; (2 * n) / 3 ] in
  let src_set = Array.make n false in
  List.iter (fun s -> src_set.(s) <- true) sources;
  Pool.with_pool ~domains:2 @@ fun pool ->
  List.iter
    (fun backend ->
      let r =
        Plane.run ~backend ~pool ~codec:Multi_bf.codec g
          (Multi_bf.protocol
             ~is_source:(fun u -> src_set.(u))
             ~bound:(fun _ -> Ds_graph.Dist.none))
      in
      (match r.Plane.stop with
      | Superstep.Quiescent | Superstep.All_halted -> ()
      | Superstep.Round_limit -> Alcotest.fail "round limit");
      let name = Plane.backend_name backend in
      Alcotest.(check bool)
        (Printf.sprintf "%s plane fits budget (%d <= %d)" name
           r.Plane.mem_words budget)
        true
        (r.Plane.mem_words <= budget))
    Plane.backends

let suite =
  [
    Alcotest.test_case "tz congest = sharded across pools" `Quick
      test_tz_cross_backend;
    Alcotest.test_case "slack congest = sharded across pools" `Quick
      test_slack_cross_backend;
    Alcotest.test_case "cdg congest = sharded across pools" `Quick
      test_cdg_cross_backend;
    Alcotest.test_case "shard count invariant" `Quick
      test_shard_count_invariant;
    Alcotest.test_case "multi-bf codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "variable-width messages cross-backend" `Quick
      test_variable_width_messages;
    Alcotest.test_case "memory budget at n=1e5" `Slow
      test_memory_budget_at_scale;
  ]
