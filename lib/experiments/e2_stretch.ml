(** E2 — Lemma 3.2: query stretch vs k, all pairs.

    Paper claim: d(u,v) <= estimate <= (2k-1) d(u,v). The measured
    maximum must respect the bound; typical stretch is far below it. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Levels = Ds_core.Levels
module Tz = Ds_core.Tz_centralized
module Label = Ds_core.Label
module Eval = Ds_core.Eval

type params = { n : int; seed : int; ks : int list; families : bool }

let default = { n = 300; seed = 2; ks = [ 1; 2; 3; 4; 6 ]; families = true }
let quick = { n = 100; seed = 2; ks = [ 1; 2; 3 ]; families = false }

let id = "e2"
let title = "stretch vs k"
let claim_id = "Lemma 3.2"
let claim = "d(u,v) <= estimate <= (2k-1) d(u,v) for every pair"
let bound_expr = "`2k-1` multiplicative stretch; never an underestimate"

let prose =
  "Every pair on every family respects both inequalities — zero \
   violations anywhere (the test suite also checks the property on \
   random instances). The bound binds tightly at k = 2 and is \
   increasingly loose at larger k, as the worst-case analysis \
   predicts; average stretch stays a small constant at every k >= 2."

let run ?pool { n; seed; ks; families } =
  let fams =
    if families then Common.standard_families ~n
    else [ List.hd (Common.standard_families ~n) ]
  in
  let checks = ref [] in
  let tables =
    List.map
      (fun (fname, family) ->
        let w = Common.make_workload ?pool ~seed ~family ~n () in
        let t =
          Table.create
            ~title:
              (Printf.sprintf
                 "E2: stretch vs k on %s (n=%d, all pairs) — Lemma 3.2" fname
                 (Ds_graph.Graph.n w.Common.graph))
            ~headers:
              [ "k"; "bound 2k-1"; "max"; "avg"; "p99"; "violations"; "ok" ]
        in
        let worst_ratio = ref 0.0 in
        let total_viol = ref 0 in
        List.iter
          (fun k ->
            let levels =
              Levels.sample
                ~rng:(Rng.create (seed + (31 * k)))
                ~n:(Ds_graph.Graph.n w.Common.graph)
                ~k
            in
            let labels = Tz.build w.Common.graph ~levels in
            let report =
              Eval.all_pairs
                ~query:(fun u v -> Label.query labels.(u) labels.(v))
                w.Common.apsp
            in
            let bound = float_of_int ((2 * k) - 1) in
            let ok =
              report.Eval.violations = 0
              && report.Eval.max_stretch <= bound +. 1e-9
            in
            worst_ratio := max !worst_ratio (report.Eval.max_stretch /. bound);
            total_viol := !total_viol + report.Eval.violations;
            Table.add_row t
              ([ Table.cell_int k; Table.cell_int ((2 * k) - 1) ]
              @ [
                  Table.cell_float ~decimals:3 report.Eval.max_stretch;
                  Table.cell_float ~decimals:3 report.Eval.avg_stretch;
                  Table.cell_float ~decimals:3 report.Eval.p99;
                  Table.cell_int report.Eval.violations;
                  (if ok then "yes" else "NO");
                ]))
          ks;
        checks :=
          Report.check ~ok:(!total_viol = 0)
            (Printf.sprintf "distance underestimates, all pairs all k (%s)"
               fname)
            (float_of_int !total_viol)
          :: Report.check ~bound:1.0
               ~ok:(!worst_ratio <= 1.0 +. 1e-9)
               (Printf.sprintf "max stretch / (2k-1), worst k (%s)" fname)
               !worst_ratio
          :: !checks;
        t)
      fams
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks = List.rev !checks;
    tables;
    phases = [];
    round_profiles = [];
    verdict = Report.Reproduced;
  }
