lib/core/eval.mli: Ds_graph Ds_util Format
