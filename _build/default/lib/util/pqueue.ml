type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  { keys = Array.make (max 1 capacity) 0; vals = [||]; len = 0 }

let is_empty t = t.len = 0
let size t = t.len

let grow t v =
  let cap = Array.length t.keys in
  if t.len = cap then begin
    let keys = Array.make (2 * cap) 0 in
    Array.blit t.keys 0 keys 0 t.len;
    t.keys <- keys;
    let vals = Array.make (2 * cap) v in
    Array.blit t.vals 0 vals 0 t.len;
    t.vals <- vals
  end;
  if Array.length t.vals = 0 then t.vals <- Array.make (Array.length t.keys) v

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if t.keys.(p) > t.keys.(i) then begin
      swap t p i;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.keys.(l) < t.keys.(!smallest) then smallest := l;
  if r < t.len && t.keys.(r) < t.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t key v =
  grow t v;
  t.keys.(t.len) <- key;
  t.vals.(t.len) <- v;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let min_elt t = if t.len = 0 then None else Some (t.keys.(0), t.vals.(0))

let pop_min t =
  if t.len = 0 then None
  else begin
    let k = t.keys.(0) and v = t.vals.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.keys.(0) <- t.keys.(t.len);
      t.vals.(0) <- t.vals.(t.len);
      sift_down t 0
    end;
    Some (k, v)
  end

let clear t = t.len <- 0
