(* The serving subsystem: snapshot store byte-stability and error
   handling, compact-oracle query equivalence against the hashtable
   labels, batch determinism under every pool size, and the synthetic
   workload generators. *)

module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Levels = Ds_core.Levels
module Label = Ds_core.Label
module Tz_centralized = Ds_core.Tz_centralized
module Store = Ds_oracle.Sketch_store
module Oracle = Ds_oracle.Oracle
module Workload = Ds_oracle.Workload
module Pool = Ds_parallel.Pool
module Sketch = Ds_sketch.Sketch
module Family = Ds_sketch.Family
module Sketch_build = Ds_sketch.Build

let labels_for ?(seed = 7) g k =
  let n = Graph.n g in
  let levels = Levels.sample ~rng:(Rng.create seed) ~n ~k in
  Tz_centralized.build g ~levels

let suite_stores () =
  List.map
    (fun (name, g) ->
      (name, g, Store.of_labels ~seed:91 ~graph_family:name (labels_for g 3)))
    (Helpers.graph_suite 91)

(* ---- snapshot store ---- *)

let test_store_roundtrip_bytes () =
  List.iter
    (fun (name, _, store) ->
      let b1 = Store.to_bytes store in
      let reloaded = Store.of_bytes b1 in
      let b2 = Store.to_bytes reloaded in
      Alcotest.(check bool)
        (Printf.sprintf "%s: save -> load -> save is byte-identical" name)
        true (String.equal b1 b2);
      Alcotest.(check int)
        (Printf.sprintf "%s: meta n" name)
        store.Store.meta.Store.n reloaded.Store.meta.Store.n;
      Alcotest.(check int)
        (Printf.sprintf "%s: meta k" name)
        store.Store.meta.Store.k reloaded.Store.meta.Store.k;
      Alcotest.(check int)
        (Printf.sprintf "%s: meta seed" name)
        store.Store.meta.Store.seed reloaded.Store.meta.Store.seed;
      Alcotest.(check string)
        (Printf.sprintf "%s: meta graph family" name)
        store.Store.meta.Store.graph_family
        reloaded.Store.meta.Store.graph_family;
      Alcotest.(check string)
        (Printf.sprintf "%s: meta sketch family" name)
        (Family.name store.Store.meta.Store.sketch_family)
        (Family.name reloaded.Store.meta.Store.sketch_family);
      Alcotest.(check bool)
        (Printf.sprintf "%s: sketch survives round-trip" name)
        true
        (Sketch.equal store.Store.sketch reloaded.Store.sketch))
    (suite_stores ())

let test_store_file_roundtrip () =
  let _, _, store = List.hd (suite_stores ()) in
  let path = Filename.temp_file "distsketch" ".dsk" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.save path store;
      let reloaded = Store.load path in
      Alcotest.(check bool)
        "file round-trip is byte-identical" true
        (String.equal (Store.to_bytes store) (Store.to_bytes reloaded)))

let check_store_error ~name ~substring bytes =
  match Store.of_bytes bytes with
  | _ -> Alcotest.failf "%s: expected Sketch_store.Error" name
  | exception Store.Error msg ->
    let found =
      let sl = String.length substring and ml = String.length msg in
      let rec scan i = i + sl <= ml && (String.sub msg i sl = substring || scan (i + 1)) in
      scan 0
    in
    if not found then
      Alcotest.failf "%s: error %S does not mention %S" name msg substring

let test_store_malformed () =
  let _, _, store = List.hd (suite_stores ()) in
  let good = Store.to_bytes store in
  check_store_error ~name:"empty" ~substring:"truncated" "";
  check_store_error ~name:"bad magic" ~substring:"magic"
    ("NOTADSKS" ^ String.sub good 8 (String.length good - 8));
  (let b = Bytes.of_string good in
   Bytes.set_int64_le b 8 99L;
   check_store_error ~name:"wrong version" ~substring:"version"
     (Bytes.to_string b));
  check_store_error ~name:"truncated body" ~substring:"truncated"
    (String.sub good 0 (String.length good - 10));
  check_store_error ~name:"truncated header" ~substring:"truncated"
    (String.sub good 0 20);
  (let b = Bytes.of_string good in
   (* Flip one payload byte in the pivot section: the checksum must
      catch it. *)
   let at = String.length good / 2 in
   Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xff));
   check_store_error ~name:"flipped byte" ~substring:"checksum"
     (Bytes.to_string b));
  (let b = Bytes.of_string good in
   (* Garbage appended: the declared sizes no longer match. *)
   check_store_error ~name:"oversized" ~substring:"oversized"
     (Bytes.to_string b ^ "trailing-garbage"))

let test_store_validation () =
  let g = Helpers.random_graph ~seed:5 20 in
  let labels = labels_for g 2 in
  Alcotest.check_raises "empty label set"
    (Invalid_argument "Sketch_store.of_labels: empty label set") (fun () ->
      ignore (Store.of_labels [||]));
  let swapped = Array.copy labels in
  swapped.(0) <- labels.(1);
  (match Store.of_labels swapped with
  | _ -> Alcotest.fail "owner mismatch accepted"
  | exception Invalid_argument _ -> ())

(* v2 snapshots carry any sketch family: round-trip landmark and
   bottom-k stores the same way the tz suite above does, checking the
   family tag and the sketch payload both survive. *)
let test_store_v2_all_families () =
  let g = Helpers.random_graph ~seed:23 40 in
  List.iter
    (fun family ->
      let built = Sketch_build.run ~family g ~k:3 ~seed:23 in
      let store =
        Store.v ~seed:23 ~graph_family:"random" built.Sketch_build.sketch
      in
      let name = Family.name family in
      let reloaded = Store.of_bytes (Store.to_bytes store) in
      Alcotest.(check string)
        (Printf.sprintf "%s: sketch family survives" name)
        name
        (Family.name reloaded.Store.meta.Store.sketch_family);
      Alcotest.(check string)
        (Printf.sprintf "%s: graph family survives" name)
        "random" reloaded.Store.meta.Store.graph_family;
      Alcotest.(check bool)
        (Printf.sprintf "%s: sketch survives" name)
        true
        (Sketch.equal store.Store.sketch reloaded.Store.sketch);
      Alcotest.(check bool)
        (Printf.sprintf "%s: re-serialization byte-identical" name)
        true
        (String.equal (Store.to_bytes store) (Store.to_bytes reloaded)))
    Family.all

(* A pre-platform (v1) snapshot must still load: same sketch, family
   mapped to [graph_family], sketch family pinned to tz. And rewriting
   it through the v2 writer must round-trip from there. *)
let test_store_v1_compat () =
  let _, _, store = List.hd (suite_stores ()) in
  let v1 = Store.to_bytes_v1 store in
  let from_v1 = Store.of_bytes v1 in
  Alcotest.(check string)
    "v1 family reads back as graph_family"
    store.Store.meta.Store.graph_family from_v1.Store.meta.Store.graph_family;
  Alcotest.(check string)
    "v1 sketch family is tz" "tz"
    (Family.name from_v1.Store.meta.Store.sketch_family);
  Alcotest.(check bool)
    "v1 sketch payload identical" true
    (Sketch.equal store.Store.sketch from_v1.Store.sketch);
  (* v1 -> v2 rewrite: serializing the loaded store emits v2 bytes
     identical to serializing the original. *)
  Alcotest.(check bool)
    "v1 -> v2 rewrite is byte-identical" true
    (String.equal (Store.to_bytes store) (Store.to_bytes from_v1));
  (* Only tz has a v1 layout. *)
  let g = Helpers.random_graph ~seed:29 20 in
  let built = Sketch_build.run ~family:Family.Bottomk g ~k:2 ~seed:29 in
  let bk = Store.v ~seed:29 built.Sketch_build.sketch in
  match Store.to_bytes_v1 bk with
  | _ -> Alcotest.fail "v1 writer accepted a non-tz store"
  | exception Invalid_argument _ -> ()

(* ---- mapped snapshots ---- *)

let with_temp_snapshot bytes f =
  let path = Filename.temp_file "distsketch" ".dsk" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      f path)

let check_mmap_error ~name ~substring bytes =
  with_temp_snapshot bytes (fun path ->
      match Store.load ~mode:Store.Mmap path with
      | _ -> Alcotest.failf "%s: expected Sketch_store.Error" name
      | exception Store.Error msg ->
        let found =
          let sl = String.length substring and ml = String.length msg in
          let rec scan i =
            i + sl <= ml && (String.sub msg i sl = substring || scan (i + 1))
          in
          scan 0
        in
        if not found then
          Alcotest.failf "%s: error %S does not mention %S" name msg substring)

(* The mapped loader must reject every malformed input the heap loader
   rejects — with a structured [Error], never a crash or silent
   garbage — plus the mmap-only failure modes: a file whose length is
   not a word multiple, and pre-v3 layouts that cannot be mapped. *)
let test_store_mmap_malformed () =
  let _, _, store = List.hd (suite_stores ()) in
  let good = Store.to_bytes store in
  let len = String.length good in
  check_mmap_error ~name:"empty" ~substring:"truncated" "";
  check_mmap_error ~name:"tiny" ~substring:"truncated" "DSSKETCH";
  check_mmap_error ~name:"bad magic" ~substring:"magic"
    ("NOTADSKS" ^ String.sub good 8 (len - 8));
  (* Chopping 4 bytes breaks 8-byte alignment before anything else. *)
  check_mmap_error ~name:"misaligned" ~substring:"multiple of 8"
    (String.sub good 0 (len - 4));
  (* Chopping a whole word keeps alignment but breaks the size
     arithmetic. *)
  check_mmap_error ~name:"short one word" ~substring:"truncated"
    (String.sub good 0 (len - 8));
  check_mmap_error ~name:"oversized" ~substring:"oversized"
    (good ^ String.make 8 'x');
  (* v1/v2 layouts have unaligned sections; the mapped loader must
     refuse them with upgrade advice rather than serve garbage. *)
  check_mmap_error ~name:"v2 via mmap" ~substring:"predates"
    (Store.to_bytes_v2 store);
  check_mmap_error ~name:"v1 via mmap" ~substring:"predates"
    (Store.to_bytes_v1 store);
  (* A flipped header byte fails the O(1) header checksum. *)
  (let b = Bytes.of_string good in
   Bytes.set_int64_le b 32 0x4242424242424242L;
   check_mmap_error ~name:"header flip" ~substring:"header checksum"
     (Bytes.to_string b));
  (* A corrupted offset table is the one section a mapped query
     indexes through, so [of_mapped] validates it in full. Locate it
     from the section arithmetic: everything between the header and
     the sections is fixed-width, so the header length falls out of
     the file size. *)
  (let sk = store.Store.sketch in
   let n = Sketch.n sk in
   let words =
     n + 1 + (2 * Sketch.pivot_pairs sk) + (2 * Sketch.total_entries sk)
   in
   let header_bytes = len - (8 * words) - 8 in
   let b = Bytes.of_string good in
   Bytes.set_int64_le b (header_bytes + 8)
     (Int64.of_int (Sketch.total_entries sk + 1000));
   check_mmap_error ~name:"corrupt off table" ~substring:"corrupt snapshot"
     (Bytes.to_string b))

(* Property: for every family x graph, the mapped oracle is
   indistinguishable from the heap one — same sketch, byte-identical
   answers on every query path, byte-stable re-serialization — and
   the mapping is visible only through [load_mode]/[mapped_bytes]. *)
let test_store_mmap_matches_heap () =
  let stores =
    List.map (fun (name, g, s) -> ("tz/" ^ name, g, s)) (suite_stores ())
    @ List.concat_map
        (fun (name, g) ->
          List.map
            (fun family ->
              let built = Sketch_build.run ~family g ~k:3 ~seed:53 in
              ( Family.name family ^ "/" ^ name,
                g,
                Store.v ~seed:53 ~graph_family:name built.Sketch_build.sketch
              ))
            Family.all)
        [ ("random", Helpers.random_graph ~seed:53 48) ]
  in
  List.iter
    (fun (name, g, store) ->
      let n = Graph.n g in
      with_temp_snapshot (Store.to_bytes store) (fun path ->
          let heap = Store.load ~mode:Store.Heap path in
          let mapped = Store.load ~mode:Store.Mmap path in
          Alcotest.(check string)
            (name ^ ": load_mode") "mmap"
            (Store.mode_name mapped.Store.load_mode);
          Alcotest.(check string)
            (name ^ ": heap load_mode") "heap"
            (Store.mode_name heap.Store.load_mode);
          Alcotest.(check int)
            (name ^ ": mapped_bytes = file size")
            (String.length (Store.to_bytes store))
            (Store.mapped_bytes mapped);
          Alcotest.(check int)
            (name ^ ": heap maps nothing") 0 (Store.mapped_bytes heap);
          Alcotest.(check bool)
            (name ^ ": sketches equal") true
            (Sketch.equal heap.Store.sketch mapped.Store.sketch);
          Alcotest.(check bool)
            (name ^ ": mmap -> save is byte-stable") true
            (String.equal (Store.to_bytes store) (Store.to_bytes mapped));
          let oh = Oracle.of_store heap and om = Oracle.of_store mapped in
          for u = 0 to n - 1 do
            for v = 0 to n - 1 do
              Alcotest.(check int)
                (Printf.sprintf "%s: query(%d,%d)" name u v)
                (Oracle.query oh u v) (Oracle.query om u v);
              Alcotest.(check int)
                (Printf.sprintf "%s: bidir(%d,%d)" name u v)
                (Oracle.query_bidirectional oh u v)
                (Oracle.query_bidirectional om u v)
            done
          done;
          let flat =
            Workload.pairs_flat ~rng:(Rng.create 54) Workload.Uniform ~n
              ~count:2000
          in
          Pool.with_pool ~domains:2 (fun pool ->
              Alcotest.(check (array int))
                (name ^ ": batch answers identical")
                (Oracle.query_batch_flat ~pool oh flat)
                (Oracle.query_batch_flat ~pool om flat));
          (* Serve fingerprint: the whole serving loop (queues, cache,
             workers) sees no difference either. *)
          let config =
            { Ds_oracle.Serve.default_config with cache_bits = 8 }
          in
          let ah, _ = Ds_oracle.Serve.run ~config oh flat in
          let am, _ = Ds_oracle.Serve.run ~config om flat in
          Alcotest.(check (array int))
            (name ^ ": serve answers identical") ah am))
    stores

(* ---- compact oracle ---- *)

let test_oracle_matches_label_query () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let labels = labels_for ~seed:(100 + k) g k in
          let o = Oracle.of_labels labels in
          let n = Graph.n g in
          for u = 0 to n - 1 do
            for v = u to n - 1 do
              Alcotest.(check int)
                (Printf.sprintf "%s k=%d query(%d,%d)" name k u v)
                (Label.query labels.(u) labels.(v))
                (Oracle.query o u v);
              Alcotest.(check int)
                (Printf.sprintf "%s k=%d bidir(%d,%d)" name k u v)
                (Label.query_bidirectional labels.(u) labels.(v))
                (Oracle.query_bidirectional o u v)
            done
          done)
        [ 1; 2; 3 ])
    (Helpers.graph_suite 97)

let test_oracle_from_store_matches () =
  let g = Helpers.random_graph ~seed:31 50 in
  let labels = labels_for ~seed:32 g 3 in
  let o1 = Oracle.of_labels labels in
  let o2 =
    Oracle.of_store (Store.of_bytes (Store.to_bytes (Store.of_labels labels)))
  in
  for u = 0 to 49 do
    for v = 0 to 49 do
      Alcotest.(check int)
        (Printf.sprintf "store-loaded oracle query(%d,%d)" u v)
        (Oracle.query o1 u v) (Oracle.query o2 u v)
    done
  done

let test_oracle_bunch_dist () =
  let g = Helpers.random_graph ~seed:41 40 in
  let labels = labels_for ~seed:42 g 3 in
  let o = Oracle.of_labels labels in
  for u = 0 to 39 do
    for w = 0 to 39 do
      Alcotest.(check (option int))
        (Printf.sprintf "bunch_dist(%d,%d)" u w)
        (Label.bunch_dist labels.(u) w)
        (Oracle.bunch_dist o u w)
    done
  done

let test_oracle_size_words () =
  let g = Helpers.random_graph ~seed:43 40 in
  let labels = labels_for ~seed:44 g 3 in
  let o = Oracle.of_labels labels in
  let total = Array.fold_left (fun a l -> a + Label.size_words l) 0 labels in
  Alcotest.(check int) "oracle size = sum of label sizes" total
    (Oracle.size_words o)

let test_oracle_probes () =
  let g = Helpers.random_graph ~seed:47 40 in
  let labels = labels_for ~seed:48 g 3 in
  let o = Oracle.of_labels labels in
  for u = 0 to 39 do
    for v = 0 to 39 do
      let est, probes = Oracle.query_probes o u v in
      Alcotest.(check int)
        (Printf.sprintf "probed estimate (%d,%d)" u v)
        (Oracle.query o u v) est;
      Alcotest.(check bool) "positive probe count" true (probes > 0)
    done
  done

let test_oracle_validation () =
  let g = Helpers.random_graph ~seed:51 20 in
  let labels = labels_for g 2 in
  let o = Oracle.of_labels labels in
  (match Oracle.query o 0 20 with
  | _ -> Alcotest.fail "out-of-range query accepted"
  | exception Invalid_argument _ -> ());
  let mixed = Array.copy labels in
  mixed.(3) <- Label.create ~owner:3 ~k:5;
  match Oracle.of_labels mixed with
  | _ -> Alcotest.fail "mixed k accepted"
  | exception Invalid_argument _ -> ()

(* ---- batched queries ---- *)

let test_batch_pool_size_independent () =
  let g = Helpers.random_graph ~seed:61 80 in
  let labels = labels_for ~seed:62 g 3 in
  let o = Oracle.of_labels labels in
  let pairs =
    Workload.pairs ~rng:(Rng.create 63) Workload.Uniform ~n:80 ~count:5000
  in
  let baseline = Array.map (fun (u, v) -> Oracle.query o u v) pairs in
  Alcotest.(check (array int))
    "sequential batch = one-by-one" baseline
    (Oracle.query_batch o pairs);
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "batch identical on %d domains" domains)
            baseline
            (Oracle.query_batch ~pool o pairs)))
    [ 1; 2; 3; 4 ]

let test_run_batch_stats () =
  let g = Helpers.random_graph ~seed:71 60 in
  let labels = labels_for ~seed:72 g 3 in
  let o = Oracle.of_labels labels in
  let pairs =
    Workload.pairs ~rng:(Rng.create 73)
      (Workload.Zipf { alpha = 1.2 })
      ~n:60 ~count:2000
  in
  let results, stats = Oracle.run_batch o pairs in
  Alcotest.(check (array int))
    "run_batch answers = query_batch" (Oracle.query_batch o pairs) results;
  Alcotest.(check int) "stats pairs" 2000 stats.Oracle.pairs;
  Alcotest.(check bool) "positive qps" true (stats.Oracle.qps > 0.0);
  Alcotest.(check bool) "positive latency" true
    (stats.Oracle.latency_ns.Ds_util.Stats.mean > 0.0)

(* ---- workloads ---- *)

let endpoint_counts n pairs =
  let c = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      c.(u) <- c.(u) + 1;
      c.(v) <- c.(v) + 1)
    pairs;
  c

let test_workload_uniform () =
  let n = 50 and count = 4000 in
  let p1 = Workload.pairs ~rng:(Rng.create 81) Workload.Uniform ~n ~count in
  let p2 = Workload.pairs ~rng:(Rng.create 81) Workload.Uniform ~n ~count in
  Alcotest.(check bool) "deterministic in the seed" true (p1 = p2);
  Alcotest.(check int) "count" count (Array.length p1);
  Array.iter
    (fun (u, v) ->
      Alcotest.(check bool) "in range, distinct endpoints" true
        (u >= 0 && u < n && v >= 0 && v < n && u <> v))
    p1;
  (* Uniform: no endpoint should dominate. Expected 160 per node. *)
  let c = endpoint_counts n p1 in
  Alcotest.(check bool) "no hotspot" true
    (Array.for_all (fun x -> x < 2 * 2 * count / n) c)

let test_workload_zipf () =
  let n = 50 and count = 4000 in
  let kind = Workload.Zipf { alpha = 1.4 } in
  let p1 = Workload.pairs ~rng:(Rng.create 83) kind ~n ~count in
  let p2 = Workload.pairs ~rng:(Rng.create 83) kind ~n ~count in
  Alcotest.(check bool) "deterministic in the seed" true (p1 = p2);
  Array.iter
    (fun (u, v) ->
      Alcotest.(check bool) "in range, distinct endpoints" true
        (u >= 0 && u < n && v >= 0 && v < n && u <> v))
    p1;
  let c = endpoint_counts n p1 in
  let hottest = Array.fold_left max 0 c in
  let mean = 2 * count / n in
  Alcotest.(check bool)
    (Printf.sprintf "skewed: hottest %d >= 4x mean %d" hottest mean)
    true
    (hottest >= 4 * mean);
  (* Different seeds shuffle the hot set. *)
  let p3 = Workload.pairs ~rng:(Rng.create 84) kind ~n ~count in
  Alcotest.(check bool) "seed moves the hot set" true (p1 <> p3)

let test_workload_pairs_file () =
  let flat =
    Workload.pairs_flat ~rng:(Rng.create 87) Workload.Uniform ~n:30 ~count:200
  in
  let path = Filename.temp_file "distsketch" ".pairs" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.save_pairs path flat;
      Alcotest.(check (array int))
        "save -> load round-trips the flat layout" flat
        (Workload.load_pairs ~n:30 path);
      (* Comments and blank lines are part of the format. *)
      let oc = open_out path in
      output_string oc "# replayed pair set\n\n3 4\n  7   9 \n";
      close_out oc;
      Alcotest.(check (array int))
        "comments, blanks and stray spaces are tolerated" [| 3; 4; 7; 9 |]
        (Workload.load_pairs ~n:30 path);
      (* Out-of-range endpoints and malformed lines fail with context. *)
      let oc = open_out path in
      output_string oc "3 99\n";
      close_out oc;
      (match Workload.load_pairs ~n:30 path with
      | _ -> Alcotest.fail "out-of-range endpoint accepted"
      | exception Failure msg ->
        Alcotest.(check bool) "error names the file" true
          (String.length msg > 0 && String.sub msg 0 (String.length path) = path));
      let oc = open_out path in
      output_string oc "3 4 5\n";
      close_out oc;
      match Workload.load_pairs ~n:30 path with
      | _ -> Alcotest.fail "three-field line accepted"
      | exception Failure _ -> ());
  Alcotest.check_raises "odd-length array rejected"
    (Invalid_argument "Workload.save_pairs: odd-length flat array") (fun () ->
      Workload.save_pairs "/dev/null" [| 1 |])

let test_workload_kind_of_string () =
  Alcotest.(check bool) "uniform parses" true
    (Workload.kind_of_string "uniform" = Ok Workload.Uniform);
  (match Workload.kind_of_string "zipf" with
  | Ok (Workload.Zipf _) -> ()
  | _ -> Alcotest.fail "zipf should parse");
  (match Workload.kind_of_string "zipf:1.5" with
  | Ok (Workload.Zipf { alpha }) ->
    Alcotest.(check (float 1e-9)) "alpha" 1.5 alpha
  | _ -> Alcotest.fail "zipf:1.5 should parse");
  (match Workload.kind_of_string "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad workload should not parse");
  match Workload.kind_of_string "zipf:x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad alpha should not parse"

let suite =
  [
    Alcotest.test_case "store: save->load->save byte-identical" `Quick
      test_store_roundtrip_bytes;
    Alcotest.test_case "store: file round-trip" `Quick
      test_store_file_roundtrip;
    Alcotest.test_case "store: malformed inputs fail loudly" `Quick
      test_store_malformed;
    Alcotest.test_case "store: label-set validation" `Quick
      test_store_validation;
    Alcotest.test_case "store: v2 round-trip, every sketch family" `Quick
      test_store_v2_all_families;
    Alcotest.test_case "store: v1 snapshots still load" `Quick
      test_store_v1_compat;
    Alcotest.test_case "store: mapped loader rejects malformed input" `Quick
      test_store_mmap_malformed;
    Alcotest.test_case "store: mmap oracle = heap oracle, all families" `Slow
      test_store_mmap_matches_heap;
    Alcotest.test_case "oracle = Label.query, all families x k" `Slow
      test_oracle_matches_label_query;
    Alcotest.test_case "oracle from snapshot = oracle from labels" `Quick
      test_oracle_from_store_matches;
    Alcotest.test_case "oracle bunch_dist = label bunch_dist" `Quick
      test_oracle_bunch_dist;
    Alcotest.test_case "oracle size accounting" `Quick test_oracle_size_words;
    Alcotest.test_case "probed query agrees, counts work" `Quick
      test_oracle_probes;
    Alcotest.test_case "oracle input validation" `Quick test_oracle_validation;
    Alcotest.test_case "batch answers independent of pool size" `Quick
      test_batch_pool_size_independent;
    Alcotest.test_case "run_batch stats sane" `Quick test_run_batch_stats;
    Alcotest.test_case "workload: uniform" `Quick test_workload_uniform;
    Alcotest.test_case "workload: zipf hotspots" `Quick test_workload_zipf;
    Alcotest.test_case "workload: pairs-file round-trip" `Quick
      test_workload_pairs_file;
    Alcotest.test_case "workload: kind parsing" `Quick
      test_workload_kind_of_string;
  ]
