(** Centralized Bellman–Ford reference.

    One "sweep" relaxes every edge once, mirroring one synchronous round
    of the distributed Algorithm 1; the sweep count until fixpoint is a
    centralized proxy for the [Omega(S)] round cost of on-demand
    distance computation (experiment E8). *)

val sssp : Graph.t -> src:int -> int array * int
(** [(distances, sweeps)] where [sweeps] is the number of full edge
    relaxation sweeps until no distance changed. *)
