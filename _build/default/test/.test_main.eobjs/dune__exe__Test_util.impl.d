test/test_util.ml: Alcotest Array Ds_util Filename Fun Hashtbl List Printf QCheck QCheck_alcotest String Sys
