module Graph = Ds_graph.Graph

type msg =
  | Cand of int  (* flood: smallest candidate leader ID seen *)
  | Cand_echo of int
  | Build  (* leader's tree wave *)
  | Build_claim  (* "you are my tree parent" *)
  | Build_echo  (* subtree below this edge is finished *)
  | Done  (* tree complete; halt *)

let msg_words = function
  | Cand _ | Cand_echo _ -> 2
  | Build | Build_claim | Build_echo | Done -> 1

(* One outstanding broadcast obligation: echo the flood of candidate
   [cand] back to [parent_idx] once all of our own copies are echoed. *)
type obligation = { parent_idx : int; mutable pending : int }

type state = {
  id : int;
  mutable best : int;
  obligations : (int, obligation) Hashtbl.t; (* candidate -> obligation *)
  mutable is_leader : bool;
  mutable tree_parent : int; (* neighbor index; -1 = root or unset *)
  mutable tree_seen : bool;
  mutable build_pending : int;
  child : bool array;
  mutable done_seen : bool;
}

let protocol () : (state, msg) Engine.protocol =
  let open Engine in
  let resolve api st cand ob =
    Hashtbl.remove st.obligations cand;
    if ob.parent_idx >= 0 then api.send ob.parent_idx (Cand_echo cand)
    else if cand = api.id && st.best = api.id then begin
      (* Our own flood quiesced without us ever seeing a smaller ID:
         we are the leader. Start the tree wave. *)
      st.is_leader <- true;
      st.tree_seen <- true;
      st.build_pending <- api.degree;
      api.broadcast Build;
      if st.build_pending = 0 then st.done_seen <- true
    end
  in
  let adopt api st cand i =
    st.best <- cand;
    let ob = { parent_idx = i; pending = api.degree } in
    Hashtbl.replace st.obligations cand ob;
    api.broadcast (Cand cand);
    if ob.pending = 0 then resolve api st cand ob
  in
  let finish_build api st =
    if st.tree_parent >= 0 then api.send st.tree_parent Build_echo
    else begin
      (* Root: the whole tree is built. Dismiss everyone. *)
      Array.iteri (fun i c -> if c then api.send i Done) st.child;
      st.done_seen <- true
    end
  in
  {
    name = "setup";
    max_msg_words = 2;
    msg_words;
    halted = (fun st -> st.done_seen);
    init =
      (fun api ->
        let st =
          {
            id = api.id;
            best = api.id;
            obligations = Hashtbl.create 4;
            is_leader = false;
            tree_parent = -1;
            tree_seen = false;
            build_pending = 0;
            child = Array.make api.degree false;
            done_seen = false;
          }
        in
        adopt api st api.id (-1);
        st);
    on_round =
      (fun api st inbox ->
        let process i m =
          match m with
          | Cand c -> if c < st.best then adopt api st c i else api.send i (Cand_echo c)
          | Cand_echo c -> begin
            match Hashtbl.find_opt st.obligations c with
            | None -> ()
            | Some ob ->
              ob.pending <- ob.pending - 1;
              if ob.pending = 0 then resolve api st c ob
          end
          | Build ->
            if st.tree_seen then api.send i Build_echo
            else begin
              st.tree_seen <- true;
              st.tree_parent <- i;
              api.send i Build_claim;
              st.build_pending <- api.degree;
              api.broadcast Build;
              if st.build_pending = 0 then finish_build api st
            end
          | Build_claim -> st.child.(i) <- true
          | Build_echo ->
            st.build_pending <- st.build_pending - 1;
            if st.build_pending = 0 then finish_build api st
          | Done ->
            Array.iteri (fun j c -> if c then api.send j Done) st.child;
            st.done_seen <- true
        in
        Engine.Inbox.iter process inbox);
  }

type result = {
  leader : int;
  parent : int array;
  children : int list array;
}

let codec =
  let open Ds_util in
  {
    Superstep.encode =
      (fun b m ->
        match m with
        | Cand c ->
          Ivec.push b 0;
          Ivec.push b c
        | Cand_echo c ->
          Ivec.push b 1;
          Ivec.push b c
        | Build -> Ivec.push b 2
        | Build_claim -> Ivec.push b 3
        | Build_echo -> Ivec.push b 4
        | Done -> Ivec.push b 5);
    decode =
      (fun w o ->
        match Ivec.get w o with
        | 0 -> Cand (Ivec.get w (o + 1))
        | 1 -> Cand_echo (Ivec.get w (o + 1))
        | 2 -> Build
        | 3 -> Build_claim
        | 4 -> Build_echo
        | _ -> Done);
  }

let run ?backend ?pool ?shards ?jitter ?tracer ?obs g =
  let r =
    Plane.run ?backend ?pool ?shards ?jitter ?tracer ?obs ~codec g (protocol ())
  in
  (match r.Plane.stop with
  | All_halted | Quiescent -> ()
  | Round_limit -> failwith "Setup: round limit hit");
  let states = r.Plane.states in
  let leader =
    match Array.find_opt (fun st -> st.is_leader) states with
    | Some st -> st.id
    | None -> failwith "Setup: no leader elected"
  in
  let parent =
    Array.mapi
      (fun u st ->
        if st.tree_parent < 0 then -1
        else fst (Graph.neighbor_at g u st.tree_parent))
      states
  in
  let children =
    Array.mapi
      (fun u st ->
        let acc = ref [] in
        Array.iteri
          (fun i c -> if c then acc := fst (Graph.neighbor_at g u i) :: !acc)
          st.child;
        !acc)
      states
  in
  let m = r.Plane.metrics in
  Metrics.mark_phase m "setup";
  ({ leader; parent; children }, m)
