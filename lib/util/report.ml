type phase = { name : string; rounds : int; messages : int; words : int }

type round_profile = {
  rounds : int;
  peak_messages : int;
  peak_messages_round : int;
  peak_active_links : int;
  peak_active_links_round : int;
  peak_in_flight : int;
  peak_in_flight_round : int;
  max_link_backlog : int;
}

type check = {
  label : string;
  measured : float;
  bound : float option;
  ok : bool;
}

type verdict =
  | Reproduced
  | Reproduced_with_caveat of string
  | Validated
  | Informational

type result = {
  id : string;
  title : string;
  claim_id : string;
  claim : string;
  bound_expr : string;
  prose : string;
  checks : check list;
  tables : Table.t list;
  phases : (string * phase list) list;
  round_profiles : (string * round_profile) list;
  verdict : verdict;
}

let check ?bound ~ok label measured = { label; measured; bound; ok }

let ratio c =
  match c.bound with
  | Some b when b <> 0.0 -> Some (c.measured /. b)
  | _ -> None

let all_ok r = List.for_all (fun c -> c.ok) r.checks

let verdict_name = function
  | Reproduced -> "reproduced"
  | Reproduced_with_caveat _ -> "reproduced-with-caveat"
  | Validated -> "validated"
  | Informational -> "informational"

let caveat = function Reproduced_with_caveat c -> Some c | _ -> None

(* ---- JSON ---- *)

(* 2: added per-run "round_profiles" to each experiment object. *)
let schema_version = 2

(* Fixed-format numbers: the emitted artifacts are byte-compared by
   [report --check], so every numeric rendering must be deterministic. *)
let num f = Printf.sprintf "%.4g" f

let json_of_check c =
  Json.Obj
    [
      ("label", Json.String c.label);
      ("measured", Json.Float c.measured);
      ( "bound",
        match c.bound with None -> Json.Null | Some b -> Json.Float b );
      ( "ratio",
        match ratio c with None -> Json.Null | Some r -> Json.Float r );
      ("ok", Json.Bool c.ok);
    ]

let json_of_table t =
  Json.Obj
    [
      ("title", Json.String (Table.title t));
      ("headers", Json.List (List.map (fun h -> Json.String h) (Table.headers t)));
      ( "rows",
        Json.List
          (List.map
             (fun row -> Json.List (List.map (fun c -> Json.String c) row))
             (Table.rows t)) );
    ]

let json_of_phase (p : phase) =
  Json.Obj
    [
      ("name", Json.String p.name);
      ("rounds", Json.Int p.rounds);
      ("messages", Json.Int p.messages);
      ("words", Json.Int p.words);
    ]

let json_of_round_profile (p : round_profile) =
  Json.Obj
    [
      ("rounds", Json.Int p.rounds);
      ("peak_messages", Json.Int p.peak_messages);
      ("peak_messages_round", Json.Int p.peak_messages_round);
      ("peak_active_links", Json.Int p.peak_active_links);
      ("peak_active_links_round", Json.Int p.peak_active_links_round);
      ("peak_in_flight", Json.Int p.peak_in_flight);
      ("peak_in_flight_round", Json.Int p.peak_in_flight_round);
      ("max_link_backlog", Json.Int p.max_link_backlog);
    ]

let json_of_result r =
  Json.Obj
    [
      ("id", Json.String r.id);
      ("title", Json.String r.title);
      ("claim_id", Json.String r.claim_id);
      ("claim", Json.String r.claim);
      ("bound_expr", Json.String r.bound_expr);
      ("verdict", Json.String (verdict_name r.verdict));
      ( "caveat",
        match caveat r.verdict with
        | None -> Json.Null
        | Some c -> Json.String c );
      ("all_ok", Json.Bool (all_ok r));
      ("checks", Json.List (List.map json_of_check r.checks));
      ("tables", Json.List (List.map json_of_table r.tables));
      ( "phases",
        Json.List
          (List.map
             (fun (run, ps) ->
               Json.Obj
                 [
                   ("run", Json.String run);
                   ("phases", Json.List (List.map json_of_phase ps));
                 ])
             r.phases) );
      ( "round_profiles",
        Json.List
          (List.map
             (fun (run, p) ->
               Json.Obj
                 [
                   ("run", Json.String run);
                   ("profile", json_of_round_profile p);
                 ])
             r.round_profiles) );
    ]

let to_json ~profile results =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("generator", Json.String "distsketch report");
      ("profile", Json.String profile);
      ("experiments", Json.List (List.map json_of_result results));
    ]

(* ---- Markdown ---- *)

let checks_table checks =
  let t =
    Table.create ~title:"checks"
      ~headers:[ "measurement"; "measured"; "bound (c=1)"; "measured/bound"; "ok" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.label;
          num c.measured;
          (match c.bound with None -> "—" | Some b -> num b);
          (match ratio c with None -> "—" | Some r -> Printf.sprintf "%.3f" r);
          (if c.ok then "yes" else "NO");
        ])
    checks;
  Table.to_markdown t

let verdict_line r =
  let failed = List.filter (fun c -> not c.ok) r.checks in
  if failed <> [] then
    Printf.sprintf "**Verdict: NOT %s — %d check(s) failed.**"
      (verdict_name r.verdict) (List.length failed)
  else
    match r.verdict with
    | Reproduced -> "**Verdict: reproduced.**"
    | Reproduced_with_caveat c -> Printf.sprintf "**Verdict: reproduced**, with a caveat: %s" c
    | Validated -> "**Verdict: validated** (extension beyond the paper's theorems)."
    | Informational -> "**Verdict: informational** (no pass/fail paper claim)."

let result_markdown buf r =
  Buffer.add_string buf (Printf.sprintf "## %s — %s\n\n" (String.uppercase_ascii r.id) r.title);
  Buffer.add_string buf (Printf.sprintf "**Claim (%s).** %s\n\n" r.claim_id r.claim);
  if r.bound_expr <> "" then
    Buffer.add_string buf
      (Printf.sprintf "**Constant-1 bound.** %s\n\n" r.bound_expr);
  if String.trim r.prose <> "" then begin
    Buffer.add_string buf (String.trim r.prose);
    Buffer.add_string buf "\n\n"
  end;
  if r.checks <> [] then begin
    Buffer.add_string buf (checks_table r.checks);
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun t ->
      Buffer.add_string buf (Printf.sprintf "### %s\n\n" (Table.title t));
      Buffer.add_string buf (Table.to_markdown t);
      Buffer.add_char buf '\n')
    r.tables;
  List.iter
    (fun (run, ps) ->
      Buffer.add_string buf
        (Printf.sprintf "### CONGEST phase breakdown — %s\n\n" run);
      let t =
        Table.create ~title:"phases"
          ~headers:[ "phase"; "rounds"; "messages"; "words" ]
      in
      List.iter
        (fun (p : phase) ->
          Table.add_row t
            [
              p.name;
              string_of_int p.rounds;
              string_of_int p.messages;
              string_of_int p.words;
            ])
        ps;
      Buffer.add_string buf (Table.to_markdown t);
      Buffer.add_char buf '\n')
    r.phases;
  List.iter
    (fun (run, (p : round_profile)) ->
      Buffer.add_string buf
        (Printf.sprintf "### Per-round congestion profile — %s\n\n" run);
      let t =
        Table.create ~title:"round profile"
          ~headers:[ "congestion measure"; "peak"; "at round (of total)" ]
      in
      let at r = Printf.sprintf "%d / %d" r p.rounds in
      Table.add_row t
        [
          "messages delivered / round";
          string_of_int p.peak_messages;
          at p.peak_messages_round;
        ];
      Table.add_row t
        [
          "active links";
          string_of_int p.peak_active_links;
          at p.peak_active_links_round;
        ];
      Table.add_row t
        [
          "messages in flight";
          string_of_int p.peak_in_flight;
          at p.peak_in_flight_round;
        ];
      Table.add_row t
        [ "max link backlog"; string_of_int p.max_link_backlog; "—" ];
      Buffer.add_string buf (Table.to_markdown t);
      Buffer.add_char buf '\n')
    r.round_profiles;
  Buffer.add_string buf (verdict_line r);
  Buffer.add_string buf "\n"

let markdown ~preamble results =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf (String.trim preamble);
  Buffer.add_string buf "\n";
  List.iter
    (fun r ->
      Buffer.add_char buf '\n';
      result_markdown buf r)
    results;
  Buffer.contents buf
