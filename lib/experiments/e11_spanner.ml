(** E11 — extension: the Thorup–Zwick spanner the construction yields
    for free.

    Claim (Thorup–Zwick JACM'05, implicit in the paper's machinery):
    the union of the cluster shortest-path trees is a (2k-1)-spanner
    with O(k n^{1+1/k}) edges; the distributed construction obtains it
    with zero additional communication by marking each accepted
    announcement's relaxation parent. *)

module Table = Ds_util.Table
module Report = Ds_util.Report
module Rng = Ds_util.Rng
module Graph = Ds_graph.Graph
module Levels = Ds_core.Levels
module Spanner = Ds_core.Spanner

type params = { seed : int; n : int; ks : int list }

let default = { seed = 11; n = 300; ks = [ 1; 2; 3; 4; 6 ] }
let quick = { seed = 11; n = 100; ks = [ 1; 2; 3 ] }

let id = "e11"
let title = "TZ spanner for free"
let claim_id = "extension (TZ JACM'05)"

let claim =
  "the union of cluster shortest-path trees is a (2k-1)-spanner with \
   O(k n^{1+1/k}) edges, and the distributed run yields it with zero \
   extra communication"

let bound_expr = "`2k-1` stretch; `k n^{1+1/k}` edges"

let prose =
  "Spanner edge counts shrink with k while measured max stretch stays \
   within 2k-1 at every k, and the spanner the distributed run marks \
   agrees with the centralized one up to a couple of tie-broken \
   relaxation parents (< 1% of edges). The edge counts sit far below \
   the k n^{1+1/k} bound — a substantial edge reduction at no \
   communication cost."

let run ?pool { seed; n; ks } =
  let w =
    Common.make_workload ?pool ~seed
      ~family:(Ds_graph.Gen.Erdos_renyi { avg_degree = 8.0 })
      ~n ()
  in
  let g = w.Common.graph in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E11: TZ spanner from the distributed construction (erdos-renyi, \
            n=%d, |E|=%d) — extension"
           n (Graph.m g))
      ~headers:
        [
          "k"; "bound 2k-1"; "edges (dist)"; "edges (central)"; "k n^{1+1/k}";
          "max stretch"; "ok";
        ]
  in
  let checks = ref [] in
  let worst_edge_ratio = ref 0.0 in
  let worst_agree = ref 0.0 in
  List.iter
    (fun k ->
      let levels = Levels.sample ~rng:(Rng.create (seed + k)) ~n ~k in
      let sp_d, _ = Spanner.of_distributed ?pool g ~levels in
      let sp_c = Spanner.of_levels g ~levels in
      let s = Spanner.max_stretch g ~spanner:sp_d in
      let bound = float_of_int ((2 * k) - 1) in
      let ok = s <= bound +. 1e-9 in
      checks :=
        Report.check ~bound ~ok
          (Printf.sprintf "spanner max stretch (k=%d)" k)
          s
        :: !checks;
      worst_edge_ratio :=
        max !worst_edge_ratio
          (float_of_int (Graph.m sp_d) /. Spanner.edge_bound ~n ~k);
      worst_agree :=
        max !worst_agree
          (float_of_int (abs (Graph.m sp_d - Graph.m sp_c))
          /. float_of_int (max 1 (Graph.m sp_c)));
      Table.add_row t
        [
          Table.cell_int k;
          Table.cell_int ((2 * k) - 1);
          Table.cell_int (Graph.m sp_d);
          Table.cell_int (Graph.m sp_c);
          Table.cell_float (Spanner.edge_bound ~n ~k);
          Table.cell_float ~decimals:3 s;
          (if ok then "yes" else "NO");
        ])
    ks;
  let checks =
    List.rev !checks
    @ [
        Report.check ~bound:1.0
          ~ok:(!worst_edge_ratio <= 1.0)
          "edges / k n^{1+1/k} bound, worst k" !worst_edge_ratio;
        Report.check ~bound:0.01
          ~ok:(!worst_agree <= 0.01)
          "|edges(dist) - edges(central)| / edges(central), worst k (< 1%)"
          !worst_agree;
      ]
  in
  {
    Report.id;
    title;
    claim_id;
    claim;
    bound_expr;
    prose;
    checks;
    tables = [ t ];
    phases = [];
    round_profiles = [];
    verdict = Report.Validated;
  }
