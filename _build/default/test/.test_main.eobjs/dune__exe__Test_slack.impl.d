test/test_slack.ml: Alcotest Array Ds_core Ds_graph Ds_util Helpers List Printf
