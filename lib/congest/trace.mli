(** Opt-in per-round telemetry for CONGEST executions.

    A tracer is passed to {!Engine.create} and records one {!round}
    row per simulated round: the activity counters the engine already
    maintains (active nodes and links, deliveries, words, in-flight
    and per-link backlog), wall-clock nanoseconds split into the
    delivery and computation sub-spans, and the number of pool domains
    the computation span occupied. It also keeps cumulative per-node
    send/receive counters for hotspot analysis.

    Cost contract: with no tracer the engine's only overhead is a
    handful of per-round branches on an immutable [None] — no
    allocation, no clock reads (B9/B10 in [BENCH_engine.json] guard
    this). With a tracer, the engine adds two clock reads and one row
    record per round plus one counter bump per sending/receiving node.

    Determinism: every field except the wall-clock spans and the pool
    occupancy is a pure function of (graph, protocol, jitter seed) —
    the same split the engine's determinism contract guarantees. The
    exporters separate the two groups {e by schema}: [jsonl
    ~timing:false] and [chrome ~clock:`Rounds] omit the host-dependent
    fields entirely, so two traces can be compared byte-for-byte
    across pool sizes.

    One tracer may be threaded through several consecutive engine runs
    (e.g. the per-level phases of [Ds_core.Tz_distributed.build]);
    rows simply append, and cumulative per-node counters keep
    accumulating, so the row sequence lines up with the combined
    {!Metrics.phases} of the composed run. *)

type t

type round = {
  round : int;  (** engine round number (restarts across composed runs) *)
  active_nodes : int;  (** nodes whose [on_round] ran *)
  active_links : int;  (** links holding queued messages at delivery *)
  delivered : int;  (** messages delivered this round *)
  words : int;  (** words delivered this round *)
  in_flight : int;  (** messages queued on links at end of round *)
  link_backlog : int;
      (** deepest send queue observed at a push this round (the
          per-round view of {!Metrics.max_link_backlog}) *)
  delivery_ns : int;  (** wall-clock: delivery sub-span *)
  compute_ns : int;  (** wall-clock: computation sub-span *)
  busy_domains : int;
      (** pool domains the computation span occupied
          ({!Ds_parallel.Pool.chunks_for} of the run list) *)
}
(** One recorded round. The first seven fields are deterministic;
    the last three are host-dependent (see the module preamble). *)

val create : unit -> t
(** A fresh tracer with no rows; pass it to {!Engine.create}. *)

(** {2 Engine-facing hooks}

    Called by the engine; protocols and experiment code never call
    these. *)

val attach : t -> n:int -> domains:int -> unit
(** Size the per-node counters for an [n]-node graph (growing them if
    a previous attach was smaller) and record the pool width. Called
    by {!Engine.create}; idempotent across the engines of a composed
    run. *)

val count_send : t -> int -> int -> unit
(** [count_send t u k]: node [u] enqueued [k] messages this round. *)

val count_recv : t -> int -> int -> unit
(** [count_recv t u k]: node [u] received [k] messages this round. *)

val record_round : t -> round -> unit
(** Append one row. *)

val drop_last : t -> unit
(** Remove the most recent row; the engine drops the final quiescence
    probe round with it, mirroring {!Metrics.untick_round} (the probe
    round delivered and sent nothing, so the cumulative counters need
    no correction). *)

val now_ns : unit -> int
(** Monotonic wall clock in nanoseconds (the engine reads it only
    when a tracer is attached). *)

(** {2 Reading the trace} *)

val rounds_logged : t -> int
val rows : t -> round list
(** All rows in execution order. *)

val sent : t -> int -> int
(** Cumulative messages sent by a node. *)

val received : t -> int -> int
(** Cumulative messages delivered to a node. *)

val pool_domains : t -> int

type profile = {
  rounds : int;
  messages : int;  (** total delivered *)
  total_words : int;
  peak_delivered : int;  (** largest per-round delivery count *)
  peak_delivered_round : int;  (** 1-based row index of that peak *)
  peak_active_links : int;
  peak_active_links_round : int;
  peak_in_flight : int;
  peak_in_flight_round : int;
  max_link_backlog : int;
}
(** Deterministic per-round congestion summary: where in the
    execution each congestion measure peaks, not just its total.
    Peak rows are 1-based positions in the row sequence (= engine
    rounds for a single run), ties resolved to the earliest round;
    all-zero on an empty trace. *)

val profile : t -> profile

val hotspots : ?k:int -> t -> (int * int * int) list
(** Top-[k] (default 5) nodes by cumulative [sent + received]
    traffic, as [(node, sent, received)] triples, busiest first, ties
    broken by node ID. Nodes with no traffic are never listed. *)

(** {2 Exporters}

    Both are deterministic byte-for-byte given the same trace
    contents and options; they are built on {!Ds_util.Json}'s fixed
    formats. *)

val jsonl : ?timing:bool -> t -> string
(** The round log, one JSON object per line. Line 1 is a header
    ([schema]/[version]/[timing], plus [pool_domains] when [timing]);
    each following line is one {!round} in field order. With
    [~timing:false] (default [true]) the host-dependent fields —
    [delivery_ns], [compute_ns], [busy_domains], [pool_domains] — are
    absent from the schema, which is what makes two logs comparable
    with [String.equal] across pool sizes. *)

val chrome : ?clock:[ `Wall | `Rounds ] -> ?phases:Metrics.phase list ->
  t -> string
(** A Chrome trace-event file (load in [about:tracing] or Perfetto).
    Each round contributes a [delivery] and a [compute] complete-span
    on one track plus [in-flight] / [active links] / [delivered]
    counter series; [phases] (pass {!Metrics.phases} of the run)
    renders the protocol's phase marks as spans on a second track,
    aligned by cumulative round count. [`Wall] (default) places spans
    at the measured nanosecond offsets; [`Rounds] uses virtual time —
    one round = 1000 trace-µs, split evenly — and omits the
    pool-occupancy args, so its output is deterministic across pool
    sizes. *)

val summary : ?top_k:int -> ?timing:bool -> t -> Ds_util.Json.t
(** Totals, the {!profile} peaks, and the [top_k] (default 5)
    {!hotspots}; with [timing] (default [true]) also the aggregate
    wall-clock split and pool width. *)
