module Graph = Ds_graph.Graph
module Dist = Ds_graph.Dist
module Dijkstra = Ds_graph.Dijkstra
module Engine = Ds_congest.Engine
module Multi_bf = Ds_congest.Multi_bf
module Metrics = Ds_congest.Metrics

module Edge_set = struct
  type t = (int * int, int) Hashtbl.t

  let create () : t = Hashtbl.create 256
  let key u v = (min u v, max u v)

  let add t u v w =
    let k = key u v in
    if not (Hashtbl.mem t k) then Hashtbl.replace t k w

  let to_graph t ~n =
    Graph.of_edges ~n (Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) t [])
end

let of_levels g ~levels =
  let n = Graph.n g in
  let table = Tz_centralized.pivot_tables g ~levels in
  let edges = Edge_set.create () in
  for w = 0 to n - 1 do
    let lw = Levels.level levels w in
    if lw >= 0 then begin
      let bound = table.(lw + 1) in
      let dist, parent = Dijkstra.restricted_with_parents g ~src:w ~bound in
      Array.iteri
        (fun v p ->
          if p >= 0 && Dist.is_finite dist.(v) then
            Edge_set.add edges v p (Graph.weight g v p))
        parent
    end
  done;
  Edge_set.to_graph edges ~n

let of_distributed ?pool g ~levels =
  let n = Graph.n g in
  let k = Levels.k levels in
  let pivot = Array.make n Dist.none in
  let edges = Edge_set.create () in
  let phase_metrics = ref [] in
  for i = k - 1 downto 0 do
    let proto =
      Multi_bf.protocol
        ~is_source:(fun u -> Levels.level levels u = i)
        ~bound:(fun u -> pivot.(u))
    in
    let eng = Engine.create ?pool g proto in
    (match Engine.run eng with
    | Engine.Quiescent | Engine.All_halted -> ()
    | Engine.Round_limit -> failwith "Spanner.of_distributed: round limit");
    phase_metrics := Engine.metrics eng :: !phase_metrics;
    Array.iteri
      (fun u st ->
        let best = ref pivot.(u) in
        List.iter
          (fun (src, dist, parent_idx) ->
            if parent_idx >= 0 then begin
              let p, w = Graph.neighbor_at g u parent_idx in
              Edge_set.add edges u p w
            end;
            if Dist.lex_lt (dist, src) !best then best := (dist, src))
          (Multi_bf.found_with_parents st);
        pivot.(u) <- !best)
      (Engine.states eng)
  done;
  let metrics =
    List.fold_left Metrics.add (Metrics.create ()) (List.rev !phase_metrics)
  in
  (Edge_set.to_graph edges ~n, metrics)

let edge_bound ~n ~k =
  let fn = float_of_int n in
  float_of_int k *. (fn ** (1.0 +. (1.0 /. float_of_int k)))

let max_stretch g ~spanner =
  let n = Graph.n g in
  let worst = ref 1.0 in
  for src = 0 to n - 1 do
    let dg = Dijkstra.sssp g ~src in
    let ds = Dijkstra.sssp spanner ~src in
    for v = 0 to n - 1 do
      if v <> src && Dist.is_finite dg.(v) && dg.(v) > 0 then begin
        if not (Dist.is_finite ds.(v)) then worst := infinity
        else begin
          let s = float_of_int ds.(v) /. float_of_int dg.(v) in
          if s > !worst then worst := s
        end
      end
    done
  done;
  !worst
