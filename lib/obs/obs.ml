(* Process-wide metrics registry. All hot state lives in flat int
   arrays sharded by worker index: an increment is one bounds-checked
   array load + store on a cache line owned by that worker (counters
   and gauges are padded to [stride] ints = 64 bytes), with no
   synchronization, no clock reads and no allocation — the same
   zero-cost-when-hot discipline as the engine's ring buffers, pinned
   by the GC-regression tests. Reads reduce over the shards; a read
   concurrent with writers sees each word either before or after its
   latest store (word-sized loads are atomic on every platform OCaml
   targets), which is exactly the "monotone but possibly mid-round"
   semantics a sampler wants. Registration is mutex-guarded and
   idempotent by name; the hot ops never touch the registry. *)

let stride = 8

(* 64 log2 buckets + sum + count, padded to a stride multiple so
   shard regions never share a cache line. *)
let hist_buckets = Ds_util.Stats.log2_buckets
let hist_stride = hist_buckets + stride

type counter = { c_cells : int array; c_mask : int }
type gauge = { g_cells : int array; g_mask : int }
type histogram = { h_cells : int array; h_mask : int }

type entry = C of counter | G of gauge | H of histogram

type t = {
  shards : int;
  lock : Mutex.t;
  mutable entries : (string * entry) list;  (* newest first *)
}

let next_pow2 v =
  let rec go p = if p >= v then p else go (p * 2) in
  go 1

let create ?(shards = 64) () =
  if shards <= 0 then invalid_arg "Obs.create: shards must be positive";
  { shards = next_pow2 shards; lock = Mutex.create (); entries = [] }

let shards t = t.shards

let register t name make match_entry kind_name =
  Mutex.protect t.lock (fun () ->
      match List.assoc_opt name t.entries with
      | Some e -> (
        match match_entry e with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Obs.%s: %S already registered with another kind"
               kind_name name))
      | None ->
        let v, e = make () in
        t.entries <- (name, e) :: t.entries;
        v)

let counter t name =
  register t name
    (fun () ->
      let c = { c_cells = Array.make (t.shards * stride) 0; c_mask = t.shards - 1 } in
      (c, C c))
    (function C c -> Some c | _ -> None)
    "counter"

let gauge t name =
  register t name
    (fun () ->
      let g = { g_cells = Array.make (t.shards * stride) 0; g_mask = t.shards - 1 } in
      (g, G g))
    (function G g -> Some g | _ -> None)
    "gauge"

let histogram t name =
  register t name
    (fun () ->
      let h =
        { h_cells = Array.make (t.shards * hist_stride) 0; h_mask = t.shards - 1 }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)
    "histogram"

(* Hot ops. The [land mask] wrap keeps any worker index in-bounds
   without a branch; each op is a constant number of plain int array
   accesses. *)

let add c ~shard v =
  let i = (shard land c.c_mask) * stride in
  c.c_cells.(i) <- c.c_cells.(i) + v

let incr c ~shard = add c ~shard 1

let set g ~shard v = g.g_cells.((shard land g.g_mask) * stride) <- v

let set_max g ~shard v =
  let i = (shard land g.g_mask) * stride in
  if v > g.g_cells.(i) then g.g_cells.(i) <- v

let observe h ~shard v =
  let base = (shard land h.h_mask) * hist_stride in
  let b = base + Ds_util.Stats.log2_bucket v in
  h.h_cells.(b) <- h.h_cells.(b) + 1;
  let s = base + hist_buckets in
  h.h_cells.(s) <- h.h_cells.(s) + v;
  let c = s + 1 in
  h.h_cells.(c) <- h.h_cells.(c) + 1

(* Shard-resolved handles: a worker that knows its shard up front
   resolves the cell index once outside its loop, leaving the per-op
   cost at one array load+store with no mask/multiply. Records of an
   array and an int — resolving allocates (do it at worker setup),
   the ops themselves do not. *)

type counter_shard = { cs_cells : int array; cs_at : int }
type gauge_shard = { gs_cells : int array; gs_at : int }
type hist_shard = { hs_cells : int array; hs_base : int }

let counter_shard c ~shard =
  { cs_cells = c.c_cells; cs_at = (shard land c.c_mask) * stride }

let gauge_shard g ~shard =
  { gs_cells = g.g_cells; gs_at = (shard land g.g_mask) * stride }

let hist_shard h ~shard =
  { hs_cells = h.h_cells; hs_base = (shard land h.h_mask) * hist_stride }

let shard_add cs v = cs.cs_cells.(cs.cs_at) <- cs.cs_cells.(cs.cs_at) + v
let shard_set gs v = gs.gs_cells.(gs.gs_at) <- v

let shard_observe hs v =
  let b = hs.hs_base + Ds_util.Stats.log2_bucket v in
  hs.hs_cells.(b) <- hs.hs_cells.(b) + 1;
  let s = hs.hs_base + hist_buckets in
  hs.hs_cells.(s) <- hs.hs_cells.(s) + v;
  let c = s + 1 in
  hs.hs_cells.(c) <- hs.hs_cells.(c) + 1

(* Read side: reduce over shards. Counters and gauges both sum —
   single-writer gauges (backlog, busy domains, RSS) write shard 0
   only, per-worker gauges (queue depth) sum to the global value. *)

let counter_value c =
  let acc = ref 0 in
  for s = 0 to c.c_mask do
    acc := !acc + c.c_cells.(s * stride)
  done;
  !acc

let gauge_value g =
  let acc = ref 0 in
  for s = 0 to g.g_mask do
    acc := !acc + g.g_cells.(s * stride)
  done;
  !acc

type hist_snapshot = { buckets : int array; sum : int; count : int }

let hist_value h =
  let buckets = Array.make hist_buckets 0 in
  let sum = ref 0 and count = ref 0 in
  for s = 0 to h.h_mask do
    let base = s * hist_stride in
    for b = 0 to hist_buckets - 1 do
      buckets.(b) <- buckets.(b) + h.h_cells.(base + b)
    done;
    sum := !sum + h.h_cells.(base + hist_buckets);
    count := !count + h.h_cells.(base + hist_buckets + 1)
  done;
  { buckets; sum = !sum; count = !count }

let hist_percentile hs p =
  if hs.count = 0 then 0 else Ds_util.Stats.percentile_log2 hs.buckets p

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let sorted_entries t =
  List.sort (fun (a, _) (b, _) -> compare a b) t.entries

let snapshot t =
  let entries = sorted_entries t in
  {
    counters =
      List.filter_map
        (function n, C c -> Some (n, counter_value c) | _ -> None)
        entries;
    gauges =
      List.filter_map
        (function n, G g -> Some (n, gauge_value g) | _ -> None)
        entries;
    histograms =
      List.filter_map
        (function n, H h -> Some (n, hist_value h) | _ -> None)
        entries;
  }

let value t name =
  match List.assoc_opt name t.entries with
  | Some (C c) -> counter_value c
  | Some (G g) -> gauge_value g
  | Some (H h) -> (hist_value h).count
  | None -> 0

(* Prometheus text exposition. Metric names mangle dots to
   underscores under a "dss_" prefix; histograms emit cumulative
   [_bucket{le="..."}] rows up to the highest non-empty bucket plus
   [+Inf], then [_sum] and [_count]. *)

let mangle_base base =
  "dss_" ^ String.map (fun c -> if c = '.' then '_' else c) base

(* A registry name may carry a label suffix, [base{key=value,…}]; only
   the base is mangled, and label values come out quoted, so the
   result is Prometheus-legal: [oracle.queries{family=tz}] ->
   [dss_oracle_queries{family="tz"}]. A suffix that does not parse as
   labels is mangled whole (dots to underscores), never dropped. *)
let prom_name name =
  match String.index_opt name '{' with
  | None -> mangle_base name
  | Some i when String.length name > i + 2 && name.[String.length name - 1] = '}'
    -> begin
      let base = String.sub name 0 i in
      let inner = String.sub name (i + 1) (String.length name - i - 2) in
      let labels = String.split_on_char ',' inner in
      match
        List.map
          (fun l ->
            match String.index_opt l '=' with
            | Some j when j > 0 ->
              Printf.sprintf "%s=%S" (String.sub l 0 j)
                (String.sub l (j + 1) (String.length l - j - 1))
            | _ -> raise Exit)
          labels
      with
      | quoted ->
        Printf.sprintf "%s{%s}" (mangle_base base) (String.concat "," quoted)
      | exception Exit -> mangle_base name
    end
  | Some _ -> mangle_base name

(* The metric-family name: everything before a label suffix. *)
let prom_base pn =
  match String.index_opt pn '{' with
  | None -> pn
  | Some i -> String.sub pn 0 i

let prometheus t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  (* One [# TYPE] per metric family: labeled variants
     ([base{key="v"}]) sort right after their plain base, so emitting
     the comment only when the base changes dedups them. *)
  let last_type = ref "" in
  let type_line pn kind =
    let base = prom_base pn in
    if base <> !last_type then begin
      last_type := base;
      line "# TYPE %s %s" base kind
    end
  in
  List.iter
    (fun (name, entry) ->
      let pn = prom_name name in
      match entry with
      | C c ->
        type_line pn "counter";
        line "%s %d" pn (counter_value c)
      | G g ->
        type_line pn "gauge";
        line "%s %d" pn (gauge_value g)
      | H h ->
        let hs = hist_value h in
        type_line pn "histogram";
        let top = ref (-1) in
        Array.iteri (fun i n -> if n > 0 then top := i) hs.buckets;
        let cum = ref 0 in
        for i = 0 to !top do
          cum := !cum + hs.buckets.(i);
          line "%s_bucket{le=\"%d\"} %d" pn
            (Ds_util.Stats.log2_bucket_upper i)
            !cum
        done;
        line "%s_bucket{le=\"+Inf\"} %d" pn hs.count;
        line "%s_sum %d" pn hs.sum;
        line "%s_count %d" pn hs.count)
    (sorted_entries t);
  Buffer.contents b

module Name = struct
  let engine_rounds = "engine.rounds"
  let engine_deliveries = "engine.deliveries"
  let engine_words = "engine.words"
  let engine_backlog = "engine.backlog"
  let engine_busy_domains = "engine.busy_domains"
  let serve_admitted = "serve.admitted"
  let serve_served = "serve.served"
  let serve_hits = "serve.hits"
  let serve_misses = "serve.misses"
  let serve_queue_depth = "serve.queue_depth"
  let serve_block_ns = "serve.block_ns"
  let oracle_queries = "oracle.queries"

  let oracle_queries_family family =
    Printf.sprintf "oracle.queries{family=%s}" family

  let gc_minor_words = "gc.minor_words"
  let mem_rss_kb = "mem.rss_kb"
  let store_mapped_bytes = "store.mapped_bytes"
end
