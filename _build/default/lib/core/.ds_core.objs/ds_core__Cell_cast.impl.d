lib/core/cell_cast.ml: Array Ds_congest Ds_graph List
